(* Tests for Algorithm 1 (multi-level release) and Lemma 3/4:
   transition matrices, exact stage marginals, collusion resistance
   (posterior identities), and the sampled cascade's statistics. *)

module M = Mech.Mechanism
module Geo = Mech.Geometric
module Ml = Minimax.Multi_level
module Qm = Linalg.Matrix.Q

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

let levels3 = [ q 1 4; q 1 2; q 3 4 ]

(* --------------------------------------------------------------- *)
(* Lemma 3: transitions                                             *)
(* --------------------------------------------------------------- *)

let test_transition_stochastic () =
  List.iter
    (fun (alpha, beta) ->
      let t = Ml.transition ~n:4 ~alpha ~beta in
      Alcotest.(check bool)
        (Printf.sprintf "%s->%s" (Rat.to_string alpha) (Rat.to_string beta))
        true
        (Qm.is_row_stochastic t))
    [ (q 1 4, q 1 2); (q 1 10, q 9 10); (q 1 3, q 1 3); (q 2 5, q 3 5) ]

let test_transition_factors_geometric () =
  let n = 4 in
  let alpha = q 1 4 and beta = q 2 3 in
  let t = Ml.transition ~n ~alpha ~beta in
  let lhs = Qm.mul (M.matrix (Geo.matrix ~n ~alpha)) t in
  Alcotest.(check bool) "G_alpha * T = G_beta" true
    (Qm.equal lhs (M.matrix (Geo.matrix ~n ~alpha:beta)))

let test_transition_identity_when_equal () =
  let t = Ml.transition ~n:3 ~alpha:(q 1 2) ~beta:(q 1 2) in
  Alcotest.(check bool) "identity" true (Qm.equal t (Qm.identity 4))

let test_transition_rejects_backwards () =
  Alcotest.check_raises "beta < alpha"
    (Invalid_argument "Multi_level.transition: need alpha <= beta (privacy can only be added)")
    (fun () -> ignore (Ml.transition ~n:3 ~alpha:(q 1 2) ~beta:(q 1 4)))

let test_transition_composes () =
  (* T_{α,γ} = T_{α,β} · T_{β,γ} — the cascade is consistent. *)
  let n = 3 in
  let a = q 1 5 and b = q 2 5 and c = q 4 5 in
  let t_ab = Ml.transition ~n ~alpha:a ~beta:b in
  let t_bc = Ml.transition ~n ~alpha:b ~beta:c in
  let t_ac = Ml.transition ~n ~alpha:a ~beta:c in
  Alcotest.(check bool) "composition" true (Qm.equal t_ac (Qm.mul t_ab t_bc))

(* --------------------------------------------------------------- *)
(* Plans and marginals                                              *)
(* --------------------------------------------------------------- *)

let test_plan_validation () =
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Multi_level.make_plan: levels must be strictly increasing") (fun () ->
      ignore (Ml.make_plan ~n:3 ~levels:[ q 1 2; q 1 4 ]));
  Alcotest.check_raises "empty" (Invalid_argument "Multi_level.make_plan: no levels") (fun () ->
      ignore (Ml.make_plan ~n:3 ~levels:[]))

let test_stage_marginals_are_geometric () =
  (* The exact marginal of stage i is G(n, α_i) — the heart of
     Theorem 1(1). *)
  let n = 4 in
  let plan = Ml.make_plan ~n ~levels:levels3 in
  List.iteri
    (fun i alpha ->
      let marginal = Ml.stage_marginal plan i in
      Alcotest.(check bool)
        (Printf.sprintf "stage %d" i)
        true
        (M.equal marginal (Geo.matrix ~n ~alpha)))
    levels3

let test_release_ranges () =
  let plan = Ml.make_plan ~n:5 ~levels:levels3 in
  let rng = Prob.Rng.of_int 42 in
  for tr = 0 to 5 do
    for _ = 1 to 50 do
      let rs = Ml.release plan ~true_result:tr rng in
      Alcotest.(check int) "k results" 3 (Array.length rs);
      Array.iter (fun r -> if r < 0 || r > 5 then Alcotest.failf "out of range %d" r) rs
    done
  done

let test_release_statistics () =
  (* Each released coordinate is distributed per its own geometric
     mechanism. *)
  let n = 4 in
  let plan = Ml.make_plan ~n ~levels:[ q 1 4; q 3 5 ] in
  let rng = Prob.Rng.of_int 2718 in
  let input = 2 in
  let trials = 30_000 in
  let first = Array.make trials 0 and second = Array.make trials 0 in
  for t = 0 to trials - 1 do
    let rs = Ml.release plan ~true_result:input rng in
    first.(t) <- rs.(0);
    second.(t) <- rs.(1)
  done;
  let g1 = Geo.matrix ~n ~alpha:(q 1 4) and g2 = Geo.matrix ~n ~alpha:(q 3 5) in
  Alcotest.(check bool) "first marginal" true
    (Prob.Stats.fits first (M.row_distribution g1 input));
  Alcotest.(check bool) "second marginal" true
    (Prob.Stats.fits second (M.row_distribution g2 input))

(* --------------------------------------------------------------- *)
(* Lemma 4: collusion resistance                                    *)
(* --------------------------------------------------------------- *)

let test_posterior_collusion_invariance () =
  (* Exact check: for every joint observation, the posterior given
     (r_1, r_2, ...) equals the posterior given r_1 alone. *)
  let n = 3 in
  let plan = Ml.make_plan ~n ~levels:levels3 in
  for r1 = 0 to n do
    for r2 = 0 to n do
      for r3 = 0 to n do
        let joint = Ml.posterior plan ~observed:[ (0, r1); (1, r2); (2, r3) ] in
        let single = Ml.posterior plan ~observed:[ (0, r1) ] in
        (match (joint, single) with
         | Some pj, Some ps ->
           Array.iteri
             (fun i pj_i ->
               Alcotest.check rat
                 (Printf.sprintf "posterior r=(%d,%d,%d) i=%d" r1 r2 r3 i)
                 ps.(i) pj_i)
             pj
         | None, _ ->
           (* Impossible joint observation (transition prob 0): fine, a
              colluder learns nothing from an event of measure zero. *)
           ()
         | Some _, None -> Alcotest.fail "single observation must have positive mass")
      done
    done
  done

let test_posterior_without_weakest_still_no_better () =
  (* Colluding subsets that exclude level 0: the posterior from
     (r_2, r_3) must equal the posterior from r_2 alone. *)
  let n = 3 in
  let plan = Ml.make_plan ~n ~levels:levels3 in
  for r2 = 0 to n do
    for r3 = 0 to n do
      (match
         (Ml.posterior plan ~observed:[ (1, r2); (2, r3) ], Ml.posterior plan ~observed:[ (1, r2) ])
       with
       | Some pj, Some ps ->
         Array.iteri (fun i v -> Alcotest.check rat (Printf.sprintf "i=%d" i) ps.(i) v) pj
       | None, _ -> ()
       | Some _, None -> Alcotest.fail "marginal observation must have positive mass")
    done
  done

let test_posterior_is_distribution () =
  let plan = Ml.make_plan ~n:3 ~levels:levels3 in
  match Ml.posterior plan ~observed:[ (0, 1) ] with
  | None -> Alcotest.fail "possible"
  | Some p ->
    Alcotest.check rat "sums to 1" Rat.one (Array.fold_left Rat.add Rat.zero p);
    Array.iter (fun x -> Alcotest.(check bool) "nonneg" true (Rat.sign x >= 0)) p

let test_independent_releases_leak () =
  (* Contrast experiment: *independent* re-randomization (the naive
     scheme the paper warns about) leaks — the posterior from two
     independent observations differs from the single-observation
     posterior. We verify on a direct Bayes computation. *)
  let n = 3 in
  let alpha = q 1 4 in
  let g = Geo.matrix ~n ~alpha in
  (* Observing r=0 twice (independently): posterior ∝ g(i,0)^2. *)
  let post_double =
    let raw = Array.init (n + 1) (fun i -> Rat.mul (M.prob g ~input:i ~output:0) (M.prob g ~input:i ~output:0)) in
    let tot = Array.fold_left Rat.add Rat.zero raw in
    Array.map (fun x -> Rat.div x tot) raw
  in
  let post_single =
    let raw = Array.init (n + 1) (fun i -> M.prob g ~input:i ~output:0) in
    let tot = Array.fold_left Rat.add Rat.zero raw in
    Array.map (fun x -> Rat.div x tot) raw
  in
  Alcotest.(check bool) "independent releases sharpen the posterior" false
    (Array.for_all2 Rat.equal post_double post_single)

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let arb_two_levels =
  QCheck.make
    ~print:(fun (a, b) -> Printf.sprintf "%s<%s" (Rat.to_string a) (Rat.to_string b))
    QCheck.Gen.(
      map2
        (fun a b ->
          let x = Rat.of_ints (min a b) 10 and y = Rat.of_ints (max a b + 1) 10 in
          (x, y))
        (int_range 1 8) (int_range 1 8))

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

(* Random instance of the Lemma-4 setting: a strictly increasing level
   ladder (numerators over 10), a random colluding subset of stages,
   and a random value per colluded stage. *)
let arb_lemma4 =
  let gen =
    QCheck.Gen.(
      list_size (int_range 2 5) (int_range 1 9) >>= fun nums ->
      let nums = List.sort_uniq compare nums in
      let k = List.length nums in
      list_size (return k) bool >>= fun mask ->
      list_size (return k) (int_range 0 3) >>= fun vals ->
      return (nums, mask, vals))
  in
  QCheck.make
    ~print:(fun (nums, mask, vals) ->
      Printf.sprintf "levels=%s mask=%s vals=%s"
        (String.concat "," (List.map string_of_int nums))
        (String.concat "," (List.map (fun b -> if b then "1" else "0") mask))
        (String.concat "," (List.map string_of_int vals)))
    gen

let properties =
  [
    (* Lemma 4 as a property: for any ladder and any colluding subset
       of observations, the joint posterior equals the posterior of
       the subset's least-private element (its smallest α) alone —
       the extra, more-private rungs add nothing. *)
    prop "lemma 4 on random ladders and colluding subsets" 60 arb_lemma4
      (fun (nums, mask, vals) ->
        QCheck.assume (List.length nums >= 2);
        let levels = List.map (fun k -> Rat.of_ints k 10) nums in
        let plan = Ml.make_plan ~n:3 ~levels in
        let observed =
          List.concat
            (List.mapi
               (fun i (keep, v) -> if keep then [ (i, v) ] else [])
               (List.combine mask vals))
        in
        QCheck.assume (observed <> []);
        let least = List.hd observed in
        match (Ml.posterior plan ~observed, Ml.posterior plan ~observed:[ least ]) with
        | Some joint, Some single -> Array.for_all2 Rat.equal joint single
        | None, _ ->
          (* The joint observation has measure zero — nothing to learn. *)
          true
        | Some _, None -> false);
    prop "transition stochastic for random level pairs" 30 arb_two_levels (fun (a, b) ->
        Qm.is_row_stochastic (Ml.transition ~n:3 ~alpha:a ~beta:b));
    prop "transition factors exactly" 20 arb_two_levels (fun (a, b) ->
        let t = Ml.transition ~n:3 ~alpha:a ~beta:b in
        Qm.equal (Qm.mul (M.matrix (Geo.matrix ~n:3 ~alpha:a)) t) (M.matrix (Geo.matrix ~n:3 ~alpha:b)));
    prop "marginals geometric for random 2-level plans" 15 arb_two_levels (fun (a, b) ->
        QCheck.assume (not (Rat.equal a b));
        let plan = Ml.make_plan ~n:3 ~levels:[ a; b ] in
        M.equal (Ml.stage_marginal plan 1) (Geo.matrix ~n:3 ~alpha:b));
  ]

let () =
  Alcotest.run "multilevel"
    [
      ( "lemma3",
        [
          Alcotest.test_case "stochastic" `Quick test_transition_stochastic;
          Alcotest.test_case "factors geometric" `Quick test_transition_factors_geometric;
          Alcotest.test_case "identity at equal levels" `Quick test_transition_identity_when_equal;
          Alcotest.test_case "rejects backwards" `Quick test_transition_rejects_backwards;
          Alcotest.test_case "composes" `Quick test_transition_composes;
        ] );
      ( "algorithm1",
        [
          Alcotest.test_case "plan validation" `Quick test_plan_validation;
          Alcotest.test_case "stage marginals" `Quick test_stage_marginals_are_geometric;
          Alcotest.test_case "release ranges" `Quick test_release_ranges;
          Alcotest.test_case "release statistics" `Slow test_release_statistics;
        ] );
      ( "lemma4",
        [
          Alcotest.test_case "collusion invariance" `Slow test_posterior_collusion_invariance;
          Alcotest.test_case "subsets excluding weakest" `Quick test_posterior_without_weakest_still_no_better;
          Alcotest.test_case "posterior is a distribution" `Quick test_posterior_is_distribution;
          Alcotest.test_case "independent releases leak" `Quick test_independent_releases_leak;
        ] );
      ("properties", properties);
    ]
