(* Tests for the exact rational field. *)

module B = Bigint

let rat = Alcotest.testable Rat.pp Rat.equal
let q = Rat.of_ints

(* --------------------------------------------------------------- *)
(* Generators                                                       *)
(* --------------------------------------------------------------- *)

let gen_rat : Rat.t QCheck.Gen.t =
  QCheck.Gen.(
    map2
      (fun n d -> Rat.of_ints n (if d = 0 then 1 else d))
      (int_range (-10_000) 10_000)
      (int_range 1 10_000))

let arb_rat = QCheck.make ~print:Rat.to_string gen_rat

let gen_nonzero = QCheck.Gen.(map (fun r -> if Rat.is_zero r then Rat.one else r) gen_rat)
let arb_nonzero = QCheck.make ~print:Rat.to_string gen_nonzero

(* --------------------------------------------------------------- *)
(* Unit tests                                                       *)
(* --------------------------------------------------------------- *)

let test_normalization () =
  Alcotest.check rat "2/4 = 1/2" (q 1 2) (q 2 4);
  Alcotest.check rat "-2/-4 = 1/2" (q 1 2) (q (-2) (-4));
  Alcotest.check rat "2/-4 = -1/2" (q (-1) 2) (q 2 (-4));
  Alcotest.check rat "0/7 = 0" Rat.zero (q 0 7);
  Alcotest.(check string) "den positive" "1/2" (Rat.to_string (q (-1) (-2)));
  Alcotest.(check string) "zero canonical" "0" (Rat.to_string (q 0 (-5)))

let test_arith () =
  Alcotest.check rat "1/2 + 1/3" (q 5 6) (Rat.add (q 1 2) (q 1 3));
  Alcotest.check rat "1/2 - 1/3" (q 1 6) (Rat.sub (q 1 2) (q 1 3));
  Alcotest.check rat "2/3 * 3/4" (q 1 2) (Rat.mul (q 2 3) (q 3 4));
  Alcotest.check rat "(1/2) / (3/4)" (q 2 3) (Rat.div (q 1 2) (q 3 4));
  Alcotest.check rat "inv -2/3" (q (-3) 2) (Rat.inv (q (-2) 3));
  Alcotest.check rat "pow (2/3)^3" (q 8 27) (Rat.pow (q 2 3) 3);
  Alcotest.check rat "pow (2/3)^-2" (q 9 4) (Rat.pow (q 2 3) (-2));
  Alcotest.check rat "pow x^0" Rat.one (Rat.pow (q 7 5) 0);
  Alcotest.check rat "mul_int" (q 3 2) (Rat.mul_int (q 1 2) 3);
  Alcotest.check rat "div_int" (q 1 6) (Rat.div_int (q 1 2) 3)

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true (Rat.compare (q 1 3) (q 1 2) < 0);
  Alcotest.(check bool) "-1/2 < 1/3" true (Rat.compare (q (-1) 2) (q 1 3) < 0);
  Alcotest.(check bool) "equal" true (Rat.compare (q 2 6) (q 1 3) = 0);
  Alcotest.check rat "min" (q 1 3) (Rat.min (q 1 3) (q 1 2));
  Alcotest.check rat "max" (q 1 2) (Rat.max (q 1 3) (q 1 2))

let test_rounding () =
  let check_floor name x expected = Alcotest.(check string) name expected (B.to_string (Rat.floor x)) in
  check_floor "floor 7/2" (q 7 2) "3";
  check_floor "floor -7/2" (q (-7) 2) "-4";
  check_floor "floor 4" (q 4 1) "4";
  Alcotest.(check string) "ceil 7/2" "4" (B.to_string (Rat.ceil (q 7 2)));
  Alcotest.(check string) "ceil -7/2" "-3" (B.to_string (Rat.ceil (q (-7) 2)));
  Alcotest.(check string) "round 5/2 away" "3" (B.to_string (Rat.round (q 5 2)));
  Alcotest.(check string) "round -5/2 away" "-3" (B.to_string (Rat.round (q (-5) 2)));
  Alcotest.(check string) "round 1/3" "0" (B.to_string (Rat.round (q 1 3)))

let test_strings () =
  Alcotest.check rat "parse int" (q 5 1) (Rat.of_string "5");
  Alcotest.check rat "parse frac" (q 22 7) (Rat.of_string "22/7");
  Alcotest.check rat "parse negative frac" (q (-3) 4) (Rat.of_string "-3/4");
  Alcotest.check rat "parse decimal" (q 13 4) (Rat.of_string "3.25");
  Alcotest.check rat "parse negative decimal" (q (-1) 2) (Rat.of_string "-0.5");
  Alcotest.check rat "parse .5-ish" (q 1 20) (Rat.of_string "0.05");
  Alcotest.(check (option rat)) "reject garbage" None (Rat.of_string_opt "a/b");
  Alcotest.(check (option rat)) "reject trailing dot" None (Rat.of_string_opt "3.")

let test_decimal_string () =
  Alcotest.(check string) "1/2" "0.500000" (Rat.to_decimal_string (q 1 2));
  Alcotest.(check string) "1/3 places 4" "0.3333" (Rat.to_decimal_string ~places:4 (q 1 3));
  Alcotest.(check string) "2/3 rounds" "0.6667" (Rat.to_decimal_string ~places:4 (q 2 3));
  Alcotest.(check string) "-1/8" "-0.1250" (Rat.to_decimal_string ~places:4 (q (-1) 8));
  Alcotest.(check string) "integer" "3.00" (Rat.to_decimal_string ~places:2 (q 3 1));
  Alcotest.(check string) "places 0" "1" (Rat.to_decimal_string ~places:0 (q 3 4))

let test_float_conversion () =
  Alcotest.(check (float 1e-12)) "to_float 1/2" 0.5 (Rat.to_float (q 1 2));
  Alcotest.(check (float 1e-12)) "to_float -7/4" (-1.75) (Rat.to_float (q (-7) 4));
  Alcotest.check rat "of_float_dyadic 0.5" (q 1 2) (Rat.of_float_dyadic 0.5);
  Alcotest.check rat "of_float_dyadic -0.375" (q (-3) 8) (Rat.of_float_dyadic (-0.375));
  Alcotest.check rat "of_float_dyadic 0" Rat.zero (Rat.of_float_dyadic 0.0);
  (* The roundtrip is exact (0.1's dyadic value fits 53 bits), so a
     zero-tolerance float check is the right assertion. *)
  Alcotest.(check (float 0.)) "of_float_dyadic roundtrip" 0.1
    (Rat.to_float (Rat.of_float_dyadic 0.1))

let test_division_by_zero () =
  Alcotest.check_raises "make" Division_by_zero (fun () -> ignore (Rat.make B.one B.zero));
  Alcotest.check_raises "div" Division_by_zero (fun () -> ignore (Rat.div Rat.one Rat.zero));
  Alcotest.check_raises "inv" Division_by_zero (fun () -> ignore (Rat.inv Rat.zero))

let test_sum () =
  Alcotest.check rat "telescoping" Rat.one (Rat.sum [ q 1 2; q 1 4; q 1 8; q 1 8 ]);
  Alcotest.check rat "empty" Rat.zero (Rat.sum [])

let test_geometric_series () =
  (* Σ_{k=0}^{m} α^k = (1 - α^{m+1})/(1 - α): the identity underlying
     every row-sum computation in the geometric mechanism. *)
  let alpha = q 1 3 in
  let m = 10 in
  let lhs = Rat.sum (List.init (m + 1) (fun k -> Rat.pow alpha k)) in
  let rhs = Rat.div (Rat.sub Rat.one (Rat.pow alpha (m + 1))) (Rat.sub Rat.one alpha) in
  Alcotest.check rat "geometric series closed form" rhs lhs

(* --------------------------------------------------------------- *)
(* Property tests: field laws                                       *)
(* --------------------------------------------------------------- *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "normalized: gcd(num,den)=1" 300 arb_rat (fun a ->
        B.is_one (B.gcd (Rat.num a) (Rat.den a)) || Rat.is_zero a);
    prop "den > 0" 300 arb_rat (fun a -> B.sign (Rat.den a) > 0);
    prop "add commutative" 300 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal (Rat.add a b) (Rat.add b a));
    prop "mul commutative" 300 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.equal (Rat.mul a b) (Rat.mul b a));
    prop "add associative" 200
      (QCheck.triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) -> Rat.equal (Rat.add (Rat.add a b) c) (Rat.add a (Rat.add b c)));
    prop "mul associative" 200
      (QCheck.triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) -> Rat.equal (Rat.mul (Rat.mul a b) c) (Rat.mul a (Rat.mul b c)));
    prop "distributive" 200
      (QCheck.triple arb_rat arb_rat arb_rat)
      (fun (a, b, c) ->
        Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)));
    prop "additive inverse" 300 arb_rat (fun a -> Rat.is_zero (Rat.add a (Rat.neg a)));
    prop "multiplicative inverse" 300 arb_nonzero (fun a -> Rat.is_one (Rat.mul a (Rat.inv a)));
    prop "div then mul" 300 (QCheck.pair arb_rat arb_nonzero) (fun (a, b) ->
        Rat.equal a (Rat.mul (Rat.div a b) b));
    prop "string roundtrip" 300 arb_rat (fun a -> Rat.equal a (Rat.of_string (Rat.to_string a)));
    prop "compare consistent with sub" 300 (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
        Rat.compare a b = Rat.sign (Rat.sub a b));
    prop "floor <= x < floor+1" 300 arb_rat (fun a ->
        let f = Rat.of_bigint (Rat.floor a) in
        Rat.compare f a <= 0 && Rat.compare a (Rat.add f Rat.one) < 0);
    prop "ceil is -floor(-x)" 300 arb_rat (fun a ->
        B.equal (Rat.ceil a) (B.neg (Rat.floor (Rat.neg a))));
    prop "to_float ~ exact" 300 arb_rat (fun a ->
        Float.abs (Rat.to_float a -. (float_of_int (B.to_int_exn (Rat.num a)) /. float_of_int (B.to_int_exn (Rat.den a)))) < 1e-9);
    prop "of_float_dyadic exact" 300 QCheck.(float_range (-1000.) 1000.) (fun f ->
        Rat.to_float (Rat.of_float_dyadic f) = f);
  ]

(* ----------------------------------------------------------------- *)
(* Small-integer fast-path promotion boundary                          *)
(* ----------------------------------------------------------------- *)

(* The Bigint inline representation holds magnitudes of at most 62
   bits; 2^62 is the first value forced into limb form. Arithmetic at
   exactly that boundary must promote without losing exactness, and
   [to_small] must expose the representation honestly. *)
let test_promotion_boundary () =
  let two62 = B.shift_left B.one 62 in
  let below = B.sub two62 B.one in
  (* 2^62 - 1 is the largest inline value; 2^62 must be promoted. *)
  Alcotest.(check bool) "2^62-1 inline" true (B.to_small below <> None);
  Alcotest.(check bool) "2^62 promoted" true (B.to_small two62 = None);
  Alcotest.(check bool) "-(2^62-1) inline" true (B.to_small (B.neg below) <> None);
  Alcotest.(check bool) "-2^62 promoted" true (B.to_small (B.neg two62) = None);
  (* Crossing the boundary in both directions stays exact. *)
  Alcotest.(check bool) "increment promotes exactly" true (B.equal (B.add below B.one) two62);
  Alcotest.(check bool) "decrement demotes exactly" true (B.equal (B.sub two62 B.one) below);
  Alcotest.(check bool) "demoted value inline again" true
    (B.to_small (B.sub two62 B.one) <> None);
  Alcotest.(check string) "2^62 prints" "4611686018427387904" (B.to_string two62)

let test_rat_overflow_at_63_bits () =
  (* Products of two near-2^31.5 components overflow a native int at
     exactly 63 bits of magnitude; the slow path must take over with
     the same reduced result. *)
  let big = Rat.of_ints 0x3FFF_FFFF 1 in
  (* (2^30-1)² needs ~60 bits: still native; scale by 16 to cross 63. *)
  let p = Rat.mul big big in
  Alcotest.(check string) "sub-boundary product exact" "1152921502459363329" (Rat.to_string p);
  let p16 = Rat.mul (Rat.mul p (Rat.of_int 16)) (Rat.of_int 2) in
  Alcotest.(check string) "promoted product exact" "36893488078699626528" (Rat.to_string p16);
  (* A denominator at the boundary: 1/2^62 + 1/2^62 = 1/2^61. *)
  let tiny = Rat.make B.one (B.shift_left B.one 62) in
  let doubled = Rat.add tiny tiny in
  Alcotest.check rat "1/2^62 + 1/2^62" (Rat.make B.one (B.shift_left B.one 61)) doubled;
  (* Fast-path guard: components just below 2^30 stay native and
     reduce; the same values via strings agree. *)
  let a = Rat.of_ints 0x3FFF_FFFE 0x3FFF_FFFF in
  let b = Rat.of_ints 0x3FFF_FFFF 0x3FFF_FFFE in
  Alcotest.check rat "cross-boundary mul" Rat.one (Rat.mul a b);
  Alcotest.(check int) "compare across boundary" (-1) (Rat.compare a b)

let test_rat_slow_path_reduction_parity () =
  (* The Knuth-4.5.1 slow paths must produce canonically reduced
     results identical to naive make-based arithmetic. *)
  let w = Rat.make (B.of_string "123456789012345678901") (B.of_string "987654321098765432109") in
  let v = Rat.make (B.of_string "987654321") (B.of_string "123456789012345678901") in
  let sum = Rat.add w v in
  let naive_sum =
    Rat.make
      (B.add
         (B.mul (Rat.num w) (Rat.den v))
         (B.mul (Rat.num v) (Rat.den w)))
      (B.mul (Rat.den w) (Rat.den v))
  in
  Alcotest.check rat "add parity" naive_sum sum;
  let prod = Rat.mul w v in
  let naive_prod = Rat.make (B.mul (Rat.num w) (Rat.num v)) (B.mul (Rat.den w) (Rat.den v)) in
  Alcotest.check rat "mul parity" naive_prod prod;
  let dv = Rat.div w v in
  let naive_dv = Rat.make (B.mul (Rat.num w) (Rat.den v)) (B.mul (Rat.den w) (Rat.num v)) in
  Alcotest.check rat "div parity" naive_dv dv

let () =
  Alcotest.run "rat"
    [
      ( "unit",
        [
          Alcotest.test_case "normalization" `Quick test_normalization;
          Alcotest.test_case "arithmetic" `Quick test_arith;
          Alcotest.test_case "comparison" `Quick test_compare;
          Alcotest.test_case "rounding" `Quick test_rounding;
          Alcotest.test_case "strings" `Quick test_strings;
          Alcotest.test_case "decimal rendering" `Quick test_decimal_string;
          Alcotest.test_case "float conversion" `Quick test_float_conversion;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "sum" `Quick test_sum;
          Alcotest.test_case "geometric series" `Quick test_geometric_series;
          Alcotest.test_case "promotion boundary" `Quick test_promotion_boundary;
          Alcotest.test_case "overflow at 63 bits" `Quick test_rat_overflow_at_63_bits;
          Alcotest.test_case "slow-path reduction parity" `Quick test_rat_slow_path_reduction_parity;
        ] );
      ("properties", properties);
    ]
