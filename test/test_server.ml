(* End-to-end protocol tests for lib/server over real loopback
   sockets, driven entirely through the Minimax_dp umbrella: golden
   byte-exact rejection transcripts, overload and deadline admission
   control, drain-on-stop, and loopback determinism — the response
   bytes for a request file are identical whether it travels over one
   connection or several, for any worker count, and match what the
   engine produces directly for the same file. *)

module Server = Minimax_dp.Server
module F = Minimax_dp.Server.Framing
module Resp = Minimax_dp.Response
module Rq = Minimax_dp.Request
module E = Minimax_dp.Engine
module Seeder = Minimax_dp.Seeder
module J = Obs.Json

let config ?(domains = 2) ?(queue = 64) ?deadline_ms () =
  {
    Server.default_config with
    Server.domains = Some domains;
    queue_capacity = queue;
    conn_deadline_ms = deadline_ms;
  }

let with_server config f =
  let t = Server.create ~config () in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d)
    (fun () -> f t (Server.port t))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send fd lines =
  let w = F.writer fd in
  List.iter (F.enqueue w) lines;
  match F.flush_blocking w with
  | F.Flushed -> ()
  | F.Blocked | F.Closed -> Alcotest.fail "client write failed"

let half_close fd = Unix.shutdown fd Unix.SHUTDOWN_SEND

let recv_until_eof r =
  let acc = ref [] in
  let eof = ref false in
  while not !eof do
    let res = F.poll r in
    acc := List.rev_append res.F.lines !acc;
    eof := res.F.eof
  done;
  List.rev !acc

(* Read until at least [n] lines have arrived (a poll may complete
   several at once, so more can come back). *)
let recv_n r n =
  let acc = ref [] in
  let count = ref 0 in
  while !count < n do
    let res = F.poll r in
    acc := List.rev_append res.F.lines !acc;
    count := List.length !acc;
    if res.F.eof && !count < n then
      Alcotest.failf "peer closed after %d of %d responses" !count n
  done;
  List.rev !acc

(* One round trip over a fresh connection: send, half-close, read to
   eof, close. *)
let round_trip port lines =
  let fd = connect port in
  send fd lines;
  half_close fd;
  let got = recv_until_eof (F.reader fd) in
  Unix.close fd;
  got

(* The reference bytes: what [dpopt engine] emits for these request
   lines — Engine.run_jobs with Seeder streams, rendered through the
   same Response surface. Servers must reproduce them exactly. *)
let reference_lines ?(default_seed = 42) raw_lines =
  E.with_engine ~domains:1 (fun eng ->
      let seeder = Seeder.create () in
      let wires =
        List.map
          (fun l ->
            match Rq.of_line l with
            | Stdlib.Ok (Rq.Query w) -> w
            | Stdlib.Ok (Rq.Stats _) -> Alcotest.failf "reference line %S is op=stats" l
            | Stdlib.Error e ->
              Alcotest.failf "bad reference line %S: %s" l (Rq.wire_error_to_string e))
          raw_lines
      in
      let jobs =
        List.map
          (fun (w : Rq.wire) ->
            {
              E.request = w.Rq.request;
              stream = Seeder.stream seeder ~seed:(Option.value w.Rq.seed ~default:default_seed);
              budget = None;
              trace = None;
            })
          wires
      in
      E.run_jobs eng (Array.of_list jobs)
      |> Array.to_list
      |> List.map2
           (fun (w : Rq.wire) result ->
             match result with
             | Stdlib.Ok r -> Resp.to_line (Resp.of_engine ?id:w.Rq.id r)
             | Stdlib.Error e -> Resp.to_line (Resp.of_job_error ?id:w.Rq.id e))
           wires)

(* Pull a string field out of a response line via the JSON parser. *)
let json_field line path =
  match J.of_string line with
  | Stdlib.Error m -> Alcotest.failf "unparseable response %S: %s" line m
  | Stdlib.Ok json ->
    let rec walk json = function
      | [] -> J.to_str_opt json
      | k :: rest -> ( match J.member k json with None -> None | Some v -> walk v rest)
    in
    walk json path

let status_of line =
  match json_field line [ "status" ] with
  | Some s -> s
  | None -> Alcotest.failf "response without status: %S" line

(* ------------------------------------------------------------------ *)
(* Golden transcripts                                                  *)
(* ------------------------------------------------------------------ *)

(* Every protocol refusal, byte for byte: stable kinds, structured
   fields, human messages — the wire schema is frozen by this list. *)
let test_golden_rejections () =
  with_server (config ~domains:1 ()) (fun _ port ->
      let got =
        round_trip port
          [
            "v=2 n=4 alpha=1/2";
            "n=4 alpha=1/2";
            "v=1 n=4 alpha=1/2 color=red";
            "v=1 n=4";
            "v=1 junk";
            "v=1 id=q1 n=4 n=5 alpha=1/2";
            "v=1 id=bad! n=4 alpha=1/2";
            "v=1 n=4 alpha=3/2";
          ]
      in
      let expect =
        [
          {|{"v":1,"status":"error","error":{"kind":"unsupported_version","got":"2","msg":"unsupported protocol version \"2\" (this server speaks v=1)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"unsupported_version","msg":"missing protocol version (every request line starts with v=1)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"unknown_key","key":"color","msg":"unknown key \"color\" (v=1 knows v, op, id, seed, n, alpha, loss, side, input, count)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"missing field alpha="}}|};
          {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"expected key=value, got \"junk\""}}|};
          {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"duplicate key \"n\""}}|};
          {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"id \"bad!\" must be 1-64 chars of [A-Za-z0-9._:-]"}}|};
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"alpha must lie strictly between 0 and 1"}}|};
        ]
      in
      Alcotest.(check (list string)) "golden rejection transcript" expect got)

(* The consistency half of the same property: whatever of_line refuses,
   the server's bytes are exactly the unified Response rendering of
   that refusal — no second error schema can creep in. *)
let test_rejections_match_response_surface () =
  let lines =
    [ "v=3 n=9"; "v=1 n=4 alpha=1/2 extra=1"; "v=1 =x"; "v=1 n=4 alpha=0" ]
  in
  let expect =
    List.map
      (fun l ->
        match Rq.of_line l with
        | Stdlib.Ok _ -> Alcotest.failf "line unexpectedly parsed: %S" l
        | Stdlib.Error e -> Resp.to_line (Resp.of_wire_error e))
      lines
  in
  with_server (config ~domains:1 ()) (fun _ port ->
      Alcotest.(check (list string))
        "server bytes = Response.of_wire_error bytes" expect (round_trip port lines))

(* The request file every determinism test shares: distinct ids so
   responses can be matched up across connection splits, distinct
   seeds so a line's stream is a function of its own seed alone. *)
let request_file =
  [
    "v=1 id=r0 seed=101 n=5 alpha=1/3 count=4";
    "v=1 id=r1 seed=102 n=6 alpha=1/2 loss=squared count=3";
    "v=1 id=r2 seed=103 n=4 alpha=2/5 side=>=1 count=5";
    "v=1 id=r3 seed=104 n=6 alpha=1/2 loss=deadzone:1 side=2-5 input=3 count=2";
    "v=1 id=r4 seed=105 n=5 alpha=1/4 loss=capped:2 count=4";
    "v=1 id=r5 seed=106 n=4 alpha=1/3 loss=zero-one count=6";
  ]

let test_served_lines_match_engine () =
  let expect = reference_lines request_file in
  with_server (config ~domains:2 ()) (fun _ port ->
      let got = round_trip port request_file in
      Alcotest.(check (list string)) "server bytes = engine bytes" expect got;
      List.iter
        (fun line ->
          match status_of line with
          | "ok" | "degraded" -> ()
          | s -> Alcotest.failf "unexpected status %S in %S" s line)
        got)

(* Split the same file across three concurrent connections against a
   three-worker pool: after matching responses back up by id, the
   bytes are identical to the one-connection, one-worker run. *)
let test_determinism_across_connections_and_workers () =
  let expect = List.sort compare (reference_lines request_file) in
  let chunks = [ [ List.nth request_file 0; List.nth request_file 1 ];
                 [ List.nth request_file 2; List.nth request_file 3 ];
                 [ List.nth request_file 4; List.nth request_file 5 ] ]
  in
  with_server (config ~domains:3 ()) (fun _ port ->
      let fds =
        List.map
          (fun lines ->
            let fd = connect port in
            send fd lines;
            half_close fd;
            fd)
          chunks
      in
      let got =
        List.concat_map
          (fun fd ->
            let lines = recv_until_eof (F.reader fd) in
            Unix.close fd;
            lines)
          fds
      in
      Alcotest.(check (list string))
        "3 connections x 3 workers = 1 connection x 1 worker, byte for byte" expect
        (List.sort compare got))

(* Telemetry must never leak into served bytes: the same request file
   over a live fake-clock recorder and over no recorder at all — the
   responses are identical, and identical to the engine's. *)
let test_bytes_identical_with_telemetry () =
  let expect = reference_lines request_file in
  let serve_with enabled =
    let go () =
      with_server (config ~domains:2 ()) (fun _ port -> round_trip port request_file)
    in
    if enabled then
      Obs.with_recorder (Obs.create ~clock:(Obs.Clock.Fake.clock (Obs.Clock.Fake.create ())) ()) go
    else begin
      let saved = Obs.current () in
      Obs.set_current None;
      Fun.protect ~finally:(fun () -> Obs.set_current saved) go
    end
  in
  Alcotest.(check (list string)) "telemetry off = engine bytes" expect (serve_with false);
  Alcotest.(check (list string)) "telemetry on = engine bytes" expect (serve_with true)

(* The op=stats admin verb, byte for byte. A fake clock pins every
   latency to zero and the single-connection transcript fixes every
   counter, so the whole response line — the JSON snapshot and the
   Prometheus text exposition riding in it — is golden. *)
let test_golden_stats () =
  let fake = Obs.Clock.Fake.create () in
  let r = Obs.create ~clock:(Obs.Clock.Fake.clock fake) () in
  let got =
    Obs.with_recorder r (fun () ->
        with_server (config ~domains:1 ()) (fun _ port ->
            let served =
              round_trip port
                [
                  "v=1 id=q1 seed=5 n=4 alpha=1/2 count=3";
                  "v=1 id=q2 seed=6 n=4 alpha=1/2 count=2";
                ]
            in
            Alcotest.(check int) "both queries served" 2 (List.length served);
            round_trip port [ "v=1 op=stats id=s1" ]))
  in
  let expect =
    [
      {|{"v":1,"status":"stats","id":"s1","stats":{"queue":{"depth":0,"capacity":64},"conns":{"accepted":2,"aborted":0},"requests":{"admitted":2,"responses":2,"degraded":0,"errors":0,"stats":1},"rejected":{"protocol":0,"overloaded":0,"deadline":0},"engine":{"requests":2,"samples":5},"cache":{"hits":1,"misses":1,"evictions":0,"insertions":1,"bypassed":0},"store":{"hits":0,"misses":0,"corrupt":0,"writes":0,"probe_latency_us":null},"latency_us":{"window_ns":10000000000,"count":2,"p50_us":0,"p99_us":0,"p999_us":0,"max_us":0,"sum_us":0}},"prometheus":"# TYPE dpserved_queue_depth gauge\ndpserved_queue_depth 0\n# TYPE dpserved_queue_capacity gauge\ndpserved_queue_capacity 64\n# TYPE dpserved_connections_total counter\ndpserved_connections_total{event=\"accepted\"} 2\ndpserved_connections_total{event=\"aborted\"} 0\n# TYPE dpserved_requests_total counter\ndpserved_requests_total{outcome=\"admitted\"} 2\ndpserved_requests_total{outcome=\"responses\"} 2\ndpserved_requests_total{outcome=\"degraded\"} 0\ndpserved_requests_total{outcome=\"errors\"} 0\ndpserved_requests_total{outcome=\"stats\"} 1\n# TYPE dpserved_rejected_total counter\ndpserved_rejected_total{reason=\"protocol\"} 0\ndpserved_rejected_total{reason=\"overloaded\"} 0\ndpserved_rejected_total{reason=\"deadline\"} 0\n# TYPE dpserved_engine_requests_total counter\ndpserved_engine_requests_total 2\n# TYPE dpserved_engine_samples_total counter\ndpserved_engine_samples_total 5\n# TYPE dpserved_cache_events_total counter\ndpserved_cache_events_total{event=\"hits\"} 1\ndpserved_cache_events_total{event=\"misses\"} 1\ndpserved_cache_events_total{event=\"evictions\"} 0\ndpserved_cache_events_total{event=\"insertions\"} 1\ndpserved_cache_events_total{event=\"bypassed\"} 0\n# TYPE dpserved_store_events_total counter\ndpserved_store_events_total{event=\"hits\"} 0\ndpserved_store_events_total{event=\"misses\"} 0\ndpserved_store_events_total{event=\"corrupt\"} 0\ndpserved_store_events_total{event=\"writes\"} 0\n# TYPE dpserved_store_probe_microseconds summary\ndpserved_store_probe_microseconds{quantile=\"0.5\"} 0\ndpserved_store_probe_microseconds{quantile=\"0.99\"} 0\ndpserved_store_probe_microseconds{quantile=\"0.999\"} 0\ndpserved_store_probe_microseconds_sum 0\ndpserved_store_probe_microseconds_count 0\n# TYPE dpserved_latency_microseconds summary\ndpserved_latency_microseconds{quantile=\"0.5\"} 0\ndpserved_latency_microseconds{quantile=\"0.99\"} 0\ndpserved_latency_microseconds{quantile=\"0.999\"} 0\ndpserved_latency_microseconds_sum 0\ndpserved_latency_microseconds_count 2\n"}|};
    ]
  in
  Alcotest.(check (list string)) "golden stats transcript" expect got

(* op=stats takes only id=; anything else is refused with a typed
   invalid, and unknown ops name the verb the server does know. *)
let test_stats_grammar_rejections () =
  with_server (config ~domains:1 ()) (fun _ port ->
      let got =
        round_trip port [ "v=1 op=stats n=4"; "v=1 op=flush" ]
      in
      let expect =
        [
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"op=stats takes no n= (only id=)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"unknown op \"flush\" (this server knows op=stats)"}}|};
        ]
      in
      Alcotest.(check (list string)) "stats grammar rejections" expect got)

(* Protocol errors are answered immediately; served responses follow
   in admission order — the documented interleaving. *)
let test_error_ordering () =
  let ok0 = "v=1 id=m0 seed=301 n=4 alpha=1/2 count=2" in
  let ok1 = "v=1 id=m1 seed=302 n=4 alpha=1/3 count=2" in
  let expect_err =
    {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"expected key=value, got \"bogus\""}}|}
  in
  let expect = expect_err :: reference_lines [ ok0; ok1 ] in
  with_server (config ~domains:1 ()) (fun _ port ->
      let got = round_trip port [ ok0; "v=1 bogus"; ok1 ] in
      Alcotest.(check (list string)) "errors first, then served responses in order" expect got)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* A queue bound of 1 under a burst of 8: some requests serve, the
   rest are refused with the typed overloaded response — immediately,
   with every request answered (never a hang, never a silent drop). *)
let test_overload_refusal () =
  let ids = List.init 8 (fun k -> Printf.sprintf "o%d" k) in
  let lines =
    List.map (fun id -> Printf.sprintf "v=1 id=%s seed=400 n=6 alpha=1/2 count=4" id) ids
  in
  with_server (config ~domains:1 ~queue:1 ()) (fun _ port ->
      let got = round_trip port lines in
      Alcotest.(check int) "every request answered" 8 (List.length got);
      let seen =
        List.map
          (fun line ->
            match json_field line [ "id" ] with
            | Some id -> id
            | None -> Alcotest.failf "response without id: %S" line)
          got
      in
      Alcotest.(check (list string)) "each id answered exactly once" ids (List.sort compare seen);
      let served, refused =
        List.partition (fun line -> status_of line <> "error") got
      in
      List.iter
        (fun line ->
          let id = Option.value (json_field line [ "id" ]) ~default:"?" in
          let expect =
            Printf.sprintf
              {|{"v":1,"status":"error","id":"%s","error":{"kind":"overloaded","pending":1,"capacity":1,"msg":"pending queue full (1/1); retry later"}}|}
              id
          in
          Alcotest.(check string) "typed overloaded refusal" expect line)
        refused;
      if served = [] then Alcotest.fail "admission control refused everything";
      if refused = [] then Alcotest.fail "burst of 8 against queue=1 refused nothing")

(* An expired connection deadline refuses with deadline_exceeded. *)
let test_deadline_refusal () =
  with_server (config ~domains:1 ~deadline_ms:1 ()) (fun _ port ->
      let fd = connect port in
      Unix.sleepf 0.05;
      send fd [ "v=1 id=d1 n=4 alpha=1/2" ];
      half_close fd;
      let got = recv_until_eof (F.reader fd) in
      Unix.close fd;
      let expect =
        [
          {|{"v":1,"status":"error","id":"d1","error":{"kind":"deadline_exceeded","msg":"connection deadline exceeded"}}|};
        ]
      in
      Alcotest.(check (list string)) "typed deadline refusal" expect got)

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

(* stop() while requests are in flight: the listener closes to new
   connections, but every admitted request is still answered and
   flushed — with exactly the reference bytes. *)
let test_drain_on_stop () =
  let lines =
    [
      "v=1 id=d0 seed=501 n=5 alpha=1/3 count=3";
      "v=1 id=d1 seed=502 n=4 alpha=1/2 count=3";
      "v=1 id=d2 seed=503 n=4 alpha=2/5 count=3";
    ]
  in
  let expect = reference_lines lines in
  with_server (config ~domains:1 ()) (fun t port ->
      let fd = connect port in
      let r = F.reader fd in
      send fd lines;
      (* Wait for the first response — proof the connection was
         accepted and its requests admitted — before asking for the
         drain; a connection still sitting in the listen backlog at
         stop() time is fair game to drop. *)
      let first = recv_n r 1 in
      Server.stop t;
      let rest = recv_n r (3 - List.length first) in
      Alcotest.(check (list string))
        "in-flight requests drain with reference bytes" expect (first @ rest);
      let rec expect_refused attempts =
        if attempts = 0 then Alcotest.fail "listener still accepting after stop"
        else
          match connect port with
          | probe ->
            Unix.close probe;
            Unix.sleepf 0.02;
            expect_refused (attempts - 1)
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      in
      expect_refused 100;
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_framing_round_trip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let w = F.writer a in
  F.enqueue w "alpha";
  F.enqueue w "beta\r";
  (match F.flush_blocking w with
   | F.Flushed -> ()
   | F.Blocked | F.Closed -> Alcotest.fail "flush failed");
  Unix.close a;
  let got = recv_until_eof (F.reader b) in
  Unix.close b;
  Alcotest.(check (list string)) "lines framed, CR stripped" [ "alpha"; "beta" ] got

(* An unterminated line past max_line is flagged as overflow rather
   than buffered without bound. *)
let test_framing_overflow () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let w = F.writer a in
  F.enqueue w (String.make 6000 'x');
  (match F.flush_blocking w with
   | F.Flushed -> ()
   | F.Blocked | F.Closed -> Alcotest.fail "flush failed");
  Unix.close a;
  let r = F.reader ~max_line:256 b in
  let overflowed = ref false in
  let eof = ref false in
  while not !eof do
    let res = F.poll r in
    if res.F.overflow then overflowed := true;
    eof := res.F.eof
  done;
  Unix.close b;
  Alcotest.(check bool) "oversized unterminated line flagged" true !overflowed

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "golden rejection transcript" `Quick test_golden_rejections;
          Alcotest.test_case "rejections match Response surface" `Quick
            test_rejections_match_response_surface;
          Alcotest.test_case "error ordering" `Quick test_error_ordering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "served lines match engine" `Quick test_served_lines_match_engine;
          Alcotest.test_case "bytes identical with telemetry on/off" `Quick
            test_bytes_identical_with_telemetry;
          Alcotest.test_case "connection splits and worker counts" `Quick
            test_determinism_across_connections_and_workers;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload refusal" `Quick test_overload_refusal;
          Alcotest.test_case "deadline refusal" `Quick test_deadline_refusal;
        ] );
      ( "stats",
        [
          Alcotest.test_case "golden op=stats transcript" `Quick test_golden_stats;
          Alcotest.test_case "stats grammar rejections" `Quick test_stats_grammar_rejections;
        ] );
      ("shutdown", [ Alcotest.test_case "drain on stop" `Quick test_drain_on_stop ]);
      ( "framing",
        [
          Alcotest.test_case "round trip" `Quick test_framing_round_trip;
          Alcotest.test_case "overflow" `Quick test_framing_overflow;
        ] );
    ]
