(* End-to-end protocol tests for lib/server over real loopback
   sockets, driven entirely through the Minimax_dp umbrella: golden
   byte-exact rejection transcripts, overload and deadline admission
   control, drain-on-stop, and loopback determinism — the response
   bytes for a request file are identical whether it travels over one
   connection or several, for any worker count, and match what the
   engine produces directly for the same file. *)

module Server = Minimax_dp.Server
module F = Minimax_dp.Server.Framing
module Resp = Minimax_dp.Response
module Rq = Minimax_dp.Request
module E = Minimax_dp.Engine
module Seeder = Minimax_dp.Seeder
module J = Obs.Json

let config ?(domains = 2) ?(queue = 64) ?deadline_ms () =
  {
    Server.default_config with
    Server.domains = Some domains;
    queue_capacity = queue;
    conn_deadline_ms = deadline_ms;
  }

let with_server config f =
  let t = Server.create ~config () in
  let d = Domain.spawn (fun () -> Server.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop t;
      Domain.join d)
    (fun () -> f t (Server.port t))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let send fd lines =
  let w = F.writer fd in
  List.iter (F.enqueue w) lines;
  match F.flush_blocking w with
  | F.Flushed -> ()
  | F.Blocked | F.Closed -> Alcotest.fail "client write failed"

let half_close fd = Unix.shutdown fd Unix.SHUTDOWN_SEND

let recv_until_eof r =
  let acc = ref [] in
  let eof = ref false in
  while not !eof do
    let res = F.poll r in
    acc := List.rev_append res.F.lines !acc;
    eof := res.F.eof
  done;
  List.rev !acc

(* Read until at least [n] lines have arrived (a poll may complete
   several at once, so more can come back). *)
let recv_n r n =
  let acc = ref [] in
  let count = ref 0 in
  while !count < n do
    let res = F.poll r in
    acc := List.rev_append res.F.lines !acc;
    count := List.length !acc;
    if res.F.eof && !count < n then
      Alcotest.failf "peer closed after %d of %d responses" !count n
  done;
  List.rev !acc

(* One round trip over a fresh connection: send, half-close, read to
   eof, close. *)
let round_trip port lines =
  let fd = connect port in
  send fd lines;
  half_close fd;
  let got = recv_until_eof (F.reader fd) in
  Unix.close fd;
  got

(* The reference bytes: what [dpopt engine] emits for these request
   lines — Engine.run_jobs with Seeder streams, rendered through the
   same Response surface. Servers must reproduce them exactly. *)
let reference_lines ?(default_seed = 42) raw_lines =
  E.with_engine ~domains:1 (fun eng ->
      let seeder = Seeder.create () in
      let wires =
        List.map
          (fun l ->
            match Rq.of_line l with
            | Stdlib.Ok (Rq.Query w) -> w
            | Stdlib.Ok (Rq.Stats _ | Rq.Session _) -> Alcotest.failf "reference line %S is an op verb" l
            | Stdlib.Error e ->
              Alcotest.failf "bad reference line %S: %s" l (Rq.wire_error_to_string e))
          raw_lines
      in
      let jobs =
        List.map
          (fun (w : Rq.wire) ->
            {
              E.request = w.Rq.request;
              stream = Seeder.stream seeder ~seed:(Option.value w.Rq.seed ~default:default_seed);
              budget = None;
              trace = None;
            })
          wires
      in
      E.run_jobs eng (Array.of_list jobs)
      |> Array.to_list
      |> List.map2
           (fun (w : Rq.wire) result ->
             match result with
             | Stdlib.Ok r -> Resp.to_line (Resp.of_engine ?id:w.Rq.id r)
             | Stdlib.Error e -> Resp.to_line (Resp.of_job_error ?id:w.Rq.id e))
           wires)

(* Pull a string field out of a response line via the JSON parser. *)
let json_field line path =
  match J.of_string line with
  | Stdlib.Error m -> Alcotest.failf "unparseable response %S: %s" line m
  | Stdlib.Ok json ->
    let rec walk json = function
      | [] -> J.to_str_opt json
      | k :: rest -> ( match J.member k json with None -> None | Some v -> walk v rest)
    in
    walk json path

let status_of line =
  match json_field line [ "status" ] with
  | Some s -> s
  | None -> Alcotest.failf "response without status: %S" line

(* ------------------------------------------------------------------ *)
(* Golden transcripts                                                  *)
(* ------------------------------------------------------------------ *)

(* Every protocol refusal, byte for byte: stable kinds, structured
   fields, human messages — the wire schema is frozen by this list. *)
let test_golden_rejections () =
  with_server (config ~domains:1 ()) (fun _ port ->
      let got =
        round_trip port
          [
            "v=2 n=4 alpha=1/2";
            "n=4 alpha=1/2";
            "v=1 n=4 alpha=1/2 color=red";
            "v=1 n=4";
            "v=1 junk";
            "v=1 id=q1 n=4 n=5 alpha=1/2";
            "v=1 id=bad! n=4 alpha=1/2";
            "v=1 n=4 alpha=3/2";
          ]
      in
      let expect =
        [
          {|{"v":1,"status":"error","error":{"kind":"unsupported_version","got":"2","msg":"unsupported protocol version \"2\" (this server speaks v=1)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"unsupported_version","msg":"missing protocol version (every request line starts with v=1)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"unknown_key","key":"color","msg":"unknown key \"color\" (v=1 knows v, op, id, seed, n, alpha, loss, side, input, count, sub, budget)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"missing field alpha="}}|};
          {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"expected key=value, got \"junk\""}}|};
          {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"duplicate key \"n\""}}|};
          {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"id \"bad!\" must be 1-64 chars of [A-Za-z0-9._:-]"}}|};
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"alpha must lie strictly between 0 and 1"}}|};
        ]
      in
      Alcotest.(check (list string)) "golden rejection transcript" expect got)

(* The consistency half of the same property: whatever of_line refuses,
   the server's bytes are exactly the unified Response rendering of
   that refusal — no second error schema can creep in. *)
let test_rejections_match_response_surface () =
  let lines =
    [ "v=3 n=9"; "v=1 n=4 alpha=1/2 extra=1"; "v=1 =x"; "v=1 n=4 alpha=0" ]
  in
  let expect =
    List.map
      (fun l ->
        match Rq.of_line l with
        | Stdlib.Ok _ -> Alcotest.failf "line unexpectedly parsed: %S" l
        | Stdlib.Error e -> Resp.to_line (Resp.of_wire_error e))
      lines
  in
  with_server (config ~domains:1 ()) (fun _ port ->
      Alcotest.(check (list string))
        "server bytes = Response.of_wire_error bytes" expect (round_trip port lines))

(* The request file every determinism test shares: distinct ids so
   responses can be matched up across connection splits, distinct
   seeds so a line's stream is a function of its own seed alone. *)
let request_file =
  [
    "v=1 id=r0 seed=101 n=5 alpha=1/3 count=4";
    "v=1 id=r1 seed=102 n=6 alpha=1/2 loss=squared count=3";
    "v=1 id=r2 seed=103 n=4 alpha=2/5 side=>=1 count=5";
    "v=1 id=r3 seed=104 n=6 alpha=1/2 loss=deadzone:1 side=2-5 input=3 count=2";
    "v=1 id=r4 seed=105 n=5 alpha=1/4 loss=capped:2 count=4";
    "v=1 id=r5 seed=106 n=4 alpha=1/3 loss=zero-one count=6";
  ]

let test_served_lines_match_engine () =
  let expect = reference_lines request_file in
  with_server (config ~domains:2 ()) (fun _ port ->
      let got = round_trip port request_file in
      Alcotest.(check (list string)) "server bytes = engine bytes" expect got;
      List.iter
        (fun line ->
          match status_of line with
          | "ok" | "degraded" -> ()
          | s -> Alcotest.failf "unexpected status %S in %S" s line)
        got)

(* Split the same file across three concurrent connections against a
   three-worker pool: after matching responses back up by id, the
   bytes are identical to the one-connection, one-worker run. *)
let test_determinism_across_connections_and_workers () =
  let expect = List.sort compare (reference_lines request_file) in
  let chunks = [ [ List.nth request_file 0; List.nth request_file 1 ];
                 [ List.nth request_file 2; List.nth request_file 3 ];
                 [ List.nth request_file 4; List.nth request_file 5 ] ]
  in
  with_server (config ~domains:3 ()) (fun _ port ->
      let fds =
        List.map
          (fun lines ->
            let fd = connect port in
            send fd lines;
            half_close fd;
            fd)
          chunks
      in
      let got =
        List.concat_map
          (fun fd ->
            let lines = recv_until_eof (F.reader fd) in
            Unix.close fd;
            lines)
          fds
      in
      Alcotest.(check (list string))
        "3 connections x 3 workers = 1 connection x 1 worker, byte for byte" expect
        (List.sort compare got))

(* Telemetry must never leak into served bytes: the same request file
   over a live fake-clock recorder and over no recorder at all — the
   responses are identical, and identical to the engine's. *)
let test_bytes_identical_with_telemetry () =
  let expect = reference_lines request_file in
  let serve_with enabled =
    let go () =
      with_server (config ~domains:2 ()) (fun _ port -> round_trip port request_file)
    in
    if enabled then
      Obs.with_recorder (Obs.create ~clock:(Obs.Clock.Fake.clock (Obs.Clock.Fake.create ())) ()) go
    else begin
      let saved = Obs.current () in
      Obs.set_current None;
      Fun.protect ~finally:(fun () -> Obs.set_current saved) go
    end
  in
  Alcotest.(check (list string)) "telemetry off = engine bytes" expect (serve_with false);
  Alcotest.(check (list string)) "telemetry on = engine bytes" expect (serve_with true)

(* The op=stats admin verb, byte for byte. A fake clock pins every
   latency to zero and the single-connection transcript fixes every
   counter, so the whole response line — the JSON snapshot and the
   Prometheus text exposition riding in it — is golden. *)
let test_golden_stats () =
  let fake = Obs.Clock.Fake.create () in
  let r = Obs.create ~clock:(Obs.Clock.Fake.clock fake) () in
  let got =
    Obs.with_recorder r (fun () ->
        with_server (config ~domains:1 ()) (fun _ port ->
            let served =
              round_trip port
                [
                  "v=1 id=q1 seed=5 n=4 alpha=1/2 count=3";
                  "v=1 id=q2 seed=6 n=4 alpha=1/2 count=2";
                ]
            in
            Alcotest.(check int) "both queries served" 2 (List.length served);
            round_trip port [ "v=1 op=stats id=s1" ]))
  in
  let expect =
    [
      {|{"v":1,"status":"stats","id":"s1","stats":{"queue":{"depth":0,"capacity":64},"conns":{"accepted":2,"aborted":0},"requests":{"admitted":2,"responses":2,"degraded":0,"errors":0,"stats":1},"rejected":{"protocol":0,"overloaded":0,"deadline":0},"engine":{"requests":2,"samples":5},"lp":{"solves":1,"pivots":37,"warm_hits":0,"warm_misses":0,"refactorizations":2},"cache":{"hits":1,"misses":1,"evictions":0,"insertions":1,"bypassed":0},"store":{"hits":0,"misses":0,"corrupt":0,"writes":0,"probe_latency_us":null},"session":{"groups":0,"subscribers":0,"subscribes":0,"unsubscribes":0,"detached":0,"epochs":0,"served":0,"refused_budget":0,"checkpoints":0,"checkpoint_failed":0,"epoch_latency_us":null},"latency_us":{"window_ns":10000000000,"count":2,"p50_us":0,"p99_us":0,"p999_us":0,"max_us":0,"sum_us":0}},"prometheus":"# TYPE dpserved_queue_depth gauge\ndpserved_queue_depth 0\n# TYPE dpserved_queue_capacity gauge\ndpserved_queue_capacity 64\n# TYPE dpserved_connections_total counter\ndpserved_connections_total{event=\"accepted\"} 2\ndpserved_connections_total{event=\"aborted\"} 0\n# TYPE dpserved_requests_total counter\ndpserved_requests_total{outcome=\"admitted\"} 2\ndpserved_requests_total{outcome=\"responses\"} 2\ndpserved_requests_total{outcome=\"degraded\"} 0\ndpserved_requests_total{outcome=\"errors\"} 0\ndpserved_requests_total{outcome=\"stats\"} 1\n# TYPE dpserved_rejected_total counter\ndpserved_rejected_total{reason=\"protocol\"} 0\ndpserved_rejected_total{reason=\"overloaded\"} 0\ndpserved_rejected_total{reason=\"deadline\"} 0\n# TYPE dpserved_engine_requests_total counter\ndpserved_engine_requests_total 2\n# TYPE dpserved_engine_samples_total counter\ndpserved_engine_samples_total 5\n# TYPE dpserved_lp_events_total counter\ndpserved_lp_events_total{event=\"solves\"} 1\ndpserved_lp_events_total{event=\"pivots\"} 37\ndpserved_lp_events_total{event=\"warm_hits\"} 0\ndpserved_lp_events_total{event=\"warm_misses\"} 0\ndpserved_lp_events_total{event=\"refactorizations\"} 2\n# TYPE dpserved_cache_events_total counter\ndpserved_cache_events_total{event=\"hits\"} 1\ndpserved_cache_events_total{event=\"misses\"} 1\ndpserved_cache_events_total{event=\"evictions\"} 0\ndpserved_cache_events_total{event=\"insertions\"} 1\ndpserved_cache_events_total{event=\"bypassed\"} 0\n# TYPE dpserved_store_events_total counter\ndpserved_store_events_total{event=\"hits\"} 0\ndpserved_store_events_total{event=\"misses\"} 0\ndpserved_store_events_total{event=\"corrupt\"} 0\ndpserved_store_events_total{event=\"writes\"} 0\n# TYPE dpserved_session_groups gauge\ndpserved_session_groups 0\n# TYPE dpserved_session_subscribers gauge\ndpserved_session_subscribers 0\n# TYPE dpserved_session_events_total counter\ndpserved_session_events_total{event=\"subscribes\"} 0\ndpserved_session_events_total{event=\"unsubscribes\"} 0\ndpserved_session_events_total{event=\"detached\"} 0\ndpserved_session_events_total{event=\"epochs\"} 0\ndpserved_session_events_total{event=\"served\"} 0\ndpserved_session_events_total{event=\"refused_budget\"} 0\ndpserved_session_events_total{event=\"checkpoints\"} 0\ndpserved_session_events_total{event=\"checkpoint_failed\"} 0\n# TYPE dpserved_store_probe_microseconds summary\ndpserved_store_probe_microseconds{quantile=\"0.5\"} 0\ndpserved_store_probe_microseconds{quantile=\"0.99\"} 0\ndpserved_store_probe_microseconds{quantile=\"0.999\"} 0\ndpserved_store_probe_microseconds_sum 0\ndpserved_store_probe_microseconds_count 0\n# TYPE dpserved_session_epoch_microseconds summary\ndpserved_session_epoch_microseconds{quantile=\"0.5\"} 0\ndpserved_session_epoch_microseconds{quantile=\"0.99\"} 0\ndpserved_session_epoch_microseconds{quantile=\"0.999\"} 0\ndpserved_session_epoch_microseconds_sum 0\ndpserved_session_epoch_microseconds_count 0\n# TYPE dpserved_latency_microseconds summary\ndpserved_latency_microseconds{quantile=\"0.5\"} 0\ndpserved_latency_microseconds{quantile=\"0.99\"} 0\ndpserved_latency_microseconds{quantile=\"0.999\"} 0\ndpserved_latency_microseconds_sum 0\ndpserved_latency_microseconds_count 2\n"}|};
    ]
  in
  Alcotest.(check (list string)) "golden stats transcript" expect got

(* op=stats takes only id=; anything else is refused with a typed
   invalid, and unknown ops name the verb the server does know. *)
let test_stats_grammar_rejections () =
  with_server (config ~domains:1 ()) (fun _ port ->
      let got =
        round_trip port [ "v=1 op=stats n=4"; "v=1 op=flush" ]
      in
      let expect =
        [
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"op=stats takes no n= (only id=)"}}|};
          {|{"v":1,"status":"error","error":{"kind":"invalid","msg":"unknown op \"flush\" (this server knows op=stats, subscribe, release, unsubscribe, ledger)"}}|};
        ]
      in
      Alcotest.(check (list string)) "stats grammar rejections" expect got)

(* Protocol errors are answered immediately; served responses follow
   in admission order — the documented interleaving. *)
let test_error_ordering () =
  let ok0 = "v=1 id=m0 seed=301 n=4 alpha=1/2 count=2" in
  let ok1 = "v=1 id=m1 seed=302 n=4 alpha=1/3 count=2" in
  let expect_err =
    {|{"v":1,"status":"error","error":{"kind":"malformed","msg":"expected key=value, got \"bogus\""}}|}
  in
  let expect = expect_err :: reference_lines [ ok0; ok1 ] in
  with_server (config ~domains:1 ()) (fun _ port ->
      let got = round_trip port [ ok0; "v=1 bogus"; ok1 ] in
      Alcotest.(check (list string)) "errors first, then served responses in order" expect got)

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

(* A queue bound of 1 under a burst of 8: some requests serve, the
   rest are refused with the typed overloaded response — immediately,
   with every request answered (never a hang, never a silent drop). *)
let test_overload_refusal () =
  let ids = List.init 8 (fun k -> Printf.sprintf "o%d" k) in
  let lines =
    List.map (fun id -> Printf.sprintf "v=1 id=%s seed=400 n=6 alpha=1/2 count=4" id) ids
  in
  with_server (config ~domains:1 ~queue:1 ()) (fun _ port ->
      let got = round_trip port lines in
      Alcotest.(check int) "every request answered" 8 (List.length got);
      let seen =
        List.map
          (fun line ->
            match json_field line [ "id" ] with
            | Some id -> id
            | None -> Alcotest.failf "response without id: %S" line)
          got
      in
      Alcotest.(check (list string)) "each id answered exactly once" ids (List.sort compare seen);
      let served, refused =
        List.partition (fun line -> status_of line <> "error") got
      in
      List.iter
        (fun line ->
          let id = Option.value (json_field line [ "id" ]) ~default:"?" in
          let expect =
            Printf.sprintf
              {|{"v":1,"status":"error","id":"%s","error":{"kind":"overloaded","pending":1,"capacity":1,"msg":"pending queue full (1/1); retry later"}}|}
              id
          in
          Alcotest.(check string) "typed overloaded refusal" expect line)
        refused;
      if served = [] then Alcotest.fail "admission control refused everything";
      if refused = [] then Alcotest.fail "burst of 8 against queue=1 refused nothing")

(* An expired connection deadline refuses with deadline_exceeded. *)
let test_deadline_refusal () =
  with_server (config ~domains:1 ~deadline_ms:1 ()) (fun _ port ->
      let fd = connect port in
      Unix.sleepf 0.05;
      send fd [ "v=1 id=d1 n=4 alpha=1/2" ];
      half_close fd;
      let got = recv_until_eof (F.reader fd) in
      Unix.close fd;
      let expect =
        [
          {|{"v":1,"status":"error","id":"d1","error":{"kind":"deadline_exceeded","msg":"connection deadline exceeded"}}|};
        ]
      in
      Alcotest.(check (list string)) "typed deadline refusal" expect got)

(* ------------------------------------------------------------------ *)
(* Shutdown                                                            *)
(* ------------------------------------------------------------------ *)

(* stop() while requests are in flight: the listener closes to new
   connections, but every admitted request is still answered and
   flushed — with exactly the reference bytes. *)
let test_drain_on_stop () =
  let lines =
    [
      "v=1 id=d0 seed=501 n=5 alpha=1/3 count=3";
      "v=1 id=d1 seed=502 n=4 alpha=1/2 count=3";
      "v=1 id=d2 seed=503 n=4 alpha=2/5 count=3";
    ]
  in
  let expect = reference_lines lines in
  with_server (config ~domains:1 ()) (fun t port ->
      let fd = connect port in
      let r = F.reader fd in
      send fd lines;
      (* Wait for the first response — proof the connection was
         accepted and its requests admitted — before asking for the
         drain; a connection still sitting in the listen backlog at
         stop() time is fair game to drop. *)
      let first = recv_n r 1 in
      Server.stop t;
      let rest = recv_n r (3 - List.length first) in
      Alcotest.(check (list string))
        "in-flight requests drain with reference bytes" expect (first @ rest);
      let rec expect_refused attempts =
        if attempts = 0 then Alcotest.fail "listener still accepting after stop"
        else
          match connect port with
          | probe ->
            Unix.close probe;
            Unix.sleepf 0.02;
            expect_refused (attempts - 1)
          | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ()
      in
      expect_refused 100;
      Unix.close fd)

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let test_framing_round_trip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let w = F.writer a in
  F.enqueue w "alpha";
  F.enqueue w "beta\r";
  (match F.flush_blocking w with
   | F.Flushed -> ()
   | F.Blocked | F.Closed -> Alcotest.fail "flush failed");
  Unix.close a;
  let got = recv_until_eof (F.reader b) in
  Unix.close b;
  Alcotest.(check (list string)) "lines framed, CR stripped" [ "alpha"; "beta" ] got

(* An unterminated line past max_line is flagged as overflow rather
   than buffered without bound. *)
let test_framing_overflow () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let w = F.writer a in
  F.enqueue w (String.make 6000 'x');
  (match F.flush_blocking w with
   | F.Flushed -> ()
   | F.Blocked | F.Closed -> Alcotest.fail "flush failed");
  Unix.close a;
  let r = F.reader ~max_line:256 b in
  let overflowed = ref false in
  let eof = ref false in
  while not !eof do
    let res = F.poll r in
    if res.F.overflow then overflowed := true;
    eof := res.F.eof
  done;
  Unix.close b;
  Alcotest.(check bool) "oversized unterminated line flagged" true !overflowed

(* ------------------------------------------------------------------ *)
(* Sessions                                                            *)
(* ------------------------------------------------------------------ *)

module Sess = Minimax_dp.Session
module Cert = Minimax_dp.Session.Certificate
module ML = Minimax.Multi_level

let q = Rat.of_ints

let json_of line =
  match J.of_string line with
  | Stdlib.Ok j -> j
  | Stdlib.Error m -> Alcotest.failf "unparseable response %S: %s" line m

let json_at line path =
  let rec walk j = function
    | [] -> j
    | k :: rest -> (
      match J.member k j with
      | Some v -> walk v rest
      | None -> Alcotest.failf "response %S lacks %s" line (String.concat "." path))
  in
  walk (json_of line) path

let int_at line path =
  match J.to_int_opt (json_at line path) with
  | Some i -> i
  | None -> Alcotest.failf "field %s of %S is not an int" (String.concat "." path) line

let check_rat_field label expect line path =
  Alcotest.(check string)
    label
    (J.to_string (J.rat expect))
    (J.to_string (json_at line path))

let values_json a = J.to_string (J.List (Array.to_list (Array.map (fun v -> J.Int v) a)))

(* The full wire lifecycle across two connections: three subscribers at
   three privacy levels share one group, every op=release serves all
   rungs from a single correlated draw — the pure function of
   (seed, group, epoch) — pushes land with subscribe-time ids, the
   ledger refuses an over-budget subscriber with a typed
   budget_exhausted line, and the certificate that crossed the wire
   replays green. *)
let test_session_lifecycle () =
  let group = Sess.group_key ~n:6 ~input:3 in
  let levels = [ q 1 3; q 1 2; q 2 3 ] in
  let plan = ML.make_plan ~n:6 ~levels in
  let draw epoch =
    ML.release plan ~true_result:3 (Sess.epoch_stream ~seed:42 ~group ~epoch)
  in
  with_server (config ~domains:2 ()) (fun _ port ->
      let fa = connect port and fb = connect port in
      let ra = F.reader fa and rb = F.reader fb in
      send fa
        [
          "v=1 op=subscribe id=sa sub=alice n=6 input=3 alpha=1/3";
          "v=1 op=subscribe id=sc sub=carol n=6 input=3 alpha=2/3";
        ];
      (match recv_n ra 2 with
      | [ la; lc ] ->
        Alcotest.(check string) "alice subscribed" "subscribed" (status_of la);
        check_rat_field "ledger opens at 1" Rat.one la [ "session"; "spent" ];
        Alcotest.(check string) "carol subscribed" "subscribed" (status_of lc)
      | _ -> Alcotest.fail "expected two subscribe acks");
      send fb [ "v=1 op=subscribe id=sb sub=bob n=6 input=3 alpha=1/2 budget=1/4" ];
      ignore (recv_n rb 1);
      (* Epoch 0, called from connection B: B gets the summary first,
         then its own push; A gets alice's and carol's pushes. *)
      send fb [ "v=1 op=release id=e0 n=6 input=3" ];
      let b_lines = recv_n rb 2 and a_lines = recv_n ra 2 in
      let summary = List.nth b_lines 0 in
      Alcotest.(check string) "summary status" "released" (status_of summary);
      let expect0 = draw 0 in
      Alcotest.(check string)
        "wire values = the epoch-0 draw" (values_json expect0)
        (J.to_string (json_at summary [ "release"; "values" ]));
      (match Cert.of_json (json_at summary [ "release"; "certificate" ]) with
      | Stdlib.Error m -> Alcotest.failf "wire certificate unparseable: %s" m
      | Stdlib.Ok cert -> (
        match Cert.replay cert with
        | Stdlib.Ok () -> ()
        | Stdlib.Error rule -> Alcotest.failf "wire certificate replays red: %s" rule));
      let check_push line ~id ~sub ~idx =
        Alcotest.(check string) (sub ^ " push status") "release" (status_of line);
        Alcotest.(check (option string))
          (sub ^ " push carries its subscribe-time id")
          (Some id) (json_field line [ "id" ]);
        Alcotest.(check (option string)) (sub ^ " push sub") (Some sub)
          (json_field line [ "sub" ]);
        Alcotest.(check int)
          (sub ^ " rung served off the shared draw")
          expect0.(idx)
          (int_at line [ "value" ])
      in
      check_push (List.nth b_lines 1) ~id:"sb" ~sub:"bob" ~idx:1;
      check_push (List.nth a_lines 0) ~id:"sa" ~sub:"alice" ~idx:0;
      check_push (List.nth a_lines 1) ~id:"sc" ~sub:"carol" ~idx:2;
      (* Epoch 1, called from A: bob's spend hits the floor exactly
         (1/2 · 1/2 = 1/4, not below it), so he is still served. *)
      send fa [ "v=1 op=release id=e1 n=6 input=3" ];
      let a1 = recv_n ra 3 and b1 = recv_n rb 1 in
      Alcotest.(check string) "epoch 1 summary" "released" (status_of (List.nth a1 0));
      Alcotest.(check string)
        "epoch 1 values = the epoch-1 draw" (values_json (draw 1))
        (J.to_string (json_at (List.nth a1 0) [ "release"; "values" ]));
      Alcotest.(check string) "bob still served at the floor" "release"
        (status_of (List.nth b1 0));
      (* Epoch 2: 1/4 · 1/2 < 1/4 — bob's line is the typed
         budget_exhausted refusal, byte-exact, and his ledger is not
         charged. *)
      send fa [ "v=1 op=release id=e2 n=6 input=3" ];
      let a2 = recv_n ra 3 and b2 = recv_n rb 1 in
      Alcotest.(check string) "epoch 2 summary" "released" (status_of (List.nth a2 0));
      let expect_refusal =
        Resp.to_line
          (Resp.error ~id:"sb"
             (Resp.Budget_exhausted { sub = "bob"; group; spent = q 1 4; floor = q 1 4 }))
      in
      Alcotest.(check string) "typed budget_exhausted push" expect_refusal (List.nth b2 0);
      send fb [ "v=1 op=ledger id=lb sub=bob n=6 input=3" ];
      let lb = List.nth (recv_n rb 1) 0 in
      check_rat_field "refusal charged nothing" (q 1 4) lb [ "session"; "spent" ];
      Alcotest.(check int) "bob served twice" 2 (int_at lb [ "session"; "served" ]);
      Alcotest.(check int) "bob refused once" 1 (int_at lb [ "session"; "refusals" ]);
      send fa [ "v=1 op=ledger id=la sub=alice n=6 input=3" ];
      let la = List.nth (recv_n ra 1) 0 in
      check_rat_field "alice spent (1/3)^3" (q 1 27) la [ "session"; "spent" ];
      Alcotest.(check int) "three epochs on the ledger" 3 (int_at la [ "session"; "epoch" ]);
      send fa [ "v=1 op=unsubscribe id=ua sub=alice n=6 input=3" ];
      let ua = List.nth (recv_n ra 1) 0 in
      Alcotest.(check string) "unsubscribed" "unsubscribed" (status_of ua);
      Alcotest.(check string) "inactive after unsubscribe" "false"
        (J.to_string (json_at ua [ "session"; "active" ]));
      half_close fa;
      half_close fb;
      ignore (recv_until_eof ra);
      ignore (recv_until_eof rb);
      Unix.close fa;
      Unix.close fb)

(* The whole session transcript — subscribes, two epochs, a ledger
   probe, an unsubscribe — is byte-identical for every worker count:
   session verbs are answered inline on the event loop and the epoch
   draw is a pure function, so the pool size can never show through. *)
let test_session_bytes_across_workers () =
  let lines =
    [
      "v=1 op=subscribe id=s1 sub=ada n=5 input=2 alpha=1/3";
      "v=1 op=subscribe id=s2 sub=bea n=5 input=2 alpha=1/2";
      "v=1 op=release id=e0 n=5 input=2";
      "v=1 op=release id=e1 n=5 input=2";
      "v=1 op=ledger id=l1 sub=ada n=5 input=2";
      "v=1 op=unsubscribe id=u1 sub=ada n=5 input=2";
    ]
  in
  let serve domains =
    with_server (config ~domains ()) (fun _ port -> round_trip port lines)
  in
  let one = serve 1 in
  Alcotest.(check int) "2 acks + 2x(summary+2 pushes) + ledger + unsub" 10
    (List.length one);
  Alcotest.(check (list string)) "1 worker = 3 workers, byte for byte" one (serve 3)

(* Warm restart against --session-store: ledgers and epoch counters
   survive the drain as a verified checkpoint frame, a returning
   subscriber resumes its spend (zero double-spend), and the epoch
   chain continues byte-identically with an uninterrupted run. *)
let test_session_warm_restart () =
  let store = Filename.temp_file "dpsession" ".frame" in
  Sys.remove store;
  Fun.protect ~finally:(fun () -> if Sys.file_exists store then Sys.remove store)
  @@ fun () ->
  let cfg = { (config ~domains:1 ()) with Server.session_store = Some store } in
  let phase lines = with_server cfg (fun _ port -> round_trip port lines) in
  let sub = "v=1 op=subscribe id=s sub=ada n=5 input=2 alpha=1/2" in
  let rel id = Printf.sprintf "v=1 op=release id=%s n=5 input=2" id in
  let first = phase [ sub; rel "e0" ] in
  Alcotest.(check int) "first run answers ack + summary + push" 3 (List.length first);
  let second =
    phase [ "v=1 op=ledger id=l sub=ada n=5 input=2"; sub; rel "e1";
            "v=1 op=ledger id=l2 sub=ada n=5 input=2" ]
  in
  let led = List.nth second 0 in
  check_rat_field "spend survives the restart" (q 1 2) led [ "session"; "spent" ];
  Alcotest.(check int) "epoch counter survives" 1 (int_at led [ "session"; "epoch" ]);
  Alcotest.(check string) "inactive until re-subscribed" "false"
    (J.to_string (json_at led [ "session"; "active" ]));
  check_rat_field "re-subscribe keeps the spend — zero double-spend" (q 1 2)
    (List.nth second 1) [ "session"; "spent" ];
  let summary = List.nth second 2 in
  Alcotest.(check int) "epochs continue where they left off" 1
    (int_at summary [ "release"; "epoch" ]);
  let plan = ML.make_plan ~n:5 ~levels:[ q 1 2 ] in
  let expect1 =
    ML.release plan ~true_result:2
      (Sess.epoch_stream ~seed:42 ~group:(Sess.group_key ~n:5 ~input:2) ~epoch:1)
  in
  Alcotest.(check string) "epoch 1 byte-derived from the resumed chain"
    (values_json expect1)
    (J.to_string (json_at summary [ "release"; "values" ]));
  check_rat_field "spend composes across the restart" (q 1 4) (List.nth second 4)
    [ "session"; "spent" ];
  (* And the restarted epoch-1 lines are byte-identical to an
     uninterrupted run's. *)
  let uninterrupted =
    with_server (config ~domains:1 ()) (fun _ port ->
        round_trip port [ sub; rel "e0"; rel "e1" ])
  in
  Alcotest.(check (list string)) "restart = uninterrupted, byte for byte"
    [ List.nth uninterrupted 3; List.nth uninterrupted 4 ]
    [ List.nth second 2; List.nth second 3 ]

(* Session grammar refusals are the unified Response rendering of
   of_line's wire errors — and semantic refusals from the service
   itself come back as typed invalids. *)
let test_session_grammar_rejections () =
  let parse_lines =
    [
      "v=1 sub=alice n=4 alpha=1/2";
      "v=1 op=release n=4 input=2 alpha=1/2";
      "v=1 op=subscribe id=x sub=bad! n=4 input=2 alpha=1/2";
      "v=1 op=subscribe sub=alice n=4 input=2";
      "v=1 op=ledger sub=alice input=2";
    ]
  in
  let expect =
    List.map
      (fun l ->
        match Rq.of_line l with
        | Stdlib.Ok _ -> Alcotest.failf "line unexpectedly parsed: %S" l
        | Stdlib.Error e -> Resp.to_line (Resp.of_wire_error e))
      parse_lines
  in
  with_server (config ~domains:1 ()) (fun _ port ->
      Alcotest.(check (list string))
        "session grammar = Response surface" expect (round_trip port parse_lines);
      let got =
        round_trip port
          [
            "v=1 op=subscribe id=z sub=zoe n=4 input=9 alpha=1/2";
            "v=1 op=release n=4 input=2";
            "v=1 op=ledger sub=ghost n=4 input=2";
          ]
      in
      List.iter
        (fun l ->
          Alcotest.(check string) "refused" "error" (status_of l);
          Alcotest.(check (option string))
            "semantic refusals are typed invalids" (Some "invalid")
            (json_field l [ "error"; "kind" ]))
        got)

let () =
  Alcotest.run "server"
    [
      ( "protocol",
        [
          Alcotest.test_case "golden rejection transcript" `Quick test_golden_rejections;
          Alcotest.test_case "rejections match Response surface" `Quick
            test_rejections_match_response_surface;
          Alcotest.test_case "error ordering" `Quick test_error_ordering;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "served lines match engine" `Quick test_served_lines_match_engine;
          Alcotest.test_case "bytes identical with telemetry on/off" `Quick
            test_bytes_identical_with_telemetry;
          Alcotest.test_case "connection splits and worker counts" `Quick
            test_determinism_across_connections_and_workers;
        ] );
      ( "admission",
        [
          Alcotest.test_case "overload refusal" `Quick test_overload_refusal;
          Alcotest.test_case "deadline refusal" `Quick test_deadline_refusal;
        ] );
      ( "stats",
        [
          Alcotest.test_case "golden op=stats transcript" `Quick test_golden_stats;
          Alcotest.test_case "stats grammar rejections" `Quick test_stats_grammar_rejections;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "wire lifecycle" `Quick test_session_lifecycle;
          Alcotest.test_case "bytes identical across worker counts" `Quick
            test_session_bytes_across_workers;
          Alcotest.test_case "warm restart, zero double-spend" `Quick
            test_session_warm_restart;
          Alcotest.test_case "session grammar rejections" `Quick
            test_session_grammar_rejections;
        ] );
      ("shutdown", [ Alcotest.test_case "drain on stop" `Quick test_drain_on_stop ]);
      ( "framing",
        [
          Alcotest.test_case "round trip" `Quick test_framing_round_trip;
          Alcotest.test_case "overflow" `Quick test_framing_overflow;
        ] );
    ]
