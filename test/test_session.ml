(* lib/session unit tests: exact-ℚ privacy-budget ledgers, epoch
   determinism (the served rungs are a pure function of (seed, group,
   epoch)), replayable collusion certificates, durable checkpoint
   round trips with verify-on-load, and both fault sites. *)

module S = Minimax_dp.Session
module C = Minimax_dp.Session.Certificate
module ML = Minimax.Multi_level
module F = Resilience.Fault

let q = Rat.of_ints

let rat_t =
  Alcotest.testable (fun ppf r -> Format.pp_print_string ppf (Rat.to_string r)) Rat.equal

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let ok = function Ok v -> v | Error m -> Alcotest.failf "unexpected error: %s" m

let err = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error m -> m

let fresh ?seed ?checkpoint () =
  match S.create ?seed ?checkpoint () with
  | Ok t -> t
  | Error m -> Alcotest.failf "Session.create: %s" m

let tmpfile () =
  let f = Filename.temp_file "dpsession" ".frame" in
  Sys.remove f;
  f

let release_ok t ~n ~input =
  match S.release t ~n ~input with
  | Ok r -> r
  | Error (S.Rejected m | S.Faulted m) -> Alcotest.failf "release refused: %s" m

(* ------------------------------------------------------------------ *)

let test_group_key () =
  Alcotest.(check string) "canonical group key" "n=6;i=3" (S.group_key ~n:6 ~input:3)

let test_subscribe_validation () =
  let t = fresh () in
  let sub ?budget ?(sub = "alice") ?(level = q 1 2) () =
    S.subscribe t ~sub ~n:4 ~input:2 ~level ?budget ()
  in
  ignore (err (sub ~sub:"bad name!" ()));
  ignore (err (sub ~level:(q 0 1) ()));
  ignore (err (sub ~level:(q 1 1) ()));
  ignore (err (sub ~budget:(q 3 2) ()));
  ignore (err (S.subscribe t ~sub:"alice" ~n:0 ~input:0 ~level:(q 1 2) ()));
  ignore (err (S.subscribe t ~sub:"alice" ~n:4 ~input:5 ~level:(q 1 2) ()));
  let v = ok (sub ()) in
  Alcotest.check rat_t "ledger starts at 1" Rat.one v.S.v_spent;
  Alcotest.(check bool) "active" true v.S.v_active;
  (* Same level while active: idempotent. A different level: refused. *)
  ignore (ok (sub ()));
  ignore (err (sub ~level:(q 1 3) ()));
  let v = ok (S.unsubscribe t ~sub:"alice" ~n:4 ~input:2) in
  Alcotest.(check bool) "inactive after unsubscribe" false v.S.v_active;
  (* An inactive ledger may return at any level. *)
  let v = ok (sub ~level:(q 1 3) ()) in
  Alcotest.check rat_t "returning ledger keeps its spend" Rat.one v.S.v_spent

(* Gate (a) of bench S1, at unit scale: every rung a release serves is
   byte-derived from the one epoch draw, which is itself the pure
   function [epoch_stream] of (seed, group key, epoch). *)
let test_epoch_determinism () =
  let levels = [ q 1 3; q 1 2; q 2 3 ] in
  let subscribe_all t =
    List.iteri
      (fun i level ->
        ignore
          (ok (S.subscribe t ~sub:(Printf.sprintf "sub%d" i) ~n:6 ~input:3 ~level ())))
      levels
  in
  let a = fresh ~seed:7 () and b = fresh ~seed:7 () in
  subscribe_all a;
  subscribe_all b;
  let plan = ML.make_plan ~n:6 ~levels in
  for epoch = 0 to 3 do
    let ra = release_ok a ~n:6 ~input:3 and rb = release_ok b ~n:6 ~input:3 in
    let expect =
      ML.release plan ~true_result:3
        (S.epoch_stream ~seed:7 ~group:(S.group_key ~n:6 ~input:3) ~epoch)
    in
    Alcotest.(check (array int))
      (Printf.sprintf "epoch %d matches the contract stream" epoch)
      expect ra.S.r_values;
    Alcotest.(check (array int))
      (Printf.sprintf "epoch %d identical across instances" epoch)
      ra.S.r_values rb.S.r_values;
    List.iter2
      (fun (_, oa) level ->
        match oa with
        | S.Served { value; level = l; _ } ->
          Alcotest.check rat_t "outcome level" level l;
          let idx = ref 0 in
          List.iteri (fun i l' -> if Rat.equal l' level then idx := i) levels;
          Alcotest.(check int) "rung served off the shared draw" ra.S.r_values.(!idx) value
        | S.Refused _ -> Alcotest.fail "no floors set; nothing may be refused")
      ra.S.r_outcomes levels
  done;
  Alcotest.(check int) "seed accessor" 7 (S.seed a)

(* Exact multiplicative ledgers: spent is the product of released α's,
   refusals fire exactly when spent·α < floor, and a refusal charges
   nothing. *)
let test_ledger_products () =
  let t = fresh () in
  ignore (ok (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 2) ()));
  ignore (ok (S.subscribe t ~sub:"bob" ~n:4 ~input:2 ~level:(q 1 3) ~budget:(q 1 9) ()));
  let spent sub = (ok (S.ledger t ~sub ~n:4 ~input:2)).S.v_spent in
  ignore (release_ok t ~n:4 ~input:2);
  Alcotest.check rat_t "alice 1/2" (q 1 2) (spent "alice");
  Alcotest.check rat_t "bob 1/3" (q 1 3) (spent "bob");
  ignore (release_ok t ~n:4 ~input:2);
  Alcotest.check rat_t "alice 1/4" (q 1 4) (spent "alice");
  Alcotest.check rat_t "bob 1/9 — exactly at the floor" (q 1 9) (spent "bob");
  let r = release_ok t ~n:4 ~input:2 in
  Alcotest.check rat_t "alice 1/8" (q 1 8) (spent "alice");
  Alcotest.check rat_t "bob refused, ledger untouched" (q 1 9) (spent "bob");
  (match List.assoc "bob" r.S.r_outcomes with
  | S.Refused { spent; floor; _ } ->
    Alcotest.check rat_t "refusal reports spent" (q 1 9) spent;
    Alcotest.check rat_t "refusal reports floor" (q 1 9) floor
  | S.Served _ -> Alcotest.fail "1/27 < 1/9: bob must be refused");
  let v = ok (S.ledger t ~sub:"bob" ~n:4 ~input:2) in
  Alcotest.(check int) "bob served twice" 2 v.S.v_served;
  Alcotest.(check int) "bob refused once" 1 v.S.v_refusals

let test_floor_tightens_only () =
  let t = fresh () in
  ignore
    (ok (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 2) ~budget:(q 1 4) ()));
  (* Tightening while active is fine; loosening never is. *)
  ignore
    (ok (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 2) ~budget:(q 1 2) ()));
  ignore
    (err (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 2) ~budget:(q 1 4) ()));
  ignore (ok (S.unsubscribe t ~sub:"alice" ~n:4 ~input:2));
  (* A re-subscribe after unsubscribing cannot launder the floor either. *)
  ignore
    (err (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 3) ~budget:(q 1 4) ()));
  let v = ok (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 3) ()) in
  Alcotest.(check (option rat_t)) "floor survives" (Some (q 1 2)) v.S.v_floor

(* Gate (b) at unit scale: every emitted certificate replays green
   from its own data, and any tampering turns the replay red. *)
let test_certificate_replay () =
  let t = fresh () in
  List.iteri
    (fun i level ->
      ignore (ok (S.subscribe t ~sub:(Printf.sprintf "s%d" i) ~n:5 ~input:2 ~level ())))
    [ q 1 3; q 1 2 ];
  let r = release_ok t ~n:5 ~input:2 in
  let cert = r.S.r_certificate in
  (match C.replay cert with
  | Ok () -> ()
  | Error rule -> Alcotest.failf "fresh certificate replays red: %s" rule);
  Alcotest.(check (list string))
    "certificate names its checks"
    [ "lemma3-transition"; "stage-marginal"; "lemma4-posterior" ]
    cert.C.checks;
  (* Tamper with a rung: the posterior digest no longer matches. *)
  let tampered_values = Array.copy cert.C.values in
  tampered_values.(0) <- (tampered_values.(0) + 1) mod 6;
  (match C.replay { cert with C.values = tampered_values } with
  | Ok () -> Alcotest.fail "tampered values replayed green"
  | Error _ -> ());
  (match C.replay { cert with C.posterior = String.make 32 '0' } with
  | Ok () -> Alcotest.fail "tampered digest replayed green"
  | Error rule -> Alcotest.(check string) "digest check" "posterior-digest" rule);
  (match C.replay { cert with C.values = [| 0 |] } with
  | Ok () -> Alcotest.fail "truncated values replayed green"
  | Error _ -> ());
  (* The wire round trip preserves replayability. *)
  match C.of_json (C.to_json cert) with
  | Error m -> Alcotest.failf "certificate JSON round trip: %s" m
  | Ok cert' -> (
    Alcotest.(check string) "round-tripped digest" cert.C.posterior cert'.C.posterior;
    match C.replay cert' with
    | Ok () -> ()
    | Error rule -> Alcotest.failf "round-tripped certificate red: %s" rule)

(* Gate (d) at unit scale: a warm restart resumes ledgers and the
   split chain — continuing epochs byte-identically, double-spending
   nothing. *)
let test_checkpoint_roundtrip () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* The uninterrupted reference: four epochs in one life. *)
      let reference = fresh ~seed:11 () in
      ignore (ok (S.subscribe reference ~sub:"alice" ~n:5 ~input:1 ~level:(q 1 2) ()));
      let ref_values =
        List.init 4 (fun _ -> (release_ok reference ~n:5 ~input:1).S.r_values)
      in
      (* The interrupted run: two epochs, a restart from the frame,
         two more. *)
      let first = fresh ~seed:11 ~checkpoint:path () in
      ignore (ok (S.subscribe first ~sub:"alice" ~n:5 ~input:1 ~level:(q 1 2) ()));
      let v01 = List.init 2 (fun _ -> (release_ok first ~n:5 ~input:1).S.r_values) in
      let resumed = fresh ~seed:11 ~checkpoint:path () in
      let v = ok (S.ledger resumed ~sub:"alice" ~n:5 ~input:1) in
      Alcotest.check rat_t "ledger resumed intact" (q 1 4) v.S.v_spent;
      Alcotest.(check int) "epoch counter resumed" 2 v.S.v_epoch;
      Alcotest.(check bool) "subscriptions are not durable" false v.S.v_active;
      (match S.release resumed ~n:5 ~input:1 with
      | Ok _ -> Alcotest.fail "released with no active subscribers"
      | Error (S.Rejected _) -> ()
      | Error (S.Faulted m) -> Alcotest.failf "unexpected fault: %s" m);
      ignore (ok (S.subscribe resumed ~sub:"alice" ~n:5 ~input:1 ~level:(q 1 2) ()));
      let v23 = List.init 2 (fun _ -> (release_ok resumed ~n:5 ~input:1).S.r_values) in
      List.iteri
        (fun i (expect, got) ->
          Alcotest.(check (array int))
            (Printf.sprintf "epoch %d byte-identical across the restart" i)
            expect got)
        (List.combine ref_values (v01 @ v23));
      let v = ok (S.ledger resumed ~sub:"alice" ~n:5 ~input:1) in
      Alcotest.check rat_t "no double spend: (1/2)^4" (q 1 16) v.S.v_spent)

let test_checkpoint_verify_on_load () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let t = fresh ~seed:3 ~checkpoint:path () in
      ignore (ok (S.subscribe t ~sub:"alice" ~n:4 ~input:0 ~level:(q 1 2) ()));
      ignore (release_ok t ~n:4 ~input:0);
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists path);
      (* A different seed would replay a different draw chain: typed
         refusal to start, never a silent reset. *)
      (match S.create ~seed:4 ~checkpoint:path () with
      | Ok _ -> Alcotest.fail "accepted a checkpoint from another seed"
      | Error m ->
        Alcotest.(check bool) "seed refusal names the seed" true
          (contains_sub ~sub:"seed 3" m));
      (* A flipped byte in the frame is a typed corruption refusal. *)
      let raw = In_channel.with_open_bin path In_channel.input_all in
      let broken = Bytes.of_string raw in
      Bytes.set broken (Bytes.length broken - 1)
        (Char.chr (Char.code (Bytes.get broken (Bytes.length broken - 1)) lxor 1));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc broken);
      (match S.create ~seed:3 ~checkpoint:path () with
      | Ok _ -> Alcotest.fail "accepted a corrupt frame"
      | Error _ -> ());
      (* A foreign (but valid) frame is refused by format tag. *)
      (match Store.Frame.write ~path ~payload:{|{"format":"dpstore"}|} with
      | Ok () -> ()
      | Error e -> Alcotest.failf "frame write: %s" (Store.Frame.error_to_string e));
      match S.create ~seed:3 ~checkpoint:path () with
      | Ok _ -> Alcotest.fail "accepted a foreign format"
      | Error m ->
        Alcotest.(check bool) "format refusal" true (contains_sub ~sub:"format" m))

(* session.epoch trips before the chain advances: the faulted epoch is
   refused cleanly and the next successful release draws exactly what
   the faulted one would have. *)
let test_fault_epoch () =
  let t = fresh ~seed:5 () in
  ignore (ok (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 2) ()));
  let r0 = release_ok t ~n:4 ~input:2 in
  F.with_plan (F.plan [ { F.site = "session.epoch"; hits = 1; action = F.Trip } ])
    (fun () ->
      match S.release t ~n:4 ~input:2 with
      | Error (S.Faulted _) -> ()
      | Ok _ -> Alcotest.fail "released through a tripped epoch"
      | Error (S.Rejected m) -> Alcotest.failf "wrong refusal kind: %s" m);
  let v = ok (S.ledger t ~sub:"alice" ~n:4 ~input:2) in
  Alcotest.check rat_t "nothing charged by the fault" (q 1 2) v.S.v_spent;
  Alcotest.(check int) "no epoch minted" 1 v.S.v_epoch;
  let r1 = release_ok t ~n:4 ~input:2 in
  let expect =
    ML.release
      (ML.make_plan ~n:4 ~levels:[ q 1 2 ])
      ~true_result:2
      (S.epoch_stream ~seed:5 ~group:(S.group_key ~n:4 ~input:2) ~epoch:1)
  in
  Alcotest.(check (array int)) "epoch 1 unshifted by the fault" expect r1.S.r_values;
  Alcotest.(check int) "epochs numbered contiguously" (r0.S.r_epoch + 1) r1.S.r_epoch

(* session.ledger trips at checkpoint write: durability degrades (and
   is counted), serving does not. *)
let test_fault_ledger () =
  let path = tmpfile () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let t = fresh ~seed:5 ~checkpoint:path () in
      F.with_plan (F.plan [ { F.site = "session.ledger"; hits = 0; action = F.Trip } ])
        (fun () ->
          ignore (ok (S.subscribe t ~sub:"alice" ~n:4 ~input:2 ~level:(q 1 2) ()));
          let r = release_ok t ~n:4 ~input:2 in
          Alcotest.(check int) "served through the ledger fault" 1
            (List.length r.S.r_outcomes);
          Alcotest.(check bool) "no frame landed" false (Sys.file_exists path));
      (* With the plan gone the next mutation checkpoints fine. *)
      ignore (release_ok t ~n:4 ~input:2);
      Alcotest.(check bool) "frame lands after the fault clears" true
        (Sys.file_exists path))

let () =
  Alcotest.run "session"
    [
      ( "grammar",
        [
          Alcotest.test_case "group key" `Quick test_group_key;
          Alcotest.test_case "subscribe validation" `Quick test_subscribe_validation;
        ] );
      ( "determinism",
        [ Alcotest.test_case "epoch draws are a pure function" `Quick test_epoch_determinism ]
      );
      ( "ledgers",
        [
          Alcotest.test_case "multiplicative spend and exact refusal" `Quick
            test_ledger_products;
          Alcotest.test_case "floors only tighten" `Quick test_floor_tightens_only;
        ] );
      ( "certificates",
        [ Alcotest.test_case "replay green, tampering red" `Quick test_certificate_replay ]
      );
      ( "durability",
        [
          Alcotest.test_case "warm restart, zero double-spend" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "verify-on-load refusals" `Quick test_checkpoint_verify_on_load;
        ] );
      ( "faults",
        [
          Alcotest.test_case "session.epoch refuses cleanly" `Quick test_fault_epoch;
          Alcotest.test_case "session.ledger degrades durability only" `Quick
            test_fault_ledger;
        ] );
    ]
