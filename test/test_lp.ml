(* Tests for the exact LP solver: textbook problems with known optima,
   degenerate/cycling-prone problems (Bland's rule), infeasibility and
   unboundedness detection, and randomized cross-validation against a
   brute-force vertex enumerator on small instances. *)

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

let solve_expect_optimal p =
  match Lp.solve p with
  | Lp.Optimal s ->
    Alcotest.(check bool) "certificate" true (Lp.check_solution p s);
    s
  | Lp.Failed Lp.Solver_error.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Failed e -> Alcotest.fail (Lp.Solver_error.to_string e)

(* --------------------------------------------------------------- *)
(* Textbook cases                                                   *)
(* --------------------------------------------------------------- *)

let test_basic_max () =
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_le p (Lp.Expr.var x) (q 4 1);
  Lp.add_le p (Lp.Expr.term (q 2 1) y) (q 12 1);
  Lp.add_le p Lp.Expr.(add (term (q 3 1) x) (term (q 2 1) y)) (q 18 1);
  Lp.set_objective p Lp.Maximize Lp.Expr.(add (term (q 3 1) x) (term (q 5 1) y));
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q 36 1) s.objective;
  Alcotest.check rat "x" (q 2 1) s.values.(x);
  Alcotest.check rat "y" (q 6 1) s.values.(y)

let test_basic_min () =
  (* min x + y s.t. x + 2y >= 4, 3x + y >= 6  => (8/5, 6/5), obj 14/5 *)
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_ge p Lp.Expr.(add (var x) (term (q 2 1) y)) (q 4 1);
  Lp.add_ge p Lp.Expr.(add (term (q 3 1) x) (var y)) (q 6 1);
  Lp.set_objective p Lp.Minimize Lp.Expr.(add (var x) (var y));
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q 14 5) s.objective;
  Alcotest.check rat "x" (q 8 5) s.values.(x);
  Alcotest.check rat "y" (q 6 5) s.values.(y)

let test_equality_constraints () =
  (* min 2x + 3y s.t. x + y = 10, x - y = 2  => x=6, y=4, obj 24 *)
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_eq p Lp.Expr.(add (var x) (var y)) (q 10 1);
  Lp.add_eq p Lp.Expr.(sub (var x) (var y)) (q 2 1);
  Lp.set_objective p Lp.Minimize Lp.Expr.(add (term (q 2 1) x) (term (q 3 1) y));
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q 24 1) s.objective

let test_infeasible () =
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.add_ge p (Lp.Expr.var x) (q 3 1);
  Lp.add_le p (Lp.Expr.var x) (q 1 1);
  Lp.set_objective p Lp.Minimize (Lp.Expr.var x);
  match Lp.solve p with
  | Lp.Failed Lp.Solver_error.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_infeasible_eq () =
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_eq p Lp.Expr.(add (var x) (var y)) Rat.one;
  Lp.add_eq p Lp.Expr.(add (var x) (var y)) Rat.two;
  Lp.set_objective p Lp.Minimize (Lp.Expr.var x);
  match Lp.solve p with
  | Lp.Failed Lp.Solver_error.Infeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_unbounded () =
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.set_objective p Lp.Maximize (Lp.Expr.var x);
  match Lp.solve p with
  | Lp.Failed Lp.Solver_error.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_unbounded_direction () =
  (* max x - y with x - y <= unconstrained growth along x=y+t... here
     max x + y s.t. x - y <= 1 is unbounded. *)
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_le p Lp.Expr.(sub (var x) (var y)) Rat.one;
  Lp.set_objective p Lp.Maximize Lp.Expr.(add (var x) (var y));
  match Lp.solve p with
  | Lp.Failed Lp.Solver_error.Unbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let test_free_variables () =
  (* Free variable reaching a negative optimum. *)
  let p = Lp.make () in
  let x = Lp.fresh_var ~lb:None p in
  Lp.add_ge p (Lp.Expr.var x) (q (-7) 2);
  Lp.set_objective p Lp.Minimize (Lp.Expr.var x);
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q (-7) 2) s.objective

let test_lower_bounds () =
  (* Variable with nonzero lower bound. min x+y, x >= 2 (bound), y >= 0,
     x + y >= 5 => obj 5 with x in [2,5]. *)
  let p = Lp.make () in
  let x = Lp.fresh_var ~lb:(Some (q 2 1)) p and y = Lp.fresh_var p in
  Lp.add_ge p Lp.Expr.(add (var x) (var y)) (q 5 1);
  Lp.set_objective p Lp.Minimize Lp.Expr.(add (var x) (var y));
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q 5 1) s.objective;
  Alcotest.(check bool) "x bound respected" true (Rat.compare s.values.(x) (q 2 1) >= 0)

let test_constant_in_objective () =
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.add_le p (Lp.Expr.var x) (q 3 1);
  Lp.set_objective p Lp.Maximize (Lp.Expr.add_const (Lp.Expr.var x) (q 10 1));
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective includes constant" (q 13 1) s.objective

let test_degenerate_beale () =
  (* Beale's classic cycling example — Bland's rule must terminate.
     min -3/4 x4 + 150 x5 - 1/50 x6 + 6 x7
     s.t. 1/4 x4 - 60 x5 - 1/25 x6 + 9 x7 <= 0
          1/2 x4 - 90 x5 - 1/50 x6 + 3 x7 <= 0
          x6 <= 1
     optimum -1/20. *)
  let p = Lp.make () in
  let x4 = Lp.fresh_var p and x5 = Lp.fresh_var p in
  let x6 = Lp.fresh_var p and x7 = Lp.fresh_var p in
  Lp.add_le p
    Lp.Expr.(sum [ term (q 1 4) x4; term (q (-60) 1) x5; term (q (-1) 25) x6; term (q 9 1) x7 ])
    Rat.zero;
  Lp.add_le p
    Lp.Expr.(sum [ term (q 1 2) x4; term (q (-90) 1) x5; term (q (-1) 50) x6; term (q 3 1) x7 ])
    Rat.zero;
  Lp.add_le p (Lp.Expr.var x6) Rat.one;
  Lp.set_objective p Lp.Minimize
    Lp.Expr.(sum [ term (q (-3) 4) x4; term (q 150 1) x5; term (q (-1) 50) x6; term (q 6 1) x7 ]);
  let s = solve_expect_optimal p in
  Alcotest.check rat "Beale optimum" (q (-1) 20) s.objective

let test_duplicate_terms_normalized () =
  (* x + x should behave as 2x. *)
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.add_le p Lp.Expr.(add (var x) (var x)) (q 10 1);
  Lp.set_objective p Lp.Maximize (Lp.Expr.var x);
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q 5 1) s.objective

let test_redundant_rows () =
  (* Same constraint twice => phase 1 leaves a redundant artificial. *)
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_eq p Lp.Expr.(add (var x) (var y)) (q 4 1);
  Lp.add_eq p Lp.Expr.(add (var x) (var y)) (q 4 1);
  Lp.add_eq p Lp.Expr.(sum [ term (q 2 1) x; term (q 2 1) y ]) (q 8 1);
  Lp.set_objective p Lp.Maximize (Lp.Expr.var x);
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" (q 4 1) s.objective

let test_zero_objective () =
  (* Pure feasibility problem. *)
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.add_eq p (Lp.Expr.var x) (q 3 1);
  Lp.set_objective p Lp.Minimize Lp.Expr.zero;
  let s = solve_expect_optimal p in
  Alcotest.check rat "objective" Rat.zero s.objective;
  Alcotest.check rat "x pinned" (q 3 1) s.values.(x)

let test_expr_eval () =
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  ignore p;
  let e = Lp.Expr.(add_const (sum [ term (q 2 1) x; term (q 3 1) y; term (q (-1) 1) x ]) (q 5 1)) in
  let v = Lp.Expr.eval [| q 10 1; q 1 1 |] (Lp.Expr.normalize e) in
  (* (2-1)*10 + 3*1 + 5 = 18 *)
  Alcotest.check rat "eval" (q 18 1) v

(* --------------------------------------------------------------- *)
(* Randomized cross-validation against vertex enumeration            *)
(* --------------------------------------------------------------- *)

(* For a 2-variable problem  max c.x  s.t.  A x <= b, x >= 0, optimal
   value (if bounded & feasible) is attained at the intersection of two
   constraint lines (including axes). Enumerate all intersections,
   filter feasible, take the best. *)
let brute_force_2d (constraints : (Rat.t * Rat.t * Rat.t) list) (cx, cy) =
  let module Qm = Linalg.Matrix.Q in
  let lines = (Rat.one, Rat.zero, Rat.zero) :: (Rat.zero, Rat.one, Rat.zero) :: List.map (fun (a, b, c) -> (a, b, c)) constraints in
  (* line: a x + b y = c for constraint rows (tight); axes x=0, y=0. *)
  let feasible (x, y) =
    Rat.sign x >= 0 && Rat.sign y >= 0
    && List.for_all
         (fun (a, b, c) ->
           Rat.compare (Rat.add (Rat.mul a x) (Rat.mul b y)) c <= 0)
         constraints
  in
  let best = ref None in
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if j > i then begin
            let m = Qm.of_rows [ [ a1; b1 ]; [ a2; b2 ] ] in
            match Qm.solve m [| c1; c2 |] with
            | None -> ()
            | Some pt ->
              let x, y = (pt.(0), pt.(1)) in
              if feasible (x, y) then begin
                let v = Rat.add (Rat.mul cx x) (Rat.mul cy y) in
                match !best with
                | None -> best := Some v
                | Some b -> if Rat.compare v b > 0 then best := Some v
              end
          end)
        lines)
    lines;
  !best

let arb_2d_lp =
  let gen st =
    let coef () = Rat.of_ints (QCheck.Gen.int_range 1 9 st) 1 in
    let rhs () = Rat.of_ints (QCheck.Gen.int_range 1 20 st) 1 in
    let ncons = 2 + QCheck.Gen.int_bound 3 st in
    let constraints = List.init ncons (fun _ -> (coef (), coef (), rhs ())) in
    let obj = (coef (), coef ()) in
    (constraints, obj)
  in
  QCheck.make
    ~print:(fun (cs, (cx, cy)) ->
      Printf.sprintf "max %sx+%sy s.t. %s" (Rat.to_string cx) (Rat.to_string cy)
        (String.concat "; "
           (List.map
              (fun (a, b, c) ->
                Printf.sprintf "%sx+%sy<=%s" (Rat.to_string a) (Rat.to_string b) (Rat.to_string c))
              cs)))
    gen

let prop_2d_matches_brute_force =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"simplex matches vertex enumeration (2d)" ~count:100 arb_2d_lp
       (fun (constraints, (cx, cy)) ->
         let p = Lp.make () in
         let x = Lp.fresh_var p and y = Lp.fresh_var p in
         List.iter
           (fun (a, b, c) -> Lp.add_le p Lp.Expr.(add (term a x) (term b y)) c)
           constraints;
         Lp.set_objective p Lp.Maximize Lp.Expr.(add (term cx x) (term cy y));
         match (Lp.solve p, brute_force_2d constraints (cx, cy)) with
         | Lp.Optimal s, Some v -> Rat.equal s.objective v
         | Lp.Optimal _, None -> false
         | Lp.Failed _, _ -> false
         (* all-positive coefficients with positive rhs: always feasible
            (origin) and bounded *)))

let prop_solution_feasible =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"solutions satisfy all constraints" ~count:100 arb_2d_lp
       (fun (constraints, (cx, cy)) ->
         let p = Lp.make () in
         let x = Lp.fresh_var p and y = Lp.fresh_var p in
         List.iter
           (fun (a, b, c) -> Lp.add_le p Lp.Expr.(add (term a x) (term b y)) c)
           constraints;
         Lp.set_objective p Lp.Maximize Lp.Expr.(add (term cx x) (term cy y));
         match Lp.solve p with Lp.Optimal s -> Lp.check_solution p s | _ -> false))

(* Weak duality spot-check on random primal-dual pairs:
   max c.x, Ax<=b, x>=0  vs  min b.y, Aᵀy>=c, y>=0 — optimal values equal. *)
let prop_strong_duality =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"strong duality (2d)" ~count:60 arb_2d_lp
       (fun (constraints, (cx, cy)) ->
         let primal = Lp.make () in
         let x = Lp.fresh_var primal and y = Lp.fresh_var primal in
         List.iter
           (fun (a, b, c) -> Lp.add_le primal Lp.Expr.(add (term a x) (term b y)) c)
           constraints;
         Lp.set_objective primal Lp.Maximize Lp.Expr.(add (term cx x) (term cy y));
         let dual = Lp.make () in
         let ys = List.map (fun _ -> Lp.fresh_var dual) constraints in
         let col f rhs =
           Lp.add_ge dual
             (Lp.Expr.sum (List.map2 (fun v (a, b, _) -> Lp.Expr.term (f (a, b)) v) ys constraints))
             rhs
         in
         col fst cx;
         col snd cy;
         Lp.set_objective dual Lp.Minimize
           (Lp.Expr.sum (List.map2 (fun v (_, _, c) -> Lp.Expr.term c v) ys constraints));
         match (Lp.solve primal, Lp.solve dual) with
         | Lp.Optimal sp, Lp.Optimal sd -> Rat.equal sp.objective sd.objective
         | _ -> false))

(* --------------------------------------------------------------- *)
(* Facade-level duals (shadow prices)                               *)
(* --------------------------------------------------------------- *)

let test_facade_duals_signs () =
  (* min x + y s.t. x + 2y >= 4 (dual >= 0), x <= 10 (dual <= 0, here
     slack so 0), 3x + y >= 6 (dual >= 0). *)
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_ge p Lp.Expr.(add (var x) (term (q 2 1) y)) (q 4 1);
  Lp.add_le p (Lp.Expr.var x) (q 10 1);
  Lp.add_ge p Lp.Expr.(add (term (q 3 1) x) (var y)) (q 6 1);
  Lp.set_objective p Lp.Minimize Lp.Expr.(add (var x) (var y));
  let r = Lp.Solver.solve (Lp.Solver.create ()) p in
  match (r.Lp.Solver.outcome, r.Lp.Solver.duals) with
  | Lp.Optimal s, Some y_duals ->
    Alcotest.check rat "objective" (q 14 5) s.objective;
    Alcotest.(check int) "three duals" 3 (Array.length y_duals);
    Alcotest.(check bool) "Ge dual nonneg" true (Rat.sign y_duals.(0) >= 0);
    Alcotest.(check bool) "slack Le dual nonpos" true (Rat.sign y_duals.(1) <= 0);
    Alcotest.(check bool) "Ge dual nonneg" true (Rat.sign y_duals.(2) >= 0);
    (* strong duality at the facade: y·rhs = objective here (no
       constants, zero lower bounds) *)
    let yb =
      Rat.sum [ Rat.mul y_duals.(0) (q 4 1); Rat.mul y_duals.(1) (q 10 1); Rat.mul y_duals.(2) (q 6 1) ]
    in
    Alcotest.check rat "y·b = objective" s.objective yb
  | _ -> Alcotest.fail "optimal with duals expected"

let test_facade_duals_sensitivity () =
  (* Shadow-price property, exactly: perturb one rhs by a small δ and
     the optimum moves by dual·δ (the optimal basis is unchanged for
     small δ). *)
  let build rhs1 =
    let p = Lp.make () in
    let x = Lp.fresh_var p and y = Lp.fresh_var p in
    Lp.add_ge p Lp.Expr.(add (var x) (term (q 2 1) y)) rhs1;
    Lp.add_ge p Lp.Expr.(add (term (q 3 1) x) (var y)) (q 6 1);
    Lp.set_objective p Lp.Minimize Lp.Expr.(add (var x) (var y));
    p
  in
  let r = Lp.Solver.solve (Lp.Solver.create ()) (build (q 4 1)) in
  match (r.Lp.Solver.outcome, r.Lp.Solver.duals) with
  | Lp.Optimal s, Some duals -> (
    let delta = q 1 100 in
    match Lp.solve (build (Rat.add (q 4 1) delta)) with
    | Lp.Optimal s' ->
      Alcotest.check rat "Δobj = dual·δ"
        (Rat.mul duals.(0) delta)
        (Rat.sub s'.objective s.objective)
    | _ -> Alcotest.fail "perturbed LP optimal")
  | _ -> Alcotest.fail "optimal with duals expected"

let test_facade_duals_maximize () =
  (* Maximize flips dual signs: for max 3x+5y with Le rows, duals are
     >= 0 (the classic resource shadow prices). *)
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_le p (Lp.Expr.var x) (q 4 1);
  Lp.add_le p (Lp.Expr.term (q 2 1) y) (q 12 1);
  Lp.add_le p Lp.Expr.(add (term (q 3 1) x) (term (q 2 1) y)) (q 18 1);
  Lp.set_objective p Lp.Maximize Lp.Expr.(add (term (q 3 1) x) (term (q 5 1) y));
  let r = Lp.Solver.solve (Lp.Solver.create ()) p in
  match (r.Lp.Solver.outcome, r.Lp.Solver.duals) with
  | Lp.Optimal s, Some duals ->
    Array.iter
      (fun d -> Alcotest.(check bool) "Le dual nonneg when maximizing" true (Rat.sign d >= 0))
      duals;
    let yb =
      Rat.sum
        [ Rat.mul duals.(0) (q 4 1); Rat.mul duals.(1) (q 12 1); Rat.mul duals.(2) (q 18 1) ]
    in
    Alcotest.check rat "y·b = objective" s.objective yb
  | _ -> Alcotest.fail "optimal with duals expected"

(* --------------------------------------------------------------- *)
(* Float mirror                                                     *)
(* --------------------------------------------------------------- *)

let test_float_mirror_agrees () =
  let p = Lp.make () in
  let x = Lp.fresh_var p and y = Lp.fresh_var p in
  Lp.add_le p Lp.Expr.(add (var x) (var y)) (q 10 1);
  Lp.add_le p Lp.Expr.(add (term (q 2 1) x) (var y)) (q 15 1);
  Lp.set_objective p Lp.Maximize Lp.Expr.(add (term (q 3 1) x) (term (q 2 1) y));
  match (Lp.solve p, Lp.solve_float p) with
  | Lp.Optimal s, Lp.Foptimal f ->
    Alcotest.(check (float 1e-9)) "objectives" (Rat.to_float s.objective) f.Lp.fobjective
  | _ -> Alcotest.fail "both optimal"

let test_float_mirror_infeasible () =
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.add_ge p (Lp.Expr.var x) (q 3 1);
  Lp.add_le p (Lp.Expr.var x) (q 1 1);
  Lp.set_objective p Lp.Minimize (Lp.Expr.var x);
  match Lp.solve_float p with
  | Lp.Finfeasible -> ()
  | _ -> Alcotest.fail "expected infeasible"

let test_float_mirror_unbounded () =
  let p = Lp.make () in
  let x = Lp.fresh_var p in
  Lp.set_objective p Lp.Maximize (Lp.Expr.var x);
  match Lp.solve_float p with
  | Lp.Funbounded -> ()
  | _ -> Alcotest.fail "expected unbounded"

let prop_float_tracks_exact =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"float objective tracks exact (2d)" ~count:60 arb_2d_lp
       (fun (constraints, (cx, cy)) ->
         let build () =
           let p = Lp.make () in
           let x = Lp.fresh_var p and y = Lp.fresh_var p in
           List.iter
             (fun (a, b, c) -> Lp.add_le p Lp.Expr.(add (term a x) (term b y)) c)
             constraints;
           Lp.set_objective p Lp.Maximize Lp.Expr.(add (term cx x) (term cy y));
           p
         in
         match (Lp.solve (build ()), Lp.solve_float (build ())) with
         | Lp.Optimal s, Lp.Foptimal f ->
           Float.abs (Rat.to_float s.objective -. f.Lp.fobjective) < 1e-6
         | _ -> false))

(* --------------------------------------------------------------- *)
(* Revised engine vs the dense tableau oracle                        *)
(* --------------------------------------------------------------- *)

(* Random banded LPs: minimize a nonnegative objective over rows each
   touching a window of ≤3 consecutive variables, with a mix of
   Le/Ge/Eq relations. Never unbounded (costs >= 0, vars >= 0);
   infeasibility is possible and must be classified identically. *)
let arb_banded_lp =
  let gen st =
    let nv = 3 + QCheck.Gen.int_bound 3 st in
    let nrows = 2 + QCheck.Gen.int_bound 4 st in
    let rows =
      List.init nrows (fun i ->
          let lo = i mod nv in
          let width = 1 + QCheck.Gen.int_bound 2 st in
          let vars = List.filter (fun v -> v < nv) (List.init width (fun k -> lo + k)) in
          let coefs = List.map (fun v -> (v, Rat.of_ints (1 + QCheck.Gen.int_bound 8 st) 1)) vars in
          let rel = match QCheck.Gen.int_bound 3 st with 0 | 1 -> `Le | 2 -> `Ge | _ -> `Eq in
          let rhs =
            match rel with
            | `Le -> Rat.of_ints (5 + QCheck.Gen.int_bound 20 st) 1
            | `Ge | `Eq -> Rat.of_ints (QCheck.Gen.int_bound 4 st) 1
          in
          (coefs, rel, rhs))
    in
    let obj = List.init nv (fun v -> (v, Rat.of_ints (QCheck.Gen.int_bound 9 st) 1)) in
    (nv, rows, obj)
  in
  QCheck.make
    ~print:(fun (nv, rows, _) -> Printf.sprintf "banded LP: %d vars, %d rows" nv (List.length rows))
    gen

let build_banded (nv, rows, obj) =
  let p = Lp.make () in
  let xs = Array.init nv (fun _ -> Lp.fresh_var p) in
  List.iter
    (fun (coefs, rel, rhs) ->
      let e = Lp.Expr.sum (List.map (fun (v, c) -> Lp.Expr.term c xs.(v)) coefs) in
      match rel with
      | `Le -> Lp.add_le p e rhs
      | `Ge -> Lp.add_ge p e rhs
      | `Eq -> Lp.add_eq p e rhs)
    rows;
  Lp.set_objective p Lp.Minimize
    (Lp.Expr.sum (List.map (fun (v, c) -> Lp.Expr.term c xs.(v)) obj));
  p

(* The revised engine replicates the oracle decision-for-decision on
   cold solves, so EVERYTHING must agree exactly: classification,
   objective, the solution vertex, and the duals. *)
let prop_revised_matches_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"revised simplex ≡ tableau oracle (banded)" ~count:200
       arb_banded_lp (fun spec ->
         let r_rev =
           Lp.Solver.solve (Lp.Solver.create ~engine:Lp.Solver.Revised ()) (build_banded spec)
         in
         let r_tab =
           Lp.Solver.solve (Lp.Solver.create ~engine:Lp.Solver.Tableau ()) (build_banded spec)
         in
         match (r_rev.Lp.Solver.outcome, r_tab.Lp.Solver.outcome) with
         | Lp.Optimal a, Lp.Optimal b ->
           Rat.equal a.Lp.objective b.Lp.objective
           && Array.for_all2 Rat.equal a.Lp.values b.Lp.values
           && (match (r_rev.Lp.Solver.duals, r_tab.Lp.Solver.duals) with
              | Some da, Some db -> Array.for_all2 Rat.equal da db
              | _ -> false)
           && Lp.check_solution (build_banded spec) a
         | Lp.Failed ea, Lp.Failed eb -> ea = eb
         | _ -> false))

(* Warm starts may land on a different optimal vertex but must report
   the exact optimal value and a genuinely feasible solution. *)
let prop_warm_start_exact_value =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"warm start: exact value, feasible vertex" ~count:100
       arb_banded_lp (fun ((nv, rows, obj) as spec) ->
         let session = Lp.Solver.create () in
         let first = Lp.Solver.solve session (build_banded spec) in
         (* Same shape, perturbed data: scale every Le rhs up by 1/7 —
            relaxing Le rows keeps any feasible point feasible. *)
         let perturbed =
           ( nv,
             List.map
               (fun (coefs, rel, rhs) ->
                 match rel with
                 | `Le -> (coefs, rel, Rat.mul rhs (Rat.of_ints 8 7))
                 | _ -> (coefs, rel, rhs))
               rows,
             obj )
         in
         let warm = Lp.Solver.solve session (build_banded perturbed) in
         let cold = Lp.solve (build_banded perturbed) in
         match (warm.Lp.Solver.outcome, cold) with
         | Lp.Optimal w, Lp.Optimal c ->
           Rat.equal w.Lp.objective c.Lp.objective
           && Lp.check_solution (build_banded perturbed) w
         | Lp.Failed ea, Lp.Failed eb -> ea = eb
         | _ -> (
           (* Only reachable if [first] failed too (shape never cached):
              then warm ran cold and the mismatch is genuine. *)
           match first.Lp.Solver.outcome with Lp.Failed _ -> false | _ -> false)))

let test_warm_hit_telemetry () =
  (* Two same-shaped solves through one session: the second must be a
     warm hit and skip phase 1 entirely. *)
  let build rhs =
    let p = Lp.make () in
    let x = Lp.fresh_var p and y = Lp.fresh_var p in
    Lp.add_ge p Lp.Expr.(add (var x) (term (q 2 1) y)) rhs;
    Lp.add_ge p Lp.Expr.(add (term (q 3 1) x) (var y)) (q 6 1);
    Lp.set_objective p Lp.Minimize Lp.Expr.(add (var x) (var y));
    p
  in
  let session = Lp.Solver.create () in
  let r1 = Lp.Solver.solve session (build (q 4 1)) in
  Alcotest.(check bool) "first solve cold" true
    (r1.Lp.Solver.stats.Lp.Solver.warm = Lp.Solver.Cold);
  let r2 = Lp.Solver.solve session (build (q 5 1)) in
  (match (r2.Lp.Solver.outcome, Lp.solve (build (q 5 1))) with
  | Lp.Optimal w, Lp.Optimal c -> Alcotest.check rat "warm value exact" c.objective w.objective
  | _ -> Alcotest.fail "both optimal expected");
  Alcotest.(check bool) "second solve warm hit" true
    (r2.Lp.Solver.stats.Lp.Solver.warm = Lp.Solver.Warm_hit)

let test_engine_stats_pivots () =
  (* The per-solve pivot stat matches the Obs counter delta. *)
  let p () =
    let p = Lp.make () in
    let x = Lp.fresh_var p and y = Lp.fresh_var p in
    Lp.add_le p Lp.Expr.(add (var x) (var y)) (q 10 1);
    Lp.set_objective p Lp.Maximize Lp.Expr.(add (term (q 3 1) x) (var y));
    p
  in
  Obs.with_recorder (Obs.create ()) @@ fun () ->
  let before = Obs.counter_value "simplex.pivots" in
  let r = Lp.Solver.solve (Lp.Solver.create ()) (p ()) in
  let delta = Obs.counter_value "simplex.pivots" - before in
  Alcotest.(check int) "stats.pivots = counter delta" delta r.Lp.Solver.stats.Lp.Solver.pivots

let () =
  Alcotest.run "lp"
    [
      ( "textbook",
        [
          Alcotest.test_case "basic max" `Quick test_basic_max;
          Alcotest.test_case "basic min" `Quick test_basic_min;
          Alcotest.test_case "equality constraints" `Quick test_equality_constraints;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "infeasible equalities" `Quick test_infeasible_eq;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "unbounded direction" `Quick test_unbounded_direction;
          Alcotest.test_case "free variables" `Quick test_free_variables;
          Alcotest.test_case "lower bounds" `Quick test_lower_bounds;
          Alcotest.test_case "objective constant" `Quick test_constant_in_objective;
          Alcotest.test_case "Beale degeneracy (Bland)" `Quick test_degenerate_beale;
          Alcotest.test_case "duplicate terms" `Quick test_duplicate_terms_normalized;
          Alcotest.test_case "redundant rows" `Quick test_redundant_rows;
          Alcotest.test_case "zero objective" `Quick test_zero_objective;
          Alcotest.test_case "expression evaluation" `Quick test_expr_eval;
        ] );
      ( "randomized",
        [ prop_2d_matches_brute_force; prop_solution_feasible; prop_strong_duality ] );
      ( "revised-vs-oracle",
        [
          prop_revised_matches_oracle;
          prop_warm_start_exact_value;
          Alcotest.test_case "warm-hit telemetry" `Quick test_warm_hit_telemetry;
          Alcotest.test_case "stats pivots" `Quick test_engine_stats_pivots;
        ] );
      ( "facade-duals",
        [
          Alcotest.test_case "signs and strong duality" `Quick test_facade_duals_signs;
          Alcotest.test_case "shadow-price sensitivity" `Quick test_facade_duals_sensitivity;
          Alcotest.test_case "maximize flips signs" `Quick test_facade_duals_maximize;
        ] );
      ( "float-mirror",
        [
          Alcotest.test_case "agrees on a textbook LP" `Quick test_float_mirror_agrees;
          Alcotest.test_case "infeasible" `Quick test_float_mirror_infeasible;
          Alcotest.test_case "unbounded" `Quick test_float_mirror_unbounded;
          prop_float_tracks_exact;
        ] );
    ]
