(* Tests for lib/resilience and its threading through the solve stack:
   budgets (deadline / pivots / bits) surfacing as typed Exhausted
   values, the deterministic fault-injection registry, and the serve
   degradation ladder — every rung of which must still release a
   certified α-DP mechanism. *)

let q = Rat.of_ints

module B = Resilience.Budget
module F = Resilience.Fault
module E = Resilience.Solver_error

(* A fake clock that advances 1 ms on every read, so deadlines expire
   after a deterministic number of budget checks. *)
let ticking_clock ?(step_ns = 1_000_000L) () =
  let fc = Obs.Clock.Fake.create () in
  fun () ->
    Obs.Clock.Fake.advance fc step_ns;
    Obs.Clock.Fake.clock fc ()

(* A pure-inequality LP: the slack crash basis covers every row, phase 1
   is skipped, and every budget check happens at "simplex.phase2". *)
let box_lp () =
  let p = Lp.make () in
  let x = Lp.fresh_var ~name:"x" p in
  let y = Lp.fresh_var ~name:"y" p in
  let z = Lp.fresh_var ~name:"z" p in
  List.iter (fun v -> Lp.add_le p (Lp.Expr.var v) Rat.one) [ x; y; z ];
  Lp.set_objective p Lp.Maximize Lp.Expr.(add (var x) (add (var y) (var z)));
  p

let consumer ?(n = 5) loss = Minimax.Consumer.make ~loss ~side_info:(Minimax.Side_info.full n) ()

(* ------------------------------------------------------------------ *)
(* Budgets                                                            *)
(* ------------------------------------------------------------------ *)

let test_budget_check_order () =
  (* Deterministic dimensions are tested before the clock: a solve that
     blew both caps reports Pivots, not Deadline. *)
  let clock = ticking_clock () in
  let b = B.make ~clock ~deadline_ms:0 ~max_pivots:10 ~max_bits:64 () in
  (match B.check b ~pivots:10 ~peak_bits:9999 with
   | Some E.Pivots -> ()
   | _ -> Alcotest.fail "pivot cap must win over bits and deadline");
  (match B.check b ~pivots:3 ~peak_bits:9999 with
   | Some E.Bits -> ()
   | _ -> Alcotest.fail "bit ceiling must win over the deadline");
  match B.check b ~pivots:3 ~peak_bits:8 with
  | Some E.Deadline -> ()
  | _ -> Alcotest.fail "expired deadline must fire"

let test_deadline_mid_phase2 () =
  (* deadline_ms:2 on a clock ticking 1 ms per read: Budget.make reads
     once (t=1ms, deadline 3ms); phase-2 checks read at 2,3,4ms — the
     third check fires, after two real pivots, mid-phase-2. *)
  let clock = ticking_clock () in
  let budget = B.make ~clock ~deadline_ms:2 () in
  match Lp.solve ~budget (box_lp ()) with
  | Lp.Failed (E.Exhausted ex) ->
    Alcotest.(check string) "site" "simplex.phase2" ex.E.site;
    (match ex.E.kind with
     | E.Deadline -> ()
     | k -> Alcotest.fail ("wrong kind: " ^ E.to_string (E.Exhausted { ex with E.kind = k })));
    Alcotest.(check bool) "some pivots were spent first" true (ex.E.pivots > 0)
  | Lp.Failed e -> Alcotest.fail (E.to_string e)
  | Lp.Optimal _ -> Alcotest.fail "deadline never fired"

let test_pivot_budget_appendix_b () =
  (* The Appendix-B world: n=2, α=1/2 — with the degenerate zero-one
     loss the tailored LP stalls through ties, so a 3-pivot allowance
     runs out and the error reports exactly the pivots granted. *)
  let c = consumer ~n:2 Minimax.Loss.zero_one in
  let budget = B.make ~max_pivots:3 () in
  match Minimax.Optimal_mechanism.solve_budgeted ~budget ~alpha:(q 1 2) c with
  | Error (E.Exhausted ex) ->
    (match ex.E.kind with
     | E.Pivots -> ()
     | _ -> Alcotest.fail "expected pivot exhaustion");
    Alcotest.(check int) "spent exactly the allowance" 3 ex.E.pivots
  | Error e -> Alcotest.fail (E.to_string e)
  | Ok _ -> Alcotest.fail "3 pivots cannot solve the tailored LP"

let test_unbudgeted_solve_unchanged () =
  (* No budget, no plan: the guarded path must not perturb results. *)
  match Lp.solve (box_lp ()) with
  | Lp.Optimal s -> Alcotest.(check bool) "objective 3" true (Rat.equal s.Lp.objective (q 3 1))
  | Lp.Failed e -> Alcotest.fail (E.to_string e)

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let test_fault_exhausts_lp () =
  let plan = F.plan [ { F.site = "simplex.phase2"; hits = 1; action = F.Exhaust E.Pivots } ] in
  (F.with_plan plan @@ fun () ->
   match Lp.solve (box_lp ()) with
   | Lp.Failed (E.Exhausted ex) ->
     Alcotest.(check string) "site" "simplex.phase2" ex.E.site;
     (match ex.E.kind with
      | E.Pivots -> ()
      | _ -> Alcotest.fail "injected kind must surface")
   | _ -> Alcotest.fail "fault did not fire");
  Alcotest.(check int) "one trip recorded" 1 (F.trips plan);
  Alcotest.(check bool) "plan uninstalled after with_plan" false (F.enabled ())

let test_fault_trip_raises () =
  let plan = F.plan [ { F.site = "matrix.inverse"; hits = 1; action = F.Trip } ] in
  let m = Array.init 3 (fun i -> Array.init 3 (fun j -> if i = j then q 2 1 else Rat.zero)) in
  match F.with_plan plan (fun () -> Linalg.Matrix.Q.inverse m) with
  | exception F.Injected { site = "matrix.inverse"; hit = 1 } -> ()
  | exception F.Injected _ -> Alcotest.fail "wrong site/hit in Injected"
  | _ -> Alcotest.fail "trip site did not raise"

let test_fault_blowup_bits () =
  (* Blowup_bits fakes a huge pivot coefficient; only a max_bits budget
     notices, and reports Bits exhaustion at the faulted site. *)
  let plan = F.plan [ { F.site = "simplex.phase2"; hits = 1; action = F.Blowup_bits 10_000 } ] in
  let budget = B.make ~max_bits:1_000 () in
  F.with_plan plan @@ fun () ->
  match Lp.solve ~budget (box_lp ()) with
  | Lp.Failed (E.Exhausted ex) ->
    (match ex.E.kind with
     | E.Bits -> ()
     | _ -> Alcotest.fail "expected bit-ceiling exhaustion");
    Alcotest.(check bool) "peak_bits records the blowup" true (ex.E.peak_bits >= 10_000)
  | _ -> Alcotest.fail "bit blowup did not trip the ceiling"

(* ------------------------------------------------------------------ *)
(* Serve ladder                                                       *)
(* ------------------------------------------------------------------ *)

module S = Minimax.Serve

let alpha_dp_certified (s : S.served) =
  Check.Invariants.passed
    (Check.Invariants.alpha_dp ~alpha:s.S.provenance.S.alpha (Mech.Mechanism.matrix s.S.mechanism))

let test_ladder_tailored () =
  let s = S.serve ~alpha:(q 1 2) (consumer Minimax.Loss.absolute) in
  (match s.S.provenance.S.rung with
   | S.Tailored -> ()
   | r -> Alcotest.fail ("expected tailored, got " ^ S.rung_to_string r));
  Alcotest.(check int) "no degradations" 0 (List.length s.S.provenance.S.attempts);
  Alcotest.(check bool) "alpha-dp certified" true (alpha_dp_certified s)

let test_ladder_remap () =
  (* Exhaust only the FIRST phase-2 visit: rung 1 dies, rung 2's own LP
     runs clean and the ladder stops at geometric+remap. *)
  let plan = F.plan [ { F.site = "simplex.phase2"; hits = 1; action = F.Exhaust E.Pivots } ] in
  let s = F.with_plan plan @@ fun () -> S.serve ~alpha:(q 1 2) (consumer Minimax.Loss.absolute) in
  (match s.S.provenance.S.rung with
   | S.Geometric_remap -> ()
   | r -> Alcotest.fail ("expected geometric+remap, got " ^ S.rung_to_string r));
  (match s.S.provenance.S.attempts with
   | [ { S.attempted = S.Tailored; reason = S.Solver (E.Exhausted _) } ] -> ()
   | _ -> Alcotest.fail "attempts must record the tailored exhaustion");
  Alcotest.(check bool) "alpha-dp certified" true (alpha_dp_certified s);
  (* Theorem 1: the remapped geometric matches the tailored optimum. *)
  let tailored = Minimax.Optimal_mechanism.solve ~alpha:(q 1 2) (consumer Minimax.Loss.absolute) in
  Alcotest.(check bool) "remap loses nothing (Theorem 1)" true
    (Rat.equal s.S.loss tailored.Minimax.Optimal_mechanism.loss)

let test_ladder_raw () =
  (* Exhaust EVERY visit to both simplex sites: rungs 1 and 2 both die
     and the ladder bottoms out at raw G(n,α) — still certified. *)
  let plan =
    F.plan
      [
        { F.site = "simplex.phase1"; hits = 0; action = F.Exhaust E.Pivots };
        { F.site = "simplex.phase2"; hits = 0; action = F.Exhaust E.Pivots };
      ]
  in
  let s = F.with_plan plan @@ fun () -> S.serve ~alpha:(q 1 2) (consumer Minimax.Loss.absolute) in
  (match s.S.provenance.S.rung with
   | S.Geometric_raw -> ()
   | r -> Alcotest.fail ("expected raw geometric, got " ^ S.rung_to_string r));
  (match List.map (fun a -> a.S.attempted) s.S.provenance.S.attempts with
   | [ S.Tailored; S.Geometric_remap ] -> ()
   | _ -> Alcotest.fail "attempts must record both failed rungs in order");
  Alcotest.(check bool) "alpha-dp certified" true (alpha_dp_certified s)

let test_ladder_all_rungs_alpha_dp () =
  (* Property: whatever the failure pattern and consumer, the released
     mechanism passes the independent α-DP check. *)
  let plans =
    [
      None;
      Some (F.plan [ { F.site = "simplex.phase2"; hits = 1; action = F.Exhaust E.Pivots } ]);
      Some (F.plan [ { F.site = "simplex.phase1"; hits = 0; action = F.Exhaust E.Deadline } ]);
      Some
        (F.plan
           [
             { F.site = "simplex.phase1"; hits = 0; action = F.Exhaust E.Pivots };
             { F.site = "simplex.phase2"; hits = 0; action = F.Exhaust E.Pivots };
           ]);
    ]
  in
  let losses = [ Minimax.Loss.absolute; Minimax.Loss.squared; Minimax.Loss.zero_one ] in
  List.iter
    (fun loss ->
      List.iter
        (fun plan ->
          let run () = S.serve ~alpha:(q 1 3) (consumer ~n:4 loss) in
          let s = match plan with None -> run () | Some p -> F.with_plan p run in
          Alcotest.(check bool)
            (Printf.sprintf "alpha-dp at rung %s for %s" (S.rung_to_string s.S.provenance.S.rung)
               (Minimax.Loss.name loss))
            true (alpha_dp_certified s))
        plans)
    losses

let test_provenance_deterministic () =
  (* Same plan, same consumer: byte-identical provenance, twice. *)
  let mk_plan () =
    F.plan
      [
        { F.site = "simplex.phase1"; hits = 0; action = F.Exhaust E.Pivots };
        { F.site = "simplex.phase2"; hits = 0; action = F.Exhaust E.Pivots };
      ]
  in
  let run () =
    F.with_plan (mk_plan ()) @@ fun () ->
    S.provenance_to_string (S.serve ~alpha:(q 1 2) (consumer Minimax.Loss.absolute)).S.provenance
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical provenance" a b;
  (* And it names the rung + both attempts, per the acceptance bar. *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (Str.string_match (Str.regexp (".*" ^ Str.quote needle)) a 0))
    [ "rung=geometric"; "tailored:exhausted"; "geometric+remap:exhausted"; "kind=pivots" ]

let test_deadline_shared_across_rungs () =
  (* One already-expired deadline starves every LP rung; the ladder
     still releases raw G(n,α) and charges both failures to it. *)
  let clock = ticking_clock () in
  let budget = B.make ~clock ~deadline_ms:0 () in
  let s = S.serve ~budget ~alpha:(q 1 2) (consumer Minimax.Loss.absolute) in
  (match s.S.provenance.S.rung with
   | S.Geometric_raw -> ()
   | r -> Alcotest.fail ("expected raw geometric, got " ^ S.rung_to_string r));
  Alcotest.(check bool) "alpha-dp certified" true (alpha_dp_certified s)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "resilience"
    [
      ( "budget",
        [
          Alcotest.test_case "check order" `Quick test_budget_check_order;
          Alcotest.test_case "deadline mid-phase-2" `Quick test_deadline_mid_phase2;
          Alcotest.test_case "pivot budget (Appendix B)" `Quick test_pivot_budget_appendix_b;
          Alcotest.test_case "unbudgeted unchanged" `Quick test_unbudgeted_solve_unchanged;
        ] );
      ( "fault",
        [
          Alcotest.test_case "exhausts LP" `Quick test_fault_exhausts_lp;
          Alcotest.test_case "trip raises" `Quick test_fault_trip_raises;
          Alcotest.test_case "bit blowup" `Quick test_fault_blowup_bits;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "tailored" `Quick test_ladder_tailored;
          Alcotest.test_case "remap" `Quick test_ladder_remap;
          Alcotest.test_case "raw geometric" `Quick test_ladder_raw;
          Alcotest.test_case "all rungs alpha-dp" `Quick test_ladder_all_rungs_alpha_dp;
          Alcotest.test_case "provenance deterministic" `Quick test_provenance_deterministic;
          Alcotest.test_case "deadline shared across rungs" `Quick test_deadline_shared_across_rungs;
        ] );
    ]
