(* Tests for lib/obs: deterministic spans under a fake clock, counter
   and histogram semantics (including merge), byte-exact golden output
   for the JSON-lines and Chrome-trace sinks, no-op behavior when
   disabled, the JSON parser, and an end-to-end check that the bench
   binary's --bench-json trajectory round-trips through Json.of_string. *)

module C = Obs.Clock
module H = Obs.Histogram
module J = Obs.Json

(* ------------------------------------------------------------------ *)
(* A canonical deterministic recorder shared by the golden tests       *)
(* ------------------------------------------------------------------ *)

(* Two nested spans, one counter, one histogram, all against a fake
   clock that starts at 0 and advances in round microsecond steps so
   the Chrome µs timestamps are exact. *)
let canonical () =
  let fake = C.Fake.create () in
  let r = Obs.create ~clock:(C.Fake.clock fake) () in
  Obs.with_recorder r (fun () ->
      Obs.span
        ~attrs:[ ("n", Obs.Int 7); ("alpha", Obs.Rat (Rat.of_ints 1 2)) ]
        "solve.outer"
        (fun () ->
          C.Fake.advance fake 100_000L;
          Obs.span "solve.inner" (fun () -> C.Fake.advance fake 50_000L);
          C.Fake.advance fake 25_000L);
      Obs.incr "lp.solves";
      Obs.incr ~by:2 "lp.solves";
      Obs.observe "bits" 3;
      Obs.observe "bits" 5);
  r

(* ------------------------------------------------------------------ *)
(* Spans under the fake clock                                          *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  let r = canonical () in
  match Obs.spans r with
  | [ inner; outer ] ->
    (* completion order: the child closes first *)
    Alcotest.(check string) "inner name" "solve.inner" inner.Obs.name;
    Alcotest.(check int64) "inner start" 100_000L inner.Obs.start_ns;
    Alcotest.(check int64) "inner dur" 50_000L inner.Obs.dur_ns;
    Alcotest.(check int) "inner depth" 1 inner.Obs.depth;
    Alcotest.(check string) "outer name" "solve.outer" outer.Obs.name;
    Alcotest.(check int64) "outer start" 0L outer.Obs.start_ns;
    Alcotest.(check int64) "outer dur" 175_000L outer.Obs.dur_ns;
    Alcotest.(check int) "outer depth" 0 outer.Obs.depth
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_sequential () =
  (* Two siblings at the same depth do not overlap and both record. *)
  let fake = C.Fake.create ~now:5_000L () in
  let r = Obs.create ~clock:(C.Fake.clock fake) () in
  Obs.with_recorder r (fun () ->
      Obs.span "a" (fun () -> C.Fake.advance fake 10L);
      Obs.span "b" (fun () -> C.Fake.advance fake 20L));
  (match Obs.spans r with
   | [ a; b ] ->
     Alcotest.(check int64) "a start" 5_000L a.Obs.start_ns;
     Alcotest.(check int64) "a dur" 10L a.Obs.dur_ns;
     Alcotest.(check int64) "b start" 5_010L b.Obs.start_ns;
     Alcotest.(check int64) "b dur" 20L b.Obs.dur_ns;
     Alcotest.(check int) "a depth" 0 a.Obs.depth;
     Alcotest.(check int) "b depth" 0 b.Obs.depth
   | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_span_records_on_exception () =
  let fake = C.Fake.create () in
  let r = Obs.create ~clock:(C.Fake.clock fake) () in
  (try
     Obs.with_recorder r (fun () ->
         Obs.span "boom" (fun () ->
             C.Fake.advance fake 42L;
             failwith "expected"))
   with Failure _ -> ());
  (match Obs.spans r with
   | [ s ] ->
     Alcotest.(check string) "name" "boom" s.Obs.name;
     Alcotest.(check int64) "dur" 42L s.Obs.dur_ns
   | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans));
  Alcotest.(check bool) "recorder removed after with_recorder" false (Obs.enabled ())

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let r = canonical () in
  Alcotest.(check int) "lp.solves" 3 (Obs.counter r "lp.solves");
  Alcotest.(check int) "missing counter" 0 (Obs.counter r "nope");
  Alcotest.(check (list (pair string int))) "sorted" [ ("lp.solves", 3) ] (Obs.counters r)

let test_histogram_stats () =
  let h = H.create () in
  Alcotest.(check int) "empty min" 0 (H.min h);
  Alcotest.(check int) "empty max" 0 (H.max h);
  List.iter (H.observe h) [ 3; 5; 0; 1000 ];
  Alcotest.(check int) "count" 4 (H.count h);
  Alcotest.(check int) "sum" 1008 (H.sum h);
  Alcotest.(check int) "min" 0 (H.min h);
  Alcotest.(check int) "max" 1000 (H.max h);
  (* buckets: 0 -> 0, 3 -> 2, 5 -> 3, 1000 -> 10 (2^9 <= 1000 < 2^10) *)
  Alcotest.(check (list (pair int int)))
    "buckets"
    [ (0, 1); (2, 1); (3, 1); (10, 1) ]
    (H.buckets h)

let test_merge () =
  let fake = C.Fake.create () in
  let a = Obs.create ~clock:(C.Fake.clock fake) () in
  let b = Obs.create ~clock:(C.Fake.clock fake) () in
  Obs.with_recorder a (fun () ->
      Obs.incr ~by:2 "shared";
      Obs.incr "only_a";
      Obs.observe "bits" 3);
  Obs.with_recorder b (fun () ->
      Obs.span "b.span" (fun () -> C.Fake.advance fake 10L);
      Obs.incr ~by:5 "shared";
      Obs.observe "bits" 9;
      Obs.observe "fresh" 1);
  Obs.merge_into ~into:a b;
  Alcotest.(check int) "shared summed" 7 (Obs.counter a "shared");
  Alcotest.(check int) "only_a kept" 1 (Obs.counter a "only_a");
  let bits = Option.get (Obs.histogram a "bits") in
  Alcotest.(check int) "bits count" 2 (H.count bits);
  Alcotest.(check int) "bits min" 3 (H.min bits);
  Alcotest.(check int) "bits max" 9 (H.max bits);
  Alcotest.(check int) "fresh copied" 1 (H.count (Option.get (Obs.histogram a "fresh")));
  (* spans never merge: timestamps only make sense against their own epoch *)
  Alcotest.(check int) "spans not merged" 0 (List.length (Obs.spans a));
  (* and the source is untouched *)
  Alcotest.(check int) "src intact" 5 (Obs.counter b "shared")

(* ------------------------------------------------------------------ *)
(* Sharded recorder                                                    *)
(* ------------------------------------------------------------------ *)

(* The same multiset of observations, recorded by one domain and split
   over four: the merged read-out must be identical, because counters
   add, histograms merge bucket-wise, and rolling slices sum keyed by
   absolute slice index — all order-insensitive. *)
let obs_work lo hi =
  for i = lo to hi do
    Obs.incr ~by:i "work";
    Obs.incr "events";
    Obs.observe "bits" i;
    Obs.observe_latency_ns "lat" (Int64.of_int (i * 1_000_000))
  done

let histo_readout r =
  List.map (fun (k, h) -> (k, H.count h, H.sum h, H.min h, H.max h, H.buckets h)) (Obs.histograms r)

let test_sharded_one_vs_n () =
  let r1 = Obs.create ~clock:(C.Fake.clock (C.Fake.create ())) () in
  Obs.with_recorder r1 (fun () -> obs_work 1 8);
  let rn = Obs.create ~clock:(C.Fake.clock (C.Fake.create ())) () in
  Obs.with_recorder rn (fun () ->
      let ds =
        List.init 4 (fun d -> Domain.spawn (fun () -> obs_work ((2 * d) + 1) ((2 * d) + 2)))
      in
      List.iter Domain.join ds);
  Alcotest.(check (list (pair string int))) "counters" (Obs.counters r1) (Obs.counters rn);
  Alcotest.(check bool) "histograms" true (histo_readout r1 = histo_readout rn);
  Alcotest.(check bool) "rolling windows" true (Obs.rollings r1 = Obs.rollings rn);
  Alcotest.(check int) "four shards really recorded" 36 (Obs.counter rn "work")

let test_merge_assoc_comm () =
  let mk salt =
    let r = Obs.create ~clock:(C.Fake.clock (C.Fake.create ())) () in
    Obs.with_recorder r (fun () ->
        Obs.incr ~by:salt "shared";
        Obs.incr (Printf.sprintf "only_%d" salt);
        Obs.observe "bits" salt;
        Obs.observe_latency_ns "lat" (Int64.of_int (salt * 1_000_000)));
    r
  in
  let readout r = (Obs.counters r, histo_readout r, Obs.rollings r) in
  let fresh () = Obs.create ~clock:(C.Fake.clock (C.Fake.create ())) () in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  (* commutativity: a ⊕ b ⊕ c = c ⊕ b ⊕ a *)
  let fwd = fresh () and rev = fresh () in
  List.iter (fun r -> Obs.merge_into ~into:fwd r) [ a; b; c ];
  List.iter (fun r -> Obs.merge_into ~into:rev r) [ c; b; a ];
  Alcotest.(check bool) "commutative" true (readout fwd = readout rev);
  (* associativity: (a ⊕ b) ⊕ c = a ⊕ (b ⊕ c) *)
  let ab = fresh () and bc = fresh () in
  Obs.merge_into ~into:ab a;
  Obs.merge_into ~into:ab b;
  Obs.merge_into ~into:ab c;
  Obs.merge_into ~into:bc b;
  Obs.merge_into ~into:bc c;
  let a_bc = fresh () in
  Obs.merge_into ~into:a_bc a;
  Obs.merge_into ~into:a_bc bc;
  Alcotest.(check bool) "associative" true (readout ab = readout a_bc);
  (* sources untouched by being merged from *)
  Alcotest.(check int) "src intact" 2 (Obs.counter b "shared")

(* ------------------------------------------------------------------ *)
(* Rolling windows under the fake clock                                *)
(* ------------------------------------------------------------------ *)

let test_rolling_expiry () =
  let fake = C.Fake.create () in
  let r = Obs.create ~clock:(C.Fake.clock fake) () in
  Obs.with_recorder r (fun () ->
      let snap () =
        match Obs.rolling_value "lat" with
        | Some s -> s
        | None -> Alcotest.fail "rolling window missing"
      in
      (* 1500 µs lands in bucket 11, whose upper bound is 2^11-1. *)
      Obs.observe_latency_ns "lat" 1_500_000L;
      let s = snap () in
      Alcotest.(check int) "count" 1 s.Obs.Rolling.count;
      Alcotest.(check int) "sum" 1500 s.Obs.Rolling.sum_us;
      Alcotest.(check int) "max exact" 1500 s.Obs.Rolling.max_us;
      Alcotest.(check int) "p50 bucket bound" 2047 s.Obs.Rolling.p50_us;
      (* 5 s later both observations sit inside the 10 s window. *)
      C.Fake.advance fake 5_000_000_000L;
      Obs.observe_latency_ns "lat" 700_000L;
      let s = snap () in
      Alcotest.(check int) "both in window" 2 s.Obs.Rolling.count;
      Alcotest.(check int) "sum both" 2200 s.Obs.Rolling.sum_us;
      Alcotest.(check (list (pair int int)))
        "two buckets" [ (10, 1); (11, 1) ] s.Obs.Rolling.buckets;
      (* t = 11 s: the first observation has aged out, the second has not. *)
      C.Fake.advance fake 6_000_000_000L;
      let s = snap () in
      Alcotest.(check int) "first expired" 1 s.Obs.Rolling.count;
      Alcotest.(check int) "survivor sum" 700 s.Obs.Rolling.sum_us;
      Alcotest.(check int) "survivor max" 700 s.Obs.Rolling.max_us;
      Alcotest.(check int) "survivor p99" 1023 s.Obs.Rolling.p99_us;
      (* Far past the window: empty, quantiles zero. *)
      C.Fake.advance fake 20_000_000_000L;
      let s = snap () in
      Alcotest.(check int) "all expired" 0 s.Obs.Rolling.count;
      Alcotest.(check int) "empty p50" 0 s.Obs.Rolling.p50_us;
      Alcotest.(check (list (pair int int))) "no buckets" [] s.Obs.Rolling.buckets)

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                       *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  Obs.set_current None;
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Alcotest.(check int) "span is transparent" 41 (Obs.span "ghost" (fun () -> 41));
  Obs.incr "ghost";
  Obs.observe "ghost" 7;
  Obs.observe_bits "ghost" (Rat.of_ints 355 113);
  Alcotest.(check int) "counter_value 0 when disabled" 0 (Obs.counter_value "ghost");
  (* installing a recorder afterwards starts from a clean slate *)
  let r = Obs.create ~clock:(C.Fake.clock (C.Fake.create ())) () in
  Obs.with_recorder r (fun () ->
      Alcotest.(check bool) "enabled inside" true (Obs.enabled ()));
  Alcotest.(check int) "nothing leaked in" 0 (List.length (Obs.counters r));
  Alcotest.(check int) "no spans leaked" 0 (List.length (Obs.spans r))

(* ------------------------------------------------------------------ *)
(* Golden sink output                                                  *)
(* ------------------------------------------------------------------ *)

let test_golden_json_lines () =
  let expected =
    String.concat "\n"
      [
        {|{"type":"span","name":"solve.inner","start_ns":100000,"dur_ns":50000,"depth":1,"attrs":{}}|};
        {|{"type":"span","name":"solve.outer","start_ns":0,"dur_ns":175000,"depth":0,"attrs":{"n":7,"alpha":"1/2"}}|};
        {|{"type":"counter","name":"lp.solves","value":3}|};
        {|{"type":"histogram","name":"bits","count":2,"sum":8,"min":3,"max":5,"buckets":[[2,1],[3,1]]}|};
        "";
      ]
  in
  Alcotest.(check string) "json lines" expected (Obs.to_json_lines (canonical ()))

let test_golden_chrome_trace () =
  let expected =
    {|{"traceEvents":[{"name":"solve.inner","cat":"solve","ph":"X","ts":100,"dur":50,"pid":1,"tid":1,"args":{"start_ns":100000,"dur_ns":50000}},{"name":"solve.outer","cat":"solve","ph":"X","ts":0,"dur":175,"pid":1,"tid":1,"args":{"start_ns":0,"dur_ns":175000,"n":7,"alpha":"1/2"}},{"name":"lp.solves","ph":"C","ts":175,"pid":1,"tid":1,"args":{"value":3}}],"displayTimeUnit":"ns"}|}
  in
  Alcotest.(check string) "chrome trace" expected (J.to_string (Obs.to_chrome_trace (canonical ())))

(* Two traced requests and one untraced span: each trace id gets its
   own lane (tid 2 and 3, announced by thread_name metadata), span ids
   count per trace with cross-stage parent links, and the untraced
   span stays on lane 1. Byte-exact. *)
let test_chrome_trace_lanes () =
  let fake = C.Fake.create () in
  let r = Obs.create ~clock:(C.Fake.clock fake) () in
  Obs.with_recorder r (fun () ->
      let ta = Obs.Trace.make "q1" and tb = Obs.Trace.make "q2" in
      Obs.with_trace ta (fun () ->
          Obs.span "server.admit" (fun () -> C.Fake.advance fake 1_000L));
      Obs.with_trace tb (fun () ->
          Obs.span "server.admit" (fun () -> C.Fake.advance fake 2_000L));
      (* a later stage of request q1, parented to its admission span *)
      Obs.with_trace ~parent:Obs.Trace.root ta (fun () ->
          Obs.span "engine.sample" (fun () -> C.Fake.advance fake 3_000L));
      Obs.span "server.batch" (fun () -> C.Fake.advance fake 4_000L));
  let expected =
    {|{"traceEvents":[{"name":"thread_name","ph":"M","pid":1,"tid":2,"args":{"name":"trace q1"}},{"name":"thread_name","ph":"M","pid":1,"tid":3,"args":{"name":"trace q2"}},{"name":"server.admit","cat":"server","ph":"X","ts":0,"dur":1,"pid":1,"tid":2,"args":{"start_ns":0,"dur_ns":1000,"trace_id":"q1","span_id":1,"parent_id":0}},{"name":"server.admit","cat":"server","ph":"X","ts":1,"dur":2,"pid":1,"tid":3,"args":{"start_ns":1000,"dur_ns":2000,"trace_id":"q2","span_id":1,"parent_id":0}},{"name":"engine.sample","cat":"engine","ph":"X","ts":3,"dur":3,"pid":1,"tid":2,"args":{"start_ns":3000,"dur_ns":3000,"trace_id":"q1","span_id":2,"parent_id":1}},{"name":"server.batch","cat":"server","ph":"X","ts":6,"dur":4,"pid":1,"tid":1,"args":{"start_ns":6000,"dur_ns":4000}}],"displayTimeUnit":"ns"}|}
  in
  Alcotest.(check string) "per-request lanes" expected (J.to_string (Obs.to_chrome_trace r))

let test_chrome_trace_parses_back () =
  (* The trace document must be valid JSON with a traceEvents array in
     which every event carries the fields the trace viewers demand. *)
  match J.of_string (J.to_string (Obs.to_chrome_trace (canonical ()))) with
  | Error msg -> Alcotest.failf "trace does not parse: %s" msg
  | Ok doc -> (
    match J.member "traceEvents" doc with
    | Some (J.List events) ->
      Alcotest.(check int) "event count" 3 (List.length events);
      List.iter
        (fun ev ->
          List.iter
            (fun field ->
              if J.member field ev = None then Alcotest.failf "event missing %s" field)
            [ "name"; "ph"; "ts"; "pid"; "tid"; "args" ])
        events
    | _ -> Alcotest.fail "no traceEvents array")

let test_render_text () =
  let text = Obs.render_text (canonical ()) in
  List.iter
    (fun needle ->
      if not (Str.string_match (Str.regexp (".*" ^ Str.quote needle)) text 0
              || Str.search_forward (Str.regexp_string needle) text 0 >= 0)
      then Alcotest.failf "missing %S in render_text" needle)
    [ "solve.outer"; "solve.inner"; "lp.solves"; "n=2 min=3 max=5" ]

(* ------------------------------------------------------------------ *)
(* JSON parser                                                         *)
(* ------------------------------------------------------------------ *)

let json = Alcotest.testable (fun fmt j -> Format.pp_print_string fmt (J.to_string j)) ( = )

let test_json_roundtrip () =
  let doc =
    J.Obj
      [
        ("null", J.Null);
        ("flag", J.Bool true);
        ("neg", J.Int (-42));
        ("s", J.Str "a\"b\\c\nd\te");
        ("empty_list", J.List []);
        ("empty_obj", J.Obj []);
        ("nested", J.List [ J.Int 1; J.Obj [ ("k", J.Str "v") ]; J.Bool false ]);
      ]
  in
  (match J.of_string (J.to_string doc) with
   | Ok parsed -> Alcotest.check json "compact roundtrip" doc parsed
   | Error msg -> Alcotest.failf "parse failed: %s" msg);
  (* the pretty form parses back to the same value too *)
  match J.of_string (Format.asprintf "%a" J.pp doc) with
  | Ok parsed -> Alcotest.check json "pretty roundtrip" doc parsed
  | Error msg -> Alcotest.failf "pretty parse failed: %s" msg

let test_json_parser_accepts () =
  let ok s v =
    match J.of_string s with
    | Ok parsed -> Alcotest.check json s v parsed
    | Error msg -> Alcotest.failf "%s should parse: %s" s msg
  in
  ok " [ 1 , 2 ] " (J.List [ J.Int 1; J.Int 2 ]);
  ok {|"snow❄"|} (J.Str "snow\xe2\x9d\x84");
  ok {|"é"|} (J.Str "\xc3\xa9");
  ok "-0" (J.Int 0);
  ok "{\"a\":{}}" (J.Obj [ ("a", J.Obj []) ])

let test_json_parser_rejects () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.failf "%S should not parse" s
      | Error _ -> ())
    [ "1.5"; "1e9"; "[1,2] trailing"; "{\"a\":}"; "\"unterminated"; "[1,]"; ""; "nul" ]

(* ------------------------------------------------------------------ *)
(* Bench trajectory round-trip                                         *)
(* ------------------------------------------------------------------ *)

(* End-to-end: the bench binary writes a trajectory file whose records
   carry the schema EXPERIMENTS.md documents, and the file parses with
   the same Json module that wrote it. Tests run in _build/default/test,
   so the bench executable is a sibling directory away. *)
let test_bench_trajectory_roundtrip () =
  let exe =
    List.find_opt Sys.file_exists
      [ "../bench/main.exe" (* dune runtest: cwd = _build/default/test *);
        "_build/default/bench/main.exe" (* manual run from the repo root *) ]
  in
  match exe with
  | None -> Alcotest.skip ()
  | Some exe ->
    begin
    let tmp = Filename.temp_file "bench" ".json" in
    let cmd = Printf.sprintf "%s --bench-json %s F1 > /dev/null" (Filename.quote exe) (Filename.quote tmp) in
    let rc = Sys.command cmd in
    Alcotest.(check int) "bench exit code" 0 rc;
    let contents =
      let ic = open_in_bin tmp in
      Fun.protect
        ~finally:(fun () ->
          close_in_noerr ic;
          Sys.remove tmp)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match J.of_string contents with
    | Error msg -> Alcotest.failf "trajectory does not parse: %s" msg
    | Ok doc ->
      Alcotest.(check (option string))
        "schema" (Some "minimax-dp/bench-trajectory")
        (Option.bind (J.member "schema" doc) J.to_str_opt);
      Alcotest.(check (option int)) "version" (Some 2)
        (Option.bind (J.member "version" doc) J.to_int_opt);
      (match Option.bind (J.member "git_rev" doc) J.to_str_opt with
       | Some rev -> Alcotest.(check bool) "git_rev non-empty" true (rev <> "")
       | None -> Alcotest.fail "trajectory missing git_rev stamp");
      (match Option.bind (J.member "host_cores" doc) J.to_int_opt with
       | Some c -> Alcotest.(check bool) "host_cores positive" true (c >= 1)
       | None -> Alcotest.fail "trajectory missing host_cores stamp");
      (match J.member "experiments" doc with
       | Some (J.List [ record ]) ->
         Alcotest.(check (option string)) "id" (Some "F1")
           (Option.bind (J.member "id" record) J.to_str_opt);
         let int_field k =
           match Option.bind (J.member k record) J.to_int_opt with
           | Some v -> v
           | None -> Alcotest.failf "record missing integer field %s" k
         in
         Alcotest.(check bool) "wall_ns non-negative" true (int_field "wall_ns" >= 0);
         List.iter
           (fun k -> ignore (int_field k))
           [ "wall_ms"; "pivots"; "max_coeff_bits"; "lp_solves"; "matrix_inversions" ];
         (match J.member "metrics" record with
          | Some (J.Obj _) -> ()
          | _ -> Alcotest.fail "metrics should be an object when observing")
       | _ -> Alcotest.fail "expected exactly one experiment record")
  end

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "sequential" `Quick test_span_sequential;
          Alcotest.test_case "exception-safe" `Quick test_span_records_on_exception;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "merge" `Quick test_merge;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "one vs N domains" `Quick test_sharded_one_vs_n;
          Alcotest.test_case "merge assoc/comm" `Quick test_merge_assoc_comm;
        ] );
      ( "rolling", [ Alcotest.test_case "fake-clock expiry" `Quick test_rolling_expiry ] );
      ( "sinks",
        [
          Alcotest.test_case "golden json lines" `Quick test_golden_json_lines;
          Alcotest.test_case "golden chrome trace" `Quick test_golden_chrome_trace;
          Alcotest.test_case "golden trace lanes" `Quick test_chrome_trace_lanes;
          Alcotest.test_case "trace parses back" `Quick test_chrome_trace_parses_back;
          Alcotest.test_case "render text" `Quick test_render_text;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "accepts" `Quick test_json_parser_accepts;
          Alcotest.test_case "rejects" `Quick test_json_parser_rejects;
        ] );
      ( "bench",
        [ Alcotest.test_case "trajectory roundtrip" `Slow test_bench_trajectory_roundtrip ] );
    ]
