(* Golden tests for lib/analysis: the three passes over the fixture
   mini-tree under fixtures/analysis/, waiver hygiene, and the
   baseline ratchet. Diagnostics are compared byte-for-byte against
   their rendered form so any drift in rules, messages, witnesses or
   ordering shows up as a diff. *)

module A = Analysis
module D = Check.Diagnostic

(* The fixture tree is copied next to the test binary by the
   (source_tree fixtures) dep; anchor there so `dune exec` from the
   repo root resolves the same relative paths as `dune runtest`. *)
let () = Sys.chdir (Filename.dirname Sys.executable_name)

let cfg =
  {
    A.roots = [ "fixtures/analysis/lib" ];
    core_dirs = [ "fixtures/analysis/lib/exact" ];
    serve_roots = [ "fixtures/analysis/lib/srv" ];
    clock_exempt = [];
  }

let render d = Format.asprintf "%a" D.pp d

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* The full expected output of [raw cfg], sorted by (file, line, rule).
   Five files, eleven errors: two float literals and one operator in
   the exact closure, a wall clock + self_init + hash-order trio on
   the serve path, three unguarded accesses to a spawn-reachable ref
   (two of them under waivers that do not count), and the two waiver
   hygiene findings themselves. *)
let golden =
  [
    "error analysis/float-taint @ fixtures/analysis/lib/exact/exact.ml:3: \
     `0.5` inside the dependency closure of the exact core: a float here can \
     leak into \xe2\x84\x9a-exact solvers; use Rat, or add an `(* analysis: \
     float-ok \xe2\x80\x94 <why> *)` waiver at a proven conversion boundary \
     [symbol=0.5; taint_chain=fixtures/analysis/lib/exact/exact.ml]";
    "error analysis/float-taint @ fixtures/analysis/lib/exact/exact.ml:4: \
     `*.` inside the dependency closure of the exact core: a float here can \
     leak into \xe2\x84\x9a-exact solvers; use Rat, or add an `(* analysis: \
     float-ok \xe2\x80\x94 <why> *)` waiver at a proven conversion boundary \
     [symbol=*.; taint_chain=fixtures/analysis/lib/exact/exact.ml]";
    "error analysis/nondeterminism @ fixtures/analysis/lib/srv/srv.ml:4: \
     `Unix.gettimeofday` reads the wall clock on the serve path; route \
     timing through lib/obs's injectable Obs.Clock so tests stay \
     byte-deterministic, or add an `(* analysis: clock-ok \xe2\x80\x94 <why> \
     *)` waiver [symbol=Unix.gettimeofday; \
     serve_chain=fixtures/analysis/lib/srv/srv.ml]";
    "error analysis/nondeterminism @ fixtures/analysis/lib/srv/srv.ml:9: \
     Random.self_init on the serve path destroys seeded determinism and \
     cannot be waived; thread a Prob.Rng stream or an Engine.Seeder split \
     instead [symbol=Random.self_init; \
     serve_chain=fixtures/analysis/lib/srv/srv.ml]";
    "error analysis/hash-order @ fixtures/analysis/lib/srv/srv.ml:13: \
     `Hashtbl.iter` iterates in Hashtbl.hash order on the serve path; sort \
     the results (then waive with `(* analysis: order-insensitive \
     \xe2\x80\x94 <why> *)`) or iterate a sorted key list [symbol=Hashtbl.iter; \
     serve_chain=fixtures/analysis/lib/srv/srv.ml]";
    "error analysis/domain-unsafe @ fixtures/analysis/lib/state/state.ml:10: \
     top-level mutable ref `counter` is used outside any \
     Mutex.protect/lock region in a module reachable from Domain.spawn; \
     guard it, make it Atomic, or add an `(* analysis: domain-local \
     \xe2\x80\x94 <why> *)` waiver [symbol=counter; kind=ref; \
     declared=fixtures/analysis/lib/state/state.ml:5; \
     spawn_chain=fixtures/analysis/lib/worker/worker.ml -> \
     fixtures/analysis/lib/state/state.ml]";
    "error analysis/bare-waiver @ fixtures/analysis/lib/state/state.ml:15: \
     bare `analysis: domain-local` waiver: state the reason the finding is \
     safe (e.g. which domain owns the state) after an em dash \
     [symbol=waiver]";
    "error analysis/domain-unsafe @ fixtures/analysis/lib/state/state.ml:16: \
     top-level mutable ref `counter` is used outside any \
     Mutex.protect/lock region in a module reachable from Domain.spawn; \
     guard it, make it Atomic, or add an `(* analysis: domain-local \
     \xe2\x80\x94 <why> *)` waiver [symbol=counter; kind=ref; \
     declared=fixtures/analysis/lib/state/state.ml:5; \
     spawn_chain=fixtures/analysis/lib/worker/worker.ml -> \
     fixtures/analysis/lib/state/state.ml]";
    "error analysis/unknown-waiver @ \
     fixtures/analysis/lib/state/state.ml:18: unknown analysis waiver tag \
     \"sometag\"; valid tags: domain-local, float-ok, order-insensitive, \
     clock-ok [symbol=waiver]";
    "error analysis/domain-unsafe @ fixtures/analysis/lib/state/state.ml:19: \
     top-level mutable ref `counter` is used outside any \
     Mutex.protect/lock region in a module reachable from Domain.spawn; \
     guard it, make it Atomic, or add an `(* analysis: domain-local \
     \xe2\x80\x94 <why> *)` waiver [symbol=counter; kind=ref; \
     declared=fixtures/analysis/lib/state/state.ml:5; \
     spawn_chain=fixtures/analysis/lib/worker/worker.ml -> \
     fixtures/analysis/lib/state/state.ml]";
    "error analysis/float-taint @ fixtures/analysis/lib/util/util.ml:5: \
     `1.5` inside the dependency closure of the exact core: a float here \
     can leak into \xe2\x84\x9a-exact solvers; use Rat, or add an `(* \
     analysis: float-ok \xe2\x80\x94 <why> *)` waiver at a proven conversion \
     boundary [symbol=1.5; \
     taint_chain=fixtures/analysis/lib/exact/exact.ml -> \
     fixtures/analysis/lib/util/util.ml]";
  ]

let test_golden_tree () =
  let rendered = List.map render (A.raw cfg) in
  Alcotest.(check int) "finding count" (List.length golden)
    (List.length rendered);
  List.iteri
    (fun i (want, got) ->
      Alcotest.(check string) (Printf.sprintf "diagnostic %d" i) want got)
    (List.combine golden rendered)

(* Guarded, correctly waived and clock/order-waived sites must be
   silent: byte-identical output depends on the negatives as much as
   the positives. *)
let test_negatives () =
  let rendered = List.map render (A.raw cfg) in
  let silent_locs =
    [
      "state.ml:8:" (* bump: inside Mutex.protect *);
      "state.ml:13:" (* waived_peek: audited domain-local waiver *);
      "exact.ml:7:" (* boundary: audited float-ok waiver *);
      "srv.ml:7:" (* logged_now: audited clock-ok waiver *);
      "srv.ml:16:" (* sorted: audited order-insensitive waiver *);
      (* the spawn site itself holds no mutable state; it may appear in
         spawn_chain witnesses but never as a location *)
      "@ fixtures/analysis/lib/worker/";
    ]
  in
  List.iter
    (fun loc ->
      List.iter
        (fun line ->
          if contains ~affix:loc line then
            Alcotest.failf "unexpected diagnostic at %s: %s" loc line)
        rendered)
    silent_locs

let test_outcome_counts () =
  let o = A.run cfg in
  Alcotest.(check int) "files" 5 o.A.files;
  Alcotest.(check int) "errors" 11 o.A.errors;
  Alcotest.(check int) "warnings" 0 o.A.warnings;
  Alcotest.(check int) "suppressed" 0 o.A.suppressed

let baseline_of_entries entries =
  let open Check.Json in
  let entry (rule, file, symbol, allowed) =
    Obj
      [
        ("rule", Str rule);
        ("file", Str file);
        ("symbol", Str symbol);
        ("allowed", Int allowed);
      ]
  in
  match
    A.Baseline.of_json
      (Obj [ ("version", Int 1); ("entries", List (List.map entry entries)) ])
  with
  | Ok b -> b
  | Error e -> Alcotest.failf "baseline_of_entries: %s" e

(* A matching entry with a sufficient allowance absorbs its whole
   group and nothing else. *)
let test_baseline_suppression () =
  let baseline =
    baseline_of_entries
      [
        ( "analysis/float-taint",
          "fixtures/analysis/lib/util/util.ml",
          "1.5",
          1 );
      ]
  in
  let o = A.run ~baseline cfg in
  Alcotest.(check int) "errors" 10 o.A.errors;
  Alcotest.(check int) "suppressed" 1 o.A.suppressed;
  Alcotest.(check int) "warnings" 0 o.A.warnings;
  List.iter
    (fun d ->
      let line = render d in
      if contains ~affix:"util.ml" line then
        Alcotest.failf "baselined finding survived: %s" line)
    o.A.diagnostics

(* One finding over the allowance and the whole group surfaces, each
   instance carrying the allowance in its witness. *)
let test_baseline_overflow () =
  let baseline =
    baseline_of_entries
      [
        ( "analysis/domain-unsafe",
          "fixtures/analysis/lib/state/state.ml",
          "counter",
          2 );
      ]
  in
  let o = A.run ~baseline cfg in
  Alcotest.(check int) "errors" 11 o.A.errors;
  Alcotest.(check int) "suppressed" 0 o.A.suppressed;
  let overflowed =
    List.filter
      (fun d -> contains ~affix:"baseline_allowed=2" (render d))
      o.A.diagnostics
  in
  Alcotest.(check int) "instances carrying the allowance" 3
    (List.length overflowed)

(* An entry matching nothing keeps the wall green but warns, so
   `make analyze-baseline` gets re-run to ratchet down. *)
let test_stale_baseline () =
  let baseline =
    baseline_of_entries
      [ ("analysis/float-taint", "lib/gone/gone.ml", "0.25", 4) ]
  in
  let o = A.run ~baseline cfg in
  Alcotest.(check int) "errors" 11 o.A.errors;
  Alcotest.(check int) "warnings" 1 o.A.warnings;
  let stale =
    List.filter
      (fun d -> contains ~affix:"analysis/stale-baseline" (render d))
      o.A.diagnostics
  in
  Alcotest.(check int) "stale warnings" 1 (List.length stale)

(* of_diagnostics over the raw findings must accept exactly the
   current state: applying it back yields a green wall. The JSON
   round-trip must preserve every entry. *)
let test_baseline_roundtrip () =
  let raw = A.raw cfg in
  let baseline = A.Baseline.of_diagnostics raw in
  let o = A.run ~baseline cfg in
  Alcotest.(check int) "errors after self-baseline" 0 o.A.errors;
  Alcotest.(check int) "suppressed" 11 o.A.suppressed;
  Alcotest.(check int) "warnings" 0 o.A.warnings;
  match A.Baseline.of_json (A.Baseline.to_json baseline) with
  | Error e -> Alcotest.failf "round-trip: %s" e
  | Ok b ->
      Alcotest.(check int) "entry count survives round-trip"
        (List.length (A.Baseline.entries baseline))
        (List.length (A.Baseline.entries b));
      List.iter2
        (fun (x : A.Baseline.entry) (y : A.Baseline.entry) ->
          Alcotest.(check string) "rule" x.A.Baseline.brule y.A.Baseline.brule;
          Alcotest.(check string) "file" x.A.Baseline.bfile y.A.Baseline.bfile;
          Alcotest.(check string) "symbol" x.A.Baseline.bsymbol
            y.A.Baseline.bsymbol;
          Alcotest.(check int) "allowed" x.A.Baseline.allowed
            y.A.Baseline.allowed)
        (A.Baseline.entries baseline)
        (A.Baseline.entries b)

(* Lexer spot checks: the classifications the passes lean on. *)
let test_lexer () =
  let module L = A.Lexer in
  let kinds src =
    List.filter_map
      (fun (t : L.token) ->
        match t.L.kind with
        | L.Comment -> None
        | k -> Some (k, t.L.text))
      (Array.to_list (L.tokenize src))
  in
  Alcotest.(check bool) "float literal" true
    (List.mem (L.Float, "1e6") (kinds "let x = 1e6"));
  Alcotest.(check bool) "hex stays int" true
    (List.mem (L.Int, "0x10") (kinds "let x = 0x10"));
  Alcotest.(check bool) "float operator is one token" true
    (List.mem (L.Op, "*.") (kinds "let y = a *. b"));
  let comment_toks =
    List.filter
      (fun (t : L.token) -> t.L.kind = L.Comment)
      (Array.to_list
         (L.tokenize "(* outer (* nested *) still outer *) let z = 1"))
  in
  Alcotest.(check int) "nested comment is one token" 1
    (List.length comment_toks);
  let string_toks = kinds "let s = \"0.5 (* not a comment *)\"" in
  Alcotest.(check bool) "floats inside strings don't tokenize" false
    (List.exists (fun (k, _) -> k = A.Lexer.Float) string_toks)

(* Serve-root completeness over the real tree: every file a dpserved
   byte can pass through must be reachable from the lib-side serve
   roots alone, so wiring a new lib/ directory into the daemon without
   adding it (or a root that reaches it) to
   Analysis.default_config.serve_roots turns this red — the
   determinism pass can never silently lose a subsystem. The build
   context keeps the repo's sources next to the test binary, so the
   graph here is the same one `dplint --analyze` sees. *)
let test_serve_roots_cover_dpserved () =
  let anchor p = "../" ^ p in
  let g = A.Modgraph.build ~roots:[ "../lib"; "../bin" ] in
  Alcotest.(check bool) "lib/session is a serve root" true
    (List.mem "lib/session" A.default_config.serve_roots);
  let lib_roots =
    List.filter (fun r -> r <> "bin/dpserved.ml") A.default_config.serve_roots
  in
  let root_files =
    List.filter
      (fun p -> A.Modgraph.under ~dirs_or_files:(List.map anchor lib_roots) p)
      (A.Modgraph.paths g)
  in
  Alcotest.(check bool) "serve roots resolve to files" true (root_files <> []);
  let covered = List.map fst (A.Modgraph.closure g ~roots:root_files) in
  let daemon = A.Modgraph.closure g ~roots:[ anchor "bin/dpserved.ml" ] in
  (* Vacuity guard: the daemon's closure must actually resolve through
     the facade into the session subsystem, or the subset check below
     proves nothing. *)
  Alcotest.(check bool) "dpserved's closure reaches lib/session" true
    (List.exists
       (fun (file, _) -> A.Modgraph.under ~dirs_or_files:[ anchor "lib/session" ] file)
       daemon);
  List.iter
    (fun (file, chain) ->
      if file <> anchor "bin/dpserved.ml" && not (List.mem file covered) then
        Alcotest.failf
          "%s feeds dpserved (via %s) but no serve root reaches it; add its lib/ \
           directory to Analysis.default_config.serve_roots"
          file
          (String.concat " -> " chain))
    daemon

let () =
  Alcotest.run "analysis"
    [
      ( "fixture-tree",
        [
          Alcotest.test_case "golden diagnostics" `Quick test_golden_tree;
          Alcotest.test_case "negatives stay silent" `Quick test_negatives;
          Alcotest.test_case "outcome counts" `Quick test_outcome_counts;
        ] );
      ( "serve-roots",
        [
          Alcotest.test_case "roots cover dpserved's closure" `Quick
            test_serve_roots_cover_dpserved;
        ] );
      ( "baseline",
        [
          Alcotest.test_case "suppression" `Quick test_baseline_suppression;
          Alcotest.test_case "overflow surfaces group" `Quick
            test_baseline_overflow;
          Alcotest.test_case "stale entry warns" `Quick test_stale_baseline;
          Alcotest.test_case "self-baseline is green" `Quick
            test_baseline_roundtrip;
        ] );
      ("lexer", [ Alcotest.test_case "classification" `Quick test_lexer ]);
    ]
