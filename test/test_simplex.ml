(* Direct tests of the simplex core on standard-form inputs — below
   the modelling facade, exercising phase 1/phase 2, the crash basis,
   both pricing rules, and the float instantiation. *)

module Sx = Lp.Simplex.Exact
module Sf = Lp.Simplex.Floating

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

let solve ?pricing ?crash a b c =
  let to_r = List.map (List.map (fun (x, y) -> q x y)) in
  let a = Array.of_list (List.map Array.of_list (to_r a)) in
  let b = Array.of_list (List.map (fun (x, y) -> q x y) b) in
  let c = Array.of_list (List.map (fun (x, y) -> q x y) c) in
  Sx.solve_standard ?pricing ?crash ~a ~b ~c ()

(* --------------------------------------------------------------- *)
(* Standard-form basics                                             *)
(* --------------------------------------------------------------- *)

let test_already_standard () =
  (* min x0 + x1  s.t.  x0 + x1 = 2  =>  objective 2 *)
  match solve [ [ (1, 1); (1, 1) ] ] [ (2, 1) ] [ (1, 1); (1, 1) ] with
  | Sx.Optimal (obj, x) ->
    Alcotest.check rat "objective" (q 2 1) obj;
    Alcotest.check rat "feasibility" (q 2 1) (Rat.add x.(0) x.(1))
  | _ -> Alcotest.fail "optimal expected"

let test_negative_rhs_normalization () =
  (* -x0 = -3 is x0 = 3 after sign normalization. *)
  match solve [ [ (-1, 1) ] ] [ (-3, 1) ] [ (1, 1) ] with
  | Sx.Optimal (obj, x) ->
    Alcotest.check rat "objective" (q 3 1) obj;
    Alcotest.check rat "x0" (q 3 1) x.(0)
  | _ -> Alcotest.fail "optimal expected"

let test_infeasible_standard () =
  (* x0 = 1 and x0 = 2 simultaneously. *)
  match solve [ [ (1, 1) ]; [ (1, 1) ] ] [ (1, 1); (2, 1) ] [ (0, 1) ] with
  | Sx.Failed Sx.Solver_error.Infeasible -> ()
  | _ -> Alcotest.fail "infeasible expected"

let test_unbounded_standard () =
  (* min -x0 with x0 - x1 = 0: x0 can grow with x1. *)
  match solve [ [ (1, 1); (-1, 1) ] ] [ (0, 1) ] [ (-1, 1); (0, 1) ] with
  | Sx.Failed Sx.Solver_error.Unbounded -> ()
  | _ -> Alcotest.fail "unbounded expected"

let test_zero_rows_zero_cols () =
  (* No constraints at all: min of a nonnegative combination is 0. *)
  let a : Rat.t array array = [||] in
  match Sx.solve_standard ~a ~b:[||] ~c:[| Rat.one; Rat.two |] () with
  | Sx.Optimal (obj, _) -> Alcotest.check rat "zero" Rat.zero obj
  | _ -> Alcotest.fail "optimal expected"

let test_check_feasible () =
  let a = [| [| Rat.one; Rat.one |] |] in
  let b = [| Rat.two |] in
  Alcotest.(check bool) "good point" true (Sx.check_feasible ~a ~b [| Rat.one; Rat.one |]);
  Alcotest.(check bool) "violates equality" false (Sx.check_feasible ~a ~b [| Rat.one; Rat.two |]);
  Alcotest.(check bool) "negative coordinate" false
    (Sx.check_feasible ~a ~b [| Rat.of_ints 5 2; Rat.of_ints (-1) 2 |])

(* --------------------------------------------------------------- *)
(* Pricing / crash configurations agree                             *)
(* --------------------------------------------------------------- *)

let random_standard_form rng nvars nrows =
  (* Random equalities with a known feasible point: pick x* >= 0 and
     set b = A x*, guaranteeing feasibility; objective random. *)
  let a =
    Array.init nrows (fun _ -> Array.init nvars (fun _ -> q (Prob.Rng.int rng 7) 1))
  in
  let xstar = Array.init nvars (fun _ -> q (Prob.Rng.int rng 5) 1) in
  let b =
    Array.map
      (fun row ->
        let acc = ref Rat.zero in
        Array.iteri (fun j v -> acc := Rat.add !acc (Rat.mul v xstar.(j))) row;
        !acc)
      a
  in
  let c = Array.init nvars (fun _ -> q (1 + Prob.Rng.int rng 9) 1) in
  (a, b, c)

let test_configurations_agree_random () =
  let rng = Prob.Rng.of_int 1234 in
  for _ = 1 to 50 do
    let nvars = 2 + Prob.Rng.int rng 4 and nrows = 1 + Prob.Rng.int rng 3 in
    let a, b, c = random_standard_form rng nvars nrows in
    let results =
      [
        Sx.solve_standard ~pricing:Sx.Dantzig_lex ~crash:true ~a ~b ~c ();
        Sx.solve_standard ~pricing:Sx.Dantzig_lex ~crash:false ~a ~b ~c ();
        Sx.solve_standard ~pricing:Sx.Bland ~crash:true ~a ~b ~c ();
        Sx.solve_standard ~pricing:Sx.Bland ~crash:false ~a ~b ~c ();
      ]
    in
    match results with
    | Sx.Optimal (obj0, x0) :: rest ->
      Alcotest.(check bool) "first solution feasible" true (Sx.check_feasible ~a ~b x0);
      List.iter
        (function
          | Sx.Optimal (obj, x) ->
            if not (Rat.equal obj obj0) then
              Alcotest.failf "objectives disagree: %s vs %s" (Rat.to_string obj) (Rat.to_string obj0);
            Alcotest.(check bool) "feasible" true (Sx.check_feasible ~a ~b x)
          | _ -> Alcotest.fail "status disagrees")
        rest
    | Sx.Failed _ :: _ ->
      (* feasible by construction; min of nonneg costs over a polytope
         may still be unbounded only if a recession direction with
         negative cost exists — costs are positive, so bounded. *)
      Alcotest.fail "must be optimal (feasible by construction, positive costs)"
    | [] -> assert false
  done

(* --------------------------------------------------------------- *)
(* Duals                                                            *)
(* --------------------------------------------------------------- *)

(* The pair (primal, dual) forms a complete optimality certificate:
   primal feasible, dual feasible (c_j − y·A_j >= 0), objectives equal. *)
let check_certificate a b c =
  match Sx.solve_standard_with_duals ~a ~b ~c () with
  | Sx.Optimal (obj, x), Some y ->
    Alcotest.(check bool) "primal feasible" true (Sx.check_feasible ~a ~b x);
    (* strong duality *)
    let yb = ref Rat.zero in
    Array.iteri (fun i bi -> yb := Rat.add !yb (Rat.mul y.(i) bi)) b;
    Alcotest.check rat "strong duality" obj !yb;
    (* dual feasibility *)
    for j = 0 to Array.length c - 1 do
      let ya = ref Rat.zero in
      Array.iteri (fun i row -> ya := Rat.add !ya (Rat.mul y.(i) row.(j))) a;
      if Rat.compare (Rat.sub c.(j) !ya) Rat.zero < 0 then
        Alcotest.failf "dual infeasible at column %d" j
    done;
    (* complementary slackness: x_j > 0 => reduced cost 0 *)
    for j = 0 to Array.length c - 1 do
      if Rat.sign x.(j) > 0 then begin
        let ya = ref Rat.zero in
        Array.iteri (fun i row -> ya := Rat.add !ya (Rat.mul y.(i) row.(j))) a;
        Alcotest.check rat (Printf.sprintf "compl. slackness col %d" j) c.(j) !ya
      end
    done
  | Sx.Optimal _, None -> Alcotest.fail "optimal must come with duals"
  | _ -> Alcotest.fail "optimal expected"

let test_duals_textbook () =
  (* min x0 + 2x1  s.t.  x0 + x1 = 3  =>  x = (3,0), y = 1 *)
  let a = [| [| Rat.one; Rat.one |] |] and b = [| q 3 1 |] and c = [| Rat.one; q 2 1 |] in
  (match Sx.solve_standard_with_duals ~a ~b ~c () with
   | Sx.Optimal (obj, _), Some y ->
     Alcotest.check rat "objective" (q 3 1) obj;
     Alcotest.check rat "dual" Rat.one y.(0)
   | _ -> Alcotest.fail "optimal expected");
  check_certificate a b c

let test_duals_negative_rhs () =
  (* Same LP written with a flipped row: the dual must come back in the
     caller's orientation (y = -1 for the negated row). *)
  let a = [| [| Rat.minus_one; Rat.minus_one |] |] and b = [| q (-3) 1 |] in
  let c = [| Rat.one; q 2 1 |] in
  (match Sx.solve_standard_with_duals ~a ~b ~c () with
   | Sx.Optimal (obj, _), Some y ->
     Alcotest.check rat "objective" (q 3 1) obj;
     Alcotest.check rat "dual sign tracks row orientation" Rat.minus_one y.(0)
   | _ -> Alcotest.fail "optimal expected");
  check_certificate a b c

let test_duals_random_certificates () =
  let rng = Prob.Rng.of_int 20260704 in
  for _ = 1 to 40 do
    let nvars = 2 + Prob.Rng.int rng 4 and nrows = 1 + Prob.Rng.int rng 3 in
    let a, b, c = random_standard_form rng nvars nrows in
    check_certificate a b c
  done

let test_duals_with_slack_columns () =
  (* The facade-style shape: equality rows that include explicit slack
     columns (crash basis adopts them). min x0 s.t. x0 - s = 2. *)
  let a = [| [| Rat.one; Rat.minus_one |] |] and b = [| q 2 1 |] in
  let c = [| Rat.one; Rat.zero |] in
  check_certificate a b c

(* --------------------------------------------------------------- *)
(* Float instantiation                                              *)
(* --------------------------------------------------------------- *)

let test_float_standard () =
  let a = [| [| 1.0; 1.0 |] |] and b = [| 2.0 |] and c = [| 1.0; 3.0 |] in
  match Sf.solve_standard ~a ~b ~c () with
  | Sf.Optimal (obj, x) ->
    Alcotest.(check (float 1e-9)) "objective" 2.0 obj;
    Alcotest.(check (float 1e-9)) "x0 carries it" 2.0 x.(0)
  | _ -> Alcotest.fail "optimal expected"

let test_float_matches_exact_random () =
  let rng = Prob.Rng.of_int 777 in
  for _ = 1 to 30 do
    let nvars = 2 + Prob.Rng.int rng 3 and nrows = 1 + Prob.Rng.int rng 2 in
    let a, b, c = random_standard_form rng nvars nrows in
    let fa = Array.map (Array.map Rat.to_float) a in
    let fb = Array.map Rat.to_float b in
    let fc = Array.map Rat.to_float c in
    match (Sx.solve_standard ~a ~b ~c (), Sf.solve_standard ~a:fa ~b:fb ~c:fc ()) with
    | Sx.Optimal (obj, _), Sf.Optimal (fobj, _) ->
      if Float.abs (Rat.to_float obj -. fobj) > 1e-6 then
        Alcotest.failf "mismatch: exact %s float %f" (Rat.to_string obj) fobj
    | _ -> Alcotest.fail "both optimal (feasible by construction)"
  done

let () =
  Alcotest.run "simplex"
    [
      ( "standard-form",
        [
          Alcotest.test_case "equalities" `Quick test_already_standard;
          Alcotest.test_case "rhs normalization" `Quick test_negative_rhs_normalization;
          Alcotest.test_case "infeasible" `Quick test_infeasible_standard;
          Alcotest.test_case "unbounded" `Quick test_unbounded_standard;
          Alcotest.test_case "empty problem" `Quick test_zero_rows_zero_cols;
          Alcotest.test_case "check_feasible" `Quick test_check_feasible;
        ] );
      ( "configurations",
        [ Alcotest.test_case "all agree on random LPs" `Slow test_configurations_agree_random ] );
      ( "duals",
        [
          Alcotest.test_case "textbook" `Quick test_duals_textbook;
          Alcotest.test_case "negative rhs orientation" `Quick test_duals_negative_rhs;
          Alcotest.test_case "random certificates" `Slow test_duals_random_certificates;
          Alcotest.test_case "slack columns" `Quick test_duals_with_slack_columns;
        ] );
      ( "float",
        [
          Alcotest.test_case "float standard form" `Quick test_float_standard;
          Alcotest.test_case "float tracks exact" `Slow test_float_matches_exact_random;
        ] );
    ]
