#!/bin/sh
# End-to-end serving smoke (`make serve-smoke`; @runtest depends on it):
# boot dpserved on an ephemeral port, round-trip a request file through
# `dpopt client`, and require the served bytes to be identical to what
# `dpopt engine` emits for the same file — then SIGTERM the daemon and
# require a graceful drain.
set -eu

DPSERVED=$1
DPOPT=$2

dir=$(mktemp -d)
served_pid=
cleanup() {
  if [ -n "$served_pid" ]; then kill "$served_pid" 2>/dev/null || true; fi
  rm -rf "$dir"
}
trap cleanup EXIT

cat > "$dir/requests" <<'EOF'
# serve-smoke request file: v=1 grammar, ids and per-line seeds.
v=1 id=s0 seed=11 n=4 alpha=1/2 count=3
v=1 id=s1 seed=12 n=5 alpha=1/3 loss=squared count=2
v=1 id=s2 seed=13 n=4 alpha=2/5 side=>=1 count=4
EOF

"$DPSERVED" -w 2 --queue 8 > "$dir/served.log" 2>&1 &
served_pid=$!

port=
i=0
while [ $i -lt 100 ]; do
  port=$(sed -n 's/^dpserved: listening on .*:\([0-9][0-9]*\)$/\1/p' "$dir/served.log")
  if [ -n "$port" ]; then break; fi
  if ! kill -0 "$served_pid" 2>/dev/null; then
    echo "serve-smoke: dpserved died at startup:"
    cat "$dir/served.log"
    exit 1
  fi
  sleep 0.1
  i=$((i + 1))
done
if [ -z "$port" ]; then
  echo "serve-smoke: dpserved never announced a port"
  exit 1
fi

"$DPOPT" client -p "$port" -f "$dir/requests" > "$dir/client.out"
"$DPOPT" engine --json -f "$dir/requests" | sed '$d' > "$dir/engine.out"

if ! cmp -s "$dir/client.out" "$dir/engine.out"; then
  echo "serve-smoke: served bytes differ from dpopt engine bytes:"
  diff "$dir/client.out" "$dir/engine.out" || true
  exit 1
fi

kill -TERM "$served_pid"
if ! wait "$served_pid"; then
  echo "serve-smoke: dpserved exited non-zero after SIGTERM"
  exit 1
fi
served_pid=
if ! grep -q '^dpserved: drained$' "$dir/served.log"; then
  echo "serve-smoke: no graceful drain marker:"
  cat "$dir/served.log"
  exit 1
fi

echo "serve-smoke: clean (3 requests served byte-identical to dpopt engine; drained on SIGTERM)"
