#!/bin/sh
# End-to-end serving smoke (`make serve-smoke`; @runtest depends on it):
# boot dpserved on an ephemeral port, round-trip a request file through
# `dpopt client`, and require the served bytes to be identical to what
# `dpopt engine` emits for the same file — then exercise SIGHUP (a
# documented no-op without --store), SIGTERM-drain the daemon, and run
# the same checks through a warm restart over a --store directory.
set -eu

DPSERVED=$1
DPOPT=$2

dir=$(mktemp -d)
served_pid=
cleanup() {
  if [ -n "$served_pid" ]; then kill "$served_pid" 2>/dev/null || true; fi
  rm -rf "$dir"
}
trap cleanup EXIT

cat > "$dir/requests" <<'EOF'
# serve-smoke request file: v=1 grammar, ids and per-line seeds.
v=1 id=s0 seed=11 n=4 alpha=1/2 count=3
v=1 id=s1 seed=12 n=5 alpha=1/3 loss=squared count=2
v=1 id=s2 seed=13 n=4 alpha=2/5 side=>=1 count=4
EOF

# Wait for the daemon whose log is $1 to announce its port.
discover_port() {
  port=
  i=0
  while [ $i -lt 100 ]; do
    port=$(sed -n 's/^dpserved: listening on .*:\([0-9][0-9]*\)$/\1/p' "$1")
    if [ -n "$port" ]; then return 0; fi
    if ! kill -0 "$served_pid" 2>/dev/null; then
      echo "serve-smoke: dpserved died at startup:"
      cat "$1"
      exit 1
    fi
    sleep 0.1
    i=$((i + 1))
  done
  echo "serve-smoke: dpserved never announced a port"
  exit 1
}

# First contact with a freshly announced listener: bounded retry with
# backoff on connection refusal (the announcement races the kernel
# making the socket connectable under load) — never a fixed sleep,
# never an unbounded wait, and any non-refusal error fails at once.
client_round() {
  # client_round PORT OUTFILE
  attempt=0
  backoff=0.1
  while :; do
    if "$DPOPT" client -p "$1" -f "$dir/requests" > "$2" 2> "$dir/client.err"; then
      return 0
    fi
    if ! grep -qi 'connection refused\|cannot connect' "$dir/client.err"; then
      echo "serve-smoke: dpopt client failed (not a refused connection):"
      cat "$dir/client.err"
      exit 1
    fi
    attempt=$((attempt + 1))
    if [ $attempt -ge 6 ]; then
      echo "serve-smoke: connection still refused after $attempt attempts:"
      cat "$dir/client.err"
      exit 1
    fi
    sleep "$backoff"
    backoff=$(awk "BEGIN { print $backoff * 2 }")
  done
}

require_identical() {
  # require_identical GOT LABEL
  if ! cmp -s "$1" "$dir/engine.out"; then
    echo "serve-smoke: $2: served bytes differ from dpopt engine bytes:"
    diff "$1" "$dir/engine.out" || true
    exit 1
  fi
}

drain() {
  # drain LOGFILE
  kill -TERM "$served_pid"
  if ! wait "$served_pid"; then
    echo "serve-smoke: dpserved exited non-zero after SIGTERM"
    exit 1
  fi
  served_pid=
  if ! grep -q '^dpserved: drained$' "$1"; then
    echo "serve-smoke: no graceful drain marker:"
    cat "$1"
    exit 1
  fi
}

# The reference bytes every serving path must reproduce.
"$DPOPT" engine --json -f "$dir/requests" | sed '$d' > "$dir/engine.out"

# --- Round 1: storeless daemon -------------------------------------

"$DPSERVED" -w 2 --queue 8 > "$dir/served.log" 2>&1 &
served_pid=$!
discover_port "$dir/served.log"

client_round "$port" "$dir/client.out"
require_identical "$dir/client.out" "storeless"

# SIGHUP without --store is a documented no-op: the daemon must
# neither die nor change its served bytes.
kill -HUP "$served_pid"
client_round "$port" "$dir/client2.out"
require_identical "$dir/client2.out" "storeless after SIGHUP"

drain "$dir/served.log"

# --- Round 2: cold boot over an empty store, SIGHUP reopen ----------

"$DPSERVED" -w 2 --queue 8 --store "$dir/store" > "$dir/served2.log" 2>&1 &
served_pid=$!
discover_port "$dir/served2.log"

client_round "$port" "$dir/cold.out"
require_identical "$dir/cold.out" "cold boot with --store"

# SIGHUP with --store reopens the directory (flush + sweep).
kill -HUP "$served_pid"
client_round "$port" "$dir/cold2.out"
require_identical "$dir/cold2.out" "after store reopen"

drain "$dir/served2.log"
if ! grep -q '^dpserved: store reopened' "$dir/served2.log"; then
  echo "serve-smoke: no store-reopen marker after SIGHUP:"
  cat "$dir/served2.log"
  exit 1
fi

entries=$(ls "$dir/store"/*.dpa 2>/dev/null | wc -l)
if [ "$entries" -eq 0 ]; then
  echo "serve-smoke: cold boot wrote no store entries"
  exit 1
fi

# --- Round 3: warm restart, preloaded from the store ----------------

"$DPSERVED" -w 2 --queue 8 --store "$dir/store" --preload > "$dir/served3.log" 2>&1 &
served_pid=$!
discover_port "$dir/served3.log"

client_round "$port" "$dir/warm.out"
require_identical "$dir/warm.out" "warm restart"

drain "$dir/served3.log"
if ! grep -q '^dpserved: preloaded' "$dir/served3.log"; then
  echo "serve-smoke: no preload marker on warm restart:"
  cat "$dir/served3.log"
  exit 1
fi

echo "serve-smoke: clean (3 requests byte-identical to dpopt engine across storeless, SIGHUP, cold-store and warm-restart rounds)"
