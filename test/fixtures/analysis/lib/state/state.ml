(* Fixture: shared mutable state reached from a Domain.spawn site in
   fxworker. One guarded access, one unguarded, one waived, one under
   a bare waiver, one under an unknown tag. *)

let counter = ref 0
let lock = Mutex.create ()

let bump () = Mutex.protect lock (fun () -> incr counter)

let unguarded () = counter := !counter + 1

(* analysis: domain-local — fixture state owned by a single domain. *)
let waived_peek () = !counter

(* analysis: domain-local — x *)
let bare_peek () = !counter

(* analysis: sometag — this tag does not exist in the grammar. *)
let tagged_peek () = !counter
