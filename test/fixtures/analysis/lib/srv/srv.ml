(* Fixture: the serve path of the mini-tree — wall clocks, seeding and
   hash-order iteration, in flagged and waived flavours. *)

let now () = Unix.gettimeofday ()

(* analysis: clock-ok — fixture timestamp feeds a log line only. *)
let logged_now () = Unix.gettimeofday ()

let seed () = Random.self_init ()

let tbl : (string, int) Hashtbl.t = Hashtbl.create 8

let dump () = Hashtbl.iter (fun k _ -> print_endline k) tbl

(* analysis: order-insensitive — the fold result is sorted right away. *)
let sorted () = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare
