(* Fixture: the "exact core" of the mini-tree. *)

let half = 0.5
let scale x = x *. half

(* analysis: float-ok — audited conversion boundary for the fixture. *)
let boundary x = float_of_int x

let use_util x = Fxutil.Util.twice x
