(* Fixture: a dependency of the exact core — floats here are tainted
   through the closure, not directly. *)

let twice x = x + x
let approx = 1.5
