(* Fixture: the spawn site that makes fxstate domain-reachable. *)

let start () = Domain.spawn (fun () -> Fxstate.State.bump ())
