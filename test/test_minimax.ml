(* Tests for the paper's core: loss functions, side information,
   consumers, the two LPs (§2.4.3 optimal interaction, §2.5 optimal
   mechanism), Lemma 5 structure, and Theorem 1(2) universality. *)

module M = Mech.Mechanism
module Geo = Mech.Geometric
module L = Minimax.Loss
module Si = Minimax.Side_info
module C = Minimax.Consumer
module Om = Minimax.Optimal_mechanism
module Oi = Minimax.Optimal_interaction
module U = Minimax.Universal

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal
let half = q 1 2

let consumer ?(n = 3) ?(loss = L.absolute) ?si () =
  let side_info = match si with Some s -> s | None -> Si.full n in
  C.make ~loss ~side_info ()

(* --------------------------------------------------------------- *)
(* Losses                                                           *)
(* --------------------------------------------------------------- *)

let test_loss_values () =
  Alcotest.check rat "absolute" (q 3 1) (L.eval L.absolute 2 5);
  Alcotest.check rat "squared" (q 9 1) (L.eval L.squared 2 5);
  Alcotest.check rat "zero-one hit" Rat.zero (L.eval L.zero_one 4 4);
  Alcotest.check rat "zero-one miss" Rat.one (L.eval L.zero_one 4 5);
  Alcotest.check rat "asymmetric over" (q 6 1) (L.eval (L.asymmetric ~over:(q 2 1) ~under:(q 5 1)) 2 5);
  Alcotest.check rat "asymmetric under" (q 15 1) (L.eval (L.asymmetric ~over:(q 2 1) ~under:(q 5 1)) 5 2);
  Alcotest.check rat "deadzone inside" Rat.zero (L.eval (L.deadzone ~width:2) 3 5);
  Alcotest.check rat "deadzone outside" (q 1 1) (L.eval (L.deadzone ~width:2) 3 6);
  Alcotest.check rat "capped" (q 2 1) (L.eval (L.capped ~cap:2) 0 5);
  Alcotest.check rat "scaled" (q 6 1) (L.eval (L.scale (q 2 1) L.absolute) 2 5)

let test_loss_monotone () =
  List.iter
    (fun l -> Alcotest.(check bool) (L.name l) true (L.is_monotone l ~n:8))
    (L.standard_suite
    @ [ L.asymmetric ~over:Rat.one ~under:(q 3 1); L.deadzone ~width:2; L.capped ~cap:3 ]);
  (* A non-monotone function must be rejected. *)
  let bad = L.make ~name:"bad" (fun i r -> if abs (i - r) = 1 then q 5 1 else Rat.zero) in
  Alcotest.(check bool) "non-monotone detected" false (L.is_monotone bad ~n:4)

let test_loss_proper () =
  List.iter
    (fun l -> Alcotest.(check bool) (L.name l) true (L.is_proper l ~n:6))
    L.standard_suite

(* --------------------------------------------------------------- *)
(* Side information                                                 *)
(* --------------------------------------------------------------- *)

let test_side_info () =
  let s = Si.make ~n:5 [ 3; 1; 3; 5 ] in
  Alcotest.(check (list int)) "sorted dedup" [ 1; 3; 5 ] (Si.members s);
  Alcotest.(check bool) "mem" true (Si.mem s 3);
  Alcotest.(check bool) "not mem" false (Si.mem s 2);
  Alcotest.(check int) "cardinal" 3 (Si.cardinal s);
  Alcotest.(check bool) "full" true (Si.is_full (Si.full 4));
  Alcotest.(check (list int)) "at_least" [ 2; 3; 4 ] (Si.members (Si.at_least ~n:4 2));
  Alcotest.(check (list int)) "at_most" [ 0; 1 ] (Si.members (Si.at_most ~n:4 1));
  Alcotest.(check (list int)) "interval" [ 1; 2 ] (Si.members (Si.interval ~n:4 1 2));
  Alcotest.check_raises "empty" (Invalid_argument "Side_info.make: empty side information")
    (fun () -> ignore (Si.make ~n:3 []));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Side_info.make: member outside {0..n}") (fun () ->
      ignore (Si.make ~n:3 [ 4 ]))

(* --------------------------------------------------------------- *)
(* Optimal mechanism LP (§2.5)                                      *)
(* --------------------------------------------------------------- *)

let test_optimal_is_dp_and_stochastic () =
  List.iter
    (fun alpha ->
      let r = Om.solve ~alpha (consumer ()) in
      (* stochasticity enforced by Mechanism.make; check DP. *)
      Alcotest.(check bool) "dp" true (M.is_dp ~alpha r.Om.mechanism))
    [ q 1 4; half; q 3 4 ]

let test_optimal_beats_geometric () =
  (* The tailored optimum is no worse than the raw geometric. *)
  let c = consumer ~loss:L.squared () in
  let alpha = half in
  let r = Om.solve ~alpha c in
  let g = Geo.matrix ~n:3 ~alpha in
  Alcotest.(check bool) "<= geometric loss" true
    (Rat.compare r.Om.loss (C.minimax_loss c g) <= 0)

let test_optimal_loss_matches_mechanism () =
  let c = consumer ~loss:L.absolute () in
  let r = Om.solve ~alpha:(q 1 4) c in
  Alcotest.check rat "reported = recomputed" r.Om.loss (C.minimax_loss c r.Om.mechanism)

let test_optimal_monotone_in_alpha () =
  (* More privacy (larger α) can only increase optimal loss. *)
  let c = consumer ~loss:L.absolute () in
  let losses =
    List.map (fun alpha -> (Om.solve ~alpha c).Om.loss) [ q 1 10; q 1 4; half; q 3 4; q 9 10 ]
  in
  let rec increasing = function
    | a :: (b :: _ as rest) -> Rat.compare a b <= 0 && increasing rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone" true (increasing losses)

let test_optimal_extreme_privacy () =
  (* As α → 1 mechanisms become constant across rows; for absolute loss
     and S = {0..3} the best constant distribution splits mass between
     1 and 2, with worst-case loss 3/2 (rows 0 and 3 see expected error
     1/2·1 + 1/2·2). At α = 99/100 the optimum is slightly below. *)
  let c = consumer () in
  let r = Om.solve ~alpha:(q 99 100) c in
  Alcotest.(check bool) "loss <= 3/2" true (Rat.compare r.Om.loss (q 3 2) <= 0);
  Alcotest.(check bool) "loss > 1.4" true (Rat.compare r.Om.loss (q 7 5) > 0);
  (* And at α = 1 - ε for tiny ε the LP value approaches 3/2. *)
  let r' = Om.solve ~alpha:(q 999 1000) c in
  Alcotest.(check bool) "monotone toward 3/2" true (Rat.compare r.Om.loss r'.Om.loss <= 0)

let test_optimal_with_singleton_side_info () =
  (* If the consumer knows the answer exactly, the optimal mechanism
     attains zero loss at that row (always answer i, still DP-feasible
     with full-support rows? No — answering i w.p. 1 violates nothing
     at row i since DP constrains *columns* across rows; the LP may
     concentrate row i on output i while other rows pay). *)
  let si = Si.singleton ~n:3 2 in
  let c = consumer ~si () in
  let r = Om.solve ~alpha:half c in
  Alcotest.(check bool) "tiny loss" true (Rat.compare r.Om.loss (q 1 2) < 0)

let test_fast_path_agrees () =
  (* solve_via_interaction is justified by Theorem 1; it must agree
     with the direct LP exactly, on every consumer we throw at it. *)
  List.iter
    (fun (loss, si, alpha) ->
      let c = C.make ~loss ~side_info:si () in
      let direct = Om.solve ~alpha c in
      let fast = Om.solve_via_interaction ~alpha c in
      Alcotest.check rat
        (Printf.sprintf "%s %s" (L.name loss) (Rat.to_string alpha))
        direct.Om.loss fast.Om.loss;
      Alcotest.(check bool) "fast result is DP" true (M.is_dp ~alpha fast.Om.mechanism))
    [
      (L.absolute, Si.full 3, half);
      (L.squared, Si.at_least ~n:4 2, q 1 4);
      (L.zero_one, Si.interval ~n:4 1 3, q 2 3);
    ]

let test_structured_same_loss () =
  let c = consumer ~loss:L.absolute () in
  let plain = Om.solve ~alpha:half c in
  let structured = Om.solve_structured ~alpha:half c in
  Alcotest.check rat "same primary loss" plain.Om.loss structured.Om.loss

let test_lemma5_pattern () =
  (* The structured optimum exhibits the Lemma-5 adjacent-row pattern. *)
  List.iter
    (fun (loss, alpha) ->
      let c = consumer ~loss () in
      let r = Om.solve_structured ~alpha c in
      Alcotest.(check bool)
        (Printf.sprintf "%s alpha=%s" (L.name loss) (Rat.to_string alpha))
        true
        (Om.satisfies_lemma5 ~alpha r.Om.mechanism))
    [ (L.absolute, half); (L.absolute, q 1 4); (L.squared, half); (L.zero_one, half) ]

(* --------------------------------------------------------------- *)
(* Optimal interaction LP (§2.4.3)                                  *)
(* --------------------------------------------------------------- *)

let test_interaction_improves () =
  (* Optimal interaction can only improve on taking the output at face
     value. *)
  let c = consumer ~si:(Si.at_least ~n:3 2) () in
  let g = Geo.matrix ~n:3 ~alpha:half in
  let r = Oi.solve ~deployed:g c in
  Alcotest.(check bool) "no worse than naive" true
    (Rat.compare r.Oi.loss (C.minimax_loss c g) <= 0);
  Alcotest.check rat "reported = recomputed" r.Oi.loss (C.minimax_loss c r.Oi.induced)

let test_interaction_of_identity_is_free () =
  (* Deploying the identity (no privacy): consumer loses nothing. *)
  let c = consumer () in
  let r = Oi.solve ~deployed:(M.identity 3) c in
  Alcotest.check rat "zero loss" Rat.zero r.Oi.loss

let test_interaction_row_stochastic () =
  let c = consumer ~loss:L.squared ~si:(Si.interval ~n:3 1 2) () in
  let g = Geo.matrix ~n:3 ~alpha:(q 1 4) in
  let r = Oi.solve ~deployed:g c in
  Alcotest.(check bool) "T stochastic" true (Linalg.Matrix.Q.is_row_stochastic r.Oi.interaction)

let test_interaction_side_info_clamps () =
  (* Example 1 from the paper: S = {l..n}. The optimal interaction must
     never output below l. *)
  let l = 2 and n = 3 in
  let c = consumer ~si:(Si.at_least ~n l) () in
  let g = Geo.matrix ~n ~alpha:half in
  let r = Oi.solve ~deployed:g c in
  let induced = r.Oi.induced in
  (* Any mass the induced mechanism puts below l on rows in S would be
     wasted; the optimum removes it. *)
  List.iter
    (fun i ->
      for out = 0 to l - 1 do
        Alcotest.check rat (Printf.sprintf "no mass at %d (row %d)" out i) Rat.zero
          (M.prob induced ~input:i ~output:out)
      done)
    [ 2; 3 ]

(* --------------------------------------------------------------- *)
(* Theorem 1(2): universality                                       *)
(* --------------------------------------------------------------- *)

let test_universality_table1 () =
  (* The paper's Table 1 example: n=3, l=|i−r|, S full. *)
  let c = consumer () in
  List.iter
    (fun alpha ->
      let cmp = U.compare_for ~alpha c in
      Alcotest.(check bool) "equal losses" true (U.universality_holds cmp);
      Alcotest.(check bool) "induced DP" true (U.induced_is_private cmp))
    [ q 1 4; half ]

let test_universality_known_values () =
  (* Exact values computed by the exact LP for the Table-1 consumer. *)
  let c = consumer () in
  let cmp = U.compare_for ~alpha:half c in
  Alcotest.check rat "alpha=1/2 loss" (q 28 39) cmp.U.tailored_loss;
  let cmp4 = U.compare_for ~alpha:(q 1 4) c in
  Alcotest.check rat "alpha=1/4 loss" (q 168 415) cmp4.U.tailored_loss

let test_universality_sweep () =
  (* Grid over losses × side infos × α × n — the heart of Theorem 1. *)
  List.iter
    (fun n ->
      List.iter
        (fun alpha ->
          let comparisons =
            U.sweep ~alpha
              ~losses:[ L.absolute; L.zero_one ]
              ~side_infos:(U.default_side_infos n)
              ()
          in
          List.iter
            (fun cmp ->
              if not (U.universality_holds cmp) then
                Alcotest.failf "universality fails: n=%d α=%s consumer=%s (%s vs %s)" n
                  (Rat.to_string alpha)
                  (C.label cmp.U.consumer)
                  (Rat.to_string cmp.U.tailored_loss)
                  (Rat.to_string cmp.U.universal_loss))
            comparisons)
        [ q 1 3; q 2 3 ])
    [ 2; 4 ]

let test_universality_asymmetric_loss () =
  let c = consumer ~loss:(L.asymmetric ~over:Rat.one ~under:(q 3 1)) () in
  let cmp = U.compare_for ~alpha:half c in
  Alcotest.(check bool) "asymmetric loss too" true (U.universality_holds cmp)

let test_interaction_genuinely_randomized () =
  (* §2.7: minimax consumers may need randomized post-processing. For
     the Table-1 consumer the optimal T has a strictly fractional
     row. *)
  let c = consumer () in
  let cmp = U.compare_for ~alpha:(q 1 4) c in
  Alcotest.(check bool) "not deterministic" false
    (Minimax.Bayesian.is_deterministic cmp.U.interaction)

let test_naive_strictly_worse_sometimes () =
  (* With side information, ignoring it must cost something: the naive
     loss is strictly worse than the universal one for a lower-bound
     consumer. *)
  let c = consumer ~si:(Si.at_least ~n:3 2) () in
  let cmp = U.compare_for ~alpha:half c in
  Alcotest.(check bool) "naive > universal" true
    (Rat.compare cmp.U.naive_loss cmp.U.universal_loss > 0)

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let arb_alpha =
  QCheck.make ~print:Rat.to_string
    QCheck.Gen.(map2 (fun a b -> Rat.of_ints a (a + b)) (int_range 1 6) (int_range 1 6))

let arb_side_info_n3 =
  QCheck.make
    ~print:(fun l -> String.concat "," (List.map string_of_int l))
    QCheck.Gen.(
      map
        (fun mask ->
          let l = List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3 ] in
          if l = [] then [ 0 ] else l)
        (int_range 1 15))

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "universality on random consumers (n=3)" 20
      (QCheck.pair arb_alpha arb_side_info_n3)
      (fun (alpha, members) ->
        let si = Si.make ~n:3 members in
        let c = C.make ~loss:L.absolute ~side_info:si () in
        U.universality_holds (U.compare_for ~alpha c));
    prop "tailored optimum <= any fixed DP mechanism's loss" 15
      (QCheck.pair arb_alpha arb_side_info_n3)
      (fun (alpha, members) ->
        let si = Si.make ~n:3 members in
        let c = C.make ~loss:L.absolute ~side_info:si () in
        let opt = Om.solve ~alpha c in
        (* compare against randomized response tuned to alpha *)
        let rr = Mech.Baselines.randomized_response_dp ~n:3 ~alpha in
        Rat.compare opt.Om.loss (C.minimax_loss c rr) <= 0);
    prop "interaction never hurts" 15 (QCheck.pair arb_alpha arb_side_info_n3)
      (fun (alpha, members) ->
        let si = Si.make ~n:3 members in
        let c = C.make ~loss:L.squared ~side_info:si () in
        let g = Geo.matrix ~n:3 ~alpha in
        let r = Oi.solve ~deployed:g c in
        Rat.compare r.Oi.loss (C.minimax_loss c g) <= 0);
    prop "smaller side info never increases optimal loss" 10 arb_alpha (fun alpha ->
        let big = C.make ~loss:L.absolute ~side_info:(Si.full 3) () in
        let small = C.make ~loss:L.absolute ~side_info:(Si.interval ~n:3 1 2) () in
        Rat.compare (Om.solve ~alpha small).Om.loss (Om.solve ~alpha big).Om.loss <= 0);
  ]

let () =
  Alcotest.run "minimax"
    [
      ( "losses",
        [
          Alcotest.test_case "values" `Quick test_loss_values;
          Alcotest.test_case "monotonicity" `Quick test_loss_monotone;
          Alcotest.test_case "properness" `Quick test_loss_proper;
        ] );
      ("side-info", [ Alcotest.test_case "constructors" `Quick test_side_info ]);
      ( "optimal-mechanism",
        [
          Alcotest.test_case "dp and stochastic" `Quick test_optimal_is_dp_and_stochastic;
          Alcotest.test_case "beats raw geometric" `Quick test_optimal_beats_geometric;
          Alcotest.test_case "loss consistency" `Quick test_optimal_loss_matches_mechanism;
          Alcotest.test_case "monotone in alpha" `Slow test_optimal_monotone_in_alpha;
          Alcotest.test_case "extreme privacy" `Quick test_optimal_extreme_privacy;
          Alcotest.test_case "singleton side info" `Quick test_optimal_with_singleton_side_info;
          Alcotest.test_case "fast path agrees (Thm 1)" `Quick test_fast_path_agrees;
          Alcotest.test_case "structured same loss" `Quick test_structured_same_loss;
          Alcotest.test_case "Lemma 5 pattern" `Slow test_lemma5_pattern;
        ] );
      ( "optimal-interaction",
        [
          Alcotest.test_case "improves on naive" `Quick test_interaction_improves;
          Alcotest.test_case "identity deployment" `Quick test_interaction_of_identity_is_free;
          Alcotest.test_case "T stochastic" `Quick test_interaction_row_stochastic;
          Alcotest.test_case "side info clamps" `Quick test_interaction_side_info_clamps;
        ] );
      ( "universality",
        [
          Alcotest.test_case "Table 1 consumer" `Quick test_universality_table1;
          Alcotest.test_case "known exact losses" `Quick test_universality_known_values;
          Alcotest.test_case "sweep" `Slow test_universality_sweep;
          Alcotest.test_case "asymmetric loss" `Quick test_universality_asymmetric_loss;
          Alcotest.test_case "randomized interaction" `Quick test_interaction_genuinely_randomized;
          Alcotest.test_case "naive strictly worse" `Quick test_naive_strictly_worse_sometimes;
        ] );
      ("properties", properties);
    ]
