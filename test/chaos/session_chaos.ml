(* Session chaos harness (`dune build @session-chaos`, or `make
   session-chaos`; @chaos depends on it).

   The stateful-service contract under attack: whatever happens to the
   session plane — tripped epoch draws, tripped checkpoint writes, a
   torn checkpoint frame, a subscriber running out of budget — the
   rungs served to surviving subscribers are byte-identical to the
   undisturbed run's, because each epoch is the pure function
   (seed, group key, epoch index) and a fault either refuses the whole
   epoch cleanly or degrades durability without touching the draw.

   Deterministic throughout: fixed seed, exact hit counts, a fixed
   subscriber ladder. *)

let q = Rat.of_ints

module S = Session
module ML = Minimax.Multi_level
module F = Resilience.Fault

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" label
  end

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

let seed = 11
let n = 5
let input = 2
let levels = [ q 1 4; q 1 2; q 3 4 ]
let group = S.group_key ~n ~input
let epochs = 6

let fresh ?checkpoint () =
  match S.create ~seed ?checkpoint () with
  | Ok t -> t
  | Error m -> failwith ("session-chaos create: " ^ m)

let subscribe_ladder ?floor_for t =
  List.iteri
    (fun i level ->
      let sub = Printf.sprintf "sub%d" i in
      let budget = if floor_for = Some i then Some (q 1 4) else None in
      match S.subscribe t ~sub ~n ~input ~level ?budget () with
      | Ok _ -> ()
      | Error m -> failwith ("session-chaos subscribe: " ^ m))
    levels

let release t =
  match S.release t ~n ~input with
  | Ok r -> Some r
  | Error (S.Faulted _) -> None
  | Error (S.Rejected m) -> failwith ("session-chaos release rejected: " ^ m)

let with_file f =
  let path = Filename.temp_file "dpsession-chaos" ".frame" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* The reference bytes: the epoch-e draw replayed straight from the
   contract stream, outside any session instance. *)
let contract_draw =
  let plan = ML.make_plan ~n ~levels in
  fun epoch -> ML.release plan ~true_result:input (S.epoch_stream ~seed ~group ~epoch)

let baseline = Array.init epochs contract_draw

(* ------------------------------------------------------------------ *)
(* Scenarios                                                          *)
(* ------------------------------------------------------------------ *)

(* 1. No sabotage: every epoch a fresh session serves is the contract
   draw, byte for byte. *)
let clean_run () =
  let t = fresh () in
  subscribe_ladder t;
  for e = 0 to epochs - 1 do
    match release t with
    | None -> check "clean run: release refused without a fault" false
    | Some r ->
      check
        (Printf.sprintf "clean run: epoch %d byte-identical to the contract draw" e)
        (r.S.r_values = baseline.(e))
  done

(* 2. session.epoch trips once mid-sequence: that release refuses
   cleanly, nothing is charged, and every surviving epoch is
   byte-identical to the undisturbed sequence — the chain did not
   advance under the fault. *)
let epoch_trip_once () =
  let t = fresh () in
  subscribe_ladder t;
  let got = ref [] in
  F.with_plan (F.plan [ { F.site = "session.epoch"; hits = 3; action = F.Trip } ])
    (fun () ->
      for _ = 0 to epochs do
        match release t with None -> () | Some r -> got := r.S.r_values :: !got
      done);
  let got = Array.of_list (List.rev !got) in
  check "epoch trip once: one epoch lost, the rest served"
    (Array.length got = epochs);
  check "epoch trip once: survivors byte-identical to the undisturbed run"
    (got = baseline);
  match S.ledger t ~sub:"sub1" ~n ~input with
  | Error m -> failwith ("session-chaos ledger: " ^ m)
  | Ok v ->
    check "epoch trip once: the refused epoch charged nothing"
      (Rat.equal v.S.v_spent (q 1 64))

(* 3. session.epoch trips on every call, then the plan clears: the
   blackout refuses everything without shifting the chain, and the
   first release afterwards serves epoch 0's exact bytes. *)
let epoch_blackout_then_recover () =
  let t = fresh () in
  subscribe_ladder t;
  F.with_plan (F.plan [ { F.site = "session.epoch"; hits = 0; action = F.Trip } ])
    (fun () ->
      for _ = 1 to 4 do
        match release t with
        | None -> ()
        | Some _ -> check "epoch blackout: released through the fault" false
      done);
  (match release t with
  | None -> check "epoch blackout: recovery refused" false
  | Some r ->
    check "epoch blackout: epoch 0 served intact after recovery"
      (r.S.r_epoch = 0 && r.S.r_values = baseline.(0)))

(* 4. session.ledger trips on every checkpoint write: durability
   degrades — no frame ever lands — but every served epoch is still
   byte-identical to the undisturbed run. *)
let ledger_blackout () =
  with_file (fun path ->
      let t = fresh ~checkpoint:path () in
      F.with_plan (F.plan [ { F.site = "session.ledger"; hits = 0; action = F.Trip } ])
        (fun () ->
          subscribe_ladder t;
          for e = 0 to epochs - 1 do
            match release t with
            | None -> check "ledger blackout: release refused" false
            | Some r ->
              check
                (Printf.sprintf "ledger blackout: epoch %d byte-identical" e)
                (r.S.r_values = baseline.(e))
          done);
      check "ledger blackout: no checkpoint frame landed" (not (Sys.file_exists path)))

(* 5. session.ledger trips once, later checkpoints heal: a warm
   restart from the healed frame resumes the ledgers exactly — zero
   double-spend — and the next epoch continues the undisturbed
   sequence byte for byte. *)
let ledger_trip_then_heal () =
  with_file (fun path ->
      let t = fresh ~checkpoint:path () in
      subscribe_ladder t;
      F.with_plan (F.plan [ { F.site = "session.ledger"; hits = 1; action = F.Trip } ])
        (fun () ->
          for _ = 1 to 2 do
            match release t with
            | None -> check "ledger heal: release refused" false
            | Some _ -> ()
          done);
      check "ledger heal: a later checkpoint landed" (Sys.file_exists path);
      let t2 = fresh ~checkpoint:path () in
      (match S.ledger t2 ~sub:"sub1" ~n ~input with
      | Error m -> failwith ("session-chaos ledger: " ^ m)
      | Ok v ->
        check "ledger heal: restart resumes the exact spend" (Rat.equal v.S.v_spent (q 1 4));
        check "ledger heal: restart resumes the epoch counter" (v.S.v_epoch = 2));
      subscribe_ladder t2;
      match release t2 with
      | None -> check "ledger heal: post-restart release refused" false
      | Some r ->
        check "ledger heal: epoch 2 continues the undisturbed sequence"
          (r.S.r_epoch = 2 && r.S.r_values = baseline.(2)))

(* 6. Torn checkpoint: a frame truncated mid-write is a refusal to
   start, never a silently reset ledger; deleting it starts fresh with
   epoch 0's exact bytes. *)
let torn_checkpoint () =
  with_file (fun path ->
      let t = fresh ~checkpoint:path () in
      subscribe_ladder t;
      ignore (release t);
      let bytes = In_channel.with_open_bin path In_channel.input_all in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub bytes 0 (String.length bytes / 2)));
      (match S.create ~seed ~checkpoint:path () with
      | Error _ -> ()
      | Ok _ -> check "torn checkpoint: a torn frame must refuse to start" false);
      Sys.remove path;
      let t2 = fresh ~checkpoint:path () in
      subscribe_ladder t2;
      match release t2 with
      | None -> check "torn checkpoint: fresh start refused" false
      | Some r ->
        check "torn checkpoint: fresh start serves epoch 0's exact bytes"
          (r.S.r_values = baseline.(0)))

(* 7. Budget exhaustion is not a fault: the refused subscriber stays
   on the ladder, so the survivors' rungs remain byte-identical to the
   undisturbed run while its own refusals are typed and charge
   nothing. *)
let budget_exhaustion_preserves_survivors () =
  let t = fresh () in
  subscribe_ladder ~floor_for:1 t;
  for e = 0 to epochs - 1 do
    match release t with
    | None -> check "budget: release refused" false
    | Some r ->
      check
        (Printf.sprintf "budget: epoch %d byte-identical for survivors" e)
        (r.S.r_values = baseline.(e));
      let refused =
        List.exists
          (fun (_, o) -> match o with S.Refused _ -> true | S.Served _ -> false)
          r.S.r_outcomes
      in
      check
        (Printf.sprintf "budget: epoch %d refusal exactly when over the floor" e)
        (refused = (e >= 2))
  done;
  match S.ledger t ~sub:"sub1" ~n ~input with
  | Error m -> failwith ("session-chaos ledger: " ^ m)
  | Ok v ->
    check "budget: refusals charged nothing" (Rat.equal v.S.v_spent (q 1 4));
    check "budget: refusal count exact" (v.S.v_refusals = epochs - 2)

(* ------------------------------------------------------------------ *)

let scenarios =
  [
    ("clean-run", clean_run);
    ("epoch-trip-once", epoch_trip_once);
    ("epoch-blackout-then-recover", epoch_blackout_then_recover);
    ("ledger-blackout", ledger_blackout);
    ("ledger-trip-then-heal", ledger_trip_then_heal);
    ("torn-checkpoint", torn_checkpoint);
    ("budget-exhaustion", budget_exhaustion_preserves_survivors);
  ]

let () =
  List.iter (fun (_, f) -> f ()) scenarios;
  if !failures > 0 then begin
    Printf.printf "session-chaos: %d failure(s) across %d scenarios\n" !failures
      (List.length scenarios);
    exit 1
  end;
  Printf.printf
    "session-chaos: clean (%d scenarios, every surviving epoch byte-identical to the \
     undisturbed sequence)\n"
    (List.length scenarios)
