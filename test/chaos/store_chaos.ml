(* Store chaos harness (`dune build @store-chaos`, or `make
   store-chaos`; @chaos depends on it).

   The persistence contract under attack: whatever happens to the
   store — tripped reads, tripped writes, tripped verification, torn
   writes, bit flips, foreign files, frames from the future, a writer
   killed mid-write — the engine serves bytes that are identical to a
   storeless run's, and every injury is visible as the right typed
   refusal in the store counters rather than as a crash or a wrong
   sample.

   Every scenario runs the same request batch three ways:

   - a storeless baseline (the reference bytes);
   - a cold run over an empty store (populates entries, must match);
   - a warm run over the (possibly sabotaged) store (must match).

   Deterministic throughout: fixed seed, exact hit counts, corruption
   applied byte-for-byte at fixed offsets. *)

let q = Rat.of_ints

module F = Resilience.Fault
module En = Engine
module Rq = Engine.Request
module St = Store

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" label
  end

(* ------------------------------------------------------------------ *)
(* Fixtures                                                           *)
(* ------------------------------------------------------------------ *)

let requests =
  let mk input count n alpha loss =
    match Rq.make ~input ~count ~n ~alpha ~loss ~side:Rq.Full () with
    | Ok r -> r
    | Error m -> failwith ("store-chaos request: " ^ m)
  in
  [| mk 1 40 4 (q 1 2) Rq.Absolute; mk 2 30 5 (q 1 3) Rq.Zero_one |]

let with_dir f =
  let dir = Filename.temp_file "dpstore-chaos" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let open_store dir =
  match St.open_dir dir with
  | Ok s -> s
  | Error e -> failwith ("store-chaos open_dir: " ^ St.error_to_string e)

let samples rs = Array.map (fun (r : En.response) -> r.En.samples) rs

(* One engine lifetime over [tier]: run the batch, return (samples,
   responses). A fresh engine per call keeps the memory cache cold so
   the store tier actually answers the warm runs. *)
let run ?plan ?tier () =
  En.with_engine ~domains:1 ?tier (fun e ->
      let go () = En.run_batch ~seed:7 e requests in
      let rs = match plan with None -> go () | Some p -> F.with_plan p go in
      (samples rs, rs))

let baseline = fst (run ())

(* Populate [dir] with a clean cold run and assert it matched. *)
let populate label dir =
  let s = open_store dir in
  let got, _ = run ~tier:(St.tier s) () in
  check (label ^ ": cold run byte-identical to storeless baseline") (got = baseline);
  check (label ^ ": cold run persisted every entry")
    ((St.stats s).St.writes = Array.length requests);
  s

(* A warm run over [dir] after [sabotage] ran against the populated
   store; asserts byte identity and lets the scenario inspect the
   warm store's counters. *)
let warm_after label ?plan ~sabotage inspect =
  with_dir (fun dir ->
      let cold = populate label dir in
      sabotage cold dir;
      let s = open_store dir in
      let got, rs = match plan with
        | None -> run ~tier:(St.tier s) ()
        | Some p -> run ~plan:p ~tier:(St.tier s) ()
      in
      check (label ^ ": warm run byte-identical to storeless baseline") (got = baseline);
      inspect s rs)

let entry_paths s =
  match St.keys s with
  | Ok ks -> List.map (fun k -> St.entry_path s ~key:k) ks
  | Error e -> failwith ("store-chaos keys: " ^ St.error_to_string e)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

let store_hits rs =
  Array.fold_left (fun n (r : En.response) -> if r.En.store_hit then n + 1 else n) 0 rs

(* ------------------------------------------------------------------ *)
(* Scenarios                                                          *)
(* ------------------------------------------------------------------ *)

(* 1. No sabotage: the warm restart serves every request from disk. *)
let clean_warm_restart () =
  warm_after "clean warm restart"
    ~sabotage:(fun _ _ -> ())
    (fun s rs ->
      check "clean warm restart: every request was a store hit"
        (store_hits rs = Array.length requests);
      check "clean warm restart: no compiles written back" ((St.stats s).St.writes = 0))

(* 2/3/4. Fault-site trips: read, write and verify each degrade to the
   storeless path without surfacing. *)
let read_trip () =
  List.iter
    (fun (label, hits, expect_min_trips) ->
      let p = F.plan [ { F.site = "store.read"; hits; action = F.Trip } ] in
      warm_after label ~plan:p
        ~sabotage:(fun _ _ -> ())
        (fun s _ ->
          check (label ^ ": trip fired") (F.trips p >= expect_min_trips);
          check (label ^ ": tripped probes counted corrupt")
            ((St.stats s).St.corrupt >= expect_min_trips)))
    [
      ("store.read trip, first probe", 1, 1);
      ("store.read trip, every probe", 0, Array.length requests);
    ]

let write_trip () =
  with_dir (fun dir ->
      let s = open_store dir in
      let p = F.plan [ { F.site = "store.write"; hits = 0; action = F.Trip } ] in
      let got, _ = run ~plan:p ~tier:(St.tier s) () in
      check "store.write trip: cold run byte-identical to storeless baseline"
        (got = baseline);
      check "store.write trip: nothing persisted" (entry_paths s = []);
      check "store.write trip: no write counted" ((St.stats s).St.writes = 0))

let verify_trip () =
  let p = F.plan [ { F.site = "store.verify"; hits = 0; action = F.Trip } ] in
  warm_after "store.verify trip" ~plan:p
    ~sabotage:(fun _ _ -> ())
    (fun s _ ->
      check "store.verify trip: every refusal counted"
        ((St.stats s).St.corrupt = Array.length requests);
      check "store.verify trip: recompiles healed the store"
        ((St.stats s).St.writes = Array.length requests))

(* 5. Torn write: an entry truncated mid-frame reads as Corrupt, the
   request recompiles, and the write-back heals the entry. *)
let torn_write () =
  warm_after "torn write"
    ~sabotage:(fun cold _ ->
      let path = List.hd (entry_paths cold) in
      let bytes = read_file path in
      write_file path (String.sub bytes 0 (String.length bytes / 2)))
    (fun s rs ->
      check "torn write: exactly one refusal" ((St.stats s).St.corrupt = 1);
      check "torn write: the intact entry still hit" (store_hits rs = 1);
      check "torn write: write-back healed the torn entry" ((St.stats s).St.writes = 1))

(* 6. Bit flip: one flipped payload byte breaks the checksum; same
   degrade-and-heal shape as a torn write. *)
let bit_flip () =
  warm_after "bit flip"
    ~sabotage:(fun cold _ ->
      let path = List.hd (entry_paths cold) in
      let bytes = Bytes.of_string (read_file path) in
      let i = Bytes.length bytes / 2 in
      Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor 0x40));
      write_file path (Bytes.to_string bytes))
    (fun s rs ->
      check "bit flip: exactly one refusal" ((St.stats s).St.corrupt = 1);
      check "bit flip: the intact entry still hit" (store_hits rs = 1);
      check "bit flip: write-back healed the flipped entry" ((St.stats s).St.writes = 1))

(* 7. Foreign file: a non-dpstore file squatting on an entry path is
   refused (Bad_magic under the hood) and overwritten by the heal. *)
let foreign_file () =
  warm_after "foreign file"
    ~sabotage:(fun cold _ -> write_file (List.hd (entry_paths cold)) "NOPE: not a frame\n")
    (fun s rs ->
      check "foreign file: exactly one refusal" ((St.stats s).St.corrupt = 1);
      check "foreign file: the intact entry still hit" (store_hits rs = 1);
      check "foreign file: write-back reclaimed the path" ((St.stats s).St.writes = 1))

(* 8. Frame from the future: bump the version field (and nothing
   else); the entry must refuse as stale BEFORE any checksum logic
   can call it corrupt, then heal. *)
let future_version () =
  warm_after "future version"
    ~sabotage:(fun cold _ ->
      let path = List.hd (entry_paths cold) in
      let bytes = Bytes.of_string (read_file path) in
      (* Version lives at offset 4, u32 big-endian, after "DPST". *)
      Bytes.set bytes 7 (Char.chr (St.format_version + 1));
      write_file path (Bytes.to_string bytes))
    (fun s rs ->
      check "future version: exactly one refusal" ((St.stats s).St.corrupt = 1);
      check "future version: the intact entry still hit" (store_hits rs = 1);
      check "future version: write-back re-framed the entry" ((St.stats s).St.writes = 1))

(* 9. Mid-write kill: a writer that died between temp-file creation
   and rename leaves only a temp file; reopening sweeps it and no
   half-entry is ever visible to a probe. *)
let mid_write_kill () =
  warm_after "mid-write kill"
    ~sabotage:(fun _ dir ->
      write_file (Filename.concat dir "deadbeef.dpa.tmp.9999" ) "half a frame")
    (fun s rs ->
      check "mid-write kill: stale temp swept on reopen"
        (not (Sys.file_exists (Filename.concat (St.dir s) "deadbeef.dpa.tmp.9999")));
      check "mid-write kill: entries unharmed" (store_hits rs = Array.length requests);
      check "mid-write kill: no refusals" ((St.stats s).St.corrupt = 0))

(* ------------------------------------------------------------------ *)

let scenarios =
  [
    ("clean-warm-restart", clean_warm_restart);
    ("read-trip", read_trip);
    ("write-trip", write_trip);
    ("verify-trip", verify_trip);
    ("torn-write", torn_write);
    ("bit-flip", bit_flip);
    ("foreign-file", foreign_file);
    ("future-version", future_version);
    ("mid-write-kill", mid_write_kill);
  ]

let () =
  List.iter (fun (_, f) -> f ()) scenarios;
  if !failures > 0 then begin
    Printf.printf "store-chaos: %d failure(s) across %d scenarios\n" !failures
      (List.length scenarios);
    exit 1
  end;
  Printf.printf
    "store-chaos: clean (%d scenarios, every run byte-identical to the storeless \
     baseline)\n"
    (List.length scenarios)
