(* Chaos harness (`dune build @chaos`, or `make chaos`).

   Sweeps the deterministic fault matrix — every registered trigger
   site crossed with every action and both hit disciplines (first hit,
   every hit) — and asserts the system's two resilience contracts:

   - solver sites ("simplex.phase1"/"simplex.phase2"): whatever fault
     fires inside the LP, [Minimax.Serve.serve] still returns a
     mechanism for each example consumer, its provenance names the
     ladder rung taken, and [Check.Invariants] independently certifies
     α-DP (plus Theorem-2 derivability on geometric rungs);

   - non-solver sites ("matrix.inverse", "mech.factor",
     "multilevel.stage", "dpdb.csv.row"): the injected fault surfaces
     as a clean [Fault.Injected] — and the identical call succeeds once
     the plan is gone, so a trip corrupts no state.

   Everything here is deterministic: no clocks, no randomness, exact
   hit counts — the same matrix trips the same faults every run. *)

let q = Rat.of_ints

module B = Resilience.Budget
module F = Resilience.Fault
module E = Resilience.Solver_error
module S = Minimax.Serve
module I = Check.Invariants

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" label
  end

(* ------------------------------------------------------------------ *)
(* Solver sites: the serve ladder must absorb every fault.            *)
(* ------------------------------------------------------------------ *)

let solver_sites = [ "simplex.phase1"; "simplex.phase2" ]

let actions =
  [
    ("trip", F.Trip);
    ("exhaust-deadline", F.Exhaust E.Deadline);
    ("exhaust-pivots", F.Exhaust E.Pivots);
    ("exhaust-bits", F.Exhaust E.Bits);
    ("exhaust-injected", F.Exhaust E.Injected);
    ("blowup-bits", F.Blowup_bits 4096);
  ]

let consumers =
  [
    ("absolute", Minimax.Loss.absolute);
    ("zero-one", Minimax.Loss.zero_one);
  ]

let alpha = q 1 2
let n = 4

let certified_serve label plan ~budget =
  let consumer loss = Minimax.Consumer.make ~loss ~side_info:(Minimax.Side_info.full n) () in
  List.iter
    (fun (lname, loss) ->
      let label = Printf.sprintf "%s consumer=%s" label lname in
      match F.with_plan plan (fun () -> S.serve ?budget ~alpha (consumer loss)) with
      | exception e ->
        check (label ^ ": serve raised " ^ Printexc.to_string e) false
      | s ->
        let m = Mech.Mechanism.matrix s.S.mechanism in
        let rung = s.S.provenance.S.rung in
        check (label ^ ": provenance names a rung") (S.rung_to_string rung <> "");
        check (label ^ ": alpha-dp certified") (I.passed (I.alpha_dp ~alpha m));
        if rung <> S.Tailored then
          check (label ^ ": derivability certified") (I.passed (I.derivability ~alpha m)))
    consumers

let solver_matrix () =
  List.iter
    (fun site ->
      List.iter
        (fun (aname, action) ->
          List.iter
            (fun hits ->
              let label = Printf.sprintf "site=%s action=%s hits=%d" site aname hits in
              let plan = F.plan [ { F.site; hits; action } ] in
              (* Blowup_bits only matters against a bit ceiling. *)
              let budget =
                match action with
                | F.Blowup_bits _ -> Some (B.make ~max_bits:256 ())
                | _ -> None
              in
              certified_serve label plan ~budget)
            [ 1; 0 ])
        actions)
    solver_sites;
  (* The acceptance scenario: the LP budget exhausts at EVERY simplex
     site on every hit — no LP can run, the ladder must bottom out on
     raw G(n,α) and still certify. *)
  let plan =
    F.plan
      (List.map (fun site -> { F.site; hits = 0; action = F.Exhaust E.Pivots }) solver_sites)
  in
  certified_serve "all-sites-exhausted" plan ~budget:None

(* ------------------------------------------------------------------ *)
(* Non-solver sites: clean Injected, no state corruption.             *)
(* ------------------------------------------------------------------ *)

let trip_sites =
  [
    ( "matrix.inverse",
      fun () ->
        ignore
          (Linalg.Matrix.Q.inverse
             (Array.init 3 (fun i -> Array.init 3 (fun j -> if i = j then q 2 1 else Rat.zero)))) );
    ( "mech.factor",
      fun () -> ignore (Mech.Derivability.derive ~alpha (Mech.Geometric.matrix ~n ~alpha)) );
    ( "multilevel.stage",
      fun () -> ignore (Minimax.Multi_level.make_plan ~n ~levels:[ q 1 3; q 1 2 ]) );
    ( "dpdb.csv.row", fun () -> ignore (Dpdb.Csv.of_string "age:int\n30\n41\n") );
  ]

let trip_matrix () =
  List.iter
    (fun (site, workload) ->
      let plan = F.plan [ { F.site; hits = 1; action = F.Trip } ] in
      (match F.with_plan plan workload with
       | exception F.Injected { site = s; hit = 1 } ->
         check (site ^ ": Injected names the site") (s = site)
       | exception e ->
         check (site ^ ": clean Injected, got " ^ Printexc.to_string e) false
       | () -> check (site ^ ": trip fired") false);
      check (site ^ ": exactly one trip recorded") (F.trips plan = 1);
      (* The same workload with no plan installed must succeed: a trip
         leaves no residue behind. *)
      match workload () with
      | () -> ()
      | exception e -> check (site ^ ": retry clean, got " ^ Printexc.to_string e) false)
    trip_sites

(* ------------------------------------------------------------------ *)

let () =
  solver_matrix ();
  trip_matrix ();
  let scenarios =
    (List.length solver_sites * List.length actions * 2 + 1) * List.length consumers
    + List.length trip_sites
  in
  if !failures > 0 then begin
    Printf.printf "chaos: %d failure(s) across %d scenarios\n" !failures scenarios;
    exit 1
  end;
  Printf.printf "chaos: clean (%d scenarios: %d solver-site plans x %d consumers, %d trip sites)\n"
    scenarios
    (List.length solver_sites * List.length actions * 2 + 1)
    (List.length consumers) (List.length trip_sites)
