(* Chaos harness (`dune build @chaos`, or `make chaos`).

   Sweeps the deterministic fault matrix — every registered trigger
   site crossed with every action and both hit disciplines (first hit,
   every hit) — and asserts the system's two resilience contracts:

   - solver sites ("simplex.phase1"/"simplex.phase2"): whatever fault
     fires inside the LP, [Minimax.Serve.serve] still returns a
     mechanism for each example consumer, its provenance names the
     ladder rung taken, and [Check.Invariants] independently certifies
     α-DP (plus Theorem-2 derivability on geometric rungs);

   - non-solver sites ("matrix.inverse", "mech.factor",
     "multilevel.stage", "dpdb.csv.row"): the injected fault surfaces
     as a clean [Fault.Injected] — and the identical call succeeds once
     the plan is gone, so a trip corrupts no state;

   - engine sites ("engine.cache", "engine.worker"): a faulted batch
     is absorbed, not surfaced — the cache trip degrades to cacheless
     compiles and the worker trip to inline retries — and the served
     samples are byte-identical to a clean run's, with every artifact
     that did enter the cache still carrying its certificates.

   Everything here is deterministic: no clocks, no randomness, exact
   hit counts — the same matrix trips the same faults every run. *)

let q = Rat.of_ints

module B = Resilience.Budget
module F = Resilience.Fault
module E = Resilience.Solver_error
module S = Minimax.Serve
module I = Check.Invariants

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.printf "FAIL %s\n" label
  end

(* ------------------------------------------------------------------ *)
(* Solver sites: the serve ladder must absorb every fault.            *)
(* ------------------------------------------------------------------ *)

let solver_sites = [ "simplex.phase1"; "simplex.phase2" ]

let actions =
  [
    ("trip", F.Trip);
    ("exhaust-deadline", F.Exhaust E.Deadline);
    ("exhaust-pivots", F.Exhaust E.Pivots);
    ("exhaust-bits", F.Exhaust E.Bits);
    ("exhaust-injected", F.Exhaust E.Injected);
    ("blowup-bits", F.Blowup_bits 4096);
  ]

let consumers =
  [
    ("absolute", Minimax.Loss.absolute);
    ("zero-one", Minimax.Loss.zero_one);
  ]

let alpha = q 1 2
let n = 4

let certified_serve label plan ~budget =
  let consumer loss = Minimax.Consumer.make ~loss ~side_info:(Minimax.Side_info.full n) () in
  List.iter
    (fun (lname, loss) ->
      let label = Printf.sprintf "%s consumer=%s" label lname in
      match F.with_plan plan (fun () -> S.serve ?budget ~alpha (consumer loss)) with
      | exception e ->
        check (label ^ ": serve raised " ^ Printexc.to_string e) false
      | s ->
        let m = Mech.Mechanism.matrix s.S.mechanism in
        let rung = s.S.provenance.S.rung in
        check (label ^ ": provenance names a rung") (S.rung_to_string rung <> "");
        check (label ^ ": alpha-dp certified") (I.passed (I.alpha_dp ~alpha m));
        if rung <> S.Tailored then
          check (label ^ ": derivability certified") (I.passed (I.derivability ~alpha m)))
    consumers

let solver_matrix () =
  List.iter
    (fun site ->
      List.iter
        (fun (aname, action) ->
          List.iter
            (fun hits ->
              let label = Printf.sprintf "site=%s action=%s hits=%d" site aname hits in
              let plan = F.plan [ { F.site; hits; action } ] in
              (* Blowup_bits only matters against a bit ceiling. *)
              let budget =
                match action with
                | F.Blowup_bits _ -> Some (B.make ~max_bits:256 ())
                | _ -> None
              in
              certified_serve label plan ~budget)
            [ 1; 0 ])
        actions)
    solver_sites;
  (* The acceptance scenario: the LP budget exhausts at EVERY simplex
     site on every hit — no LP can run, the ladder must bottom out on
     raw G(n,α) and still certify. *)
  let plan =
    F.plan
      (List.map (fun site -> { F.site; hits = 0; action = F.Exhaust E.Pivots }) solver_sites)
  in
  certified_serve "all-sites-exhausted" plan ~budget:None

(* ------------------------------------------------------------------ *)
(* Non-solver sites: clean Injected, no state corruption.             *)
(* ------------------------------------------------------------------ *)

let trip_sites =
  [
    ( "matrix.inverse",
      fun () ->
        ignore
          (Linalg.Matrix.Q.inverse
             (Array.init 3 (fun i -> Array.init 3 (fun j -> if i = j then q 2 1 else Rat.zero)))) );
    ( "mech.factor",
      fun () -> ignore (Mech.Derivability.derive ~alpha (Mech.Geometric.matrix ~n ~alpha)) );
    ( "multilevel.stage",
      fun () -> ignore (Minimax.Multi_level.make_plan ~n ~levels:[ q 1 3; q 1 2 ]) );
    ( "dpdb.csv.row", fun () -> ignore (Dpdb.Csv.of_string "age:int\n30\n41\n") );
  ]

let trip_matrix () =
  List.iter
    (fun (site, workload) ->
      let plan = F.plan [ { F.site; hits = 1; action = F.Trip } ] in
      (match F.with_plan plan workload with
       | exception F.Injected { site = s; hit = 1 } ->
         check (site ^ ": Injected names the site") (s = site)
       | exception e ->
         check (site ^ ": clean Injected, got " ^ Printexc.to_string e) false
       | () -> check (site ^ ": trip fired") false);
      check (site ^ ": exactly one trip recorded") (F.trips plan = 1);
      (* The same workload with no plan installed must succeed: a trip
         leaves no residue behind. *)
      match workload () with
      | () -> ()
      | exception e -> check (site ^ ": retry clean, got " ^ Printexc.to_string e) false)
    trip_sites

(* ------------------------------------------------------------------ *)
(* Engine sites: faulted batches serve the same bytes as clean ones.  *)
(* ------------------------------------------------------------------ *)

module En = Engine
module Rq = Engine.Request

(* Three requests, two naming the same consumer — so the cache path
   (miss, miss, hit) and both fault sites all get exercised. *)
let engine_requests =
  let mk input count loss =
    match Rq.make ~input ~count ~n ~alpha ~loss ~side:Rq.Full () with
    | Ok r -> r
    | Error m -> failwith ("chaos engine request: " ^ m)
  in
  [| mk 1 50 Rq.Absolute; mk 3 40 Rq.Zero_one; mk 2 30 Rq.Absolute |]

(* (label, site, hits, expected trips, expected cache insertions).
   A tripped cache lookup compiles outside the cache, so bypassing
   every request leaves the cache empty; worker trips never touch the
   cache at all. *)
let engine_scenarios =
  [
    ("engine.cache trip, first request", "engine.cache", 1, 1, 2);
    ("engine.cache trip, every request", "engine.cache", 0, 3, 0);
    ("engine.worker trip, one job", "engine.worker", 1, 1, 2);
    ("engine.worker trip, every job", "engine.worker", 0, 3, 2);
  ]

let engine_matrix () =
  let samples rs = Array.map (fun (r : En.response) -> r.En.samples) rs in
  let run plan =
    En.with_engine ~domains:1 (fun e ->
        let go () = En.run_batch ~seed:7 e engine_requests in
        let rs = match plan with None -> go () | Some p -> F.with_plan p go in
        let cached_certified =
          Array.for_all
            (fun (r : En.response) ->
              match En.artifact e r.En.request with
              | None -> true (* bypassed compiles never enter the cache *)
              | Some a -> a.En.Compiled.certificates <> [])
            rs
        in
        (rs, En.cache_stats e, cached_certified))
  in
  let baseline, _, _ = run None in
  List.iter
    (fun (label, site, hits, expect_trips, expect_insertions) ->
      let p = F.plan [ { F.site; hits; action = F.Trip } ] in
      match run (Some p) with
      | exception e ->
        check (label ^ ": batch absorbed the fault, got " ^ Printexc.to_string e) false
      | rs, stats, certified ->
        check (label ^ ": output byte-identical to clean run") (samples rs = samples baseline);
        check (label ^ ": cached artifacts certified") certified;
        check (label ^ ": trip count") (F.trips p = expect_trips);
        check (label ^ ": cache insertions")
          (stats.En.Cache.insertions = expect_insertions))
    engine_scenarios

(* ------------------------------------------------------------------ *)
(* Server sites: a dropped accept or a dead peer is contained to its  *)
(* connection, and everyone else gets clean-run bytes.                *)
(* ------------------------------------------------------------------ *)

module Sv = Server
module Fr = Server.Framing

let server_config = { Sv.default_config with Sv.domains = Some 1; queue_capacity = 8 }

let with_server f =
  let t = Sv.create ~config:server_config () in
  let d = Domain.spawn (fun () -> Sv.serve t) in
  Fun.protect
    ~finally:(fun () ->
      Sv.stop t;
      Domain.join d)
    (fun () -> f (Sv.port t))

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* Client writes go through an out_channel rather than Framing so the
   ambient plan's ["server.write"] trigger can only ever fire in the
   server — the client is not part of the blast radius under test. *)
let send_raw fd lines =
  let oc = Unix.out_channel_of_descr fd in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  flush oc;
  Unix.shutdown fd Unix.SHUTDOWN_SEND

let recv_all fd =
  let r = Fr.reader fd in
  let rec go acc =
    let res = Fr.poll r in
    let acc = List.rev_append res.Fr.lines acc in
    if res.Fr.eof then List.rev acc else go acc
  in
  go []

let round_trip port lines =
  let fd = connect port in
  send_raw fd lines;
  let got = recv_all fd in
  Unix.close fd;
  got

let server_lines =
  [
    "v=1 id=c0 seed=601 n=4 alpha=1/2 count=5";
    "v=1 id=c1 seed=602 n=4 alpha=1/3 loss=squared count=4";
  ]

let server_scenario_count = 2

let server_matrix () =
  (* SIGPIPE is ignored once serve() runs, but the first scenario's
     client may write to a dropped socket before then. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let baseline = with_server (fun port -> round_trip port server_lines) in
  check "server baseline: every request answered" (List.length baseline = 2);
  (* server.accept: the victim socket is dropped and counted; the
     listener survives, and the very next connection is served the
     clean run's bytes. *)
  (let p = F.plan [ { F.site = "server.accept"; hits = 1; action = F.Trip } ] in
   F.with_plan p (fun () ->
       with_server (fun port ->
           let victim = connect port in
           let dropped = recv_all victim in
           Unix.close victim;
           check "server.accept: victim dropped without bytes" (dropped = []);
           check "server.accept: exactly one trip" (F.trips p = 1);
           check "server.accept: next connection byte-identical to clean run"
             (round_trip port server_lines = baseline))));
  (* server.write: the victim's first response flush behaves as a dead
     peer — its connection aborts with no partial frame — while later
     connections still get the clean run's bytes. *)
  let p = F.plan [ { F.site = "server.write"; hits = 1; action = F.Trip } ] in
  F.with_plan p (fun () ->
      with_server (fun port ->
          let victim = connect port in
          send_raw victim server_lines;
          let got = recv_all victim in
          Unix.close victim;
          check "server.write: victim aborted without a partial response" (got = []);
          check "server.write: exactly one trip" (F.trips p = 1);
          check "server.write: later connection byte-identical to clean run"
            (round_trip port server_lines = baseline)))

(* ------------------------------------------------------------------ *)

let () =
  solver_matrix ();
  trip_matrix ();
  engine_matrix ();
  server_matrix ();
  let scenarios =
    (List.length solver_sites * List.length actions * 2 + 1) * List.length consumers
    + List.length trip_sites
    + List.length engine_scenarios
    + server_scenario_count
  in
  if !failures > 0 then begin
    Printf.printf "chaos: %d failure(s) across %d scenarios\n" !failures scenarios;
    exit 1
  end;
  Printf.printf
    "chaos: clean (%d scenarios: %d solver-site plans x %d consumers, %d trip sites, %d \
     engine scenarios, %d server scenarios)\n"
    scenarios
    (List.length solver_sites * List.length actions * 2 + 1)
    (List.length consumers) (List.length trip_sites) (List.length engine_scenarios)
    server_scenario_count
