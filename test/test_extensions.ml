(* Tests for the extension modules: CSV import/export, the predicate
   parser, privacy accounting, and the multi-query budget splitter. *)

module V = Dpdb.Value
module Db = Dpdb.Database
module Csv = Dpdb.Csv
module Qp = Dpdb.Query_parser
module Acc = Mech.Accounting
module Mq = Minimax.Multi_query

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

(* --------------------------------------------------------------- *)
(* CSV                                                              *)
(* --------------------------------------------------------------- *)

let sample_csv = "name:text,age:int,sick:bool\nann,34,true\nbob,17,false\n"

let test_csv_parse () =
  let db = Csv.of_string sample_csv in
  Alcotest.(check int) "rows" 2 (Db.size db);
  Alcotest.(check int) "count sick" 1 (Db.count db (Dpdb.Predicate.Eq ("sick", V.Bool true)));
  let row = Db.row db 0 in
  Alcotest.(check bool) "name" true (V.equal row.(0) (V.Text "ann"));
  Alcotest.(check bool) "age" true (V.equal row.(1) (V.Int 34))

let test_csv_roundtrip () =
  let db = Csv.of_string sample_csv in
  let again = Csv.of_string (Csv.to_string db) in
  Alcotest.(check int) "same size" (Db.size db) (Db.size again);
  List.iter2
    (fun a b -> Alcotest.(check bool) "row equal" true (Array.for_all2 V.equal a b))
    (Db.rows db) (Db.rows again)

let test_csv_quoting () =
  let csv = "name:text,age:int\n\"von Neumann, John\",53\n\"say \"\"hi\"\"\",1\n" in
  let db = Csv.of_string csv in
  Alcotest.(check bool) "comma preserved" true
    (V.equal (Db.row db 0).(0) (V.Text "von Neumann, John"));
  Alcotest.(check bool) "escaped quote" true (V.equal (Db.row db 1).(0) (V.Text "say \"hi\""));
  (* roundtrip re-quotes *)
  let again = Csv.of_string (Csv.to_string db) in
  Alcotest.(check bool) "roundtrip" true
    (V.equal (Db.row again 0).(0) (V.Text "von Neumann, John"))

let test_csv_bool_forms () =
  let db = Csv.of_string "b:bool\n1\nyes\nFALSE\nno\n" in
  Alcotest.(check int) "two true" 2 (Db.count db (Dpdb.Predicate.Eq ("b", V.Bool true)))

let test_csv_errors () =
  Alcotest.check_raises "bad header" (Invalid_argument "Csv: bad column spec \"a:float\" (want name:int|text|bool)")
    (fun () -> ignore (Csv.of_string "a:float\n1\n"));
  Alcotest.check_raises "bad int" (Invalid_argument "Csv: row 1, field 1 (a): not an int: \"xyz\"")
    (fun () -> ignore (Csv.of_string "a:int\nxyz\n"));
  Alcotest.check_raises "bad cell locates row and column"
    (Invalid_argument "Csv: row 2, field 2 (age): not an int: \"old\"")
    (fun () -> ignore (Csv.of_string "name:text,age:int\nann,34\nbob,old\n"));
  Alcotest.check_raises "ragged" (Invalid_argument "Csv: row 1 has 1 fields, want 2") (fun () ->
      ignore (Csv.of_string "a:int,b:int\n1\n"));
  Alcotest.check_raises "empty" (Invalid_argument "Csv: empty document") (fun () ->
      ignore (Csv.of_string "\n\n"))

let test_csv_file_io () =
  let db = Csv.of_string sample_csv in
  let path = Filename.temp_file "dpdb" ".csv" in
  Csv.save path db;
  let loaded = Csv.load path in
  Sys.remove path;
  Alcotest.(check int) "loaded size" 2 (Db.size loaded)

(* --------------------------------------------------------------- *)
(* Predicate parser                                                 *)
(* --------------------------------------------------------------- *)

let schema = Dpdb.Schema.make [ ("age", V.Tint); ("city", V.Ttext); ("sick", V.Tbool) ]

let row age city sick = [| V.Int age; V.Text city; V.Bool sick |]

let parse_exn s =
  match Qp.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse %S failed %s" s (Qp.error_to_string e)

let eval s r = Dpdb.Predicate.eval schema r (parse_exn s)

let test_parse_atoms () =
  let r = row 34 "San Diego" true in
  Alcotest.(check bool) "eq int" true (eval "age = 34" r);
  Alcotest.(check bool) "neq" true (eval "age != 35" r);
  Alcotest.(check bool) "lt" false (eval "age < 34" r);
  Alcotest.(check bool) "le" true (eval "age <= 34" r);
  Alcotest.(check bool) "gt" true (eval "age > 30" r);
  Alcotest.(check bool) "ge" true (eval "age >= 34" r);
  Alcotest.(check bool) "text" true (eval "city = 'San Diego'" r);
  Alcotest.(check bool) "bool" true (eval "sick = true" r);
  Alcotest.(check bool) "in list" true (eval "age IN (1, 34, 99)" r);
  Alcotest.(check bool) "not in list" false (eval "age IN (1, 2)" r)

let test_parse_boolean_structure () =
  let r = row 34 "San Diego" true in
  Alcotest.(check bool) "and" true (eval "age >= 18 AND city = 'San Diego'" r);
  Alcotest.(check bool) "or" true (eval "age < 10 OR sick = true" r);
  Alcotest.(check bool) "not" true (eval "NOT age < 18" r);
  Alcotest.(check bool) "parens" true (eval "(age < 10 OR age > 20) AND sick = true" r);
  (* AND binds tighter than OR *)
  Alcotest.(check bool) "precedence" true (eval "age < 10 AND sick = false OR age = 34" r);
  Alcotest.(check bool) "keywords case-insensitive" true (eval "age >= 18 and NOT sick = false" r);
  Alcotest.(check bool) "literal true" true (eval "TRUE" r);
  Alcotest.(check bool) "literal false" false (eval "false" r)

let test_parse_quoted_escape () =
  let r = [| V.Int 1; V.Text "O'Brien"; V.Bool false |] in
  Alcotest.(check bool) "escaped quote" true (eval "city = 'O''Brien'" r)

let test_parse_errors () =
  let bad s =
    match Qp.parse_opt s with
    | None -> ()
    | Some _ -> Alcotest.failf "should not parse: %s" s
  in
  bad "";
  bad "age >";
  bad "age = ";
  bad "age = 'unterminated";
  bad "(age = 1";
  bad "age = 1 garbage";
  bad "AND age = 1";
  bad "age IN ()";
  bad "age ** 2";
  (* errors carry the offset of the offending token *)
  let position s =
    match Qp.parse s with
    | Error e -> e.Qp.position
    | Ok _ -> Alcotest.failf "should not parse: %s" s
  in
  Alcotest.(check int) "bad char offset" 4 (position "age ** 2");
  Alcotest.(check int) "trailing-input offset" 8 (position "age = 1 garbage");
  Alcotest.(check int) "eof offset" 5 (position "age =")

let test_parse_roundtrip_via_to_string () =
  (* to_string of a parsed predicate re-parses to the same evaluation *)
  let inputs =
    [ "age >= 18 AND city = 'San Diego'"; "NOT (sick = true OR age < 5)"; "age IN (1, 2, 3)" ]
  in
  let rows = [ row 34 "San Diego" true; row 4 "Fresno" false; row 2 "LA" true ] in
  List.iter
    (fun s ->
      let p = parse_exn s in
      let p' = parse_exn (Dpdb.Predicate.to_string p) in
      List.iter
        (fun r ->
          Alcotest.(check bool) (s ^ " on a row")
            (Dpdb.Predicate.eval schema r p)
            (Dpdb.Predicate.eval schema r p'))
        rows)
    inputs

let test_type_check () =
  Alcotest.(check bool) "well-typed" true (Qp.type_check schema (parse_exn "age >= 18") = None);
  Alcotest.(check bool) "ill-typed literal" true
    (Qp.type_check schema (parse_exn "age = 'ten'") <> None);
  Alcotest.(check bool) "unknown column" true
    (Qp.type_check schema (parse_exn "salary > 10") <> None)

let test_parse_query_end_to_end () =
  let rng = Prob.Rng.of_int 9 in
  let db = Dpdb.Generator.population rng 50 ~flu_rate:0.3 in
  let parsed =
    match Qp.parse_query ~name:"parsed" "has_flu = true AND age >= 18" with
    | Ok query -> query
    | Error e -> Alcotest.failf "parse_query failed %s" (Qp.error_to_string e)
  in
  let manual =
    Dpdb.Count_query.make
      Dpdb.Predicate.(Eq ("has_flu", V.Bool true) &&& Ge ("age", V.Int 18))
  in
  Alcotest.(check int) "same count"
    (Dpdb.Count_query.eval manual db)
    (Dpdb.Count_query.eval parsed db)

(* --------------------------------------------------------------- *)
(* Accounting                                                       *)
(* --------------------------------------------------------------- *)

let test_sequential () =
  Alcotest.check rat "product" (q 1 8) (Acc.sequential (q 1 2) (q 1 4));
  Alcotest.check rat "identity" (q 1 2) (Acc.sequential (q 1 2) Rat.one)

let test_compose_k () =
  Alcotest.check rat "cube" (q 1 8) (Acc.compose_k ~k:3 (q 1 2));
  Alcotest.check rat "zero releases" Rat.one (Acc.compose_k ~k:0 (q 1 2))

let test_parallel () =
  Alcotest.check rat "weakest" (q 1 4) (Acc.parallel [ q 1 2; q 1 4; q 3 4 ])

let test_group () =
  Alcotest.check rat "pair" (q 1 4) (Acc.group ~g:2 (q 1 2));
  Alcotest.check rat "singleton" (q 1 2) (Acc.group ~g:1 (q 1 2))

let test_fits () =
  Alcotest.(check bool) "within budget" true (Acc.fits ~k:2 ~per_release:(q 1 2) ~total:(q 1 4));
  Alcotest.(check bool) "bust" false (Acc.fits ~k:3 ~per_release:(q 1 2) ~total:(q 1 4))

let test_epsilon_bridge () =
  Alcotest.(check (float 1e-9)) "eps of 1/e" 1.0 (Acc.epsilon_of_alpha (Rat.of_float_dyadic (exp (-1.0))));
  Alcotest.(check bool) "eps of 0 is inf" true (Acc.epsilon_of_alpha Rat.zero = infinity);
  let a = Acc.alpha_of_epsilon 0.7 in
  Alcotest.(check (float 1e-9)) "roundtrip" 0.7 (Acc.epsilon_of_alpha a)

let test_sequential_law_on_matrices () =
  (* Two geometric mechanisms at different levels: the joint release is
     (α₁·α₂)-DP, verified on the product probabilities. *)
  let m1 = Mech.Geometric.matrix ~n:3 ~alpha:(q 1 2) in
  let m2 = Mech.Geometric.matrix ~n:3 ~alpha:(q 1 3) in
  Alcotest.(check bool) "law holds" true (Acc.sequential_law_holds m1 m2)

let test_accounting_validation () =
  Alcotest.check_raises "negative alpha" (Invalid_argument "Accounting: privacy level must lie in [0,1]")
    (fun () -> ignore (Acc.sequential (q (-1) 2) (q 1 2)));
  Alcotest.check_raises "negative k" (Invalid_argument "Accounting.compose_k: negative k")
    (fun () -> ignore (Acc.compose_k ~k:(-1) (q 1 2)));
  Alcotest.check_raises "empty parallel" (Invalid_argument "Accounting.parallel: no mechanisms")
    (fun () -> ignore (Acc.parallel []))

(* --------------------------------------------------------------- *)
(* Multi-query                                                      *)
(* --------------------------------------------------------------- *)

let test_uniform_plan () =
  let plan = Mq.uniform ~n:4 ~k:3 ~alpha:(q 1 2) in
  Alcotest.(check int) "k" 3 (Mq.k plan);
  Alcotest.check rat "levels" (q 1 2) (Mq.level plan 1);
  Alcotest.check rat "total" (q 1 8) (Mq.total_level plan)

let test_weighted_plan () =
  let plan = Mq.weighted ~n:4 ~base:(q 1 2) ~weights:[ 1; 2; 3 ] in
  Alcotest.check rat "level 0" (q 1 2) (Mq.level plan 0);
  Alcotest.check rat "level 1" (q 1 4) (Mq.level plan 1);
  Alcotest.check rat "level 2" (q 1 8) (Mq.level plan 2);
  Alcotest.check rat "total" (q 1 64) (Mq.total_level plan);
  (* each mechanism is DP at its own level *)
  for i = 0 to 2 do
    Alcotest.(check bool) "dp" true
      (Mech.Mechanism.is_dp ~alpha:(Mq.level plan i) (Mq.mechanism plan i))
  done

let test_multi_query_release () =
  let plan = Mq.uniform ~n:6 ~k:2 ~alpha:(q 1 3) in
  let rng = Prob.Rng.of_int 3 in
  let out = Mq.release plan ~true_results:[| 2; 5 |] rng in
  Alcotest.(check int) "two answers" 2 (Array.length out);
  Array.iter (fun r -> Alcotest.(check bool) "range" true (r >= 0 && r <= 6)) out;
  Alcotest.check_raises "wrong arity" (Invalid_argument "Multi_query.release: wrong number of results")
    (fun () -> ignore (Mq.release plan ~true_results:[| 1 |] rng))

let test_multi_query_universality () =
  (* Theorem 1 applies per coordinate. *)
  let plan = Mq.weighted ~n:3 ~base:(q 1 2) ~weights:[ 1; 2 ] in
  let consumer =
    Minimax.Consumer.make ~loss:Minimax.Loss.absolute ~side_info:(Minimax.Side_info.full 3) ()
  in
  Alcotest.(check bool) "query 0" true (Mq.universality_holds_for plan ~query:0 consumer);
  Alcotest.(check bool) "query 1" true (Mq.universality_holds_for plan ~query:1 consumer)

let test_multi_query_loss_monotone_in_weight () =
  (* Heavier weight = more budget shares = smaller α = weakly less
     loss for that query's consumers. *)
  let plan = Mq.weighted ~n:4 ~base:(q 1 2) ~weights:[ 1; 3 ] in
  let consumer =
    Minimax.Consumer.make ~loss:Minimax.Loss.absolute ~side_info:(Minimax.Side_info.full 4) ()
  in
  let l0 = Mq.consumer_loss plan ~query:0 consumer in
  let l1 = Mq.consumer_loss plan ~query:1 consumer in
  Alcotest.(check bool) "heavier weight loses less" true (Rat.compare l1 l0 <= 0)

(* --------------------------------------------------------------- *)
(* LP pricing ablation correctness                                  *)
(* --------------------------------------------------------------- *)

let test_pricing_rules_agree () =
  (* Both pricing rules must find the same optimum (vertices may
     differ; values may not). *)
  let build () =
    let p = Lp.make () in
    let x = Lp.fresh_var p and y = Lp.fresh_var p and z = Lp.fresh_var p in
    Lp.add_le p Lp.Expr.(sum [ var x; var y; var z ]) (q 10 1);
    Lp.add_le p Lp.Expr.(sum [ term (q 2 1) x; var y ]) (q 8 1);
    Lp.add_ge p Lp.Expr.(add (var y) (var z)) (q 3 1);
    Lp.set_objective p Lp.Maximize Lp.Expr.(sum [ term (q 3 1) x; term (q 2 1) y; var z ]);
    p
  in
  match
    ( Lp.solve ~pricing:Lp.Simplex.Exact.Dantzig_lex (build ()),
      Lp.solve ~pricing:Lp.Simplex.Exact.Bland (build ()) )
  with
  | Lp.Optimal a, Lp.Optimal b -> Alcotest.check rat "same objective" a.objective b.objective
  | _ -> Alcotest.fail "both must be optimal"

let test_pricing_rules_agree_on_mechanism_lp () =
  let consumer =
    Minimax.Consumer.make ~loss:Minimax.Loss.absolute ~side_info:(Minimax.Side_info.full 3) ()
  in
  (* solve via default (Dantzig+lex) twice is pointless; instead rebuild
     the optimal-mechanism LP with Bland through the public Lp API by
     replicating the tailored LP at a small n via Universal, then
     compare to the known value. *)
  let r = Minimax.Optimal_mechanism.solve ~alpha:(q 1 2) consumer in
  Alcotest.check rat "known optimum" (q 28 39) r.Minimax.Optimal_mechanism.loss

let () =
  Alcotest.run "extensions"
    [
      ( "csv",
        [
          Alcotest.test_case "parse" `Quick test_csv_parse;
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "bool forms" `Quick test_csv_bool_forms;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "file io" `Quick test_csv_file_io;
        ] );
      ( "query-parser",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "boolean structure" `Quick test_parse_boolean_structure;
          Alcotest.test_case "quoted escape" `Quick test_parse_quoted_escape;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip_via_to_string;
          Alcotest.test_case "type check" `Quick test_type_check;
          Alcotest.test_case "end to end" `Quick test_parse_query_end_to_end;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "sequential" `Quick test_sequential;
          Alcotest.test_case "compose_k" `Quick test_compose_k;
          Alcotest.test_case "parallel" `Quick test_parallel;
          Alcotest.test_case "group" `Quick test_group;
          Alcotest.test_case "fits" `Quick test_fits;
          Alcotest.test_case "epsilon bridge" `Quick test_epsilon_bridge;
          Alcotest.test_case "sequential law on matrices" `Quick test_sequential_law_on_matrices;
          Alcotest.test_case "validation" `Quick test_accounting_validation;
        ] );
      ( "multi-query",
        [
          Alcotest.test_case "uniform plan" `Quick test_uniform_plan;
          Alcotest.test_case "weighted plan" `Quick test_weighted_plan;
          Alcotest.test_case "release" `Quick test_multi_query_release;
          Alcotest.test_case "per-query universality" `Quick test_multi_query_universality;
          Alcotest.test_case "loss monotone in weight" `Quick test_multi_query_loss_monotone_in_weight;
        ] );
      ( "lp-pricing",
        [
          Alcotest.test_case "rules agree" `Quick test_pricing_rules_agree;
          Alcotest.test_case "known optimum" `Quick test_pricing_rules_agree_on_mechanism_lp;
        ] );
    ]
