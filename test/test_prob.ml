(* Tests for the probability substrate: PRNG determinism and range,
   discrete-distribution algebra, samplers validated by χ² and TV
   distance, alias method vs inverse-CDF. *)

module Rng = Prob.Rng
module D = Prob.Discrete
module S = Prob.Stats

(* --------------------------------------------------------------- *)
(* RNG                                                              *)
(* --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.of_int 42 and b = Rng.of_int 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.of_int 1 and b = Rng.of_int 2 in
  Alcotest.(check bool) "different seeds differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let test_rng_float_range () =
  let rng = Rng.of_int 7 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_int_range () =
  let rng = Rng.of_int 9 in
  for bound = 1 to 20 do
    for _ = 1 to 500 do
      let v = Rng.int rng bound in
      if v < 0 || v >= bound then Alcotest.failf "int out of [0,%d): %d" bound v
    done
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_uniform () =
  let rng = Rng.of_int 11 in
  let xs = Array.init 60_000 (fun _ -> Rng.int rng 6) in
  Alcotest.(check bool) "χ² fits uniform(6)" true (S.fits xs (D.uniform 0 5))

let test_rng_copy_and_split () =
  let a = Rng.of_int 5 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy same" (Rng.next_int64 a) (Rng.next_int64 b);
  let c = Rng.split a in
  Alcotest.(check bool) "split independent stream" true (Rng.next_int64 a <> Rng.next_int64 c)

let test_rng_streams () =
  let k = 5 in
  let a = Rng.streams (Rng.of_int 13) k and b = Rng.streams (Rng.of_int 13) k in
  Alcotest.(check int) "count" k (Array.length a);
  Array.iteri
    (fun i s -> Alcotest.(check int64) "stream i deterministic" (Rng.next_int64 s) (Rng.next_int64 b.(i)))
    a;
  let firsts = Array.to_list (Array.map Rng.next_int64 (Rng.streams (Rng.of_int 13) k)) in
  Alcotest.(check int) "streams pairwise distinct" k (List.length (List.sort_uniq compare firsts));
  Alcotest.check_raises "negative count" (Invalid_argument "Rng.streams: negative count")
    (fun () -> ignore (Rng.streams (Rng.of_int 1) (-1)))

(* --------------------------------------------------------------- *)
(* Discrete distributions                                           *)
(* --------------------------------------------------------------- *)

let test_of_assoc_normalizes () =
  let d = D.of_assoc [ (0, 2.0); (1, 6.0) ] in
  Alcotest.(check (float 1e-12)) "mass 0" 0.25 (D.mass d 0);
  Alcotest.(check (float 1e-12)) "mass 1" 0.75 (D.mass d 1);
  Alcotest.(check (float 1e-12)) "mass elsewhere" 0.0 (D.mass d 7);
  Alcotest.(check bool) "normalized" true (D.is_normalized d)

let test_of_assoc_merges_duplicates () =
  let d = D.of_assoc [ (3, 1.0); (3, 1.0); (4, 2.0) ] in
  Alcotest.(check (float 1e-12)) "merged" 0.5 (D.mass d 3)

let test_of_assoc_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Discrete.of_assoc: empty distribution")
    (fun () -> ignore (D.of_assoc []));
  Alcotest.check_raises "negative" (Invalid_argument "Discrete.of_assoc: negative mass")
    (fun () -> ignore (D.of_assoc [ (0, 1.0); (1, -0.5) ]))

let test_moments () =
  let d = D.uniform 0 10 in
  Alcotest.(check (float 1e-9)) "uniform mean" 5.0 (D.mean d);
  Alcotest.(check (float 1e-9)) "uniform variance" 10.0 (D.variance d);
  let p = D.point 4 in
  Alcotest.(check (float 1e-12)) "point mean" 4.0 (D.mean p);
  Alcotest.(check (float 1e-12)) "point variance" 0.0 (D.variance p)

let test_expectation () =
  let d = D.of_assoc [ (0, 0.5); (2, 0.5) ] in
  Alcotest.(check (float 1e-12)) "E[x^2]" 2.0 (D.expectation d (fun v -> float_of_int (v * v)))

let test_of_rat_row () =
  let d = D.of_rat_row [| Rat.of_ints 1 4; Rat.of_ints 3 4 |] in
  Alcotest.(check (float 1e-12)) "mass 1" 0.75 (D.mass d 1)

let test_total_variation () =
  let a = D.of_assoc [ (0, 0.5); (1, 0.5) ] in
  let b = D.of_assoc [ (0, 0.25); (1, 0.75) ] in
  Alcotest.(check (float 1e-12)) "tv" 0.25 (D.total_variation a b);
  Alcotest.(check (float 1e-12)) "tv self" 0.0 (D.total_variation a a);
  let c = D.point 5 in
  Alcotest.(check (float 1e-12)) "tv disjoint" 1.0 (D.total_variation a c)

let test_kl () =
  let a = D.of_assoc [ (0, 0.5); (1, 0.5) ] in
  Alcotest.(check (float 1e-12)) "kl self" 0.0 (D.kl_divergence a a);
  let b = D.of_assoc [ (0, 0.9); (1, 0.1) ] in
  Alcotest.(check bool) "kl positive" true (D.kl_divergence a b > 0.0);
  let c = D.point 0 in
  Alcotest.(check bool) "kl infinite off support" true (D.kl_divergence a c = infinity)

(* --------------------------------------------------------------- *)
(* Samplers                                                         *)
(* --------------------------------------------------------------- *)

let test_sample_matches_pmf () =
  let d = D.of_assoc [ (0, 0.1); (1, 0.2); (2, 0.3); (3, 0.4) ] in
  let rng = Rng.of_int 123 in
  let xs = S.draw d rng 40_000 in
  Alcotest.(check bool) "χ² fits" true (S.fits xs d);
  Alcotest.(check bool) "tv small" true (S.empirical_tv xs d < 0.02)

let test_point_sampler () =
  let d = D.point 7 in
  let rng = Rng.of_int 3 in
  for _ = 1 to 100 do
    Alcotest.(check int) "always 7" 7 (D.sample d rng)
  done

let test_alias_matches_inverse_cdf () =
  let d = D.of_assoc [ (10, 0.05); (11, 0.25); (12, 0.4); (13, 0.3) ] in
  let tbl = D.Alias.build d in
  let rng = Rng.of_int 99 in
  let xs = Array.init 40_000 (fun _ -> D.Alias.sample tbl rng) in
  Alcotest.(check bool) "alias χ² fits target" true (S.fits xs d)

let test_alias_vs_exact_tv () =
  (* The engine swaps the inverse-CDF sampler for alias tables; this
     pins down that the two draw from the same distribution — fixed
     seeds, empirical total-variation distance within bound, both
     between the samplers and from each to the target pmf. *)
  let d = D.of_assoc [ (0, 0.35); (1, 0.05); (2, 0.25); (3, 0.2); (4, 0.15) ] in
  let tbl = D.Alias.build d in
  let n = 60_000 in
  let xs_exact = S.draw d (Rng.of_int 2024) n in
  let rng = Rng.of_int 4048 in
  let xs_alias = Array.init n (fun _ -> D.Alias.sample tbl rng) in
  let between = D.total_variation (S.empirical xs_exact) (S.empirical xs_alias) in
  Alcotest.(check bool) "tv(alias, exact) < 0.02" true (between < 0.02);
  Alcotest.(check bool) "tv(alias, target) < 0.02" true (S.empirical_tv xs_alias d < 0.02);
  Alcotest.(check bool) "tv(exact, target) < 0.02" true (S.empirical_tv xs_exact d < 0.02)

let test_empirical () =
  let xs = [| 1; 1; 2; 2; 2; 3 |] in
  let e = S.empirical xs in
  Alcotest.(check (float 1e-12)) "mass 2" 0.5 (D.mass e 2);
  Alcotest.(check (float 1e-12)) "mass 1" (1. /. 3.) (D.mass e 1)

let test_summary () =
  let s = S.summarize [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "count" 4 s.S.count;
  Alcotest.(check (float 1e-12)) "mean" 2.5 s.S.mean;
  Alcotest.(check (float 1e-12)) "variance" 1.25 s.S.variance;
  Alcotest.(check int) "min" 1 s.S.min;
  Alcotest.(check int) "max" 4 s.S.max

let test_ks_statistic () =
  (* perfect match: tiny statistic; gross mismatch: large *)
  let d = D.uniform 0 3 in
  let rng = Rng.of_int 77 in
  let xs = S.draw d rng 20_000 in
  Alcotest.(check bool) "uniform sample fits" true (S.ks_fits xs d);
  let biased = Array.make 20_000 0 in
  Alcotest.(check bool) "constant sample fails" false (S.ks_fits biased d);
  Alcotest.(check bool) "statistic in [0,1]" true
    (let st = S.ks_statistic xs d in
     st >= 0.0 && st <= 1.0)

let test_ks_agrees_with_chi_square () =
  (* both tests accept a faithful geometric-row sample *)
  let d = D.of_assoc [ (0, 0.4); (1, 0.3); (2, 0.2); (3, 0.1) ] in
  let rng = Rng.of_int 1001 in
  let xs = S.draw d rng 30_000 in
  Alcotest.(check bool) "chi2" true (S.fits xs d);
  Alcotest.(check bool) "ks" true (S.ks_fits xs d)

let test_wilson_interval () =
  let lo, hi = S.wilson_interval ~successes:50 ~trials:100 in
  Alcotest.(check bool) "contains p" true (lo < 0.5 && 0.5 < hi);
  Alcotest.(check bool) "in [0,1]" true (lo >= 0.0 && hi <= 1.0);
  let lo0, _ = S.wilson_interval ~successes:0 ~trials:100 in
  Alcotest.(check (float 1e-12)) "zero successes floor" 0.0 lo0;
  let _, hi1 = S.wilson_interval ~successes:100 ~trials:100 in
  Alcotest.(check (float 1e-12)) "all successes ceiling" 1.0 hi1;
  (* narrows with more data *)
  let lo_a, hi_a = S.wilson_interval ~successes:500 ~trials:1000 in
  let lo_b, hi_b = S.wilson_interval ~successes:5000 ~trials:10000 in
  Alcotest.(check bool) "narrower" true (hi_b -. lo_b < hi_a -. lo_a);
  Alcotest.check_raises "bad counts" (Invalid_argument "Stats.wilson_interval") (fun () ->
      ignore (S.wilson_interval ~successes:5 ~trials:0))

let test_chi_square_detects_bias () =
  (* A clearly biased sample must fail the fit against uniform. *)
  let xs = Array.init 10_000 (fun i -> if i mod 10 = 0 then 1 else 0) in
  Alcotest.(check bool) "biased fails" false (S.fits xs (D.uniform 0 1))

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let arb_pmf =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map (fun (v, p) -> Printf.sprintf "%d:%.3f" v p) l))
    QCheck.Gen.(
      map (fun weights -> List.mapi (fun i w -> (i, 0.01 +. w)) weights)
        (list_size (int_range 2 12) (float_bound_exclusive 1.0)))

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "pmf normalized" 100 arb_pmf (fun pairs -> D.is_normalized (D.of_assoc pairs));
    prop "samples stay on support" 50 arb_pmf (fun pairs ->
        let d = D.of_assoc pairs in
        let rng = Rng.of_int 5 in
        let ok = ref true in
        for _ = 1 to 200 do
          let v = D.sample d rng in
          if D.mass d v <= 0.0 then ok := false
        done;
        !ok);
    prop "tv symmetric" 60 (QCheck.pair arb_pmf arb_pmf) (fun (a, b) ->
        let da = D.of_assoc a and db = D.of_assoc b in
        Float.abs (D.total_variation da db -. D.total_variation db da) < 1e-12);
    prop "tv in [0,1]" 60 (QCheck.pair arb_pmf arb_pmf) (fun (a, b) ->
        let tv = D.total_variation (D.of_assoc a) (D.of_assoc b) in
        tv >= -1e-12 && tv <= 1.0 +. 1e-12);
    prop "kl nonnegative" 60 (QCheck.pair arb_pmf arb_pmf) (fun (a, b) ->
        let keys = List.sort_uniq compare (List.map fst (a @ b)) in
        let pad l = List.map (fun k -> (k, try List.assoc k l with Not_found -> 0.001)) keys in
        D.kl_divergence (D.of_assoc (pad a)) (D.of_assoc (pad b)) >= -1e-9);
    prop "mean within support bounds" 100 arb_pmf (fun pairs ->
        let d = D.of_assoc pairs in
        let support = D.support d in
        let lo = float_of_int support.(0) and hi = float_of_int support.(Array.length support - 1) in
        let m = D.mean d in
        m >= lo -. 1e-9 && m <= hi +. 1e-9);
  ]

let () =
  Alcotest.run "prob"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int uniformity" `Slow test_rng_int_uniform;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_and_split;
          Alcotest.test_case "streams" `Quick test_rng_streams;
        ] );
      ( "discrete",
        [
          Alcotest.test_case "normalization" `Quick test_of_assoc_normalizes;
          Alcotest.test_case "duplicate merging" `Quick test_of_assoc_merges_duplicates;
          Alcotest.test_case "rejects invalid" `Quick test_of_assoc_rejects;
          Alcotest.test_case "moments" `Quick test_moments;
          Alcotest.test_case "expectation" `Quick test_expectation;
          Alcotest.test_case "of_rat_row" `Quick test_of_rat_row;
          Alcotest.test_case "total variation" `Quick test_total_variation;
          Alcotest.test_case "kl divergence" `Quick test_kl;
        ] );
      ( "samplers",
        [
          Alcotest.test_case "inverse-cdf matches pmf" `Slow test_sample_matches_pmf;
          Alcotest.test_case "point sampler" `Quick test_point_sampler;
          Alcotest.test_case "alias matches target" `Slow test_alias_matches_inverse_cdf;
          Alcotest.test_case "alias vs exact sampler (TV)" `Slow test_alias_vs_exact_tv;
          Alcotest.test_case "empirical" `Quick test_empirical;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "chi-square detects bias" `Quick test_chi_square_detects_bias;
          Alcotest.test_case "ks statistic" `Slow test_ks_statistic;
          Alcotest.test_case "ks agrees with chi-square" `Slow test_ks_agrees_with_chi_square;
          Alcotest.test_case "wilson interval" `Quick test_wilson_interval;
        ] );
      ("properties", properties);
    ]
