(* Tests for the serving engine: request canonicalization, the LRU
   mechanism cache, the Domain worker pool, compiled samplers, and the
   end-to-end determinism contract — byte-identical batch output for
   any worker count given the seed. *)

module En = Engine
module Rq = Engine.Request
module Ca = Engine.Cache
module Po = Engine.Pool
module Co = Engine.Compiled
module Rng = Prob.Rng
module M = Mech.Mechanism
module F = Resilience.Fault

let q = Rat.of_ints

let req ?(input = 0) ?(count = 1) ?(n = 5) ?(alpha = q 1 2) ?(loss = Rq.Absolute)
    ?(side = Rq.Full) () =
  match Rq.make ~input ~count ~n ~alpha ~loss ~side () with
  | Ok r -> r
  | Error m -> Alcotest.failf "fixture request rejected: %s" m

(* --------------------------------------------------------------- *)
(* Requests and canonical keys                                      *)
(* --------------------------------------------------------------- *)

let key r = Rq.canonical_key r

let test_canonical_collapses () =
  let base = key (req ()) in
  Alcotest.(check string) "deadzone:0 keys as absolute" base (key (req ~loss:(Rq.Deadzone 0) ()));
  Alcotest.(check string) "capped:c, c >= n keys as absolute" base
    (key (req ~loss:(Rq.Capped 7) ()));
  Alcotest.(check string) "asym:1,1 keys as absolute" base
    (key (req ~loss:(Rq.Asymmetric (q 1 1, q 1 1)) ()));
  Alcotest.(check string) ">=0 keys as full" base (key (req ~side:(Rq.At_least 0) ()));
  Alcotest.(check string) "0-n keys as full" base (key (req ~side:(Rq.Interval (0, 5)) ()));
  Alcotest.(check string) "all-member list keys as full" base
    (key (req ~side:(Rq.Members [ 3; 0; 1; 2; 5; 4 ]) ()));
  Alcotest.(check string) "input/count never enter the key" base (key (req ~input:3 ~count:9 ()));
  Alcotest.(check bool) "capped:c, c < n stays distinct" true
    (key (req ~loss:(Rq.Capped 2) ()) <> base);
  Alcotest.(check bool) "member order irrelevant" true
    (key (req ~side:(Rq.Members [ 4; 1; 1; 2 ]) ()) = key (req ~side:(Rq.Members [ 1; 2; 4 ]) ()))

let test_line_round_trip () =
  let line = "v=1 id=q-7 seed=9 n=6 alpha=1/2 loss=deadzone:1 side=2-5 input=3 count=12" in
  match Rq.of_line line with
  | Error e -> Alcotest.fail (Rq.wire_error_to_string e)
  | Ok (Rq.Stats _ | Rq.Session _) -> Alcotest.fail "parsed a query line as an op verb"
  | Ok (Rq.Query w) ->
    let r = w.Rq.request in
    Alcotest.(check string) "to_line inverts of_line" line
      (Rq.to_line ?id:w.Rq.id ?seed:w.Rq.seed r);
    Alcotest.(check (option string)) "id" (Some "q-7") w.Rq.id;
    Alcotest.(check (option int)) "seed" (Some 9) w.Rq.seed;
    Alcotest.(check int) "n" 6 r.Rq.n;
    Alcotest.(check int) "input" 3 r.Rq.input;
    Alcotest.(check int) "count" 12 r.Rq.count

let test_line_defaults_and_errors () =
  (match Rq.of_line "v=1 n=4 alpha=1/3 loss=squared side=>=1" with
  | Error e -> Alcotest.fail (Rq.wire_error_to_string e)
  | Ok (Rq.Stats _ | Rq.Session _) -> Alcotest.fail "parsed a query line as an op verb"
  | Ok (Rq.Query w) ->
    Alcotest.(check (option string)) "default id" None w.Rq.id;
    Alcotest.(check (option int)) "default seed" None w.Rq.seed;
    Alcotest.(check int) "default input" 0 w.Rq.request.Rq.input;
    Alcotest.(check int) "default count" 1 w.Rq.request.Rq.count);
  let rejects kind line =
    match Rq.of_line line with
    | Ok _ -> Alcotest.failf "accepted bad line: %s" line
    | Error e ->
      Alcotest.(check string) ("error kind of: " ^ line) kind (Rq.wire_error_kind e)
  in
  rejects "unsupported_version" "n=4 alpha=1/2 loss=absolute side=full"; (* v= missing *)
  rejects "unsupported_version" "alpha=1/2 loss=absolute side=full";  (* v= not first *)
  rejects "unsupported_version" "v=2 n=4 alpha=1/2 loss=absolute side=full";
  rejects "invalid" "v=1 alpha=1/2 loss=absolute side=full";          (* n missing *)
  rejects "invalid" "v=1 n=4 alpha=3/2 loss=absolute side=full";      (* alpha out of (0,1) *)
  rejects "invalid" "v=1 n=4 alpha=1/2 loss=absolute side=full input=9"; (* input range *)
  rejects "invalid" "v=1 n=4 alpha=1/2 loss=absolute side=full count=0";
  rejects "invalid" "v=1 n=4 alpha=1/2 loss=banana side=full";
  rejects "invalid" "v=1 n=4 alpha=1/2 loss=absolute side=7-2";       (* empty interval *)
  rejects "malformed" "v=1 n=4 alpha=1/2 loss=absolute side=full junk"; (* not key=value *)
  rejects "unknown_key" "v=1 n=4 alpha=1/2 loss=absolute side=full color=red";
  rejects "malformed" "v=1 n=4 n=5 alpha=1/2";                        (* duplicate key *)
  rejects "malformed" "v=1 id=spaces! n=4 alpha=1/2"                  (* bad id charset *)

(* --------------------------------------------------------------- *)
(* Cache                                                            *)
(* --------------------------------------------------------------- *)

let test_cache_lru_eviction () =
  let c = Ca.create ~capacity:2 in
  Alcotest.(check (option int)) "cold miss" None (Ca.find c "a");
  Ca.add c "a" 1;
  Ca.add c "b" 2;
  Alcotest.(check (option int)) "hit bumps recency" (Some 1) (Ca.find c "a");
  Ca.add c "c" 3;
  Alcotest.(check bool) "LRU (b) evicted" false (Ca.mem c "b");
  Alcotest.(check bool) "recently-used (a) kept" true (Ca.mem c "a");
  Alcotest.(check (list string)) "keys MRU-first" [ "c"; "a" ] (Ca.keys c);
  Alcotest.(check int) "size" 2 (Ca.size c);
  Alcotest.(check int) "capacity" 2 (Ca.capacity c);
  let s = Ca.stats c in
  Alcotest.(check int) "hits" 1 s.Ca.hits;
  Alcotest.(check int) "misses" 1 s.Ca.misses;
  Alcotest.(check int) "evictions" 1 s.Ca.evictions;
  Alcotest.(check int) "insertions" 3 s.Ca.insertions

let test_cache_peek_neutral () =
  let c = Ca.create ~capacity:2 in
  Ca.add c "a" 1;
  Ca.add c "b" 2;
  Alcotest.(check (option int)) "peek sees a" (Some 1) (Ca.peek c "a");
  Alcotest.(check (option int)) "peek misses quietly" None (Ca.peek c "zz");
  let s = Ca.stats c in
  Alcotest.(check int) "no hits counted" 0 s.Ca.hits;
  Alcotest.(check int) "no misses counted" 0 s.Ca.misses;
  (* peek did not bump recency: "a" is still the LRU entry *)
  Ca.add c "c" 3;
  Alcotest.(check bool) "a evicted despite peek" false (Ca.mem c "a")

let test_cache_overwrite_and_validation () =
  let c = Ca.create ~capacity:2 in
  Ca.add c "a" 1;
  Ca.add c "a" 10;
  Alcotest.(check int) "overwrite keeps size" 1 (Ca.size c);
  Alcotest.(check (option int)) "overwritten value" (Some 10) (Ca.find c "a");
  Alcotest.check_raises "capacity 0" (Invalid_argument "Cache.create: capacity must be >= 1")
    (fun () -> ignore (Ca.create ~capacity:0))

(* --------------------------------------------------------------- *)
(* Pool                                                             *)
(* --------------------------------------------------------------- *)

let squares ~domains =
  Po.with_pool ~domains (fun p ->
      let out = Array.make 24 0 in
      let failures = Po.run p ~jobs:(fun i -> out.(i) <- (i * i) + 1) ~count:24 in
      Alcotest.(check int) "no failures" 0 (List.length failures);
      out)

let test_pool_inline_matches_domains () =
  let inline = squares ~domains:1 in
  Alcotest.(check bool) "2 workers agree with inline" true (squares ~domains:2 = inline);
  Alcotest.(check bool) "3 workers agree with inline" true (squares ~domains:3 = inline)

let test_pool_collects_failures_in_order () =
  Po.with_pool ~domains:1 (fun p ->
      let failures =
        Po.run p ~jobs:(fun i -> if i mod 3 = 0 then failwith (string_of_int i)) ~count:7
      in
      Alcotest.(check (list int)) "failed indices, ascending" [ 0; 3; 6 ]
        (List.map fst failures))

let test_pool_shutdown () =
  let p = Po.create ~domains:2 in
  Po.shutdown p;
  Po.shutdown p;
  Alcotest.check_raises "run after shutdown" (Invalid_argument "Pool.run: pool is shut down")
    (fun () -> ignore (Po.run p ~jobs:(fun _ -> ()) ~count:1))

(* --------------------------------------------------------------- *)
(* Compiled samplers                                                *)
(* --------------------------------------------------------------- *)

let test_compile_certifies () =
  let r = req ~n:4 () in
  let c = Co.compile ~alpha:(q 1 2) ~key:(key r) (Rq.consumer r) in
  Alcotest.(check bool) "certificates non-empty" true (c.Co.certificates <> []);
  Alcotest.(check string) "key recorded" (key r) c.Co.key;
  Alcotest.(check bool) "unbudgeted compile is tailored" true
    (Co.rung c = Minimax.Serve.Tailored)

let test_single_draw_takes_exact_path () =
  (* dpopt geometric --samples 1 must see exactly the pre-engine
     stream: count=1 routes through Mech.Mechanism.sample. *)
  let n = 6 in
  let g = Mech.Geometric.matrix ~n ~alpha:(q 1 2) in
  let s = Co.sampler_of_mechanism g in
  for input = 0 to n do
    let compiled = Co.draws s ~input ~count:1 (Rng.of_int (100 + input)) in
    let exact = M.sample g ~input (Rng.of_int (100 + input)) in
    Alcotest.(check int) "count=1 equals exact sampler" exact compiled.(0)
  done;
  Alcotest.check_raises "count 0" (Invalid_argument "Compiled.draws: count must be >= 1")
    (fun () -> ignore (Co.draws s ~input:0 ~count:0 (Rng.of_int 1)))

let test_draws_stay_in_range () =
  let n = 5 in
  let g = Mech.Geometric.matrix ~n ~alpha:(q 1 3) in
  let s = Co.sampler_of_mechanism g in
  let xs = Co.draws s ~input:2 ~count:2_000 (Rng.of_int 7) in
  Alcotest.(check int) "count honoured" 2_000 (Array.length xs);
  Array.iter (fun x -> if x < 0 || x > n then Alcotest.failf "draw out of range: %d" x) xs

(* --------------------------------------------------------------- *)
(* Engine end to end                                                *)
(* --------------------------------------------------------------- *)

(* Four requests, two of them distinct spellings of the consumer the
   first names — so a batch exercises miss, canonical hit, miss, hit. *)
let fixture () =
  [|
    req ~n:5 ~input:2 ~count:400 ();
    req ~n:5 ~input:4 ~count:300 ~loss:(Rq.Capped 9) ();
    req ~n:4 ~input:0 ~count:200 ~loss:Rq.Squared ();
    req ~n:5 ~input:2 ~count:100 ~side:(Rq.At_least 0) ();
  |]

let samples rs = Array.map (fun (r : En.response) -> r.En.samples) rs

let batch ?plan ?budget ?(seed = 42) ~domains () =
  En.with_engine ~domains ?budget (fun e ->
      let go () = En.run_batch ~seed e (fixture ()) in
      let rs = match plan with None -> go () | Some p -> F.with_plan p go in
      (rs, En.cache_stats e))

let test_determinism_across_worker_counts () =
  let inline, _ = batch ~domains:1 () in
  let two, _ = batch ~domains:2 () in
  let four, _ = batch ~domains:4 () in
  Alcotest.(check bool) "1 vs 2 workers byte-identical" true (samples inline = samples two);
  Alcotest.(check bool) "1 vs 4 workers byte-identical" true (samples inline = samples four);
  let reseeded, _ = batch ~domains:1 ~seed:43 () in
  Alcotest.(check bool) "different seed, different draws" true
    (samples inline <> samples reseeded)

let test_cache_hits_and_stats () =
  let rs, stats = batch ~domains:1 () in
  Alcotest.(check bool) "first request misses" false rs.(0).En.cache_hit;
  Alcotest.(check bool) "canonical respelling hits" true rs.(1).En.cache_hit;
  Alcotest.(check bool) "distinct consumer misses" false rs.(2).En.cache_hit;
  Alcotest.(check bool) ">=0 respelling hits" true rs.(3).En.cache_hit;
  Alcotest.(check int) "hits" 2 stats.Ca.hits;
  Alcotest.(check int) "misses" 2 stats.Ca.misses;
  Alcotest.(check int) "insertions" 2 stats.Ca.insertions;
  Array.iter
    (fun (r : En.response) ->
      Alcotest.(check int) "count honoured" r.En.request.Rq.count (Array.length r.En.samples))
    rs

let test_cached_artifacts_are_certified () =
  En.with_engine ~domains:1 (fun e ->
      let rs = En.run_batch ~seed:1 e (fixture ()) in
      Array.iter
        (fun (r : En.response) ->
          match En.artifact e r.En.request with
          | None -> Alcotest.fail "request has no cached artifact"
          | Some a ->
            Alcotest.(check bool) "artifact carries certificates" true (a.Co.certificates <> []))
        rs)

let test_budget_degrades_but_serves () =
  (* A 3-pivot budget cannot finish any LP: the ladder must leave the
     tailored rung yet every request is still answered, certified. *)
  let budget () = Lp.Budget.make ~max_pivots:3 () in
  En.with_engine ~domains:1 ~budget (fun e ->
      let r = req ~n:5 ~input:1 ~count:64 () in
      let rs = En.run_batch ~seed:5 e [| r |] in
      Alcotest.(check bool) "rung degraded" true (rs.(0).En.rung <> Minimax.Serve.Tailored);
      Alcotest.(check int) "still served" 64 (Array.length rs.(0).En.samples);
      match En.artifact e r with
      | None -> Alcotest.fail "degraded artifact not cached"
      | Some a ->
        Alcotest.(check bool) "degraded release still certified" true (a.Co.certificates <> []))

let test_cache_fault_bypasses () =
  let clean, _ = batch ~domains:1 () in
  let plan = F.plan [ { F.site = "engine.cache"; hits = 1; action = F.Trip } ] in
  let faulted, stats = batch ~domains:1 ~plan () in
  Alcotest.(check bool) "tripped request bypassed the cache" true faulted.(0).En.cache_bypassed;
  Alcotest.(check bool) "tripped request not a hit" false faulted.(0).En.cache_hit;
  Alcotest.(check bool) "next request untouched" false faulted.(1).En.cache_bypassed;
  (* the bypassed compile never entered the cache, so request 1 is now
     the first insertion of that consumer *)
  Alcotest.(check int) "misses" 2 stats.Ca.misses;
  Alcotest.(check int) "hits" 1 stats.Ca.hits;
  Alcotest.(check bool) "faulted batch output identical" true (samples faulted = samples clean)

let test_worker_fault_retries_inline () =
  let clean, _ = batch ~domains:1 () in
  let plan = F.plan [ { F.site = "engine.worker"; hits = 2; action = F.Trip } ] in
  let faulted, _ = batch ~domains:1 ~plan () in
  Alcotest.(check bool) "retried batch output identical" true (samples faulted = samples clean);
  (* a non-fault exception from a job is not swallowed *)
  Alcotest.check_raises "real failures re-raise" (Failure "job 1 broke") (fun () ->
      Po.with_pool ~domains:1 (fun p ->
          let failures =
            Po.run p ~jobs:(fun i -> if i = 1 then failwith "job 1 broke") ~count:3
          in
          List.iter (fun (_, e) -> raise e) failures))

let test_engine_shutdown () =
  let e = En.create ~domains:1 () in
  En.shutdown e;
  En.shutdown e;
  Alcotest.check_raises "batch after shutdown"
    (Invalid_argument "Engine.run_batch: engine is shut down") (fun () ->
      ignore (En.run_batch e [| req () |]))

(* --------------------------------------------------------------- *)
(* Canonical-key properties                                          *)
(* --------------------------------------------------------------- *)

(* A random well-formed request: every loss family, every side-info
   shape, alpha strictly inside (0,1). *)
let arb_request =
  let gen =
    QCheck.Gen.(
      int_range 2 6 >>= fun n ->
      int_range 1 9 >>= fun num ->
      int_range 1 5 >>= fun dd ->
      let alpha = q num (num + dd) in
      oneof
        [
          return Rq.Absolute;
          return Rq.Squared;
          return Rq.Zero_one;
          map (fun w -> Rq.Deadzone w) (int_range 0 3);
          map (fun c -> Rq.Capped c) (int_range 1 7);
          map2 (fun o u -> Rq.Asymmetric (q o 2, q u 3)) (int_range 1 4) (int_range 1 4);
        ]
      >>= fun loss ->
      oneof
        [
          return Rq.Full;
          map (fun k -> Rq.At_least k) (int_range 0 n);
          map (fun k -> Rq.At_most k) (int_range 0 n);
          map2
            (fun lo d -> Rq.Interval (lo, min n (lo + d)))
            (int_range 0 n) (int_range 0 n);
          map (fun ms -> Rq.Members ms) (list_size (int_range 1 (n + 1)) (int_range 0 n));
        ]
      >>= fun side ->
      int_range 0 n >>= fun input ->
      int_range 1 4 >>= fun count ->
      match Rq.make ~input ~count ~n ~alpha ~loss ~side () with
      | Ok r -> return r
      | Error m -> failwith ("generator built an invalid request: " ^ m))
  in
  QCheck.make ~print:(fun r -> Rq.to_line r) gen

(* Rebuild a request from the canonical key's own rendering — the
   key grammar is parseable by the same wire-facing spec parsers. *)
let request_of_key key =
  let strip p s = String.sub s (String.length p) (String.length s - String.length p) in
  match String.split_on_char ';' key with
  | [ nf; af; lf; sf ] -> (
    let n = int_of_string (strip "n=" nf) in
    let alpha =
      match Rat.of_string_opt (strip "a=" af) with
      | Some a -> a
      | None -> Alcotest.failf "key %S has an unparseable alpha" key
    in
    let spec name = function
      | Ok v -> v
      | Error m -> Alcotest.failf "key %S has an unparseable %s: %s" key name m
    in
    let loss = spec "loss" (Rq.loss_spec_of_string (strip "l=" lf)) in
    let side = spec "side" (Rq.side_spec_of_string (strip "s=" sf)) in
    match Rq.make ~n ~alpha ~loss ~side () with
    | Ok r -> r
    | Error m -> Alcotest.failf "key %S does not rebuild: %s" key m)
  | _ -> Alcotest.failf "key %S is not n=..;a=..;l=..;s=.." key

let prop name count arb f =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let key_properties =
  [
    (* parse → canonicalize → reparse is a fixpoint: rebuilding a
       request from its canonical key yields the same key, so
       canonicalization is idempotent and the key grammar round-trips
       through the wire-facing spec parsers. *)
    prop "canonical key is a reparse fixpoint" 200 arb_request (fun r ->
        let k = key r in
        String.equal k (key (request_of_key k)));
    (* The wire line round trip also preserves the key: serving a
       request through to_line/of_line can never split a cache
       entry. *)
    prop "to_line/of_line preserves the canonical key" 200 arb_request (fun r ->
        match Rq.of_line (Rq.to_line r) with
        | Ok (Rq.Query w) -> String.equal (key r) (key w.Rq.request)
        | Ok (Rq.Stats _ | Rq.Session _) | Error _ -> false);
  ]

let () =
  Alcotest.run "engine"
    [
      ( "request",
        [
          Alcotest.test_case "canonical key collapses" `Quick test_canonical_collapses;
          Alcotest.test_case "line round trip" `Quick test_line_round_trip;
          Alcotest.test_case "line defaults and errors" `Quick test_line_defaults_and_errors;
        ] );
      ("properties", key_properties);
      ( "cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "peek is neutral" `Quick test_cache_peek_neutral;
          Alcotest.test_case "overwrite and validation" `Quick test_cache_overwrite_and_validation;
        ] );
      ( "pool",
        [
          Alcotest.test_case "inline matches domains" `Quick test_pool_inline_matches_domains;
          Alcotest.test_case "failures in index order" `Quick test_pool_collects_failures_in_order;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
        ] );
      ( "compiled",
        [
          Alcotest.test_case "compile certifies" `Slow test_compile_certifies;
          Alcotest.test_case "count=1 takes exact path" `Quick test_single_draw_takes_exact_path;
          Alcotest.test_case "draws stay in range" `Quick test_draws_stay_in_range;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism across worker counts" `Slow
            test_determinism_across_worker_counts;
          Alcotest.test_case "cache hits and stats" `Slow test_cache_hits_and_stats;
          Alcotest.test_case "artifacts certified" `Slow test_cached_artifacts_are_certified;
          Alcotest.test_case "budget degrades but serves" `Slow test_budget_degrades_but_serves;
          Alcotest.test_case "cache fault bypasses" `Slow test_cache_fault_bypasses;
          Alcotest.test_case "worker fault retries inline" `Slow test_worker_fault_retries_inline;
          Alcotest.test_case "shutdown" `Quick test_engine_shutdown;
        ] );
    ]
