(* Tests for the persistent artifact store: frame round-trips, the
   verify-on-load wall (every corruption class maps to its exact typed
   error), crash-write hygiene, and the engine tier integration that
   makes warm restarts byte-identical to cold ones. *)

module Rq = Engine.Request
module Co = Engine.Compiled
module M = Mech.Mechanism
module S = Minimax.Serve
module B = Resilience.Budget
module F = Resilience.Fault

let q = Rat.of_ints

let req ?(input = 0) ?(count = 1) ?(n = 4) ?(alpha = q 1 2) ?(loss = Rq.Absolute)
    ?(side = Rq.Full) () =
  match Rq.make ~input ~count ~n ~alpha ~loss ~side () with
  | Ok r -> r
  | Error m -> Alcotest.failf "fixture request rejected: %s" m

let compile (r : Rq.t) =
  Co.compile ~alpha:r.Rq.alpha ~key:(Rq.canonical_key r) (Rq.consumer r)

let with_store ?readonly f =
  let dir = Filename.temp_file "dpstore" "" in
  Sys.remove dir;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () ->
      match Store.open_dir ?readonly dir with
      | Ok s -> f dir s
      | Error e -> Alcotest.failf "open_dir: %s" (Store.error_to_string e))

let ok_write s c =
  match Store.write s c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write: %s" (Store.error_to_string e)

let error_name = function
  | Store.Corrupt _ -> "corrupt"
  | Store.Bad_magic -> "bad_magic"
  | Store.Stale_version _ -> "stale_version"
  | Store.Uncertified _ -> "uncertified"
  | Store.Io _ -> "io"

let check_load_error name s ~key expect =
  match Store.load s ~key with
  | Ok (Some _) -> Alcotest.failf "%s: corrupt entry was served" name
  | Ok None -> Alcotest.failf "%s: corrupt entry read as a miss" name
  | Error e -> Alcotest.(check string) name expect (error_name e)

(* --------------------------------------------------------------- *)
(* Round trips                                                      *)
(* --------------------------------------------------------------- *)

let check_artifact_equal name (a : Co.t) (b : Co.t) =
  Alcotest.(check string) (name ^ ": key") a.Co.key b.Co.key;
  Alcotest.(check bool)
    (name ^ ": matrix")
    true
    (M.matrix a.Co.served.S.mechanism = M.matrix b.Co.served.S.mechanism);
  Alcotest.(check string)
    (name ^ ": loss")
    (Rat.to_string a.Co.served.S.loss)
    (Rat.to_string b.Co.served.S.loss);
  Alcotest.(check string)
    (name ^ ": provenance")
    (S.provenance_to_string a.Co.served.S.provenance)
    (S.provenance_to_string b.Co.served.S.provenance);
  Alcotest.(check bool)
    (name ^ ": certificates")
    true
    (a.Co.certificates = b.Co.certificates)

let round_trip_cases =
  [
    ("absolute full", req ());
    ("squared n=5", req ~n:5 ~alpha:(q 1 3) ~loss:Rq.Squared ());
    ("zero-one", req ~n:3 ~alpha:(q 2 5) ~loss:Rq.Zero_one ());
    ("deadzone side", req ~n:5 ~alpha:(q 3 7) ~loss:(Rq.Deadzone 1) ~side:(Rq.At_least 2) ());
    ("capped members", req ~n:4 ~loss:(Rq.Capped 2) ~side:(Rq.Members [ 0; 2; 3 ]) ());
    ("asymmetric", req ~n:3 ~alpha:(q 1 4) ~loss:(Rq.Asymmetric (q 2 1, q 1 2)) ());
    ("single member side", req ~n:4 ~side:(Rq.Members [ 2 ]) ());
  ]

(* Property-style sweep: for a spread of consumers across every loss
   and side shape, write + load must reproduce the artifact exactly —
   same matrix, loss, provenance and certificates, in ℚ. *)
let test_round_trip () =
  with_store (fun _dir s ->
      List.iter
        (fun (name, r) ->
          let c = compile r in
          ok_write s c;
          match Store.load s ~key:c.Co.key with
          | Error e -> Alcotest.failf "%s: load: %s" name (Store.error_to_string e)
          | Ok None -> Alcotest.failf "%s: entry vanished" name
          | Ok (Some c') -> check_artifact_equal name c c')
        round_trip_cases;
      let st = Store.stats s in
      Alcotest.(check int) "writes counted" (List.length round_trip_cases) st.Store.writes;
      Alcotest.(check int) "hits counted" (List.length round_trip_cases) st.Store.hits)

let test_miss_and_keys () =
  with_store (fun _dir s ->
      (match Store.load s ~key:(Rq.canonical_key (req ())) with
      | Ok None -> ()
      | Ok (Some _) -> Alcotest.fail "empty store served an artifact"
      | Error e -> Alcotest.failf "empty store errored: %s" (Store.error_to_string e));
      let a = compile (req ()) in
      let b = compile (req ~n:5 ~loss:Rq.Squared ()) in
      ok_write s a;
      ok_write s b;
      let expect = List.sort String.compare [ a.Co.key; b.Co.key ] in
      match Store.keys s with
      | Ok ks -> Alcotest.(check (list string)) "keys sorted" expect ks
      | Error e -> Alcotest.failf "keys: %s" (Store.error_to_string e))

(* --------------------------------------------------------------- *)
(* Golden corrupt fixtures: each corruption class → its exact error  *)
(* --------------------------------------------------------------- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

(* Re-frame a (possibly tampered) payload with a valid checksum — the
   documented frame layout, reimplemented here so the test also pins
   the spec: magic, u32 BE version, u32 BE length, payload, MD5. *)
let frame ?(version = Store.format_version) payload =
  let u32 v =
    let b = Bytes.create 4 in
    Bytes.set b 0 (Char.chr ((v lsr 24) land 0xff));
    Bytes.set b 1 (Char.chr ((v lsr 16) land 0xff));
    Bytes.set b 2 (Char.chr ((v lsr 8) land 0xff));
    Bytes.set b 3 (Char.chr (v land 0xff));
    Bytes.to_string b
  in
  let body = "DPST" ^ u32 version ^ u32 (String.length payload) ^ payload in
  body ^ Digest.string body

let payload_of raw = String.sub raw 12 (String.length raw - 28)

let test_corrupt_fixtures () =
  with_store (fun _dir s ->
      let r = req () in
      let c = compile r in
      let key = c.Co.key in
      let path = Store.entry_path s ~key in
      ok_write s c;
      let pristine = read_file path in

      (* Golden fixture 1: truncated mid-payload (torn write that
         somehow hit the final name — e.g. a copied partial file). *)
      write_file path (String.sub pristine 0 (String.length pristine / 2));
      check_load_error "truncated" s ~key "corrupt";

      (* ... even truncated inside the header. *)
      write_file path (String.sub pristine 0 10);
      check_load_error "truncated header" s ~key "corrupt";

      (* Golden fixture 2: one flipped byte in the checksum trailer. *)
      let flipped = Bytes.of_string pristine in
      let last = Bytes.length flipped - 1 in
      Bytes.set flipped last (Char.chr (Char.code (Bytes.get flipped last) lxor 0x01));
      write_file path (Bytes.to_string flipped);
      check_load_error "flipped checksum byte" s ~key "corrupt";

      (* ... and one flipped byte in the payload. *)
      let flipped = Bytes.of_string pristine in
      Bytes.set flipped 40 (Char.chr (Char.code (Bytes.get flipped 40) lxor 0x10));
      write_file path (Bytes.to_string flipped);
      check_load_error "flipped payload byte" s ~key "corrupt";

      (* Golden fixture 3: wrong magic — not a dpstore frame at all. *)
      write_file path ("NOPE" ^ String.sub pristine 4 (String.length pristine - 4));
      check_load_error "wrong magic" s ~key "bad_magic";

      (* Golden fixture 4: a future format version, with a checksum
         that future writer would have computed — version wins over
         digest, so the error is typed Stale_version, not Corrupt. *)
      write_file path (frame ~version:(Store.format_version + 1) (payload_of pristine));
      (match Store.load s ~key with
      | Error (Store.Stale_version { got }) ->
        Alcotest.(check int) "future version surfaced" (Store.format_version + 1) got
      | Error e -> Alcotest.failf "future version: %s" (Store.error_to_string e)
      | Ok _ -> Alcotest.fail "future version entry was accepted");

      (* Tampered payload behind a valid checksum: a well-framed lie.
         Swapping the stored loss breaks the minimax-loss replay. *)
      let lied =
        Str.global_replace
          (Str.regexp_string "\"loss\":\"36/43\"")
          "\"loss\":\"1/2\"" (payload_of pristine)
      in
      Alcotest.(check bool) "fixture tampers the loss" true (lied <> payload_of pristine);
      write_file path (frame lied);
      check_load_error "tampered loss" s ~key "uncertified";

      (* A mechanism edit behind a valid checksum fails invariant
         replay (row sums, α-DP) before any loss comparison. *)
      let first_cell = Str.regexp "\"matrix\":\\[\\[\"[0-9/]+\"" in
      let broken =
        Str.replace_first first_cell "\"matrix\":[[\"9/10\"" (payload_of pristine)
      in
      Alcotest.(check bool) "fixture tampers the matrix" true
        (broken <> payload_of pristine);
      write_file path (frame broken);
      check_load_error "tampered matrix" s ~key "uncertified";

      (* An entry renamed onto another key's slot: filename and key
         disagree. *)
      write_file path pristine;
      let other = Rq.canonical_key (req ~n:5 ()) in
      let other_path = Store.entry_path s ~key:other in
      write_file other_path pristine;
      check_load_error "entry under wrong key" s ~key:other "corrupt";
      Sys.remove other_path;

      (* The pristine bytes still verify — the fixtures above were the
         only problem. *)
      (match Store.load s ~key with
      | Ok (Some c') -> check_artifact_equal "pristine after fixtures" c c'
      | Ok None -> Alcotest.fail "pristine entry vanished"
      | Error e -> Alcotest.failf "pristine entry refused: %s" (Store.error_to_string e));
      let st = Store.stats s in
      Alcotest.(check int) "every refusal counted" 9 st.Store.corrupt)

(* --------------------------------------------------------------- *)
(* Write hygiene                                                    *)
(* --------------------------------------------------------------- *)

let test_readonly_refuses_write () =
  with_store (fun dir s ->
      let c = compile (req ()) in
      ok_write s c;
      match Store.open_dir ~readonly:true dir with
      | Error e -> Alcotest.failf "readonly open: %s" (Store.error_to_string e)
      | Ok ro -> (
        Alcotest.(check bool) "readonly flag" true (Store.readonly ro);
        (match Store.write ro c with
        | Error (Store.Io _) -> ()
        | Error e -> Alcotest.failf "readonly write: %s" (Store.error_to_string e)
        | Ok () -> Alcotest.fail "readonly store accepted a write");
        match Store.load ro ~key:c.Co.key with
        | Ok (Some _) -> ()
        | _ -> Alcotest.fail "readonly store cannot load"))

let test_readonly_requires_dir () =
  match Store.open_dir ~readonly:true "/nonexistent/dpstore-test" with
  | Error (Store.Io _) -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (Store.error_to_string e)
  | Ok _ -> Alcotest.fail "readonly open invented a directory"

let test_degraded_not_written () =
  with_store (fun _dir s ->
      let r = req ~n:5 () in
      let budget = B.make ~max_pivots:1 () in
      let c = Co.compile ~budget ~alpha:r.Rq.alpha ~key:(Rq.canonical_key r) (Rq.consumer r) in
      Alcotest.(check bool) "fixture is degraded" true
        (c.Co.served.S.provenance.S.attempts <> []);
      ok_write s c;
      Alcotest.(check bool) "no entry on disk" false
        (Sys.file_exists (Store.entry_path s ~key:c.Co.key));
      Alcotest.(check int) "no write counted" 0 (Store.stats s).Store.writes)

let test_temp_sweep () =
  with_store (fun dir s ->
      let c = compile (req ()) in
      ok_write s c;
      (* A mid-write kill leaves a temp file; reopen sweeps it and the
         real entry survives. *)
      let stale = Store.entry_path s ~key:c.Co.key ^ ".tmp.9999" in
      write_file stale "half a frame";
      (match Store.reopen s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reopen: %s" (Store.error_to_string e));
      Alcotest.(check bool) "temp swept" false (Sys.file_exists stale);
      Alcotest.(check bool) "entry survives" true
        (Sys.file_exists (Store.entry_path s ~key:c.Co.key));
      (* open_dir sweeps too. *)
      write_file stale "half a frame";
      (match Store.open_dir dir with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "open_dir resweep: %s" (Store.error_to_string e));
      Alcotest.(check bool) "temp swept at open" false (Sys.file_exists stale))

let test_load_all () =
  with_store (fun _dir s ->
      let a = compile (req ()) in
      let b = compile (req ~n:5 ~loss:Rq.Squared ()) in
      ok_write s a;
      ok_write s b;
      (* One corrupt neighbor must not poison the preload. *)
      let junk = Filename.concat (Store.dir s) "junk.dpa" in
      write_file junk "not a frame at all, and long enough to parse";
      let loaded, refused = Store.load_all s in
      Alcotest.(check (list string)) "verified artifacts in key order"
        (List.sort String.compare [ a.Co.key; b.Co.key ])
        (List.map (fun (c : Co.t) -> c.Co.key) loaded);
      match refused with
      | [ (name, e) ] ->
        Alcotest.(check string) "refused file" "junk.dpa" name;
        Alcotest.(check string) "refused error" "bad_magic" (error_name e)
      | l -> Alcotest.failf "expected one refusal, got %d" (List.length l))

(* --------------------------------------------------------------- *)
(* Fault sites                                                      *)
(* --------------------------------------------------------------- *)

let test_fault_sites () =
  with_store (fun _dir s ->
      let c = compile (req ()) in
      (* store.write: the entry is simply not persisted. *)
      F.with_plan
        (F.plan [ { F.site = "store.write"; hits = 1; action = F.Trip } ])
        (fun () ->
          match Store.write s c with
          | Error (Store.Io _) -> ()
          | Error e -> Alcotest.failf "write fault: %s" (Store.error_to_string e)
          | Ok () -> Alcotest.fail "write fault did not surface");
      Alcotest.(check bool) "no entry after write fault" false
        (Sys.file_exists (Store.entry_path s ~key:c.Co.key));
      ok_write s c;
      (* store.read: the probe degrades to Io (a miss at tier level). *)
      F.with_plan
        (F.plan [ { F.site = "store.read"; hits = 1; action = F.Trip } ])
        (fun () ->
          match Store.load s ~key:c.Co.key with
          | Error (Store.Io _) -> ()
          | Error e -> Alcotest.failf "read fault: %s" (Store.error_to_string e)
          | Ok _ -> Alcotest.fail "read fault did not surface");
      (* store.verify: the entry is refused as uncertified. *)
      F.with_plan
        (F.plan [ { F.site = "store.verify"; hits = 1; action = F.Trip } ])
        (fun () ->
          match Store.load s ~key:c.Co.key with
          | Error (Store.Uncertified { rule }) ->
            Alcotest.(check string) "verify fault rule" "injected" rule
          | Error e -> Alcotest.failf "verify fault: %s" (Store.error_to_string e)
          | Ok _ -> Alcotest.fail "verify fault did not surface");
      (* And with no plan, the entry still serves. *)
      match Store.load s ~key:c.Co.key with
      | Ok (Some _) -> ()
      | _ -> Alcotest.fail "entry unusable after fault drills")

(* --------------------------------------------------------------- *)
(* Engine tier integration                                          *)
(* --------------------------------------------------------------- *)

let test_engine_tier_round_trip () =
  with_store (fun _dir s ->
      let requests = Array.of_list (List.map snd round_trip_cases) in
      let cold =
        Engine.with_engine ~domains:1 ~tier:(Store.tier s) (fun e ->
            Engine.run_batch ~seed:7 e requests)
      in
      Array.iter
        (fun (r : Engine.response) ->
          Alcotest.(check bool) "cold run compiles" false r.Engine.store_hit)
        cold;
      (* A fresh engine over the same store: every request is a store
         hit, and the samples are byte-identical. *)
      let warm =
        Engine.with_engine ~domains:1 ~tier:(Store.tier s) (fun e ->
            Engine.run_batch ~seed:7 e requests)
      in
      Array.iteri
        (fun i (w : Engine.response) ->
          let c = cold.(i) in
          Alcotest.(check bool) ("warm store hit " ^ string_of_int i) true w.Engine.store_hit;
          Alcotest.(check (array int)) ("warm samples " ^ string_of_int i) c.Engine.samples
            w.Engine.samples;
          Alcotest.(check string) ("warm loss " ^ string_of_int i)
            (Rat.to_string c.Engine.loss) (Rat.to_string w.Engine.loss))
        warm;
      (* And a storeless engine agrees byte for byte — the tier can
         accelerate, never alter. *)
      let plain =
        Engine.with_engine ~domains:1 (fun e -> Engine.run_batch ~seed:7 e requests)
      in
      Array.iteri
        (fun i (p : Engine.response) ->
          Alcotest.(check (array int)) ("storeless samples " ^ string_of_int i)
            p.Engine.samples warm.(i).Engine.samples)
        plain)

let test_engine_tier_corrupt_degrades () =
  with_store (fun _dir s ->
      let r = req () in
      let c = compile r in
      ok_write s c;
      (* Smash the entry; the tier must fall through to compile. *)
      let path = Store.entry_path s ~key:c.Co.key in
      write_file path "garbage that is long enough to not be a frame";
      let resp =
        Engine.with_engine ~domains:1 ~tier:(Store.tier s) (fun e ->
            (Engine.run_batch ~seed:7 e [| r |]).(0))
      in
      Alcotest.(check bool) "corrupt entry is not a store hit" false resp.Engine.store_hit;
      let plain =
        Engine.with_engine ~domains:1 (fun e -> (Engine.run_batch ~seed:7 e [| r |]).(0))
      in
      Alcotest.(check (array int)) "bytes match storeless run" plain.Engine.samples
        resp.Engine.samples;
      (* The healthy compile was written back over the garbage. *)
      match Store.load s ~key:c.Co.key with
      | Ok (Some c') -> check_artifact_equal "write-back healed the entry" c c'
      | _ -> Alcotest.fail "write-back did not heal the corrupt entry")

let () =
  Alcotest.run "store"
    [
      ( "round-trip",
        [
          Alcotest.test_case "artifact round trip (all loss/side shapes)" `Quick
            test_round_trip;
          Alcotest.test_case "miss on absent key; sorted keys" `Quick test_miss_and_keys;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "golden corrupt fixtures → typed errors" `Quick
            test_corrupt_fixtures;
          Alcotest.test_case "load_all skips corrupt neighbors" `Quick test_load_all;
        ] );
      ( "write-hygiene",
        [
          Alcotest.test_case "readonly refuses writes" `Quick test_readonly_refuses_write;
          Alcotest.test_case "readonly requires the directory" `Quick
            test_readonly_requires_dir;
          Alcotest.test_case "degraded releases are not persisted" `Quick
            test_degraded_not_written;
          Alcotest.test_case "stale temp files are swept" `Quick test_temp_sweep;
        ] );
      ( "faults",
        [ Alcotest.test_case "store.read/write/verify sites" `Quick test_fault_sites ] );
      ( "engine-tier",
        [
          Alcotest.test_case "cold → warm byte identity" `Quick test_engine_tier_round_trip;
          Alcotest.test_case "corrupt entry degrades to compile" `Quick
            test_engine_tier_corrupt_degrades;
        ] );
    ]
