(* Tests for the dplint analyzer (lib/check): positive certificates for
   the paper's matrices, exact witnesses for hand-crafted violations,
   and the source-lint scanner's pattern discrimination. *)

module I = Check.Invariants
module D = Check.Diagnostic
module L = Check.Lint

let q = Rat.of_ints

let rat = Alcotest.testable Rat.pp Rat.equal

let geo n alpha = Mech.Mechanism.matrix (Mech.Geometric.matrix ~n ~alpha)

let report_for rule reports =
  match List.find_opt (fun (r : I.report) -> r.rule = rule) reports with
  | Some r -> r
  | None -> Alcotest.failf "no report for rule %s" rule

let witness_rat key (d : D.t) =
  match List.assoc_opt key d.witness with
  | Some v -> (
    match Rat.of_string_opt v with
    | Some r -> r
    | None -> Alcotest.failf "witness %s=%S is not rational" key v)
  | None -> Alcotest.failf "no witness %s" key

(* ------------------------------------------------------------------ *)
(* Positive certificates                                               *)
(* ------------------------------------------------------------------ *)

let test_geometric_certified () =
  List.iter
    (fun (n, alpha) ->
      let reports = I.check_mech ~alpha (geo n alpha) in
      Alcotest.(check bool)
        (Printf.sprintf "G(%d,%s) certified" n (Rat.to_string alpha))
        true (I.all_passed reports);
      (* Every pass must carry a certificate. *)
      List.iter
        (fun (r : I.report) ->
          Alcotest.(check bool) ("certificate for " ^ r.rule) true (r.certificate <> None))
        reports;
      (* The DP certificate's binding slack is exact: G(n,alpha)
         supports exactly its own alpha, no more. *)
      let dp = report_for "alpha-dp" reports in
      match dp.certificate with
      | None -> Alcotest.fail "no alpha-dp certificate"
      | Some c ->
        Alcotest.check rat "privacy level = alpha" alpha
          (match Rat.of_string_opt (List.assoc "privacy_level" c.tight) with
           | Some r -> r
           | None -> Alcotest.fail "bad privacy_level"))
    [ (2, q 1 2); (4, q 1 3); (5, q 2 3); (7, q 3 5) ]

let test_lemma3_certified () =
  List.iter
    (fun (n, a, b) ->
      let r = I.lemma3_transition ~n ~alpha:a ~beta:b in
      Alcotest.(check bool)
        (Printf.sprintf "T_{%s,%s} at n=%d stochastic" (Rat.to_string a) (Rat.to_string b) n)
        true (I.passed r))
    [ (2, q 1 4, q 1 2); (3, q 1 4, q 1 2); (5, q 1 3, q 2 3); (4, q 1 2, q 1 2) ]

let test_lemma3_rejects_backwards () =
  Alcotest.check_raises "alpha > beta"
    (Invalid_argument "Invariants.lemma3_transition: need alpha <= beta")
    (fun () -> ignore (I.lemma3_transition ~n:3 ~alpha:(q 1 2) ~beta:(q 1 4)))

let test_certificates_replayable () =
  let m = geo 3 (q 1 2) in
  (* Same matrix, same digest: certificates are tied to content. *)
  Alcotest.(check string) "digest deterministic" (I.matrix_digest m) (I.matrix_digest (geo 3 (q 1 2)));
  let m' = geo 3 (q 1 3) in
  Alcotest.(check bool) "digest separates" false (I.matrix_digest m = I.matrix_digest m')

(* ------------------------------------------------------------------ *)
(* Exact witnesses for violations                                      *)
(* ------------------------------------------------------------------ *)

let test_row_sum_witness () =
  let m = [| [| q 1 2; q 1 4 |]; [| q 1 4; q 3 4 |] |] in
  let r = I.row_stochastic m in
  Alcotest.(check bool) "fails" false (I.passed r);
  Alcotest.(check bool) "no certificate on failure" true (r.certificate = None);
  match r.diagnostics with
  | [ d ] ->
    (match d.location with
     | D.Matrix_row { row } -> Alcotest.(check int) "row" 0 row
     | _ -> Alcotest.fail "expected a row location");
    Alcotest.check rat "row sum witness" (q 3 4) (witness_rat "row_sum" d)
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_negative_entry_witness () =
  let m = [| [| q 3 2; q (-1) 2 |]; [| q 1 2; q 1 2 |] |] in
  let r = I.row_stochastic m in
  let neg =
    List.find
      (fun (d : D.t) -> List.mem_assoc "entry" d.witness)
      r.diagnostics
  in
  (match neg.location with
   | D.Matrix_cell { row; col } ->
     Alcotest.(check int) "row" 0 row;
     Alcotest.(check int) "col" 1 col
   | _ -> Alcotest.fail "expected a cell location");
  Alcotest.check rat "entry witness" (q (-1) 2) (witness_rat "entry" neg)

let test_dp_witness () =
  (* Perturbed G(2,1/2): row 1 becomes [1/6; 1/2; 1/3]. The first
     violated Definition-2 constraint is rows 0/1, column 0:
     alpha*x(0,0) = 1/2 * 2/3 = 1/3 > 1/6 = x(1,0). *)
  let m =
    [|
      [| q 2 3; q 2 9; q 1 9 |];
      [| q 1 6; q 1 2; q 1 3 |];
      [| q 1 9; q 2 9; q 2 3 |];
    |]
  in
  let r = I.alpha_dp ~alpha:(q 1 2) m in
  Alcotest.(check bool) "fails" false (I.passed r);
  let d = List.hd r.diagnostics in
  (match d.location with
   | D.Adjacent_pair { row; col } ->
     Alcotest.(check int) "row" 0 row;
     Alcotest.(check int) "col" 0 col
   | _ -> Alcotest.fail "expected an adjacent-pair location");
  Alcotest.check rat "lhs = alpha*x_i" (q 1 3) (witness_rat "lhs" d);
  Alcotest.check rat "rhs = x_succ" (q 1 6) (witness_rat "rhs" d)

let test_appendix_b_witness () =
  (* The paper's Appendix-B counterexample: 1/2-DP yet not derivable.
     The known witness (also asserted in test_mech) is column 1,
     middle row 1, slack -1/12. *)
  let m = Mech.Mechanism.matrix (Mech.Derivability.appendix_b_mechanism ()) in
  let alpha = q 1 2 in
  let reports = I.check_mech ~alpha m in
  Alcotest.(check bool) "row-stochastic" true (I.passed (report_for "row-stochastic" reports));
  Alcotest.(check bool) "alpha-dp holds" true (I.passed (report_for "alpha-dp" reports));
  let der = report_for "derivable" reports in
  Alcotest.(check bool) "derivable fails" false (I.passed der);
  let tr =
    List.find
      (fun (d : D.t) ->
        match d.location with D.Column_triple { col = 1; mid = 1 } -> true | _ -> false)
      der.diagnostics
  in
  Alcotest.check rat "slack witness" (q (-1) 12) (witness_rat "slack" tr);
  (* The constructive cross-check must agree. *)
  Alcotest.(check bool) "factorization fails" false (I.passed (report_for "factorization" reports))

let test_monotone_loss () =
  Alcotest.(check bool) "absolute is well-formed" true
    (I.passed (I.monotone_loss ~name:"absolute" ~n:6 (fun i r -> q (abs (i - r)) 1)));
  (* Loss that *rewards* distance: flagged with the offending pair. *)
  let bad i r = if i = r then Rat.zero else q 1 (abs (i - r)) in
  let r = I.monotone_loss ~name:"inverse" ~n:4 bad in
  Alcotest.(check bool) "inverse loss rejected" false (I.passed r);
  let d =
    List.find (fun (d : D.t) -> List.mem_assoc "near_loss" d.witness) r.diagnostics
  in
  Alcotest.(check bool) "witness has far_loss" true (List.mem_assoc "far_loss" d.witness)

(* ------------------------------------------------------------------ *)
(* JSON round-trips (shape smoke tests)                                *)
(* ------------------------------------------------------------------ *)

let test_json_shape () =
  let reports = I.check_mech ~alpha:(q 1 2) (geo 2 (q 1 2)) in
  let s = Check.Json.to_string (I.summary_to_json reports) in
  Alcotest.(check bool) "mentions tool" true
    (Str.string_match (Str.regexp ".*\"tool\":\"dplint\".*") s 0);
  Alcotest.(check bool) "ok true" true
    (Str.string_match (Str.regexp ".*\"ok\":true.*") s 0);
  let bad = I.row_stochastic [| [| q 1 2 |] |] in
  let s_bad = Check.Json.to_string (I.report_to_json bad) in
  Alcotest.(check bool) "ok false" true
    (Str.string_match (Str.regexp ".*\"ok\":false.*") s_bad 0)

let test_json_escape () =
  Alcotest.(check string) "escape" "a\\\"b\\\\c\\nd" (Check.Json.escape "a\"b\\c\nd")

(* ------------------------------------------------------------------ *)
(* Source lint                                                         *)
(* ------------------------------------------------------------------ *)

let rules ds = List.map (fun (d : D.t) -> d.rule) ds

let test_lint_catch_all () =
  let findings = L.scan_source ~file:"t.ml" "let f x = try g x with _ -> 0\n" in
  Alcotest.(check (list string)) "try flagged" [ "lint/catch-all" ] (rules findings);
  (* match with a default arm is idiomatic, not a swallowed error. *)
  let ok = L.scan_source ~file:"t.ml" "let f x = match x with Some y -> y | _ -> 0\n" in
  Alcotest.(check (list string)) "match not flagged" [] (rules ok);
  (* with-arm position is line-accurate *)
  let multi = L.scan_source ~file:"t.ml" "let f x =\n  try g x\n  with _ -> 0\n" in
  (match multi with
   | [ d ] -> (
     match d.location with
     | D.Source_line { line; _ } -> Alcotest.(check int) "line" 3 line
     | _ -> Alcotest.fail "expected source location")
   | _ -> Alcotest.fail "expected one finding")

let test_lint_obj_magic () =
  let findings = L.scan_source ~file:"t.ml" "let y = Obj.magic x\n" in
  Alcotest.(check (list string)) "flagged" [ "lint/obj-magic" ] (rules findings);
  let ok = L.scan_source ~file:"t.ml" "(* Obj.magic would be bad *) let objx = 1\n" in
  Alcotest.(check (list string)) "comment not flagged" [] (rules ok)

let test_lint_float_eq () =
  let flagged s = rules (L.scan_source ~file:"t.ml" s) in
  Alcotest.(check (list string)) "if x = lit" [ "lint/float-eq" ]
    (flagged "let f x = if x = 0.5 then 1 else 2\n");
  Alcotest.(check (list string)) "lit = x" [ "lint/float-eq" ]
    (flagged "let f x = 0.5 = x\n");
  Alcotest.(check (list string)) "<> lit" [ "lint/float-eq" ]
    (flagged "let f x = x <> 1e-9\n");
  Alcotest.(check (list string)) "binder exempt" [] (flagged "let eps = 1e-9\n");
  Alcotest.(check (list string)) "annotated binder exempt" []
    (flagged "let eps : float = 0.5\n");
  Alcotest.(check (list string)) "optional arg exempt" []
    (flagged "let f ?(eps = 1e-9) x = x +. eps\n");
  Alcotest.(check (list string)) "record field exempt" []
    (flagged "let d = { mass = 0.5; tag = 1 }\n");
  Alcotest.(check (list string)) "<= not flagged" []
    (flagged "let f x = x <= 0.5\n");
  Alcotest.(check (list string)) "int compare not flagged" []
    (flagged "let f x = x = 5\n")

let test_lint_print_stdout () =
  let flagged ?ban_stdout s = rules (L.scan_source ?ban_stdout ~file:"t.ml" s) in
  Alcotest.(check (list string)) "print_endline flagged" [ "lint/print-stdout" ]
    (flagged ~ban_stdout:true "let f () = print_endline x\n");
  Alcotest.(check (list string)) "Printf.printf flagged" [ "lint/print-stdout" ]
    (flagged ~ban_stdout:true "let f () = Printf.printf \"%d\" 1\n");
  Alcotest.(check (list string)) "Format.printf flagged" [ "lint/print-stdout" ]
    (flagged ~ban_stdout:true "let f () = Format.printf \"x\"\n");
  (* sprintf/eprintf do not touch stdout *)
  Alcotest.(check (list string)) "sprintf not flagged" []
    (flagged ~ban_stdout:true "let s = Printf.sprintf \"%d\" 1\nlet () = Printf.eprintf \"e\"\n");
  (* off by default, and comments never trip the scanner *)
  Alcotest.(check (list string)) "off by default" []
    (flagged "let f () = print_endline x\n");
  Alcotest.(check (list string)) "comment not flagged" []
    (flagged ~ban_stdout:true "(* print_endline would be rude *) let x = 1\n")
(* The report/obs tree-level exemption is witnessed by
   [test_lint_own_tree_clean]: lib/report prints through its sinks and
   scan_roots bans stdout everywhere else under lib/. *)

let test_lint_assert_false () =
  let flagged ?ban_assert s = rules (L.scan_source ?ban_assert ~file:"t.ml" s) in
  Alcotest.(check (list string)) "bare assert false flagged" [ "lint/assert-false" ]
    (flagged ~ban_assert:true "let f = function Some x -> x | None -> assert false\n");
  (* a sibling comment citing the invariant exempts the arm *)
  Alcotest.(check (list string)) "comment on same line exempt" []
    (flagged ~ban_assert:true
       "let f = function Some x -> x | None -> assert false (* caller checked *)\n");
  Alcotest.(check (list string)) "comment on previous line exempt" []
    (flagged ~ban_assert:true
       "let f = function\n  | Some x -> x\n  (* unreachable: g never returns None *)\n  | None -> assert false\n");
  (* assert with a real condition is fine, and the rule is off by default *)
  Alcotest.(check (list string)) "assert cond not flagged" []
    (flagged ~ban_assert:true "let f x = assert (x > 0); x\n");
  Alcotest.(check (list string)) "off by default" []
    (flagged "let f = function Some x -> x | None -> assert false\n")

let test_lint_strip () =
  (* Nested comments, strings inside comments, char literals. *)
  let s = L.strip "a (* one (* two *) \"*)\" still *) b \"lit\" 'c' '\\n' 'a" in
  Alcotest.(check bool) "comment gone" false
    (Str.string_match (Str.regexp ".*two.*") s 0);
  Alcotest.(check bool) "string gone" false
    (Str.string_match (Str.regexp ".*lit.*") s 0);
  Alcotest.(check bool) "code kept" true
    (Str.string_match (Str.regexp "a .* b .*") s 0);
  (* newlines survive so line numbers stay accurate *)
  let src = "x\n(* c1\nc2 *)\ny = 0.5 = z\n" in
  let stripped = L.strip src in
  Alcotest.(check int) "newlines preserved"
    (String.length (String.concat "" (List.map (fun _ -> "\n") (String.split_on_char '\n' src))) - 1)
    (List.length (String.split_on_char '\n' stripped) - 1)

let test_lint_own_tree_clean () =
  (* The analyzer must accept the repository it guards (the @lint
     alias enforces this at build time; keep a test-level witness). *)
  let root = ".." in
  if Sys.file_exists (Filename.concat root "lib") then begin
    let diags = L.scan_roots [ Filename.concat root "lib" ] in
    List.iter (fun d -> Format.eprintf "%a@." D.pp d) diags;
    Alcotest.(check int) "lib clean" 0 (List.length diags)
  end

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "certificates",
        [
          Alcotest.test_case "geometric certified" `Quick test_geometric_certified;
          Alcotest.test_case "lemma3 certified" `Quick test_lemma3_certified;
          Alcotest.test_case "lemma3 rejects backwards" `Quick test_lemma3_rejects_backwards;
          Alcotest.test_case "digest replayable" `Quick test_certificates_replayable;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "row sum" `Quick test_row_sum_witness;
          Alcotest.test_case "negative entry" `Quick test_negative_entry_witness;
          Alcotest.test_case "alpha-dp" `Quick test_dp_witness;
          Alcotest.test_case "appendix B" `Quick test_appendix_b_witness;
          Alcotest.test_case "monotone loss" `Quick test_monotone_loss;
        ] );
      ( "json",
        [
          Alcotest.test_case "shape" `Quick test_json_shape;
          Alcotest.test_case "escape" `Quick test_json_escape;
        ] );
      ( "lint",
        [
          Alcotest.test_case "catch-all" `Quick test_lint_catch_all;
          Alcotest.test_case "obj-magic" `Quick test_lint_obj_magic;
          Alcotest.test_case "float-eq" `Quick test_lint_float_eq;
          Alcotest.test_case "print-stdout" `Quick test_lint_print_stdout;
          Alcotest.test_case "assert-false" `Quick test_lint_assert_false;
          Alcotest.test_case "strip" `Quick test_lint_strip;
          Alcotest.test_case "own tree clean" `Quick test_lint_own_tree_clean;
        ] );
    ]
