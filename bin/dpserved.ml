(* dpserved — the TCP serving daemon.

   A thin shell over Minimax_dp.Server: parse flags into a config,
   print the bound address (port 0 picks an ephemeral port, so scripts
   parse this line), serve until SIGINT/SIGTERM, then drain — every
   admitted request is answered and flushed before exit. A second
   signal while draining exits immediately.

   Signals: SIGINT/SIGTERM start the drain. SIGHUP means "flush
   write-backs and reopen the store directory" — with --store the
   handler re-validates the directory and sweeps stale temp files
   (write-backs are synchronous, so there is never anything buffered
   to flush beyond what the kernel already has); without --store it is
   a documented no-op. Either way SIGHUP never interrupts serving. *)

open Cmdliner
module Server = Minimax_dp.Server
module Store = Minimax_dp.Store
module Obs = Minimax_dp.Obs

let host_arg =
  let doc = "Bind address." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port; 0 picks an ephemeral port (printed at startup)." in
  Arg.(value & opt int 0 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let workers_arg =
  let doc =
    "Worker domains for the sampling pool (1 = inline fallback; default: the runtime's \
     recommendation). Response bytes are identical for every setting."
  in
  Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"W" ~doc)

let cache_arg =
  let doc = "Mechanism-cache capacity (compiled artifacts kept, LRU-evicted beyond it)." in
  Arg.(value & opt int 64 & info [ "cache" ] ~docv:"CAP" ~doc)

let queue_arg =
  let doc =
    "Admission-control bound: requests admitted but not yet dispatched. Beyond it new \
     requests get a typed 'overloaded' response immediately."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"Q" ~doc)

let deadline_arg =
  let doc =
    "Per-connection wall-clock window, ms: compiles degrade against it, and requests \
     arriving after it expires get 'deadline_exceeded'."
  in
  Arg.(value & opt (some int) None & info [ "conn-deadline-ms" ] ~docv:"MS" ~doc)

let pivots_arg =
  let doc = "Per-connection simplex pivot budget." in
  Arg.(value & opt (some int) None & info [ "max-pivots" ] ~docv:"K" ~doc)

let bits_arg =
  let doc = "Per-connection ceiling on pivot-coefficient bit sizes." in
  Arg.(value & opt (some int) None & info [ "max-bits" ] ~docv:"B" ~doc)

let seed_arg =
  let doc = "Seed for request lines that carry no seed= field." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let store_arg =
  let doc =
    "Persistent artifact store directory (created if absent). Compiled mechanisms are \
     written back as crash-safe checksummed frames and re-verified through the full \
     invariant replay before any warm restart serves them."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let preload_arg =
  let doc =
    "Verify-and-load every store entry into the memory cache before accepting \
     connections (refused entries are reported on stderr and skipped). Requires \
     --store."
  in
  Arg.(value & flag & info [ "preload" ] ~doc)

let store_readonly_arg =
  let doc =
    "Open the store read-only: probes serve verified entries but nothing is written \
     back and the directory is never modified. Requires --store."
  in
  Arg.(value & flag & info [ "store-readonly" ] ~doc)

let session_store_arg =
  let doc =
    "Durable session checkpoint file (created on first write). Privacy-budget ledgers \
     and epoch counters are persisted as a crash-safe checksummed frame after every \
     mutation and verified on load, so a warm restart resumes budgets with zero \
     double-spend; a checkpoint that fails verification is a refusal to start."
  in
  Arg.(value & opt (some string) None & info [ "session-store" ] ~docv:"FILE" ~doc)

let no_obs_arg =
  let doc =
    "Disable telemetry (no recorder installed): v=1 op=stats answers with zeros and \
     every instrumentation site collapses to a single ref read. Served bytes are \
     identical either way."
  in
  Arg.(value & flag & info [ "no-obs" ] ~doc)

let run host port workers cache queue deadline pivots bits seed store_dir preload
    store_readonly session_store no_obs =
  if (preload || store_readonly) && store_dir = None then
    `Error (true, "--preload and --store-readonly require --store DIR")
  else
    let store =
      match store_dir with
      | None -> Ok None
      | Some dir -> (
        match Store.open_dir ~readonly:store_readonly dir with
        | Ok s -> Ok (Some s)
        | Error e -> Error (Store.error_to_string e))
    in
    match store with
    | Error msg -> `Error (false, Printf.sprintf "cannot open store: %s" msg)
    | Ok store ->
      let config =
        {
          Server.host;
          port;
          domains = workers;
          cache_capacity = cache;
          queue_capacity = queue;
          conn_deadline_ms = deadline;
          max_pivots = pivots;
          max_bits = bits;
          default_seed = seed;
          tier = Option.map Store.tier store;
          session_store;
        }
      in
      (* Telemetry is on by default: the recorder is what op=stats reads.
         Sampling determinism never depends on it, so --no-obs only trades
         the stats/trace plane for a slightly shorter hot path. *)
      if not no_obs then Obs.set_current (Some (Obs.create ()));
      (match Server.create ~config () with
      | exception Unix.Unix_error (e, _, _) ->
        `Error
          (false, Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message e))
      | exception Invalid_argument msg -> `Error (false, msg)
      | t ->
        (match store with
        | Some s when preload ->
          let artifacts, refused = Store.load_all s in
          List.iter
            (fun (name, e) ->
              Printf.eprintf "dpserved: store entry %s refused: %s\n%!" name
                (Store.error_to_string e))
            refused;
          Minimax_dp.Engine.preload (Server.engine t) artifacts;
          Printf.printf "dpserved: preloaded %d artifact%s from %s\n%!"
            (List.length artifacts)
            (if List.length artifacts = 1 then "" else "s")
            (Store.dir s)
        | _ -> ());
        (match session_store with
        | Some path when Sys.file_exists path ->
          let groups = Minimax_dp.Session.groups (Server.session t) in
          Printf.printf "dpserved: session ledgers resumed from %s (%d group%s)\n%!" path
            (List.length groups)
            (if List.length groups = 1 then "" else "s")
        | _ -> ());
        Printf.printf "dpserved: listening on %s:%d\n%!" host (Server.port t);
        let draining = ref false in
        let on_signal _ =
          if !draining then exit 130
          else begin
            draining := true;
            Server.stop t
          end
        in
        Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
        (* SIGHUP: flush write-backs and reopen the store directory.
           Write-backs are synchronous (an artifact is fsynced before
           its rename lands), so the flush half is already true by
           construction; reopen re-validates the directory and sweeps
           temp files left by killed writers. Without --store this is
           a no-op — but the handler is still installed, because the
           default disposition would kill the daemon. OCaml runs
           handlers at safe points on the main domain; Store.reopen
           takes the store's own mutex, so it cannot race a runner
           probe. *)
        let on_hup _ =
          match store with
          | None -> ()
          | Some s -> (
            match Store.reopen s with
            | Ok () -> Printf.printf "dpserved: store reopened (%s)\n%!" (Store.dir s)
            | Error e ->
              Printf.eprintf "dpserved: store reopen failed: %s\n%!"
                (Store.error_to_string e))
        in
        (try Sys.set_signal Sys.sighup (Sys.Signal_handle on_hup)
         with Invalid_argument _ -> ());
        Server.serve t;
        Printf.printf "dpserved: drained\n%!";
        `Ok ())

let main =
  let doc = "serve minimax-DP mechanisms over TCP (v=1 line protocol; see PROTOCOL.md)" in
  let man =
    [
      `S "SIGNALS";
      `P
        "SIGINT/SIGTERM start the drain: the listener closes, every admitted request is \
         answered and flushed, then the process exits (a second signal exits \
         immediately).";
      `P
        "SIGHUP flushes write-backs and reopens the store directory: with $(b,--store) \
         the directory is re-validated and stale temp files left by killed writers are \
         swept (write-backs are synchronous, so nothing is ever buffered); without \
         $(b,--store) it is a no-op. Serving is never interrupted.";
    ]
  in
  Cmd.v
    (Cmd.info "dpserved" ~version:"1.0.0" ~doc ~man)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ workers_arg $ cache_arg $ queue_arg $ deadline_arg
       $ pivots_arg $ bits_arg $ seed_arg $ store_arg $ preload_arg $ store_readonly_arg
       $ session_store_arg $ no_obs_arg))

let () = exit (Cmd.eval main)
