(* dpserved — the TCP serving daemon.

   A thin shell over Minimax_dp.Server: parse flags into a config,
   print the bound address (port 0 picks an ephemeral port, so scripts
   parse this line), serve until SIGINT/SIGTERM, then drain — every
   admitted request is answered and flushed before exit. A second
   signal while draining exits immediately. *)

open Cmdliner
module Server = Minimax_dp.Server
module Obs = Minimax_dp.Obs

let host_arg =
  let doc = "Bind address." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

let port_arg =
  let doc = "TCP port; 0 picks an ephemeral port (printed at startup)." in
  Arg.(value & opt int 0 & info [ "p"; "port" ] ~docv:"PORT" ~doc)

let workers_arg =
  let doc =
    "Worker domains for the sampling pool (1 = inline fallback; default: the runtime's \
     recommendation). Response bytes are identical for every setting."
  in
  Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"W" ~doc)

let cache_arg =
  let doc = "Mechanism-cache capacity (compiled artifacts kept, LRU-evicted beyond it)." in
  Arg.(value & opt int 64 & info [ "cache" ] ~docv:"CAP" ~doc)

let queue_arg =
  let doc =
    "Admission-control bound: requests admitted but not yet dispatched. Beyond it new \
     requests get a typed 'overloaded' response immediately."
  in
  Arg.(value & opt int 64 & info [ "queue" ] ~docv:"Q" ~doc)

let deadline_arg =
  let doc =
    "Per-connection wall-clock window, ms: compiles degrade against it, and requests \
     arriving after it expires get 'deadline_exceeded'."
  in
  Arg.(value & opt (some int) None & info [ "conn-deadline-ms" ] ~docv:"MS" ~doc)

let pivots_arg =
  let doc = "Per-connection simplex pivot budget." in
  Arg.(value & opt (some int) None & info [ "max-pivots" ] ~docv:"K" ~doc)

let bits_arg =
  let doc = "Per-connection ceiling on pivot-coefficient bit sizes." in
  Arg.(value & opt (some int) None & info [ "max-bits" ] ~docv:"B" ~doc)

let seed_arg =
  let doc = "Seed for request lines that carry no seed= field." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let no_obs_arg =
  let doc =
    "Disable telemetry (no recorder installed): v=1 op=stats answers with zeros and \
     every instrumentation site collapses to a single ref read. Served bytes are \
     identical either way."
  in
  Arg.(value & flag & info [ "no-obs" ] ~doc)

let run host port workers cache queue deadline pivots bits seed no_obs =
  let config =
    {
      Server.host;
      port;
      domains = workers;
      cache_capacity = cache;
      queue_capacity = queue;
      conn_deadline_ms = deadline;
      max_pivots = pivots;
      max_bits = bits;
      default_seed = seed;
    }
  in
  (* Telemetry is on by default: the recorder is what op=stats reads.
     Sampling determinism never depends on it, so --no-obs only trades
     the stats/trace plane for a slightly shorter hot path. *)
  if not no_obs then Obs.set_current (Some (Obs.create ()));
  match Server.create ~config () with
  | exception Unix.Unix_error (e, _, _) ->
    `Error (false, Printf.sprintf "cannot bind %s:%d: %s" host port (Unix.error_message e))
  | t ->
    Printf.printf "dpserved: listening on %s:%d\n%!" host (Server.port t);
    let draining = ref false in
    let on_signal _ =
      if !draining then exit 130
      else begin
        draining := true;
        Server.stop t
      end
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    Server.serve t;
    Printf.printf "dpserved: drained\n%!";
    `Ok ()

let main =
  let doc = "serve minimax-DP mechanisms over TCP (v=1 line protocol; see PROTOCOL.md)" in
  Cmd.v
    (Cmd.info "dpserved" ~version:"1.0.0" ~doc)
    Term.(
      ret
        (const run $ host_arg $ port_arg $ workers_arg $ cache_arg $ queue_arg $ deadline_arg
       $ pivots_arg $ bits_arg $ seed_arg $ no_obs_arg))

let () = exit (Cmd.eval main)
