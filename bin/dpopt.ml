(* dpopt — command-line front end for the minimax-DP library.

   Subcommands:
     geometric   print or sample the geometric mechanism
     optimal     solve the tailored optimal-mechanism LP (§2.5)
     serve       budgeted solve with certified degradation to G(n,α)
     engine      serve a request stream through the multicore engine
     client      send request lines to a running dpserved over TCP
     interact    solve a consumer's optimal interaction (§2.4.3)
     release     multi-level collusion-resistant release (Algorithm 1)
     verify      check a mechanism matrix for DP and derivability
     smoke       exercise every instrumented layer in one short run

   Every subcommand accepts --trace FILE (Chrome trace-event output,
   loadable in chrome://tracing / Perfetto) and --metrics (counters and
   histograms on stderr at exit).
*)

open Cmdliner

(* ----------------------------------------------------------------- *)
(* Argument converters                                               *)
(* ----------------------------------------------------------------- *)

let rat_conv =
  let parse s =
    match Rat.of_string_opt s with
    | Some r -> Ok r
    | None -> Error (`Msg (Printf.sprintf "not a rational: %S (use p/q or decimals)" s))
  in
  Arg.conv (parse, fun fmt r -> Format.pp_print_string fmt (Rat.to_string r))

let alpha_arg =
  let doc = "Privacy parameter α, a rational in (0,1); larger = more private." in
  Arg.(value & opt rat_conv (Rat.of_ints 1 2) & info [ "a"; "alpha" ] ~docv:"ALPHA" ~doc)

let n_arg =
  let doc = "Maximum query result; mechanisms act on {0..N}." in
  Arg.(value & opt int 5 & info [ "n"; "range" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

(* --trace / --metrics: install an ambient Obs recorder for the whole
   command and dump it on exit. Shared by every subcommand. *)
let obs_term =
  let trace =
    let doc =
      "Record spans and counters and write a Chrome trace-event file on exit \
       (load it in chrome://tracing or Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc = "Print counters and histograms to stderr on exit." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let setup trace metrics =
    if trace <> None || metrics then begin
      let r = Obs.create () in
      Obs.set_current (Some r);
      at_exit (fun () ->
        Obs.set_current None;
        (match trace with
         | Some file -> Obs.write_chrome_trace r file
         | None -> ());
        if metrics then prerr_string (Obs.render_text r))
    end
  in
  Term.(const setup $ trace $ metrics)

let decimal_arg =
  let doc = "Print probabilities as decimals instead of exact fractions." in
  Arg.(value & flag & info [ "decimal" ] ~doc)

(* --deadline-ms / --max-pivots / --max-bits: a solve budget. All
   unset means no budget at all (the solver's zero-overhead path). *)
let budget_flags =
  let deadline =
    let doc = "Wall-clock budget for the solve, in milliseconds." in
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let pivots =
    let doc = "Simplex pivot budget for the solve." in
    Arg.(value & opt (some int) None & info [ "max-pivots" ] ~docv:"K" ~doc)
  in
  let bits =
    let doc = "Ceiling on pivot-coefficient bit sizes (exhausts instead of thrashing)." in
    Arg.(value & opt (some int) None & info [ "max-bits" ] ~docv:"B" ~doc)
  in
  let mk deadline_ms max_pivots max_bits = (deadline_ms, max_pivots, max_bits) in
  Term.(const mk $ deadline $ pivots $ bits)

let budget_term =
  let mk (deadline_ms, max_pivots, max_bits) =
    if deadline_ms = None && max_pivots = None && max_bits = None then None
    else Some (Lp.Budget.make ?deadline_ms ?max_pivots ?max_bits ())
  in
  Term.(const mk $ budget_flags)

(* The engine compiles each distinct consumer separately, so it takes
   the budget as a thunk: every compile gets a fresh deadline window
   instead of all of them racing one wall clock started at CLI parse. *)
let budget_thunk_term =
  let mk (deadline_ms, max_pivots, max_bits) =
    if deadline_ms = None && max_pivots = None && max_bits = None then None
    else Some (fun () -> Lp.Budget.make ?deadline_ms ?max_pivots ?max_bits ())
  in
  Term.(const mk $ budget_flags)

let loss_conv =
  let parse s =
    let module L = Minimax.Loss in
    match String.split_on_char ':' s with
    | [ "absolute" ] | [ "abs" ] -> Ok L.absolute
    | [ "squared" ] | [ "sq" ] -> Ok L.squared
    | [ "zero-one" ] | [ "01" ] -> Ok L.zero_one
    | [ "deadzone"; w ] -> (
      match int_of_string_opt w with
      | Some w when w >= 0 -> Ok (L.deadzone ~width:w)
      | _ -> Error (`Msg "deadzone:<width> needs a non-negative integer"))
    | [ "capped"; c ] -> (
      match int_of_string_opt c with
      | Some c when c >= 1 -> Ok (L.capped ~cap:c)
      | _ -> Error (`Msg "capped:<cap> needs a positive integer"))
    | [ "asym"; ou ] -> (
      match String.split_on_char ',' ou with
      | [ o; u ] -> (
        match (Rat.of_string_opt o, Rat.of_string_opt u) with
        | Some over, Some under -> Ok (L.asymmetric ~over ~under)
        | _ -> Error (`Msg "asym:<over>,<under> needs two rationals"))
      | _ -> Error (`Msg "asym:<over>,<under>"))
    | _ ->
      Error
        (`Msg
           "unknown loss (choose absolute | squared | zero-one | deadzone:<w> | capped:<c> | \
            asym:<over>,<under>)")
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Minimax.Loss.name l))

let loss_arg =
  let doc =
    "Loss function: absolute, squared, zero-one, deadzone:<w>, capped:<c>, or \
     asym:<over>,<under>."
  in
  Arg.(value & opt loss_conv Minimax.Loss.absolute & info [ "l"; "loss" ] ~docv:"LOSS" ~doc)

(* side information: "full", "lo-hi", ">=k", "<=k", or "1,3,5" *)
let side_info_of_string ~n s =
  let fail msg = Error (`Msg msg) in
  try
    if s = "full" then Ok (Minimax.Side_info.full n)
    else if String.length s > 2 && String.sub s 0 2 = ">=" then
      Ok (Minimax.Side_info.at_least ~n (int_of_string (String.sub s 2 (String.length s - 2))))
    else if String.length s > 2 && String.sub s 0 2 = "<=" then
      Ok (Minimax.Side_info.at_most ~n (int_of_string (String.sub s 2 (String.length s - 2))))
    else if String.contains s '-' then
      match String.split_on_char '-' s with
      | [ lo; hi ] -> Ok (Minimax.Side_info.interval ~n (int_of_string lo) (int_of_string hi))
      | _ -> fail "range must be lo-hi"
    else Ok (Minimax.Side_info.make ~n (List.map int_of_string (String.split_on_char ',' s)))
  with
  | Failure _ -> fail (Printf.sprintf "cannot parse side information %S" s)
  | Invalid_argument msg -> fail msg

let side_arg =
  let doc = "Side information: full, lo-hi, >=k, <=k, or a comma list of members." in
  Arg.(value & opt string "full" & info [ "s"; "side" ] ~docv:"SIDE" ~doc)

let print_mechanism ~decimal m =
  let table =
    if decimal then Report.Table.of_mechanism ~places:4 m else Report.Table.of_mechanism m
  in
  Report.Table.print table

let consumer_of ~n ~loss ~side =
  match side_info_of_string ~n side with
  | Error (`Msg m) -> Error m
  | Ok side_info -> Ok (Minimax.Consumer.make ~loss ~side_info ())

(* ----------------------------------------------------------------- *)
(* geometric                                                         *)
(* ----------------------------------------------------------------- *)

let geometric_cmd =
  let input =
    let doc = "If set, sample the mechanism at this true result instead of printing it." in
    Arg.(value & opt (some int) None & info [ "input" ] ~docv:"I" ~doc)
  in
  let samples =
    let doc = "Number of samples to draw (with --input)." in
    Arg.(value & opt int 1 & info [ "samples" ] ~docv:"K" ~doc)
  in
  let run () n alpha input samples seed decimal =
    let g = Mech.Geometric.matrix ~n ~alpha in
    match input with
    | None ->
      Printf.printf "G(%d, %s) — α-differentially private: %b\n" n (Rat.to_string alpha)
        (Mech.Mechanism.is_dp ~alpha g);
      print_mechanism ~decimal g;
      `Ok ()
    | Some i when i < 0 || i > n -> `Error (false, "input out of {0..n}")
    | Some i ->
      let rng = Prob.Rng.of_int seed in
      (* One compiled alias table amortized over the batch: O(1) per
         draw instead of an O(n) exact-rational CDF walk per draw.
         [Compiled.draws] keeps the exact path for K=1, so
         single-sample seed streams are unchanged from before compiled
         samplers existed. *)
      let sampler = Engine.Compiled.sampler_of_mechanism g in
      let out = Engine.Compiled.draws sampler ~input:i ~count:samples rng in
      print_endline (String.concat " " (List.map string_of_int (Array.to_list out)));
      `Ok ()
  in
  let term =
    Term.(
      ret (const run $ obs_term $ n_arg $ alpha_arg $ input $ samples $ seed_arg $ decimal_arg))
  in
  Cmd.v
    (Cmd.info "geometric" ~doc:"Print or sample the range-restricted geometric mechanism.")
    term

(* ----------------------------------------------------------------- *)
(* optimal                                                           *)
(* ----------------------------------------------------------------- *)

let optimal_cmd =
  let structured =
    let doc = "Use the Lemma-5 structured tie-break (slower; canonical form)." in
    Arg.(value & flag & info [ "structured" ] ~doc)
  in
  let lfp =
    let doc = "Also print the least-favorable prior (the minimax LP's duals)." in
    Arg.(value & flag & info [ "lfp" ] ~doc)
  in
  let run () n alpha loss side structured lfp decimal budget =
    match consumer_of ~n ~loss ~side with
    | Error m -> `Error (false, m)
    | Ok _ when structured && Option.is_some budget ->
      `Error (false, "--structured does not take a budget (drop the flag, or use `dpopt serve`)")
    | Ok consumer -> (
      let solved =
        if structured then Ok (Minimax.Optimal_mechanism.solve_structured ~alpha consumer)
        else Minimax.Optimal_mechanism.solve_budgeted ?budget ~alpha consumer
      in
      match solved with
      | Error e ->
        `Error
          ( false,
            Printf.sprintf "solve gave up: %s (try a larger budget, or `dpopt serve` which \
                            degrades to the geometric mechanism instead of failing)"
              (Lp.Solver_error.to_string e) )
      | Ok result ->
      Printf.printf "consumer      : %s\n" (Minimax.Consumer.label consumer);
      Printf.printf "minimax loss  : %s (= %s)\n"
        (Rat.to_string result.Minimax.Optimal_mechanism.loss)
        (Rat.to_decimal_string ~places:6 result.Minimax.Optimal_mechanism.loss);
      print_mechanism ~decimal result.Minimax.Optimal_mechanism.mechanism;
      if lfp then begin
        match Minimax.Optimal_mechanism.least_favorable_prior ~alpha consumer with
        | None -> print_endline "least-favorable prior: degenerate (zero loss)"
        | Some (prior, _) ->
          Printf.printf "least-favorable prior: [%s]\n"
            (String.concat "; " (Array.to_list (Array.map Rat.to_string prior)))
      end;
      `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ n_arg $ alpha_arg $ loss_arg $ side_arg $ structured $ lfp
       $ decimal_arg $ budget_term))
  in
  Cmd.v
    (Cmd.info "optimal"
       ~doc:"Solve the tailored optimal α-DP mechanism LP for a known consumer (§2.5).")
    term

(* ----------------------------------------------------------------- *)
(* serve                                                             *)
(* ----------------------------------------------------------------- *)

let serve_cmd =
  let json =
    let doc =
      "Also print the release as one JSON response object in the unified PROTOCOL.md \
       schema (the same shape dpserved and `dpopt engine --json` emit)."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let loss_spec_arg =
    let doc =
      "Loss function: absolute, squared, zero-one, deadzone:<w>, capped:<c>, or \
       asym:<over>,<under>."
    in
    Arg.(value & opt string "absolute" & info [ "l"; "loss" ] ~docv:"LOSS" ~doc)
  in
  let run () n alpha loss side decimal json budget =
    let specs =
      match
        (Engine.Request.loss_spec_of_string loss, Engine.Request.side_spec_of_string side)
      with
      | Ok l, Ok s -> Ok (l, s)
      | Error m, _ | _, Error m -> Error m
    in
    match specs with
    | Error m -> `Error (false, m)
    | Ok (loss, side) -> (
      match Engine.Request.make ~n ~alpha ~loss ~side () with
      | Error m -> `Error (false, m)
      | Ok request ->
        let module S = Minimax.Serve in
        let consumer = Engine.Request.consumer request in
        let s = S.serve ?budget ~alpha consumer in
        let p = s.S.provenance in
        Printf.printf "consumer   : %s\n" (Minimax.Consumer.label consumer);
        Printf.printf "rung       : %s%s\n"
          (S.rung_to_string p.S.rung)
          (match p.S.rung with
           | S.Tailored -> " (the §2.5 LP optimum)"
           | S.Geometric_remap -> " (G(n,α) + optimal interaction, Theorem 1)"
           | S.Geometric_raw -> " (raw G(n,α), Theorem 2)");
        Printf.printf "loss       : %s (= %s)\n" (Rat.to_string s.S.loss)
          (Rat.to_decimal_string ~places:6 s.S.loss);
        Printf.printf "provenance : %s\n" (S.provenance_to_string p);
        if json then
          print_endline
            (Server.Response.to_line
               (Server.Response.of_served ~key:(Engine.Request.canonical_key request) s));
        print_mechanism ~decimal s.S.mechanism;
        `Ok ())
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ n_arg $ alpha_arg $ loss_spec_arg $ side_arg $ decimal_arg
       $ json $ budget_term))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a consumer within a budget (--deadline-ms / --max-pivots / --max-bits), \
          degrading from the tailored LP to the geometric mechanism rather than failing; \
          the released mechanism is re-certified and carries its provenance.")
    term

(* ----------------------------------------------------------------- *)
(* engine                                                            *)
(* ----------------------------------------------------------------- *)

(* Request lines for `engine` (local) and `client` (over TCP): same
   versioned grammar, same file conventions. *)
let request_file_arg =
  let doc =
    "Read requests from $(docv) instead of stdin. One request per line in the versioned \
     key=value grammar (PROTOCOL.md), e.g. 'v=1 id=q1 n=6 alpha=1/2 loss=absolute \
     side=full input=3 count=1000'; blank lines and lines starting with '#' are ignored."
  in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let read_request_lines = function
  | Some f -> In_channel.with_open_text f In_channel.input_lines
  | None ->
    let rec go acc =
      match In_channel.input_line stdin with
      | Some l -> go (l :: acc)
      | None -> List.rev acc
    in
    go []

let engine_cmd =
  let file = request_file_arg in
  let workers =
    let doc =
      "Worker domains for the sampling pool (1 = inline single-domain fallback; default: \
       the runtime's recommendation). Output is byte-identical for every setting."
    in
    Arg.(value & opt (some int) None & info [ "w"; "workers" ] ~docv:"W" ~doc)
  in
  let cache =
    let doc = "Mechanism-cache capacity: compiled artifacts kept, LRU-evicted beyond it." in
    Arg.(value & opt int 64 & info [ "cache" ] ~docv:"CAP" ~doc)
  in
  let print_samples =
    let doc = "Print each request's samples (space-separated) under its summary line." in
    Arg.(value & flag & info [ "print-samples" ] ~doc)
  in
  let json =
    let doc =
      "Print one JSON response per request in the unified PROTOCOL.md schema (and a \
       summary object) instead of text."
    in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let store_dir =
    let doc =
      "Persistent artifact store directory (created if absent): memory misses probe it \
       for a verified warm artifact before compiling, and fresh compiles are written \
       back as crash-safe checksummed frames. Served bytes are identical with or \
       without it."
    in
    Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)
  in
  let cache_state (r : Engine.response) =
    if r.Engine.cache_bypassed then "bypass"
    else if r.Engine.cache_hit then "hit"
    else if r.Engine.store_hit then "store"
    else "miss"
  in
  let run () file workers cache store_dir print_samples json seed budget =
    let lines = try Ok (read_request_lines file) with Sys_error m -> Error m in
    match lines with
    | Error m -> `Error (false, m)
    | Ok lines -> (
      let parse (lineno, acc) line =
        let s = String.trim line in
        if s = "" || s.[0] = '#' then (lineno + 1, acc)
        else
          let r =
            match Engine.Request.of_line s with
            | Ok (Engine.Request.Query w) -> Ok w
            | Ok (Engine.Request.Stats _) ->
              Error
                (Printf.sprintf
                   "line %d: op=stats is a server admin verb; ask a running dpserved \
                    (dpopt client --stats)"
                   lineno)
            | Ok (Engine.Request.Session _) ->
              Error
                (Printf.sprintf
                   "line %d: session verbs need a running dpserved (dpopt client \
                    --subscribe)"
                   lineno)
            | Error e ->
              Error
                (Printf.sprintf "line %d: %s" lineno
                   (Engine.Request.wire_error_to_string e))
          in
          (lineno + 1, r :: acc)
      in
      let _, parsed = List.fold_left parse (1, []) lines in
      let first_error = List.find_opt Result.is_error (List.rev parsed) in
      match first_error with
      | Some (Error m) -> `Error (false, m)
      | Some (Ok _) | None ->
        let wires = Array.of_list (List.rev (List.filter_map Result.to_option parsed)) in
        if Array.length wires = 0 then `Error (false, "no requests (input was empty)")
        else begin
          match
            match store_dir with
            | None -> Ok None
            | Some dir -> (
              match Store.open_dir dir with
              | Ok s -> Ok (Some s)
              | Error e -> Error (Store.error_to_string e))
          with
          | Error m -> `Error (false, "cannot open store: " ^ m)
          | Ok store ->
          (* One seeder for the whole file: line k with seed s draws
             the k-th split of Rng.of_int s — the same chain the server
             walks per connection, and (when every line shares the
             batch seed) the same streams run_batch would use. *)
          let seeder = Engine.Seeder.create () in
          let jobs =
            Array.mapi
              (fun i (w : Engine.Request.wire) ->
                let seed = Option.value w.Engine.Request.seed ~default:seed in
                (* Trace ids come from the wire id= when the line carries
                   one, else the line index — same rule as the server. *)
                let trace =
                  if Obs.enabled () then
                    Some
                      (Obs.Trace.make
                         (match w.Engine.Request.id with
                         | Some id -> id
                         | None -> Printf.sprintf "r%d" i))
                  else None
                in
                {
                  Engine.request = w.Engine.Request.request;
                  stream = Engine.Seeder.stream seeder ~seed;
                  budget = None;
                  trace;
                })
              wires
          in
          let results, elapsed_ns, stats, domains =
            Engine.with_engine ?domains:workers ~cache_capacity:cache ?budget
              ?tier:(Option.map Store.tier store) (fun e ->
              let t0 = Obs.Clock.monotonic () in
              let results = Engine.run_jobs e jobs in
              let t1 = Obs.Clock.monotonic () in
              (* [Engine.domains] is 0 for the inline pool; as far as the
                 user is concerned one domain did the sampling. *)
              (results, Int64.sub t1 t0, Engine.cache_stats e, max 1 (Engine.domains e)))
          in
          let module S = Minimax.Serve in
          let total_samples =
            Array.fold_left
              (fun a -> function
                | Ok (r : Engine.response) -> a + Array.length r.Engine.samples
                | Error _ -> a)
              0 results
          in
          let error_count =
            Array.fold_left (fun a -> function Ok _ -> a | Error _ -> a + 1) 0 results
          in
          let seconds = Int64.to_float elapsed_ns /. 1e9 in
          let per_s = if seconds > 0. then float_of_int total_samples /. seconds else 0. in
          Array.iteri
            (fun i result ->
              let id = wires.(i).Engine.Request.id in
              match result with
              | Error e ->
                if json then
                  print_endline
                    (Server.Response.to_line (Server.Response.of_job_error ?id e))
                else Printf.printf "[%3d] ERROR %s\n" i (Engine.job_error_to_string e)
              | Ok (r : Engine.response) ->
                if json then
                  print_endline (Server.Response.to_line (Server.Response.of_engine ?id r))
                else begin
                  Printf.printf "[%3d] %s  rung=%s loss=%s cache=%s samples=%d\n" i
                    r.Engine.key
                    (S.rung_to_string r.Engine.rung)
                    (Rat.to_string r.Engine.loss) (cache_state r)
                    (Array.length r.Engine.samples);
                  if print_samples then
                    print_endline
                      (String.concat " "
                         (List.map string_of_int (Array.to_list r.Engine.samples)))
                end)
            results;
          let summary =
            Printf.sprintf
              "%d request(s), %d sample(s)%s in %.3fs (%.0f samples/s) on %d worker \
               domain(s); cache: %d hit(s) %d miss(es) %d eviction(s)%s"
              (Array.length results) total_samples
              (if error_count > 0 then Printf.sprintf ", %d error(s)" error_count else "")
              seconds per_s domains stats.Engine.Cache.hits stats.Engine.Cache.misses
              stats.Engine.Cache.evictions
              (match store with
              | None -> ""
              | Some s ->
                let st = Store.stats s in
                Printf.sprintf "; store: %d hit(s) %d miss(es) %d corrupt %d write(s)"
                  st.Store.hits st.Store.misses st.Store.corrupt st.Store.writes)
          in
          if json then
            let open Obs.Json in
            print_endline
              (to_string
                 (Obj
                    [
                      ("requests", Int (Array.length results));
                      ("samples", Int total_samples);
                      ("errors", Int error_count);
                      ("elapsed_ns", Int (Int64.to_int elapsed_ns));
                      ("samples_per_s", Int (int_of_float per_s));
                      ("workers", Int domains);
                      ( "cache",
                        Obj
                          [
                            ("hits", Int stats.Engine.Cache.hits);
                            ("misses", Int stats.Engine.Cache.misses);
                            ("evictions", Int stats.Engine.Cache.evictions);
                            ("insertions", Int stats.Engine.Cache.insertions);
                          ] );
                      ( "store",
                        match store with
                        | None -> Null
                        | Some s ->
                          let st = Store.stats s in
                          Obj
                            [
                              ("hits", Int st.Store.hits);
                              ("misses", Int st.Store.misses);
                              ("corrupt", Int st.Store.corrupt);
                              ("writes", Int st.Store.writes);
                            ] );
                    ]))
          else print_endline summary;
          `Ok ()
        end)
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ file $ workers $ cache $ store_dir $ print_samples $ json
       $ seed_arg $ budget_thunk_term))
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Serve a stream of requests through the multicore engine: requests naming the same \
          consumer share one cached, re-certified, alias-compiled mechanism; sampling fans \
          out over a Domain pool and merges deterministically (byte-identical output for \
          any --workers, given --seed).")
    term

(* ----------------------------------------------------------------- *)
(* client                                                            *)
(* ----------------------------------------------------------------- *)

let client_cmd =
  let host_arg =
    let doc = "Server host (name or dotted quad)." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let port_arg =
    let doc = "Server port (the one dpserved printed at startup)." in
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT" ~doc)
  in
  let resolve host =
    match Unix.inet_addr_of_string host with
    | a -> Ok a
    | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error (Printf.sprintf "cannot resolve host %S" host)
      | h -> Ok h.Unix.h_addr_list.(0))
  in
  let stats_arg =
    let doc =
      "Send the single admin line 'v=1 op=stats' instead of a request file and print the \
       server's telemetry snapshot (rolling latency quantiles, queue depth, cache and \
       rejection counters) as JSON."
    in
    Arg.(value & flag & info [ "stats" ] ~doc)
  in
  let prom_arg =
    let doc =
      "With $(b,--stats), print the Prometheus text exposition carried in the same \
       response instead of the JSON snapshot."
    in
    Arg.(value & flag & info [ "prom" ] ~doc)
  in
  let subscribe_arg =
    let doc =
      "Stay connected after sending the request lines (meant for op=subscribe lines): \
       pushed status:\"release\" rungs and typed budget_exhausted refusals are printed \
       as they arrive, until the server drains or the process is interrupted. Without \
       this flag the client half-closes after sending and exits at the last direct \
       response."
    in
    Arg.(value & flag & info [ "subscribe" ] ~doc)
  in
  (* Unwrap a stats response line down to what the caller asked for:
     the snapshot object, or the raw Prometheus text riding next to
     it. Anything else (an error response, junk) is surfaced as-is. *)
  let print_stats_line ~prom line =
    let module J = Obs.Json in
    let fallthrough () = print_endline line in
    match J.of_string line with
    | Error _ -> fallthrough ()
    | Ok json -> (
      if prom then
        match Option.bind (J.member "prometheus" json) J.to_str_opt with
        | Some text -> print_string text
        | None -> fallthrough ()
      else
        match J.member "stats" json with
        | Some stats -> print_endline (J.to_string stats)
        | None -> fallthrough ())
  in
  let run () host port file stats prom subscribe =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let lines =
      if stats then Ok [ "v=1 op=stats" ]
      else try Ok (read_request_lines file) with Sys_error m -> Error m
    in
    match (lines, resolve host) with
    | Error m, _ | _, Error m -> `Error (false, m)
    | Ok lines, Ok addr -> (
      let module F = Server.Framing in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        `Error
          (false, Printf.sprintf "cannot connect to %s:%d: %s" host port (Unix.error_message e))
      | () -> (
        let w = F.writer fd in
        List.iter
          (fun l ->
            let s = String.trim l in
            if s <> "" && s.[0] <> '#' then F.enqueue w s)
          lines;
        match F.flush_blocking w with
        | F.Closed ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          `Error (false, "server closed the connection before reading every request")
        | F.Blocked (* unreachable: flush_blocking waits out Blocked *) | F.Flushed ->
          (* Half-close: requests done, now stream responses to EOF —
             unless we are a live subscriber, in which case the send
             side stays open so the server keeps the session (and its
             pushes) alive until we are killed or it drains. *)
          if not subscribe then
            (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
          let r = F.reader fd in
          let emit = if stats then print_stats_line ~prom else print_endline in
          let rec pump () =
            let { F.lines; eof; overflow = _ } = F.poll r in
            List.iter emit lines;
            if not eof then pump ()
          in
          pump ();
          (try Unix.close fd with Unix.Unix_error _ -> ());
          `Ok ()))
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ host_arg $ port_arg $ request_file_arg $ stats_arg
       $ prom_arg $ subscribe_arg))
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Send request lines (v=1 key=value grammar, PROTOCOL.md) to a running dpserved \
          and print its JSON responses, one per line, in admission order. With --stats, \
          fetch the live telemetry snapshot instead (op=stats admin verb). With \
          --subscribe, stay connected and print pushed session release lines.")
    term

(* ----------------------------------------------------------------- *)
(* interact                                                          *)
(* ----------------------------------------------------------------- *)

let interact_cmd =
  let run () n alpha loss side decimal =
    match consumer_of ~n ~loss ~side with
    | Error m -> `Error (false, m)
    | Ok consumer ->
      let deployed = Mech.Geometric.matrix ~n ~alpha in
      let r = Minimax.Optimal_interaction.solve ~deployed consumer in
      let tailored = Minimax.Optimal_mechanism.solve ~alpha consumer in
      Printf.printf "consumer            : %s\n" (Minimax.Consumer.label consumer);
      Printf.printf "loss via interaction: %s\n" (Rat.to_string r.Minimax.Optimal_interaction.loss);
      Printf.printf "tailored LP optimum : %s\n"
        (Rat.to_string tailored.Minimax.Optimal_mechanism.loss);
      Printf.printf "universality holds  : %b\n"
        (Rat.equal r.Minimax.Optimal_interaction.loss tailored.Minimax.Optimal_mechanism.loss);
      print_endline "optimal interaction T (rows = received output):";
      Report.Table.print
        (if decimal then Report.Table.of_rat_matrix_decimal ~places:4 r.Minimax.Optimal_interaction.interaction
         else Report.Table.of_rat_matrix r.Minimax.Optimal_interaction.interaction);
      `Ok ()
  in
  let term =
    Term.(ret (const run $ obs_term $ n_arg $ alpha_arg $ loss_arg $ side_arg $ decimal_arg))
  in
  Cmd.v
    (Cmd.info "interact"
       ~doc:
         "Compute a consumer's optimal interaction with the deployed geometric mechanism \
          (§2.4.3) and check Theorem 1.")
    term

(* ----------------------------------------------------------------- *)
(* release                                                           *)
(* ----------------------------------------------------------------- *)

let release_cmd =
  let levels =
    let doc = "Comma-separated increasing privacy levels, e.g. 1/4,1/2,3/4." in
    Arg.(value & opt string "1/4,1/2,3/4" & info [ "levels" ] ~docv:"LEVELS" ~doc)
  in
  let true_result =
    let doc = "The true query result to protect." in
    Arg.(required & opt (some int) None & info [ "true-result" ] ~docv:"R" ~doc)
  in
  let run () n levels true_result seed =
    let parsed =
      List.filter_map Rat.of_string_opt (String.split_on_char ',' levels)
    in
    if List.length parsed <> List.length (String.split_on_char ',' levels) then
      `Error (false, "could not parse all privacy levels")
    else if true_result < 0 || true_result > n then `Error (false, "true result out of {0..n}")
    else
      match Minimax.Multi_level.make_plan ~n ~levels:parsed with
      | exception Invalid_argument m -> `Error (false, m)
      | plan ->
        let rng = Prob.Rng.of_int seed in
        let out = Minimax.Multi_level.release plan ~true_result rng in
        List.iteri
          (fun i alpha -> Printf.printf "level %d (α=%s): %d\n" (i + 1) (Rat.to_string alpha) out.(i))
          parsed;
        `Ok ()
  in
  let term = Term.(ret (const run $ obs_term $ n_arg $ levels $ true_result $ seed_arg)) in
  Cmd.v
    (Cmd.info "release"
       ~doc:"Release a result at multiple privacy levels, collusion-resistantly (Algorithm 1).")
    term

(* ----------------------------------------------------------------- *)
(* verify                                                            *)
(* ----------------------------------------------------------------- *)

let verify_cmd =
  let file =
    let doc = "File with one mechanism row per line, entries as rationals (default: stdin)." in
    Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)
  in
  let run () alpha file =
    let read_lines ic =
      let rec go acc = match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go []
    in
    let lines =
      match file with
      | Some f ->
        let ic = open_in f in
        let l = read_lines ic in
        close_in ic;
        l
      | None -> read_lines stdin
    in
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    let parse_row line =
      line
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
      |> List.map (fun s ->
             match Rat.of_string_opt s with
             | Some r -> r
             | None -> failwith (Printf.sprintf "bad entry %S" s))
    in
    match List.map parse_row lines with
    | exception Failure m -> `Error (false, m)
    | rows -> (
      match Mech.Mechanism.of_rows rows with
      | exception Mech.Mechanism.Not_stochastic m -> `Error (false, "not a mechanism: " ^ m)
      | m ->
        let level = Mech.Mechanism.privacy_level m in
        Printf.printf "rows            : %d\n" (Mech.Mechanism.size m);
        Printf.printf "privacy level   : %s (strongest α for which the matrix is α-DP)\n"
          (Rat.to_string level);
        Printf.printf "is %s-DP        : %b\n" (Rat.to_string alpha)
          (Mech.Mechanism.is_dp ~alpha m);
        (match Mech.Derivability.derive ~alpha m with
         | Mech.Derivability.Derivable _ ->
           Printf.printf "derivable from G(%d,%s): true\n" (Mech.Mechanism.n m) (Rat.to_string alpha)
         | Mech.Derivability.Not_derivable vs ->
           Printf.printf "derivable from G(%d,%s): false (%d Theorem-2 violations)\n"
             (Mech.Mechanism.n m) (Rat.to_string alpha) (List.length vs));
        `Ok ())
  in
  let term = Term.(ret (const run $ obs_term $ alpha_arg $ file)) in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check a mechanism matrix: stochasticity, differential privacy, and Theorem-2 \
          derivability from the geometric mechanism.")
    term

(* ----------------------------------------------------------------- *)
(* query                                                             *)
(* ----------------------------------------------------------------- *)

let query_cmd =
  let csv =
    let doc = "CSV database (header: name:type,... with types int|text|bool)." in
    Arg.(required & opt (some file) None & info [ "csv" ] ~docv:"FILE" ~doc)
  in
  let where =
    let doc = "Predicate, e.g. \"age >= 18 AND city = 'San Diego'\"." in
    Arg.(value & opt string "true" & info [ "where" ] ~docv:"PRED" ~doc)
  in
  let levels =
    let doc =
      "Release at these increasing privacy levels (comma-separated), \
       collusion-resistantly. Default: a single release at --alpha."
    in
    Arg.(value & opt (some string) None & info [ "levels" ] ~docv:"LEVELS" ~doc)
  in
  let show_true =
    let doc = "Also print the true (unperturbed) count — for demos only." in
    Arg.(value & flag & info [ "show-true" ] ~doc)
  in
  let run () csv where alpha levels seed show_true =
    match Dpdb.Query_parser.parse where with
    | Error e ->
      `Error
        ( false,
          Printf.sprintf "cannot parse predicate %S: %s" where
            (Dpdb.Query_parser.error_to_string e) )
    | Ok pred -> (
      let db = try Ok (Dpdb.Csv.load csv) with Invalid_argument m -> Error m in
      match db with
      | Error m -> `Error (false, m)
      | Ok db -> (
        match Dpdb.Query_parser.type_check (Dpdb.Database.schema db) pred with
        | Some m -> `Error (false, "predicate does not fit the data: " ^ m)
        | None ->
          let n = Dpdb.Database.size db in
          let true_count = Dpdb.Database.count db pred in
          let rng = Prob.Rng.of_int seed in
          Printf.printf "database        : %s (%d rows)\n" csv n;
          Printf.printf "query           : COUNT WHERE %s\n" (Dpdb.Predicate.to_string pred);
          if show_true then Printf.printf "true count      : %d\n" true_count;
          let release_at lvls =
            match Minimax.Multi_level.make_plan ~n ~levels:lvls with
            | exception Invalid_argument m -> `Error (false, m)
            | plan ->
              let out = Minimax.Multi_level.release plan ~true_result:true_count rng in
              List.iteri
                (fun i a ->
                  Printf.printf "released (α=%s) : %d\n" (Rat.to_string a) out.(i))
                lvls;
              `Ok ()
          in
          (match levels with
           | None -> release_at [ alpha ]
           | Some spec ->
             let parsed = List.filter_map Rat.of_string_opt (String.split_on_char ',' spec) in
             if List.length parsed <> List.length (String.split_on_char ',' spec) then
               `Error (false, "could not parse all privacy levels")
             else release_at parsed)))
  in
  let term =
    Term.(ret (const run $ obs_term $ csv $ where $ alpha_arg $ levels $ seed_arg $ show_true))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run a count query over a CSV database and release the result under differential \
          privacy (optionally at several collusion-resistant levels).")
    term

(* ----------------------------------------------------------------- *)
(* infer                                                             *)
(* ----------------------------------------------------------------- *)

let infer_cmd =
  let observed =
    let doc = "The released (observed) value." in
    Arg.(required & opt (some int) None & info [ "observed" ] ~docv:"R" ~doc)
  in
  let level =
    let doc = "Credible-set level, a rational in [0,1]." in
    Arg.(value & opt rat_conv (Rat.of_ints 9 10) & info [ "level" ] ~docv:"L" ~doc)
  in
  let run () n alpha observed level =
    if observed < 0 || observed > n then `Error (false, "observed value out of {0..n}")
    else begin
      let deployed = Mech.Geometric.matrix ~n ~alpha in
      match Minimax.Inference.posterior ~deployed ~observed () with
      | None -> `Error (false, "observation has zero probability")
      | Some p ->
        Printf.printf "deployed: G(%d, %s); observed: %d\n" n (Rat.to_string alpha) observed;
        print_endline "posterior over the true count (uniform prior):";
        Array.iteri
          (fun i m -> Printf.printf "  %2d : %s\n" i (Rat.to_decimal_string ~places:6 m))
          p;
        (match Minimax.Inference.map_estimate ~deployed ~observed () with
         | Some m -> Printf.printf "MAP estimate   : %d\n" m
         | None -> ());
        (match Minimax.Inference.posterior_mean ~deployed ~observed () with
         | Some m -> Printf.printf "posterior mean : %s\n" (Rat.to_decimal_string ~places:4 m)
         | None -> ());
        (match Minimax.Inference.credible_set ~deployed ~observed ~level () with
         | Some (members, mass) ->
           Printf.printf "%s-credible set: {%s} (mass %s)\n" (Rat.to_string level)
             (String.concat "," (List.map string_of_int members))
             (Rat.to_decimal_string ~places:4 mass)
         | None -> ());
        Printf.printf "adjacent posterior odds within [α, 1/α]: %b\n"
          (Minimax.Inference.posterior_odds_bounded ~alpha ~deployed ~observed ());
        `Ok ()
    end
  in
  let term = Term.(ret (const run $ obs_term $ n_arg $ alpha_arg $ observed $ level)) in
  Cmd.v
    (Cmd.info "infer"
       ~doc:
         "What a reader can exactly infer from a released value: posterior, MAP, mean, \
          credible set — and the DP bound on posterior odds.")
    term

(* ----------------------------------------------------------------- *)
(* smoke                                                             *)
(* ----------------------------------------------------------------- *)

(* One short run that exercises every instrumented layer — the LP
   simplex (tailored optimal mechanism), exact matrix inversion
   (Theorem-2 factorization), and the multi-level cascade — so
   `dpopt smoke --trace t.json` yields a representative trace. *)
let smoke_cmd =
  let run () n alpha seed =
    let consumer =
      Minimax.Consumer.make ~loss:Minimax.Loss.absolute ~side_info:(Minimax.Side_info.full n) ()
    in
    let result = Minimax.Optimal_mechanism.solve ~alpha consumer in
    Printf.printf "optimal mechanism : minimax loss %s for %s\n"
      (Rat.to_string result.Minimax.Optimal_mechanism.loss)
      (Minimax.Consumer.label consumer);
    let g = Mech.Geometric.matrix ~n ~alpha in
    (match Mech.Derivability.derive ~alpha g with
     | Mech.Derivability.Derivable _ ->
       Printf.printf "derivability      : G(%d,%s) factors through itself\n" n (Rat.to_string alpha)
     | Mech.Derivability.Not_derivable vs ->
       Printf.printf "derivability      : UNEXPECTED %d violations\n" (List.length vs));
    let beta = Rat.div (Rat.add alpha Rat.one) (Rat.of_int 2) in
    match Minimax.Multi_level.make_plan ~n ~levels:[ alpha; beta ] with
    | exception Invalid_argument m -> `Error (false, m)
    | plan ->
      let rng = Prob.Rng.of_int seed in
      let out = Minimax.Multi_level.release plan ~true_result:(n / 2) rng in
      Printf.printf "cascade release   : α=%s → %d, α=%s → %d\n" (Rat.to_string alpha) out.(0)
        (Rat.to_string beta) out.(1);
      `Ok ()
  in
  let term = Term.(ret (const run $ obs_term $ n_arg $ alpha_arg $ seed_arg)) in
  Cmd.v
    (Cmd.info "smoke"
       ~doc:
         "Exercise every instrumented layer (simplex, matrix inversion, cascade) in one \
          short run — combine with --trace or --metrics to inspect the observability \
          output.")
    term

(* ----------------------------------------------------------------- *)
(* main                                                              *)
(* ----------------------------------------------------------------- *)

let main =
  let doc = "universally optimal privacy mechanisms for minimax agents (PODS 2010)" in
  Cmd.group
    (Cmd.info "dpopt" ~version:"1.0.0" ~doc)
    [
      geometric_cmd;
      optimal_cmd;
      serve_cmd;
      engine_cmd;
      client_cmd;
      interact_cmd;
      release_cmd;
      verify_cmd;
      query_cmd;
      infer_cmd;
      smoke_cmd;
    ]

let () = exit (Cmd.eval main)
