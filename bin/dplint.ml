(* dplint — privacy-invariant static analyzer for the minimax-DP tree.

   Subcommands:
     check-mech       certify row-stochasticity, alpha-DP (Def. 2), Theorem-2
                      derivability, and the constructive factorization of a
                      mechanism matrix (from a file or --geometric)
     check-derivable  certify Theorem 2 / Lemma 3: derivability of a matrix
                      (or of G(n,beta)) from G(n,alpha)
     lint-src         scan OCaml sources for exactness-hostile patterns
                      (Obj.magic, bare `with _ ->`, float-literal =,
                      mli-less lib modules)
     analyze          cross-module analysis over the serving tree:
                      domain-safety, float taint of the exact core, and
                      serve-path determinism, against a committed
                      accepted-findings baseline

   Every verdict is available as JSON (--json); violations carry exact
   rational witnesses, passes carry replayable certificates. Exit code
   0 = everything certified, 1 = violations found. *)

open Cmdliner

let rat_conv =
  let parse s =
    match Rat.of_string_opt s with
    | Some r -> Ok r
    | None -> Error (`Msg (Printf.sprintf "not a rational: %S (use p/q or decimals)" s))
  in
  Arg.conv (parse, fun fmt r -> Format.pp_print_string fmt (Rat.to_string r))

let json_arg =
  let doc = "Emit the verdict as JSON on stdout instead of the human rendering." in
  Arg.(value & flag & info [ "json" ] ~doc)

(* --trace / --metrics: install an ambient Obs recorder for the whole
   command and dump it on exit (same contract as dpopt). *)
let obs_term =
  let trace =
    let doc =
      "Record spans and counters and write a Chrome trace-event file on exit \
       (load it in chrome://tracing or Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let metrics =
    let doc = "Print counters and histograms to stderr on exit." in
    Arg.(value & flag & info [ "metrics" ] ~doc)
  in
  let setup trace metrics =
    if trace <> None || metrics then begin
      let r = Obs.create () in
      Obs.set_current (Some r);
      at_exit (fun () ->
        Obs.set_current None;
        (match trace with
         | Some file -> Obs.write_chrome_trace r file
         | None -> ());
        if metrics then prerr_string (Obs.render_text r))
    end
  in
  Term.(const setup $ trace $ metrics)

let n_arg =
  let doc = "Range bound for --geometric; mechanisms act on {0..N}." in
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc)

let alpha_arg =
  let doc = "Privacy parameter α, a rational in (0,1)." in
  Arg.(value & opt rat_conv (Rat.of_ints 1 2) & info [ "a"; "alpha" ] ~docv:"ALPHA" ~doc)

let geometric_arg =
  let doc = "Analyze the geometric mechanism G(N,ALPHA) instead of reading a file." in
  Arg.(value & flag & info [ "geometric" ] ~doc)

let file_arg =
  let doc = "Mechanism matrix file: one row per line, entries as rationals; '#' comments." in
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

(* ----------------------------------------------------------------- *)
(* Matrix input                                                      *)
(* ----------------------------------------------------------------- *)

let load_matrix path =
  let ic = open_in path in
  let lines =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | line -> go (line :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  let rows =
    lines
    |> List.map (fun l -> match String.index_opt l '#' with Some i -> String.sub l 0 i | None -> l)
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           line
           |> String.split_on_char ' '
           |> List.concat_map (String.split_on_char '\t')
           |> List.filter (fun s -> s <> "")
           |> List.map (fun s ->
                  match Rat.of_string_opt s with
                  | Some r -> r
                  | None -> raise (Invalid_argument (Printf.sprintf "bad matrix entry %S" s))))
  in
  match rows with
  | [] -> Error "empty matrix file"
  | _ -> Ok (Array.of_list (List.map Array.of_list rows))

let matrix_of_args ~geometric ~n ~alpha ~file =
  if geometric then
    if n < 1 then Error "need -n >= 1"
    else begin
      match Mech.Geometric.matrix ~n ~alpha with
      | m -> Ok (Mech.Mechanism.matrix m)
      | exception Invalid_argument msg -> Error msg
    end
  else
    match file with
    | None -> Error "need either --geometric or a matrix FILE"
    | Some path -> ( try load_matrix path with Invalid_argument msg -> Error msg)

(* ----------------------------------------------------------------- *)
(* Output                                                            *)
(* ----------------------------------------------------------------- *)

(* Exit 1 on violations (distinct from cmdliner's 124 for CLI misuse). *)
let render_reports ~json reports =
  if json then print_endline (Check.Json.to_string (Check.Invariants.summary_to_json reports))
  else
    List.iter
      (fun r -> Format.printf "%a@." Check.Invariants.pp_report r)
      reports;
  if Check.Invariants.all_passed reports then `Ok ()
  else begin
    if not json then prerr_endline "dplint: violations found";
    exit 1
  end

(* ----------------------------------------------------------------- *)
(* check-mech                                                        *)
(* ----------------------------------------------------------------- *)

let deadline_arg =
  let doc =
    "Wall-clock budget in milliseconds. The deadline is re-checked between invariant \
     rules; rules that no longer fit are skipped and reported (a skipped rule is not a \
     certification, so the exit code is still 1)."
  in
  Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)

let check_mech_cmd =
  let run () geometric n alpha file json deadline_ms =
    match matrix_of_args ~geometric ~n ~alpha ~file with
    | Error m -> `Error (false, m)
    | Ok matrix -> (
      match deadline_ms with
      | None -> render_reports ~json (Check.Invariants.check_mech ~alpha matrix)
      | Some ms ->
        (* The same rules check_mech runs, as thunks, so the deadline
           can be consulted before each one. *)
        let module I = Check.Invariants in
        let rules =
          [
            ("row-stochastic", fun () -> I.row_stochastic matrix);
            ("alpha-dp", fun () -> I.alpha_dp ~alpha matrix);
            ("derivable", fun () -> I.derivability ~alpha matrix);
            ("factorization", fun () -> I.factorization ~alpha matrix);
          ]
        in
        let budget = Resilience.Budget.make ~deadline_ms:ms () in
        let reports, skipped =
          List.fold_left
            (fun (done_, skipped) (name, rule) ->
              match Resilience.Budget.check budget ~pivots:0 ~peak_bits:0 with
              | Some _ -> (done_, name :: skipped)
              | None -> (rule () :: done_, skipped))
            ([], []) rules
        in
        let reports = List.rev reports and skipped = List.rev skipped in
        if json then
          print_endline
            (Check.Json.to_string
               (Check.Json.Obj
                  [
                    ("summary", I.summary_to_json reports);
                    ("skipped", Check.Json.List (List.map (fun s -> Check.Json.Str s) skipped));
                  ]))
        else begin
          List.iter (fun r -> Format.printf "%a@." I.pp_report r) reports;
          if skipped <> [] then
            Printf.printf "deadline expired after %dms; skipped: %s\n" ms
              (String.concat ", " skipped)
        end;
        if I.all_passed reports && skipped = [] then `Ok ()
        else begin
          if not json then prerr_endline "dplint: violations found or rules skipped";
          exit 1
        end)
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ geometric_arg $ n_arg $ alpha_arg $ file_arg $ json_arg
       $ deadline_arg))
  in
  Cmd.v
    (Cmd.info "check-mech"
       ~doc:
         "Certify a mechanism matrix: row-stochasticity, α-differential privacy \
          (Definition 2), Theorem-2 derivability, and the constructive factorization \
          T = G⁻¹·M. Violations carry exact rational witnesses. With --deadline-ms, \
          the deadline is re-checked between rules and late rules are skipped (and \
          reported).")
    term

(* ----------------------------------------------------------------- *)
(* check-derivable                                                   *)
(* ----------------------------------------------------------------- *)

let check_derivable_cmd =
  let beta_arg =
    let doc =
      "With --geometric: certify Lemma 3, i.e. that G(N,BETA) is derivable from \
       G(N,ALPHA) through a stochastic transition (needs ALPHA <= BETA)."
    in
    Arg.(value & opt (some rat_conv) None & info [ "b"; "beta" ] ~docv:"BETA" ~doc)
  in
  let run () geometric n alpha beta file json =
    match (geometric, beta) with
    | true, Some beta -> (
      match Check.Invariants.lemma3_transition ~n ~alpha ~beta with
      | report -> render_reports ~json [ report ]
      | exception Invalid_argument m -> `Error (false, m))
    | _ -> (
      match matrix_of_args ~geometric ~n ~alpha:(Option.value beta ~default:alpha) ~file with
      | Error m -> `Error (false, m)
      | Ok matrix -> render_reports ~json (Check.Invariants.check_derivable ~alpha matrix))
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ geometric_arg $ n_arg $ alpha_arg $ beta_arg $ file_arg
       $ json_arg))
  in
  Cmd.v
    (Cmd.info "check-derivable"
       ~doc:
         "Certify Theorem-2 derivability from the geometric mechanism — of a matrix file, \
          or (with --geometric --beta) Lemma 3's cascade transition G(n,α)⁻¹·G(n,β).")
    term

(* ----------------------------------------------------------------- *)
(* lint-src                                                          *)
(* ----------------------------------------------------------------- *)

let lint_src_cmd =
  let roots_arg =
    let doc = "Directories to scan; a root named 'lib' additionally requires .mli files." in
    Arg.(non_empty & pos_all dir [] & info [] ~docv:"DIR" ~doc)
  in
  let run () roots json =
    let diags = Check.Lint.scan_roots roots in
    if json then
      print_endline
        (Check.Json.to_string
           (Check.Json.Obj
              [
                ("tool", Check.Json.Str "dplint");
                ("ok", Check.Json.Bool (diags = []));
                ("diagnostics", Check.Json.List (List.map Check.Diagnostic.to_json diags));
              ]))
    else begin
      List.iter (fun d -> Format.printf "%a@." Check.Diagnostic.pp d) diags;
      if diags = [] then
        Printf.printf "lint-src: clean (%s)\n" (String.concat " " roots)
    end;
    if diags = [] then `Ok ()
    else begin
      if not json then prerr_endline "dplint: lint violations found";
      exit 1
    end
  in
  let term = Term.(ret (const run $ obs_term $ roots_arg $ json_arg)) in
  Cmd.v
    (Cmd.info "lint-src"
       ~doc:
         "Scan OCaml sources for exactness-hostile patterns: Obj.magic, bare \
          `try … with _ ->`, float-literal (in)equality, and mli-less library modules.")
    term

(* ----------------------------------------------------------------- *)
(* analyze                                                           *)
(* ----------------------------------------------------------------- *)

let analyze_cmd =
  let roots_arg =
    let doc = "Directories to scan (default: lib bin)." in
    Arg.(value & pos_all string [] & info [] ~docv:"DIR" ~doc)
  in
  let baseline_arg =
    let doc =
      "Accepted-findings baseline to subtract before the exit-code decision. A \
       missing file is treated as an empty baseline; a malformed one is a CLI \
       error."
    in
    Arg.(
      value
      & opt string "analysis-baseline.json"
      & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let no_baseline_arg =
    let doc = "Ignore the baseline: report and count every finding." in
    Arg.(value & flag & info [ "no-baseline" ] ~doc)
  in
  let write_baseline_arg =
    let doc =
      "Re-run the passes with no baseline and write a baseline accepting every \
       current error to $(docv), then exit 0. The ratchet: regenerate only from \
       a clean tree (see `make analyze-baseline')."
    in
    Arg.(value & opt (some string) None & info [ "write-baseline" ] ~docv:"FILE" ~doc)
  in
  let core_arg =
    let doc = "Override an exact-core directory for the float-taint pass (repeatable)." in
    Arg.(value & opt_all string [] & info [ "core" ] ~docv:"DIR" ~doc)
  in
  let serve_arg =
    let doc = "Override a serve-path root for the determinism pass (repeatable)." in
    Arg.(value & opt_all string [] & info [ "serve-root" ] ~docv:"PATH" ~doc)
  in
  let clock_arg =
    let doc = "Override a wall-clock-exempt directory (repeatable)." in
    Arg.(value & opt_all string [] & info [ "clock-exempt" ] ~docv:"DIR" ~doc)
  in
  let run () roots json baseline_file no_baseline write_baseline core serve clock =
    let dflt = Analysis.default_config in
    let or_default custom dflt = if custom = [] then dflt else custom in
    let cfg =
      {
        Analysis.roots = or_default roots dflt.Analysis.roots;
        core_dirs = or_default core dflt.Analysis.core_dirs;
        serve_roots = or_default serve dflt.Analysis.serve_roots;
        clock_exempt = or_default clock dflt.Analysis.clock_exempt;
      }
    in
    match write_baseline with
    | Some file ->
      let b = Analysis.Baseline.of_diagnostics (Analysis.raw cfg) in
      Analysis.Baseline.save file b;
      if not json then
        Printf.printf "analyze: wrote %d-entry baseline to %s\n"
          (List.length (Analysis.Baseline.entries b))
          file;
      `Ok ()
    | None -> (
      let baseline =
        if no_baseline then Ok Analysis.Baseline.empty
        else if not (Sys.file_exists baseline_file) then Ok Analysis.Baseline.empty
        else Analysis.Baseline.load baseline_file
      in
      match baseline with
      | Error m -> `Error (false, Printf.sprintf "baseline %s: %s" baseline_file m)
      | Ok baseline ->
        let o = Analysis.run ~baseline cfg in
        if json then
          print_endline
            (Check.Json.to_string
               (Check.Json.Obj
                  [
                    ("tool", Check.Json.Str "dplint");
                    ("ok", Check.Json.Bool (o.Analysis.errors = 0));
                    ("report", Analysis.to_json o);
                  ]))
        else begin
          List.iter (fun d -> Format.printf "%a@." Check.Diagnostic.pp d) o.Analysis.diagnostics;
          Printf.printf "analyze: %d files, %d errors, %d warnings, %d baselined\n"
            o.Analysis.files o.Analysis.errors o.Analysis.warnings o.Analysis.suppressed
        end;
        if o.Analysis.errors = 0 then `Ok ()
        else begin
          if not json then prerr_endline "dplint: analysis violations found";
          exit 1
        end)
  in
  let term =
    Term.(
      ret
        (const run $ obs_term $ roots_arg $ json_arg $ baseline_arg $ no_baseline_arg
       $ write_baseline_arg $ core_arg $ serve_arg $ clock_arg))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Cross-module static analysis over the serving tree: domain-safety \
          (unguarded top-level mutable state reachable from Domain.spawn), float \
          taint of the exact ℚ core, and serve-path determinism (wall clocks, \
          Random.self_init, Hashtbl iteration order), plus waiver hygiene. Exit \
          code: 0 iff zero error-severity diagnostics survive baseline \
          subtraction, 1 otherwise; stale baseline entries are warnings and do \
          not affect the exit code.")
    term

(* ----------------------------------------------------------------- *)
(* main                                                              *)
(* ----------------------------------------------------------------- *)

let main =
  let doc = "privacy-invariant static analyzer for the minimax-DP reproduction" in
  Cmd.group
    (Cmd.info "dplint" ~version:"1.0.0" ~doc)
    [ check_mech_cmd; check_derivable_cmd; lint_src_cmd; analyze_cmd ]

let () = exit (Cmd.eval main)
