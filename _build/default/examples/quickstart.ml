(* Quickstart: deploy the geometric mechanism for a count query and
   post-process it as a rational minimax consumer.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A database of individuals and a count query. *)
  let rng = Prob.Rng.of_int 7 in
  let n = 10 in
  let db = Dpdb.Generator.population rng n ~flu_rate:0.3 in
  let true_count = Dpdb.Count_query.eval Dpdb.Generator.flu_anywhere db in
  Printf.printf "database size           : %d\n" n;
  Printf.printf "true flu count          : %d\n" true_count;

  (* 2. Pick a privacy level and build the geometric mechanism
        (Definition 4 of the paper). alpha closer to 1 = more private. *)
  let alpha = Rat.of_ints 1 3 in
  let mechanism = Mech.Geometric.matrix ~n ~alpha in
  assert (Mech.Mechanism.is_dp ~alpha mechanism);

  (* 3. Release a perturbed count. *)
  let released = Mech.Mechanism.sample mechanism ~input:true_count rng in
  Printf.printf "released (perturbed)    : %d\n" released;

  (* 4. A consumer with side information refines the release. This one
        knows the count is at least 2 and cares about absolute error. *)
  let side_info = Minimax.Side_info.at_least ~n 2 in
  let consumer = Minimax.Consumer.make ~loss:Minimax.Loss.absolute ~side_info () in
  let interaction = Minimax.Optimal_interaction.solve ~deployed:mechanism consumer in

  (* 5. Reinterpret the released value through the optimal interaction:
        sample from row [released] of the interaction matrix. *)
  let row = interaction.Minimax.Optimal_interaction.interaction.(released) in
  let refined = Prob.Discrete.sample (Prob.Discrete.of_rat_row row) rng in
  Printf.printf "consumer reinterpreted  : %d\n" refined;

  (* 6. The punchline (Theorem 1): this consumer's loss equals the loss
        of the best alpha-DP mechanism built specifically for it. *)
  let tailored = Minimax.Optimal_mechanism.solve ~alpha consumer in
  Printf.printf "loss via geometric      : %s\n"
    (Rat.to_string interaction.Minimax.Optimal_interaction.loss);
  Printf.printf "loss of tailored optimum: %s\n"
    (Rat.to_string tailored.Minimax.Optimal_mechanism.loss);
  assert (
    Rat.equal interaction.Minimax.Optimal_interaction.loss
      tailored.Minimax.Optimal_mechanism.loss);
  print_endline "universality verified: the deployed geometric mechanism was optimal for this consumer."
