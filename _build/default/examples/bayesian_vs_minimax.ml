(* §2.7 of the paper, executable: the same deployed geometric mechanism
   serves Bayesian consumers (Ghosh-Roughgarden-Sundararajan, STOC'09)
   and minimax consumers (this paper) — both extract their personal
   optimum, but their post-processing differs in kind:

     - Bayesian: a deterministic remap of outputs;
     - minimax : a genuinely randomized reinterpretation.

   Run with:  dune exec examples/bayesian_vs_minimax.exe *)

module Bay = Minimax.Bayesian
module U = Minimax.Universal

let q = Rat.of_ints

let () =
  let n = 5 in
  let alpha = q 1 3 in
  let deployed = Mech.Geometric.matrix ~n ~alpha in
  Printf.printf "deployed: geometric mechanism, n=%d, α=%s\n\n" n (Rat.to_string alpha);

  (* --- The Bayesian consumer -------------------------------------- *)
  (* An epidemiologist with last year's data: a prior peaked at 2. *)
  let prior = Bay.peaked_prior ~n ~peak:2 ~decay:(q 1 2) in
  let bayesian = Bay.make ~label:"epidemiologist" ~prior ~loss:Minimax.Loss.absolute () in
  let remap = Bay.optimal_remap bayesian deployed in
  Printf.printf "Bayesian consumer (prior peaked at 2, |i-r| loss)\n";
  Printf.printf "  optimal post-processing is a deterministic remap:\n    ";
  Array.iteri (fun r r' -> Printf.printf "%d→%d " r r') remap;
  print_newline ();
  let _, remap_loss = Bay.post_process bayesian deployed in
  let _, lp_loss = Bay.optimal_mechanism ~alpha bayesian ~n in
  Printf.printf "  expected loss after remap : %s\n" (Rat.to_string remap_loss);
  Printf.printf "  Bayesian-optimal LP value : %s  (equal: %b)\n\n" (Rat.to_string lp_loss)
    (Rat.equal remap_loss lp_loss);

  (* --- The minimax consumer --------------------------------------- *)
  (* A journalist with no prior but a hard bound from public records. *)
  let side_info = Minimax.Side_info.at_most ~n 4 in
  let minimax = Minimax.Consumer.make ~label:"journalist" ~loss:Minimax.Loss.absolute ~side_info () in
  let cmp = U.compare_for ~alpha minimax in
  Printf.printf "Minimax consumer (knows count <= 4, |i-r| loss)\n";
  Printf.printf "  optimal post-processing is randomized: %b\n"
    (not (Bay.is_deterministic cmp.U.interaction));
  print_endline "  interaction matrix (rows = received output):";
  print_endline (Report.Table.render (Report.Table.of_rat_matrix cmp.U.interaction));
  Printf.printf "  worst-case loss after interaction : %s\n"
    (Rat.to_string cmp.U.universal_loss);
  Printf.printf "  tailored minimax LP value         : %s  (equal: %b)\n\n"
    (Rat.to_string cmp.U.tailored_loss)
    (U.universality_holds cmp);

  (* --- The punchline ----------------------------------------------- *)
  print_endline "One deployment served both consumers optimally. The agency never asked";
  print_endline "either of them for a prior, a loss function, or side information.";

  (* Also contrast the decision rules themselves: the Bayesian's
     average-case guarantee vs the minimax worst case, on the same
     mechanism. *)
  let minimax_of_bayes_mech =
    (* the minimax (worst-case) loss of the Bayesian's induced mechanism *)
    let induced, _ = Bay.post_process bayesian deployed in
    Mech.Mechanism.minimax_loss induced
      ~loss:(fun i r -> Minimax.Loss.eval Minimax.Loss.absolute i r)
      ~side_info:(List.init (n + 1) Fun.id)
  in
  Printf.printf "\nworst-case loss of the Bayesian's remapped mechanism: %s\n"
    (Rat.to_string minimax_of_bayes_mech);
  Printf.printf "worst-case loss of the minimax pipeline            : %s\n"
    (Rat.to_string cmp.U.universal_loss);
  print_endline "(the Bayesian trades worst-case robustness for average-case sharpness)"
