(* Example 1 of the paper: the drug company.

   The company knows l people bought its flu drug this month — so the
   true flu count is at least l. It reads the published (geometric-
   perturbed) count and reinterprets it through its own optimal
   interaction. The example shows:

     1. the optimal interaction clamps impossible outputs into S={l..n};
     2. the refined estimate is strictly better than the naive reading;
     3. the refined loss equals the tailored LP optimum (Theorem 1).

   Run with:  dune exec examples/drug_company.exe *)

module Oi = Minimax.Optimal_interaction

let () =
  let rng = Prob.Rng.of_int 11 in
  let n = 12 in

  (* Survey a population in which drug buyers all have flu, so the
     drug-sales count is a certified lower bound on the flu count. *)
  let db = Dpdb.Generator.population rng n ~flu_rate:0.55 ~drug_rate_given_flu:0.6 in
  let flu = Dpdb.Count_query.eval Dpdb.Generator.flu_anywhere db in
  let sales = Dpdb.Count_query.eval Dpdb.Generator.drug_query db in
  Printf.printf "true flu count  : %d (secret)\n" flu;
  Printf.printf "drug sales      : %d (company's own books => flu >= %d)\n\n" sales sales;

  (* The agency deploys the geometric mechanism once, for everyone. *)
  let alpha = Rat.of_ints 1 2 in
  let deployed = Mech.Geometric.matrix ~n ~alpha in

  (* The company's decision-theoretic profile: it plans production, so
     squared loss (over/under-production both hurt, quadratically). *)
  let side_info = Minimax.Side_info.at_least ~n sales in
  let consumer =
    Minimax.Consumer.make ~label:"drug company" ~loss:Minimax.Loss.squared ~side_info ()
  in
  let result = Oi.solve ~deployed consumer in

  (* 1. The interaction never outputs below the known lower bound. *)
  let t = result.Oi.interaction in
  let clamps = ref true in
  for r = 0 to n do
    for r' = 0 to sales - 1 do
      if not (Rat.is_zero t.(r).(r')) then clamps := false
    done
  done;
  Printf.printf "interaction maps every output into {%d..%d}: %b\n" sales n !clamps;

  (* 2. Worst-case loss: naive reading vs optimal interaction. *)
  let naive = Minimax.Consumer.minimax_loss consumer deployed in
  Printf.printf "worst-case squared loss, naive reading      : %s\n"
    (Rat.to_decimal_string ~places:4 naive);
  Printf.printf "worst-case squared loss, optimal interaction: %s\n"
    (Rat.to_decimal_string ~places:4 result.Oi.loss);

  (* 3. Theorem 1: this equals the best the agency could have done for
        the company specifically. *)
  let tailored = Minimax.Optimal_mechanism.solve ~alpha consumer in
  Printf.printf "tailored LP optimum                         : %s\n"
    (Rat.to_decimal_string ~places:4 tailored.Minimax.Optimal_mechanism.loss);
  assert (Rat.equal result.Oi.loss tailored.Minimax.Optimal_mechanism.loss);
  print_newline ();

  (* A concrete reading session: simulate the full pipeline many times
     and compare naive vs refined mean squared error at the true
     count. *)
  let trials = 50_000 in
  let sq_naive = ref 0 and sq_refined = ref 0 in
  for _ = 1 to trials do
    let published = Mech.Mechanism.sample deployed ~input:flu rng in
    let refined =
      Prob.Discrete.sample (Prob.Discrete.of_rat_row t.(published)) rng
    in
    sq_naive := !sq_naive + ((published - flu) * (published - flu));
    sq_refined := !sq_refined + ((refined - flu) * (refined - flu))
  done;
  Printf.printf "Monte-Carlo at the true count (%d trials):\n" trials;
  Printf.printf "  naive MSE   : %.4f\n" (float_of_int !sq_naive /. float_of_int trials);
  Printf.printf "  refined MSE : %.4f\n" (float_of_int !sq_refined /. float_of_int trials)
