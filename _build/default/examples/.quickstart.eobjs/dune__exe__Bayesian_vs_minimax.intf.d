examples/bayesian_vs_minimax.mli:
