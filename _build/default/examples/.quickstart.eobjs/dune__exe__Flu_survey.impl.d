examples/flu_survey.ml: Array Dpdb List Minimax Printf Prob Rat
