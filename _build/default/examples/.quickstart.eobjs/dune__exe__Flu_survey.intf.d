examples/flu_survey.mli:
