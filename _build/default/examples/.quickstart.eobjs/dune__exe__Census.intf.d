examples/census.mli:
