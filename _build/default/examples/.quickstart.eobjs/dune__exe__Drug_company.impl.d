examples/drug_company.ml: Array Dpdb Mech Minimax Printf Prob Rat
