examples/quickstart.ml: Array Dpdb Mech Minimax Printf Prob Rat
