examples/census.ml: Array Bigint Dpdb List Mech Minimax Printf Prob Rat String
