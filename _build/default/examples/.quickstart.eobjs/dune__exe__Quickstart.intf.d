examples/quickstart.mli:
