examples/drug_company.mli:
