examples/bayesian_vs_minimax.ml: Array Fun List Mech Minimax Printf Rat Report
