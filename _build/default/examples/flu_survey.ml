(* The paper's running example, end to end: a health agency publishes
   the number of San Diego adults who contracted the flu, at multiple
   privacy levels simultaneously (Algorithm 1), in a collusion-
   resistant way.

   Three audiences:
     - government executives (α = 1/4, most accurate),
     - partner drug companies (α = 1/2),
     - the public Internet report (α = 4/5, most private).

   Run with:  dune exec examples/flu_survey.exe *)

module Ml = Minimax.Multi_level

let q = Rat.of_ints

let () =
  let rng = Prob.Rng.of_int 20101004 in

  (* Synthesize the survey population (the real CDPH tables are not
     public; see DESIGN.md's substitution notes). *)
  let n = 8 in
  let db = Dpdb.Generator.population rng n ~flu_rate:0.25 in
  let true_count = Dpdb.Count_query.eval Dpdb.Generator.flu_query db in
  Printf.printf "survey size: %d individuals\n" n;
  Printf.printf "query      : %s\n" (Dpdb.Count_query.name Dpdb.Generator.flu_query);
  Printf.printf "true count : %d (kept secret)\n\n" true_count;

  (* Build the multi-level release plan. *)
  let levels = [ q 1 4; q 1 2; q 4 5 ] in
  let audiences = [ "executives"; "drug companies"; "internet" ] in
  let plan = Ml.make_plan ~n ~levels in

  (* One correlated release per audience. *)
  let releases = Ml.release plan ~true_result:true_count rng in
  print_endline "published counts:";
  List.iteri
    (fun i name ->
      Printf.printf "  %-14s (α=%s): %d\n" name (Rat.to_string (List.nth levels i)) releases.(i))
    audiences;
  print_newline ();

  (* Why correlated? Because colluding audiences must learn nothing
     beyond the least-private release. Demonstrate with the exact
     posterior over the true count (uniform prior). *)
  let show_posterior label observed =
    match Ml.posterior plan ~observed with
    | None -> Printf.printf "  %s: impossible observation\n" label
    | Some p ->
      let best = ref 0 in
      Array.iteri (fun i v -> if Rat.compare v p.(!best) > 0 then best := i) p;
      Printf.printf "  %-28s mode=%d  P(mode)=%s\n" label !best
        (Rat.to_decimal_string ~places:4 p.(!best))
  in
  print_endline "attacker's posterior over the true count:";
  show_posterior "executives alone" [ (0, releases.(0)) ];
  show_posterior "exec + drug colluding" [ (0, releases.(0)); (1, releases.(1)) ];
  show_posterior "all three colluding" [ (0, releases.(0)); (1, releases.(1)); (2, releases.(2)) ];
  print_endline "  (identical posteriors: collusion gained the attackers nothing — Lemma 4)";
  print_newline ();

  (* Each audience's marginal is exactly its own geometric mechanism,
     so by Theorem 1 each audience, acting rationally, extracts its
     personally-optimal utility. Show it for the Internet audience. *)
  let alpha_public = List.nth levels 2 in
  let consumer =
    Minimax.Consumer.make ~loss:Minimax.Loss.absolute
      ~side_info:(Minimax.Side_info.full n) ()
  in
  let cmp = Minimax.Universal.compare_for ~alpha:alpha_public consumer in
  Printf.printf "internet reader, |i-r| loss: universal loss %s = tailored optimum %s (%B)\n"
    (Rat.to_decimal_string ~places:4 cmp.Minimax.Universal.universal_loss)
    (Rat.to_decimal_string ~places:4 cmp.Minimax.Universal.tailored_loss)
    (Minimax.Universal.universality_holds cmp)
