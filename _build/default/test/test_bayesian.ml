(* Tests for the Bayesian-consumer baseline (§2.7 / Ghosh et al.):
   priors, deterministic optimal remaps, the Bayesian optimal-mechanism
   LP, and the Bayesian analogue of universality. *)

module M = Mech.Mechanism
module Geo = Mech.Geometric
module Bay = Minimax.Bayesian
module L = Minimax.Loss

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal
let half = q 1 2

(* --------------------------------------------------------------- *)
(* Priors                                                           *)
(* --------------------------------------------------------------- *)

let test_uniform_prior () =
  let p = Bay.uniform_prior 3 in
  Alcotest.(check int) "length" 4 (Array.length p);
  Alcotest.check rat "entry" (q 1 4) p.(0);
  Alcotest.check rat "sums to 1" Rat.one (Array.fold_left Rat.add Rat.zero p)

let test_peaked_prior () =
  let p = Bay.peaked_prior ~n:4 ~peak:2 ~decay:half in
  Alcotest.check rat "sums to 1" Rat.one (Array.fold_left Rat.add Rat.zero p);
  Alcotest.(check bool) "peak largest" true (Rat.compare p.(2) p.(0) > 0);
  Alcotest.check rat "symmetric" p.(1) p.(3)

let test_make_validates () =
  Alcotest.check_raises "not normalized" (Invalid_argument "Bayesian.make: prior does not sum to 1")
    (fun () -> ignore (Bay.make ~prior:[| half; half; half |] ~loss:L.absolute ()))

(* --------------------------------------------------------------- *)
(* Expected loss and remap                                          *)
(* --------------------------------------------------------------- *)

let bayes ?(n = 3) ?prior ?(loss = L.absolute) () =
  let prior = match prior with Some p -> p | None -> Bay.uniform_prior n in
  Bay.make ~prior ~loss ()

let test_expected_loss_identity () =
  (* Identity mechanism: zero expected loss for any proper loss. *)
  let b = bayes () in
  Alcotest.check rat "zero" Rat.zero (Bay.expected_loss b (M.identity 3))

let test_remap_is_deterministic_matrix () =
  let b = bayes () in
  let g = Geo.matrix ~n:3 ~alpha:half in
  let remap = Bay.optimal_remap b g in
  let matrix = Bay.remap_matrix ~n:3 remap in
  Alcotest.(check bool) "deterministic" true (Bay.is_deterministic matrix)

let test_remap_monotone () =
  (* For symmetric priors/losses the remap should be monotone in r. *)
  let b = bayes () in
  let g = Geo.matrix ~n:3 ~alpha:half in
  let remap = Bay.optimal_remap b g in
  for r = 0 to 2 do
    Alcotest.(check bool) "monotone" true (remap.(r) <= remap.(r + 1))
  done

let test_remap_skewed_prior () =
  (* A prior concentrated at n drags every output toward n. *)
  let prior = Bay.peaked_prior ~n:3 ~peak:3 ~decay:(q 1 10) in
  let b = bayes ~prior () in
  let g = Geo.matrix ~n:3 ~alpha:half in
  let remap = Bay.optimal_remap b g in
  Alcotest.(check bool) "output 0 pulled up" true (remap.(0) >= 2)

let test_post_process_improves () =
  let b = bayes ~loss:L.squared () in
  let g = Geo.matrix ~n:3 ~alpha:half in
  let _, processed_loss = Bay.post_process b g in
  Alcotest.(check bool) "no worse" true (Rat.compare processed_loss (Bay.expected_loss b g) <= 0)

(* --------------------------------------------------------------- *)
(* Bayesian optimal mechanism LP                                    *)
(* --------------------------------------------------------------- *)

let test_optimal_mechanism_dp () =
  let b = bayes () in
  let mech, _ = Bay.optimal_mechanism ~alpha:half b ~n:3 in
  Alcotest.(check bool) "dp" true (M.is_dp ~alpha:half mech)

let test_optimal_loss_consistent () =
  let b = bayes () in
  let mech, loss = Bay.optimal_mechanism ~alpha:half b ~n:3 in
  Alcotest.check rat "loss recomputes" loss (Bay.expected_loss b mech)

(* The Ghosh-et-al. theorem (the paper's §2.7 reference point):
   geometric + Bayesian-optimal deterministic remap attains the
   Bayesian LP optimum. *)
let test_bayesian_universality () =
  List.iter
    (fun (prior, loss, alpha) ->
      let b = Bay.make ~prior ~loss () in
      let g = Geo.matrix ~n:3 ~alpha in
      let _, remap_loss = Bay.post_process b g in
      let _, lp_loss = Bay.optimal_mechanism ~alpha b ~n:3 in
      Alcotest.check rat
        (Printf.sprintf "prior-peak loss=%s alpha=%s" (L.name loss) (Rat.to_string alpha))
        lp_loss remap_loss)
    [
      (Bay.uniform_prior 3, L.absolute, half);
      (Bay.uniform_prior 3, L.zero_one, half);
      (Bay.peaked_prior ~n:3 ~peak:1 ~decay:half, L.absolute, q 1 4);
      (Bay.peaked_prior ~n:3 ~peak:3 ~decay:(q 1 3), L.squared, half);
    ]

let test_minimax_vs_bayesian_losses () =
  (* The minimax guarantee is worst-case, hence at least the Bayesian
     loss under any prior supported on the side information. *)
  let n = 3 and alpha = half in
  let mc = Minimax.Consumer.make ~loss:L.absolute ~side_info:(Minimax.Side_info.full n) () in
  let minimax_loss = (Minimax.Optimal_mechanism.solve ~alpha mc).Minimax.Optimal_mechanism.loss in
  let b = bayes () in
  let _, bayes_loss = Bay.optimal_mechanism ~alpha b ~n in
  Alcotest.(check bool) "bayes <= minimax" true (Rat.compare bayes_loss minimax_loss <= 0)

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let arb_prior_n3 =
  QCheck.make
    ~print:(fun a -> String.concat "," (Array.to_list (Array.map Rat.to_string a)))
    QCheck.Gen.(
      map
        (fun ws ->
          let ws = Array.of_list (List.map (fun w -> Rat.of_ints (1 + w) 1) ws) in
          Bay.normalize_prior ws)
        (list_size (return 4) (int_bound 9)))

let arb_alpha =
  QCheck.make ~print:Rat.to_string
    QCheck.Gen.(map2 (fun a b -> Rat.of_ints a (a + b)) (int_range 1 5) (int_range 1 5))

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "bayesian universality on random priors" 15 (QCheck.pair arb_prior_n3 arb_alpha)
      (fun (prior, alpha) ->
        let b = Bay.make ~prior ~loss:L.absolute () in
        let g = Geo.matrix ~n:3 ~alpha in
        let _, remap_loss = Bay.post_process b g in
        let _, lp_loss = Bay.optimal_mechanism ~alpha b ~n:3 in
        Rat.equal lp_loss remap_loss);
    prop "remap never increases loss" 20 (QCheck.pair arb_prior_n3 arb_alpha)
      (fun (prior, alpha) ->
        let b = Bay.make ~prior ~loss:L.squared () in
        let g = Geo.matrix ~n:3 ~alpha in
        let _, processed = Bay.post_process b g in
        Rat.compare processed (Bay.expected_loss b g) <= 0);
    prop "normalize_prior sums to one" 30 arb_prior_n3 (fun p ->
        Rat.is_one (Array.fold_left Rat.add Rat.zero p));
  ]

let () =
  Alcotest.run "bayesian"
    [
      ( "priors",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_prior;
          Alcotest.test_case "peaked" `Quick test_peaked_prior;
          Alcotest.test_case "validation" `Quick test_make_validates;
        ] );
      ( "remap",
        [
          Alcotest.test_case "identity loss" `Quick test_expected_loss_identity;
          Alcotest.test_case "deterministic matrix" `Quick test_remap_is_deterministic_matrix;
          Alcotest.test_case "monotone" `Quick test_remap_monotone;
          Alcotest.test_case "skewed prior" `Quick test_remap_skewed_prior;
          Alcotest.test_case "post-process improves" `Quick test_post_process_improves;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "dp" `Quick test_optimal_mechanism_dp;
          Alcotest.test_case "loss consistent" `Quick test_optimal_loss_consistent;
          Alcotest.test_case "Bayesian universality" `Slow test_bayesian_universality;
          Alcotest.test_case "minimax dominates bayesian" `Quick test_minimax_vs_bayesian_losses;
        ] );
      ("properties", properties);
    ]
