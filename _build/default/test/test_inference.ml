(* Tests for consumer-side inference (posteriors, credible sets) and
   the new numeric helpers (isqrt, lcm, rational approximation). *)

module Inf = Minimax.Inference
module Geo = Mech.Geometric
module M = Mech.Mechanism
module B = Bigint

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal
let bigint = Alcotest.testable B.pp B.equal

(* --------------------------------------------------------------- *)
(* Bigint number theory                                             *)
(* --------------------------------------------------------------- *)

let test_isqrt_small () =
  for x = 0 to 1000 do
    let r = B.to_int_exn (B.isqrt (B.of_int x)) in
    if not (r * r <= x && (r + 1) * (r + 1) > x) then Alcotest.failf "isqrt %d = %d" x r
  done

let test_isqrt_big () =
  let big = B.of_string "123456789012345678901234567890" in
  let r = B.isqrt (B.mul big big) in
  Alcotest.check bigint "perfect square" big r;
  let r2 = B.isqrt (B.pred (B.mul big big)) in
  Alcotest.check bigint "one less" (B.pred big) r2;
  Alcotest.check_raises "negative" (Invalid_argument "Bigint.isqrt: negative input") (fun () ->
      ignore (B.isqrt (B.of_int (-1))))

let test_sqrt_exact () =
  Alcotest.(check (option bigint)) "square" (Some (B.of_int 12)) (B.sqrt_exact (B.of_int 144));
  Alcotest.(check (option bigint)) "non-square" None (B.sqrt_exact (B.of_int 145));
  Alcotest.(check (option bigint)) "zero" (Some B.zero) (B.sqrt_exact B.zero);
  Alcotest.(check (option bigint)) "negative" None (B.sqrt_exact (B.of_int (-4)))

let test_lcm () =
  Alcotest.check bigint "4,6" (B.of_int 12) (B.lcm (B.of_int 4) (B.of_int 6));
  Alcotest.check bigint "zero" B.zero (B.lcm B.zero (B.of_int 5));
  Alcotest.check bigint "negative operands" (B.of_int 12) (B.lcm (B.of_int (-4)) (B.of_int 6))

let test_int64 () =
  Alcotest.(check (option int64)) "roundtrip" (Some 123456789L) (B.to_int64 (B.of_int64 123456789L));
  Alcotest.(check (option int64)) "min_int64" (Some Int64.min_int) (B.to_int64 (B.of_int64 Int64.min_int));
  Alcotest.(check (option int64)) "max_int64" (Some Int64.max_int) (B.to_int64 (B.of_int64 Int64.max_int));
  Alcotest.(check (option int64)) "overflow" None (B.to_int64 (B.pow B.two 80))

(* --------------------------------------------------------------- *)
(* Rational approximation                                           *)
(* --------------------------------------------------------------- *)

let test_approximate_pi () =
  (* classic: best approximations of pi *)
  let pi = Rat.of_string "3.14159265358979" in
  Alcotest.check rat "den<=10" (q 22 7) (Rat.approximate ~max_den:(B.of_int 10) pi);
  Alcotest.check rat "den<=200" (q 355 113) (Rat.approximate ~max_den:(B.of_int 200) pi)

let test_approximate_exact_when_small () =
  Alcotest.check rat "already small" (q 3 7) (Rat.approximate ~max_den:(B.of_int 10) (q 3 7))

let test_approximate_negative () =
  let x = Rat.of_string "-3.14159265358979" in
  Alcotest.check rat "negative" (q (-22) 7) (Rat.approximate ~max_den:(B.of_int 10) x)

let test_approximate_validation () =
  Alcotest.check_raises "max_den 0" (Invalid_argument "Rat.approximate: max_den must be >= 1")
    (fun () -> ignore (Rat.approximate ~max_den:B.zero Rat.one))

let test_rat_sqrt_exact () =
  Alcotest.(check (option rat)) "1/4" (Some (q 1 2)) (Rat.sqrt_exact (q 1 4));
  Alcotest.(check (option rat)) "9/16" (Some (q 3 4)) (Rat.sqrt_exact (q 9 16));
  Alcotest.(check (option rat)) "1/2" None (Rat.sqrt_exact (q 1 2));
  Alcotest.(check (option rat)) "negative" None (Rat.sqrt_exact (q (-1) 4))

let prop_approximate_is_best =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"approximation beats every small-denominator rival" ~count:60
       (QCheck.pair
          (QCheck.make ~print:Rat.to_string
             QCheck.Gen.(map2 (fun a b -> Rat.of_ints a b) (int_range 1 100000) (int_range 1 100000)))
          QCheck.(int_range 2 40))
       (fun (x, max_den) ->
         let approx = Rat.approximate ~max_den:(B.of_int max_den) x in
         let d_approx = Rat.abs (Rat.sub x approx) in
         (* exhaustive rival check over all denominators <= max_den *)
         let ok = ref (B.compare (Rat.den approx) (B.of_int max_den) <= 0) in
         for den = 1 to max_den do
           (* best numerator for this denominator *)
           let num = Rat.round (Rat.mul_int x den) in
           let rival = Rat.make num (B.of_int den) in
           if Rat.compare (Rat.abs (Rat.sub x rival)) d_approx < 0 then ok := false
         done;
         !ok))

(* --------------------------------------------------------------- *)
(* Inference                                                        *)
(* --------------------------------------------------------------- *)

let g4 = Geo.matrix ~n:4 ~alpha:(q 1 2)

let test_posterior_sums_to_one () =
  for r = 0 to 4 do
    match Inf.posterior ~deployed:g4 ~observed:r () with
    | None -> Alcotest.fail "geometric gives every output positive mass"
    | Some p -> Alcotest.check rat "sum" Rat.one (Array.fold_left Rat.add Rat.zero p)
  done

let test_posterior_identity_mechanism () =
  (* Identity mechanism: the observation pins the posterior. *)
  let id = M.identity 4 in
  match Inf.posterior ~deployed:id ~observed:2 () with
  | None -> Alcotest.fail "possible"
  | Some p ->
    Alcotest.check rat "certain" Rat.one p.(2);
    Alcotest.check rat "elsewhere" Rat.zero p.(0)

let test_posterior_prior_matters () =
  let skewed = [| q 9 10; q 1 40; q 1 40; q 1 40; q 1 40 |] in
  match
    ( Inf.posterior ~deployed:g4 ~observed:4 (),
      Inf.posterior ~prior:skewed ~deployed:g4 ~observed:4 () )
  with
  | Some unif, Some skew ->
    Alcotest.(check bool) "skewed prior pulls toward 0" true (Rat.compare skew.(0) unif.(0) > 0)
  | _ -> Alcotest.fail "both possible"

let test_posterior_zero_probability_observation () =
  (* A mechanism with a zero column: observing it is impossible. *)
  let m =
    M.of_rows
      [ [ Rat.one; Rat.zero ]; [ Rat.one; Rat.zero ] ]
  in
  Alcotest.(check bool) "none" true (Inf.posterior ~deployed:m ~observed:1 () = None)

let test_map_estimate () =
  Alcotest.(check (option int)) "peak at observation" (Some 2)
    (Inf.map_estimate ~deployed:g4 ~observed:2 ());
  Alcotest.(check (option int)) "boundary" (Some 0) (Inf.map_estimate ~deployed:g4 ~observed:0 ())

let test_posterior_mean_in_range () =
  for r = 0 to 4 do
    match Inf.posterior_mean ~deployed:g4 ~observed:r () with
    | None -> Alcotest.fail "possible"
    | Some m ->
      Alcotest.(check bool) "in [0,4]" true
        (Rat.sign m >= 0 && Rat.compare m (q 4 1) <= 0)
  done

let test_credible_set () =
  match Inf.credible_set ~deployed:g4 ~observed:2 ~level:(q 9 10) () with
  | None -> Alcotest.fail "possible"
  | Some (members, mass) ->
    Alcotest.(check bool) "contains MAP" true (List.mem 2 members);
    Alcotest.(check bool) "mass >= level" true (Rat.compare mass (q 9 10) >= 0);
    (* minimality: dropping the least-mass member falls below level *)
    (match Inf.posterior ~deployed:g4 ~observed:2 () with
     | None -> Alcotest.fail "possible"
     | Some p ->
       let smallest =
         List.fold_left (fun acc i -> if Rat.compare p.(i) p.(acc) < 0 then i else acc)
           (List.hd members) members
       in
       Alcotest.(check bool) "greedy-minimal" true
         (Rat.compare (Rat.sub mass p.(smallest)) (q 9 10) < 0))

let test_credible_set_levels () =
  (* level 0 gives the empty set; level 1 gives (at most) everything. *)
  (match Inf.credible_set ~deployed:g4 ~observed:1 ~level:Rat.zero () with
   | Some ([], mass) -> Alcotest.check rat "empty mass" Rat.zero mass
   | _ -> Alcotest.fail "level-0 set should be empty");
  match Inf.credible_set ~deployed:g4 ~observed:1 ~level:Rat.one () with
  | Some (members, mass) ->
    Alcotest.(check int) "full support" 5 (List.length members);
    Alcotest.check rat "full mass" Rat.one mass
  | None -> Alcotest.fail "possible"

let test_likelihood_set () =
  (* ratio 1: only the maximizers; ratio 0: everything with any mass. *)
  let only_max = Inf.likelihood_set ~deployed:g4 ~observed:0 ~ratio:Rat.one in
  Alcotest.(check (list int)) "argmax" [ 0 ] only_max;
  let everything = Inf.likelihood_set ~deployed:g4 ~observed:0 ~ratio:Rat.zero in
  Alcotest.(check int) "all" 5 (List.length everything)

let test_odds_bounded_for_dp () =
  for r = 0 to 4 do
    Alcotest.(check bool) "bounded" true
      (Inf.posterior_odds_bounded ~alpha:(q 1 2) ~deployed:g4 ~observed:r ())
  done;
  (* and violated for a non-private mechanism *)
  let id = M.identity 2 in
  (* identity: posterior puts mass 1 on the observation; adjacent odds
     are 0-or-infinite but the check skips zero entries, so craft a
     near-deterministic DP-violating mechanism instead. *)
  let leaky =
    M.of_rows [ [ q 99 100; q 1 100 ]; [ q 1 100; q 99 100 ] ]
  in
  Alcotest.(check bool) "violated at 1/2" false
    (Inf.posterior_odds_bounded ~alpha:(q 1 2) ~deployed:leaky ~observed:0 ());
  ignore id

let test_inference_validation () =
  Alcotest.check_raises "bad observation"
    (Invalid_argument "Inference.posterior: observation out of range") (fun () ->
      ignore (Inf.posterior ~deployed:g4 ~observed:9 ()));
  Alcotest.check_raises "bad level"
    (Invalid_argument "Inference.credible_set: level must lie in [0,1]") (fun () ->
      ignore (Inf.credible_set ~deployed:g4 ~observed:0 ~level:(q 3 2) ()))

(* Consistency with Multi_level's posterior machinery. *)
let test_matches_multilevel_single_observation () =
  let n = 3 in
  let levels = [ q 1 4; q 1 2 ] in
  let plan = Minimax.Multi_level.make_plan ~n ~levels in
  let g = Geo.matrix ~n ~alpha:(q 1 4) in
  for r = 0 to n do
    match
      (Minimax.Multi_level.posterior plan ~observed:[ (0, r) ], Inf.posterior ~deployed:g ~observed:r ())
    with
    | Some a, Some b -> Array.iter2 (fun x y -> Alcotest.check rat "agree" x y) a b
    | _ -> Alcotest.fail "both defined"
  done

let () =
  Alcotest.run "inference"
    [
      ( "bigint-number-theory",
        [
          Alcotest.test_case "isqrt small" `Quick test_isqrt_small;
          Alcotest.test_case "isqrt big" `Quick test_isqrt_big;
          Alcotest.test_case "sqrt_exact" `Quick test_sqrt_exact;
          Alcotest.test_case "lcm" `Quick test_lcm;
          Alcotest.test_case "int64 bridge" `Quick test_int64;
        ] );
      ( "rat-approximation",
        [
          Alcotest.test_case "pi convergents" `Quick test_approximate_pi;
          Alcotest.test_case "identity on small" `Quick test_approximate_exact_when_small;
          Alcotest.test_case "negative" `Quick test_approximate_negative;
          Alcotest.test_case "validation" `Quick test_approximate_validation;
          Alcotest.test_case "rational sqrt" `Quick test_rat_sqrt_exact;
          prop_approximate_is_best;
        ] );
      ( "inference",
        [
          Alcotest.test_case "posterior normalized" `Quick test_posterior_sums_to_one;
          Alcotest.test_case "identity mechanism" `Quick test_posterior_identity_mechanism;
          Alcotest.test_case "prior matters" `Quick test_posterior_prior_matters;
          Alcotest.test_case "impossible observation" `Quick test_posterior_zero_probability_observation;
          Alcotest.test_case "map estimate" `Quick test_map_estimate;
          Alcotest.test_case "posterior mean range" `Quick test_posterior_mean_in_range;
          Alcotest.test_case "credible set" `Quick test_credible_set;
          Alcotest.test_case "credible set levels" `Quick test_credible_set_levels;
          Alcotest.test_case "likelihood set" `Quick test_likelihood_set;
          Alcotest.test_case "odds bounded iff DP" `Quick test_odds_bounded_for_dp;
          Alcotest.test_case "validation" `Quick test_inference_validation;
          Alcotest.test_case "matches multilevel" `Quick test_matches_multilevel_single_observation;
        ] );
    ]
