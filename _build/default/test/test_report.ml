(* Tests for the reporting layer: table rendering and the experiment
   harness verdicts. *)

let q = Rat.of_ints

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0


let test_render_basic () =
  let t = Report.Table.make ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  let rendered = Report.Table.render t in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "line count" 6 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.for_all (fun w -> w = List.hd widths) widths);
  Alcotest.(check bool) "contains 333" true (contains rendered "333")

let test_render_alignment () =
  let t =
    Report.Table.make
      ~aligns:[ Report.Table.Left; Report.Table.Right ]
      ~headers:[ "x"; "y" ]
      [ [ "a"; "1" ]; [ "bb"; "22" ] ]
  in
  let rendered = Report.Table.render t in
  Alcotest.(check bool) "right-aligned column pads left" true
    (String.length rendered > 0)

let test_render_ragged_rejected () =
  let t = Report.Table.make ~headers:[ "a"; "b" ] [ [ "1" ] ] in
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row") (fun () ->
      ignore (Report.Table.render t))

let test_rat_matrix_table () =
  let m = [| [| q 1 2; q 1 2 |]; [| q 1 4; q 3 4 |] |] in
  let t = Report.Table.of_rat_matrix m in
  let rendered = Report.Table.render t in
  Alcotest.(check bool) "has fraction" true (contains rendered "1/2")

let test_rat_matrix_decimal () =
  let m = [| [| q 1 2 |] |] in
  let t = Report.Table.of_rat_matrix_decimal ~places:3 m in
  let rendered = Report.Table.render t in
  Alcotest.(check bool) "decimal form" true (contains rendered "0.500")

let test_mechanism_table () =
  let g = Mech.Geometric.matrix ~n:2 ~alpha:(q 1 2) in
  let t = Report.Table.of_mechanism g in
  Alcotest.(check bool) "renders" true (String.length (Report.Table.render t) > 0)

let test_experiment_pass () =
  let e =
    Report.Experiment.make ~id:"X" ~title:"t" ~paper_claim:"c" (fun () ->
        (Report.Experiment.Pass, "detail"))
  in
  (match Report.Experiment.run_one e with
   | Report.Experiment.Pass -> ()
   | _ -> Alcotest.fail "expected pass");
  Alcotest.(check bool) "run_all true" true (Report.Experiment.run_all [ e ])

let test_experiment_fail () =
  let bad =
    Report.Experiment.make ~id:"Y" ~title:"t" ~paper_claim:"c" (fun () ->
        (Report.Experiment.Fail "broken", ""))
  in
  Alcotest.(check bool) "run_all false" false (Report.Experiment.run_all [ bad ])

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "basic render" `Quick test_render_basic;
          Alcotest.test_case "alignment" `Quick test_render_alignment;
          Alcotest.test_case "ragged rejected" `Quick test_render_ragged_rejected;
          Alcotest.test_case "rational matrix" `Quick test_rat_matrix_table;
          Alcotest.test_case "decimal matrix" `Quick test_rat_matrix_decimal;
          Alcotest.test_case "mechanism" `Quick test_mechanism_table;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "pass" `Quick test_experiment_pass;
          Alcotest.test_case "fail" `Quick test_experiment_fail;
        ] );
    ]
