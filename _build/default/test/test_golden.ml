(* Golden regression tests: exact rational values computed by this
   stack and cross-checked by hand or against independent closed forms.
   Any change to the LP solver, the geometric construction, or the
   rational layer that perturbs these values fails loudly. *)

module M = Mech.Mechanism
module Geo = Mech.Geometric
module L = Minimax.Loss
module Si = Minimax.Side_info
module C = Minimax.Consumer
module Om = Minimax.Optimal_mechanism

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

let consumer ~n ~loss ~si =
  ignore n;
  C.make ~loss ~side_info:si ()

let check_loss name ~n ~alpha ~loss ~si expected =
  Alcotest.test_case name `Quick (fun () ->
      let c = consumer ~n ~loss ~si in
      let r = Om.solve ~alpha c in
      Alcotest.check rat name expected r.Om.loss;
      (* the fast path must agree *)
      let f = Om.solve_via_interaction ~alpha c in
      Alcotest.check rat (name ^ " (fast)") expected f.Om.loss)

(* --------------------------------------------------------------- *)
(* Golden optimal losses (exact LP vertices)                        *)
(* --------------------------------------------------------------- *)

let golden_losses =
  [
    (* The paper's Table-1 consumer at the two α values discussed. *)
    check_loss "table1 α=1/4" ~n:3 ~alpha:(q 1 4) ~loss:L.absolute ~si:(Si.full 3) (q 168 415);
    check_loss "table1 α=1/2" ~n:3 ~alpha:(q 1 2) ~loss:L.absolute ~si:(Si.full 3) (q 28 39);
    (* Squared loss, same consumer shape. *)
    check_loss "squared n=3 α=1/2" ~n:3 ~alpha:(q 1 2) ~loss:L.squared ~si:(Si.full 3) (q 5 4);
    (* Zero-one loss: at α the best hit probability known in closed
       form for small n — value via exact LP. *)
    check_loss "zero-one n=3 α=1/2" ~n:3 ~alpha:(q 1 2) ~loss:L.zero_one ~si:(Si.full 3) (q 5 9);
    (* Larger instances pin down solver behaviour across sizes. *)
    check_loss "absolute n=5 α=1/2" ~n:5 ~alpha:(q 1 2) ~loss:L.absolute ~si:(Si.full 5) (q 212 231);
    check_loss "absolute n=7 α=1/2" ~n:7 ~alpha:(q 1 2) ~loss:L.absolute ~si:(Si.full 7) (q 1348 1299);
    (* Side information variants. *)
    check_loss "lower bound n=3 α=1/2" ~n:3 ~alpha:(q 1 2) ~loss:L.absolute ~si:(Si.at_least ~n:3 2)
      (q 1 3);
    check_loss "interval n=4 α=1/3" ~n:4 ~alpha:(q 1 3) ~loss:L.absolute ~si:(Si.interval ~n:4 1 3)
      (q 3 7);
  ]

(* --------------------------------------------------------------- *)
(* Golden matrices                                                  *)
(* --------------------------------------------------------------- *)

let test_golden_geometric_matrix () =
  (* G(3,1/2), every entry. *)
  let g = Geo.matrix ~n:3 ~alpha:(q 1 2) in
  let expected =
    [
      [ q 2 3; q 1 6; q 1 12; q 1 12 ];
      [ q 1 3; q 1 3; q 1 6; q 1 6 ];
      [ q 1 6; q 1 6; q 1 3; q 1 3 ];
      [ q 1 12; q 1 12; q 1 6; q 2 3 ];
    ]
  in
  List.iteri
    (fun i row ->
      List.iteri
        (fun r v ->
          Alcotest.check rat (Printf.sprintf "G(3,1/2)[%d][%d]" i r) v (M.prob g ~input:i ~output:r))
        row)
    expected

let test_golden_table1_mechanism () =
  (* The exact Table-1(a) optimal mechanism at α = 1/4 (structured). *)
  let c = consumer ~n:3 ~loss:L.absolute ~si:(Si.full 3) in
  let r = Om.solve_structured ~alpha:(q 1 4) c in
  let expected =
    [
      [ q 272 415; q 489 1660; q 33 830; q 17 1660 ];
      [ q 68 415; q 264 415; q 66 415; q 17 415 ];
      [ q 17 415; q 66 415; q 264 415; q 68 415 ];
      [ q 17 1660; q 33 830; q 489 1660; q 272 415 ];
    ]
  in
  List.iteri
    (fun i row ->
      List.iteri
        (fun out v ->
          Alcotest.check rat
            (Printf.sprintf "optimal[%d][%d]" i out)
            v
            (M.prob r.Om.mechanism ~input:i ~output:out))
        row)
    expected

let test_golden_interaction () =
  (* The exact Table-1(c) interaction at α = 1/4. *)
  let c = consumer ~n:3 ~loss:L.absolute ~si:(Si.full 3) in
  let cmp = Minimax.Universal.compare_for ~alpha:(q 1 4) c in
  let t = cmp.Minimax.Universal.interaction in
  Alcotest.check rat "T[0][0]" (q 68 83) t.(0).(0);
  Alcotest.check rat "T[0][1]" (q 15 83) t.(0).(1);
  Alcotest.check rat "T[1][1]" Rat.one t.(1).(1);
  Alcotest.check rat "T[2][2]" Rat.one t.(2).(2);
  Alcotest.check rat "T[3][2]" (q 15 83) t.(3).(2);
  Alcotest.check rat "T[3][3]" (q 68 83) t.(3).(3)

let test_golden_transition () =
  (* T_{1/4,1/2} at n=2: the Lemma-3 factor, entry by entry via the
     independent linear-algebra path (G⁻¹ computed by Gauss-Jordan). *)
  let t = Minimax.Multi_level.transition ~n:2 ~alpha:(q 1 4) ~beta:(q 1 2) in
  let g_strong = M.matrix (Geo.matrix ~n:2 ~alpha:(q 1 4)) in
  let g_weak = M.matrix (Geo.matrix ~n:2 ~alpha:(q 1 2)) in
  let product = Linalg.Matrix.Q.mul g_strong t in
  Alcotest.(check bool) "product recovers G(2,1/2)" true (Linalg.Matrix.Q.equal product g_weak);
  (* and the row sums are exactly 1 *)
  Array.iter
    (fun row -> Alcotest.check rat "row sum" Rat.one (Array.fold_left Rat.add Rat.zero row))
    t

(* --------------------------------------------------------------- *)
(* Row-weighted (weighted-worst-case) consumers                     *)
(* --------------------------------------------------------------- *)

let test_row_weighted_is_valid_loss () =
  let weights = [| Rat.one; q 3 1; q 1 2; Rat.two |] in
  let loss = L.row_weighted ~weights L.absolute in
  Alcotest.(check bool) "monotone" true (L.is_monotone loss ~n:3);
  Alcotest.check rat "weighted value" (q 6 1) (L.eval loss 1 3)
  (* 3 * |1-3| = 6 *)

let test_row_weighted_universality () =
  (* Weighted-worst-case consumers are minimax consumers; Theorem 1
     must hold for them too. *)
  let weights = [| Rat.one; q 5 2; q 1 3; Rat.two |] in
  let loss = L.row_weighted ~weights L.absolute in
  let c = consumer ~n:3 ~loss ~si:(Si.full 3) in
  List.iter
    (fun alpha ->
      let cmp = Minimax.Universal.compare_for ~alpha c in
      Alcotest.(check bool)
        (Printf.sprintf "α=%s" (Rat.to_string alpha))
        true
        (Minimax.Universal.universality_holds cmp))
    [ q 1 4; q 1 2 ]

(* --------------------------------------------------------------- *)
(* Least-favorable priors (the minimax theorem via LP duals)        *)
(* --------------------------------------------------------------- *)

let test_least_favorable_prior_golden () =
  (* Exact LFP for the Table-1 consumer at α = 1/2. *)
  let c = consumer ~n:3 ~loss:L.absolute ~si:(Si.full 3) in
  match Om.least_favorable_prior ~alpha:(q 1 2) c with
  | None -> Alcotest.fail "nondegenerate"
  | Some (prior, loss) ->
    Alcotest.check rat "loss" (q 28 39) loss;
    Alcotest.check rat "prior[0]" (q 8 39) prior.(0);
    Alcotest.check rat "prior[1]" (q 2 13) prior.(1);
    Alcotest.check rat "prior[2]" (q 5 13) prior.(2);
    Alcotest.check rat "prior[3]" (q 10 39) prior.(3);
    Alcotest.check rat "normalized" Rat.one (Array.fold_left Rat.add Rat.zero prior)

let test_minimax_theorem () =
  (* Under the least-favorable prior, the best Bayesian mechanism does
     exactly as well as the minimax optimum — for a battery of
     consumers, as exact rationals. *)
  List.iter
    (fun (n, alpha, loss, si) ->
      let c = consumer ~n ~loss ~si in
      match Om.least_favorable_prior ~alpha c with
      | None -> Alcotest.fail "nondegenerate"
      | Some (prior, minimax_loss) ->
        (* prior is supported inside the side information *)
        List.iter
          (fun i ->
            if not (Si.mem si i) then
              Alcotest.check rat (Printf.sprintf "off-support %d" i) Rat.zero prior.(i))
          (List.init (n + 1) Fun.id);
        let b = Minimax.Bayesian.make ~prior ~loss () in
        let _, bayes_loss = Minimax.Bayesian.optimal_mechanism ~alpha b ~n in
        Alcotest.check rat
          (Printf.sprintf "%s n=%d α=%s" (L.name loss) n (Rat.to_string alpha))
          minimax_loss bayes_loss)
    [
      (3, q 1 2, L.absolute, Si.full 3);
      (3, q 1 4, L.absolute, Si.full 3);
      (3, q 1 2, L.zero_one, Si.full 3);
      (4, q 1 2, L.squared, Si.at_least ~n:4 2);
      (4, q 1 3, L.absolute, Si.interval ~n:4 1 3);
    ]

let test_bayes_never_beats_minimax_under_any_prior () =
  (* The LFP is the adversary's best: under any other prior supported
     on S, the Bayesian optimum is at most the minimax loss. *)
  let n = 3 and alpha = q 1 2 in
  let c = consumer ~n ~loss:L.absolute ~si:(Si.full 3) in
  let minimax_loss = (Om.solve ~alpha c).Om.loss in
  List.iter
    (fun prior ->
      let b = Minimax.Bayesian.make ~prior ~loss:L.absolute () in
      let _, bayes_loss = Minimax.Bayesian.optimal_mechanism ~alpha b ~n in
      Alcotest.(check bool) "bayes <= minimax" true (Rat.compare bayes_loss minimax_loss <= 0))
    [
      Minimax.Bayesian.uniform_prior n;
      Minimax.Bayesian.peaked_prior ~n ~peak:0 ~decay:(q 1 3);
      Minimax.Bayesian.peaked_prior ~n ~peak:2 ~decay:(q 1 2);
    ]

let test_row_weighted_rejects_bad_weights () =
  Alcotest.check_raises "zero weight" (Invalid_argument "Loss.row_weighted: weights must be positive")
    (fun () -> ignore (L.row_weighted ~weights:[| Rat.zero |] L.absolute))

let () =
  Alcotest.run "golden"
    [
      ("optimal-losses", golden_losses);
      ( "matrices",
        [
          Alcotest.test_case "G(3,1/2)" `Quick test_golden_geometric_matrix;
          Alcotest.test_case "Table 1(a)" `Quick test_golden_table1_mechanism;
          Alcotest.test_case "Table 1(c)" `Quick test_golden_interaction;
          Alcotest.test_case "Lemma 3 transition" `Quick test_golden_transition;
        ] );
      ( "minimax-theorem",
        [
          Alcotest.test_case "golden LFP" `Quick test_least_favorable_prior_golden;
          Alcotest.test_case "Bayes(LFP) = minimax" `Quick test_minimax_theorem;
          Alcotest.test_case "no prior beats LFP" `Quick test_bayes_never_beats_minimax_under_any_prior;
        ] );
      ( "row-weighted",
        [
          Alcotest.test_case "valid loss" `Quick test_row_weighted_is_valid_loss;
          Alcotest.test_case "universality" `Quick test_row_weighted_universality;
          Alcotest.test_case "validation" `Quick test_row_weighted_rejects_bad_weights;
        ] );
    ]
