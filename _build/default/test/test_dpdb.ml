(* Tests for the database substrate: schemas, predicates, the row
   store, count queries, neighbor relation, and — the fact the whole
   privacy theory rests on — unit sensitivity of count queries. *)

module V = Dpdb.Value
module Sc = Dpdb.Schema
module P = Dpdb.Predicate
module Db = Dpdb.Database
module Q = Dpdb.Count_query
module G = Dpdb.Generator

let schema = Sc.make [ ("name", V.Ttext); ("age", V.Tint); ("sick", V.Tbool) ]

let row name age sick = [| V.Text name; V.Int age; V.Bool sick |]

let sample_db =
  Db.of_rows schema
    [ row "ann" 34 true; row "bob" 17 false; row "carol" 52 true; row "dan" 41 false ]

(* --------------------------------------------------------------- *)
(* Values and schemas                                               *)
(* --------------------------------------------------------------- *)

let test_value_equal () =
  Alcotest.(check bool) "int eq" true (V.equal (V.Int 3) (V.Int 3));
  Alcotest.(check bool) "int neq" false (V.equal (V.Int 3) (V.Int 4));
  Alcotest.(check bool) "cross-type neq" false (V.equal (V.Int 1) (V.Bool true));
  Alcotest.(check bool) "text eq" true (V.equal (V.Text "x") (V.Text "x"))

let test_value_compare () =
  Alcotest.(check bool) "int order" true (V.compare (V.Int 1) (V.Int 2) < 0);
  Alcotest.(check bool) "text order" true (V.compare (V.Text "a") (V.Text "b") < 0);
  Alcotest.(check bool) "bool order" true (V.compare (V.Bool false) (V.Bool true) < 0)

let test_schema () =
  Alcotest.(check int) "arity" 3 (Sc.arity schema);
  Alcotest.(check int) "index" 1 (Sc.column_index schema "age");
  Alcotest.(check bool) "type" true (Sc.column_type schema "sick" = V.Tbool);
  Alcotest.check_raises "unknown column" (Invalid_argument "Schema: unknown column xyz")
    (fun () -> ignore (Sc.column_index schema "xyz"));
  Alcotest.check_raises "duplicate" (Invalid_argument "Schema.make: duplicate column a")
    (fun () -> ignore (Sc.make [ ("a", V.Tint); ("a", V.Tbool) ]))

let test_schema_validate_row () =
  Alcotest.(check bool) "valid" true (Sc.validate_row schema (row "x" 1 true));
  Alcotest.(check bool) "wrong arity" false (Sc.validate_row schema [| V.Int 1 |]);
  Alcotest.(check bool) "wrong type" false
    (Sc.validate_row schema [| V.Int 1; V.Int 2; V.Bool true |])

(* --------------------------------------------------------------- *)
(* Predicates                                                       *)
(* --------------------------------------------------------------- *)

let eval p r = P.eval schema r p

let test_predicates () =
  let r = row "ann" 34 true in
  Alcotest.(check bool) "true" true (eval P.True r);
  Alcotest.(check bool) "false" false (eval P.False r);
  Alcotest.(check bool) "eq" true (eval (P.Eq ("age", V.Int 34)) r);
  Alcotest.(check bool) "lt" true (eval (P.Lt ("age", V.Int 35)) r);
  Alcotest.(check bool) "le edge" true (eval (P.Le ("age", V.Int 34)) r);
  Alcotest.(check bool) "gt" false (eval (P.Gt ("age", V.Int 34)) r);
  Alcotest.(check bool) "ge edge" true (eval (P.Ge ("age", V.Int 34)) r);
  Alcotest.(check bool) "in" true (eval (P.In ("name", [ V.Text "zoe"; V.Text "ann" ])) r);
  Alcotest.(check bool) "not" false (eval (P.Not P.True) r);
  Alcotest.(check bool) "and" true (eval P.(Eq ("sick", V.Bool true) &&& Ge ("age", V.Int 18)) r);
  Alcotest.(check bool) "or" true (eval P.(False ||| Eq ("age", V.Int 34)) r)

let test_predicate_to_string () =
  Alcotest.(check string) "render" "(age >= 18 and sick = true)"
    (P.to_string P.(Ge ("age", V.Int 18) &&& Eq ("sick", V.Bool true)))

(* --------------------------------------------------------------- *)
(* Database                                                         *)
(* --------------------------------------------------------------- *)

let test_db_size_and_rows () =
  Alcotest.(check int) "size" 4 (Db.size sample_db);
  Alcotest.(check int) "rows list" 4 (List.length (Db.rows sample_db));
  Alcotest.(check bool) "row copy isolated" true
    (let r = Db.row sample_db 0 in
     r.(1) <- V.Int 99;
     Db.row sample_db 0 <> r)

let test_db_insert_remove_replace () =
  let bigger = Db.insert sample_db (row "eve" 29 true) in
  Alcotest.(check int) "insert grows" 5 (Db.size bigger);
  Alcotest.(check int) "original untouched" 4 (Db.size sample_db);
  let smaller = Db.remove sample_db 1 in
  Alcotest.(check int) "remove shrinks" 3 (Db.size smaller);
  let replaced = Db.replace sample_db 0 (row "ann" 34 false) in
  Alcotest.(check bool) "replace neighbors" true (Db.are_neighbors sample_db replaced);
  Alcotest.check_raises "bad insert"
    (Invalid_argument "Database.insert: row does not match schema") (fun () ->
      ignore (Db.insert sample_db [| V.Int 1 |]))

let test_neighbors () =
  Alcotest.(check bool) "self neighbor" true (Db.are_neighbors sample_db sample_db);
  let one = Db.replace sample_db 2 (row "carol" 52 false) in
  Alcotest.(check bool) "one change" true (Db.are_neighbors sample_db one);
  let two = Db.replace one 0 (row "ann" 35 true) in
  Alcotest.(check bool) "two changes" false (Db.are_neighbors sample_db two);
  let diff_size = Db.insert sample_db (row "x" 1 true) in
  Alcotest.(check bool) "size mismatch" false (Db.are_neighbors sample_db diff_size)

let test_count_and_select () =
  let sick = P.Eq ("sick", V.Bool true) in
  Alcotest.(check int) "count" 2 (Db.count sample_db sick);
  Alcotest.(check int) "select" 2 (List.length (Db.select sample_db sick));
  Alcotest.(check int) "count true" 4 (Db.count sample_db P.True);
  Alcotest.(check int) "count false" 0 (Db.count sample_db P.False)

(* --------------------------------------------------------------- *)
(* Count queries and sensitivity                                    *)
(* --------------------------------------------------------------- *)

let test_query_eval () =
  let q = Q.make P.(Eq ("sick", V.Bool true) &&& Ge ("age", V.Int 18)) in
  Alcotest.(check int) "adult sick" 2 (Q.eval q sample_db);
  Alcotest.(check int) "range max" 4 (Q.range_max q sample_db)

(* The key structural fact (Definition 2 hinges on it): replacing one
   row changes any count query by at most 1. *)
let test_unit_sensitivity () =
  let q = Q.make P.(Eq ("sick", V.Bool true) &&& Ge ("age", V.Int 18)) in
  let candidates =
    [ row "swap" 10 true; row "swap" 10 false; row "swap" 99 true; row "swap" 99 false ]
  in
  let bound = Q.sensitivity_bound q sample_db ~candidates in
  Alcotest.(check bool) "sensitivity <= 1" true (bound <= 1)

let test_unit_sensitivity_randomized () =
  let rng = Prob.Rng.of_int 2024 in
  for _ = 1 to 20 do
    let db = G.population rng 30 in
    let base = Q.eval G.flu_query db in
    (* replace a random row with a random fresh row *)
    for _ = 1 to 20 do
      let i = Prob.Rng.int rng (Db.size db) in
      let fresh = G.random_row rng ~flu_rate:0.5 ~drug_rate_given_flu:0.5 999 in
      let altered = Db.replace db i fresh in
      let delta = abs (Q.eval G.flu_query altered - base) in
      if delta > 1 then Alcotest.failf "sensitivity violated: %d" delta
    done
  done

(* --------------------------------------------------------------- *)
(* Generator                                                        *)
(* --------------------------------------------------------------- *)

let test_generator_population () =
  let rng = Prob.Rng.of_int 7 in
  let db = G.population rng 100 in
  Alcotest.(check int) "size" 100 (Db.size db);
  let flu = Q.eval G.flu_anywhere db in
  Alcotest.(check bool) "flu in range" true (flu >= 0 && flu <= 100)

let test_generator_with_count () =
  let rng = Prob.Rng.of_int 8 in
  List.iter
    (fun c ->
      let db = G.population_with_count rng ~n:25 ~count:c in
      Alcotest.(check int) (Printf.sprintf "count %d" c) c (Q.eval G.flu_anywhere db))
    [ 0; 1; 12; 25 ];
  Alcotest.check_raises "count too large"
    (Invalid_argument "Generator.population_with_count") (fun () ->
      ignore (G.population_with_count rng ~n:5 ~count:6))

let test_drug_implies_flu () =
  (* Structural invariant of the generator: drug buyers all have flu,
     making the drug count a valid lower bound (the paper's side-
     information example). *)
  let rng = Prob.Rng.of_int 10 in
  for _ = 1 to 10 do
    let db = G.population rng 60 ~flu_rate:0.4 ~drug_rate_given_flu:0.7 in
    let drug = Q.eval G.drug_query db and flu = Q.eval G.flu_anywhere db in
    Alcotest.(check bool) "drug <= flu" true (drug <= flu)
  done

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "count complement sums to size" 50 QCheck.(int_range 0 50) (fun n ->
        let rng = Prob.Rng.of_int n in
        let db = G.population rng n in
        let sick = P.Eq ("has_flu", V.Bool true) in
        Db.count db sick + Db.count db (P.Not sick) = n);
    prop "count monotone under OR" 50 QCheck.(int_range 1 40) (fun n ->
        let rng = Prob.Rng.of_int (n * 3) in
        let db = G.population rng n in
        let a = P.Eq ("has_flu", V.Bool true) in
        let b = P.Ge ("age", V.Int 50) in
        Db.count db (P.Or (a, b)) >= max (Db.count db a) (Db.count db b));
    prop "inclusion-exclusion" 50 QCheck.(int_range 1 40) (fun n ->
        let rng = Prob.Rng.of_int (n * 5) in
        let db = G.population rng n in
        let a = P.Eq ("has_flu", V.Bool true) in
        let b = P.Ge ("age", V.Int 40) in
        Db.count db (P.Or (a, b)) + Db.count db (P.And (a, b)) = Db.count db a + Db.count db b);
    prop "neighbor relation symmetric" 30 QCheck.(int_range 1 20) (fun n ->
        let rng = Prob.Rng.of_int (n * 7) in
        let db = G.population rng n in
        let i = Prob.Rng.int rng n in
        let altered = Db.replace db i (G.random_row rng ~flu_rate:0.3 ~drug_rate_given_flu:0.3 0) in
        Db.are_neighbors db altered = Db.are_neighbors altered db);
  ]

let () =
  Alcotest.run "dpdb"
    [
      ( "values-schemas",
        [
          Alcotest.test_case "value equality" `Quick test_value_equal;
          Alcotest.test_case "value compare" `Quick test_value_compare;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "row validation" `Quick test_schema_validate_row;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "evaluation" `Quick test_predicates;
          Alcotest.test_case "rendering" `Quick test_predicate_to_string;
        ] );
      ( "database",
        [
          Alcotest.test_case "size and rows" `Quick test_db_size_and_rows;
          Alcotest.test_case "insert/remove/replace" `Quick test_db_insert_remove_replace;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "count and select" `Quick test_count_and_select;
        ] );
      ( "queries",
        [
          Alcotest.test_case "evaluation" `Quick test_query_eval;
          Alcotest.test_case "unit sensitivity" `Quick test_unit_sensitivity;
          Alcotest.test_case "unit sensitivity randomized" `Quick test_unit_sensitivity_randomized;
        ] );
      ( "generator",
        [
          Alcotest.test_case "population" `Quick test_generator_population;
          Alcotest.test_case "fixed count" `Quick test_generator_with_count;
          Alcotest.test_case "drug implies flu" `Quick test_drug_implies_flu;
        ] );
      ("properties", properties);
    ]
