(* Unit and property tests for the Bigint substrate.

   Strategy: exhaustive small-number checks against native int as an
   oracle, plus algebraic-law property tests on numbers far beyond the
   native range (built by concatenating random digit blocks). *)

module B = Bigint

let bigint = Alcotest.testable B.pp B.equal

(* --------------------------------------------------------------- *)
(* Generators                                                       *)
(* --------------------------------------------------------------- *)

let gen_digits n st =
  String.init n (fun i ->
      if i = 0 then Char.chr (Char.code '1' + QCheck.Gen.int_bound 8 st)
      else Char.chr (Char.code '0' + QCheck.Gen.int_bound 9 st))

let gen_big : B.t QCheck.Gen.t =
 fun st ->
  let len = 1 + QCheck.Gen.int_bound 60 st in
  let s = gen_digits len st in
  let v = B.of_string s in
  if QCheck.Gen.bool st then B.neg v else v

let arb_big = QCheck.make ~print:B.to_string gen_big

let arb_small = QCheck.make ~print:string_of_int QCheck.Gen.(int_range (-1_000_000) 1_000_000)

(* --------------------------------------------------------------- *)
(* Oracle tests against native ints                                 *)
(* --------------------------------------------------------------- *)

let test_small_arith () =
  for a = -25 to 25 do
    for b = -25 to 25 do
      let ba = B.of_int a and bb = B.of_int b in
      Alcotest.(check int) (Printf.sprintf "add %d %d" a b) (a + b) (B.to_int_exn (B.add ba bb));
      Alcotest.(check int) (Printf.sprintf "sub %d %d" a b) (a - b) (B.to_int_exn (B.sub ba bb));
      Alcotest.(check int) (Printf.sprintf "mul %d %d" a b) (a * b) (B.to_int_exn (B.mul ba bb));
      if b <> 0 then begin
        let q, r = B.divmod ba bb in
        Alcotest.(check int) (Printf.sprintf "div %d %d" a b) (a / b) (B.to_int_exn q);
        Alcotest.(check int) (Printf.sprintf "rem %d %d" a b) (a mod b) (B.to_int_exn r)
      end;
      Alcotest.(check int)
        (Printf.sprintf "compare %d %d" a b)
        (compare a b)
        (B.compare ba bb)
    done
  done

let test_small_gcd () =
  for a = 0 to 40 do
    for b = 0 to 40 do
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      Alcotest.(check int)
        (Printf.sprintf "gcd %d %d" a b)
        (gcd a b)
        (B.to_int_exn (B.gcd (B.of_int a) (B.of_int b)))
    done
  done

let test_ediv_small () =
  for a = -30 to 30 do
    List.iter
      (fun b ->
        let q, r = B.ediv (B.of_int a) (B.of_int b) in
        let qi = B.to_int_exn q and ri = B.to_int_exn r in
        Alcotest.(check bool) "euclidean remainder nonneg" true (ri >= 0 && ri < abs b);
        Alcotest.(check int) "reconstruction" a ((qi * b) + ri))
      [ -7; -3; -2; -1; 1; 2; 3; 7 ]
  done

let test_constants () =
  Alcotest.check bigint "zero" B.zero (B.of_int 0);
  Alcotest.check bigint "one" B.one (B.of_int 1);
  Alcotest.check bigint "minus_one" B.minus_one (B.of_int (-1));
  Alcotest.(check bool) "is_zero" true (B.is_zero B.zero);
  Alcotest.(check bool) "is_one" true (B.is_one B.one);
  Alcotest.(check bool) "one not zero" false (B.is_zero B.one);
  Alcotest.(check int) "sign pos" 1 (B.sign (B.of_int 5));
  Alcotest.(check int) "sign neg" (-1) (B.sign (B.of_int (-5)));
  Alcotest.(check int) "sign zero" 0 (B.sign B.zero)

let test_min_int () =
  let m = B.of_int min_int in
  Alcotest.(check (option int)) "roundtrip" (Some min_int) (B.to_int m);
  Alcotest.(check string) "print" (string_of_int min_int) (B.to_string m);
  Alcotest.check bigint "reparse" m (B.of_string (string_of_int min_int))

let test_max_int () =
  let m = B.of_int max_int in
  Alcotest.(check (option int)) "roundtrip" (Some max_int) (B.to_int m);
  Alcotest.(check string) "print" (string_of_int max_int) (B.to_string m)

let test_to_int_overflow () =
  let huge = B.of_string "123456789123456789123456789" in
  Alcotest.(check (option int)) "too big" None (B.to_int huge);
  Alcotest.check_raises "exn" (Failure "Bigint.to_int_exn: value out of native int range")
    (fun () -> ignore (B.to_int_exn huge))

(* --------------------------------------------------------------- *)
(* String round-trips and parsing                                   *)
(* --------------------------------------------------------------- *)

let test_known_strings () =
  List.iter
    (fun s -> Alcotest.(check string) s s (B.to_string (B.of_string s)))
    [
      "0";
      "1";
      "-1";
      "1000000000";
      "999999999999999999";
      "-123456789012345678901234567890";
      "340282366920938463463374607431768211456" (* 2^128 *);
    ]

let test_parse_forms () =
  Alcotest.check bigint "plus sign" (B.of_int 42) (B.of_string "+42");
  Alcotest.check bigint "underscores" (B.of_int 1_000_000) (B.of_string "1_000_000");
  Alcotest.check bigint "leading zeros" (B.of_int 7) (B.of_string "007");
  Alcotest.(check (option Alcotest.reject)) "empty" None (B.of_string_opt "");
  Alcotest.(check (option Alcotest.reject)) "garbage" None (B.of_string_opt "12a3");
  Alcotest.(check (option Alcotest.reject)) "bare sign" None (B.of_string_opt "-")

let test_known_mul () =
  (* Verified externally. *)
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "987654321098765432109876543210" in
  Alcotest.(check string) "cross product"
    "121932631137021795226185032733622923332237463801111263526900"
    (B.to_string (B.mul a b))

let test_pow () =
  Alcotest.(check string) "2^100" "1267650600228229401496703205376" (B.to_string (B.pow B.two 100));
  Alcotest.(check string) "10^30" ("1" ^ String.make 30 '0') (B.to_string (B.pow (B.of_int 10) 30));
  Alcotest.check bigint "x^0" B.one (B.pow (B.of_int 12345) 0);
  Alcotest.check bigint "(-2)^3" (B.of_int (-8)) (B.pow (B.of_int (-2)) 3);
  Alcotest.check_raises "negative exponent" (Invalid_argument "Bigint.pow: negative exponent")
    (fun () -> ignore (B.pow B.two (-1)))

let test_shifts () =
  Alcotest.check bigint "1<<62" (B.pow B.two 62) (B.shift_left B.one 62);
  Alcotest.check bigint "1<<100" (B.pow B.two 100) (B.shift_left B.one 100);
  Alcotest.check bigint "shr exact" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  Alcotest.check bigint "shr floor pos" (B.of_int 2) (B.shift_right (B.of_int 5) 1);
  Alcotest.check bigint "shr floor neg" (B.of_int (-3)) (B.shift_right (B.of_int (-5)) 1);
  Alcotest.check bigint "big roundtrip"
    (B.of_string "123456789012345678901234567890")
    (B.shift_right (B.shift_left (B.of_string "123456789012345678901234567890") 137) 137)

let test_num_bits () =
  Alcotest.(check int) "zero" 0 (B.num_bits B.zero);
  Alcotest.(check int) "one" 1 (B.num_bits B.one);
  Alcotest.(check int) "255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.num_bits (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.num_bits (B.pow B.two 100))

let test_num_digits () =
  Alcotest.(check int) "zero" 1 (B.num_digits B.zero);
  Alcotest.(check int) "9" 1 (B.num_digits (B.of_int 9));
  Alcotest.(check int) "10" 2 (B.num_digits (B.of_int 10));
  Alcotest.(check int) "-1234" 4 (B.num_digits (B.of_int (-1234)))

let test_division_by_zero () =
  Alcotest.check_raises "divmod" Division_by_zero (fun () -> ignore (B.divmod B.one B.zero));
  Alcotest.check_raises "ediv" Division_by_zero (fun () -> ignore (B.ediv B.one B.zero))

let test_to_float () =
  Alcotest.(check (float 1e-9)) "small" 12345.0 (B.to_float (B.of_int 12345));
  Alcotest.(check (float 1e-9)) "neg" (-42.0) (B.to_float (B.of_int (-42)));
  let big = B.pow (B.of_int 10) 20 in
  Alcotest.(check (float 1e6)) "1e20" 1e20 (B.to_float big)

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "string roundtrip" 300 arb_big (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "add commutative" 300 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.equal (B.add a b) (B.add b a));
    prop "mul commutative" 200 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.equal (B.mul a b) (B.mul b a));
    prop "add associative" 200
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) -> B.equal (B.add (B.add a b) c) (B.add a (B.add b c)));
    prop "mul associative" 100
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) -> B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)));
    prop "distributivity" 150
      (QCheck.triple arb_big arb_big arb_big)
      (fun (a, b, c) -> B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse of add" 300 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.equal a (B.sub (B.add a b) b));
    prop "neg involution" 300 arb_big (fun a -> B.equal a (B.neg (B.neg a)));
    prop "divmod reconstruction" 300 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    prop "remainder sign matches dividend" 300 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero b));
        let _, r = B.divmod a b in
        B.is_zero r || B.sign r = B.sign a);
    prop "karatsuba agrees with schoolbook sizes" 40
      (QCheck.pair arb_big arb_big)
      (fun (a, b) ->
        (* Force large operands by raising to a power; compares the
           Karatsuba path against the identity (a*b)^2 = a^2*b^2 whose
           factors mix both code paths. *)
        let big_a = B.mul a a and big_b = B.mul b b in
        let lhs = B.mul (B.mul big_a big_b) (B.mul big_a big_b) in
        let rhs = B.mul (B.mul big_a big_a) (B.mul big_b big_b) in
        B.equal lhs rhs);
    prop "gcd divides both" 200 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        QCheck.assume (not (B.is_zero a) || not (B.is_zero b));
        let g = B.gcd a b in
        B.is_zero (B.rem a g) && B.is_zero (B.rem b g));
    prop "gcd is nonnegative" 200 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.sign (B.gcd a b) >= 0);
    prop "compare antisymmetric" 300 (QCheck.pair arb_big arb_big) (fun (a, b) ->
        B.compare a b = -B.compare b a);
    prop "int roundtrip" 500 arb_small (fun n -> B.to_int (B.of_int n) = Some n);
    prop "add matches int" 500 (QCheck.pair arb_small arb_small) (fun (a, b) ->
        B.equal (B.of_int (a + b)) (B.add (B.of_int a) (B.of_int b)));
    prop "mul matches int" 500 (QCheck.pair arb_small arb_small) (fun (a, b) ->
        B.equal (B.of_int (a * b)) (B.mul (B.of_int a) (B.of_int b)));
    prop "shift_left is mul by 2^k" 200
      (QCheck.pair arb_big QCheck.(int_bound 80))
      (fun (a, k) -> B.equal (B.shift_left a k) (B.mul a (B.pow B.two k)));
    prop "succ/pred" 300 arb_big (fun a -> B.equal a (B.pred (B.succ a)));
    prop "hash respects equality" 300 arb_big (fun a ->
        B.hash a = B.hash (B.of_string (B.to_string a)));
  ]

let () =
  Alcotest.run "bigint"
    [
      ( "oracle",
        [
          Alcotest.test_case "small arithmetic vs int" `Quick test_small_arith;
          Alcotest.test_case "small gcd vs int" `Quick test_small_gcd;
          Alcotest.test_case "euclidean division" `Quick test_ediv_small;
          Alcotest.test_case "constants" `Quick test_constants;
          Alcotest.test_case "min_int" `Quick test_min_int;
          Alcotest.test_case "max_int" `Quick test_max_int;
          Alcotest.test_case "to_int overflow" `Quick test_to_int_overflow;
        ] );
      ( "strings",
        [
          Alcotest.test_case "known strings" `Quick test_known_strings;
          Alcotest.test_case "parse forms" `Quick test_parse_forms;
          Alcotest.test_case "known big product" `Quick test_known_mul;
        ] );
      ( "operations",
        [
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "num_bits" `Quick test_num_bits;
          Alcotest.test_case "num_digits" `Quick test_num_digits;
          Alcotest.test_case "division by zero" `Quick test_division_by_zero;
          Alcotest.test_case "to_float" `Quick test_to_float;
        ] );
      ("properties", properties);
    ]
