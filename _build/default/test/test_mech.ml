(* Tests for the mechanism library: stochastic validation, DP
   verification, the geometric mechanism's defining properties
   (Definitions 1/4, Lemma 1), the Theorem-2 derivability
   characterization including the Appendix-B counterexample, baseline
   mechanisms, and sampler/matrix consistency. *)

module M = Mech.Mechanism
module Geo = Mech.Geometric
module B = Mech.Baselines
module Der = Mech.Derivability
module Qm = Linalg.Matrix.Q

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal
let half = q 1 2

(* --------------------------------------------------------------- *)
(* Mechanism basics                                                 *)
(* --------------------------------------------------------------- *)

let test_make_validates () =
  Alcotest.check_raises "bad row sum" (M.Not_stochastic "row 0 sums to 3/4") (fun () ->
      ignore (M.of_rows [ [ q 1 4; q 1 2 ]; [ q 1 2; q 1 2 ] ]));
  Alcotest.check_raises "negative" (M.Not_stochastic "negative mass at (0,1)") (fun () ->
      ignore (M.of_rows [ [ q 3 2; q (-1) 2 ]; [ q 1 2; q 1 2 ] ]));
  Alcotest.check_raises "not square" (M.Not_stochastic "matrix not square") (fun () ->
      ignore (M.of_rows [ [ Rat.one ]; [ Rat.one ] ]))

let test_identity_mechanism () =
  let m = M.identity 3 in
  Alcotest.(check int) "n" 3 (M.n m);
  Alcotest.check rat "diag" Rat.one (M.prob m ~input:2 ~output:2);
  Alcotest.check rat "off" Rat.zero (M.prob m ~input:2 ~output:1);
  (* Identity is 0-DP only (no privacy). *)
  Alcotest.check rat "privacy level" Rat.zero (M.privacy_level m)

let test_compose () =
  let g = Geo.matrix ~n:3 ~alpha:half in
  let id = Array.init 4 (fun i -> Array.init 4 (fun j -> if i = j then Rat.one else Rat.zero)) in
  Alcotest.(check bool) "compose with identity" true (M.equal g (M.compose g id));
  (* Composing with the all-to-0 map yields a constant mechanism. *)
  let to_zero = Array.init 4 (fun _ -> Array.init 4 (fun j -> if j = 0 then Rat.one else Rat.zero)) in
  let c = M.compose g to_zero in
  Alcotest.check rat "all mass at 0" Rat.one (M.prob c ~input:2 ~output:0);
  (* Constant mechanisms are perfectly private. *)
  Alcotest.check rat "constant is 1-DP" Rat.one (M.privacy_level c)

let test_dp_violations () =
  let m = M.of_rows [ [ Rat.one; Rat.zero ]; [ Rat.zero; Rat.one ] ] in
  Alcotest.(check bool) "identity violates 1/2-DP" false (M.is_dp ~alpha:half m);
  Alcotest.(check int) "two violated columns" 2 (List.length (M.dp_violations ~alpha:half m))

let test_privacy_level_geometric () =
  (* privacy_level of G(n,α) is exactly α. *)
  List.iter
    (fun alpha ->
      let g = Geo.matrix ~n:5 ~alpha in
      Alcotest.check rat (Rat.to_string alpha) alpha (M.privacy_level g))
    [ q 1 5; q 1 3; half; q 3 4 ]

let test_minimax_loss () =
  let g = Geo.matrix ~n:3 ~alpha:half in
  let loss i r = Rat.of_int (abs (i - r)) in
  let full = M.minimax_loss g ~loss ~side_info:[ 0; 1; 2; 3 ] in
  let partial = M.minimax_loss g ~loss ~side_info:[ 1; 2 ] in
  Alcotest.(check bool) "restriction can only reduce" true (Rat.compare partial full <= 0);
  (* worst case for the geometric on absolute loss: interior rows leak
     both ways; expected loss at input 1:
     row 1 of G(3,1/2): [1/3, 1/3, 1/6, 1/6]; E = 1/3*1 + 1/6*1 + 1/6*2 = 5/6 *)
  Alcotest.check rat "interior expected loss" (q 5 6) (M.expected_loss g ~loss 1)

(* --------------------------------------------------------------- *)
(* Geometric mechanism                                              *)
(* --------------------------------------------------------------- *)

let test_geometric_row_stochastic () =
  List.iter
    (fun (n, alpha) ->
      let g = Geo.matrix ~n ~alpha in
      ignore g (* M.make already validates stochasticity *))
    [ (1, half); (3, q 1 4); (8, q 2 3); (12, q 9 10) ]

let test_geometric_known_values () =
  (* G(3, 1/2), hand computed. Row 1 = [1/3, 1/3, 1/6, 1/6]. *)
  let g = Geo.matrix ~n:3 ~alpha:half in
  Alcotest.check rat "g(0,0)" (q 2 3) (M.prob g ~input:0 ~output:0);
  Alcotest.check rat "g(0,3)" (q 1 12) (M.prob g ~input:0 ~output:3);
  Alcotest.check rat "g(1,0)" (q 1 3) (M.prob g ~input:1 ~output:0);
  Alcotest.check rat "g(1,1)" (q 1 3) (M.prob g ~input:1 ~output:1);
  Alcotest.check rat "g(1,2)" (q 1 6) (M.prob g ~input:1 ~output:2);
  Alcotest.check rat "g(1,3)" (q 1 6) (M.prob g ~input:1 ~output:3);
  Alcotest.check rat "symmetric" (M.prob g ~input:0 ~output:1) (M.prob g ~input:3 ~output:2)

let test_geometric_self_dp () =
  List.iter
    (fun (n, alpha) -> Alcotest.(check bool) "self-DP" true (Geo.is_self_dp ~n ~alpha))
    [ (2, q 1 4); (5, half); (7, q 4 5) ]

let test_geometric_not_stronger_dp () =
  (* G(n,α) is not α'-DP for any α' > α. *)
  let g = Geo.matrix ~n:4 ~alpha:half in
  Alcotest.(check bool) "not 2/3-DP" false (M.is_dp ~alpha:(q 2 3) g)

let test_scaled_matrix_entries () =
  let g' = Geo.scaled_matrix ~n:3 ~alpha:half in
  Alcotest.check rat "diag" Rat.one g'.(1).(1);
  Alcotest.check rat "corner" (q 1 8) g'.(0).(3);
  Alcotest.check rat "sym" g'.(0).(2) g'.(2).(0)

let test_lemma1_determinant () =
  (* det G'(n,α) = (1-α²)^n for the (n+1)×(n+1) matrix. *)
  List.iter
    (fun (n, alpha) ->
      let expected = Geo.scaled_determinant ~n ~alpha in
      let actual = Qm.determinant (Geo.scaled_matrix ~n ~alpha) in
      Alcotest.check rat (Printf.sprintf "n=%d" n) expected actual)
    [ (1, half); (2, half); (3, q 1 4); (5, q 2 3); (8, q 1 3) ]

let test_geometric_det_positive () =
  (* Hence Lemma 1: det G > 0. *)
  List.iter
    (fun (n, alpha) ->
      let g = M.matrix (Geo.matrix ~n ~alpha) in
      Alcotest.(check bool) "positive" true (Rat.sign (Qm.determinant g) > 0))
    [ (2, half); (4, q 1 4); (6, q 3 5) ]

let test_unbounded_pmf () =
  (* Definition 1: mass at offset z is (1-α)/(1+α)·α^{|z|}; symmetric,
     total mass 1 in the limit (check partial sums approach 1). *)
  let alpha = q 1 3 in
  Alcotest.check rat "center" (q 1 2) (Geo.unbounded_noise_pmf ~alpha 0);
  Alcotest.check rat "symmetry" (Geo.unbounded_noise_pmf ~alpha 4) (Geo.unbounded_noise_pmf ~alpha (-4));
  let partial = Rat.sum (List.init 81 (fun i -> Geo.unbounded_noise_pmf ~alpha (i - 40))) in
  Alcotest.(check bool) "mass converges to 1" true
    (Rat.compare (Rat.abs (Rat.sub partial Rat.one)) (q 1 1_000_000) < 0)

let test_clamping_matches_matrix () =
  (* The boundary mass of G(n,α) equals the tail mass of the unbounded
     mechanism below 0 / above n (Definition 4 ⟷ Definition 1). *)
  let alpha = q 2 5 and n = 4 in
  let g = Geo.matrix ~n ~alpha in
  List.iter
    (fun k ->
      (* tail sum: Σ_{z<=0} unbounded_pmf(center k)(z) using the
         geometric series α^k/(1+α) closed form for the lower tail *)
      let lower_tail = Rat.div (Rat.pow alpha k) (Rat.add Rat.one alpha) in
      Alcotest.check rat
        (Printf.sprintf "lower clamp k=%d" k)
        lower_tail
        (M.prob g ~input:k ~output:0))
    [ 0; 1; 2; 3; 4 ]

let test_sampler_matches_matrix () =
  (* Statistical check: clamped unbounded sampler induces G(n,α). *)
  let alpha = q 1 2 and n = 5 in
  let g = Geo.matrix ~n ~alpha in
  let rng = Prob.Rng.of_int 31337 in
  List.iter
    (fun input ->
      let xs = Array.init 30_000 (fun _ -> Geo.sample_clamped ~n ~alpha ~input rng) in
      let target = M.row_distribution g input in
      Alcotest.(check bool)
        (Printf.sprintf "χ² input %d" input)
        true
        (Prob.Stats.fits xs target))
    [ 0; 2; 5 ]

let test_matrix_sampler_matches_matrix () =
  (* The exact row sampler also induces the matrix rows. *)
  let alpha = q 1 3 and n = 4 in
  let g = Geo.matrix ~n ~alpha in
  let rng = Prob.Rng.of_int 777 in
  let xs = Array.init 30_000 (fun _ -> M.sample g ~input:2 rng) in
  Alcotest.(check bool) "χ²" true (Prob.Stats.fits xs (M.row_distribution g 2))

let test_check_alpha () =
  Alcotest.check_raises "alpha 0" (Invalid_argument "Geometric: alpha must satisfy 0 < alpha < 1")
    (fun () -> ignore (Geo.matrix ~n:3 ~alpha:Rat.zero));
  Alcotest.check_raises "alpha 1" (Invalid_argument "Geometric: alpha must satisfy 0 < alpha < 1")
    (fun () -> ignore (Geo.matrix ~n:3 ~alpha:Rat.one))

(* --------------------------------------------------------------- *)
(* Baselines                                                        *)
(* --------------------------------------------------------------- *)

let test_truncated_laplace () =
  let m = B.truncated_laplace ~n:4 ~alpha:half in
  (* Renormalization breaks the nominal DP level near the boundary. *)
  Alcotest.(check bool) "weaker than nominal" true (Rat.compare (M.privacy_level m) half < 0)

let test_randomized_response () =
  let m = B.randomized_response ~n:3 ~p:half in
  Alcotest.check rat "diagonal" (Rat.add half (q 1 8)) (M.prob m ~input:1 ~output:1);
  Alcotest.check rat "off" (q 1 8) (M.prob m ~input:1 ~output:0);
  (* Tuned RR achieves exactly the requested DP level. *)
  let tuned = B.randomized_response_dp ~n:3 ~alpha:(q 1 4) in
  Alcotest.check rat "tuned level" (q 1 4) (M.privacy_level tuned)

let test_rr_max_p () =
  (* p = (1-α)/(α n + 1) for n=3, α=1/4: (3/4)/(7/4) = 3/7. *)
  Alcotest.check rat "closed form" (q 3 7) (B.rr_max_p ~n:3 ~alpha:(q 1 4))

let test_exponential () =
  (* β = 1/2 gives α = 1/4-DP guarantee; matrix level may be higher. *)
  let m = B.exponential ~n:4 ~beta:half in
  Alcotest.(check bool) "at least 1/4-DP" true (M.is_dp ~alpha:(q 1 4) m);
  match B.exponential_dp ~n:4 ~alpha:(q 1 4) with
  | None -> Alcotest.fail "1/4 has rational sqrt"
  | Some m' -> Alcotest.(check bool) "same mechanism" true (M.equal m m')

let test_exponential_dp_irrational () =
  Alcotest.(check bool) "1/2 has no rational sqrt" true (B.exponential_dp ~n:3 ~alpha:half = None)

let test_rounded_laplace_sampler_range () =
  let rng = Prob.Rng.of_int 55 in
  for _ = 1 to 2_000 do
    let v = B.sample_rounded_laplace ~n:6 ~alpha:half ~input:3 rng in
    if v < 0 || v > 6 then Alcotest.failf "out of range: %d" v
  done

(* --------------------------------------------------------------- *)
(* Derivability (Theorem 2)                                         *)
(* --------------------------------------------------------------- *)

let test_geometric_derivable_from_itself () =
  let g = Geo.matrix ~n:3 ~alpha:half in
  match Der.derive ~alpha:half g with
  | Der.Derivable t ->
    (* The factor must be the identity. *)
    Alcotest.(check bool) "identity factor" true (Qm.equal t (Qm.identity 4))
  | Der.Not_derivable _ -> Alcotest.fail "G derivable from itself"

let test_appendix_b () =
  let m = Der.appendix_b_mechanism () in
  Alcotest.(check bool) "is 1/2-DP" true (M.is_dp ~alpha:half m);
  Alcotest.(check bool) "condition fails" false (Der.satisfies_condition ~alpha:half m);
  (match Der.derive ~alpha:half m with
   | Der.Derivable _ -> Alcotest.fail "Appendix B says not derivable"
   | Der.Not_derivable violations ->
     Alcotest.(check bool) "at least one violation" true (List.length violations >= 1);
     (* The paper's witness: column 1, middle entry row 1, slack -0.75/9 = -1/12. *)
     let w = List.find (fun v -> v.Der.column = 1 && v.Der.row = 1) violations in
     Alcotest.check rat "witness slack" (q (-1) 12) w.Der.slack)

let test_theorem2_both_directions () =
  (* For a batch of mechanisms, the syntactic condition and the
     constructive factorization must agree. *)
  let alpha = half in
  let mechanisms =
    [
      Geo.matrix ~n:3 ~alpha;
      Geo.matrix ~n:3 ~alpha:(q 3 4);
      B.truncated_laplace ~n:3 ~alpha;
      B.randomized_response_dp ~n:3 ~alpha;
      Der.appendix_b_mechanism ();
      M.identity 3;
    ]
  in
  List.iter
    (fun m ->
      let syntactic = Der.satisfies_condition ~alpha m in
      let constructive = Der.is_derivable ~alpha m in
      (* Theorem 2's equivalence is stated for DP mechanisms; the
         boundary conditions of Lemma 2 (rows 1 and n) are exactly DP
         constraints, so for non-DP mechanisms (identity) only the
         constructive direction is meaningful. *)
      if M.is_dp ~alpha m then
        Alcotest.(check bool) "equivalence" syntactic constructive)
    mechanisms

let test_lemma3_geometric_chain () =
  (* G(n,β) derivable from G(n,α) for α<β, NOT conversely. *)
  let n = 4 in
  let g_weak = Geo.matrix ~n ~alpha:(q 3 4) in
  let g_strong = Geo.matrix ~n ~alpha:(q 1 4) in
  Alcotest.(check bool) "more private from less" true (Der.is_derivable ~alpha:(q 1 4) g_weak);
  Alcotest.(check bool) "less private NOT from more" false (Der.is_derivable ~alpha:(q 3 4) g_strong)

let test_derivable_closed_under_postprocessing () =
  (* Anything of the form G·T with stochastic T is derivable. *)
  let alpha = q 1 3 and n = 3 in
  let g = Geo.matrix ~n ~alpha in
  let t =
    [|
      [| half; half; Rat.zero; Rat.zero |];
      [| Rat.zero; Rat.one; Rat.zero; Rat.zero |];
      [| Rat.zero; Rat.zero; Rat.one; Rat.zero |];
      [| Rat.zero; q 1 4; q 1 4; half |];
    |]
  in
  let m = M.compose g t in
  match Der.derive ~alpha m with
  | Der.Derivable t' -> Alcotest.(check bool) "recovers the factor" true (Qm.equal t t')
  | Der.Not_derivable _ -> Alcotest.fail "G·T must be derivable"

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let arb_alpha =
  QCheck.make
    ~print:Rat.to_string
    QCheck.Gen.(map2 (fun num den -> Rat.of_ints num (num + den)) (int_range 1 9) (int_range 1 9))

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "geometric privacy level is alpha" 25 (QCheck.pair arb_alpha QCheck.(int_range 1 8))
      (fun (alpha, n) -> Rat.equal (M.privacy_level (Geo.matrix ~n ~alpha)) alpha);
    prop "lemma 1 det formula" 20 (QCheck.pair arb_alpha QCheck.(int_range 1 6)) (fun (alpha, n) ->
        Rat.equal
          (Qm.determinant (Geo.scaled_matrix ~n ~alpha))
          (Geo.scaled_determinant ~n ~alpha));
    prop "geometric satisfies Thm2 condition at own alpha" 20
      (QCheck.pair arb_alpha QCheck.(int_range 2 7))
      (fun (alpha, n) -> Der.satisfies_condition ~alpha (Geo.matrix ~n ~alpha));
    prop "post-processing never helps privacy_level decrease" 20
      (QCheck.pair arb_alpha QCheck.(int_range 1 6))
      (fun (alpha, n) ->
        (* Post-processing cannot reduce privacy: level of G·T >= level of G. *)
        let g = Geo.matrix ~n ~alpha in
        let to_zero =
          Array.init (n + 1) (fun _ -> Array.init (n + 1) (fun j -> if j = 0 then Rat.one else Rat.zero))
        in
        let m = M.compose g to_zero in
        Rat.compare (M.privacy_level m) (M.privacy_level g) >= 0);
    prop "rr tuned achieves exactly alpha" 20 (QCheck.pair arb_alpha QCheck.(int_range 1 8))
      (fun (alpha, n) -> Rat.equal (M.privacy_level (B.randomized_response_dp ~n ~alpha)) alpha);
    prop "minimax loss monotone under side-info inclusion" 15
      (QCheck.pair arb_alpha QCheck.(int_range 2 6))
      (fun (alpha, n) ->
        let g = Geo.matrix ~n ~alpha in
        let loss i r = Rat.of_int (abs (i - r)) in
        let full = M.minimax_loss g ~loss ~side_info:(List.init (n + 1) Fun.id) in
        let sub = M.minimax_loss g ~loss ~side_info:[ 0; n / 2 ] in
        Rat.compare sub full <= 0);
    prop "compose is associative" 15 (QCheck.pair arb_alpha QCheck.(int_range 1 5))
      (fun (alpha, n) ->
        let g = Geo.matrix ~n ~alpha in
        let to_zero =
          Array.init (n + 1) (fun _ ->
              Array.init (n + 1) (fun j -> if j = 0 then Rat.one else Rat.zero))
        in
        let shift =
          Array.init (n + 1) (fun r ->
              Array.init (n + 1) (fun j -> if j = min n (r + 1) then Rat.one else Rat.zero))
        in
        let lhs = M.compose (M.compose g shift) to_zero in
        let rhs = M.compose g (Linalg.Matrix.Q.mul shift to_zero) in
        M.equal lhs rhs);
    prop "privacy level never drops under post-processing" 15
      (QCheck.pair arb_alpha QCheck.(int_range 1 5))
      (fun (alpha, n) ->
        let g = Geo.matrix ~n ~alpha in
        let blur =
          Array.init (n + 1) (fun r ->
              Array.init (n + 1) (fun j ->
                  if j = r then Rat.of_ints 1 2
                  else if j = min n (r + 1) then
                    if r = n then Rat.of_ints 1 2 else Rat.of_ints 1 2
                  else Rat.zero))
        in
        (* fix row n: diag gets 1/2, j=min n (n+1)=n collides; rebuild *)
        let blur =
          Array.mapi
            (fun r row ->
              if r = n then Array.mapi (fun j _ -> if j = n then Rat.one else Rat.zero) row
              else row)
            blur
        in
        let m = M.compose g blur in
        Rat.compare (M.privacy_level m) (M.privacy_level g) >= 0);
    prop "geometric row symmetry" 20 (QCheck.pair arb_alpha QCheck.(int_range 1 7))
      (fun (alpha, n) ->
        let g = Geo.matrix ~n ~alpha in
        let ok = ref true in
        for i = 0 to n do
          for r = 0 to n do
            if not (Rat.equal (M.prob g ~input:i ~output:r) (M.prob g ~input:(n - i) ~output:(n - r)))
            then ok := false
          done
        done;
        !ok);
  ]

let () =
  Alcotest.run "mech"
    [
      ( "mechanism",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "identity" `Quick test_identity_mechanism;
          Alcotest.test_case "compose" `Quick test_compose;
          Alcotest.test_case "dp violations" `Quick test_dp_violations;
          Alcotest.test_case "privacy level of geometric" `Quick test_privacy_level_geometric;
          Alcotest.test_case "minimax loss" `Quick test_minimax_loss;
        ] );
      ( "geometric",
        [
          Alcotest.test_case "row stochastic" `Quick test_geometric_row_stochastic;
          Alcotest.test_case "known values" `Quick test_geometric_known_values;
          Alcotest.test_case "self DP" `Quick test_geometric_self_dp;
          Alcotest.test_case "not stronger DP" `Quick test_geometric_not_stronger_dp;
          Alcotest.test_case "scaled matrix" `Quick test_scaled_matrix_entries;
          Alcotest.test_case "Lemma 1 determinant" `Quick test_lemma1_determinant;
          Alcotest.test_case "det positive" `Quick test_geometric_det_positive;
          Alcotest.test_case "unbounded pmf" `Quick test_unbounded_pmf;
          Alcotest.test_case "clamping matches matrix" `Quick test_clamping_matches_matrix;
          Alcotest.test_case "sampler matches matrix" `Slow test_sampler_matches_matrix;
          Alcotest.test_case "exact sampler matches matrix" `Slow test_matrix_sampler_matches_matrix;
          Alcotest.test_case "alpha validation" `Quick test_check_alpha;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "truncated laplace" `Quick test_truncated_laplace;
          Alcotest.test_case "randomized response" `Quick test_randomized_response;
          Alcotest.test_case "rr closed form" `Quick test_rr_max_p;
          Alcotest.test_case "exponential" `Quick test_exponential;
          Alcotest.test_case "exponential irrational sqrt" `Quick test_exponential_dp_irrational;
          Alcotest.test_case "rounded laplace range" `Quick test_rounded_laplace_sampler_range;
        ] );
      ( "derivability",
        [
          Alcotest.test_case "G from G" `Quick test_geometric_derivable_from_itself;
          Alcotest.test_case "Appendix B counterexample" `Quick test_appendix_b;
          Alcotest.test_case "Theorem 2 equivalence" `Quick test_theorem2_both_directions;
          Alcotest.test_case "Lemma 3 chain" `Quick test_lemma3_geometric_chain;
          Alcotest.test_case "closure under post-processing" `Quick test_derivable_closed_under_postprocessing;
        ] );
      ("properties", properties);
    ]
