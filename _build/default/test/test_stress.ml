(* Stress suite: heavier randomized cross-validation than the
   per-module suites — big-number torture for Bigint (including the
   Karatsuba crossover and algorithm-D edge shapes), pricing-rule
   cross-checks on random LPs, derivability round-trips on random
   post-processings, and sampler/matrix χ² agreement on random
   mechanisms. *)

module B = Bigint
module M = Mech.Mechanism
module Geo = Mech.Geometric
module Qm = Linalg.Matrix.Q

let q = Rat.of_ints

(* --------------------------------------------------------------- *)
(* Bigint torture                                                   *)
(* --------------------------------------------------------------- *)

let gen_digits rng n =
  String.init n (fun i ->
      if i = 0 then Char.chr (Char.code '1' + Prob.Rng.int rng 9)
      else Char.chr (Char.code '0' + Prob.Rng.int rng 10))

let test_bigint_identities_torture () =
  let rng = Prob.Rng.of_int 90125 in
  for _ = 1 to 60 do
    (* digit counts straddling the Karatsuba limb threshold (32 limbs
       ≈ 289 decimal digits) *)
    let len1 = 1 + Prob.Rng.int rng 600 in
    let len2 = 1 + Prob.Rng.int rng 600 in
    let a = B.of_string (gen_digits rng len1) in
    let b = B.of_string (gen_digits rng len2) in
    (* (a+b)² = a² + 2ab + b² mixes karatsuba and schoolbook paths *)
    let lhs = B.mul (B.add a b) (B.add a b) in
    let rhs = B.add (B.add (B.mul a a) (B.mul (B.mul_int (B.mul a b) 2) B.one)) (B.mul b b) in
    if not (B.equal lhs rhs) then Alcotest.failf "square identity failed at %d/%d digits" len1 len2;
    (* divmod roundtrip with magnitudes of very different sizes *)
    let big = B.mul a b in
    if not (B.is_zero b) then begin
      let qt, r = B.divmod big b in
      if not (B.equal big (B.add (B.mul qt b) r)) then Alcotest.fail "divmod reconstruction";
      if B.compare (B.abs r) (B.abs b) >= 0 then Alcotest.fail "remainder too large"
    end
  done

let test_bigint_division_edge_shapes () =
  let rng = Prob.Rng.of_int 555 in
  (* Shapes that exercise algorithm D's qhat adjustment: dividends with
     long runs of maximal limbs (strings of 9s) over two-limb-ish
     divisors. *)
  for trial = 1 to 40 do
    let nines = String.make (30 + (trial * 7)) '9' in
    let a = B.of_string nines in
    let d = B.of_string (gen_digits rng (10 + Prob.Rng.int rng 12)) in
    let qt, r = B.divmod a d in
    if not (B.equal a (B.add (B.mul qt d) r)) then Alcotest.fail "nines reconstruction";
    (* quotient via string oracle: multiply back and compare bounds *)
    if B.compare r d >= 0 then Alcotest.fail "remainder bound"
  done;
  (* powers of two around limb boundaries *)
  List.iter
    (fun e ->
      let x = B.pow B.two e in
      let qt, r = B.divmod x (B.pred x) in
      Alcotest.(check bool) "2^e / (2^e - 1)" true (B.is_one qt && B.is_one r))
    [ 29; 30; 31; 59; 60; 61; 89; 90; 91 ]

let test_bigint_string_torture () =
  let rng = Prob.Rng.of_int 31337 in
  for _ = 1 to 40 do
    let s = gen_digits rng (1 + Prob.Rng.int rng 1000) in
    let x = B.of_string s in
    if B.to_string x <> s then Alcotest.failf "roundtrip failed at %d digits" (String.length s)
  done

(* --------------------------------------------------------------- *)
(* Simplex pricing cross-check on random LPs                        *)
(* --------------------------------------------------------------- *)

let test_pricing_crosscheck_random () =
  let rng = Prob.Rng.of_int 777 in
  for _ = 1 to 40 do
    let nvars = 2 + Prob.Rng.int rng 3 in
    let ncons = 2 + Prob.Rng.int rng 4 in
    let build () =
      let p = Lp.make () in
      let vars = Array.init nvars (fun _ -> Lp.fresh_var p) in
      for _ = 1 to ncons do
        let expr =
          Lp.Expr.sum
            (Array.to_list
               (Array.map (fun v -> Lp.Expr.term (q (1 + Prob.Rng.int rng 8) 1) v) vars))
        in
        Lp.add_le p expr (q (5 + Prob.Rng.int rng 30) 1)
      done;
      Lp.set_objective p Lp.Maximize
        (Lp.Expr.sum
           (Array.to_list (Array.map (fun v -> Lp.Expr.term (q (1 + Prob.Rng.int rng 8) 1) v) vars)));
      p
    in
    (* Rebuild with the same RNG stream for both solvers: snapshot. *)
    let snapshot = Prob.Rng.copy rng in
    let p1 = build () in
    let _ = Prob.Rng.copy snapshot in
    (* restore stream so both problems are identical *)
    let p2 =
      (* rebuild deterministically by replaying from the snapshot *)
      let rng_replay = snapshot in
      let p = Lp.make () in
      let vars = Array.init nvars (fun _ -> Lp.fresh_var p) in
      for _ = 1 to ncons do
        let expr =
          Lp.Expr.sum
            (Array.to_list
               (Array.map (fun v -> Lp.Expr.term (q (1 + Prob.Rng.int rng_replay 8) 1) v) vars))
        in
        Lp.add_le p expr (q (5 + Prob.Rng.int rng_replay 30) 1)
      done;
      Lp.set_objective p Lp.Maximize
        (Lp.Expr.sum
           (Array.to_list
              (Array.map (fun v -> Lp.Expr.term (q (1 + Prob.Rng.int rng_replay 8) 1) v) vars)));
      p
    in
    match
      ( Lp.solve ~pricing:Lp.Simplex.Exact.Dantzig_lex p1,
        Lp.solve ~pricing:Lp.Simplex.Exact.Bland p2 )
    with
    | Lp.Optimal a, Lp.Optimal b ->
      if not (Rat.equal a.Lp.objective b.Lp.objective) then
        Alcotest.failf "pricing rules disagree: %s vs %s" (Rat.to_string a.Lp.objective)
          (Rat.to_string b.Lp.objective)
    | _ -> Alcotest.fail "both bounded and feasible by construction"
  done

let test_degenerate_lps () =
  (* rhs-zero heavy LPs: many ties in every ratio test. *)
  let rng = Prob.Rng.of_int 4242 in
  for _ = 1 to 25 do
    let p = Lp.make () in
    let x = Lp.fresh_var p and y = Lp.fresh_var p and z = Lp.fresh_var p in
    (* cone constraints through the origin *)
    for _ = 1 to 4 do
      let c1 = q (1 + Prob.Rng.int rng 5) 1 and c2 = q (1 + Prob.Rng.int rng 5) 1 in
      Lp.add_ge p Lp.Expr.(sub (term c1 x) (term c2 y)) Rat.zero
    done;
    Lp.add_le p Lp.Expr.(sum [ var x; var y; var z ]) Rat.one;
    Lp.set_objective p Lp.Maximize Lp.Expr.(sum [ var x; var y; term (q 1 2) z ]);
    match Lp.solve p with
    | Lp.Optimal s -> Alcotest.(check bool) "certificate" true (Lp.check_solution p s)
    | _ -> Alcotest.fail "feasible (origin) and bounded (simplex-bounded)"
  done

(* --------------------------------------------------------------- *)
(* Derivability round-trips on random post-processings              *)
(* --------------------------------------------------------------- *)

let random_stochastic rng n =
  Array.init (n + 1) (fun _ ->
      let weights = Array.init (n + 1) (fun _ -> 1 + Prob.Rng.int rng 9) in
      let total = Array.fold_left ( + ) 0 weights in
      Array.map (fun w -> q w total) weights)

let test_derivability_roundtrip_random () =
  let rng = Prob.Rng.of_int 60031 in
  for _ = 1 to 30 do
    let n = 2 + Prob.Rng.int rng 5 in
    let alpha = q (1 + Prob.Rng.int rng 8) 10 in
    let g = Geo.matrix ~n ~alpha in
    let t = random_stochastic rng n in
    let m = M.compose g t in
    match Mech.Derivability.derive ~alpha m with
    | Mech.Derivability.Derivable t' ->
      if not (Qm.equal t t') then Alcotest.fail "factor not recovered"
    | Mech.Derivability.Not_derivable _ -> Alcotest.fail "G·T must be derivable"
  done

let test_theorem2_syntactic_equivalence_random () =
  (* For random DP mechanisms (mixtures of derivable ones are DP but
     not necessarily derivable), the syntactic condition and the
     constructive verdict must agree. *)
  let rng = Prob.Rng.of_int 70707 in
  for _ = 1 to 30 do
    let n = 2 + Prob.Rng.int rng 4 in
    let alpha = q 1 2 in
    (* random mixture of G(n,1/2)-derivable and G(n,3/4) mechanisms —
       all 1/2-DP (3/4-DP implies 1/2-DP), not all derivable. *)
    let m1 = M.compose (Geo.matrix ~n ~alpha) (random_stochastic rng n) in
    let m2 = Geo.matrix ~n ~alpha:(q 3 4) in
    let lambda = q (Prob.Rng.int rng 11) 10 in
    let mix =
      M.make
        (Array.init (n + 1) (fun i ->
             Array.init (n + 1) (fun r ->
                 Rat.add
                   (Rat.mul lambda (M.prob m1 ~input:i ~output:r))
                   (Rat.mul (Rat.sub Rat.one lambda) (M.prob m2 ~input:i ~output:r)))))
    in
    if M.is_dp ~alpha mix then begin
      let syntactic = Mech.Derivability.satisfies_condition ~alpha mix in
      let constructive = Mech.Derivability.is_derivable ~alpha mix in
      if syntactic <> constructive then
        Alcotest.failf "Theorem 2 equivalence broken (n=%d λ=%s)" n (Rat.to_string lambda)
    end
  done

(* --------------------------------------------------------------- *)
(* Sampler / matrix agreement on random mechanisms                  *)
(* --------------------------------------------------------------- *)

let test_sampler_chi_square_random () =
  let rng = Prob.Rng.of_int 888 in
  for _ = 1 to 5 do
    let n = 2 + Prob.Rng.int rng 4 in
    let m = M.compose (Geo.matrix ~n ~alpha:(q 1 2)) (random_stochastic rng n) in
    let input = Prob.Rng.int rng (n + 1) in
    let xs = Array.init 20_000 (fun _ -> M.sample m ~input rng) in
    if not (Prob.Stats.fits xs (M.row_distribution m input)) then
      Alcotest.failf "sampler diverged from matrix at n=%d input=%d" n input
  done

(* --------------------------------------------------------------- *)
(* Universality under randomized consumers, slightly larger n       *)
(* --------------------------------------------------------------- *)

let test_universality_random_losses () =
  (* Random monotone losses: random non-decreasing penalty ladders in
     the distance |i−r|. *)
  let rng = Prob.Rng.of_int 999331 in
  for _ = 1 to 6 do
    let n = 3 + Prob.Rng.int rng 2 in
    let ladder = Array.make (n + 1) Rat.zero in
    for d = 1 to n do
      ladder.(d) <- Rat.add ladder.(d - 1) (q (Prob.Rng.int rng 5) 2)
    done;
    let loss = Minimax.Loss.make ~name:"random-ladder" (fun i r -> ladder.(abs (i - r))) in
    Alcotest.(check bool) "ladder monotone" true (Minimax.Loss.is_monotone loss ~n);
    let members =
      List.filter (fun _ -> Prob.Rng.bool rng) (List.init (n + 1) Fun.id)
    in
    let members = if members = [] then [ n / 2 ] else members in
    let si = Minimax.Side_info.make ~n members in
    let c = Minimax.Consumer.make ~loss ~side_info:si () in
    let alpha = q (1 + Prob.Rng.int rng 8) 10 in
    let cmp = Minimax.Universal.compare_for ~alpha c in
    if not (Minimax.Universal.universality_holds cmp) then
      Alcotest.failf "universality failed for random loss at n=%d α=%s" n (Rat.to_string alpha)
  done

let () =
  Alcotest.run "stress"
    [
      ( "bigint",
        [
          Alcotest.test_case "arithmetic identities torture" `Slow test_bigint_identities_torture;
          Alcotest.test_case "division edge shapes" `Quick test_bigint_division_edge_shapes;
          Alcotest.test_case "string torture" `Quick test_bigint_string_torture;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "pricing cross-check" `Slow test_pricing_crosscheck_random;
          Alcotest.test_case "degenerate cones" `Quick test_degenerate_lps;
        ] );
      ( "derivability",
        [
          Alcotest.test_case "roundtrip on random T" `Slow test_derivability_roundtrip_random;
          Alcotest.test_case "Theorem 2 equivalence random" `Slow test_theorem2_syntactic_equivalence_random;
        ] );
      ("sampling", [ Alcotest.test_case "chi-square random mechanisms" `Slow test_sampler_chi_square_random ]);
      ( "universality",
        [ Alcotest.test_case "random monotone losses" `Slow test_universality_random_losses ] );
    ]
