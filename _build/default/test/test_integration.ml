(* End-to-end integration tests: database → count query → geometric
   release → consumer interaction, the full multi-level publication
   pipeline, and cross-library consistency checks. These mirror the
   paper's running example (flu counts in San Diego). *)

module Db = Dpdb.Database
module Q = Dpdb.Count_query
module G = Dpdb.Generator
module M = Mech.Mechanism
module Geo = Mech.Geometric
module L = Minimax.Loss
module Si = Minimax.Side_info
module C = Minimax.Consumer
module U = Minimax.Universal
module Ml = Minimax.Multi_level

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal

(* --------------------------------------------------------------- *)
(* Scenario: the government publishes a perturbed flu count.        *)
(* --------------------------------------------------------------- *)

let test_publish_flu_count () =
  let rng = Prob.Rng.of_int 1 in
  let n = 12 in
  let db = G.population_with_count rng ~n ~count:7 in
  let true_count = Q.eval G.flu_anywhere db in
  Alcotest.(check int) "true count" 7 true_count;
  let alpha = q 1 2 in
  let g = Geo.matrix ~n ~alpha in
  (* Release is within range and has the right distribution. *)
  let xs = Array.init 20_000 (fun _ -> M.sample g ~input:true_count rng) in
  Array.iter (fun r -> if r < 0 || r > n then Alcotest.failf "out of range %d" r) xs;
  Alcotest.(check bool) "release matches G row" true
    (Prob.Stats.fits xs (M.row_distribution g true_count))

(* --------------------------------------------------------------- *)
(* Scenario: the drug company applies its side information.         *)
(* --------------------------------------------------------------- *)

let test_drug_company_interaction () =
  (* Example 1 of the paper: the company knows at least l people
     bought its drug, so S = {l..n}. Its optimal interaction with the
     deployed geometric mechanism equals its tailored optimum. *)
  let rng = Prob.Rng.of_int 2 in
  let n = 6 in
  let db = G.population rng ~flu_rate:0.5 ~drug_rate_given_flu:0.6 n in
  let l = Q.eval G.drug_query db in
  let flu = Q.eval G.flu_anywhere db in
  Alcotest.(check bool) "side info valid" true (l <= flu);
  let side_info = Si.at_least ~n l in
  let consumer = C.make ~loss:L.squared ~side_info () in
  let cmp = U.compare_for ~alpha:(q 1 2) consumer in
  Alcotest.(check bool) "universality" true (U.universality_holds cmp);
  Alcotest.(check bool) "interaction helps or ties" true
    (Rat.compare cmp.U.universal_loss cmp.U.naive_loss <= 0)

(* --------------------------------------------------------------- *)
(* Scenario: two-tier publication (executives vs Internet).         *)
(* --------------------------------------------------------------- *)

let test_two_tier_publication () =
  let rng = Prob.Rng.of_int 3 in
  let n = 8 in
  let db = G.population_with_count rng ~n ~count:5 in
  let true_count = Q.eval G.flu_anywhere db in
  let exec_alpha = q 1 4 (* high utility *) and public_alpha = q 3 4 (* high privacy *) in
  let plan = Ml.make_plan ~n ~levels:[ exec_alpha; public_alpha ] in
  let releases = Ml.release plan ~true_result:true_count rng in
  Alcotest.(check int) "two releases" 2 (Array.length releases);
  (* The correlated public release is a post-processing of the exec
     release: colluders learn nothing beyond the exec version. *)
  (match Ml.posterior plan ~observed:[ (0, releases.(0)); (1, releases.(1)) ] with
   | None -> Alcotest.fail "observed event has positive probability"
   | Some joint ->
     (match Ml.posterior plan ~observed:[ (0, releases.(0)) ] with
      | None -> Alcotest.fail "positive probability"
      | Some single ->
        Array.iteri (fun i v -> Alcotest.check rat (Printf.sprintf "i=%d" i) single.(i) v) joint))

(* Each tier's consumer still gets its tailored optimum. *)
let test_two_tier_consumers_optimal () =
  let n = 5 in
  let levels = [ q 1 4; q 2 3 ] in
  let consumers =
    [
      C.make ~loss:L.absolute ~side_info:(Si.full n) ();
      C.make ~loss:L.zero_one ~side_info:(Si.at_most ~n 3) ();
    ]
  in
  List.iter2
    (fun alpha consumer ->
      let cmp = U.compare_for ~alpha consumer in
      Alcotest.(check bool)
        (Printf.sprintf "tier %s" (Rat.to_string alpha))
        true
        (U.universality_holds cmp))
    levels consumers

(* --------------------------------------------------------------- *)
(* Cross-library consistency                                        *)
(* --------------------------------------------------------------- *)

let test_factorization_consistency () =
  (* Optimal mechanism (LP), its factorization through G (Derivability),
     and the optimal interaction (LP) must all tell the same story. *)
  let n = 4 in
  let alpha = q 1 3 in
  let consumer = C.make ~loss:L.absolute ~side_info:(Si.full n) () in
  let tailored = Minimax.Optimal_mechanism.solve_structured ~alpha consumer in
  let opt = tailored.Minimax.Optimal_mechanism.mechanism in
  (* 1. The structured optimum is derivable from the geometric. *)
  (match Mech.Derivability.derive ~alpha opt with
   | Mech.Derivability.Not_derivable _ -> Alcotest.fail "Theorem 1 proof: optima are derivable"
   | Mech.Derivability.Derivable t ->
     (* 2. Recomposing gives the optimum back. *)
     let recomposed = M.compose (Geo.matrix ~n ~alpha) t in
     Alcotest.(check bool) "G·T = optimum" true (M.equal recomposed opt));
  (* 3. The interaction LP achieves the same loss. *)
  let inter = Minimax.Optimal_interaction.solve ~deployed:(Geo.matrix ~n ~alpha) consumer in
  Alcotest.check rat "losses agree" tailored.Minimax.Optimal_mechanism.loss
    inter.Minimax.Optimal_interaction.loss

let test_sampled_loss_matches_exact () =
  (* Monte-Carlo loss of the induced mechanism converges to the exact
     minimax loss at the argmax row. *)
  let n = 4 and alpha = q 1 2 in
  let consumer = C.make ~loss:L.absolute ~side_info:(Si.full n) () in
  let cmp = U.compare_for ~alpha consumer in
  let induced = cmp.U.induced in
  (* Find the worst row. *)
  let worst_row = ref 0 and worst = ref Rat.zero in
  for i = 0 to n do
    let l = C.expected_loss consumer induced i in
    if Rat.compare l !worst > 0 then begin
      worst := l;
      worst_row := i
    end
  done;
  let rng = Prob.Rng.of_int 5 in
  let trials = 60_000 in
  let total = ref 0 in
  for _ = 1 to trials do
    let r = M.sample induced ~input:!worst_row rng in
    total := !total + abs (!worst_row - r)
  done;
  let mc = float_of_int !total /. float_of_int trials in
  let exact = Rat.to_float !worst in
  Alcotest.(check bool)
    (Printf.sprintf "mc=%.4f exact=%.4f" mc exact)
    true
    (Float.abs (mc -. exact) < 0.03)

let test_dp_end_to_end_on_neighbor_databases () =
  (* Definition of DP, executed literally: two neighboring databases,
     the distributions of the released value must be within the α
     band, column by column. *)
  let rng = Prob.Rng.of_int 6 in
  let n = 10 in
  let db1 = G.population_with_count rng ~n ~count:4 in
  (* flip one non-flu row to flu: counts 4 -> 5, a neighbor *)
  let rows = Db.rows db1 in
  let idx, _ =
    List.mapi (fun i r -> (i, r)) rows
    |> List.find (fun (_, r) -> match r.(3) with Dpdb.Value.Bool b -> not b | _ -> false)
  in
  let row = Db.row db1 idx in
  row.(3) <- Dpdb.Value.Bool true;
  let db2 = Db.replace db1 idx row in
  Alcotest.(check bool) "neighbors" true (Db.are_neighbors db1 db2);
  let c1 = Q.eval G.flu_anywhere db1 and c2 = Q.eval G.flu_anywhere db2 in
  Alcotest.(check int) "counts adjacent" 1 (abs (c1 - c2));
  let alpha = q 1 2 in
  let g = Geo.matrix ~n ~alpha in
  for r = 0 to n do
    let p1 = M.prob g ~input:c1 ~output:r and p2 = M.prob g ~input:c2 ~output:r in
    Alcotest.(check bool) "alpha band" true
      (Rat.compare (Rat.mul alpha p1) p2 <= 0 && Rat.compare (Rat.mul alpha p2) p1 <= 0)
  done

let test_larger_instance_end_to_end () =
  (* A bigger n exercises LP scale: n = 8, squared loss, interval side
     info; the full Theorem-1 equality must hold exactly. *)
  let n = 8 in
  let consumer = C.make ~loss:L.squared ~side_info:(Si.interval ~n 2 6) () in
  let cmp = U.compare_for ~alpha:(q 1 2) consumer in
  Alcotest.(check bool) "universality at n=8" true (U.universality_holds cmp)

let () =
  Alcotest.run "integration"
    [
      ( "scenarios",
        [
          Alcotest.test_case "publish flu count" `Slow test_publish_flu_count;
          Alcotest.test_case "drug company" `Quick test_drug_company_interaction;
          Alcotest.test_case "two-tier publication" `Quick test_two_tier_publication;
          Alcotest.test_case "two-tier consumers" `Quick test_two_tier_consumers_optimal;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "factorization" `Quick test_factorization_consistency;
          Alcotest.test_case "sampled loss" `Slow test_sampled_loss_matches_exact;
          Alcotest.test_case "dp on neighbors" `Quick test_dp_end_to_end_on_neighbor_databases;
          Alcotest.test_case "larger instance" `Slow test_larger_instance_end_to_end;
        ] );
    ]
