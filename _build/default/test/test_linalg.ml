(* Tests for the functorized linear-algebra layer: exact (rational)
   instantiation checked against hand-computed values and algebraic
   identities; float instantiation cross-checked against the exact
   one. *)

module Qm = Linalg.Matrix.Q
module Fm = Linalg.Matrix.Fl

let q = Rat.of_ints
let rat = Alcotest.testable Rat.pp Rat.equal
let qmat = Alcotest.testable Qm.pp Qm.equal

let m_of_ints rows = Qm.of_rows (List.map (List.map (fun x -> q x 1)) rows)

(* --------------------------------------------------------------- *)
(* Construction                                                     *)
(* --------------------------------------------------------------- *)

let test_identity () =
  let i3 = Qm.identity 3 in
  Alcotest.(check int) "rows" 3 (Qm.rows i3);
  Alcotest.(check int) "cols" 3 (Qm.cols i3);
  Alcotest.check rat "diag" Rat.one (Qm.get i3 1 1);
  Alcotest.check rat "off-diag" Rat.zero (Qm.get i3 0 2)

let test_of_rows_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Matrix.of_rows: ragged rows") (fun () ->
      ignore (Qm.of_rows [ [ Rat.one ]; [ Rat.one; Rat.zero ] ]))

let test_transpose () =
  let m = m_of_ints [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] in
  let t = Qm.transpose m in
  Alcotest.(check int) "rows" 3 (Qm.rows t);
  Alcotest.(check int) "cols" 2 (Qm.cols t);
  Alcotest.check rat "entry" (q 6 1) (Qm.get t 2 1);
  Alcotest.check qmat "involution" m (Qm.transpose t)

(* --------------------------------------------------------------- *)
(* Products                                                         *)
(* --------------------------------------------------------------- *)

let test_mul () =
  let a = m_of_ints [ [ 1; 2 ]; [ 3; 4 ] ] in
  let b = m_of_ints [ [ 5; 6 ]; [ 7; 8 ] ] in
  Alcotest.check qmat "product" (m_of_ints [ [ 19; 22 ]; [ 43; 50 ] ]) (Qm.mul a b);
  Alcotest.check qmat "identity right" a (Qm.mul a (Qm.identity 2));
  Alcotest.check qmat "identity left" a (Qm.mul (Qm.identity 2) a)

let test_mul_vec () =
  let a = m_of_ints [ [ 1; 2 ]; [ 3; 4 ] ] in
  let v = [| q 5 1; q 6 1 |] in
  let r = Qm.mul_vec a v in
  Alcotest.check rat "first" (q 17 1) r.(0);
  Alcotest.check rat "second" (q 39 1) r.(1);
  let l = Qm.vec_mul v a in
  Alcotest.check rat "row-vector first" (q 23 1) l.(0);
  Alcotest.check rat "row-vector second" (q 34 1) l.(1)

let test_dot () =
  Alcotest.check rat "dot" (q 32 1) (Qm.dot [| q 1 1; q 2 1; q 3 1 |] [| q 4 1; q 5 1; q 6 1 |])

(* --------------------------------------------------------------- *)
(* Determinant / inverse / solve / rank                             *)
(* --------------------------------------------------------------- *)

let test_determinant () =
  Alcotest.check rat "2x2" (q (-2) 1) (Qm.determinant (m_of_ints [ [ 1; 2 ]; [ 3; 4 ] ]));
  Alcotest.check rat "singular" Rat.zero (Qm.determinant (m_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.check rat "3x3" (q 1 1)
    (Qm.determinant (m_of_ints [ [ 1; 0; 0 ]; [ 0; 0; -1 ]; [ 0; 1; 0 ] ]));
  Alcotest.check rat "identity" Rat.one (Qm.determinant (Qm.identity 5));
  (* Vandermonde determinant for (1,2,3): Π (xj - xi) = 2. *)
  let v = m_of_ints [ [ 1; 1; 1 ]; [ 1; 2; 4 ]; [ 1; 3; 9 ] ] in
  Alcotest.check rat "vandermonde" (q 2 1) (Qm.determinant v)

let test_inverse () =
  let a = m_of_ints [ [ 2; 1 ]; [ 1; 1 ] ] in
  (match Qm.inverse a with
   | None -> Alcotest.fail "should be invertible"
   | Some inv ->
     Alcotest.check qmat "a * a^-1 = I" (Qm.identity 2) (Qm.mul a inv);
     Alcotest.check qmat "a^-1 * a = I" (Qm.identity 2) (Qm.mul inv a));
  Alcotest.(check bool) "singular has no inverse" true
    (Qm.inverse (m_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]) = None)

let test_solve () =
  let a = m_of_ints [ [ 2; 1 ]; [ 1; 3 ] ] in
  (match Qm.solve a [| q 5 1; q 10 1 |] with
   | None -> Alcotest.fail "solvable"
   | Some x ->
     Alcotest.check rat "x0" (q 1 1) x.(0);
     Alcotest.check rat "x1" (q 3 1) x.(1));
  Alcotest.(check bool) "singular unsolvable" true
    (Qm.solve (m_of_ints [ [ 1; 1 ]; [ 1; 1 ] ]) [| Rat.one; Rat.zero |] = None)

let test_rank () =
  Alcotest.(check int) "full" 3 (Qm.rank (Qm.identity 3));
  Alcotest.(check int) "rank 1" 1 (Qm.rank (m_of_ints [ [ 1; 2 ]; [ 2; 4 ] ]));
  Alcotest.(check int) "rank 2 rect" 2 (Qm.rank (m_of_ints [ [ 1; 0; 1 ]; [ 0; 1; 1 ] ]));
  Alcotest.(check int) "zero" 0 (Qm.rank (Qm.make 3 3 Rat.zero))

(* --------------------------------------------------------------- *)
(* Stochastic predicates                                            *)
(* --------------------------------------------------------------- *)

let test_stochastic () =
  let s = Qm.of_rows [ [ q 1 2; q 1 2 ]; [ q 1 4; q 3 4 ] ] in
  Alcotest.(check bool) "row stochastic" true (Qm.is_row_stochastic s);
  Alcotest.(check bool) "generalized" true (Qm.is_generalized_stochastic s);
  let g = Qm.of_rows [ [ q 3 2; q (-1) 2 ]; [ q 1 4; q 3 4 ] ] in
  Alcotest.(check bool) "generalized but not stochastic" true
    (Qm.is_generalized_stochastic g && not (Qm.is_row_stochastic g));
  let n = Qm.of_rows [ [ q 1 2; q 1 4 ]; [ q 1 4; q 3 4 ] ] in
  Alcotest.(check bool) "not generalized" false (Qm.is_generalized_stochastic n)

(* The stochastic group fact used in Theorem 2: the inverse of a
   nonsingular generalized stochastic matrix is generalized
   stochastic. *)
let test_stochastic_group () =
  let s = Qm.of_rows [ [ q 1 2; q 1 2 ]; [ q 1 4; q 3 4 ] ] in
  match Qm.inverse s with
  | None -> Alcotest.fail "invertible"
  | Some inv -> Alcotest.(check bool) "inverse generalized stochastic" true (Qm.is_generalized_stochastic inv)

(* --------------------------------------------------------------- *)
(* Float instantiation cross-check                                  *)
(* --------------------------------------------------------------- *)

let test_float_crosscheck () =
  let a = m_of_ints [ [ 4; 7; 1 ]; [ 2; 6; 3 ]; [ 1; 1; 1 ] ] in
  let fa = Linalg.Matrix.q_to_float a in
  let det_q = Rat.to_float (Qm.determinant a) in
  let det_f = Fm.determinant fa in
  Alcotest.(check (float 1e-9)) "determinants agree" det_q det_f;
  match (Qm.inverse a, Fm.inverse fa) with
  | Some qi, Some fi ->
    for i = 0 to 2 do
      for j = 0 to 2 do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "inv(%d,%d)" i j)
          (Rat.to_float (Qm.get qi i j))
          (Fm.get fi i j)
      done
    done
  | _ -> Alcotest.fail "both invertible"

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let gen_small_rat = QCheck.Gen.(map2 (fun n d -> Rat.of_ints n d) (int_range (-20) 20) (int_range 1 10))

let gen_matrix n : Qm.t QCheck.Gen.t =
 fun st -> Array.init n (fun _ -> Array.init n (fun _ -> gen_small_rat st))

let arb_matrix3 =
  QCheck.make ~print:Qm.to_string (gen_matrix 3)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "det(AB) = det(A)det(B)" 60 (QCheck.pair arb_matrix3 arb_matrix3) (fun (a, b) ->
        Rat.equal (Qm.determinant (Qm.mul a b)) (Rat.mul (Qm.determinant a) (Qm.determinant b)));
    prop "det(Aᵀ) = det(A)" 60 arb_matrix3 (fun a ->
        Rat.equal (Qm.determinant (Qm.transpose a)) (Qm.determinant a));
    prop "inverse correct when it exists" 60 arb_matrix3 (fun a ->
        match Qm.inverse a with
        | None -> Rat.is_zero (Qm.determinant a)
        | Some inv -> Qm.equal (Qm.mul a inv) (Qm.identity 3));
    prop "solve matches inverse" 60 arb_matrix3 (fun a ->
        let v = [| Rat.one; Rat.two; q 3 1 |] in
        match (Qm.solve a v, Qm.inverse a) with
        | None, None -> true
        | Some x, Some inv ->
          let y = Qm.mul_vec inv v in
          Array.for_all2 Rat.equal x y
        | _ -> false);
    prop "rank of product <= min rank" 40 (QCheck.pair arb_matrix3 arb_matrix3) (fun (a, b) ->
        Qm.rank (Qm.mul a b) <= min (Qm.rank a) (Qm.rank b));
    prop "(A+B)ᵀ = Aᵀ+Bᵀ" 60 (QCheck.pair arb_matrix3 arb_matrix3) (fun (a, b) ->
        Qm.equal (Qm.transpose (Qm.add a b)) (Qm.add (Qm.transpose a) (Qm.transpose b)));
    prop "(AB)ᵀ = BᵀAᵀ" 60 (QCheck.pair arb_matrix3 arb_matrix3) (fun (a, b) ->
        Qm.equal (Qm.transpose (Qm.mul a b)) (Qm.mul (Qm.transpose b) (Qm.transpose a)));
    prop "row_sums of product of stochastics is 1" 40 (QCheck.pair arb_matrix3 arb_matrix3)
      (fun (a, b) ->
        (* Normalize rows to build stochastic-like matrices (may have
           negative entries => generalized). *)
        let normalize m =
          Array.map
            (fun row ->
              let s = Array.fold_left Rat.add Rat.zero row in
              if Rat.is_zero s then Array.mapi (fun j _ -> if j = 0 then Rat.one else Rat.zero) row
              else Array.map (fun x -> Rat.div x s) row)
            m
        in
        let a = normalize a and b = normalize b in
        Qm.is_generalized_stochastic (Qm.mul a b));
  ]

let () =
  Alcotest.run "linalg"
    [
      ( "construction",
        [
          Alcotest.test_case "identity" `Quick test_identity;
          Alcotest.test_case "ragged rejected" `Quick test_of_rows_ragged;
          Alcotest.test_case "transpose" `Quick test_transpose;
        ] );
      ( "products",
        [
          Alcotest.test_case "matrix product" `Quick test_mul;
          Alcotest.test_case "matrix-vector" `Quick test_mul_vec;
          Alcotest.test_case "dot" `Quick test_dot;
        ] );
      ( "elimination",
        [
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "solve" `Quick test_solve;
          Alcotest.test_case "rank" `Quick test_rank;
        ] );
      ( "stochastic",
        [
          Alcotest.test_case "predicates" `Quick test_stochastic;
          Alcotest.test_case "stochastic group closure" `Quick test_stochastic_group;
        ] );
      ("float", [ Alcotest.test_case "cross-check with exact" `Quick test_float_crosscheck ]);
      ("properties", properties);
    ]
