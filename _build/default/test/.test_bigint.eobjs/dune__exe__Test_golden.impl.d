test/test_golden.ml: Alcotest Array Fun Linalg List Mech Minimax Printf Rat
