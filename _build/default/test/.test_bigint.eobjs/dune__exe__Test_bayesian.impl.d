test/test_bayesian.ml: Alcotest Array List Mech Minimax Printf QCheck QCheck_alcotest Rat String
