test/test_multilevel.ml: Alcotest Array Linalg List Mech Minimax Printf Prob QCheck QCheck_alcotest Rat
