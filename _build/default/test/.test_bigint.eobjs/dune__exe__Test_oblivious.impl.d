test/test_oblivious.ml: Alcotest Array List Mech Minimax Prob QCheck QCheck_alcotest Rat
