test/test_mech.ml: Alcotest Array Fun Linalg List Mech Printf Prob QCheck QCheck_alcotest Rat
