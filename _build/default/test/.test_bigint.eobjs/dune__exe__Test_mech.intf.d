test/test_mech.mli:
