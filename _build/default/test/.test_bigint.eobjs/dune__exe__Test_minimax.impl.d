test/test_minimax.ml: Alcotest Linalg List Mech Minimax Printf QCheck QCheck_alcotest Rat String
