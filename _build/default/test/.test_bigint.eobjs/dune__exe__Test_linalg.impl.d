test/test_linalg.ml: Alcotest Array Linalg List Printf QCheck QCheck_alcotest Rat
