test/test_lp.ml: Alcotest Array Float Linalg List Lp Printf QCheck QCheck_alcotest Rat String
