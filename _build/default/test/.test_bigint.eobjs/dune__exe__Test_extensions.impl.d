test/test_extensions.ml: Alcotest Array Dpdb Filename List Lp Mech Minimax Prob Rat Sys
