test/test_dpdb.ml: Alcotest Array Dpdb List Printf Prob QCheck QCheck_alcotest
