test/test_stress.ml: Alcotest Array Bigint Char Fun Linalg List Lp Mech Minimax Prob Rat String
