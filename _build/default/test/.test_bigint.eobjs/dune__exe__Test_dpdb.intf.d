test/test_dpdb.mli:
