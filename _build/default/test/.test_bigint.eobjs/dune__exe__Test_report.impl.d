test/test_report.ml: Alcotest List Mech Rat Report String
