test/test_integration.ml: Alcotest Array Dpdb Float List Mech Minimax Printf Prob Rat
