test/test_prob.ml: Alcotest Array Float List Printf Prob QCheck QCheck_alcotest Rat String
