test/test_inference.ml: Alcotest Array Bigint Int64 List Mech Minimax QCheck QCheck_alcotest Rat
