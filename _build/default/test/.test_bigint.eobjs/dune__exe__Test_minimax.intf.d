test/test_minimax.mli:
