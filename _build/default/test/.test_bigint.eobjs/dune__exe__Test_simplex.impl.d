test/test_simplex.ml: Alcotest Array Float List Lp Printf Prob Rat
