(* Tests for the Appendix-A reduction: the binary world, the averaging
   construction, preservation of differential privacy, and the
   no-loss-increase guarantee (Lemma 6). *)

module Ob = Minimax.Oblivious
module M = Mech.Mechanism
module L = Minimax.Loss
module Si = Minimax.Side_info
module C = Minimax.Consumer

let q = Rat.of_ints
let half = q 1 2

(* --------------------------------------------------------------- *)
(* Binary world                                                     *)
(* --------------------------------------------------------------- *)

let test_world_shape () =
  let w = Ob.binary_world 4 in
  Alcotest.(check int) "databases" 16 (Array.length w.Ob.databases);
  Alcotest.(check int) "count of 0b1011" 3 (w.Ob.count 0b1011);
  Alcotest.(check int) "count of 0" 0 (w.Ob.count 0)

let test_neighbors () =
  let w = Ob.binary_world 4 in
  Alcotest.(check bool) "hamming-1" true (Ob.are_neighbors w 0b0000 0b0100);
  Alcotest.(check bool) "hamming-2" false (Ob.are_neighbors w 0b0000 0b0101);
  Alcotest.(check bool) "self" false (Ob.are_neighbors w 0b0110 0b0110)

let test_class_sizes_binomial () =
  let w = Ob.binary_world 5 in
  let counts = Array.make 6 0 in
  Array.iter (fun mask -> counts.(w.Ob.count mask) <- counts.(w.Ob.count mask) + 1) w.Ob.databases;
  Alcotest.(check (list int)) "binomial(5)" [ 1; 5; 10; 10; 5; 1 ] (Array.to_list counts)

(* --------------------------------------------------------------- *)
(* The reduction                                                    *)
(* --------------------------------------------------------------- *)

(* An oblivious mechanism lifted to the world (every database in a
   class shares a row): averaging must return it unchanged. *)
let lift w (m : M.t) : Ob.nonoblivious =
  Array.map (fun mask -> M.row m (w.Ob.count mask)) w.Ob.databases

let test_average_of_oblivious_is_identity () =
  let w = Ob.binary_world 4 in
  let g = Mech.Geometric.matrix ~n:4 ~alpha:half in
  let averaged = Ob.make_oblivious w (lift w g) in
  Alcotest.(check bool) "unchanged" true (M.equal averaged g)

let test_lifted_is_dp () =
  let w = Ob.binary_world 4 in
  let g = Mech.Geometric.matrix ~n:4 ~alpha:half in
  Alcotest.(check bool) "lift preserves dp" true (Ob.is_dp w ~alpha:half (lift w g))

let test_random_nonoblivious_is_dp () =
  let w = Ob.binary_world 4 in
  let rng = Prob.Rng.of_int 17 in
  for _ = 1 to 5 do
    let m = Ob.random_nonoblivious w ~alpha:half rng in
    Alcotest.(check bool) "dp holds" true (Ob.is_dp w ~alpha:half m)
  done

let test_averaging_preserves_dp () =
  (* Lemma 6 part 1: the averaged mechanism is α-DP. We get this for
     free from column-averaging over classes with fixed neighbor
     counts; verify it computationally on random mechanisms. *)
  let w = Ob.binary_world 4 in
  let rng = Prob.Rng.of_int 23 in
  for _ = 1 to 5 do
    let m = Ob.random_nonoblivious w ~alpha:half rng in
    let averaged = Ob.make_oblivious w m in
    Alcotest.(check bool) "averaged dp" true (M.is_dp ~alpha:half averaged)
  done

let test_averaging_never_increases_loss () =
  (* Lemma 6 part 2: minimax loss of the averaged mechanism is at most
     that of the original, for any consumer. *)
  let w = Ob.binary_world 4 in
  let rng = Prob.Rng.of_int 99 in
  let consumers =
    [
      C.make ~loss:L.absolute ~side_info:(Si.full 4) ();
      C.make ~loss:L.squared ~side_info:(Si.at_least ~n:4 2) ();
      C.make ~loss:L.zero_one ~side_info:(Si.interval ~n:4 1 3) ();
    ]
  in
  for _ = 1 to 5 do
    let m = Ob.random_nonoblivious w ~alpha:half rng in
    let averaged = Ob.make_oblivious w m in
    List.iter
      (fun c ->
        let loss_non = Ob.nonoblivious_loss w m c in
        let loss_obl = C.minimax_loss c averaged in
        if Rat.compare loss_obl loss_non > 0 then
          Alcotest.failf "averaging increased loss for %s: %s > %s" (C.label c)
            (Rat.to_string loss_obl) (Rat.to_string loss_non))
      consumers
  done

let test_validate_rejects_bad () =
  let w = Ob.binary_world 2 in
  let bad = Array.make 4 [| Rat.one; Rat.one; Rat.one |] in
  Alcotest.check_raises "row not stochastic" (Invalid_argument "Oblivious: row not stochastic")
    (fun () -> ignore (Ob.make_oblivious w bad));
  Alcotest.check_raises "wrong db count" (Invalid_argument "Oblivious: wrong database count")
    (fun () -> ignore (Ob.make_oblivious w (Array.make 3 [| Rat.one; Rat.zero; Rat.zero |])))

let test_world_bounds () =
  Alcotest.check_raises "n too small" (Invalid_argument "Oblivious.binary_world: n out of range")
    (fun () -> ignore (Ob.binary_world 0));
  Alcotest.check_raises "n too large" (Invalid_argument "Oblivious.binary_world: n out of range")
    (fun () -> ignore (Ob.binary_world 21))

(* --------------------------------------------------------------- *)
(* Property tests                                                   *)
(* --------------------------------------------------------------- *)

let prop name count arb f = QCheck_alcotest.to_alcotest (QCheck.Test.make ~name ~count arb f)

let properties =
  [
    prop "averaging is idempotent" 10 QCheck.(int_range 2 5) (fun n ->
        let w = Ob.binary_world n in
        let rng = Prob.Rng.of_int n in
        let m = Ob.random_nonoblivious w ~alpha:half rng in
        let once = Ob.make_oblivious w m in
        let twice = Ob.make_oblivious w (lift w once) in
        M.equal once twice);
    prop "popcount via world matches library" 100 QCheck.(int_bound 0xFFFFF) (fun mask ->
        let w = Ob.binary_world 20 in
        let rec slow m = if m = 0 then 0 else (m land 1) + slow (m lsr 1) in
        w.Ob.count mask = slow mask);
  ]

let () =
  Alcotest.run "oblivious"
    [
      ( "world",
        [
          Alcotest.test_case "shape" `Quick test_world_shape;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "binomial classes" `Quick test_class_sizes_binomial;
          Alcotest.test_case "bounds" `Quick test_world_bounds;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "oblivious fixed point" `Quick test_average_of_oblivious_is_identity;
          Alcotest.test_case "lift preserves dp" `Quick test_lifted_is_dp;
          Alcotest.test_case "random nonoblivious dp" `Quick test_random_nonoblivious_is_dp;
          Alcotest.test_case "averaging preserves dp" `Quick test_averaging_preserves_dp;
          Alcotest.test_case "loss never increases (Lemma 6)" `Quick test_averaging_never_increases_loss;
          Alcotest.test_case "validation" `Quick test_validate_rejects_bad;
        ] );
      ("properties", properties);
    ]
