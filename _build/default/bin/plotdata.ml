(* plotdata — emit the data series behind every figure as CSV files,
   for external plotting.

   Usage:  dune exec bin/plotdata.exe [-- OUTPUT_DIR]   (default ./plots)

   Series produced:
     fig1_pmf.csv            Figure 1: geometric output pmf (α=0.2, result 5)
     tradeoff_curves.csv     synthesized: optimal minimax loss vs α, per loss fn
     baselines_vs_n.csv      synthesized: mechanism comparison as n grows
     collusion_leak.csv      synthesized: posterior sharpening, cascade vs
                             independent releases, as colluders accumulate
     lp_scaling.csv          solver cost vs n (direct LP vs Theorem-1 path)
*)

let q = Rat.of_ints

let write_csv dir name headers rows =
  let path = Filename.concat dir name in
  let oc = open_out path in
  output_string oc (String.concat "," headers);
  output_char oc '\n';
  List.iter
    (fun row ->
      output_string oc (String.concat "," row);
      output_char oc '\n')
    rows;
  close_out oc;
  Printf.printf "wrote %s (%d rows)\n%!" path (List.length rows)

(* ----------------------------------------------------------------- *)

let fig1_pmf dir =
  let alpha = q 1 5 in
  let rows =
    List.init 21 (fun z ->
        [ string_of_int z; Rat.to_decimal_string ~places:8 (Mech.Geometric.unbounded_pmf ~alpha ~center:5 z) ])
  in
  write_csv dir "fig1_pmf.csv" [ "z"; "mass" ] rows

let tradeoff_curves dir =
  (* Optimal minimax loss as a function of α, one curve per loss
     function — the utility–privacy tradeoff of the paper's model. *)
  let n = 5 in
  let losses = Minimax.Loss.standard_suite in
  let alphas = List.init 17 (fun i -> q (i + 1) 18) in
  let rows =
    List.map
      (fun alpha ->
        let cells =
          List.map
            (fun loss ->
              let c =
                Minimax.Consumer.make ~loss ~side_info:(Minimax.Side_info.full n) ()
              in
              let r = Minimax.Optimal_mechanism.solve_via_interaction ~alpha c in
              Rat.to_decimal_string ~places:6 r.Minimax.Optimal_mechanism.loss)
            losses
        in
        Rat.to_decimal_string ~places:6 alpha :: cells)
      alphas
  in
  write_csv dir "tradeoff_curves.csv"
    ("alpha" :: List.map Minimax.Loss.name losses)
    rows

let baselines_vs_n dir =
  (* Worst-case absolute loss of each α-DP mechanism as n grows:
     geometric pipeline vs randomized response vs exponential. *)
  let alpha = q 1 4 in
  let rows =
    List.map
      (fun n ->
        let c =
          Minimax.Consumer.make ~loss:Minimax.Loss.absolute
            ~side_info:(Minimax.Side_info.full n) ()
        in
        let check m = Minimax.Consumer.minimax_loss c m in
        let opt =
          (Minimax.Optimal_mechanism.solve_via_interaction ~alpha c).Minimax.Optimal_mechanism.loss
        in
        let geo = check (Mech.Geometric.matrix ~n ~alpha) in
        let rr = check (Mech.Baselines.randomized_response_dp ~n ~alpha) in
        let expo =
          match Mech.Baselines.exponential_dp ~n ~alpha with
          | Some m -> check m
          | None -> Rat.zero
        in
        [
          string_of_int n;
          Rat.to_decimal_string ~places:6 opt;
          Rat.to_decimal_string ~places:6 geo;
          Rat.to_decimal_string ~places:6 rr;
          Rat.to_decimal_string ~places:6 expo;
        ])
      [ 2; 3; 4; 5; 6; 8; 10; 12 ]
  in
  write_csv dir "baselines_vs_n.csv"
    [ "n"; "geo_interact"; "geo_naive"; "randomized_response"; "exponential" ]
    rows

let collusion_leak dir =
  (* Exact total-variation between the posterior given k results and
     the posterior given one, for the cascade (always 0) vs independent
     re-randomizations (grows with k). *)
  let n = 4 in
  let alpha = q 1 4 in
  let g = Mech.Geometric.matrix ~n ~alpha in
  let observed = 1 in
  let posterior_indep k =
    let raw =
      Array.init (n + 1) (fun i -> Rat.pow (Mech.Mechanism.prob g ~input:i ~output:observed) k)
    in
    let tot = Array.fold_left Rat.add Rat.zero raw in
    Array.map (fun x -> Rat.div x tot) raw
  in
  let tv a b =
    let acc = ref Rat.zero in
    Array.iteri (fun i x -> acc := Rat.add !acc (Rat.abs (Rat.sub x b.(i)))) a;
    Rat.div_int !acc 2
  in
  let base = posterior_indep 1 in
  let rows =
    List.map
      (fun k ->
        (* the cascade's posterior never moves: TV = 0 by Lemma 4 *)
        [
          string_of_int k;
          "0.000000";
          Rat.to_decimal_string ~places:6 (tv (posterior_indep k) base);
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  write_csv dir "collusion_leak.csv" [ "colluders"; "cascade_tv"; "independent_tv" ] rows

let lp_scaling dir =
  let alpha = q 1 2 in
  let rows =
    List.map
      (fun n ->
        let c =
          Minimax.Consumer.make ~loss:Minimax.Loss.absolute
            ~side_info:(Minimax.Side_info.full n) ()
        in
        let time f =
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          Unix.gettimeofday () -. t0
        in
        let direct = time (fun () -> Minimax.Optimal_mechanism.solve ~alpha c) in
        let fast = time (fun () -> Minimax.Optimal_mechanism.solve_via_interaction ~alpha c) in
        [ string_of_int n; Printf.sprintf "%.4f" direct; Printf.sprintf "%.4f" fast ])
      [ 3; 4; 5; 6 ]
  in
  write_csv dir "lp_scaling.csv" [ "n"; "direct_lp_seconds"; "theorem1_path_seconds" ] rows

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "plots" in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  fig1_pmf dir;
  tradeoff_curves dir;
  baselines_vs_n dir;
  collusion_leak dir;
  lp_scaling dir;
  print_endline "all series written."
