lib/lp/lp.ml: Array Format Hashtbl List Option Printf Rat Simplex
