lib/lp/simplex.ml: Array Linalg List Option
