lib/lp/simplex.mli: Linalg
