(** ASCII table rendering for the experiment harness and CLI. *)

type align = Left | Right

type t

val make : ?aligns:align list -> headers:string list -> string list list -> t
(** [make ~headers rows]; [aligns] defaults to all-left. *)

val render : t -> string
(** Multi-line box-drawing rendering.
    @raise Invalid_argument when a row's width differs from the
    header's. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val of_rat_matrix : ?headers:string list -> Rat.t array array -> t
(** Matrix rendered with exact fractions, right-aligned; default
    headers are [r=0, r=1, …]. *)

val of_rat_matrix_decimal : ?places:int -> ?headers:string list -> Rat.t array array -> t
(** Matrix rendered in fixed-point decimal (default 4 places). *)

val of_mechanism : ?places:int -> Mech.Mechanism.t -> t
(** A mechanism's matrix; exact fractions unless [places] is given. *)
