lib/report/table.ml: Array Buffer List Mech Printf Rat String
