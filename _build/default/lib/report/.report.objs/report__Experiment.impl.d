lib/report/experiment.ml: List Printf String Unix
