lib/report/experiment.mli:
