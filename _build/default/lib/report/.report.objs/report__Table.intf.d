lib/report/table.mli: Mech Rat
