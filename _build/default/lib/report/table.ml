(** ASCII table rendering for the experiment harness. *)

type align = Left | Right

type t = { headers : string list; rows : string list list; aligns : align list option }

let make ?aligns ~headers rows = { headers; rows; aligns }

let render t =
  let all = t.headers :: t.rows in
  let ncols = List.length t.headers in
  List.iter
    (fun r -> if List.length r <> ncols then invalid_arg "Table.render: ragged row")
    t.rows;
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let aligns =
    match t.aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.make ncols Left
  in
  let pad i cell =
    let w = widths.(i) in
    let fill = String.make (w - String.length cell) ' ' in
    match aligns.(i) with Left -> cell ^ fill | Right -> fill ^ cell
  in
  let render_row r = "| " ^ String.concat " | " (List.mapi pad r) ^ " |" in
  let sep =
    "+" ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)) ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      Buffer.add_string buf (render_row r);
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.add_string buf sep;
  Buffer.contents buf

let print t = print_endline (render t)

(** Render a rational matrix with exact fractions. *)
let of_rat_matrix ?(headers = []) (m : Rat.t array array) =
  let ncols = if Array.length m = 0 then 0 else Array.length m.(0) in
  let headers = if headers <> [] then headers else List.init ncols (Printf.sprintf "r=%d") in
  make ~headers
    (Array.to_list (Array.map (fun row -> Array.to_list (Array.map Rat.to_string row)) m))
    ~aligns:(List.init (List.length headers) (fun _ -> Right))

(** Render a rational matrix in fixed-point decimal. *)
let of_rat_matrix_decimal ?(places = 4) ?(headers = []) (m : Rat.t array array) =
  let ncols = if Array.length m = 0 then 0 else Array.length m.(0) in
  let headers = if headers <> [] then headers else List.init ncols (Printf.sprintf "r=%d") in
  make ~headers
    (Array.to_list
       (Array.map (fun row -> Array.to_list (Array.map (Rat.to_decimal_string ~places) row)) m))
    ~aligns:(List.init (List.length headers) (fun _ -> Right))

let of_mechanism ?places m =
  match places with
  | None -> of_rat_matrix (Mech.Mechanism.matrix m)
  | Some places -> of_rat_matrix_decimal ~places (Mech.Mechanism.matrix m)
