(** Experiment harness: named, self-describing reproduction units.

    Each experiment corresponds to one artifact of the paper (a table,
    a figure, a lemma, or a synthesized evaluation — see the index in
    DESIGN.md) and reports a pass/fail verdict plus free-form detail
    that the bench binary prints and EXPERIMENTS.md summarizes. *)

type verdict = Pass | Fail of string | Info

type t = {
  id : string;  (** e.g. "T1", "F1", "THM1" *)
  title : string;
  paper_claim : string;  (** what the paper reports *)
  run : unit -> verdict * string;  (** measured detail *)
}

let make ~id ~title ~paper_claim run = { id; title; paper_claim; run }

let run_one t =
  Printf.printf "=== [%s] %s ===\n" t.id t.title;
  Printf.printf "paper: %s\n" t.paper_claim;
  let started = Unix.gettimeofday () in
  let verdict, detail = t.run () in
  let elapsed = Unix.gettimeofday () -. started in
  print_string detail;
  if detail <> "" && detail.[String.length detail - 1] <> '\n' then print_newline ();
  (match verdict with
   | Pass -> Printf.printf "verdict: PASS (%.2fs)\n" elapsed
   | Info -> Printf.printf "verdict: INFO (%.2fs)\n" elapsed
   | Fail why -> Printf.printf "verdict: FAIL — %s (%.2fs)\n" why elapsed);
  print_newline ();
  verdict

let run_all experiments =
  let failed = ref [] in
  List.iter
    (fun e ->
      match run_one e with
      | Fail why -> failed := (e.id, why) :: !failed
      | Pass | Info -> ())
    experiments;
  match List.rev !failed with
  | [] ->
    Printf.printf "All %d experiments passed.\n" (List.length experiments);
    true
  | fs ->
    Printf.printf "%d/%d experiments FAILED:\n" (List.length fs) (List.length experiments);
    List.iter (fun (id, why) -> Printf.printf "  [%s] %s\n" id why) fs;
    false
