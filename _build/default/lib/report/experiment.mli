(** Experiment harness: named, self-describing reproduction units.

    Each experiment corresponds to one artifact of the paper (a table,
    a figure, a lemma, or a synthesized evaluation — see the index in
    DESIGN.md). The bench binary runs them and EXPERIMENTS.md records
    the outcomes. *)

type verdict =
  | Pass  (** every check of the artifact succeeded *)
  | Fail of string  (** at least one check failed, with a reason *)
  | Info  (** descriptive output only, nothing to check *)

type t = {
  id : string;  (** short id, e.g. "T1", "F1", "THM1" *)
  title : string;
  paper_claim : string;  (** what the paper reports *)
  run : unit -> verdict * string;  (** produces the measured detail *)
}

val make : id:string -> title:string -> paper_claim:string -> (unit -> verdict * string) -> t

val run_one : t -> verdict
(** Run and print one experiment (header, detail, verdict, timing). *)

val run_all : t list -> bool
(** Run a batch; prints a summary and returns whether everything
    passed. *)
