(** Discrete probability distributions over integer supports.

    A value of type {!t} is a normalized probability mass function.
    Masses are floats (the exact-rational side of the repository lives
    in mechanism matrices; distributions exist for {e sampling} and
    statistics). *)

type t

(** {1 Construction} *)

val of_assoc : (int * float) list -> t
(** Build from [(value, mass)] pairs. Masses are normalized to sum
    to 1; duplicate values are merged; zero-mass values dropped.
    @raise Invalid_argument on an empty or negative-mass input. *)

val of_rat_row : Rat.t array -> t
(** Interpret an array of exact rationals as masses on
    [0 .. length-1] — the bridge from mechanism-matrix rows. *)

val uniform : int -> int -> t
(** [uniform lo hi] over the inclusive range.
    @raise Invalid_argument when [hi < lo]. *)

val point : int -> t
(** Point mass. *)

(** {1 Accessors} *)

val support : t -> int array
(** Strictly increasing support (fresh copy). *)

val size : t -> int
val mass : t -> int -> float
val is_normalized : t -> bool

(** {1 Moments} *)

val mean : t -> float
val variance : t -> float

val expectation : t -> (int -> float) -> float
(** [expectation d f] is [E_{X~d}[f X]]. *)

(** {1 Sampling} *)

val sample : t -> Rng.t -> int
(** Inverse-CDF sampling, O(log support). *)

(** {1 Distances} *)

val total_variation : t -> t -> float

val kl_divergence : t -> t -> float
(** [kl_divergence a b] is [D(a ‖ b)]; [infinity] when [a]'s support
    escapes [b]'s. *)

val pp : Format.formatter -> t -> unit

(** Walker's alias method: O(1) sampling after O(support) setup. *)
module Alias : sig
  type table

  val build : t -> table
  val sample : table -> Rng.t -> int
end
