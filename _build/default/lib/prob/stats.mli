(** Empirical statistics for validating samplers against their target
    distributions. *)

type summary = { count : int; mean : float; variance : float; min : int; max : int }

val summarize : int array -> summary
(** @raise Invalid_argument on an empty sample. *)

val empirical : int array -> Discrete.t
(** Empirical distribution of a sample. *)

val chi_square : ?min_expected:float -> int array -> Discrete.t -> float * int
(** Pearson χ² statistic of the sample against the target, with cells
    pooled until each expects at least [min_expected] (default 5)
    observations. Returns [(statistic, degrees_of_freedom)]. *)

val chi_square_critical_p001 : int -> float
(** Approximate χ² critical value at significance ≈0.001
    (Wilson–Hilferty). *)

val fits : ?min_expected:float -> int array -> Discrete.t -> bool
(** Does the sample pass the χ² goodness-of-fit test at the ≈0.1%
    level? *)

val empirical_tv : int array -> Discrete.t -> float
(** Total-variation distance between the empirical distribution of the
    sample and the target. *)

val draw : Discrete.t -> Rng.t -> int -> int array
(** [draw d rng n] samples [n] values. *)

val ks_statistic : int array -> Discrete.t -> float
(** Kolmogorov–Smirnov sup-distance between the sample's empirical CDF
    and the target CDF. @raise Invalid_argument on an empty sample. *)

val ks_fits : int array -> Discrete.t -> bool
(** KS goodness-of-fit at significance ≈0.001. *)

val wilson_interval : successes:int -> trials:int -> float * float
(** ~99.9% Wilson score interval for a Bernoulli proportion; used to
    bound Monte-Carlo estimates. @raise Invalid_argument on bad
    counts. *)
