lib/prob/discrete.mli: Format Rat Rng
