lib/prob/stats.mli: Discrete Rng
