lib/prob/stats.ml: Array Discrete Float Hashtbl List Option
