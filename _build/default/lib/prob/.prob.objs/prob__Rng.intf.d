lib/prob/rng.mli:
