lib/prob/discrete.ml: Array Float Format Hashtbl List Option Queue Rat Rng
