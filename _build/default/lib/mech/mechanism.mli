(** Oblivious privacy mechanisms for count queries.

    A mechanism over results [{0..n}] is an [(n+1) × (n+1)]
    row-stochastic matrix of exact rationals: entry [(i, r)] is the
    probability of releasing [r] when the true count is [i] (§2.2 of
    the paper). The matrix view makes post-processing a matrix product
    and differential privacy a family of linear inequalities. *)

type t

exception Not_stochastic of string
(** Raised by constructors when a matrix is not row-stochastic; the
    payload describes the first offense. *)

(** {1 Construction} *)

val make : Rat.t array array -> t
(** Validates squareness, non-negativity, and unit row sums; copies
    its input. @raise Not_stochastic otherwise. *)

val of_rows : Rat.t list list -> t
(** List-of-rows convenience over {!make}. *)

val identity : int -> t
(** The non-private mechanism that releases the true count. *)

val compose : t -> Rat.t array array -> t
(** [compose y t] is the induced mechanism [y·t] of Definition 3 —
    post-processing by a row-stochastic [t].
    @raise Not_stochastic when [t] is not row-stochastic. *)

(** {1 Access} *)

val n : t -> int
(** Top of the result range; the matrix is [(n+1) × (n+1)]. *)

val size : t -> int
(** [n + 1]. *)

val prob : t -> input:int -> output:int -> Rat.t
val row : t -> int -> Rat.t array
val column : t -> int -> Rat.t array
val matrix : t -> Rat.t array array
val equal : t -> t -> bool

(** {1 Differential privacy} *)

val dp_violations : alpha:Rat.t -> t -> ((int * int) * [ `Lower | `Upper ]) list
(** Violated adjacent-input constraints of Definition 2 at level
    [alpha]. @raise Invalid_argument when [alpha] is outside [0,1]. *)

val is_dp : alpha:Rat.t -> t -> bool

val privacy_level : t -> Rat.t
(** The strongest (largest) [alpha] for which the mechanism is
    [alpha]-DP; [Rat.zero] when some column mixes zero and non-zero
    adjacent entries. *)

(** {1 Sampling} *)

val sample : t -> input:int -> Prob.Rng.t -> int
(** Draw an output from row [input] using exact-rational CDF walking
    over a 53-bit uniform. @raise Invalid_argument on out-of-range
    input. *)

val row_distribution : t -> int -> Prob.Discrete.t
(** Row [i] as a float distribution, for statistics. *)

(** {1 Loss} *)

val expected_loss : t -> loss:(int -> int -> Rat.t) -> int -> Rat.t
(** Expected loss at true input [i] over the mechanism's randomness. *)

val minimax_loss : t -> loss:(int -> int -> Rat.t) -> side_info:int list -> Rat.t
(** Equation (1): worst expected loss over the side-information set.
    @raise Invalid_argument on empty side information. *)

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val pp_decimal : ?places:int -> Format.formatter -> t -> unit
