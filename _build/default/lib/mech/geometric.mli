(** The geometric mechanism, in both of the paper's forms.

    - Definition 1 (unbounded): output [true + Z],
      [Pr[Z = z] = (1−α)/(1+α)·α^{|z|}] over all integers.
    - Definition 4 (range-restricted): outputs clamped to [{0..n}],
      the boundary rows absorbing the tails.

    The two are equivalent (each derivable from the other); the matrix
    form is the ground truth for all exact computations. *)

val check_alpha : Rat.t -> unit
(** @raise Invalid_argument unless [0 < alpha < 1]. *)

val matrix : n:int -> alpha:Rat.t -> Mechanism.t
(** Range-restricted geometric mechanism [G(n,α)] (Definition 4).
    @raise Invalid_argument on a bad [alpha] or [n < 1]. *)

val scaled_matrix : n:int -> alpha:Rat.t -> Rat.t array array
(** [G'(n,α) = [α^{|i−j|}]] — the column-scaled form used by the §3
    determinant arguments. *)

val scaled_determinant : n:int -> alpha:Rat.t -> Rat.t
(** Lemma 1's closed form: [(1 − α²)^n] for the [(n+1)×(n+1)] scaled
    matrix. *)

val unbounded_noise_pmf : alpha:Rat.t -> int -> Rat.t
(** Mass of the two-sided geometric noise at a given offset. *)

val unbounded_pmf : alpha:Rat.t -> center:int -> int -> Rat.t
(** Mass of the unbounded mechanism's output at [z] given the true
    value [center]. *)

val sample_noise : alpha:Rat.t -> Prob.Rng.t -> int
(** Sample the two-sided geometric noise [Z] of Definition 1. *)

val sample_unbounded : alpha:Rat.t -> input:int -> Prob.Rng.t -> int
(** The unbounded mechanism: true result plus noise. *)

val sample_clamped : n:int -> alpha:Rat.t -> input:int -> Prob.Rng.t -> int
(** Unbounded draw clamped into [{0..n}] — tests verify this induces
    exactly [matrix ~n ~alpha]. *)

val is_self_dp : n:int -> alpha:Rat.t -> bool
(** Definition 2 holds for [G(n,α)] at its own [α] (always true;
    exposed for the test suite). *)
