(** Oblivious privacy mechanisms for count queries.

    A mechanism over results [{0..n}] is an [(n+1) × (n+1)]
    row-stochastic matrix of exact rationals: entry [(i, r)] is the
    probability of releasing [r] when the true count is [i] (§2.2 of
    the paper). The matrix view makes post-processing a matrix product
    and differential privacy a family of linear inequalities. *)

module Qm = Linalg.Matrix.Q

type t = { n : int; matrix : Rat.t array array }

exception Not_stochastic of string

let validate matrix =
  let rows = Array.length matrix in
  if rows = 0 then raise (Not_stochastic "empty matrix");
  Array.iteri
    (fun i row ->
      if Array.length row <> rows then raise (Not_stochastic "matrix not square");
      let sum = Array.fold_left Rat.add Rat.zero row in
      if not (Rat.is_one sum) then
        raise (Not_stochastic (Printf.sprintf "row %d sums to %s" i (Rat.to_string sum)));
      Array.iteri
        (fun r p ->
          if Rat.sign p < 0 then
            raise (Not_stochastic (Printf.sprintf "negative mass at (%d,%d)" i r)))
        row)
    matrix

let make matrix =
  validate matrix;
  { n = Array.length matrix - 1; matrix = Array.map Array.copy matrix }

let of_rows rows = make (Array.of_list (List.map Array.of_list rows))

let n t = t.n
let size t = t.n + 1
let prob t ~input ~output = t.matrix.(input).(output)
let row t i = Array.copy t.matrix.(i)
let matrix t = Array.map Array.copy t.matrix
let column t r = Array.init (size t) (fun i -> t.matrix.(i).(r))

let equal a b = a.n = b.n && Qm.equal a.matrix b.matrix

(** Identity (non-private) mechanism: releases the true count. *)
let identity n =
  { n; matrix = Array.init (n + 1) (fun i -> Array.init (n + 1) (fun j -> if i = j then Rat.one else Rat.zero)) }

(** Post-process by a row-stochastic matrix [t]: the induced mechanism
    [x = y · t] of Definition 3. *)
let compose y (t : Rat.t array array) =
  validate t;
  make (Qm.mul y.matrix t)

(* ------------------------------------------------------------------ *)
(* Differential privacy                                               *)
(* ------------------------------------------------------------------ *)

(** All violated adjacent-input constraints of Definition 2 at privacy
    level [alpha]: pairs [((i, r), ratio_violated)]. *)
let dp_violations ~alpha t =
  if Rat.sign alpha < 0 || Rat.compare alpha Rat.one > 0 then
    invalid_arg "Mechanism.dp_violations: alpha must lie in [0,1]";
  let out = ref [] in
  for i = 0 to t.n - 1 do
    for r = 0 to t.n do
      let a = t.matrix.(i).(r) and b = t.matrix.(i + 1).(r) in
      (* Need alpha * a <= b and alpha * b <= a. *)
      if Rat.compare (Rat.mul alpha a) b > 0 then out := ((i, r), `Upper) :: !out;
      if Rat.compare (Rat.mul alpha b) a > 0 then out := ((i, r), `Lower) :: !out
    done
  done;
  List.rev !out

let is_dp ~alpha t = dp_violations ~alpha t = []

(** The strongest (largest) [alpha] for which the mechanism is
    [alpha]-differentially private: the minimum over all adjacent pairs
    of [min(x_i,r / x_i+1,r , x_i+1,r / x_i,r)]. Returns [Rat.zero]
    when some column has a zero next to a non-zero. *)
let privacy_level t =
  let best = ref Rat.one in
  (try
     for i = 0 to t.n - 1 do
       for r = 0 to t.n do
         let a = t.matrix.(i).(r) and b = t.matrix.(i + 1).(r) in
         match (Rat.is_zero a, Rat.is_zero b) with
         | true, true -> ()
         | true, false | false, true ->
           best := Rat.zero;
           raise Exit
         | false, false ->
           let ratio = if Rat.compare a b <= 0 then Rat.div a b else Rat.div b a in
           if Rat.compare ratio !best < 0 then best := ratio
       done
     done
   with Exit -> ());
  !best

(* ------------------------------------------------------------------ *)
(* Sampling                                                           *)
(* ------------------------------------------------------------------ *)

(** Sampling uses exact rational arithmetic on a uniform dyadic draw,
    so the sampled distribution is the matrix row exactly (up to the
    53-bit resolution of the underlying uniform). *)
let sample t ~input rng =
  if input < 0 || input > t.n then invalid_arg "Mechanism.sample: input out of range";
  let u = Rat.of_float_dyadic (Prob.Rng.float rng) in
  let rec walk r acc =
    if r >= t.n then t.n
    else
      let acc = Rat.add acc t.matrix.(input).(r) in
      if Rat.compare u acc < 0 then r else walk (r + 1) acc
  in
  walk 0 Rat.zero

(** Row [i] as a float distribution, for statistics. *)
let row_distribution t i = Prob.Discrete.of_rat_row t.matrix.(i)

(* ------------------------------------------------------------------ *)
(* Expected / worst-case loss                                         *)
(* ------------------------------------------------------------------ *)

(** Expected loss at true input [i] under loss function [l]. *)
let expected_loss t ~loss i =
  let acc = ref Rat.zero in
  for r = 0 to t.n do
    acc := Rat.add !acc (Rat.mul (loss i r) t.matrix.(i).(r))
  done;
  !acc

(** Minimax (worst-case over side information) loss — Equation (1). *)
let minimax_loss t ~loss ~side_info =
  match side_info with
  | [] -> invalid_arg "Mechanism.minimax_loss: empty side information"
  | i0 :: rest ->
    List.fold_left
      (fun acc i -> Rat.max acc (expected_loss t ~loss i))
      (expected_loss t ~loss i0)
      rest

let pp fmt t = Qm.pp fmt t.matrix

let pp_decimal ?(places = 4) fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i row ->
      if i > 0 then Format.fprintf fmt "@,";
      Format.fprintf fmt "[ %s ]"
        (String.concat "  "
           (Array.to_list (Array.map (Rat.to_decimal_string ~places) row))))
    t.matrix;
  Format.fprintf fmt "@]"
