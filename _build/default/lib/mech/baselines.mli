(** Baseline mechanisms the reproduction compares against: truncated
    discrete Laplace, randomized response, and the exponential
    mechanism of McSherry–Talwar. *)

val truncated_laplace : n:int -> alpha:Rat.t -> Mechanism.t
(** Mass [∝ α^{|i−r|}] renormalized per row. Renormalization (rather
    than the geometric's clamping) makes it weaker than α-DP at the
    nominal level — measurable via {!Mechanism.privacy_level}. *)

val randomized_response : n:int -> p:Rat.t -> Mechanism.t
(** Release the true count with probability [p], otherwise uniform on
    [{0..n}]. @raise Invalid_argument unless [0 <= p <= 1]. *)

val rr_max_p : n:int -> alpha:Rat.t -> Rat.t
(** Largest [p] keeping randomized response [alpha]-DP:
    [(1−α)/(α·n + 1)]. *)

val randomized_response_dp : n:int -> alpha:Rat.t -> Mechanism.t
(** Randomized response tuned to exactly privacy level [alpha]. *)

val exponential : n:int -> beta:Rat.t -> Mechanism.t
(** Exponential mechanism with utility [−|i−r|]: mass [∝ β^{|i−r|}],
    renormalized per row; guarantees [β²]-DP for sensitivity-1 scores. *)

val exponential_dp : n:int -> alpha:Rat.t -> Mechanism.t option
(** The exponential mechanism tuned for [alpha]-DP, i.e. with
    [β = √α]; [None] when [α] has no rational square root. *)

val sample_rounded_laplace : n:int -> alpha:Rat.t -> input:int -> Prob.Rng.t -> int
(** Continuous Laplace noise rounded to the nearest integer and
    clamped — the float-world baseline a practitioner would deploy.
    Sampler only (the matrix involves transcendentals). *)
