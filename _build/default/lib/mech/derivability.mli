(** Theorem 2: which mechanisms can be derived from the geometric?

    [M] is derivable from [G(n,α)] (that is, [M = G·T] for some
    row-stochastic [T]) iff every three consecutive entries
    [x1, x2, x3] in every column satisfy
    [(1 + α²)·x2 − α·(x1 + x3) >= 0], given that [M] is α-DP.

    Both directions are implemented — the syntactic test and the
    constructive factorization [T = G⁻¹·M] — and validate each other in
    the test suite. *)

type violation = {
  column : int;
  row : int;  (** index of the middle entry [x2] *)
  slack : Rat.t;  (** [(1+α²)·x2 − α·(x1+x3)], negative for violations *)
}

val condition_violations : alpha:Rat.t -> Mechanism.t -> violation list
(** All violations of the three-consecutive-entries condition. *)

val satisfies_condition : alpha:Rat.t -> Mechanism.t -> bool

val factor : alpha:Rat.t -> Mechanism.t -> Rat.t array array
(** The unique generalized-stochastic [T] with [M = G(n,α)·T]
    (exists because [det G > 0], Lemma 1). Not necessarily
    non-negative. *)

type verdict =
  | Derivable of Rat.t array array  (** the row-stochastic post-processing [T] *)
  | Not_derivable of violation list  (** Theorem-2 witnesses *)

val derive : alpha:Rat.t -> Mechanism.t -> verdict

val is_derivable : alpha:Rat.t -> Mechanism.t -> bool

val appendix_b_mechanism : unit -> Mechanism.t
(** The paper's Appendix-B counterexample: ½-DP yet not derivable from
    [G(3,½)]. *)
