lib/mech/derivability.mli: Mechanism Rat
