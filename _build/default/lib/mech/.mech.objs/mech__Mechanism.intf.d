lib/mech/mechanism.mli: Format Prob Rat
