lib/mech/geometric.mli: Mechanism Prob Rat
