lib/mech/baselines.mli: Mechanism Prob Rat
