lib/mech/mechanism.ml: Array Format Linalg List Printf Prob Rat String
