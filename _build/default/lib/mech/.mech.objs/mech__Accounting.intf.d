lib/mech/accounting.mli: Bigint Mechanism Rat
