lib/mech/baselines.ml: Array Float Geometric Mechanism Option Prob Rat
