lib/mech/geometric.ml: Array Float Mechanism Prob Rat
