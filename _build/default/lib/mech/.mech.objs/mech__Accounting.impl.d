lib/mech/accounting.ml: Bigint List Mechanism Rat
