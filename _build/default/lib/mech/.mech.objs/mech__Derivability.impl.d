lib/mech/derivability.ml: Geometric Linalg List Mechanism Rat
