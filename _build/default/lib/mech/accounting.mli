(** Privacy accounting in the paper's multiplicative [α] scale
    ([α = e^{−ε}]): composition laws are products where the ε scale has
    sums, and everything stays exactly rational. *)

val sequential : Rat.t -> Rat.t -> Rat.t
(** Joint level of two independent releases: the product.
    @raise Invalid_argument when a level is outside [0,1]. *)

val compose_k : k:int -> Rat.t -> Rat.t
(** Level of [k] independent releases: [α^k].
    @raise Invalid_argument on negative [k]. *)

val parallel : Rat.t list -> Rat.t
(** Joint level of mechanisms over disjoint sub-databases: the minimum
    (weakest guarantee). @raise Invalid_argument on an empty list. *)

val group : g:int -> Rat.t -> Rat.t
(** Group privacy for coalitions of [g] individuals: [α^g].
    @raise Invalid_argument when [g < 1]. *)

val fits : k:int -> per_release:Rat.t -> total:Rat.t -> bool
(** Do [k] releases at [per_release] respect a [total] budget, i.e.
    [per_release^k >= total]? *)

val epsilon_of_alpha : Rat.t -> float
(** Report in the additive ε scale; [infinity] at [α = 0]. *)

val alpha_of_epsilon : float -> Rat.t
(** Exact dyadic rational for [e^{−ε}]'s float value.
    @raise Invalid_argument on negative ε. *)

val sequential_law_holds : Mechanism.t -> Mechanism.t -> bool
(** Verify the sequential law on concrete matrices: the joint release
    of independent samples is [(α₁·α₂)]-DP, checked entrywise on
    product probabilities. Used by tests. *)

val alpha_of_epsilon_approx : ?max_den:Bigint.t -> float -> Rat.t
(** Like {!alpha_of_epsilon} but rounded to the best rational with a
    small denominator (default ≤ 1000) and clamped into [0,1] —
    convenient for human-readable privacy levels. *)
