(** Side information of an information consumer (§2.3): a non-empty
    subset [S ⊆ {0..n}] known to contain the true result. *)

type t

val make : n:int -> int list -> t
(** Sorted, deduplicated. @raise Invalid_argument when empty or out of
    [{0..n}]. *)

val full : int -> t
(** No side information: all of [{0..n}]. *)

val interval : n:int -> int -> int -> t
(** [{lo..hi}]. @raise Invalid_argument when empty. *)

val at_least : n:int -> int -> t
(** Lower bound: [{l..n}] (the drug company of Example 1). *)

val at_most : n:int -> int -> t
(** Upper bound: [{0..u}] (a population bound). *)

val singleton : n:int -> int -> t

val n : t -> int
val members : t -> int list
val cardinal : t -> int
val mem : t -> int -> bool
val is_full : t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
