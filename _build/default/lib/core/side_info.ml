(** Side information of an information consumer (§2.3): a non-empty
    subset [S ⊆ {0..n}] that the consumer knows contains the true
    result (e.g. population of San Diego ⇒ an upper bound; the drug
    company's own sales ⇒ a lower bound). *)

type t = { n : int; members : int list (** sorted, distinct, non-empty *) }

let make ~n members =
  let members = List.sort_uniq compare members in
  if members = [] then invalid_arg "Side_info.make: empty side information";
  List.iter
    (fun i ->
      if i < 0 || i > n then invalid_arg "Side_info.make: member outside {0..n}")
    members;
  { n; members }

(** No side information: the full range [{0..n}]. *)
let full n = make ~n (List.init (n + 1) Fun.id)

(** Contiguous range [ {lo..hi} ]. *)
let interval ~n lo hi =
  if lo > hi then invalid_arg "Side_info.interval: empty";
  make ~n (List.init (hi - lo + 1) (fun i -> lo + i))

(** Lower bound [l]: the drug company's [S = {l..n}] from Example 1. *)
let at_least ~n l = interval ~n l n

(** Upper bound [u]: population bound, [S = {0..u}]. *)
let at_most ~n u = interval ~n 0 u

let singleton ~n i = make ~n [ i ]

let n t = t.n
let members t = t.members
let cardinal t = List.length t.members
let mem t i = List.mem i t.members
let is_full t = cardinal t = t.n + 1

let to_string t =
  Printf.sprintf "{%s}" (String.concat "," (List.map string_of_int t.members))

let pp fmt t = Format.pp_print_string fmt (to_string t)
