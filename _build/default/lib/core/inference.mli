(** Consumer-side inference from a released value: exact posteriors,
    point estimates, and credible sets over the deployed mechanism. *)

val posterior :
  ?prior:Rat.t array -> deployed:Mech.Mechanism.t -> observed:int -> unit -> Rat.t array option
(** Exact posterior over true results given one observation; uniform
    prior by default. [None] for probability-zero observations.
    @raise Invalid_argument on range or prior-length errors. *)

val map_estimate :
  ?prior:Rat.t array -> deployed:Mech.Mechanism.t -> observed:int -> unit -> int option
(** Maximum-a-posteriori estimate (smallest index on ties). *)

val posterior_mean :
  ?prior:Rat.t array -> deployed:Mech.Mechanism.t -> observed:int -> unit -> Rat.t option

val credible_set :
  ?prior:Rat.t array ->
  deployed:Mech.Mechanism.t ->
  observed:int ->
  level:Rat.t ->
  unit ->
  (int list * Rat.t) option
(** Smallest credible set at the given level (greedy by posterior
    mass): sorted members and their exact accumulated mass.
    @raise Invalid_argument when [level] is outside [0,1]. *)

val likelihood_set : deployed:Mech.Mechanism.t -> observed:int -> ratio:Rat.t -> int list
(** Inputs whose likelihood is at least [ratio] × the maximum — a
    prior-free confidence set. *)

val posterior_odds_bounded :
  alpha:Rat.t -> deployed:Mech.Mechanism.t -> observed:int -> unit -> bool
(** The inferential form of α-DP: adjacent-input posterior odds under
    a uniform prior stay within [α, 1/α]. True for every α-DP
    mechanism; exposed for tests. *)
