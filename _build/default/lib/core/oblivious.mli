(** Appendix A: restricting attention to oblivious mechanisms is
    without loss of generality (Lemma 6).

    Materialized over a {e binary world}: databases are the [2^n]
    n-bit masks, the count query is the Hamming weight, neighbors
    differ in one bit. *)

type world = {
  n : int;  (** rows per database; counts range over 0..n *)
  databases : int array;  (** all databases, as n-bit masks *)
  count : int -> int;  (** the count query: Hamming weight *)
}

val binary_world : int -> world
(** @raise Invalid_argument outside 1..20. *)

val are_neighbors : world -> int -> int -> bool
(** Hamming distance exactly 1. *)

type nonoblivious = Rat.t array array
(** One output distribution per database (indexed by mask), outputs in
    [{0..n}]. *)

val validate : world -> nonoblivious -> unit
(** @raise Invalid_argument unless every row is a distribution over
    the right range. *)

val is_dp : world -> alpha:Rat.t -> nonoblivious -> bool
(** α-DP over the explicit neighbor relation. *)

val make_oblivious : world -> nonoblivious -> Mech.Mechanism.t
(** The Lemma-6 reduction: average the rows of each count class.
    Preserves α-DP and never increases any minimax consumer's loss
    (verified by tests and the OBL bench). *)

val nonoblivious_loss : world -> nonoblivious -> Consumer.t -> Rat.t
(** Worst-case loss over databases whose count lies in the consumer's
    side information (Equation 5). *)

val random_nonoblivious : world -> alpha:Rat.t -> Prob.Rng.t -> nonoblivious
(** A random genuinely non-oblivious α-DP mechanism, for tests: a
    database-keyed blend of the geometric row with the uniform row,
    with the blend weight halved until DP verifiably holds. *)
