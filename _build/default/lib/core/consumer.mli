(** A minimax information consumer: loss function + side information.

    Its dis-utility for a mechanism [x] is Equation (1):
    [L(x) = max_{i∈S} Σ_r l(i,r)·x_{i,r}]. *)

type t

val make : ?label:string -> loss:Loss.t -> side_info:Side_info.t -> unit -> t

val label : t -> string
val loss : t -> Loss.t
val side_info : t -> Side_info.t

val n : t -> int
(** The result range shared with the mechanisms it can face. *)

val minimax_loss : t -> Mech.Mechanism.t -> Rat.t
(** Equation (1). *)

val expected_loss : t -> Mech.Mechanism.t -> int -> Rat.t
(** Expected loss at a single true input. *)

val pp : Format.formatter -> t -> unit
