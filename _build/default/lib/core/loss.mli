(** Loss functions of information consumers (§2.3).

    A loss [l(i, r)] is the consumer's disutility when the mechanism
    outputs [r] and the true count is [i]. The paper's only assumption
    is monotonicity in [|i − r|] for each fixed [i]. *)

type t

val make : name:string -> (int -> int -> Rat.t) -> t
(** Custom loss: [f i r] where [i] is the true result, [r] the
    output. *)

val name : t -> string
val eval : t -> int -> int -> Rat.t

(** {1 The paper's examples} *)

val absolute : t
(** [|i−r|] — mean error (the government consumer). *)

val squared : t
(** [(i−r)²] — error variance (the drug company). *)

val zero_one : t
(** [1{i ≠ r}] — frequency of error. *)

(** {1 Further monotone losses} *)

val asymmetric : over:Rat.t -> under:Rat.t -> t
(** Linear with different unit costs for over- and under-estimates. *)

val deadzone : width:int -> t
(** Zero within a tolerance band, linear beyond.
    @raise Invalid_argument on negative width. *)

val capped : cap:int -> t
(** [min cap |i−r|]. @raise Invalid_argument when [cap < 1]. *)

val scale : Rat.t -> t -> t

val row_weighted : weights:Rat.t array -> t -> t
(** Scale scenario [i]'s losses by [weights.(i)] (all positive). Still
    monotone per fixed [i], so weighted-worst-case consumers are valid
    minimax consumers and Theorem 1 applies to them verbatim.
    @raise Invalid_argument on non-positive weights or out-of-range
    scenarios. *)

(** {1 Validity checks} *)

val is_monotone : t -> n:int -> bool
(** Non-decreasing in [|i−r|] for every [i] over [{0..n}²] — the
    paper's requirement on losses. *)

val is_proper : t -> n:int -> bool
(** Non-negative with [l(i,i) = 0] — true of all standard losses. *)

val standard_suite : t list
(** [absolute; squared; zero_one]. *)

val pp : Format.formatter -> t -> unit
