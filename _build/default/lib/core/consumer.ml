(** A minimax information consumer: loss function + side information
    (+ the privacy level at which it receives data).

    Its dis-utility for a mechanism [x] is Equation (1):
    [L(x) = max_{i∈S} Σ_r l(i,r)·x_{i,r}]. *)

type t = { label : string; loss : Loss.t; side_info : Side_info.t }

let make ?(label = "") ~loss ~side_info () =
  let label =
    if label <> "" then label
    else Printf.sprintf "%s on %s" (Loss.name loss) (Side_info.to_string side_info)
  in
  { label; loss; side_info }

let label t = t.label
let loss t = t.loss
let side_info t = t.side_info
let n t = Side_info.n t.side_info

(** Equation (1): worst-case expected loss over the side information. *)
let minimax_loss t mech =
  Mech.Mechanism.minimax_loss mech
    ~loss:(fun i r -> Loss.eval t.loss i r)
    ~side_info:(Side_info.members t.side_info)

(** Expected loss at a single input. *)
let expected_loss t mech i = Mech.Mechanism.expected_loss mech ~loss:(fun i r -> Loss.eval t.loss i r) i

let pp fmt t = Format.pp_print_string fmt t.label
