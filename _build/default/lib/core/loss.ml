(** Loss functions of information consumers (§2.3).

    A loss [l(i, r)] is the consumer's disutility when the mechanism
    outputs [r] and the true count is [i]. The paper's only assumption
    is monotonicity: non-decreasing in [|i − r|] for each fixed [i]
    ([is_monotone] checks it on a concrete range). *)

type t = { name : string; f : int -> int -> Rat.t }

let make ~name f = { name; f }

let name t = t.name
let eval t i r = t.f i r

(** [l(i,r) = |i−r|] — mean error (the paper's government consumer). *)
let absolute = make ~name:"absolute" (fun i r -> Rat.of_int (abs (i - r)))

(** [l(i,r) = (i−r)²] — error variance (the drug company). *)
let squared =
  make ~name:"squared" (fun i r ->
      let d = i - r in
      Rat.of_int (d * d))

(** [l(i,r) = 1{i ≠ r}] — frequency of error. *)
let zero_one = make ~name:"zero-one" (fun i r -> if i = r then Rat.zero else Rat.one)

(** Asymmetric linear loss: overestimates cost [over] per unit,
    underestimates cost [under] per unit. Models, e.g., a producer for
    whom over-production is cheaper than shortage. *)
let asymmetric ~over ~under =
  make
    ~name:(Printf.sprintf "asymmetric(%s,%s)" (Rat.to_string over) (Rat.to_string under))
    (fun i r ->
      if r >= i then Rat.mul_int over (r - i) else Rat.mul_int under (i - r))

(** Hinge loss: free within a tolerance band of [width], linear
    beyond. *)
let deadzone ~width =
  if width < 0 then invalid_arg "Loss.deadzone: negative width";
  make ~name:(Printf.sprintf "deadzone(%d)" width) (fun i r ->
      let d = abs (i - r) in
      if d <= width then Rat.zero else Rat.of_int (d - width))

(** Capped absolute loss: |i−r| saturating at [cap]. *)
let capped ~cap =
  if cap < 1 then invalid_arg "Loss.capped: cap must be >= 1";
  make ~name:(Printf.sprintf "capped(%d)" cap) (fun i r -> Rat.of_int (min cap (abs (i - r))))

let scale k t = make ~name:(Printf.sprintf "%s*%s" (Rat.to_string k) t.name) (fun i r -> Rat.mul k (t.f i r))

(* Row-weighted loss: scenario i's losses scaled by weights.(i).
   Monotonicity in |i-r| is per fixed i, so positive row weights keep
   the loss a valid minimax loss — which makes "weighted worst case"
   consumers (caring more about some scenarios) a special case of the
   paper's model, with Theorem 1 applying verbatim. *)
let row_weighted ~weights t =
  Array.iter
    (fun w -> if Rat.sign w <= 0 then invalid_arg "Loss.row_weighted: weights must be positive")
    weights;
  make
    ~name:(Printf.sprintf "row-weighted(%s)" t.name)
    (fun i r ->
      if i < 0 || i >= Array.length weights then invalid_arg "Loss.row_weighted: index out of range";
      Rat.mul weights.(i) (t.f i r))

(** Monotone non-decreasing in [|i − r|] for every [i], over
    [{0..n}²] — the paper's validity requirement. *)
let is_monotone t ~n =
  let ok = ref true in
  for i = 0 to n do
    (* Walk outward on each side of i. *)
    for r = i + 1 to n - 1 do
      if Rat.compare (t.f i r) (t.f i (r + 1)) > 0 then ok := false
    done;
    for r = 1 to i do
      if Rat.compare (t.f i r) (t.f i (r - 1)) > 0 then ok := false
    done
  done;
  !ok

(** Nonnegative on [{0..n}²] with [l(i,i) = 0]? Not required by the
    paper, but true of all standard losses; some tests assume it. *)
let is_proper t ~n =
  let ok = ref true in
  for i = 0 to n do
    if not (Rat.is_zero (t.f i i)) then ok := false;
    for r = 0 to n do
      if Rat.sign (t.f i r) < 0 then ok := false
    done
  done;
  !ok

let standard_suite = [ absolute; squared; zero_one ]

let pp fmt t = Format.pp_print_string fmt t.name
