(** Multiple count queries — the paper's closing open question, built
    from its single-query machinery plus sequential composition
    ({!Mech.Accounting}): each query is released through its own
    geometric mechanism, levels multiply into the joint budget, and
    Theorem 1 applies per coordinate. *)

type plan = {
  levels : Rat.t array;  (** per-query privacy levels *)
  total : Rat.t;  (** joint guarantee under sequential composition *)
  mechanisms : Mech.Mechanism.t array;
}

val uniform : n:int -> k:int -> alpha:Rat.t -> plan
(** Same level for every query; [total = α^k].
    @raise Invalid_argument when [k < 1] or [alpha] invalid. *)

val weighted : n:int -> base:Rat.t -> weights:int list -> plan
(** Query [i] receives [wᵢ] budget shares: level [base^{wᵢ}] (heavier
    weight = more accurate, less private); joint level
    [base^{Σwᵢ}]. @raise Invalid_argument on empty or non-positive
    weights. *)

val k : plan -> int
val level : plan -> int -> Rat.t
val total_level : plan -> Rat.t
val mechanism : plan -> int -> Mech.Mechanism.t

val release : plan -> true_results:int array -> Prob.Rng.t -> int array
(** Independent randomness per query. @raise Invalid_argument on an
    arity mismatch. *)

val universality_holds_for : plan -> query:int -> Consumer.t -> bool
(** Theorem 1 at the query's own level. *)

val consumer_loss : plan -> query:int -> Consumer.t -> Rat.t
(** The consumer's optimal-interaction loss for its query. *)
