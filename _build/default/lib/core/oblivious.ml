(** Appendix A: restricting attention to oblivious mechanisms is
    without loss of generality.

    A non-oblivious mechanism may give different output distributions
    to two databases with the same count. Lemma 6 shows that averaging
    the rows within each count class yields an oblivious mechanism
    that is still α-DP and no worse for any minimax consumer.

    To make this executable we materialize a {e binary world}: rows are
    single bits (does the row satisfy the predicate?), databases are
    the [2^n] bit-vectors, the count query is the Hamming weight, and
    neighbors differ in exactly one position. This is the smallest
    world exhibiting the full neighbor structure of count queries. *)

type world = {
  n : int;  (** rows per database; counts range over 0..n *)
  databases : int array;  (** each database encoded as an n-bit mask *)
  count : int -> int;  (** Hamming weight of a mask *)
}

let popcount m =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go m 0

let binary_world n =
  if n < 1 || n > 20 then invalid_arg "Oblivious.binary_world: n out of range";
  { n; databases = Array.init (1 lsl n) Fun.id; count = popcount }

let are_neighbors _w d1 d2 = popcount (d1 lxor d2) = 1

(** A non-oblivious mechanism: one output distribution per database
    (indexed by bitmask), outputs in [{0..n}]. *)
type nonoblivious = Rat.t array array

let validate w (m : nonoblivious) =
  if Array.length m <> Array.length w.databases then invalid_arg "Oblivious: wrong database count";
  Array.iter
    (fun row ->
      if Array.length row <> w.n + 1 then invalid_arg "Oblivious: wrong output range";
      let s = Array.fold_left Rat.add Rat.zero row in
      if not (Rat.is_one s) then invalid_arg "Oblivious: row not stochastic";
      Array.iter (fun p -> if Rat.sign p < 0 then invalid_arg "Oblivious: negative mass") row)
    m

(** α-DP over the explicit neighbor relation. *)
let is_dp w ~alpha (m : nonoblivious) =
  let ok = ref true in
  let num = Array.length w.databases in
  for d1 = 0 to num - 1 do
    for bit = 0 to w.n - 1 do
      let d2 = d1 lxor (1 lsl bit) in
      if d2 > d1 then
        for r = 0 to w.n do
          let a = m.(d1).(r) and b = m.(d2).(r) in
          if Rat.compare (Rat.mul alpha a) b > 0 || Rat.compare (Rat.mul alpha b) a > 0 then
            ok := false
        done
    done
  done;
  !ok

(** The Lemma-6 reduction: average the rows of each count class. *)
let make_oblivious w (m : nonoblivious) : Mech.Mechanism.t =
  validate w m;
  let class_size = Array.make (w.n + 1) 0 in
  let sums = Array.make_matrix (w.n + 1) (w.n + 1) Rat.zero in
  Array.iteri
    (fun idx mask ->
      let c = w.count mask in
      class_size.(c) <- class_size.(c) + 1;
      for r = 0 to w.n do
        sums.(c).(r) <- Rat.add sums.(c).(r) m.(idx).(r)
      done)
    w.databases;
  Mech.Mechanism.make
    (Array.init (w.n + 1) (fun c ->
         Array.init (w.n + 1) (fun r -> Rat.div_int sums.(c).(r) class_size.(c))))

(** Worst-case loss of a non-oblivious mechanism for a consumer whose
    side information constrains the {e count} (Equation 5). *)
let nonoblivious_loss w (m : nonoblivious) (consumer : Consumer.t) =
  let loss = Consumer.loss consumer in
  let side = Side_info.members (Consumer.side_info consumer) in
  let worst = ref Rat.zero and first = ref true in
  Array.iteri
    (fun idx mask ->
      let c = w.count mask in
      if List.mem c side then begin
        let l = ref Rat.zero in
        for r = 0 to w.n do
          l := Rat.add !l (Rat.mul m.(idx).(r) (Loss.eval loss c r))
        done;
        if !first || Rat.compare !l !worst > 0 then begin
          worst := !l;
          first := false
        end
      end)
    w.databases;
  !worst

(** A random non-oblivious α-DP mechanism (for tests): start from the
    geometric row for each database's count and mix in a small
    database-specific perturbation that provably keeps α-DP. *)
let random_nonoblivious w ~alpha rng : nonoblivious =
  let g = Mech.Geometric.matrix ~n:w.n ~alpha in
  (* Mix with a database-keyed deterministic-ish distribution. We blend
     the geometric row with the uniform row: blending weights differ by
     database but by at most a factor respecting DP headroom. Simplest
     safe construction: convex combination  (1-λ)·G_row + λ·U  with a
     single global λ drawn once per *column block* — still oblivious.
     To be genuinely non-oblivious we perturb based on one designated
     bit of the database, which changes the count class neighbor
     structure by at most the blend; we then *verify* DP and retry with
     halved λ until it holds. *)
  let uniform = Array.make (w.n + 1) (Rat.of_ints 1 (w.n + 1)) in
  let build lambda =
    Array.map
      (fun mask ->
        let c = w.count mask in
        let l = if mask land 1 = 1 then lambda else Rat.div_int lambda 2 in
        Array.init (w.n + 1) (fun r ->
            Rat.add
              (Rat.mul (Rat.sub Rat.one l) (Mech.Mechanism.prob g ~input:c ~output:r))
              (Rat.mul l uniform.(r))))
      w.databases
  in
  let rec search lambda attempts =
    if attempts = 0 then build Rat.zero
    else
      let candidate = build lambda in
      if is_dp w ~alpha candidate then candidate else search (Rat.div_int lambda 2) (attempts - 1)
  in
  let seed = Rat.of_ints (1 + Prob.Rng.int rng 8) 64 in
  search seed 12
