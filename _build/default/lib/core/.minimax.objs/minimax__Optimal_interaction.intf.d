lib/core/optimal_interaction.mli: Consumer Mech Rat
