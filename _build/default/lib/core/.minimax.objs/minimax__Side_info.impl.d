lib/core/side_info.ml: Format Fun List Printf String
