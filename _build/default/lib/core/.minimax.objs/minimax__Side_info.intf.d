lib/core/side_info.mli: Format
