lib/core/multi_query.mli: Consumer Mech Prob Rat
