lib/core/loss.ml: Array Format Printf Rat
