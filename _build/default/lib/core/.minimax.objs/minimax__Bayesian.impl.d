lib/core/bayesian.ml: Array Fun List Loss Lp Mech Printf Rat
