lib/core/universal.mli: Consumer Loss Mech Rat Side_info
