lib/core/inference.ml: Array Fun List Mech Rat
