lib/core/optimal_mechanism.ml: Array Consumer Fun List Loss Lp Mech Optimal_interaction Printf Rat Side_info
