lib/core/universal.ml: Consumer Fun List Mech Optimal_interaction Optimal_mechanism Rat Side_info
