lib/core/optimal_interaction.ml: Array Consumer Fun List Loss Lp Mech Printf Rat Side_info
