lib/core/oblivious.ml: Array Consumer Fun List Loss Mech Prob Rat Side_info
