lib/core/consumer.ml: Format Loss Mech Printf Side_info
