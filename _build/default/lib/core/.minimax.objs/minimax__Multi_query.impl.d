lib/core/multi_query.ml: Array List Mech Optimal_interaction Rat Universal
