lib/core/consumer.mli: Format Loss Mech Rat Side_info
