lib/core/inference.mli: Mech Rat
