lib/core/optimal_mechanism.mli: Consumer Lp Mech Rat
