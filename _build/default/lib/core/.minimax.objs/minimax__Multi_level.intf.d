lib/core/multi_level.mli: Mech Prob Rat
