lib/core/bayesian.mli: Loss Mech Rat
