lib/core/oblivious.mli: Consumer Mech Prob Rat
