lib/core/loss.mli: Format Rat
