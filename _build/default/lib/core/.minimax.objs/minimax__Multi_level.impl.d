lib/core/multi_level.ml: Array Linalg List Mech Prob Rat
