(** Consumer-side inference from a released value.

    Beyond the minimax interaction LPs, a consumer holding a prior can
    do plain Bayesian inference on the deployed mechanism's output —
    exact over ℚ, since the mechanism matrix is exact. This module
    provides the posterior, point estimates, and credible sets; the
    collusion analysis of {!Multi_level} builds on the same
    computation. *)

(** Exact posterior over true results given one observation.
    [prior] defaults to uniform. [None] when the observation has zero
    probability under the prior. *)
let posterior ?prior ~(deployed : Mech.Mechanism.t) ~observed () =
  let n = Mech.Mechanism.n deployed in
  if observed < 0 || observed > n then invalid_arg "Inference.posterior: observation out of range";
  let prior =
    match prior with
    | Some p ->
      if Array.length p <> n + 1 then invalid_arg "Inference.posterior: prior length";
      p
    | None -> Array.make (n + 1) (Rat.of_ints 1 (n + 1))
  in
  let raw =
    Array.init (n + 1) (fun i ->
        Rat.mul prior.(i) (Mech.Mechanism.prob deployed ~input:i ~output:observed))
  in
  let total = Array.fold_left Rat.add Rat.zero raw in
  if Rat.is_zero total then None else Some (Array.map (fun x -> Rat.div x total) raw)

(** Maximum-a-posteriori estimate (smallest index on ties). *)
let map_estimate ?prior ~deployed ~observed () =
  match posterior ?prior ~deployed ~observed () with
  | None -> None
  | Some p ->
    let best = ref 0 in
    Array.iteri (fun i v -> if Rat.compare v p.(!best) > 0 then best := i) p;
    Some !best

(** Posterior mean, as an exact rational. *)
let posterior_mean ?prior ~deployed ~observed () =
  match posterior ?prior ~deployed ~observed () with
  | None -> None
  | Some p ->
    Some
      (Array.to_list p
      |> List.mapi (fun i m -> Rat.mul_int m i)
      |> List.fold_left Rat.add Rat.zero)

(** Smallest credible set at the given level: inputs added greedily by
    decreasing posterior mass until the accumulated mass reaches
    [level]. Returns the sorted member list and its exact mass.
    @raise Invalid_argument when [level] is outside [0,1]. *)
let credible_set ?prior ~deployed ~observed ~level () =
  if Rat.sign level < 0 || Rat.compare level Rat.one > 0 then
    invalid_arg "Inference.credible_set: level must lie in [0,1]";
  match posterior ?prior ~deployed ~observed () with
  | None -> None
  | Some p ->
    let order =
      List.init (Array.length p) Fun.id
      |> List.sort (fun i j ->
             match Rat.compare p.(j) p.(i) with 0 -> compare i j | c -> c)
    in
    let rec take acc mass = function
      | [] -> (acc, mass)
      | i :: rest ->
        if Rat.compare mass level >= 0 then (acc, mass)
        else take (i :: acc) (Rat.add mass p.(i)) rest
    in
    let members, mass = take [] Rat.zero order in
    Some (List.sort compare members, mass)

(** Inputs whose likelihood of producing [observed] is at least
    [ratio] times the maximum likelihood — a prior-free alternative to
    {!credible_set}. *)
let likelihood_set ~(deployed : Mech.Mechanism.t) ~observed ~ratio =
  let n = Mech.Mechanism.n deployed in
  if observed < 0 || observed > n then invalid_arg "Inference.likelihood_set";
  if Rat.sign ratio < 0 || Rat.compare ratio Rat.one > 0 then
    invalid_arg "Inference.likelihood_set: ratio must lie in [0,1]";
  let lik = Array.init (n + 1) (fun i -> Mech.Mechanism.prob deployed ~input:i ~output:observed) in
  let best = Array.fold_left Rat.max Rat.zero lik in
  List.filter
    (fun i -> Rat.compare lik.(i) (Rat.mul ratio best) >= 0)
    (List.init (n + 1) Fun.id)

(** The differential-privacy semantics, inferential form: for any
    prior, the posterior odds of adjacent inputs move by at most a
    [1/α] factor relative to the prior odds. Verified exactly; used by
    tests and the docs. *)
let posterior_odds_bounded ~alpha ~deployed ~observed () =
  let n = Mech.Mechanism.n deployed in
  match posterior ~deployed ~observed () with
  | None -> true
  | Some p ->
    let ok = ref true in
    for i = 0 to n - 1 do
      (* uniform prior: posterior odds = likelihood odds *)
      let a = p.(i) and b = p.(i + 1) in
      if not (Rat.is_zero a || Rat.is_zero b) then begin
        let odds = Rat.div a b in
        if Rat.compare odds (Rat.inv alpha) > 0 || Rat.compare odds alpha < 0 then ok := false
      end
    done;
    !ok
