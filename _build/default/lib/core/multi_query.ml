(** Multiple count queries — the paper's closing open question, built
    from its single-query machinery plus standard composition.

    The paper's results are per-query. To answer [k] fixed count
    queries under a total privacy budget [α_total], release each query
    through its own geometric mechanism at level [αᵢ] with
    [Π αᵢ >= α_total] (sequential composition in the multiplicative
    scale — see {!Mech.Accounting}). Theorem 1 then applies to each
    coordinate: every consumer of query [i] still extracts its tailored
    optimum for that query.

    Two budget-splitting policies are provided:

    - {b uniform}: every query gets the same level; requires a rational
      k-th root of the budget, so we take the caller's per-query level
      and expose the induced total instead;
    - {b weighted}: each query receives an integer number of {e budget
      shares} — query [i] is released at [α_base^{wᵢ}], so a heavier
      weight means a {e smaller} α (weaker privacy for that query, more
      accuracy for its consumers), while the joint release costs
      [α_base^{Σwᵢ}] of budget. Integer weights keep everything
      rational. *)

type plan = {
  levels : Rat.t array;  (** per-query privacy levels *)
  total : Rat.t;  (** joint guarantee under sequential composition *)
  mechanisms : Mech.Mechanism.t array;
}

(** Same level for every query. [total = alpha^k]. *)
let uniform ~n ~k ~alpha =
  if k < 1 then invalid_arg "Multi_query.uniform: k must be >= 1";
  Mech.Geometric.check_alpha alpha;
  let g = Mech.Geometric.matrix ~n ~alpha in
  {
    levels = Array.make k alpha;
    total = Mech.Accounting.compose_k ~k alpha;
    mechanisms = Array.make k g;
  }

(** Integer-weighted split of a base level: query [i] is released at
    [base^{w_i}] (larger weight = more budget shares = more accurate,
    less private), and the joint level is [base^{Σ w_i}]. *)
let weighted ~n ~base ~weights =
  Mech.Geometric.check_alpha base;
  if weights = [] then invalid_arg "Multi_query.weighted: no queries";
  List.iter (fun w -> if w < 1 then invalid_arg "Multi_query.weighted: weights must be >= 1") weights;
  let levels = Array.of_list (List.map (fun w -> Rat.pow base w) weights) in
  let total = Rat.pow base (List.fold_left ( + ) 0 weights) in
  { levels; total; mechanisms = Array.map (fun alpha -> Mech.Geometric.matrix ~n ~alpha) levels }

let k t = Array.length t.levels
let level t i = t.levels.(i)
let total_level t = t.total
let mechanism t i = t.mechanisms.(i)

(** Release all query results (independent randomness per query —
    queries are different, so the Algorithm-1 correlation trick does
    not apply across queries; it still applies per query across
    consumers, via {!Multi_level}). *)
let release t ~true_results rng =
  if Array.length true_results <> k t then
    invalid_arg "Multi_query.release: wrong number of results";
  Array.mapi (fun i r -> Mech.Mechanism.sample t.mechanisms.(i) ~input:r rng) true_results

(** Per-query Theorem-1 check: every consumer of query [i] attains its
    tailored optimum at level [levels.(i)]. *)
let universality_holds_for t ~query consumer =
  if query < 0 || query >= k t then invalid_arg "Multi_query.universality_holds_for";
  let cmp = Universal.compare_for ~alpha:t.levels.(query) consumer in
  Universal.universality_holds cmp

(** Worst-case loss a consumer suffers on its query, by level. Useful
    for choosing weights: utility degrades as the level grows. *)
let consumer_loss t ~query consumer =
  if query < 0 || query >= k t then invalid_arg "Multi_query.consumer_loss";
  let inter = Optimal_interaction.solve ~deployed:t.mechanisms.(query) consumer in
  inter.Optimal_interaction.loss
