(** Predicates over rows — the parameter of a count query.

    Built from column comparisons and boolean combinators, mirroring
    the paper's example: {i "individual is an adult residing in San
    Diego, who contracted flu this October"}. *)

type t =
  | True
  | False
  | Eq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | In of string * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t

let ( &&& ) a b = And (a, b)
let ( ||| ) a b = Or (a, b)
let not_ a = Not a

let rec eval schema (row : Value.t array) = function
  | True -> true
  | False -> false
  | Eq (c, v) -> Value.equal row.(Schema.column_index schema c) v
  | Lt (c, v) -> Value.compare row.(Schema.column_index schema c) v < 0
  | Le (c, v) -> Value.compare row.(Schema.column_index schema c) v <= 0
  | Gt (c, v) -> Value.compare row.(Schema.column_index schema c) v > 0
  | Ge (c, v) -> Value.compare row.(Schema.column_index schema c) v >= 0
  | In (c, vs) -> List.exists (Value.equal row.(Schema.column_index schema c)) vs
  | Not p -> not (eval schema row p)
  | And (a, b) -> eval schema row a && eval schema row b
  | Or (a, b) -> eval schema row a || eval schema row b

(* Text literals are quoted so that the rendering is valid input for
   Query_parser.parse (round-trip property, tested). *)
let literal_to_string = function
  | Value.Text s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | (Value.Int _ | Value.Bool _) as v -> Value.to_string v

let rec to_string = function
  | True -> "true"
  | False -> "false"
  | Eq (c, v) -> Printf.sprintf "%s = %s" c (literal_to_string v)
  | Lt (c, v) -> Printf.sprintf "%s < %s" c (literal_to_string v)
  | Le (c, v) -> Printf.sprintf "%s <= %s" c (literal_to_string v)
  | Gt (c, v) -> Printf.sprintf "%s > %s" c (literal_to_string v)
  | Ge (c, v) -> Printf.sprintf "%s >= %s" c (literal_to_string v)
  | In (c, vs) ->
    Printf.sprintf "%s in (%s)" c (String.concat ", " (List.map literal_to_string vs))
  | Not p -> Printf.sprintf "not (%s)" (to_string p)
  | And (a, b) -> Printf.sprintf "(%s and %s)" (to_string a) (to_string b)
  | Or (a, b) -> Printf.sprintf "(%s or %s)" (to_string a) (to_string b)

let pp fmt p = Format.pp_print_string fmt (to_string p)
