lib/dpdb/database.ml: Array Format List Predicate Schema Stdlib String Value
