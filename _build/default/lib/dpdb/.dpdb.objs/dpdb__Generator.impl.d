lib/dpdb/generator.ml: Array Count_query Database List Predicate Printf Prob Schema Value
