lib/dpdb/query_parser.mli: Count_query Predicate Schema
