lib/dpdb/value.ml: Format Stdlib String
