lib/dpdb/predicate.mli: Format Schema Value
