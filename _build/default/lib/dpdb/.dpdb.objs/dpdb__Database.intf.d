lib/dpdb/database.mli: Format Predicate Schema Value
