lib/dpdb/count_query.mli: Database Format Predicate Value
