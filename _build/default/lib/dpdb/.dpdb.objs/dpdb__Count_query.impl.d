lib/dpdb/count_query.ml: Database Format List Predicate
