lib/dpdb/predicate.ml: Array Format List Printf Schema String Value
