lib/dpdb/csv.ml: Array Buffer Database List Printf Schema String Value
