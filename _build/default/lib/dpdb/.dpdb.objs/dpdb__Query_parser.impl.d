lib/dpdb/query_parser.ml: Buffer Count_query List Predicate Printf Schema String Value
