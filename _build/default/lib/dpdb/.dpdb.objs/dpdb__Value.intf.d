lib/dpdb/value.mli: Format
