lib/dpdb/generator.mli: Count_query Database Prob Schema Value
