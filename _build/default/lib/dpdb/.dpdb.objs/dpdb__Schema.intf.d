lib/dpdb/schema.mli: Format Value
