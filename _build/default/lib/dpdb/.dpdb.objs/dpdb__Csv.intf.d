lib/dpdb/csv.mli: Database
