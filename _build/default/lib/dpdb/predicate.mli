(** Predicates over rows — the parameter of a count query.

    Built from column comparisons and boolean combinators, mirroring
    the paper's example: {i "individual is an adult residing in San
    Diego, who contracted flu this October"}. *)

type t =
  | True
  | False
  | Eq of string * Value.t
  | Lt of string * Value.t
  | Le of string * Value.t
  | Gt of string * Value.t
  | Ge of string * Value.t
  | In of string * Value.t list
  | Not of t
  | And of t * t
  | Or of t * t

val ( &&& ) : t -> t -> t
(** Conjunction combinator. *)

val ( ||| ) : t -> t -> t
(** Disjunction combinator. *)

val not_ : t -> t

val eval : Schema.t -> Value.t array -> t -> bool
(** @raise Invalid_argument when the predicate references an unknown
    column of the schema. *)

val to_string : t -> string
(** Rendering that {!Query_parser.parse} accepts back (text literals
    are single-quoted). *)

val pp : Format.formatter -> t -> unit
