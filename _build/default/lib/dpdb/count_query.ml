(** Count queries and their sensitivity.

    A count query maps a database of size [n] into [{0..n}]. Its global
    sensitivity is 1: changing one row changes the count by at most
    one — the fact that lets Definition 2 replace the general DP
    constraint with the adjacent-input form. [sensitivity_bound]
    verifies this empirically for any predicate. *)

type t = { name : string; predicate : Predicate.t }

let make ?(name = "count") predicate = { name; predicate }

let name t = t.name
let predicate t = t.predicate

(** Evaluate: the true (unperturbed) query result. *)
let eval t db = Database.count db t.predicate

(** Range of the query on databases of size [n]: [{0..n}]. *)
let range_max _t db = Database.size db

(** Largest |q(d) − q(d′)| observed over all single-row replacements of
    [db] with rows drawn from [candidates]. Always ≤ 1 for count
    queries; exercised by tests as an empirical sensitivity check. *)
let sensitivity_bound t db ~candidates =
  let base = eval t db in
  let worst = ref 0 in
  for i = 0 to Database.size db - 1 do
    List.iter
      (fun r ->
        let altered = Database.replace db i r in
        let delta = abs (eval t altered - base) in
        if delta > !worst then worst := delta)
      candidates
  done;
  !worst

let pp fmt t = Format.fprintf fmt "COUNT WHERE %a" Predicate.pp t.predicate
