(** Count queries and their sensitivity.

    A count query maps a database of size [n] into [{0..n}]. Its global
    sensitivity is 1 — the fact that lets Definition 2 of the paper
    state differential privacy over adjacent inputs only. *)

type t

val make : ?name:string -> Predicate.t -> t

val name : t -> string
val predicate : t -> Predicate.t

val eval : t -> Database.t -> int
(** The true (unperturbed) query result. *)

val range_max : t -> Database.t -> int
(** Upper end of the query's range on this database (its size). *)

val sensitivity_bound : t -> Database.t -> candidates:Value.t array list -> int
(** Largest |q(d) − q(d′)| over all single-row replacements of [d] by
    rows from [candidates]. Always ≤ 1 for count queries; used as an
    empirical sensitivity check. *)

val pp : Format.formatter -> t -> unit
