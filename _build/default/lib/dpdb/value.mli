(** Cell values for the toy row store. *)

type t = Int of int | Text of string | Bool of bool

type ty = Tint | Ttext | Tbool

val type_of : t -> ty

val equal : t -> t -> bool
(** Values of different types are unequal (no coercion). *)

val compare : t -> t -> int
(** Total order: within a type, the natural order; across types,
    [Int < Text < Bool]. *)

val to_string : t -> string
val ty_to_string : ty -> string
val pp : Format.formatter -> t -> unit
