(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t = { columns : column array; index : (string, int) Hashtbl.t }

let make cols =
  let columns = Array.of_list (List.map (fun (name, ty) -> { name; ty }) cols) in
  let index = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem index c.name then invalid_arg ("Schema.make: duplicate column " ^ c.name);
      Hashtbl.add index c.name i)
    columns;
  { columns; index }

let arity t = Array.length t.columns

let column_index t name =
  match Hashtbl.find_opt t.index name with
  | Some i -> i
  | None -> invalid_arg ("Schema: unknown column " ^ name)

let column_type t name = t.columns.(column_index t name).ty

let column_names t = Array.to_list (Array.map (fun c -> c.name) t.columns)

let validate_row t (row : Value.t array) =
  Array.length row = arity t
  && Array.for_all2 (fun c v -> Value.type_of v = c.ty) t.columns row

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map (fun c -> Printf.sprintf "%s:%s" c.name (Value.ty_to_string c.ty)) t.columns)))
