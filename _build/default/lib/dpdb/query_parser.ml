(** A small predicate language for count queries.

    Grammar (case-insensitive keywords):

    {v
      pred   ::= or
      or     ::= and ( OR and )*
      and    ::= unary ( AND unary )*
      unary  ::= NOT unary | '(' pred ')' | atom | TRUE | FALSE
      atom   ::= ident op literal | ident IN '(' literal, ... ')'
      op     ::= = | != | < | <= | > | >=
      literal::= integer | 'single-quoted text' | true | false
    v}

    Example: [age >= 18 AND city = 'San Diego' AND has_flu = true]. *)

type token =
  | Ident of string
  | Int_lit of int
  | Text_lit of string
  | Kw_and
  | Kw_or
  | Kw_not
  | Kw_in
  | Kw_true
  | Kw_false
  | Op of string
  | Lparen
  | Rparen
  | Comma

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let tokenize s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' then incr i
    else if c = '(' then begin
      out := Lparen :: !out;
      incr i
    end
    else if c = ')' then begin
      out := Rparen :: !out;
      incr i
    end
    else if c = ',' then begin
      out := Comma :: !out;
      incr i
    end
    else if c = '\'' then begin
      (* quoted text literal, '' escapes a quote *)
      let buf = Buffer.create 8 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if s.[!i] = '\'' then
          if !i + 1 < n && s.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      if not !closed then fail "unterminated string literal";
      out := Text_lit (Buffer.contents buf) :: !out
    end
    else if c = '=' then begin
      out := Op "=" :: !out;
      incr i
    end
    else if c = '!' && !i + 1 < n && s.[!i + 1] = '=' then begin
      out := Op "!=" :: !out;
      i := !i + 2
    end
    else if c = '<' || c = '>' then begin
      if !i + 1 < n && s.[!i + 1] = '=' then begin
        out := Op (String.make 1 c ^ "=") :: !out;
        i := !i + 2
      end
      else begin
        out := Op (String.make 1 c) :: !out;
        incr i
      end
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && s.[!i + 1] >= '0' && s.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
        incr i
      done;
      out := Int_lit (int_of_string (String.sub s start (!i - start))) :: !out
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      let tok =
        match String.lowercase_ascii word with
        | "and" -> Kw_and
        | "or" -> Kw_or
        | "not" -> Kw_not
        | "in" -> Kw_in
        | "true" -> Kw_true
        | "false" -> Kw_false
        | _ -> Ident word
      in
      out := tok :: !out
    end
    else fail "unexpected character %C" c
  done;
  List.rev !out

(* Recursive-descent parser over a mutable token stream. *)
type stream = { mutable tokens : token list }

let peek st = match st.tokens with [] -> None | t :: _ -> Some t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
    st.tokens <- rest;
    t

let expect st tok what =
  let got = advance st in
  if got <> tok then fail "expected %s" what

let literal st =
  match advance st with
  | Int_lit n -> Value.Int n
  | Text_lit s -> Value.Text s
  | Kw_true -> Value.Bool true
  | Kw_false -> Value.Bool false
  | _ -> fail "expected a literal (integer, 'text', true, false)"

let atom_of st name =
  match advance st with
  | Op "=" -> Predicate.Eq (name, literal st)
  | Op "!=" -> Predicate.Not (Predicate.Eq (name, literal st))
  | Op "<" -> Predicate.Lt (name, literal st)
  | Op "<=" -> Predicate.Le (name, literal st)
  | Op ">" -> Predicate.Gt (name, literal st)
  | Op ">=" -> Predicate.Ge (name, literal st)
  | Kw_in ->
    expect st Lparen "'(' after IN";
    let rec items acc =
      let v = literal st in
      match advance st with
      | Comma -> items (v :: acc)
      | Rparen -> List.rev (v :: acc)
      | _ -> fail "expected ',' or ')' in IN list"
    in
    Predicate.In (name, items [])
  | _ -> fail "expected a comparison operator or IN after %S" name

let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | Some Kw_or ->
    ignore (advance st);
    Predicate.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_unary st in
  match peek st with
  | Some Kw_and ->
    ignore (advance st);
    Predicate.And (left, parse_and st)
  | _ -> left

and parse_unary st =
  match advance st with
  | Kw_not -> Predicate.Not (parse_unary st)
  | Lparen ->
    let p = parse_or st in
    expect st Rparen "')'";
    p
  | Kw_true -> Predicate.True
  | Kw_false -> Predicate.False
  | Ident name -> atom_of st name
  | _ -> fail "expected a predicate"

(** Parse a predicate expression.
    @raise Parse_error on malformed input. *)
let parse s =
  let st = { tokens = tokenize s } in
  let p = parse_or st in
  (match st.tokens with
   | [] -> ()
   | _ -> fail "trailing input after predicate");
  p

let parse_opt s = try Some (parse s) with Parse_error _ -> None

(** Parse directly into a count query. *)
let parse_query ?name s = Count_query.make ?name (parse s)

(** Validate the predicate's column references and literal types
    against a schema; returns the offending description on failure. *)
let type_check schema pred =
  let check_col name ty_wanted =
    match Schema.column_type schema name with
    | ty when ty = ty_wanted -> None
    | ty ->
      Some
        (Printf.sprintf "column %s has type %s, literal has type %s" name (Value.ty_to_string ty)
           (Value.ty_to_string ty_wanted))
    | exception Invalid_argument _ -> Some (Printf.sprintf "unknown column %s" name)
  in
  let rec go = function
    | Predicate.True | Predicate.False -> None
    | Predicate.Eq (c, v) | Predicate.Lt (c, v) | Predicate.Le (c, v)
    | Predicate.Gt (c, v) | Predicate.Ge (c, v) ->
      check_col c (Value.type_of v)
    | Predicate.In (c, vs) ->
      List.fold_left (fun acc v -> if acc <> None then acc else check_col c (Value.type_of v)) None vs
    | Predicate.Not p -> go p
    | Predicate.And (a, b) | Predicate.Or (a, b) -> ( match go a with None -> go b | e -> e)
  in
  go pred
