(** Cell values for the toy row store. *)

type t = Int of int | Text of string | Bool of bool

type ty = Tint | Ttext | Tbool

let type_of = function Int _ -> Tint | Text _ -> Ttext | Bool _ -> Tbool

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Text _ | Bool _), _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Text x, Text y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Int _, (Text _ | Bool _) -> -1
  | Text _, Bool _ -> -1
  | Text _, Int _ -> 1
  | Bool _, (Int _ | Text _) -> 1

let to_string = function
  | Int n -> string_of_int n
  | Text s -> s
  | Bool b -> string_of_bool b

let pp fmt v = Format.pp_print_string fmt (to_string v)

let ty_to_string = function Tint -> "int" | Ttext -> "text" | Tbool -> "bool"
