(** Synthetic population generator.

    Substitutes for the paper's (unavailable) survey data — see the
    substitution table in DESIGN.md. Only the count [f(d)] enters the
    privacy machinery, so any generator covering counts 0..n exercises
    the same code paths as real data.

    Schema: [(name:text, age:int, city:text, has_flu:bool,
    bought_drug:bool)]. The generator guarantees [bought_drug ⇒
    has_flu], making drug sales a certified lower bound on the flu
    count (the paper's side-information example). *)

val schema : Schema.t

val cities : string array

val random_row :
  Prob.Rng.t -> flu_rate:float -> drug_rate_given_flu:float -> int -> Value.t array
(** One synthetic individual; the [int] is used for the name. *)

val population :
  Prob.Rng.t -> ?flu_rate:float -> ?drug_rate_given_flu:float -> int -> Database.t
(** Random population of the given size (defaults: flu 20%, drug 50%
    of flu cases). *)

val population_with_count : Prob.Rng.t -> n:int -> count:int -> Database.t
(** Population whose flu count is exactly [count].
    @raise Invalid_argument unless [0 <= count <= n]. *)

val flu_query : Count_query.t
(** The paper's query Q: adult San Diego residents with flu. *)

val flu_anywhere : Count_query.t
(** Flu count over the whole population. *)

val drug_query : Count_query.t
(** Drug purchases — the drug company's side information. *)
