(** Immutable in-memory row store.

    A database is a sequence of rows over a fixed schema — exactly the
    object the differential-privacy definition quantifies over. Rows
    carry the identity of individuals positionally, so "one individual
    changes their data" is {!replace}. *)

type t

val create : Schema.t -> t
(** Empty database. *)

val of_rows : Schema.t -> Value.t array list -> t
(** @raise Invalid_argument when a row does not match the schema. *)

val schema : t -> Schema.t
val size : t -> int

val rows : t -> Value.t array list
(** Fresh copies; mutating them does not affect the database. *)

val row : t -> int -> Value.t array
(** Fresh copy of row [i]. *)

val insert : t -> Value.t array -> t
val remove : t -> int -> t

val replace : t -> int -> Value.t array -> t
(** Replace row [i] — the canonical neighboring-database move. *)

val are_neighbors : t -> t -> bool
(** Same schema, same size, and at most one differing row. *)

val count : t -> Predicate.t -> int
(** The paper's count query: rows satisfying the predicate. *)

val select : t -> Predicate.t -> Value.t array list

val pp : Format.formatter -> t -> unit
