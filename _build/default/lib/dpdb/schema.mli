(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : (string * Value.ty) list -> t
(** @raise Invalid_argument on duplicate column names. *)

val arity : t -> int

val column_index : t -> string -> int
(** @raise Invalid_argument on an unknown column. *)

val column_type : t -> string -> Value.ty
(** @raise Invalid_argument on an unknown column. *)

val column_names : t -> string list
(** In declaration order. *)

val validate_row : t -> Value.t array -> bool
(** Arity and per-column types all match. *)

val pp : Format.formatter -> t -> unit
