(** A small predicate language for count queries.

    Grammar (case-insensitive keywords):

    {v
      pred   ::= or
      or     ::= and ( OR and )*
      and    ::= unary ( AND unary )*
      unary  ::= NOT unary | '(' pred ')' | atom | TRUE | FALSE
      atom   ::= ident op literal | ident IN '(' literal, ... ')'
      op     ::= = | != | < | <= | > | >=
      literal::= integer | 'single-quoted text' | true | false
    v}

    Example: [age >= 18 AND city = 'San Diego' AND has_flu = true]. *)

exception Parse_error of string

val parse : string -> Predicate.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Predicate.t option

val parse_query : ?name:string -> string -> Count_query.t
(** Parse directly into a count query.
    @raise Parse_error on malformed input. *)

val type_check : Schema.t -> Predicate.t -> string option
(** [None] when every referenced column exists with the literal's
    type; otherwise a description of the first mismatch. *)
