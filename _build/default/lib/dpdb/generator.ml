(** Synthetic population generator.

    The paper's running example — flu counts in San Diego published by
    a health agency — relies on survey data we do not have; this
    generator produces populations with the same shape (per DESIGN.md's
    substitution table). Only the count [f(d)] reaches the mechanism
    stack, so any generator covering counts 0..n exercises the same
    code paths as the real data.

    Schema: [(name, age, city, has_flu, bought_drug)]. *)

let schema =
  Schema.make
    [
      ("name", Value.Ttext);
      ("age", Value.Tint);
      ("city", Value.Ttext);
      ("has_flu", Value.Tbool);
      ("bought_drug", Value.Tbool);
    ]

let cities = [| "San Diego"; "Los Angeles"; "Sacramento"; "Fresno" |]

let random_row rng ~flu_rate ~drug_rate_given_flu i =
  let has_flu = Prob.Rng.float rng < flu_rate in
  let bought = has_flu && Prob.Rng.float rng < drug_rate_given_flu in
  [|
    Value.Text (Printf.sprintf "person-%04d" i);
    Value.Int (18 + Prob.Rng.int rng 70);
    Value.Text cities.(Prob.Rng.int rng (Array.length cities));
    Value.Bool has_flu;
    Value.Bool bought;
  |]

(** A random population of [n] adults with the given flu rate. *)
let population rng ?(flu_rate = 0.2) ?(drug_rate_given_flu = 0.5) n =
  Database.of_rows schema (List.init n (random_row rng ~flu_rate ~drug_rate_given_flu))

(** A population engineered so the flu count is exactly [count]. *)
let population_with_count rng ~n ~count =
  if count < 0 || count > n then invalid_arg "Generator.population_with_count";
  let rows =
    List.init n (fun i ->
        let r = random_row rng ~flu_rate:0.0 ~drug_rate_given_flu:0.0 i in
        if i < count then begin
          let r = Array.copy r in
          r.(3) <- Value.Bool true;
          r
        end
        else r)
  in
  Database.of_rows schema rows

(** The paper's query Q: adults from San Diego who contracted the flu. *)
let flu_query =
  Count_query.make ~name:"flu-san-diego"
    Predicate.(
      Eq ("city", Value.Text "San Diego")
      &&& Eq ("has_flu", Value.Bool true)
      &&& Ge ("age", Value.Int 18))

(** Flu count regardless of city (used when the whole population is the
    cohort). *)
let flu_anywhere = Count_query.make ~name:"flu" (Predicate.Eq ("has_flu", Value.Bool true))

(** Drug purchases — the drug company's side information (a lower bound
    on the flu count in its own records). *)
let drug_query = Count_query.make ~name:"drug" (Predicate.Eq ("bought_drug", Value.Bool true))
