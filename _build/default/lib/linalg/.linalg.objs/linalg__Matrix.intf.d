lib/linalg/matrix.mli: Field Format
