lib/linalg/matrix.ml: Array Field Format List Option Rat
