lib/linalg/field.ml: Float Format Rat
