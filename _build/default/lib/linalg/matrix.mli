(** Dense matrices and vectors over an arbitrary {!Field.S}.

    Matrices are immutable from the caller's point of view: every
    operation returns fresh storage; accessors copy. Row-major
    indexing. *)

module Make (F : Field.S) : sig
  type elt = F.t
  type vec = F.t array
  type t = F.t array array

  (** {1 Construction and access} *)

  val make : int -> int -> F.t -> t
  val init : int -> int -> (int -> int -> F.t) -> t
  val identity : int -> t

  val of_rows : F.t list list -> t
  (** @raise Invalid_argument on ragged rows. *)

  val of_arrays : F.t array array -> t
  (** Defensive copy. @raise Invalid_argument on ragged rows. *)

  val copy : t -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> F.t
  val row : t -> int -> vec
  val column : t -> int -> vec
  val to_arrays : t -> F.t array array
  val transpose : t -> t
  val map : (F.t -> F.t) -> t -> t
  val mapij : (int -> int -> F.t -> F.t) -> t -> t

  (** {1 Algebra} *)

  val equal : t -> t -> bool
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : F.t -> t -> t

  val mul : t -> t -> t
  (** @raise Invalid_argument on a shape mismatch (as do [add], [sub],
      and the vector products). *)

  val mul_vec : t -> vec -> vec
  (** Matrix × column vector. *)

  val vec_mul : vec -> t -> vec
  (** Row vector × matrix. *)

  val dot : vec -> vec -> F.t

  (** {1 Gaussian elimination} *)

  val determinant : t -> F.t
  (** Partial-pivoting elimination; exact over exact fields.
      @raise Invalid_argument when not square. *)

  val gauss_jordan : t -> t -> t option
  (** [gauss_jordan a rhs] reduces [[a | rhs]]; [None] when [a] is
      singular. *)

  val inverse : t -> t option
  val solve : t -> vec -> vec option
  val rank : t -> int

  (** {1 Stochastic-matrix predicates} *)

  val row_sums : t -> vec
  val is_nonnegative : t -> bool

  val is_generalized_stochastic : t -> bool
  (** Every row sums to exactly one (entries may be negative). *)

  val is_row_stochastic : t -> bool
  (** Non-negative with unit row sums. *)

  (** {1 Printing} *)

  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Q : module type of Make (Field.Rational)
(** Exact-rational instantiation — the default across the repository. *)

module Fl : module type of Make (Field.Float_field)
(** Float instantiation, for simulation and the numeric ablation. *)

val q_to_float : Q.t -> Fl.t
(** Convert an exact matrix to floats. *)
