(* Structured analyzer verdicts; see diagnostic.mli. *)

type severity = Error | Warning

type location =
  | Matrix_cell of { row : int; col : int }
  | Matrix_row of { row : int }
  | Adjacent_pair of { row : int; col : int }
  | Column_triple of { col : int; mid : int }
  | Source_line of { file : string; line : int }
  | Whole

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
  witness : (string * string) list;
}

let make severity ?(witness = []) ~rule location message =
  { rule; severity; location; message; witness }

let error ?witness ~rule location message = make Error ?witness ~rule location message
let warning ?witness ~rule location message = make Warning ?witness ~rule location message

let rats kvs = List.map (fun (k, v) -> (k, Rat.to_string v)) kvs

let location_to_json = function
  | Matrix_cell { row; col } ->
    Json.Obj [ ("kind", Json.Str "cell"); ("row", Json.Int row); ("col", Json.Int col) ]
  | Matrix_row { row } -> Json.Obj [ ("kind", Json.Str "row"); ("row", Json.Int row) ]
  | Adjacent_pair { row; col } ->
    Json.Obj
      [ ("kind", Json.Str "adjacent-pair"); ("row", Json.Int row); ("col", Json.Int col) ]
  | Column_triple { col; mid } ->
    Json.Obj [ ("kind", Json.Str "column-triple"); ("col", Json.Int col); ("mid", Json.Int mid) ]
  | Source_line { file; line } ->
    Json.Obj [ ("kind", Json.Str "source"); ("file", Json.Str file); ("line", Json.Int line) ]
  | Whole -> Json.Obj [ ("kind", Json.Str "whole") ]

let to_json d =
  Json.Obj
    [
      ("rule", Json.Str d.rule);
      ("severity", Json.Str (match d.severity with Error -> "error" | Warning -> "warning"));
      ("location", location_to_json d.location);
      ("message", Json.Str d.message);
      ("witness", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) d.witness));
    ]

let pp_location fmt = function
  | Matrix_cell { row; col } -> Format.fprintf fmt "(%d,%d)" row col
  | Matrix_row { row } -> Format.fprintf fmt "row %d" row
  | Adjacent_pair { row; col } -> Format.fprintf fmt "rows %d/%d col %d" row (row + 1) col
  | Column_triple { col; mid } -> Format.fprintf fmt "col %d rows %d..%d" col (mid - 1) (mid + 1)
  | Source_line { file; line } -> Format.fprintf fmt "%s:%d" file line
  | Whole -> Format.pp_print_string fmt "whole"

let pp fmt d =
  Format.fprintf fmt "%s %s @@ %a: %s"
    (match d.severity with Error -> "error" | Warning -> "warning")
    d.rule pp_location d.location d.message;
  match d.witness with
  | [] -> ()
  | w ->
    Format.fprintf fmt " [%s]"
      (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) w))
