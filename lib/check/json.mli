(** Minimal JSON values and rendering for diagnostics.

    This is {!Obs.Json}, re-exported: the implementation lives in
    [lib/obs] (the observability sinks sit below the analyzer in the
    dependency order), and the re-export preserves type and
    constructor equality, so values built here and there mix freely. *)

include module type of struct
  include Obs.Json
end
