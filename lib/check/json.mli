(** Minimal JSON values and rendering for diagnostics.

    Deliberately tiny: the analyzer's diagnostics and certificates must
    be machine-readable without pulling a JSON dependency into the
    build. Output is valid RFC-8259 JSON; exact rationals are encoded
    as strings (["3/7"]) so no precision is lost in transit. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val rat : Rat.t -> t
(** Exact encoding of a rational as a ["p/q"] (or ["p"]) string. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)

val to_string : t -> string
(** Compact single-line rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented multi-line rendering for human eyes. *)
