(* The domain analyzer; see invariants.mli.

   Checks recompute invariants from first principles over exact
   rationals. Every violation carries the exact counterexample; every
   pass carries a certificate naming the binding constraint, so both
   outcomes can be re-derived without re-running the analyzer. *)

module D = Diagnostic
module Qm = Linalg.Matrix.Q

type certificate = {
  cert_rule : string;
  params : (string * string) list;
  constraints_checked : int;
  tight : (string * string) list;
}

type report = {
  rule : string;
  diagnostics : D.t list;
  certificate : certificate option;
}

let passed r = r.diagnostics = []
let all_passed rs = List.for_all passed rs

let matrix_digest m =
  let buf = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iter
        (fun x ->
          Buffer.add_string buf (Rat.to_string x);
          Buffer.add_char buf ' ')
        row;
      Buffer.add_char buf '\n')
    m;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let finish ~rule ~params ~checked ~tight diagnostics =
  {
    rule;
    diagnostics = List.rev diagnostics;
    certificate =
      (if diagnostics = [] then
         Some { cert_rule = rule; params; constraints_checked = checked; tight }
       else None);
  }

let check_alpha_range name alpha =
  if Rat.sign alpha <= 0 || Rat.compare alpha Rat.one >= 0 then
    invalid_arg (name ^ ": alpha must lie strictly inside (0,1)")

(* ------------------------------------------------------------------ *)
(* Row-stochasticity                                                   *)
(* ------------------------------------------------------------------ *)

let row_stochastic m =
  let rule = "row-stochastic" in
  let rows = Array.length m in
  if rows = 0 then
    finish ~rule ~params:[] ~checked:0 ~tight:[]
      [ D.error ~rule D.Whole "empty matrix" ]
  else begin
    let diags = ref [] in
    let checked = ref 0 in
    (* Binding data: smallest entry and the row sum witnesses. *)
    let min_entry = ref m.(0).(0) and min_at = ref (0, 0) in
    Array.iteri
      (fun i row ->
        incr checked;
        if Array.length row <> rows then
          diags :=
            D.error ~rule
              ~witness:[ ("expected_cols", string_of_int rows);
                         ("actual_cols", string_of_int (Array.length row)) ]
              (D.Matrix_row { row = i })
              "matrix is not square"
            :: !diags
        else begin
          Array.iteri
            (fun r x ->
              incr checked;
              if Rat.compare x !min_entry < 0 then begin
                min_entry := x;
                min_at := (i, r)
              end;
              if Rat.sign x < 0 then
                diags :=
                  D.error ~rule
                    ~witness:(D.rats [ ("entry", x) ])
                    (D.Matrix_cell { row = i; col = r })
                    "negative probability mass"
                  :: !diags)
            row;
          let sum = Array.fold_left Rat.add Rat.zero row in
          incr checked;
          if not (Rat.is_one sum) then
            diags :=
              D.error ~rule
                ~witness:(D.rats [ ("row_sum", sum); ("expected", Rat.one) ])
                (D.Matrix_row { row = i })
                "row does not sum to 1"
              :: !diags
        end)
      m;
    let mi, mr = !min_at in
    finish ~rule
      ~params:[ ("rows", string_of_int rows); ("digest", matrix_digest m) ]
      ~checked:!checked
      ~tight:
        (("min_entry", Rat.to_string !min_entry)
         :: ("min_entry_at", Printf.sprintf "(%d,%d)" mi mr)
         :: [])
      !diags
  end

(* ------------------------------------------------------------------ *)
(* Definition 2: alpha-differential privacy                            *)
(* ------------------------------------------------------------------ *)

let alpha_dp ~alpha m =
  let rule = "alpha-dp" in
  check_alpha_range "Invariants.alpha_dp" alpha;
  let n = Array.length m - 1 in
  let diags = ref [] in
  let checked = ref 0 in
  (* Strongest supported alpha: min over adjacent pairs of
     min(a/b, b/a); zero when a zero sits next to a non-zero. *)
  let strongest = ref Rat.one and strongest_at = ref (0, 0) in
  for i = 0 to n - 1 do
    for r = 0 to n do
      let a = m.(i).(r) and b = m.(i + 1).(r) in
      checked := !checked + 2;
      let witness side lhs rhs =
        D.rats
          [ ("alpha", alpha); ("x_i", a); ("x_succ", b); ("lhs", lhs); ("rhs", rhs) ]
        @ [ ("side", side) ]
      in
      (* alpha * a <= b  (the released mass cannot drop too fast) *)
      if Rat.compare (Rat.mul alpha a) b > 0 then
        diags :=
          D.error ~rule
            ~witness:(witness "alpha*x_i <= x_succ" (Rat.mul alpha a) b)
            (D.Adjacent_pair { row = i; col = r })
            "Definition 2 violated: alpha*x(i,r) > x(i+1,r)"
          :: !diags;
      (* alpha * b <= a *)
      if Rat.compare (Rat.mul alpha b) a > 0 then
        diags :=
          D.error ~rule
            ~witness:(witness "alpha*x_succ <= x_i" (Rat.mul alpha b) a)
            (D.Adjacent_pair { row = i; col = r })
            "Definition 2 violated: alpha*x(i+1,r) > x(i,r)"
          :: !diags;
      (match (Rat.is_zero a, Rat.is_zero b) with
       | true, true -> ()
       | true, false | false, true ->
         if Rat.sign !strongest > 0 then begin
           strongest := Rat.zero;
           strongest_at := (i, r)
         end
       | false, false ->
         let ratio = if Rat.compare a b <= 0 then Rat.div a b else Rat.div b a in
         if Rat.compare ratio !strongest < 0 then begin
           strongest := ratio;
           strongest_at := (i, r)
         end)
    done
  done;
  let si, sr = !strongest_at in
  finish ~rule
    ~params:
      [ ("n", string_of_int n); ("alpha", Rat.to_string alpha); ("digest", matrix_digest m) ]
    ~checked:!checked
    ~tight:
      [ ("privacy_level", Rat.to_string !strongest);
        ("binding_pair", Printf.sprintf "rows %d/%d col %d" si (si + 1) sr) ]
    !diags

(* ------------------------------------------------------------------ *)
(* Theorem 2: derivability condition                                   *)
(* ------------------------------------------------------------------ *)

let derivability ~alpha m =
  let rule = "derivable" in
  check_alpha_range "Invariants.derivability" alpha;
  let n = Array.length m - 1 in
  let diags = ref [] in
  let checked = ref 0 in
  let one_plus_a2 = Rat.add Rat.one (Rat.mul alpha alpha) in
  let min_slack = ref None and min_at = ref (0, 0) in
  let note_slack slack c i =
    match !min_slack with
    | Some s when Rat.compare s slack <= 0 -> ()
    | _ ->
      min_slack := Some slack;
      min_at := (c, i)
  in
  for c = 0 to n do
    (* Lemma 2 boundary inequalities. *)
    incr checked;
    let top = Rat.sub m.(0).(c) (Rat.mul alpha m.(1).(c)) in
    note_slack top c 0;
    if Rat.sign top < 0 then
      diags :=
        D.error ~rule
          ~witness:(D.rats [ ("alpha", alpha); ("x_0", m.(0).(c)); ("x_1", m.(1).(c)); ("slack", top) ])
          (D.Matrix_cell { row = 0; col = c })
          "boundary condition violated: x_0 < alpha*x_1"
        :: !diags;
    incr checked;
    let bottom = Rat.sub m.(n).(c) (Rat.mul alpha m.(n - 1).(c)) in
    note_slack bottom c n;
    if Rat.sign bottom < 0 then
      diags :=
        D.error ~rule
          ~witness:
            (D.rats [ ("alpha", alpha); ("x_n", m.(n).(c)); ("x_pred", m.(n - 1).(c)); ("slack", bottom) ])
          (D.Matrix_cell { row = n; col = c })
          "boundary condition violated: x_n < alpha*x_{n-1}"
        :: !diags;
    for i = 1 to n - 1 do
      incr checked;
      let x1 = m.(i - 1).(c) and x2 = m.(i).(c) and x3 = m.(i + 1).(c) in
      let slack = Rat.sub (Rat.mul one_plus_a2 x2) (Rat.mul alpha (Rat.add x1 x3)) in
      note_slack slack c i;
      if Rat.sign slack < 0 then
        diags :=
          D.error ~rule
            ~witness:
              (D.rats
                 [ ("alpha", alpha); ("x1", x1); ("x2", x2); ("x3", x3); ("slack", slack) ])
            (D.Column_triple { col = c; mid = i })
            "Theorem 2 violated: (1+alpha^2)*x2 < alpha*(x1+x3)"
          :: !diags
    done
  done;
  let bc, bi = !min_at in
  finish ~rule
    ~params:
      [ ("n", string_of_int n); ("alpha", Rat.to_string alpha); ("digest", matrix_digest m) ]
    ~checked:!checked
    ~tight:
      [ ("min_slack", match !min_slack with Some s -> Rat.to_string s | None -> "none");
        ("binding_triple", Printf.sprintf "col %d mid-row %d" bc bi) ]
    !diags

(* ------------------------------------------------------------------ *)
(* Constructive factorization T = G^{-1} M                             *)
(* ------------------------------------------------------------------ *)

let factorization ~alpha m =
  let rule = "factorization" in
  check_alpha_range "Invariants.factorization" alpha;
  let n = Array.length m - 1 in
  let g = Mech.Mechanism.matrix (Mech.Geometric.matrix ~n ~alpha) in
  match Qm.inverse g with
  | None ->
    (* Impossible for 0 < alpha < 1 (Lemma 1: det = (1-a^2)^n / norm). *)
    finish ~rule ~params:[] ~checked:0 ~tight:[]
      [ D.error ~rule D.Whole "geometric matrix reported singular (analyzer bug)" ]
  | Some g_inv ->
    let t = Qm.mul g_inv m in
    let diags = ref [] in
    let checked = ref 0 in
    let min_entry = ref t.(0).(0) and min_at = ref (0, 0) in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun r x ->
            incr checked;
            if Rat.compare x !min_entry < 0 then begin
              min_entry := x;
              min_at := (i, r)
            end;
            if Rat.sign x < 0 then
              diags :=
                D.error ~rule
                  ~witness:(D.rats [ ("t_entry", x) ])
                  (D.Matrix_cell { row = i; col = r })
                  "factor T = G^-1*M has a negative entry (not a post-processing)"
                :: !diags)
          row;
        let sum = Array.fold_left Rat.add Rat.zero row in
        incr checked;
        if not (Rat.is_one sum) then
          diags :=
            D.error ~rule
              ~witness:(D.rats [ ("row_sum", sum) ])
              (D.Matrix_row { row = i })
              "factor T = G^-1*M row does not sum to 1"
            :: !diags)
      t;
    (* Replay: G * T must reproduce M exactly. *)
    let replay = Qm.mul g t in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun r x ->
            incr checked;
            if not (Rat.equal x m.(i).(r)) then
              diags :=
                D.error ~rule
                  ~witness:(D.rats [ ("replayed", x); ("original", m.(i).(r)) ])
                  (D.Matrix_cell { row = i; col = r })
                  "replay G*T did not reproduce M (elimination bug)"
                :: !diags)
          row)
      replay;
    let mi, mr = !min_at in
    finish ~rule
      ~params:
        [ ("n", string_of_int n); ("alpha", Rat.to_string alpha); ("digest", matrix_digest m) ]
      ~checked:!checked
      ~tight:
        [ ("min_T_entry", Rat.to_string !min_entry);
          ("min_T_entry_at", Printf.sprintf "(%d,%d)" mi mr) ]
      !diags

(* ------------------------------------------------------------------ *)
(* Monotone-loss well-formedness                                       *)
(* ------------------------------------------------------------------ *)

let monotone_loss ~name ~n f =
  let rule = "monotone-loss" in
  if n < 1 then invalid_arg "Invariants.monotone_loss: n must be >= 1";
  let diags = ref [] in
  let checked = ref 0 in
  let min_step = ref None in
  for i = 0 to n do
    incr checked;
    let diag = f i i in
    if not (Rat.is_zero diag) then
      diags :=
        D.error ~rule
          ~witness:(D.rats [ ("loss", diag) ])
          (D.Matrix_cell { row = i; col = i })
          "loss is non-zero on the diagonal"
        :: !diags;
    (* Sort outputs by distance from i and require non-decreasing. *)
    let outs = List.init (n + 1) Fun.id in
    let by_dist = List.sort (fun a b -> compare (abs (i - a)) (abs (i - b))) outs in
    let rec walk = function
      | r1 :: (r2 :: _ as rest) ->
        incr checked;
        let l1 = f i r1 and l2 = f i r2 in
        if Rat.sign l1 < 0 then
          diags :=
            D.error ~rule
              ~witness:(D.rats [ ("loss", l1) ])
              (D.Matrix_cell { row = i; col = r1 })
              "negative loss"
            :: !diags;
        if abs (i - r1) < abs (i - r2) && Rat.compare l1 l2 > 0 then
          diags :=
            D.error ~rule
              ~witness:
                (D.rats [ ("near_loss", l1); ("far_loss", l2) ]
                 @ [ ("near", string_of_int r1); ("far", string_of_int r2) ])
              (D.Matrix_cell { row = i; col = r2 })
              "loss decreases as |i-r| grows (not monotone)"
            :: !diags
        else if abs (i - r1) < abs (i - r2) then begin
          let step = Rat.sub l2 l1 in
          match !min_step with
          | Some s when Rat.compare s step <= 0 -> ()
          | _ -> min_step := Some step
        end;
        walk rest
      | _ -> ()
    in
    walk by_dist
  done;
  finish ~rule
    ~params:[ ("loss", name); ("n", string_of_int n) ]
    ~checked:!checked
    ~tight:
      [ ("min_monotone_step",
         match !min_step with Some s -> Rat.to_string s | None -> "none") ]
    !diags

(* ------------------------------------------------------------------ *)
(* Lemma 3: the cascade transition matrix                              *)
(* ------------------------------------------------------------------ *)

let lemma3_transition ~n ~alpha ~beta =
  let rule = "lemma3-transition" in
  check_alpha_range "Invariants.lemma3_transition" alpha;
  check_alpha_range "Invariants.lemma3_transition" beta;
  if Rat.compare alpha beta > 0 then
    invalid_arg "Invariants.lemma3_transition: need alpha <= beta";
  let g_beta = Mech.Mechanism.matrix (Mech.Geometric.matrix ~n ~alpha:beta) in
  let fact = factorization ~alpha g_beta in
  let params =
    [ ("n", string_of_int n);
      ("alpha", Rat.to_string alpha);
      ("beta", Rat.to_string beta) ]
  in
  {
    rule;
    diagnostics = fact.diagnostics;
    certificate =
      Option.map
        (fun c ->
          let digest = List.filter (fun (k, _) -> k = "digest") c.params in
          { c with cert_rule = rule; params = params @ digest })
        fact.certificate;
  }

(* ------------------------------------------------------------------ *)
(* Aggregates                                                          *)
(* ------------------------------------------------------------------ *)

let check_mech ?alpha m =
  Obs.span ~attrs:[ ("rows", Obs.Int (Array.length m)) ] "check.mech" @@ fun () ->
  let base = row_stochastic m in
  match alpha with
  | None -> [ base ]
  | Some alpha ->
    if passed base && Array.length m >= 2 then
      [ base; alpha_dp ~alpha m; derivability ~alpha m; factorization ~alpha m ]
    else [ base ]

let check_derivable ~alpha m =
  Obs.span ~attrs:[ ("rows", Obs.Int (Array.length m)) ] "check.derivable" @@ fun () ->
  let base = row_stochastic m in
  if passed base && Array.length m >= 2 then
    [ base; derivability ~alpha m; factorization ~alpha m ]
  else [ base ]

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let pairs_to_json kvs = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)

let certificate_to_json c =
  Json.Obj
    [
      ("rule", Json.Str c.cert_rule);
      ("params", pairs_to_json c.params);
      ("constraints_checked", Json.Int c.constraints_checked);
      ("tight", pairs_to_json c.tight);
    ]

let report_to_json r =
  Json.Obj
    [
      ("rule", Json.Str r.rule);
      ("ok", Json.Bool (passed r));
      ("diagnostics", Json.List (List.map D.to_json r.diagnostics));
      ("certificate",
       match r.certificate with None -> Json.Null | Some c -> certificate_to_json c);
    ]

let summary_to_json rs =
  Json.Obj
    [
      ("tool", Json.Str "dplint");
      ("ok", Json.Bool (all_passed rs));
      ("reports", Json.List (List.map report_to_json rs));
    ]

let pp_report fmt r =
  if passed r then begin
    match r.certificate with
    | Some c ->
      Format.fprintf fmt "@[<v 2>PASS %s (%d constraints)%a@]" r.rule c.constraints_checked
        (fun fmt tight ->
          List.iter (fun (k, v) -> Format.fprintf fmt "@,%s = %s" k v) tight)
        c.tight
    | None -> Format.fprintf fmt "PASS %s" r.rule
  end
  else
    Format.fprintf fmt "@[<v 2>FAIL %s (%d violations)%a@]" r.rule
      (List.length r.diagnostics)
      (fun fmt ds -> List.iter (fun d -> Format.fprintf fmt "@,%a" D.pp d) ds)
      r.diagnostics
