(** The domain analyzer: exact certification of the linear invariants
    every mechanism in this repository must uphold.

    Each check consumes a raw [Rat.t array array] — deliberately {e not}
    {!Mech.Mechanism.t}, whose constructor already rejects some invalid
    inputs — and returns a {!report}: either a list of diagnostics with
    exact rational witnesses, or a replayable {!certificate}.

    The checks recompute everything from first principles (independent
    Gaussian elimination, explicit inequality scans) rather than
    trusting [lib/mech]'s own predicates, so they can serve as an
    independent audit of that code. *)

type certificate = {
  cert_rule : string;
  params : (string * string) list;
      (** everything needed to replay the check: dimensions, α, β, and
          an MD5 digest of the exact matrix text. *)
  constraints_checked : int;  (** number of atomic inequalities verified *)
  tight : (string * string) list;
      (** the binding constraint: where the minimum slack is attained
          and its exact value — re-derivable by hand. *)
}

type report = {
  rule : string;
  diagnostics : Diagnostic.t list;  (** empty iff the invariant holds *)
  certificate : certificate option;  (** [Some _] iff [diagnostics = []] *)
}

val passed : report -> bool
val all_passed : report list -> bool

val matrix_digest : Rat.t array array -> string
(** MD5 of the canonical exact-text rendering; ties certificates to the
    matrix they certify. *)

(** {1 Per-invariant checks} *)

val row_stochastic : Rat.t array array -> report
(** Squareness, entrywise non-negativity, exact unit row sums
    (§2.2). Witnesses: the offending cell value or row sum. *)

val alpha_dp : alpha:Rat.t -> Rat.t array array -> report
(** Definition 2: [α·x(i,r) <= x(i+1,r)] and [α·x(i+1,r) <= x(i,r)]
    for all adjacent inputs. Certificate reports the strongest
    (largest) α the matrix supports. @raise Invalid_argument unless
    [0 < alpha < 1]. *)

val derivability : alpha:Rat.t -> Rat.t array array -> report
(** Theorem 2's syntactic condition: every column triple satisfies
    [(1+α²)·x2 − α·(x1+x3) >= 0], plus Lemma 2's boundary inequalities
    [x_0 >= α·x_1] and [x_n >= α·x_{n−1}]. *)

val factorization : alpha:Rat.t -> Rat.t array array -> report
(** Constructive cross-check of {!derivability}: compute
    [T = G(n,α)⁻¹·M] by independent Gaussian elimination, verify [T] is
    row-stochastic, and replay the product [G·T = M] exactly. *)

val monotone_loss : name:string -> n:int -> (int -> int -> Rat.t) -> report
(** Well-formedness of a consumer loss on [{0..n}²]: non-negative,
    zero on the diagonal, and non-decreasing in [|i − r|] for every
    fixed [i] (§2.3). *)

val lemma3_transition : n:int -> alpha:Rat.t -> beta:Rat.t -> report
(** Lemma 3: [T_{α,β} = G(n,α)⁻¹·G(n,β)] is row-stochastic for
    [α <= β], and the product replays to [G(n,β)] exactly.
    @raise Invalid_argument unless [0 < α <= β < 1]. *)

(** {1 Aggregate entry points} *)

val check_mech : ?alpha:Rat.t -> Rat.t array array -> report list
(** {!row_stochastic}, then (when [alpha] is given) {!alpha_dp},
    {!derivability}, and {!factorization}. *)

val check_derivable : alpha:Rat.t -> Rat.t array array -> report list
(** {!row_stochastic}, {!derivability}, {!factorization}. *)

(** {1 Serialization} *)

val certificate_to_json : certificate -> Json.t
val report_to_json : report -> Json.t

val summary_to_json : report list -> Json.t
(** [{"tool": "dplint", "ok": …, "reports": […]}]. *)

val pp_report : Format.formatter -> report -> unit
