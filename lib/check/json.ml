(* Minimal JSON values and rendering; see json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

let rat r = Str (Rat.to_string r)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec to_string = function
  | Null -> "null"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Str s -> "\"" ^ escape s ^ "\""
  | List xs -> "[" ^ String.concat "," (List.map to_string xs) ^ "]"
  | Obj fields ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ to_string v) fields)
    ^ "}"

let rec pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Str s -> Format.fprintf fmt "\"%s\"" (escape s)
  | List [] -> Format.pp_print_string fmt "[]"
  | List xs ->
    Format.fprintf fmt "@[<v 2>[@,%a@;<0 -2>]@]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") pp)
      xs
  | Obj [] -> Format.pp_print_string fmt "{}"
  | Obj fields ->
    let field fmt (k, v) = Format.fprintf fmt "@[<hov 2>\"%s\": %a@]" (escape k) pp v in
    Format.fprintf fmt "@[<v 2>{@,%a@;<0 -2>}@]"
      (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",@,") field)
      fields
