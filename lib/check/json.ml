(* The JSON implementation moved to lib/obs (the observability sinks
   need it below the analyzer in the dependency order); [Check.Json]
   stays as the same module so certificates and diagnostics keep their
   type equalities. *)

include Obs.Json
