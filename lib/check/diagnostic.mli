(** Structured analyzer verdicts.

    Every violation found by {!Invariants} or {!Lint} is a diagnostic
    carrying a machine-readable location and an exact-rational witness:
    enough data to re-derive the violated inequality by hand without
    re-running the analyzer. The JSON encoding is shared with
    [lib/report]'s experiment harness. *)

type severity = Error | Warning

type location =
  | Matrix_cell of { row : int; col : int }
  | Matrix_row of { row : int }
  | Adjacent_pair of { row : int; col : int }
      (** Definition-2 constraint between inputs [row] and [row+1] at
          output column [col]. *)
  | Column_triple of { col : int; mid : int }
      (** Theorem-2 condition on entries [mid-1, mid, mid+1] of
          column [col]. *)
  | Source_line of { file : string; line : int }
  | Whole  (** the whole artifact (shape errors, missing files) *)

type t = {
  rule : string;  (** e.g. ["row-stochastic"], ["alpha-dp"], ["lint/obj-magic"] *)
  severity : severity;
  location : location;
  message : string;
  witness : (string * string) list;
      (** named exact values: LHS/RHS of the violated inequality,
          offending entries, slack — all rendered losslessly. *)
}

val error : ?witness:(string * string) list -> rule:string -> location -> string -> t
val warning : ?witness:(string * string) list -> rule:string -> location -> string -> t

val rats : (string * Rat.t) list -> (string * string) list
(** Witness builder: exact rationals rendered as ["p/q"]. *)

val location_to_json : location -> Json.t
val to_json : t -> Json.t
val pp : Format.formatter -> t -> unit
(** One-line human rendering: [rule @ location: message [witness]]. *)
