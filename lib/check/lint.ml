(* Source lint; see lint.mli.

   All pattern scans run over a stripped copy of the source in which
   comments and string literals are blanked out (newlines preserved),
   so the scanner never fires on documentation or message text. *)

module D = Diagnostic

(* ------------------------------------------------------------------ *)
(* Comment / string stripping                                          *)
(* ------------------------------------------------------------------ *)

let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  (* depth > 0 means inside a comment; OCaml comments nest, and string
     literals inside comments still protect a closing "*)". *)
  let depth = ref 0 in
  let in_string = ref false in
  while !i < n do
    let c = src.[!i] in
    if !in_string then begin
      blank !i;
      if c = '\\' && !i + 1 < n then begin
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        if c = '"' then in_string := false;
        incr i
      end
    end
    else if !depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else if c = '"' then begin
        blank !i;
        in_string := true;
        incr i
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      in_string := true;
      incr i
    end
    else if c = '\'' then begin
      (* Character literal vs type variable: ['x'] and ['\n'] are
         literals (blank their bodies -- they may contain quotes or
         parens); ['a] is a type variable (leave it). *)
      if !i + 2 < n && src.[!i + 1] = '\\' then begin
        (* escaped char: '\x' or '\ddd' or '\xhh' *)
        let j = ref (!i + 2) in
        while !j < n && src.[!j] <> '\'' && !j - !i <= 5 do
          incr j
        done;
        if !j < n && src.[!j] = '\'' then begin
          for k = !i to !j do
            blank k
          done;
          i := !j + 1
        end
        else incr i
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then begin
        blank !i;
        blank (!i + 1);
        blank (!i + 2);
        i := !i + 3
      end
      else incr i
    end
    else incr i
  done;
  Bytes.to_string out

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let line_of_offset src off =
  let line = ref 1 in
  for k = 0 to Stdlib.min off (String.length src - 1) - 1 do
    if src.[k] = '\n' then incr line
  done;
  !line

let line_start src off =
  let k = ref off in
  while !k > 0 && src.[!k - 1] <> '\n' do
    decr k
  done;
  !k

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let is_word_at src off word =
  let lw = String.length word in
  off + lw <= String.length src
  && String.sub src off lw = word
  && (off = 0 || not (is_ident_char src.[off - 1]))
  && (off + lw = String.length src || not (is_ident_char src.[off + lw]))

(* All offsets where [word] occurs as a standalone identifier. *)
let word_occurrences src word =
  let out = ref [] in
  let lw = String.length word in
  let i = ref 0 in
  let n = String.length src in
  while !i + lw <= n do
    if src.[!i] = word.[0] && is_word_at src !i word then out := !i :: !out;
    incr i
  done;
  List.rev !out

let skip_ws src i =
  let n = String.length src in
  let k = ref i in
  while !k < n && (src.[!k] = ' ' || src.[!k] = '\t' || src.[!k] = '\n' || src.[!k] = '\r') do
    incr k
  done;
  !k

(* ------------------------------------------------------------------ *)
(* Rule: Obj.magic                                                     *)
(* ------------------------------------------------------------------ *)

(* The dot is not an identifier character, so scan for the standalone
   word "Obj" and check the ".magic" suffix by hand. *)
let scan_obj_magic ~file stripped =
  List.filter_map
    (fun off ->
      let after_dot = off + 4 in
      if
        off + 3 < String.length stripped
        && stripped.[off + 3] = '.'
        && is_word_at stripped after_dot "magic"
      then
        Some
          (D.error ~rule:"lint/obj-magic"
             (D.Source_line { file; line = line_of_offset stripped off })
             "Obj.magic defeats the type system and every exactness invariant")
      else None)
    (word_occurrences stripped "Obj")

(* ------------------------------------------------------------------ *)
(* Rule: bare [try ... with _ ->]                                      *)
(* ------------------------------------------------------------------ *)

(* Nearest standalone [try] / [match] / [function] before [off]; a
   catch-all arm is only a problem on a [try]. *)
let governing_keyword stripped off =
  let prefix = String.sub stripped 0 off in
  let best = ref None in
  List.iter
    (fun word ->
      List.iter
        (fun o ->
          match !best with
          | Some (bo, _) when bo >= o -> ()
          | _ -> best := Some (o, word))
        (word_occurrences prefix word))
    [ "try"; "match"; "function" ];
  Option.map snd !best

let scan_catch_all ~file stripped =
  List.filter_map
    (fun off ->
      let k = skip_ws stripped (off + 4) in
      let n = String.length stripped in
      if
        k < n
        && stripped.[k] = '_'
        && (k + 1 >= n || not (is_ident_char stripped.[k + 1]))
      then begin
        let k2 = skip_ws stripped (k + 1) in
        if k2 + 1 < n && stripped.[k2] = '-' && stripped.[k2 + 1] = '>' then
          match governing_keyword stripped off with
          | Some "try" ->
            Some
              (D.error ~rule:"lint/catch-all"
                 (D.Source_line { file; line = line_of_offset stripped off })
                 "bare `with _ ->` swallows every exception, including arithmetic errors; \
                  match specific exceptions or return a Result")
          | _ -> None
        else None
      end
      else None)
    (word_occurrences stripped "with")

(* ------------------------------------------------------------------ *)
(* Rule: float-literal [=] / [<>] comparison                           *)
(* ------------------------------------------------------------------ *)

let operator_chars = "=<>!&|:@^+-*/$%.~?"

let is_op_char c = String.contains operator_chars c

(* Token immediately right of [i] (after spaces): is it a float
   literal like 1.0, 0., 1e-9, -3.25? *)
let float_literal_right stripped i =
  let n = String.length stripped in
  let k = ref (skip_ws stripped i) in
  if !k < n && stripped.[!k] = '-' then k := skip_ws stripped (!k + 1);
  let start = !k in
  while !k < n && ((stripped.[!k] >= '0' && stripped.[!k] <= '9') || stripped.[!k] = '_') do
    incr k
  done;
  if !k = start then false
  else if !k < n && stripped.[!k] = '.' then true
  else if !k < n && (stripped.[!k] = 'e' || stripped.[!k] = 'E') then true
  else false

(* Token immediately left of [i] (before spaces): a float literal? *)
let float_literal_left stripped i =
  let k = ref (i - 1) in
  while !k >= 0 && (stripped.[!k] = ' ' || stripped.[!k] = '\t') do
    decr k
  done;
  if !k < 0 then false
  else begin
    let last = !k in
    (* Walk the candidate literal backwards: digits, '.', '_', e/E/+/-. *)
    let seen_dot = ref false and seen_digit = ref false in
    let fin = ref false in
    while (not !fin) && !k >= 0 do
      let c = stripped.[!k] in
      if c >= '0' && c <= '9' then begin
        seen_digit := true;
        decr k
      end
      else if c = '.' then begin
        seen_dot := true;
        decr k
      end
      else if c = '_' || c = 'e' || c = 'E' then decr k
      else fin := true
    done;
    (* A bare int is not a float; require a dot, and require the token
       to not be an identifier suffix (e.g. [x2.] can't happen). *)
    !seen_digit && !seen_dot && last > !k
    && (!k < 0 || not (is_ident_char stripped.[!k]))
  end

(* Exempt binding positions, where [= 0.5] defines rather than
   compares: the first [=] of a [let]/[and] line, optional-argument
   defaults [?(x = 0.5)], and record-field initializers. A later [=]
   on a [let] line (e.g. [let b = x = 0.5]) is still a comparison and
   still flagged. *)
let binder_exempt stripped i =
  let ls = line_start stripped i in
  let before = String.sub stripped ls (i - ls) in
  let matches re = Str.string_match (Str.regexp re) before 0 in
  let ident = "[a-z_][A-Za-z0-9_']*" in
  matches {|^ *\(let\|and\)\( +rec\)? +[^=]*$|}
  || matches (".*? *( *" ^ ident ^ " *$")
  || matches (".*[{;] *" ^ ident ^ " *$")

let scan_float_eq ~file stripped =
  let n = String.length stripped in
  let out = ref [] in
  for i = 0 to n - 1 do
    let flag op_len =
      let right = float_literal_right stripped (i + op_len) in
      let left = float_literal_left stripped i in
      if (right || left) && not (binder_exempt stripped i) then
        out :=
          D.error ~rule:"lint/float-eq"
            (D.Source_line { file; line = line_of_offset stripped i })
            "float literal compared with polymorphic (in)equality; use exact rationals \
             or an explicit tolerance"
          :: !out
    in
    if stripped.[i] = '=' then begin
      let prev_op = i > 0 && is_op_char stripped.[i - 1] in
      let next_op = i + 1 < n && is_op_char stripped.[i + 1] in
      if (not prev_op) && not next_op then flag 1
    end
    else if
      stripped.[i] = '<'
      && i + 1 < n
      && stripped.[i + 1] = '>'
      && (i = 0 || not (is_op_char stripped.[i - 1]))
      && (i + 2 >= n || not (is_op_char stripped.[i + 2]))
    then flag 2
  done;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Rule: assert false in library code                                  *)
(* ------------------------------------------------------------------ *)

(* [assert false] crashes without a witness. In this repository every
   "impossible" solver outcome has a typed escape
   ([Resilience.Solver_error.fail]), so a bare [assert false] in lib/
   is flagged — unless a sibling comment (the same line or an adjacent
   one, in the ORIGINAL source) states the invariant that makes the arm
   unreachable, which is the sanctioned form for genuinely proven
   dead arms. *)
let scan_assert_false ~file ~original stripped =
  let lines = Array.of_list (String.split_on_char '\n' original) in
  let has_comment l =
    (* [l] is 1-based *)
    l >= 1 && l <= Array.length lines
    &&
    let text = lines.(l - 1) in
    let n = String.length text in
    let found = ref false in
    for k = 0 to n - 2 do
      if text.[k] = '(' && text.[k + 1] = '*' then found := true
    done;
    !found
  in
  List.filter_map
    (fun off ->
      let k = skip_ws stripped (off + 6) in
      if not (is_word_at stripped k "false") then None
      else begin
        let line = line_of_offset stripped off in
        if has_comment (line - 1) || has_comment line || has_comment (line + 1) then None
        else
          Some
            (D.error ~rule:"lint/assert-false"
               (D.Source_line { file; line })
               "assert false crashes without a witness; raise a typed error \
                (e.g. Resilience.Solver_error.fail) or cite the invariant that makes \
                this arm unreachable in a sibling comment")
      end)
    (word_occurrences stripped "assert")

(* ------------------------------------------------------------------ *)
(* Rule: direct stdout printing in library code                        *)
(* ------------------------------------------------------------------ *)

(* Library modules must not write to stdout behind the caller's back:
   report text flows through lib/report's injectable sinks and
   measurements through lib/obs recorders, which is what keeps bench
   output machine-readable. Those two directories are exempt — they
   ARE the sinks. *)
let stdout_fns =
  [ "print_string"; "print_endline"; "print_newline"; "print_int"; "print_char"; "print_float" ]

(* [Module] immediately followed by [.fn] (same trick as Obj.magic:
   the dot is not an identifier character). *)
let module_call_occurrences stripped ~modname ~fn =
  List.filter
    (fun off ->
      let dot = off + String.length modname in
      dot < String.length stripped
      && stripped.[dot] = '.'
      && is_word_at stripped (dot + 1) fn)
    (word_occurrences stripped modname)

let scan_print_stdout ~file stripped =
  let diag off what =
    D.error ~rule:"lint/print-stdout"
      (D.Source_line { file; line = line_of_offset stripped off })
      (what
      ^ " writes to stdout from library code; route output through a lib/report sink or a \
         lib/obs recorder instead")
  in
  let bare =
    List.concat_map
      (fun fn -> List.map (fun off -> diag off fn) (word_occurrences stripped fn))
      stdout_fns
  in
  let printf =
    List.concat_map
      (fun modname ->
        List.map
          (fun off -> diag off (modname ^ ".printf"))
          (module_call_occurrences stripped ~modname ~fn:"printf"))
      [ "Printf"; "Format" ]
  in
  List.sort_uniq compare (bare @ printf)

(* ------------------------------------------------------------------ *)
(* Rule: raw Unix writes outside the framing layer                     *)
(* ------------------------------------------------------------------ *)

(* lib/server/framing.ml is the tree's single point of contact with
   write(2): short writes, EAGAIN, dead peers and the injected
   "server.write" fault are all handled there, once. A raw Unix write
   anywhere else reopens every one of those holes. *)
let unix_write_fns = [ "write"; "single_write"; "write_substring"; "single_write_substring" ]

let scan_unix_write ~file stripped =
  List.concat_map
    (fun fn ->
      List.map
        (fun off ->
          D.error ~rule:"lint/unix-write"
            (D.Source_line { file; line = line_of_offset stripped off })
            ("Unix." ^ fn
            ^ " outside lib/server/framing.ml bypasses the one place that handles short \
               writes, EAGAIN, dead peers and injected write faults; enqueue on a \
               Server.Framing.writer instead"))
        (module_call_occurrences stripped ~modname:"Unix" ~fn))
    unix_write_fns

(* ------------------------------------------------------------------ *)
(* File and tree drivers                                               *)
(* ------------------------------------------------------------------ *)

let scan_source ?(ban_stdout = false) ?(ban_assert = false) ?(ban_unix_write = false) ~file
    src =
  let stripped = strip src in
  scan_obj_magic ~file stripped
  @ scan_catch_all ~file stripped
  @ scan_float_eq ~file stripped
  @ (if ban_stdout then scan_print_stdout ~file stripped else [])
  @ (if ban_unix_write then scan_unix_write ~file stripped else [])
  @ (if ban_assert then scan_assert_false ~file ~original:src stripped else [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let scan_file ?ban_stdout ?ban_assert ?ban_unix_write path =
  scan_source ?ban_stdout ?ban_assert ?ban_unix_write ~file:path (read_file path)

(* The sink directories themselves may print. *)
let stdout_exempt path =
  List.exists
    (fun component -> component = "report" || component = "obs")
    (String.split_on_char '/' path)

(* The framing layer itself is where the raw writes live. *)
let unix_write_exempt path =
  Filename.basename path = "framing.ml"
  && List.exists (fun component -> component = "server") (String.split_on_char '/' path)

let rec walk dir acc =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_') then acc
        else if Sys.is_directory path then walk path acc
        else path :: acc)
      acc entries
  | exception Sys_error _ -> acc

let scan_tree ?(require_mli = false) ?(ban_stdout = false) ?(ban_assert = false)
    ?(ban_unix_write = false) root =
  if not (Sys.file_exists root && Sys.is_directory root) then
    [ D.error ~rule:"lint/missing-dir"
        (D.Source_line { file = root; line = 0 })
        "directory does not exist" ]
  else begin
    let files = List.rev (walk root []) in
    let mls = List.filter (fun f -> Filename.check_suffix f ".ml") files in
    let pattern_diags =
      List.concat_map
        (fun ml ->
          scan_file
            ~ban_stdout:(ban_stdout && not (stdout_exempt ml))
            ~ban_assert
            ~ban_unix_write:(ban_unix_write && not (unix_write_exempt ml))
            ml)
        mls
    in
    let mli_diags =
      if not require_mli then []
      else
        List.filter_map
          (fun ml ->
            let mli = ml ^ "i" in
            if Sys.file_exists mli then None
            else
              Some
                (D.error ~rule:"lint/missing-mli"
                   (D.Source_line { file = ml; line = 1 })
                   "library module has no .mli: its invariants are unpublished and \
                    everything is exported"))
          mls
    in
    pattern_diags @ mli_diags
  end

let scan_roots roots =
  List.concat_map
    (fun root ->
      let is_lib = Filename.basename root = "lib" in
      scan_tree ~require_mli:is_lib ~ban_stdout:is_lib ~ban_assert:is_lib
        ~ban_unix_write:true root)
    roots
