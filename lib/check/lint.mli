(** Source lint: the textual half of [dplint].

    Scans OCaml sources for patterns that undermine the repository's
    exactness guarantees, after stripping comments and string literals
    (so documentation cannot trip the scanner):

    - [lint/obj-magic] — any use of [Obj.magic];
    - [lint/catch-all] — a bare [try … with _ ->] handler, which
      silently swallows arithmetic errors ([match … with _ ->] is
      fine and not flagged);
    - [lint/float-eq] — [=] / [<>] comparison against a float
      literal: exactness bugs hide behind such comparisons
      (let-bindings, record fields, and optional-argument defaults
      are recognized and exempt);
    - [lint/missing-mli] — a [lib/] module without an interface file,
      leaving its invariants unpublished.

    The scanner is line-accurate: every finding is a
    {!Diagnostic.t} with a [Source_line] location. *)

val strip : string -> string
(** Replace (possibly nested) comments and string literals with
    spaces, preserving every newline so offsets keep their line
    numbers. Exposed for tests. *)

val scan_source : file:string -> string -> Diagnostic.t list
(** Scan file contents (already read) for the banned patterns. *)

val scan_file : string -> Diagnostic.t list
(** Read and {!scan_source} one [.ml] file. *)

val scan_tree : ?require_mli:bool -> string -> Diagnostic.t list
(** Walk a directory (skipping [_build] and dot-directories), scanning
    every [.ml]. With [require_mli] (default false), also demand a
    sibling [.mli] for every [.ml]. *)

val scan_roots : string list -> Diagnostic.t list
(** Scan several roots; a root whose basename is ["lib"] gets
    [require_mli:true] automatically. *)
