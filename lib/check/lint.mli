(** Source lint: the textual half of [dplint].

    Scans OCaml sources for patterns that undermine the repository's
    exactness guarantees, after stripping comments and string literals
    (so documentation cannot trip the scanner):

    - [lint/obj-magic] — any use of [Obj.magic];
    - [lint/catch-all] — a bare [try … with _ ->] handler, which
      silently swallows arithmetic errors ([match … with _ ->] is
      fine and not flagged);
    - [lint/float-eq] — [=] / [<>] comparison against a float
      literal: exactness bugs hide behind such comparisons
      (let-bindings, record fields, and optional-argument defaults
      are recognized and exempt);
    - [lint/missing-mli] — a [lib/] module without an interface file,
      leaving its invariants unpublished;
    - [lint/assert-false] — [assert false] in library code, which
      crashes without a witness; a typed error
      ([Resilience.Solver_error.fail]) carries one, and genuinely
      unreachable arms are exempt when a sibling comment (same or
      adjacent line, in the un-stripped source) cites the invariant;
    - [lint/print-stdout] — direct stdout printing ([print_string],
      [print_endline], …, [Printf.printf], [Format.printf]) in library
      code, which bypasses the injectable sinks of [lib/report] and the
      recorders of [lib/obs] (those two directories are exempt — they
      are the sinks);
    - [lint/unix-write] — a raw [Unix.write] /
      [Unix.single_write] / [..._substring] anywhere outside
      [lib/server/framing.ml], the one module that handles short
      writes, [EAGAIN], dead peers and the injected ["server.write"]
      fault for the whole tree.

    The scanner is line-accurate: every finding is a
    {!Diagnostic.t} with a [Source_line] location. *)

val strip : string -> string
(** Replace (possibly nested) comments and string literals with
    spaces, preserving every newline so offsets keep their line
    numbers. Exposed for tests. *)

val scan_source :
  ?ban_stdout:bool ->
  ?ban_assert:bool ->
  ?ban_unix_write:bool ->
  file:string ->
  string ->
  Diagnostic.t list
(** Scan file contents (already read) for the banned patterns. With
    [ban_stdout] (default false), also flag direct stdout printing;
    with [ban_assert] (default false), also flag undocumented
    [assert false]; with [ban_unix_write] (default false), also flag
    raw [Unix] writes. *)

val scan_file :
  ?ban_stdout:bool -> ?ban_assert:bool -> ?ban_unix_write:bool -> string -> Diagnostic.t list
(** Read and {!scan_source} one [.ml] file. *)

val scan_tree :
  ?require_mli:bool ->
  ?ban_stdout:bool ->
  ?ban_assert:bool ->
  ?ban_unix_write:bool ->
  string ->
  Diagnostic.t list
(** Walk a directory (skipping [_build] and dot-directories), scanning
    every [.ml]. With [require_mli] (default false), also demand a
    sibling [.mli] for every [.ml]. With [ban_stdout] (default false),
    flag direct stdout printing — except under [report/] and [obs/]
    path components, which host the sanctioned sinks. With
    [ban_assert] (default false), flag undocumented [assert false].
    With [ban_unix_write] (default false), flag raw [Unix] writes —
    except in [framing.ml] under a [server/] path component, which is
    the sanctioned write path. *)

val scan_roots : string list -> Diagnostic.t list
(** Scan several roots; a root whose basename is ["lib"] gets
    [require_mli:true], [ban_stdout:true] and [ban_assert:true]
    automatically, and every root gets [ban_unix_write:true]. *)
