(* Serving requests and canonical cache keys; see request.mli. *)

type loss_spec =
  | Absolute
  | Squared
  | Zero_one
  | Deadzone of int
  | Capped of int
  | Asymmetric of Rat.t * Rat.t

type side_spec =
  | Full
  | At_least of int
  | At_most of int
  | Interval of int * int
  | Members of int list

type t = {
  n : int;
  alpha : Rat.t;
  loss : loss_spec;
  side : side_spec;
  input : int;
  count : int;
}

let loss_spec_to_string = function
  | Absolute -> "absolute"
  | Squared -> "squared"
  | Zero_one -> "zero-one"
  | Deadzone w -> Printf.sprintf "deadzone:%d" w
  | Capped c -> Printf.sprintf "capped:%d" c
  | Asymmetric (o, u) -> Printf.sprintf "asym:%s,%s" (Rat.to_string o) (Rat.to_string u)

let side_spec_to_string = function
  | Full -> "full"
  | At_least k -> Printf.sprintf ">=%d" k
  | At_most k -> Printf.sprintf "<=%d" k
  | Interval (lo, hi) -> Printf.sprintf "%d-%d" lo hi
  | Members ms -> String.concat "," (List.map string_of_int ms)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let validate_loss = function
  | Absolute | Squared | Zero_one -> None
  | Deadzone w when w < 0 -> Some "deadzone width must be non-negative"
  | Capped c when c < 1 -> Some "capped cap must be >= 1"
  | Asymmetric (o, u) when Rat.sign o <= 0 || Rat.sign u <= 0 ->
    Some "asymmetric costs must be positive"
  | Deadzone _ | Capped _ | Asymmetric _ -> None

let validate_side ~n = function
  | Full -> None
  | At_least k | At_most k ->
    if k < 0 || k > n then Some (Printf.sprintf "side bound %d out of {0..%d}" k n) else None
  | Interval (lo, hi) ->
    if lo < 0 || hi > n || lo > hi then
      Some (Printf.sprintf "side interval %d-%d not within {0..%d}" lo hi n)
    else None
  | Members [] -> Some "side member list is empty"
  | Members ms ->
    List.find_map
      (fun m ->
        if m < 0 || m > n then Some (Printf.sprintf "side member %d out of {0..%d}" m n)
        else None)
      ms

let make ?(input = 0) ?(count = 1) ~n ~alpha ~loss ~side () =
  if n < 1 then Error "n must be >= 1"
  else if Rat.sign alpha <= 0 || Rat.compare alpha Rat.one >= 0 then
    Error "alpha must lie strictly between 0 and 1"
  else if input < 0 || input > n then Error (Printf.sprintf "input %d out of {0..%d}" input n)
  else if count < 1 then Error "count must be >= 1"
  else
    match validate_loss loss with
    | Some m -> Error m
    | None -> (
      match validate_side ~n side with
      | Some m -> Error m
      | None -> Ok { n; alpha; loss; side; input; count })

(* ------------------------------------------------------------------ *)
(* Canonicalization                                                    *)
(* ------------------------------------------------------------------ *)

(* Side information reduced to its member set over {0..n}. *)
let side_members ~n = function
  | Full -> List.init (n + 1) Fun.id
  | At_least k -> List.init (n - k + 1) (fun i -> k + i)
  | At_most k -> List.init (k + 1) Fun.id
  | Interval (lo, hi) -> List.init (hi - lo + 1) (fun i -> lo + i)
  | Members ms -> List.sort_uniq compare ms

(* Losses that are equal as functions on {0..n}² key identically:
   deadzone:0 is |i−r|; capped:c with c >= n never saturates because
   |i−r| <= n; asym:1,1 charges one per unit on both sides. *)
let canonical_loss ~n = function
  | Deadzone 0 -> Absolute
  | Capped c when c >= n -> Absolute
  | Asymmetric (o, u) when Rat.is_one o && Rat.is_one u -> Absolute
  | l -> l

let canonical_key t =
  let members = side_members ~n:t.n t.side in
  let side =
    if List.length members = t.n + 1 then "full"
    else String.concat "," (List.map string_of_int members)
  in
  Printf.sprintf "n=%d;a=%s;l=%s;s=%s" t.n (Rat.to_string t.alpha)
    (loss_spec_to_string (canonical_loss ~n:t.n t.loss))
    side

(* ------------------------------------------------------------------ *)
(* Consumer construction                                               *)
(* ------------------------------------------------------------------ *)

let loss_fn t =
  let module L = Minimax.Loss in
  match t.loss with
  | Absolute -> L.absolute
  | Squared -> L.squared
  | Zero_one -> L.zero_one
  | Deadzone w -> L.deadzone ~width:w
  | Capped c -> L.capped ~cap:c
  | Asymmetric (o, u) -> L.asymmetric ~over:o ~under:u

let side_info t =
  let module S = Minimax.Side_info in
  match t.side with
  | Full -> S.full t.n
  | At_least k -> S.at_least ~n:t.n k
  | At_most k -> S.at_most ~n:t.n k
  | Interval (lo, hi) -> S.interval ~n:t.n lo hi
  | Members ms -> S.make ~n:t.n ms

let consumer t = Minimax.Consumer.make ~loss:(loss_fn t) ~side_info:(side_info t) ()

(* ------------------------------------------------------------------ *)
(* Line grammar (wire protocol v1; see PROTOCOL.md)                    *)
(* ------------------------------------------------------------------ *)

let version = 1

type wire = { id : string option; seed : int option; request : t }

type session_verb =
  | Subscribe of {
      sub : string;
      n : int;
      input : int;
      level : Rat.t;
      budget : Rat.t option;
    }
  | Release of { n : int; input : int }
  | Unsubscribe of { sub : string; n : int; input : int }
  | Ledger of { sub : string; n : int; input : int }

type parsed =
  | Query of wire
  | Stats of { id : string option }
  | Session of { id : string option; verb : session_verb }

type wire_error =
  | Unsupported_version of { got : string option }
  | Unknown_key of { key : string }
  | Malformed of { msg : string }
  | Invalid of { msg : string }

let wire_error_kind = function
  | Unsupported_version _ -> "unsupported_version"
  | Unknown_key _ -> "unknown_key"
  | Malformed _ -> "malformed"
  | Invalid _ -> "invalid"

let wire_error_to_string = function
  | Unsupported_version { got = None } ->
    Printf.sprintf "missing protocol version (every request line starts with v=%d)" version
  | Unsupported_version { got = Some v } ->
    Printf.sprintf "unsupported protocol version %S (this server speaks v=%d)" v version
  | Unknown_key { key } ->
    Printf.sprintf
      "unknown key %S (v=%d knows v, op, id, seed, n, alpha, loss, side, input, count, sub, \
       budget)"
      key version
  | Malformed { msg } -> msg
  | Invalid { msg } -> msg

let parse_loss s =
  match String.split_on_char ':' s with
  | [ "absolute" ] | [ "abs" ] -> Ok Absolute
  | [ "squared" ] | [ "sq" ] -> Ok Squared
  | [ "zero-one" ] | [ "01" ] -> Ok Zero_one
  | [ "deadzone"; w ] -> (
    match int_of_string_opt w with
    | Some w -> Ok (Deadzone w)
    | None -> Error "deadzone:<width> needs an integer")
  | [ "capped"; c ] -> (
    match int_of_string_opt c with
    | Some c -> Ok (Capped c)
    | None -> Error "capped:<cap> needs an integer")
  | [ "asym"; ou ] -> (
    match String.split_on_char ',' ou with
    | [ o; u ] -> (
      match (Rat.of_string_opt o, Rat.of_string_opt u) with
      | Some over, Some under -> Ok (Asymmetric (over, under))
      | _ -> Error "asym:<over>,<under> needs two rationals")
    | _ -> Error "asym:<over>,<under>")
  | _ ->
    Error
      (Printf.sprintf
         "unknown loss %S (absolute | squared | zero-one | deadzone:<w> | capped:<c> | \
          asym:<over>,<under>)"
         s)

let parse_side s =
  let prefixed p = String.length s > 2 && String.sub s 0 2 = p in
  let tail () = String.sub s 2 (String.length s - 2) in
  if s = "full" then Ok Full
  else if prefixed ">=" then
    match int_of_string_opt (tail ()) with
    | Some k -> Ok (At_least k)
    | None -> Error ">=k needs an integer"
  else if prefixed "<=" then
    match int_of_string_opt (tail ()) with
    | Some k -> Ok (At_most k)
    | None -> Error "<=k needs an integer"
  else if String.contains s '-' then
    match String.split_on_char '-' s with
    | [ lo; hi ] -> (
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi -> Ok (Interval (lo, hi))
      | _ -> Error "range must be lo-hi with integers")
    | _ -> Error "range must be lo-hi"
  else
    let members = List.map int_of_string_opt (String.split_on_char ',' s) in
    if List.for_all Option.is_some members then
      Ok (Members (List.filter_map Fun.id members))
    else Error (Printf.sprintf "cannot parse side information %S" s)

let known_keys =
  [ "v"; "op"; "id"; "seed"; "n"; "alpha"; "loss"; "side"; "input"; "count"; "sub"; "budget" ]

let valid_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '.' || c = ':')
       s

let of_line line =
  let fields =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let split field =
    match String.index_opt field '=' with
    | None -> Error (Malformed { msg = Printf.sprintf "expected key=value, got %S" field })
    | Some i ->
      Ok (String.sub field 0 i, String.sub field (i + 1) (String.length field - i - 1))
  in
  let rec pairs acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest -> ( match split f with Error e -> Error e | Ok kv -> pairs (kv :: acc) rest)
  in
  match pairs [] fields with
  | Error e -> Error e
  | Ok [] -> Error (Malformed { msg = "empty request line" })
  | Ok ((k0, v0) :: rest) -> (
    if k0 <> "v" then Error (Unsupported_version { got = None })
    else if v0 <> string_of_int version then Error (Unsupported_version { got = Some v0 })
    else
      (* Unknown keys are typed rejections, never silent drops: a v=2
         client talking to a v=1 server hears about it immediately. *)
      match List.find_opt (fun (k, _) -> not (List.mem k known_keys)) rest with
      | Some (k, _) -> Error (Unknown_key { key = k })
      | None -> (
        let all = ("v", v0) :: rest in
        let dup =
          List.find_opt
            (fun (k, _) -> List.length (List.filter (fun (k', _) -> k' = k) all) > 1)
            all
        in
        match dup with
        | Some (k, _) -> Error (Malformed { msg = Printf.sprintf "duplicate key %S" k })
        | None -> (
          let find k = List.assoc_opt k rest in
          let int_field k =
            match find k with
            | None -> Ok None
            | Some v -> (
              match int_of_string_opt v with
              | Some i -> Ok (Some i)
              | None -> Error (Invalid { msg = Printf.sprintf "%s=%S is not an integer" k v }))
          in
          let id =
            match find "id" with
            | None -> Ok None
            | Some s ->
              if valid_id s then Ok (Some s)
              else
                Error
                  (Malformed
                     { msg = Printf.sprintf "id %S must be 1-64 chars of [A-Za-z0-9._:-]" s })
          in
          match find "op" with
          | Some "stats" -> (
            (* The admin verb: a stats line names no consumer, so any
               query field alongside it is a typed rejection. *)
            match List.find_opt (fun (k, _) -> k <> "op" && k <> "id") rest with
            | Some (k, _) ->
              Error (Invalid { msg = Printf.sprintf "op=stats takes no %s= (only id=)" k })
            | None -> ( match id with Error e -> Error e | Ok id -> Ok (Stats { id })))
          | Some (("subscribe" | "release" | "unsubscribe" | "ledger") as op) -> (
            (* Session verbs validate against their own allowed-key
               sets, like op=stats: a stray query field is a typed
               rejection, never a silent drop. *)
            let allowed =
              match op with
              | "subscribe" -> [ "op"; "id"; "sub"; "n"; "input"; "alpha"; "budget" ]
              | "release" -> [ "op"; "id"; "n"; "input" ]
              | _ -> [ "op"; "id"; "sub"; "n"; "input" ]
            in
            match List.find_opt (fun (k, _) -> not (List.mem k allowed)) rest with
            | Some (k, _) ->
              Error (Invalid { msg = Printf.sprintf "op=%s takes no %s=" op k })
            | None -> (
              let required_int k =
                match int_field k with
                | Error e -> Error e
                | Ok None -> Error (Invalid { msg = Printf.sprintf "op=%s needs %s=" op k })
                | Ok (Some v) -> Ok v
              in
              let required_sub () =
                match find "sub" with
                | None -> Error (Invalid { msg = Printf.sprintf "op=%s needs sub=" op })
                | Some s ->
                  if valid_id s then Ok s
                  else
                    Error
                      (Malformed
                         {
                           msg =
                             Printf.sprintf "sub %S must be 1-64 chars of [A-Za-z0-9._:-]" s;
                         })
              in
              match (id, required_int "n", required_int "input") with
              | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e
              | Ok id, Ok n, Ok input -> (
                match op with
                | "release" -> Ok (Session { id; verb = Release { n; input } })
                | "unsubscribe" -> (
                  match required_sub () with
                  | Error e -> Error e
                  | Ok sub -> Ok (Session { id; verb = Unsubscribe { sub; n; input } }))
                | "ledger" -> (
                  match required_sub () with
                  | Error e -> Error e
                  | Ok sub -> Ok (Session { id; verb = Ledger { sub; n; input } }))
                | _ -> (
                  match required_sub () with
                  | Error e -> Error e
                  | Ok sub -> (
                    match find "alpha" with
                    | None -> Error (Invalid { msg = "op=subscribe needs alpha=" })
                    | Some a -> (
                      match Rat.of_string_opt a with
                      | None ->
                        Error
                          (Invalid { msg = "alpha= is not a rational (use p/q or decimals)" })
                      | Some level -> (
                        match find "budget" with
                        | None ->
                          Ok
                            (Session
                               { id; verb = Subscribe { sub; n; input; level; budget = None } })
                        | Some b -> (
                          match Rat.of_string_opt b with
                          | None ->
                            Error
                              (Invalid
                                 { msg = "budget= is not a rational (use p/q or decimals)" })
                          | Some budget ->
                            Ok
                              (Session
                                 {
                                   id;
                                   verb =
                                     Subscribe { sub; n; input; level; budget = Some budget };
                                 })))))))))
          | Some op ->
            Error
              (Invalid
                 {
                   msg =
                     Printf.sprintf
                       "unknown op %S (this server knows op=stats, subscribe, release, \
                        unsubscribe, ledger)"
                       op;
                 })
          | None -> (
          match List.find_opt (fun (k, _) -> k = "sub" || k = "budget") rest with
          | Some (k, _) ->
            Error
              (Invalid
                 { msg = Printf.sprintf "%s= belongs to session verbs (op=subscribe, ...)" k })
          | None -> (
          match (id, int_field "seed", int_field "n", int_field "input", int_field "count") with
          | Error e, _, _, _, _
          | _, Error e, _, _, _
          | _, _, Error e, _, _
          | _, _, _, Error e, _
          | _, _, _, _, Error e -> Error e
          | Ok id, Ok seed, Ok n, Ok input, Ok count -> (
            match n with
            | None -> Error (Invalid { msg = "missing field n=" })
            | Some n -> (
              match Option.map Rat.of_string_opt (find "alpha") with
              | None -> Error (Invalid { msg = "missing field alpha=" })
              | Some None ->
                Error (Invalid { msg = "alpha= is not a rational (use p/q or decimals)" })
              | Some (Some alpha) -> (
                let loss =
                  match find "loss" with None -> Ok Absolute | Some s -> parse_loss s
                in
                let side =
                  match find "side" with None -> Ok Full | Some s -> parse_side s
                in
                match (loss, side) with
                | Error m, _ | _, Error m -> Error (Invalid { msg = m })
                | Ok loss, Ok side -> (
                  match make ?input ?count ~n ~alpha ~loss ~side () with
                  | Ok request -> Ok (Query { id; seed; request })
                  | Error m -> Error (Invalid { msg = m }))))))))))

let to_line ?id ?seed t =
  Printf.sprintf "v=%d%s%s n=%d alpha=%s loss=%s side=%s input=%d count=%d" version
    (match id with None -> "" | Some i -> " id=" ^ i)
    (match seed with None -> "" | Some s -> Printf.sprintf " seed=%d" s)
    t.n (Rat.to_string t.alpha) (loss_spec_to_string t.loss) (side_spec_to_string t.side)
    t.input t.count

let session_to_line ?id verb =
  let tag = match id with None -> "" | Some i -> " id=" ^ i in
  match verb with
  | Subscribe { sub; n; input; level; budget } ->
    Printf.sprintf "v=%d op=subscribe%s sub=%s n=%d input=%d alpha=%s%s" version tag sub n
      input (Rat.to_string level)
      (match budget with None -> "" | Some b -> " budget=" ^ Rat.to_string b)
  | Release { n; input } -> Printf.sprintf "v=%d op=release%s n=%d input=%d" version tag n input
  | Unsubscribe { sub; n; input } ->
    Printf.sprintf "v=%d op=unsubscribe%s sub=%s n=%d input=%d" version tag sub n input
  | Ledger { sub; n; input } ->
    Printf.sprintf "v=%d op=ledger%s sub=%s n=%d input=%d" version tag sub n input

let loss_spec_of_string = parse_loss
let side_spec_of_string = parse_side
