(* The serving engine; see engine.mli. *)

module Request = Request
module Cache = Cache
module Compiled = Compiled
module Pool = Pool
module Seeder = Seeder

(* The optional second cache tier (a disk artifact store, in
   practice). Both callbacks are contractually total: a probe that
   cannot produce a verified artifact answers None and a store that
   cannot persist swallows the failure, so tier trouble can slow a
   request down but never fail it. *)
type tier = {
  probe : Request.t -> Compiled.t option;
  store : Compiled.t -> unit;
}

type t = {
  pool : Pool.t;
  cache : Compiled.t Cache.t;
  budget : (unit -> Lp.Budget.t) option;
  tier : tier option;
  mutable closed : bool;
}

let create ?domains ?(cache_capacity = 64) ?budget ?tier () =
  let domains =
    match domains with Some d -> d | None -> Pool.recommended_domains ()
  in
  {
    pool = Pool.create ~domains;
    cache = Cache.create ~capacity:cache_capacity;
    budget;
    tier;
    closed = false;
  }

let domains t = Pool.domains t.pool
let cache_stats t = Cache.stats t.cache
let cached_keys t = Cache.keys t.cache

type response = {
  request : Request.t;
  key : string;
  samples : int array;
  rung : Minimax.Serve.rung;
  loss : Rat.t;
  provenance : Minimax.Serve.provenance;
  cache_hit : bool;
  store_hit : bool;
  cache_bypassed : bool;
}

(* Compile-or-fetch for one request, on the coordinator domain. A
   tripped "engine.cache" site degrades to a cacheless compile: the
   request is still served, the cache is never touched mid-fault (so a
   trip cannot corrupt or partially populate it), and the bypass is
   counted. A memory miss probes the second tier (when one is wired)
   before compiling, and a fresh compile is offered back to it; the
   tier's contract makes both calls total, so store trouble degrades
   to exactly the storeless path. *)
let resolve ?budget t (req : Request.t) =
  let key = Request.canonical_key req in
  let compile () =
    let budget =
      match budget with Some _ -> budget | None -> Option.map (fun mk -> mk ()) t.budget
    in
    Compiled.compile ?budget ~alpha:req.Request.alpha ~key (Request.consumer req)
  in
  let bypass =
    match Resilience.Fault.trip "engine.cache" with
    | () -> false
    | exception Resilience.Fault.Injected { site = "engine.cache"; _ } -> true
  in
  if bypass then begin
    Obs.incr "engine.cache.bypassed";
    (compile (), false, false, true)
  end
  else
    match Cache.find t.cache key with
    | Some c -> (c, true, false, false)
    | None ->
      let c, store_hit =
        match t.tier with
        | None -> (compile (), false)
        | Some tier -> (
          match tier.probe req with
          | Some c -> (c, true)
          | None ->
            let c = compile () in
            tier.store c;
            (c, false))
      in
      Cache.add t.cache key c;
      (c, false, store_hit, false)

type job = {
  request : Request.t;
  stream : Prob.Rng.t;
  budget : Lp.Budget.t option;
  trace : Obs.Trace.t option;
}

(* Run [f] under the job's trace context, parented to the request's
   admission span (when the server opened one) so compile and sample
   spans hang off one tree. *)
let with_job_trace j f =
  match j.trace with
  | None -> f ()
  | Some tr ->
    let parent = if Obs.Trace.started tr then Obs.Trace.root else 0 in
    Obs.with_trace ~parent tr f

type job_error = Uncertified of { key : string; rule : string }

let job_error_to_string = function
  | Uncertified { key; rule } ->
    Printf.sprintf "release for %s failed certification (%s)" key rule

let run_jobs t (jobs : job array) =
  if t.closed then invalid_arg "Engine.run_jobs: engine is shut down";
  let len = Array.length jobs in
  let total_samples =
    Array.fold_left (fun acc j -> acc + j.request.Request.count) 0 jobs
  in
  Obs.span
    ~attrs:[ ("requests", Obs.Int len); ("samples", Obs.Int total_samples) ]
    "engine.batch"
  @@ fun () ->
  let batch_t0 = Obs.now_ns () in
  Obs.incr ~by:len "engine.requests";
  (* Phase 1 (coordinator): every distinct consumer compiled at most
     once, in job order. A failed certification poisons only its own
     job — the rest of the batch still serves. *)
  let resolved =
    Array.map
      (fun j ->
        with_job_trace j @@ fun () ->
        match resolve ?budget:j.budget t j.request with
        | r -> Ok r
        | exception Compiled.Uncertified { key; rule } -> Error (Uncertified { key; rule })
        | exception Minimax.Serve.Certification_failed { rung; rule } ->
          Error
            (Uncertified
               { key = Request.canonical_key j.request; rule = rung ^ "." ^ rule }))
      jobs
  in
  (* Phase 2 (pool): each job samples from its caller-provided stream,
     so results cannot depend on which worker runs which job, or on how
     many workers exist. The pristine copies feed deterministic inline
     retries after worker faults. *)
  let pristine = Array.map (fun j -> Prob.Rng.copy j.stream) jobs in
  let results = Array.make len [||] in
  let sample_into rng i =
    match resolved.(i) with
    | Error _ -> ()
    | Ok (c, _, _, _) ->
      let req = jobs.(i).request in
      results.(i) <-
        Compiled.draws c.Compiled.sampler ~input:req.Request.input ~count:req.Request.count rng
  in
  (* The per-job sample span: traced to the request that pays for it
     and tagged with where the artifact came from and what its compile
     cost — the attribution the telemetry plane promises. Attr
     construction is behind [enabled] so the disabled serve path stays
     a ref read per entry point. *)
  let sample_attrs i =
    match resolved.(i) with
    | Error _ -> []
    | Ok ((c : Compiled.t), cache_hit, _, _) ->
      let prov = c.Compiled.served.Minimax.Serve.provenance in
      [
        ("cache_hit", Obs.Bool cache_hit);
        ("rung", Obs.Str (Minimax.Serve.rung_to_string (Compiled.rung c)));
        ("pivots_spent", Obs.Int prov.Minimax.Serve.pivots_spent);
        ("count", Obs.Int jobs.(i).request.Request.count);
      ]
  in
  let job i =
    match resolved.(i) with
    | Error _ -> ()
    | Ok _ ->
      let run () =
        Resilience.Fault.trip "engine.worker";
        sample_into jobs.(i).stream i
      in
      if Obs.enabled () then
        with_job_trace jobs.(i) (fun () ->
            Obs.span ~attrs:(sample_attrs i) "engine.sample" run)
      else run ()
  in
  let failures = Pool.run t.pool ~jobs:job ~count:len in
  List.iter
    (fun (i, e) ->
      match e with
      | Resilience.Fault.Injected { site = "engine.worker"; _ } ->
        (* The job never touched its stream (the trip precedes the
           first draw), so replaying from the pristine copy is
           byte-identical to what the worker would have produced. *)
        Obs.incr "engine.worker.retries";
        if Obs.enabled () then
          with_job_trace jobs.(i) (fun () ->
              Obs.span
                ~attrs:(("retry", Obs.Bool true) :: sample_attrs i)
                "engine.sample" (fun () -> sample_into pristine.(i) i))
        else sample_into pristine.(i) i
      | e -> raise e)
    failures;
  let served_samples =
    Array.fold_left (fun acc (r : int array) -> acc + Array.length r) 0 results
  in
  Obs.incr ~by:served_samples "engine.samples";
  let out =
    Array.init len (fun i ->
        match resolved.(i) with
        | Error e -> Error e
        | Ok (c, cache_hit, store_hit, cache_bypassed) ->
          Ok
            {
              request = jobs.(i).request;
              key = c.Compiled.key;
              samples = results.(i);
              rung = Compiled.rung c;
              loss = Compiled.loss c;
              provenance = c.Compiled.served.Minimax.Serve.provenance;
              cache_hit;
              store_hit;
              cache_bypassed;
            })
  in
  (* The whole-batch wall time feeds the engine's rolling window (the
     per-request rolling lives in the server's deliver stage). *)
  Obs.observe_latency_ns "engine.batch.latency" (Int64.sub (Obs.now_ns ()) batch_t0);
  out

let run_batch ?(seed = 42) t (requests : Request.t array) =
  if t.closed then invalid_arg "Engine.run_batch: engine is shut down";
  (* One split stream per request index — exactly the chain a
     per-request [Seeder] walks when every line shares this seed. *)
  let streams = Prob.Rng.streams (Prob.Rng.of_int seed) (Array.length requests) in
  let jobs =
    Array.mapi
      (fun i request ->
        (* Trace ids synthesized from the request index — the batch
           grammar has no wire id=. Contexts are only built when a
           recorder is live; they never touch the sample streams. *)
        let trace =
          if Obs.enabled () then Some (Obs.Trace.make (Printf.sprintf "r%d" i)) else None
        in
        { request; stream = streams.(i); budget = None; trace })
      requests
  in
  Array.map
    (function
      | Ok r -> r
      | Error (Uncertified { key; rule }) -> raise (Compiled.Uncertified { key; rule }))
    (run_jobs t jobs)

let artifact t req = Cache.peek t.cache (Request.canonical_key req)

(* Warm-boot entry point: artifacts a store already verified go
   straight into the memory tier, in the order given (so beyond the
   cache capacity the LRU keeps the last ones offered). *)
let preload t artifacts =
  if t.closed then invalid_arg "Engine.preload: engine is shut down";
  List.iter (fun (c : Compiled.t) -> Cache.add t.cache c.Compiled.key c) artifacts

(* analysis: domain-local — closed is a coordinator-domain latch: set
   and read only by the domain that owns the engine handle. *)
let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Pool.shutdown t.pool
  end

let with_engine ?domains ?cache_capacity ?budget ?tier f =
  let t = create ?domains ?cache_capacity ?budget ?tier () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
