(* The serving engine; see engine.mli. *)

module Request = Request
module Cache = Cache
module Compiled = Compiled
module Pool = Pool

type t = {
  pool : Pool.t;
  cache : Compiled.t Cache.t;
  budget : (unit -> Lp.Budget.t) option;
  mutable closed : bool;
}

let create ?domains ?(cache_capacity = 64) ?budget () =
  let domains =
    match domains with Some d -> d | None -> Pool.recommended_domains ()
  in
  {
    pool = Pool.create ~domains;
    cache = Cache.create ~capacity:cache_capacity;
    budget;
    closed = false;
  }

let domains t = Pool.domains t.pool
let cache_stats t = Cache.stats t.cache
let cached_keys t = Cache.keys t.cache

type response = {
  request : Request.t;
  key : string;
  samples : int array;
  rung : Minimax.Serve.rung;
  loss : Rat.t;
  cache_hit : bool;
  cache_bypassed : bool;
}

(* Compile-or-fetch for one request, on the coordinator domain. A
   tripped "engine.cache" site degrades to a cacheless compile: the
   request is still served, the cache is never touched mid-fault (so a
   trip cannot corrupt or partially populate it), and the bypass is
   counted. *)
let resolve t (req : Request.t) =
  let key = Request.canonical_key req in
  let compile () =
    let budget = Option.map (fun mk -> mk ()) t.budget in
    Compiled.compile ?budget ~alpha:req.Request.alpha ~key (Request.consumer req)
  in
  let bypass =
    match Resilience.Fault.trip "engine.cache" with
    | () -> false
    | exception Resilience.Fault.Injected { site = "engine.cache"; _ } -> true
  in
  if bypass then begin
    Obs.incr "engine.cache.bypassed";
    (compile (), false, true)
  end
  else
    match Cache.find t.cache key with
    | Some c -> (c, true, false)
    | None ->
      let c = compile () in
      Cache.add t.cache key c;
      (c, false, false)

let run_batch ?(seed = 42) t (requests : Request.t array) =
  if t.closed then invalid_arg "Engine.run_batch: engine is shut down";
  let len = Array.length requests in
  let total_samples = Array.fold_left (fun acc r -> acc + r.Request.count) 0 requests in
  Obs.span
    ~attrs:[ ("requests", Obs.Int len); ("samples", Obs.Int total_samples) ]
    "engine.batch"
  @@ fun () ->
  Obs.incr ~by:len "engine.requests";
  (* Phase 1 (coordinator): every distinct consumer compiled at most
     once, in request order. *)
  let resolved = Array.map (resolve t) requests in
  (* Phase 2 (pool): one split stream per request index — stream i
     depends only on (seed, i), so results cannot depend on which
     worker runs which job, or on how many workers exist. The pristine
     copies feed deterministic inline retries after worker faults. *)
  let streams = Prob.Rng.streams (Prob.Rng.of_int seed) len in
  let pristine = Array.map Prob.Rng.copy streams in
  let results = Array.make len [||] in
  let sample_into rng i =
    let c, _, _ = resolved.(i) in
    let req = requests.(i) in
    results.(i) <-
      Compiled.draws c.Compiled.sampler ~input:req.Request.input ~count:req.Request.count rng
  in
  let job i =
    Resilience.Fault.trip "engine.worker";
    sample_into streams.(i) i
  in
  let failures = Pool.run t.pool ~jobs:job ~count:len in
  List.iter
    (fun (i, e) ->
      match e with
      | Resilience.Fault.Injected { site = "engine.worker"; _ } ->
        (* The job never touched its stream (the trip precedes the
           first draw), so replaying from the pristine copy is
           byte-identical to what the worker would have produced. *)
        Obs.incr "engine.worker.retries";
        sample_into pristine.(i) i
      | e -> raise e)
    failures;
  Obs.incr ~by:total_samples "engine.samples";
  Array.init len (fun i ->
      let c, cache_hit, cache_bypassed = resolved.(i) in
      {
        request = requests.(i);
        key = c.Compiled.key;
        samples = results.(i);
        rung = Compiled.rung c;
        loss = Compiled.loss c;
        cache_hit;
        cache_bypassed;
      })

let artifact t req = Cache.peek t.cache (Request.canonical_key req)

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    Pool.shutdown t.pool
  end

let with_engine ?domains ?cache_capacity ?budget f =
  let t = create ?domains ?cache_capacity ?budget () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
