(** Bounded LRU cache for compiled artifacts.

    Keys are the canonical strings of {!Request.canonical_key}; values
    are whatever the engine compiles (the type is a parameter so tests
    can exercise the policy with cheap values). Capacity is a hard
    bound: inserting into a full cache evicts the least-recently-used
    entry first.

    Recency is advanced by both {!find} hits and {!add}. Eviction scans
    for the oldest stamp — O(capacity) — which is the right trade for
    this workload: capacities are small (each entry holds an LP solve),
    and the scan is branch-predictable, allocation-free and trivially
    correct.

    Every operation bumps ambient {!Obs} counters
    ([engine.cache.hits] / [.misses] / [.evictions] / [.insertions]);
    local {!stats} are kept as well so callers can report without a
    recorder installed. Not domain-safe by design: the engine performs
    all compilation and caching on the coordinator domain, and only
    fans out sampling. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val capacity : 'a t -> int
val size : 'a t -> int

val find : 'a t -> string -> 'a option
(** [Some v] marks the entry most-recently used and counts a hit;
    [None] counts a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Insert or overwrite, marking the entry most-recently used; evicts
    the least-recently-used entry when inserting over capacity. *)

val mem : 'a t -> string -> bool
(** Recency- and counter-neutral membership test. *)

val peek : 'a t -> string -> 'a option
(** Recency- and counter-neutral lookup, for audits and tests. *)

type stats = { hits : int; misses : int; evictions : int; insertions : int }

val stats : 'a t -> stats

val keys : 'a t -> string list
(** Most-recently-used first. *)
