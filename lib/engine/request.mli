(** Serving requests and their canonical cache keys.

    A request names a consumer — [(n, α, loss, side information)] — and
    a query against it: the true result to perturb and how many samples
    to draw. The consumer part determines which compiled mechanism can
    answer it; {!canonical_key} renders that part into a string under
    which the engine caches compiled artifacts.

    Canonicalization means distinct spellings of the same consumer
    share one cache entry (and therefore one LP solve):

    - side information is reduced to its member set: [>=0], [0-n] and
      an explicit list of all of [{0..n}] all collapse to [full], and
      member lists are sorted and deduplicated;
    - losses that coincide as functions on [{0..n}²] collapse:
      [deadzone:0], [capped:c] with [c >= n], and [asym:1,1] are all
      exactly [|i−r|] there and key as [absolute];
    - [α] is keyed by {!Rat.to_string}, which is already canonical
      (reduced fraction, normalized sign). *)

(** Loss function, by name — the engine needs a comparable description,
    not a closure, to key its cache. Mirrors the [dpopt --loss]
    grammar. *)
type loss_spec =
  | Absolute
  | Squared
  | Zero_one
  | Deadzone of int  (** zero within the band, linear beyond *)
  | Capped of int  (** [min cap |i−r|] *)
  | Asymmetric of Rat.t * Rat.t  (** per-unit over / under costs *)

(** Side information, by name. Mirrors the [dpopt --side] grammar. *)
type side_spec =
  | Full
  | At_least of int
  | At_most of int
  | Interval of int * int
  | Members of int list

type t = private {
  n : int;
  alpha : Rat.t;
  loss : loss_spec;
  side : side_spec;
  input : int;  (** the true result to perturb, in [{0..n}] *)
  count : int;  (** samples to draw, [>= 1] *)
}

val make :
  ?input:int ->
  ?count:int ->
  n:int ->
  alpha:Rat.t ->
  loss:loss_spec ->
  side:side_spec ->
  unit ->
  (t, string) result
(** Validated constructor (default [input 0], [count 1]): [n >= 1],
    [0 < α < 1], [input ∈ {0..n}], [count >= 1], well-formed loss
    parameters, side information non-empty and within [{0..n}]. *)

(** {1 Wire protocol (v1)}

    The line grammar is versioned: every request line starts with
    [v=1], and unknown keys are typed rejections rather than silent
    drops. PROTOCOL.md documents the forward-compatibility policy. *)

val version : int
(** The protocol version this build speaks ([1]). *)

type wire = {
  id : string option;
      (** caller-chosen tag echoed on the response (1–64 chars of
          [[A-Za-z0-9._:-]]) *)
  seed : int option;  (** per-request determinism seed *)
  request : t;
}
(** A parsed request line: the consumer/query payload plus the
    transport-level envelope fields. *)

(** A session verb, parsed from an [op=subscribe | release |
    unsubscribe | ledger] line. Subscribers are named by [sub=] (same
    charset as [id=]); a group is named by its [(n, input)] pair;
    [alpha=] is the subscription's privacy level and the optional
    [budget=] its ledger floor. Semantic validation (ranges, ledger
    rules) lives in the session service — the parser checks syntax
    and per-verb allowed keys only. *)
type session_verb =
  | Subscribe of {
      sub : string;
      n : int;
      input : int;
      level : Rat.t;
      budget : Rat.t option;
    }
  | Release of { n : int; input : int }
  | Unsubscribe of { sub : string; n : int; input : int }
  | Ledger of { sub : string; n : int; input : int }

(** A parsed line: a serving query, the [op=stats] admin verb asking
    the server for its telemetry snapshot (which takes only the
    optional [id=] echo tag), or a session verb. *)
type parsed =
  | Query of wire
  | Stats of { id : string option }
  | Session of { id : string option; verb : session_verb }

type wire_error =
  | Unsupported_version of { got : string option }
      (** missing [v=] first key, or a version this build doesn't
          speak *)
  | Unknown_key of { key : string }
  | Malformed of { msg : string }  (** frame-level: not [key=value], duplicate key, bad [id] *)
  | Invalid of { msg : string }  (** field-level: bad value or failed {!make} validation *)

val wire_error_kind : wire_error -> string
(** Stable machine-readable tag: [unsupported_version], [unknown_key],
    [malformed], [invalid]. *)

val wire_error_to_string : wire_error -> string

val of_line : string -> (parsed, wire_error) result
(** Parse one request line of whitespace-separated [key=value] pairs:
    [v=1 id=q7 seed=42 n=6 alpha=1/2 loss=absolute side=full input=3
    count=1000]. [v] must come first and equal {!version}; [id], [seed],
    [input] and [count] are optional; losses are
    [absolute | squared | zero-one | deadzone:<w> | capped:<c> |
    asym:<over>,<under>]; side is
    [full | lo-hi | >=k | <=k | m1,m2,...]. The admin line
    [v=1 op=stats [id=...]] parses to {!Stats} and the session lines
    [v=1 op=subscribe|release|unsubscribe|ledger ...] parse to
    {!Session}; any other [op=] value, keys outside a verb's allowed
    set, or [sub=]/[budget=] on a query line, are typed rejections. *)

val to_line : ?id:string -> ?seed:int -> t -> string
(** Render in the {!of_line} grammar, [v=1] first (parses back to an
    equal request with the same envelope). *)

val session_to_line : ?id:string -> session_verb -> string
(** Render a session verb in the {!of_line} grammar (parses back to an
    equal verb with the same [id]). *)

val loss_spec_of_string : string -> (loss_spec, string) result
(** Parse the [loss=] value grammar on its own (shared with the
    [dpopt --loss] flag). *)

val side_spec_of_string : string -> (side_spec, string) result
(** Parse the [side=] value grammar on its own (shared with the
    [dpopt --side] flag). *)

val canonical_key : t -> string
(** The consumer part only — [input]/[count] never enter the key. Equal
    keys mean one cached solve serves both requests. *)

val loss_fn : t -> Minimax.Loss.t
val side_info : t -> Minimax.Side_info.t
val consumer : t -> Minimax.Consumer.t

val loss_spec_to_string : loss_spec -> string
val side_spec_to_string : side_spec -> string
