(* Compiled mechanisms; see compiled.mli. *)

module M = Mech.Mechanism
module S = Minimax.Serve
module I = Check.Invariants

type sampler = { mech : M.t; tables : Prob.Discrete.Alias.table array }

let sampler_of_mechanism mech =
  let size = M.size mech in
  let tables =
    Array.init size (fun i -> Prob.Discrete.Alias.build (M.row_distribution mech i))
  in
  { mech; tables }

let sampler_mechanism s = s.mech

let draw s ~input rng =
  if input < 0 || input >= Array.length s.tables then
    invalid_arg "Compiled.draw: input out of {0..n}";
  Prob.Discrete.Alias.sample s.tables.(input) rng

let draws s ~input ~count rng =
  if count < 1 then invalid_arg "Compiled.draws: count must be >= 1";
  if count = 1 then [| M.sample s.mech ~input rng |]
  else begin
    if input < 0 || input >= Array.length s.tables then
      invalid_arg "Compiled.draws: input out of {0..n}";
    let table = s.tables.(input) in
    Array.init count (fun _ -> Prob.Discrete.Alias.sample table rng)
  end

type t = {
  key : string;
  served : S.served;
  certificates : I.certificate list;
  sampler : sampler;
}

exception Uncertified of { key : string; rule : string }

let () =
  Printexc.register_printer (function
    | Uncertified { key; rule } ->
      Some (Printf.sprintf "Compiled.Uncertified(key=%s,rule=%s)" key rule)
    | _ -> None)

(* Independent re-audit of the released mechanism. Serve already
   certified it once; compiling re-runs the analyzer so the cached
   artifact carries the actual replayable certificates, not just the
   rule names, and so a cache can be audited without trusting the
   ladder. Derivability is only demanded where it holds by
   construction (the geometric rungs). *)
let recertify ~key ~alpha (served : S.served) =
  let matrix = M.matrix served.S.mechanism in
  let reports =
    [ I.row_stochastic matrix; I.alpha_dp ~alpha matrix ]
    @
    match served.S.provenance.S.rung with
    | S.Tailored -> []
    | S.Geometric_remap | S.Geometric_raw -> [ I.derivability ~alpha matrix ]
  in
  List.map
    (fun (r : I.report) ->
      match r.I.certificate with
      | Some c -> c
      | None -> raise (Uncertified { key; rule = r.I.rule }))
    reports

let compile ?budget ~alpha ~key consumer =
  Obs.span ~attrs:[ ("key", Obs.Str key) ] "engine.compile" @@ fun () ->
  let served = S.serve ?budget ~alpha consumer in
  let certificates = recertify ~key ~alpha served in
  let sampler = sampler_of_mechanism served.S.mechanism in
  Obs.incr "engine.compiles";
  { key; served; certificates; sampler }

(* The warm-restart entry point: a release reconstituted from outside
   the serve ladder (e.g. deserialized from a disk store) earns its
   certificates through the exact same audit a fresh compile does, so
   an artifact that skipped the solver still cannot exist uncertified.
   Deliberately does not bump "engine.compiles": no solve happened. *)
let of_served ~key ~alpha served =
  let certificates = recertify ~key ~alpha served in
  { key; served; certificates; sampler = sampler_of_mechanism served.S.mechanism }

let rung t = t.served.S.provenance.S.rung
let loss t = t.served.S.loss
