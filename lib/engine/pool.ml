(* Domain worker pool; see pool.mli.

   One mutex guards all shared state; [work] wakes workers when a
   batch arrives (or the pool closes), [finished] wakes the
   coordinator when the last job of a batch completes. Workers pull
   the next unclaimed index under the lock and execute it outside the
   lock, so job bodies run in parallel and the critical sections are a
   few loads and stores. *)

type batch = {
  jobs : int -> unit;
  count : int;
  mutable next : int;  (** first unclaimed index *)
  mutable completed : int;
  mutable failures : (int * exn) list;
}

type t = {
  requested : int;  (** worker count; 0 = inline pool *)
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable batch : batch option;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
}

let domains t = t.requested

let recommended_domains () = max 1 (Domain.recommended_domain_count () - 1)

(* Run one job outside the lock, recording the outcome under it. The
   queue depth at grab time and the worker's throughput counter go to
   the ambient Obs recorder, which is domain-safe. *)
let execute t batch ~worker_id index =
  Obs.observe "engine.pool.queue_depth" (batch.count - index);
  Obs.incr (Printf.sprintf "engine.worker.%d.jobs" worker_id);
  let outcome = try Ok (batch.jobs index) with e -> Error e in
  Mutex.lock t.mutex;
  (match outcome with
  | Ok () -> ()
  | Error e -> batch.failures <- (index, e) :: batch.failures);
  batch.completed <- batch.completed + 1;
  if batch.completed = batch.count then Condition.broadcast t.finished;
  Mutex.unlock t.mutex

let worker_loop t worker_id =
  Mutex.lock t.mutex;
  let rec loop () =
    match t.batch with
    | Some b when b.next < b.count ->
      let index = b.next in
      b.next <- index + 1;
      Mutex.unlock t.mutex;
      execute t b ~worker_id index;
      Mutex.lock t.mutex;
      loop ()
    | _ ->
      if t.closing then Mutex.unlock t.mutex
      else begin
        Condition.wait t.work t.mutex;
        loop ()
      end
  in
  loop ()

let create ~domains =
  if domains < 0 then invalid_arg "Pool.create: negative domain count";
  let requested = if domains <= 1 then 0 else domains in
  let t =
    {
      requested;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      closing = false;
      workers = [||];
    }
  in
  (* analysis: domain-local — construction-time write: workers is
     assigned before the handle escapes; spawned workers never read
     it. *)
  t.workers <- Array.init requested (fun i -> Domain.spawn (fun () -> worker_loop t (i + 1)));
  t

(* analysis: domain-local — the zero-domain pool runs the whole batch
   in the caller's domain; no other domain can observe this batch
   record. *)
let run_inline batch =
  for index = 0 to batch.count - 1 do
    Obs.observe "engine.pool.queue_depth" (batch.count - index);
    Obs.incr "engine.worker.0.jobs";
    (try batch.jobs index
     with e -> batch.failures <- (index, e) :: batch.failures);
    batch.completed <- batch.completed + 1
  done

let run t ~jobs ~count =
  if count < 0 then invalid_arg "Pool.run: negative count";
  let batch = { jobs; count; next = 0; completed = 0; failures = [] } in
  if t.requested = 0 then begin
    if t.closing then invalid_arg "Pool.run: pool is shut down";
    run_inline batch
  end
  else begin
    Mutex.lock t.mutex;
    if t.closing then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: a batch is already in flight"
    end;
    t.batch <- Some batch;
    Condition.broadcast t.work;
    while batch.completed < batch.count do
      Condition.wait t.finished t.mutex
    done;
    t.batch <- None;
    Mutex.unlock t.mutex
  end;
  List.sort (fun (a, _) (b, _) -> compare a b) batch.failures

let shutdown t =
  (* analysis: domain-local — a zero-domain pool has no workers, so
     closing is only ever the caller's latch. *)
  if t.requested = 0 then t.closing <- true
  else begin
    Mutex.lock t.mutex;
    if not t.closing then begin
      t.closing <- true;
      Condition.broadcast t.work
    end;
    let workers = t.workers in
    t.workers <- [||];
    Mutex.unlock t.mutex;
    Array.iter Domain.join workers
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
