(** Compiled mechanisms: solve once, certify once, sample in O(1).

    A {!t} is what the engine caches per distinct consumer: the served
    mechanism from the {!Minimax.Serve} degradation ladder, the
    {!Check.Invariants} certificates earned on release, and one
    {!Prob.Discrete.Alias} table per mechanism row so answering a query
    costs O(1) per sample instead of an O(n)-rational CDF walk.

    The alias tables sample the float image of each exact row; the
    released matrix itself (and everything certified about it) stays
    exact. Sampling therefore matches the exact sampler's distribution
    to float precision — a property the frequency tests pin down — but
    not its draw-by-draw stream, which is why {!draws} keeps the exact
    path for single draws (preserving historical seed streams, e.g.
    [dpopt geometric --samples 1]). *)

type sampler
(** Per-row alias tables plus the exact mechanism they were built
    from. *)

val sampler_of_mechanism : Mech.Mechanism.t -> sampler
(** Build all [n+1] row tables; O(n²) once. *)

val sampler_mechanism : sampler -> Mech.Mechanism.t

val draw : sampler -> input:int -> Prob.Rng.t -> int
(** One O(1) alias draw from row [input].
    @raise Invalid_argument on an out-of-range input. *)

val draws : sampler -> input:int -> count:int -> Prob.Rng.t -> int array
(** [count] draws. [count = 1] takes the exact-rational CDF path
    ({!Mech.Mechanism.sample}) so single-sample callers see exactly the
    stream they saw before compiled samplers existed; [count >= 2] uses
    the alias table. @raise Invalid_argument when [count < 1]. *)

type t = {
  key : string;  (** the {!Request.canonical_key} this artifact serves *)
  served : Minimax.Serve.served;  (** mechanism, loss, and provenance *)
  certificates : Check.Invariants.certificate list;
      (** replayable certificates for every invariant re-verified on
          the release — non-empty by construction *)
  sampler : sampler;
}

exception Uncertified of { key : string; rule : string }
(** {!compile} found a released mechanism failing re-certification —
    impossible unless [lib/core] or [lib/check] is broken; typed so
    even that breakage cannot put an uncertified artifact in a cache. *)

val compile : ?budget:Lp.Budget.t -> alpha:Rat.t -> key:string -> Minimax.Consumer.t -> t
(** Run the serve ladder, re-verify the release through
    {!Check.Invariants} (row-stochasticity and α-DP always; Theorem-2
    derivability on geometric rungs), and build the alias tables.
    Emits an ["engine.compile"] span.
    @raise Uncertified if any re-verification fails *)

val of_served : key:string -> alpha:Rat.t -> Minimax.Serve.served -> t
(** Admit an externally reconstituted release (e.g. one deserialized
    from a disk artifact store) through the exact audit {!compile}
    applies: the release is re-verified via {!Check.Invariants} and the
    alias tables are rebuilt, so the returned artifact carries freshly
    replayed certificates rather than trusted ones. Never bumps
    ["engine.compiles"] — no solve happened.
    @raise Uncertified if any re-verification fails *)

val rung : t -> Minimax.Serve.rung
val loss : t -> Rat.t
