(** A Domain worker pool with a mutex/condition work queue.

    The pool executes {e index-addressed batches}: {!run} hands jobs
    [0 .. count-1] to whichever workers are free and returns when all
    have finished. Determinism is the caller's half of the contract —
    a job must depend only on its index (the engine derives one
    {!Prob.Rng} stream per index) and write only state owned by its
    index — and the pool's half is that it never reorders, drops, or
    duplicates an index. Under that split, batch output is
    byte-identical for {e any} worker count, including the inline
    fallback.

    [create ~domains] spawns [domains] workers ([Domain.spawn]); with
    [domains <= 1] no Domain is ever spawned and {!run} executes
    inline on the calling domain — the single-core fallback path.

    A job that raises does not poison the pool: the exception is
    captured against its index and the remaining jobs still run;
    {!run} returns all failures in index order so the caller can retry
    or re-raise deterministically.

    Observability: each grabbed job records the queue depth at grab
    time (histogram ["engine.pool.queue_depth"]) and bumps its worker's
    throughput counter (["engine.worker.<id>.jobs"], id [0] for the
    inline path). Workers are plain [Domain]s; anything they record
    relies on {!Obs} (and {!Resilience.Fault}) being domain-safe. *)

type t

val create : domains:int -> t
(** Spawn the workers. [domains <= 1] creates an inline (no-Domain)
    pool. @raise Invalid_argument on negative [domains]. *)

val domains : t -> int
(** Worker count; [0] for an inline pool. *)

val run : t -> jobs:(int -> unit) -> count:int -> (int * exn) list
(** Execute [jobs i] for every [i] in [0 .. count-1]; block until all
    complete. Returns captured failures in increasing index order
    (empty on full success). Batches are serial: concurrent {!run}
    calls on one pool are a programming error and raise
    [Invalid_argument]. @raise Invalid_argument after {!shutdown}. *)

val shutdown : t -> unit
(** Stop and join all workers. Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run [f], and {!shutdown} (also on exceptions). *)

val recommended_domains : unit -> int
(** Workers to use by default: the runtime's recommended domain count
    minus one for the coordinator, at least 1. *)
