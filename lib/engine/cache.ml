(* Bounded LRU over string keys; see cache.mli. Recency is a
   monotonically increasing stamp per entry; eviction scans for the
   minimum stamp, O(capacity), which stays cheap at the capacities a
   mechanism cache uses. *)

(* analysis: domain-local — every cache call happens in the engine's
   coordinator phase, on the caller's domain, before jobs are handed to
   the worker pool; workers never see the cache. *)
type 'a entry = { value : 'a; mutable stamp : int }

(* analysis: domain-local — same ownership as [entry]: mutated only by
   the engine's coordinator domain. *)
type 'a t = {
  cap : int;
  tbl : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

type stats = { hits : int; misses : int; evictions : int; insertions : int }

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  {
    cap = capacity;
    tbl = Hashtbl.create (2 * capacity);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
  }

let capacity t = t.cap
let size t = Hashtbl.length t.tbl

let touch t e =
  t.tick <- t.tick + 1;
  e.stamp <- t.tick

let find t key =
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
    touch t e;
    t.hits <- t.hits + 1;
    Obs.incr "engine.cache.hits";
    Some e.value
  | None ->
    t.misses <- t.misses + 1;
    Obs.incr "engine.cache.misses";
    None

let mem t key = Hashtbl.mem t.tbl key

let peek t key = Option.map (fun e -> e.value) (Hashtbl.find_opt t.tbl key)

(* analysis: order-insensitive — stamps are unique (one monotone tick
   per touch), so the minimum-stamp victim is order-independent. *)
let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.tbl None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.tbl key;
    t.evictions <- t.evictions + 1;
    Obs.incr "engine.cache.evictions"

let add t key value =
  (match Hashtbl.find_opt t.tbl key with
  | Some _ -> Hashtbl.remove t.tbl key
  | None -> if Hashtbl.length t.tbl >= t.cap then evict_lru t);
  let e = { value; stamp = 0 } in
  touch t e;
  Hashtbl.add t.tbl key e;
  t.insertions <- t.insertions + 1;
  Obs.incr "engine.cache.insertions"

let stats (t : 'a t) : stats =
  { hits = t.hits; misses = t.misses; evictions = t.evictions; insertions = t.insertions }

(* analysis: order-insensitive — the fold feeds an immediate sort by
   recency stamp. *)
let keys t =
  Hashtbl.fold (fun key e acc -> (key, e.stamp) :: acc) t.tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst
