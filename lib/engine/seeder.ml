(* Per-connection stream allocation.

   The k-th request carrying seed s (on one connection / input file)
   draws the k-th sequential [Rng.split] of [Rng.of_int s].  The chain
   depends only on (s, k) — never on when other connections' requests
   arrive or which worker runs the job — which is what makes server
   responses byte-identical under any interleaving.  When every line in
   a batch shares one seed, the chain reproduces exactly the
   [Rng.streams] array [Engine.run_batch] uses, so file-mode output is
   unchanged byte for byte. *)

type t = (int, Prob.Rng.t) Hashtbl.t

let create () = Hashtbl.create 8

let stream t ~seed =
  let parent =
    match Hashtbl.find_opt t seed with
    | Some p -> p
    | None ->
      let p = Prob.Rng.of_int seed in
      Hashtbl.add t seed p;
      p
  in
  Prob.Rng.split parent
