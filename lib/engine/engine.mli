(** The serving engine: one deployed solve, millions of answers.

    Theorem 1 says a single mechanism — [G(n,α)] plus per-consumer
    post-processing — serves every minimax consumer at once; this
    module is that statement as a runtime. Requests naming the same
    consumer (same {!Request.canonical_key}) share one compiled
    artifact from a bounded LRU {!Cache}: the {!Minimax.Serve} ladder
    runs once, its release is re-certified through
    {!Check.Invariants}, per-row {!Prob.Discrete.Alias} tables are
    built once, and from then on every sample is O(1). Batches fan out
    over a {!Pool} of Domains and merge by request index, so output is
    byte-identical for any worker count given the batch seed.

    Fault sites (see {!Resilience.Fault}):
    - ["engine.cache"] — tripped per request at cache-lookup time; the
      engine degrades to compiling without the cache (counter
      ["engine.cache.bypassed"]) rather than failing the request;
    - ["engine.worker"] — tripped per job inside a worker; the
      coordinator re-executes the job inline from its pristine stream
      (counter ["engine.worker.retries"]), output unchanged.

    Counters: ["engine.requests"], ["engine.samples"],
    ["engine.compiles"], ["engine.cache.hits" / ".misses" /
    ".evictions" / ".insertions" / ".bypassed"],
    ["engine.worker.<id>.jobs"], ["engine.worker.retries"]; histogram
    ["engine.pool.queue_depth"]; spans ["engine.compile"],
    ["engine.batch"] and the per-job ["engine.sample"] (traced to its
    request and tagged with cache hit/miss, rung and pivots spent). *)

module Request = Request
module Cache = Cache
module Compiled = Compiled
module Pool = Pool
module Seeder = Seeder

type t

(** An optional second cache tier behind the in-memory LRU — in
    practice a disk artifact store ([lib/store]). A memory miss calls
    [probe] before compiling; a fresh compile is offered to [store]
    for write-back. Both callbacks are contractually total: [probe]
    answers [None] for anything it cannot produce a {e verified}
    artifact for (absent, corrupt, failed re-certification, I/O
    trouble) and [store] swallows its own failures — so a broken tier
    degrades the engine to exactly the storeless compile path, never
    into an error or a wrong byte. *)
type tier = {
  probe : Request.t -> Compiled.t option;
  store : Compiled.t -> unit;
}

val create :
  ?domains:int ->
  ?cache_capacity:int ->
  ?budget:(unit -> Lp.Budget.t) ->
  ?tier:tier ->
  unit ->
  t
(** [domains] defaults to {!Pool.recommended_domains}[ ()] ([<= 1]
    means the inline single-domain fallback); [cache_capacity]
    defaults to [64]. [budget] is invoked once per compile so each
    solve gets a fresh deadline window; compiles that exhaust it
    degrade down the serve ladder instead of failing
    (see {!Minimax.Serve}). [tier] wires a second cache tier under the
    LRU (memory miss → tier probe → compile → tier write-back). *)

val domains : t -> int
val cache_stats : t -> Cache.stats
val cached_keys : t -> string list

(** One answered request. *)
type response = {
  request : Request.t;
  key : string;  (** the canonical key it was served under *)
  samples : int array;  (** [request.count] draws, in draw order *)
  rung : Minimax.Serve.rung;  (** ladder rung of the serving mechanism *)
  loss : Rat.t;  (** the consumer's minimax loss of that mechanism *)
  provenance : Minimax.Serve.provenance;
      (** full serve-ladder provenance of the compiled artifact *)
  cache_hit : bool;  (** served from the in-memory LRU *)
  store_hit : bool;
      (** memory miss answered by the second tier (a verified
          warm-restart artifact), no compile paid *)
  cache_bypassed : bool;  (** compiled outside the cache (fault trip) *)
}

(** One unit of incremental-batch work: a request, the {!Prob.Rng}
    stream its samples must come from (typically a {!Seeder} hand-out),
    an optional per-job budget overriding the engine-wide thunk — how
    the server threads each connection's deadline down to the compile
    it pays for — and an optional trace context so the compile and
    sample spans are attributed to the request that paid for them
    (tagged with cache hit/miss, ladder rung and pivots spent). The
    trace never influences served bytes. *)
type job = {
  request : Request.t;
  stream : Prob.Rng.t;
  budget : Lp.Budget.t option;
  trace : Obs.Trace.t option;
}

type job_error =
  | Uncertified of { key : string; rule : string }
      (** the release failed re-certification; [rule] names the failed
          check (prefixed [<rung>.] when the serve ladder itself
          refused to certify) *)

val job_error_to_string : job_error -> string

val run_jobs : t -> job array -> (response, job_error) result array
(** Serve an incremental batch, one result per job, in job order.
    Compilation runs on the calling domain in job order; sampling fans
    out over the pool, each job drawing from its own [stream] — so for
    fixed streams the samples are byte-identical for every [domains]
    setting. Unlike {!run_batch}, a certification failure is returned
    in that job's slot instead of raised, and the rest of the batch
    still serves.
    @raise Invalid_argument after {!shutdown} *)

val run_batch : ?seed:int -> t -> Request.t array -> response array
(** Serve a batch (default [seed 42]). Equivalent to {!run_jobs} with
    stream [i] the [i]-th split of [Rng.of_int seed] and no per-job
    budgets: compilation runs on the calling domain in request order;
    sampling fans out over the pool with one split {!Prob.Rng} stream
    per request index. For a fixed seed the returned samples are
    byte-identical for every [domains] setting.
    @raise Invalid_argument after {!shutdown}
    @raise Compiled.Uncertified if a release fails re-certification *)

val artifact : t -> Request.t -> Compiled.t option
(** The cached artifact that would serve this request, if present
    (recency- and counter-neutral). *)

val preload : t -> Compiled.t list -> unit
(** Warm the memory tier with already-verified artifacts (a store's
    [load_all] hand-off), in list order; beyond the cache capacity the
    LRU keeps the last ones offered.
    @raise Invalid_argument after {!shutdown} *)

val shutdown : t -> unit
(** Stop the pool. Idempotent. *)

val with_engine :
  ?domains:int ->
  ?cache_capacity:int ->
  ?budget:(unit -> Lp.Budget.t) ->
  ?tier:tier ->
  (t -> 'a) ->
  'a
(** [create], run, and {!shutdown} (also on exceptions). *)
