(** Deterministic per-request stream allocation.

    A seeder hands the k-th request carrying seed [s] the k-th
    sequential {!Prob.Rng.split} of [Prob.Rng.of_int s] — a function of
    [(s, k)] alone. One seeder per connection (or per input file) makes
    response bytes independent of connection interleaving and worker
    count; a batch whose lines all share one seed reproduces the
    {!Prob.Rng.streams} array [Engine.run_batch] draws, byte for
    byte. Not domain-safe: confine each seeder to the thread that owns
    its connection. *)

type t

val create : unit -> t

val stream : t -> seed:int -> Prob.Rng.t
(** The next stream in [seed]'s split chain. *)
