(** Bayesian information consumers — the Ghosh–Roughgarden–Sundararajan
    (STOC'09) model the paper compares against in §2.7.

    A Bayesian consumer holds a prior over true results and minimizes
    expected (not worst-case) loss; its optimal post-processing is a
    deterministic remap of outputs. *)

type prior = Rat.t array
(** Masses over [{0..n}], summing to one. *)

val uniform_prior : int -> prior

val normalize_prior : Rat.t array -> prior
(** @raise Invalid_argument on a non-positive total. *)

val peaked_prior : n:int -> peak:int -> decay:Rat.t -> prior
(** Mass [∝ decay^{|i−peak|}]. *)

type t

val make : ?label:string -> prior:prior -> loss:Loss.t -> unit -> t
(** @raise Invalid_argument when the prior is not a distribution. *)

val label : t -> string
val prior : t -> prior
(** Defensive copy. *)

val loss : t -> Loss.t

val expected_loss : t -> Mech.Mechanism.t -> Rat.t
(** Prior-weighted expected loss. *)

val optimal_remap : t -> Mech.Mechanism.t -> int array
(** For each output [r], the posterior-expected-loss-minimizing
    relabel (ties toward the smaller output). *)

val remap_matrix : n:int -> int array -> Rat.t array array
(** A remap as a 0/1 row-stochastic matrix. *)

val post_process : t -> Mech.Mechanism.t -> Mech.Mechanism.t * Rat.t
(** Deployed mechanism composed with the optimal remap, and its
    Bayesian expected loss. *)

val optimal_mechanism :
  ?solver:Lp.Solver.t -> alpha:Rat.t -> t -> n:int -> Mech.Mechanism.t * Rat.t
(** The Bayesian-optimal α-DP mechanism (the §2.5 analogue with a
    linear objective). [solver] routes the LP through a session whose
    basis cache warm-starts repeated same-shaped solves; the expected
    loss is exact either way, though the optimal mechanism reported may
    differ between warm and cold solves. *)

val is_deterministic : Rat.t array array -> bool
(** Is a post-processing matrix a deterministic remap (every row a
    point mass)? Bayesian optima always are; minimax optima genuinely
    are not (§2.7). *)
