(** The end-to-end "serve this consumer" path: budgeted solving with
    certified graceful degradation to the geometric mechanism.

    The ladder has three rungs, each cheaper and more universal than
    the one above it:

    + {b Tailored} — the §2.5 optimal-mechanism LP for this exact
      consumer.
    + {b Geometric_remap} — [G(n,α)] composed with the consumer's
      optimal interaction (§2.4.3): near-lossless by Theorem 1, and a
      much smaller LP (no differential-privacy rows).
    + {b Geometric_raw} — [G(n,α)] itself, no LP at all: the
      universally optimal mechanism of Theorems 1–2 and of
      Ghosh–Roughgarden–Sundararajan's Bayesian counterpart.

    A rung is taken when its solve succeeds {e and} the produced matrix
    re-verifies through {!Check.Invariants} (row-stochasticity and
    Definition-2 α-DP on every rung; Theorem-2 derivability on the
    geometric rungs, where it holds by construction). Exhaustion of the
    shared {!Lp.Budget.t}, an injected fault, or a failed certificate
    all degrade to the next rung — a degraded answer is still a
    certified private answer. Every descent bumps the
    ["resilience.degradations"] counter.

    The returned {!provenance} is deterministic (no timestamps): the
    same consumer, budget outcome, and fault plan produce byte-identical
    {!provenance_to_string} output, which chaos tests assert. *)

type rung = Tailored | Geometric_remap | Geometric_raw

(** Why a rung was abandoned. *)
type reason =
  | Solver of Lp.Solver_error.t
  | Uncertified of string  (** the {!Check.Invariants} rule that failed *)

type attempt = { attempted : rung; reason : reason }

type provenance = {
  rung : rung;  (** the rung actually served *)
  alpha : Rat.t;
  n : int;
  attempts : attempt list;  (** abandoned rungs, in descent order *)
  pivots_spent : int;  (** simplex pivots across all exhausted solves *)
  peak_bits : int;  (** largest coefficient bit-size across them *)
  checks : string list;  (** invariant rules certified on the release *)
}

type served = {
  mechanism : Mech.Mechanism.t;
  loss : Rat.t;  (** the consumer's minimax loss of [mechanism] *)
  provenance : provenance;
}

exception Certification_failed of { rung : string; rule : string }
(** The bottom rung's [G(n,α)] failed re-verification — impossible
    unless [lib/mech] or [lib/check] is broken, and typed so even that
    breakage cannot release an uncertified matrix. *)

val serve : ?budget:Lp.Budget.t -> alpha:Rat.t -> Consumer.t -> served
(** Walk the ladder; always returns a certified mechanism.
    @raise Invalid_argument on a bad [alpha]
    @raise Certification_failed if even raw [G(n,α)] fails checks *)

val rung_to_string : rung -> string
(** ["tailored"], ["geometric+remap"], ["geometric"]. *)

val provenance_to_string : provenance -> string
(** Single-line deterministic rendering, for logs and chaos tests. *)

val provenance_to_json : provenance -> Obs.Json.t
