(** Budgeted solving with certified degradation to the geometric
    mechanism; see serve.mli for the ladder contract. *)

type rung = Tailored | Geometric_remap | Geometric_raw

type reason =
  | Solver of Lp.Solver_error.t
  | Uncertified of string

type attempt = { attempted : rung; reason : reason }

type provenance = {
  rung : rung;
  alpha : Rat.t;
  n : int;
  attempts : attempt list;
  pivots_spent : int;
  peak_bits : int;
  checks : string list;
}

type served = {
  mechanism : Mech.Mechanism.t;
  loss : Rat.t;
  provenance : provenance;
}

exception Certification_failed of { rung : string; rule : string }

let rung_to_string = function
  | Tailored -> "tailored"
  | Geometric_remap -> "geometric+remap"
  | Geometric_raw -> "geometric"

let reason_to_string = function
  | Solver e -> Lp.Solver_error.to_string e
  | Uncertified rule -> "uncertified:" ^ rule

let provenance_to_string p =
  Printf.sprintf "rung=%s alpha=%s n=%d attempts=[%s] pivots_spent=%d peak_bits=%d checks=[%s]"
    (rung_to_string p.rung) (Rat.to_string p.alpha) p.n
    (String.concat ";"
       (List.map
          (fun a -> Printf.sprintf "%s:%s" (rung_to_string a.attempted) (reason_to_string a.reason))
          p.attempts))
    p.pivots_spent p.peak_bits
    (String.concat "," p.checks)

let reason_to_json = function
  | Solver e -> Lp.Solver_error.to_json e
  | Uncertified rule ->
    Obs.Json.Obj [ ("verdict", Obs.Json.Str "uncertified"); ("rule", Obs.Json.Str rule) ]

let provenance_to_json p =
  Obs.Json.Obj
    [
      ("rung", Obs.Json.Str (rung_to_string p.rung));
      ("alpha", Obs.Json.Str (Rat.to_string p.alpha));
      ("n", Obs.Json.Int p.n);
      ( "attempts",
        Obs.Json.List
          (List.map
             (fun a ->
               Obs.Json.Obj
                 [
                   ("rung", Obs.Json.Str (rung_to_string a.attempted));
                   ("reason", reason_to_json a.reason);
                 ])
             p.attempts) );
      ("pivots_spent", Obs.Json.Int p.pivots_spent);
      ("peak_bits", Obs.Json.Int p.peak_bits);
      ("checks", Obs.Json.List (List.map (fun c -> Obs.Json.Str c) p.checks));
    ]

(* Re-verify a candidate through the independent analyzer before
   release. Derivability is only demanded where it holds by
   construction: a tailored LP vertex need not factor through G. *)
let certify ~alpha ~derivable m =
  let matrix = Mech.Mechanism.matrix m in
  let reports =
    [ Check.Invariants.row_stochastic matrix; Check.Invariants.alpha_dp ~alpha matrix ]
    @ (if derivable then [ Check.Invariants.derivability ~alpha matrix ] else [])
  in
  match List.find_opt (fun r -> not (Check.Invariants.passed r)) reports with
  | Some r -> Error r.Check.Invariants.rule
  | None -> Ok (List.map (fun r -> r.Check.Invariants.rule) reports)

let spend_of_attempts attempts =
  List.fold_left
    (fun (pivots, bits) a ->
      match a.reason with
      | Solver (Lp.Solver_error.Exhausted ex) ->
        (pivots + ex.Lp.Solver_error.pivots, max bits ex.Lp.Solver_error.peak_bits)
      | _ -> (pivots, bits))
    (0, 0) attempts

let serve ?budget ~alpha (consumer : Consumer.t) =
  Mech.Geometric.check_alpha alpha;
  let n = Consumer.n consumer in
  Obs.span ~attrs:[ ("n", Obs.Int n); ("alpha", Obs.Rat alpha) ] "core.serve" @@ fun () ->
  let release rung attempts mechanism loss checks =
    let pivots_spent, peak_bits = spend_of_attempts attempts in
    {
      mechanism;
      loss;
      provenance =
        { rung; alpha; n; attempts = List.rev attempts; pivots_spent; peak_bits; checks };
    }
  in
  let degrade rung reason =
    Obs.incr "resilience.degradations";
    { attempted = rung; reason }
  in
  (* Rung 1: the tailored §2.5 LP. *)
  let tailored_failure =
    match Optimal_mechanism.solve_budgeted ?budget ~alpha consumer with
    | Ok r -> (
      match certify ~alpha ~derivable:false r.Optimal_mechanism.mechanism with
      | Ok checks ->
        Either.Left (release Tailored [] r.Optimal_mechanism.mechanism r.Optimal_mechanism.loss checks)
      | Error rule -> Either.Right (degrade Tailored (Uncertified rule)))
    | Error e -> Either.Right (degrade Tailored (Solver e))
  in
  match tailored_failure with
  | Either.Left served -> served
  | Either.Right first ->
    let geometric = Mech.Geometric.matrix ~n ~alpha in
    (* Rung 2: G(n,α) + the optimal-interaction remap (Theorem 1). *)
    let remap_failure =
      match Optimal_interaction.solve_budgeted ?budget ~deployed:geometric consumer with
      | Ok r -> (
        match certify ~alpha ~derivable:true r.Optimal_interaction.induced with
        | Ok checks ->
          Either.Left
            (release Geometric_remap [ first ] r.Optimal_interaction.induced
               r.Optimal_interaction.loss checks)
        | Error rule -> Either.Right (degrade Geometric_remap (Uncertified rule)))
      | Error e -> Either.Right (degrade Geometric_remap (Solver e))
    in
    (match remap_failure with
    | Either.Left served -> served
    | Either.Right second -> (
      (* Rung 3: raw G(n,α) — no LP, universally optimal by Theorem 2. *)
      match certify ~alpha ~derivable:true geometric with
      | Ok checks ->
        release Geometric_raw [ second; first ] geometric
          (Consumer.minimax_loss consumer geometric)
          checks
      | Error rule ->
        raise (Certification_failed { rung = rung_to_string Geometric_raw; rule })))
