(** The optimal α-differentially-private mechanism for a single known
    consumer (§2.5).

    {v
      minimize  d
      s.t.      Σ_r x_{i,r}·l(i,r) <= d        ∀ i ∈ S
                x_{i+1,r} − α·x_{i,r}   >= 0   ∀ i < n, r      (DP)
                x_{i,r}   − α·x_{i+1,r} >= 0   ∀ i < n, r      (DP)
                Σ_r x_{i,r} = 1                ∀ i
                x_{i,r} >= 0
    v}

    [solve] returns some optimal vertex; [solve_structured] follows the
    paper's Lemma-5 tie-breaking — among loss-optimal mechanisms it
    minimizes the secondary objective [L'(x) = Σ_{i,r} x_{i,r}·|i−r|]
    lexicographically, which selects a mechanism with the adjacent-row
    boundary pattern the Theorem-1 proof relies on. *)

type result = { mechanism : Mech.Mechanism.t; loss : Rat.t }

let build_problem ~alpha ~n (consumer : Consumer.t) =
  Mech.Geometric.check_alpha alpha;
  Obs.span ~attrs:[ ("n", Obs.Int n); ("alpha", Obs.Rat alpha) ] "core.build_problem" @@ fun () ->
  let p = Lp.make () in
  let x = Array.init (n + 1) (fun i -> Array.init (n + 1) (fun r -> Lp.fresh_var ~name:(Printf.sprintf "x_%d_%d" i r) p)) in
  let d = Lp.fresh_var ~name:"d" p in
  (* Stochasticity. *)
  for i = 0 to n do
    Lp.add_eq p (Lp.Expr.sum (List.init (n + 1) (fun r -> Lp.Expr.var x.(i).(r)))) Rat.one
  done;
  (* Differential privacy (Definition 2). *)
  for i = 0 to n - 1 do
    for r = 0 to n do
      Lp.add_ge p
        (Lp.Expr.sub (Lp.Expr.var x.(i + 1).(r)) (Lp.Expr.term alpha x.(i).(r)))
        Rat.zero;
      Lp.add_ge p
        (Lp.Expr.sub (Lp.Expr.var x.(i).(r)) (Lp.Expr.term alpha x.(i + 1).(r)))
        Rat.zero
    done
  done;
  (* Loss bound on the side information. *)
  let loss = Consumer.loss consumer in
  List.iter
    (fun i ->
      let terms =
        List.filter_map
          (fun r ->
            let c = Loss.eval loss i r in
            if Rat.is_zero c then None else Some (Lp.Expr.term c x.(i).(r)))
          (List.init (n + 1) Fun.id)
      in
      Lp.add_le p (Lp.Expr.sub (Lp.Expr.sum terms) (Lp.Expr.var d)) Rat.zero)
    (Side_info.members (Consumer.side_info consumer));
  (p, x, d)

let extract x (sol : Lp.solution) n =
  Mech.Mechanism.make
    (Array.init (n + 1) (fun i -> Array.init (n + 1) (fun r -> sol.values.(x.(i).(r)))))

let solve_budgeted ?pricing ?crash ?budget ?solver ~alpha (consumer : Consumer.t) =
  let n = Consumer.n consumer in
  Obs.span ~attrs:[ ("n", Obs.Int n); ("alpha", Obs.Rat alpha) ] "core.optimal_mechanism"
  @@ fun () ->
  let p, x, d = build_problem ~alpha ~n consumer in
  Lp.set_objective p Lp.Minimize (Lp.Expr.var d);
  let outcome =
    match solver with
    | Some s -> (Lp.Solver.solve ?budget s p).Lp.Solver.outcome
    | None -> Lp.solve ?pricing ?crash ?budget p
  in
  match outcome with
  | Lp.Optimal sol -> Ok { mechanism = extract x sol n; loss = sol.objective }
  | Lp.Failed e -> Error e

let solve ?pricing ?crash ?solver ~alpha (consumer : Consumer.t) =
  match solve_budgeted ?pricing ?crash ?solver ~alpha consumer with
  | Ok r -> r
  | Error e ->
    (* The geometric mechanism is always feasible and loss >= 0, so
       with no budget the solve cannot fail; surface the witness. *)
    Lp.Solver_error.fail ~context:"Optimal_mechanism.solve" e

(** Lexicographic (L, L') optimum from the Lemma-5 proof. *)
let solve_structured ~alpha (consumer : Consumer.t) =
  let n = Consumer.n consumer in
  let first = solve ~alpha consumer in
  let p, x, d = build_problem ~alpha ~n consumer in
  (* Pin the primary objective at its optimum, then minimize L'. *)
  Lp.add_le p (Lp.Expr.var d) first.loss;
  let secondary =
    Lp.Expr.sum
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun r -> if i = r then None else Some (Lp.Expr.term (Rat.of_int (abs (i - r))) x.(i).(r)))
             (List.init (n + 1) Fun.id))
         (List.init (n + 1) Fun.id))
  in
  Lp.set_objective p Lp.Minimize secondary;
  match Lp.solve p with
  | Lp.Optimal sol -> { mechanism = extract x sol n; loss = first.loss }
  | Lp.Failed e ->
    (* Pinning d at the attained optimum keeps the LP feasible, and the
       secondary objective is bounded below by 0. *)
    Lp.Solver_error.fail ~context:"Optimal_mechanism.solve_structured" e

(* ------------------------------------------------------------------ *)
(* Lemma 5: structure of adjacent rows of structured optima           *)
(* ------------------------------------------------------------------ *)

type row_pattern = {
  c1 : int;  (** last column (1-based count) with [α·x_i = x_{i+1}]; 0 when none *)
  c2 : int;  (** first column with [x_i = α·x_{i+1}]; n+2 when none *)
  gap_ok : bool;  (** [c2 = c1 + 1] or [c2 = c1 + 2] *)
}

(** Check the Lemma-5 pattern between rows [i] and [i+1]: a prefix of
    columns tight at [α·x_i = x_{i+1}], a suffix tight at
    [x_i = α·x_{i+1}], and at most one free column in between. *)
let adjacent_row_pattern ~alpha m i =
  let n = Mech.Mechanism.n m in
  let tight_lo j =
    Rat.equal
      (Rat.mul alpha (Mech.Mechanism.prob m ~input:i ~output:j))
      (Mech.Mechanism.prob m ~input:(i + 1) ~output:j)
  in
  let tight_hi j =
    Rat.equal
      (Mech.Mechanism.prob m ~input:i ~output:j)
      (Rat.mul alpha (Mech.Mechanism.prob m ~input:(i + 1) ~output:j))
  in
  let c1 = ref 0 in
  (* longest prefix of tight_lo *)
  (try
     for j = 0 to n do
       if tight_lo j then incr c1 else raise Exit
     done
   with Exit -> ());
  let c2 = ref (n + 2) in
  (try
     for j = n downto 0 do
       if tight_hi j then c2 := j + 1 (* 1-based *) else raise Exit
     done
   with Exit -> ());
  let gap = !c2 - !c1 in
  { c1 = !c1; c2 = !c2; gap_ok = gap = 1 || gap = 2 }

let satisfies_lemma5 ~alpha m =
  let n = Mech.Mechanism.n m in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (adjacent_row_pattern ~alpha m i).gap_ok then ok := false
  done;
  !ok

(** The minimax theorem, computationally: the duals of the §2.5 LP's
    loss-bound rows form (after sign-flip and normalization) the
    adversary's {e least-favorable prior} over the side information —
    the prior under which the best Bayesian mechanism does no better
    than the minimax optimum. Returns the prior over the full range
    [{0..n}] (zero off the side information) together with the minimax
    loss; [None] in the degenerate zero-loss case, where no prior is
    pinned down. Tests verify the defining property:
    Bayesian-optimal loss under this prior = minimax loss, exactly. *)
let least_favorable_prior ~alpha (consumer : Consumer.t) =
  let n = Consumer.n consumer in
  Obs.span ~attrs:[ ("n", Obs.Int n) ] "core.least_favorable_prior" @@ fun () ->
  let p, _, d = build_problem ~alpha ~n consumer in
  Lp.set_objective p Lp.Minimize (Lp.Expr.var d);
  let r = Lp.Solver.solve (Lp.Solver.create ()) p in
  match (r.Lp.Solver.outcome, r.Lp.Solver.duals) with
  | Lp.Optimal sol, Some duals ->
    let members = Side_info.members (Consumer.side_info consumer) in
    let n_loss_rows = List.length members in
    let first_loss_row = Lp.n_constraints p - n_loss_rows in
    (* Loss rows are Le in a Minimize model: duals <= 0; the prior
       weights are their negations. *)
    let weights = Array.make (n + 1) Rat.zero in
    List.iteri
      (fun k i -> weights.(i) <- Rat.neg duals.(first_loss_row + k))
      members;
    let total = Array.fold_left Rat.add Rat.zero weights in
    if Rat.sign total <= 0 then None
    else Some (Array.map (fun w -> Rat.div w total) weights, sol.Lp.objective)
  | _, _ -> None

(** Fast path justified by Theorem 1: the optimum equals the geometric
    mechanism composed with the consumer's optimal interaction, and the
    interaction LP is much smaller than the direct §2.5 LP (no DP rows:
    privacy is inherited from the geometric factor). Tests assert it
    agrees with {!solve} exactly. *)
let solve_via_interaction ~alpha (consumer : Consumer.t) =
  let n = Consumer.n consumer in
  Obs.span ~attrs:[ ("n", Obs.Int n) ] "core.solve_via_interaction" @@ fun () ->
  let deployed = Mech.Geometric.matrix ~n ~alpha in
  let r = Optimal_interaction.solve ~deployed consumer in
  { mechanism = r.Optimal_interaction.induced; loss = r.Optimal_interaction.loss }
