(** The optimal α-differentially-private mechanism for a single known
    consumer (§2.5), by exact LP over the [(n+1)²] matrix entries. *)

type result = { mechanism : Mech.Mechanism.t; loss : Rat.t }

val build_problem :
  alpha:Rat.t -> n:int -> Consumer.t -> Lp.problem * Lp.var array array * Lp.var
(** The raw LP: stochasticity + Definition-2 constraints + per-side-
    information loss bounds; returns [(problem, x variables, d)].
    Exposed for tests and extensions. *)

val solve_budgeted :
  ?pricing:Lp.Simplex.Exact.pricing ->
  ?crash:bool ->
  ?budget:Lp.Budget.t ->
  ?solver:Lp.Solver.t ->
  alpha:Rat.t ->
  Consumer.t ->
  (result, Lp.Solver_error.t) Stdlib.result
(** Some optimal vertex, or the typed reason the solve stopped —
    [Exhausted] when the budget (or an injected fault) ran out. The
    degradation ladder in {!Serve} consumes the [Error] side. When
    [solver] is given the solve runs through that session (its basis
    cache warm-starts repeated same-shaped solves; [pricing]/[crash]
    are then session-owned and ignored here); warm optima share the
    exact loss but may be a different optimal mechanism.
    @raise Invalid_argument on a bad [alpha]. *)

val solve :
  ?pricing:Lp.Simplex.Exact.pricing ->
  ?crash:bool ->
  ?solver:Lp.Solver.t ->
  alpha:Rat.t ->
  Consumer.t ->
  result
(** Some optimal vertex. The optional solver knobs exist for the
    ablation bench; defaults are right for every other caller. Runs
    unbudgeted, so failure is impossible by Theorem 1 (the geometric
    mechanism is feasible, loss >= 0); should a solver bug falsify
    that, the witness surfaces as {!Lp.Solver_error.Error}, never
    [assert false].
    @raise Invalid_argument on a bad [alpha]. *)

val solve_structured : alpha:Rat.t -> Consumer.t -> result
(** The paper's Lemma-5 tie-break: among loss-optimal mechanisms,
    lexicographically minimize [L'(x) = Σ x_{i,r}·|i−r|]. The result
    satisfies the Lemma-5 adjacent-row pattern and factors through the
    geometric mechanism exactly. *)

(** {1 Lemma 5 structure} *)

type row_pattern = {
  c1 : int;  (** length of the tight-below prefix *)
  c2 : int;  (** 1-based start of the tight-above suffix *)
  gap_ok : bool;  (** [c2 − c1 ∈ {1, 2}] *)
}

val adjacent_row_pattern : alpha:Rat.t -> Mech.Mechanism.t -> int -> row_pattern
(** The boundary pattern between rows [i] and [i+1]. *)

val satisfies_lemma5 : alpha:Rat.t -> Mech.Mechanism.t -> bool
(** Every adjacent row pair exhibits the Lemma-5 pattern. *)

val least_favorable_prior : alpha:Rat.t -> Consumer.t -> (Rat.t array * Rat.t) option
(** The minimax theorem, computationally: the (normalized, sign-
    flipped) duals of the loss-bound rows of the §2.5 LP — the
    adversary's least-favorable prior over the side information, plus
    the minimax loss. Under this prior, the best Bayesian mechanism
    achieves exactly the minimax loss (verified by tests). [None] in
    the degenerate zero-loss case. *)

val solve_via_interaction : alpha:Rat.t -> Consumer.t -> result
(** Fast path justified by Theorem 1: geometric ∘ optimal interaction.
    The interaction LP has no differential-privacy rows (privacy is
    inherited from the geometric factor), so this is roughly an order
    of magnitude faster than {!solve} at the same exact optimum —
    the agreement is itself a theorem this repository verifies. *)
