(** Theorem 1, part 2 — the universality pipeline.

    Deploy the geometric mechanism once; every rational minimax
    consumer recovers, by optimal interaction (an LP it can solve
    itself), exactly the utility of the α-DP mechanism tailored to it.
    This module wires the two LPs together and reports both sides of
    the equality, so tests and benches can assert it across grids of
    consumers. *)

type comparison = {
  consumer : Consumer.t;
  alpha : Rat.t;
  tailored_loss : Rat.t;  (** optimum of the §2.5 LP *)
  universal_loss : Rat.t;  (** geometric + optimal interaction (§2.4.3) *)
  naive_loss : Rat.t;  (** geometric taken at face value *)
  interaction : Rat.t array array;
  induced : Mech.Mechanism.t;
}

(** Run both sides for one consumer. A shared [solver] session lets
    the two LPs warm-start from cached bases of earlier same-shaped
    solves; the losses are exact either way (warm optima differ only in
    which optimal vertex they report). *)
let compare_for ?solver ~alpha (consumer : Consumer.t) =
  let n = Consumer.n consumer in
  let geometric = Mech.Geometric.matrix ~n ~alpha in
  let tailored = Optimal_mechanism.solve ?solver ~alpha consumer in
  let inter = Optimal_interaction.solve ?solver ~deployed:geometric consumer in
  {
    consumer;
    alpha;
    tailored_loss = tailored.Optimal_mechanism.loss;
    universal_loss = inter.Optimal_interaction.loss;
    naive_loss = Consumer.minimax_loss consumer geometric;
    interaction = inter.Optimal_interaction.interaction;
    induced = inter.Optimal_interaction.induced;
  }

(** Theorem 1(2) holds for this consumer? (Exact equality — both sides
    are exact rationals.) *)
let universality_holds c = Rat.equal c.tailored_loss c.universal_loss

(** The induced mechanism must itself be α-DP (it is a post-processing
    of an α-DP mechanism). *)
let induced_is_private c = Mech.Mechanism.is_dp ~alpha:c.alpha c.induced

(** Sweep a grid of consumers; returns all comparisons. Used by the
    THM1 bench and the property tests. *)
let sweep ?solver ~alpha ~losses ~side_infos () =
  List.concat_map
    (fun loss ->
      List.map
        (fun side_info -> compare_for ?solver ~alpha (Consumer.make ~loss ~side_info ()))
        side_infos)
    losses

(** Convenient default side-information grid for range n. *)
let default_side_infos n =
  List.filter_map Fun.id
    [
      Some (Side_info.full n);
      (if n >= 2 then Some (Side_info.at_least ~n (n / 2)) else None);
      (if n >= 2 then Some (Side_info.at_most ~n (n / 2)) else None);
      (if n >= 3 then Some (Side_info.interval ~n 1 (n - 1)) else None);
      (if n >= 4 then Some (Side_info.make ~n [ 0; n / 2; n ]) else None);
    ]
