(** Bayesian information consumers — the Ghosh–Roughgarden–Sundararajan
    (STOC'09) model the paper compares against in §2.7.

    A Bayesian consumer has a prior [p] over true results and minimizes
    {i expected} (not worst-case) loss. Its optimal post-processing of
    a deployed mechanism is deterministic: each output [r] is remapped
    to [argmin_{r'} Σ_i p_i·y_{i,r}·l(i,r')]. The contrast with the
    minimax consumer's {i randomized} optimal interaction (Table 1(c)
    has a random row) is one of the paper's talking points. *)

type prior = Rat.t array

let uniform_prior n : prior = Array.make (n + 1) (Rat.of_ints 1 (n + 1))

let normalize_prior (weights : Rat.t array) : prior =
  let total = Array.fold_left Rat.add Rat.zero weights in
  if Rat.sign total <= 0 then invalid_arg "Bayesian.normalize_prior";
  Array.map (fun w -> Rat.div w total) weights

(** Geometric-shaped prior concentrated at [peak]. *)
let peaked_prior ~n ~peak ~decay : prior =
  if peak < 0 || peak > n then invalid_arg "Bayesian.peaked_prior";
  normalize_prior (Array.init (n + 1) (fun i -> Rat.pow decay (abs (i - peak))))

type t = { label : string; prior : prior; loss : Loss.t }

let label t = t.label
let prior t = Array.copy t.prior
let loss t = t.loss

let make ?(label = "bayesian") ~prior ~loss () =
  let total = Array.fold_left Rat.add Rat.zero prior in
  if not (Rat.is_one total) then invalid_arg "Bayesian.make: prior does not sum to 1";
  Array.iter (fun p -> if Rat.sign p < 0 then invalid_arg "Bayesian.make: negative prior") prior;
  { label; prior; loss }

(** Expected loss of a mechanism under the prior. *)
let expected_loss t mech =
  let n = Mech.Mechanism.n mech in
  let acc = ref Rat.zero in
  for i = 0 to n do
    if not (Rat.is_zero t.prior.(i)) then
      acc :=
        Rat.add !acc
          (Rat.mul t.prior.(i)
             (Mech.Mechanism.expected_loss mech ~loss:(fun i r -> Loss.eval t.loss i r) i))
  done;
  !acc

(** Optimal deterministic remap of a deployed mechanism: for each
    output column [r], the posterior-expected-loss-minimizing
    relabel. Ties broken toward the smaller output. *)
let optimal_remap t (deployed : Mech.Mechanism.t) =
  let n = Mech.Mechanism.n deployed in
  Array.init (n + 1) (fun r ->
      let score r' =
        let acc = ref Rat.zero in
        for i = 0 to n do
          acc :=
            Rat.add !acc
              (Rat.mul t.prior.(i)
                 (Rat.mul (Mech.Mechanism.prob deployed ~input:i ~output:r) (Loss.eval t.loss i r')))
        done;
        !acc
      in
      let best = ref 0 and best_score = ref (score 0) in
      for r' = 1 to n do
        let s = score r' in
        if Rat.compare s !best_score < 0 then begin
          best := r';
          best_score := s
        end
      done;
      !best)

(** The remap as a (deterministic) stochastic matrix. *)
let remap_matrix ~n remap =
  Array.init (n + 1) (fun r ->
      Array.init (n + 1) (fun r' -> if remap.(r) = r' then Rat.one else Rat.zero))

(** Deploy mechanism + optimal remap = induced mechanism; returns it
    with its Bayesian expected loss. *)
let post_process t deployed =
  let n = Mech.Mechanism.n deployed in
  let remap = optimal_remap t deployed in
  let induced = Mech.Mechanism.compose deployed (remap_matrix ~n remap) in
  (induced, expected_loss t induced)

(** The Bayesian-optimal α-DP mechanism for this consumer (the §2.5
    analogue; linear objective, so a plain LP without the minimax
    linearization). *)
let optimal_mechanism ?solver ~alpha t ~n =
  Mech.Geometric.check_alpha alpha;
  let p = Lp.make () in
  let x = Array.init (n + 1) (fun i -> Array.init (n + 1) (fun r -> Lp.fresh_var ~name:(Printf.sprintf "x_%d_%d" i r) p)) in
  for i = 0 to n do
    Lp.add_eq p (Lp.Expr.sum (List.init (n + 1) (fun r -> Lp.Expr.var x.(i).(r)))) Rat.one
  done;
  for i = 0 to n - 1 do
    for r = 0 to n do
      Lp.add_ge p (Lp.Expr.sub (Lp.Expr.var x.(i + 1).(r)) (Lp.Expr.term alpha x.(i).(r))) Rat.zero;
      Lp.add_ge p (Lp.Expr.sub (Lp.Expr.var x.(i).(r)) (Lp.Expr.term alpha x.(i + 1).(r))) Rat.zero
    done
  done;
  let objective =
    Lp.Expr.sum
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun r ->
               let c = Rat.mul t.prior.(i) (Loss.eval t.loss i r) in
               if Rat.is_zero c then None else Some (Lp.Expr.term c x.(i).(r)))
             (List.init (n + 1) Fun.id))
         (List.init (n + 1) Fun.id))
  in
  Lp.set_objective p Lp.Minimize objective;
  let outcome =
    match solver with
    | Some s -> (Lp.Solver.solve s p).Lp.Solver.outcome
    | None -> Lp.solve p
  in
  match outcome with
  | Lp.Optimal sol ->
    let mech =
      Mech.Mechanism.make
        (Array.init (n + 1) (fun i -> Array.init (n + 1) (fun r -> sol.values.(x.(i).(r)))))
    in
    (mech, sol.objective)
  | Lp.Failed e ->
    (* The geometric mechanism satisfies every constraint and the
       expected loss is bounded below by 0, so an unbudgeted solve of
       this LP cannot fail; if it ever does, the witness names the
       solver stage instead of crashing on [assert false]. *)
    Lp.Solver_error.fail ~context:"Bayesian.optimal_mechanism" e

(** Is a post-processing matrix deterministic (every row a point
    mass)? Minimax consumers genuinely need randomization; Bayesian
    ones never do. *)
let is_deterministic (t_matrix : Rat.t array array) =
  Array.for_all
    (fun row ->
      let ones = Array.fold_left (fun acc v -> if Rat.is_one v then acc + 1 else acc) 0 row in
      let zeros = Array.fold_left (fun acc v -> if Rat.is_zero v then acc + 1 else acc) 0 row in
      ones = 1 && zeros = Array.length row - 1)
    t_matrix
