(** The consumer's optimal interaction with a deployed mechanism
    (§2.4.3): the row-stochastic reinterpretation [T] minimizing the
    minimax loss of the induced mechanism [x = y·T], found by exact
    LP. *)

type result = {
  interaction : Rat.t array array;  (** the optimal [T*] *)
  induced : Mech.Mechanism.t;  (** [x = y·T*] *)
  loss : Rat.t;  (** minimax loss of the induced mechanism *)
}

val solve_budgeted :
  ?budget:Lp.Budget.t ->
  ?solver:Lp.Solver.t ->
  deployed:Mech.Mechanism.t ->
  Consumer.t ->
  (result, Lp.Solver_error.t) Stdlib.result
(** The optimal interaction, or the typed reason the budgeted solve
    stopped. Rung 2 of the degradation ladder ({!Serve}) runs this
    against [G(n,α)]. When [solver] is given the solve runs through
    that session and may warm-start from a cached same-shaped basis;
    warm optima share the exact loss but may be a different optimal
    interaction.
    @raise Invalid_argument when consumer and mechanism ranges
    mismatch. *)

val solve : ?solver:Lp.Solver.t -> deployed:Mech.Mechanism.t -> Consumer.t -> result
(** @raise Invalid_argument when consumer and mechanism ranges
    mismatch. Always succeeds otherwise (the identity interaction is
    feasible); a solver bug falsifying that surfaces as
    {!Lp.Solver_error.Error}. *)
