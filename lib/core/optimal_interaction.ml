(** The consumer's optimal interaction with a deployed mechanism
    (§2.4.3).

    Given deployed mechanism [y] and a consumer [(l, S)], find the
    row-stochastic reinterpretation [T] minimizing the minimax loss of
    the induced mechanism [x = y·T]:

    {v
      minimize  d
      s.t.      Σ_{r,r'} y_{i,r}·l(i,r')·T_{r,r'} <= d     ∀ i ∈ S
                Σ_{r'} T_{r,r'} = 1                        ∀ r
                T_{r,r'} >= 0
    v}

    All data is exact, so the returned loss is the true optimum. *)

type result = {
  interaction : Rat.t array array;  (** the optimal [T*] *)
  induced : Mech.Mechanism.t;  (** [x = y·T*] *)
  loss : Rat.t;  (** minimax loss of the induced mechanism *)
}

let solve_budgeted ?budget ?solver ~(deployed : Mech.Mechanism.t) (consumer : Consumer.t) =
  let n = Mech.Mechanism.n deployed in
  if Consumer.n consumer <> n then
    invalid_arg "Optimal_interaction.solve: consumer range does not match mechanism";
  Obs.span ~attrs:[ ("n", Obs.Int n) ] "core.optimal_interaction" @@ fun () ->
  let p = Lp.make () in
  let t_var = Array.init (n + 1) (fun r -> Array.init (n + 1) (fun r' -> Lp.fresh_var ~name:(Printf.sprintf "T_%d_%d" r r') p)) in
  let d = Lp.fresh_var ~name:"d" p in
  (* Row-stochasticity of T. *)
  for r = 0 to n do
    Lp.add_eq p (Lp.Expr.sum (List.init (n + 1) (fun r' -> Lp.Expr.var t_var.(r).(r')))) Rat.one
  done;
  (* Loss bound for each i in S. *)
  let loss = Consumer.loss consumer in
  List.iter
    (fun i ->
      let terms =
        List.concat_map
          (fun r ->
            let y_ir = Mech.Mechanism.prob deployed ~input:i ~output:r in
            if Rat.is_zero y_ir then []
            else
              List.filter_map
                (fun r' ->
                  let coeff = Rat.mul y_ir (Loss.eval loss i r') in
                  if Rat.is_zero coeff then None
                  else Some (Lp.Expr.term coeff t_var.(r).(r')))
                (List.init (n + 1) Fun.id))
          (List.init (n + 1) Fun.id)
      in
      Lp.add_le p (Lp.Expr.sub (Lp.Expr.sum terms) (Lp.Expr.var d)) Rat.zero)
    (Side_info.members (Consumer.side_info consumer));
  Lp.set_objective p Lp.Minimize (Lp.Expr.var d);
  let outcome =
    match solver with
    | Some s -> (Lp.Solver.solve ?budget s p).Lp.Solver.outcome
    | None -> Lp.solve ?budget p
  in
  match outcome with
  | Lp.Optimal sol ->
    let interaction =
      Array.init (n + 1) (fun r -> Array.init (n + 1) (fun r' -> sol.values.(t_var.(r).(r'))))
    in
    let induced = Mech.Mechanism.compose deployed interaction in
    Ok { interaction; induced; loss = sol.objective }
  | Lp.Failed e -> Error e

let solve ?solver ~deployed consumer =
  match solve_budgeted ?solver ~deployed consumer with
  | Ok r -> r
  | Error e ->
    (* The identity interaction is always feasible and the loss is
       bounded below by 0, so an unbudgeted solve cannot fail. *)
    Lp.Solver_error.fail ~context:"Optimal_interaction.solve" e
