(** Algorithm 1: releasing the query result at multiple privacy levels
    in a collusion-resistant way (§2.6, §4.1).

    Privacy levels [α₁ < α₂ < … < α_k] (larger α = more private). The
    cascade first applies the [α₁]-geometric mechanism, then each stage
    [i → i+1] re-randomizes through the stochastic matrix
    [T_{αᵢ,αᵢ₊₁} = G(n,αᵢ)⁻¹·G(n,αᵢ₊₁)] of Lemma 3, so the marginal of
    stage [i] is exactly the [αᵢ]-geometric mechanism while the joint
    release is a Markov chain — colluders learn nothing beyond the
    least-private result (Lemma 4). *)

module Qm = Linalg.Matrix.Q

exception
  Lemma3_violated of {
    alpha : Rat.t;
    beta : Rat.t;
    violations : Mech.Derivability.violation list;
  }

(** Lemma 3: the stochastic matrix [T] with [G(n,β) = G(n,α)·T], for
    [α ≤ β]. Lemma 3 proves the factor is always stochastic; should
    arithmetic ever disagree, the exception carries the exact
    Theorem-2 witnesses instead of swallowing them in a string. *)
let transition ~n ~alpha ~beta =
  Mech.Geometric.check_alpha alpha;
  Mech.Geometric.check_alpha beta;
  if Rat.compare alpha beta > 0 then
    invalid_arg "Multi_level.transition: need alpha <= beta (privacy can only be added)";
  Obs.span
    ~attrs:[ ("n", Obs.Int n); ("alpha", Obs.Rat alpha); ("beta", Obs.Rat beta) ]
    "multilevel.transition"
  @@ fun () ->
  let g_beta = Mech.Geometric.matrix ~n ~alpha:beta in
  match Mech.Derivability.derive ~alpha g_beta with
  | Mech.Derivability.Derivable t -> t
  | Mech.Derivability.Not_derivable violations ->
    raise (Lemma3_violated { alpha; beta; violations })

type plan = {
  n : int;
  levels : Rat.t array;  (** strictly increasing α's *)
  first : Mech.Mechanism.t;  (** G(n, α₁) *)
  stages : Rat.t array array array;  (** stages.(i) maps level i to i+1 *)
}

let make_plan ~n ~levels =
  (match levels with
   | [] -> invalid_arg "Multi_level.make_plan: no levels"
   | _ -> ());
  let arr = Array.of_list levels in
  Array.iter Mech.Geometric.check_alpha arr;
  for i = 0 to Array.length arr - 2 do
    if Rat.compare arr.(i) arr.(i + 1) >= 0 then
      invalid_arg "Multi_level.make_plan: levels must be strictly increasing"
  done;
  Obs.span
    ~attrs:[ ("n", Obs.Int n); ("levels", Obs.Int (Array.length arr)) ]
    "multilevel.plan"
  @@ fun () ->
  let first = Mech.Geometric.matrix ~n ~alpha:arr.(0) in
  let stages =
    Array.init
      (Array.length arr - 1)
      (fun i ->
        Obs.span ~attrs:[ ("stage", Obs.Int i) ] "multilevel.stage" @@ fun () ->
        Resilience.Fault.trip "multilevel.stage";
        transition ~n ~alpha:arr.(i) ~beta:arr.(i + 1))
  in
  { n; levels = arr; first; stages }

(** Run Algorithm 1: produce one correlated result per level. *)
let release plan ~true_result rng =
  if true_result < 0 || true_result > plan.n then
    invalid_arg "Multi_level.release: result out of range";
  Obs.span ~attrs:[ ("levels", Obs.Int (Array.length plan.levels)) ] "multilevel.release"
  @@ fun () ->
  let k = Array.length plan.levels in
  let out = Array.make k 0 in
  let r1 = Mech.Mechanism.sample plan.first ~input:true_result rng in
  out.(0) <- r1;
  for i = 1 to k - 1 do
    let t = plan.stages.(i - 1) in
    let row = t.(out.(i - 1)) in
    let dist = Prob.Discrete.of_rat_row row in
    out.(i) <- Prob.Discrete.sample dist rng
  done;
  out

(** Exact marginal of stage [i] (0-based): the matrix product
    [G(n,α₁)·T₁·…·Tᵢ], which Lemma 3 makes equal to [G(n,αᵢ₊₁)].
    Exposed so tests can assert the equality. *)
let stage_marginal plan i =
  if i < 0 || i >= Array.length plan.levels then invalid_arg "Multi_level.stage_marginal";
  let acc = ref (Mech.Mechanism.matrix plan.first) in
  for j = 0 to i - 1 do
    acc := Qm.mul !acc plan.stages.(j)
  done;
  Mech.Mechanism.make !acc

(** Lemma 4, computational form. Colluders [C] observe the tuple
    [(r_c)_{c∈C}]; because the cascade is a Markov chain whose
    transitions do not involve the database, the posterior over the
    true result given all of [R(C)] equals the posterior given the
    least-private element alone. [posterior] computes, for a uniform
    prior over inputs, the exact posterior given a joint observation —
    tests compare it against the single-observation posterior. *)
let posterior plan ~observed =
  Obs.span ~attrs:[ ("observations", Obs.Int (List.length observed)) ] "multilevel.posterior"
  @@ fun () ->
  (* observed : (level_index, value) list, sorted by level. *)
  let k = Array.length plan.levels in
  List.iter
    (fun (i, v) ->
      if i < 0 || i >= k || v < 0 || v > plan.n then invalid_arg "Multi_level.posterior")
    observed;
  let observed = List.sort compare observed in
  (* Joint likelihood of the observation chain given input i0:
     G(i0, r_{c1}) · Π T-path(r_{c_j} → r_{c_{j+1}}). The path between
     two observed levels is the product of the intermediate stage
     matrices. *)
  let path_matrix lo hi =
    (* product of stages lo..hi-1, identity when lo = hi *)
    let acc = ref (Qm.identity (plan.n + 1)) in
    for j = lo to hi - 1 do
      acc := Qm.mul !acc plan.stages.(j)
    done;
    !acc
  in
  match observed with
  | [] -> invalid_arg "Multi_level.posterior: nothing observed"
  | (first_level, first_value) :: rest ->
    let first_marginal = stage_marginal plan first_level in
    let likelihood = Array.make (plan.n + 1) Rat.zero in
    for i0 = 0 to plan.n do
      (* chain contribution independent of i0 is factored out: the
         posterior over i0 only involves the first observation, but we
         compute the full joint to *verify* that fact. *)
      let l = ref (Mech.Mechanism.prob first_marginal ~input:i0 ~output:first_value) in
      let prev_level = ref first_level and prev_value = ref first_value in
      List.iter
        (fun (level, value) ->
          let m = path_matrix !prev_level level in
          l := Rat.mul !l m.(!prev_value).(value);
          prev_level := level;
          prev_value := value)
        rest;
      likelihood.(i0) <- !l
    done;
    let total = Array.fold_left Rat.add Rat.zero likelihood in
    if Rat.is_zero total then None
    else Some (Array.map (fun l -> Rat.div l total) likelihood)
