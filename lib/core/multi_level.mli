(** Algorithm 1: releasing the query result at multiple privacy levels
    in a collusion-resistant way (§2.6, §4.1).

    The cascade applies the strongest-utility geometric mechanism
    first, then adds privacy stage by stage through the stochastic
    matrices of Lemma 3; each stage's marginal is exactly its own
    geometric mechanism, while colluders learn nothing beyond the
    least-private release (Lemma 4). *)

exception
  Lemma3_violated of {
    alpha : Rat.t;
    beta : Rat.t;
    violations : Mech.Derivability.violation list;
  }
(** Raised by {!transition} if the Lemma-3 factor fails to be
    stochastic — mathematically impossible, so seeing this means an
    arithmetic bug; the payload carries the exact Theorem-2 witnesses
    for the postmortem. *)

val transition : n:int -> alpha:Rat.t -> beta:Rat.t -> Rat.t array array
(** Lemma 3's [T_{α,β} = G(n,α)⁻¹·G(n,β)], row-stochastic whenever
    [α ≤ β]. @raise Invalid_argument on bad levels or [α > β].
    @raise Lemma3_violated on arithmetic corruption (never, absent
    bugs). *)

type plan = {
  n : int;
  levels : Rat.t array;  (** strictly increasing α's *)
  first : Mech.Mechanism.t;  (** [G(n, α₁)] *)
  stages : Rat.t array array array;  (** [stages.(i)] maps level [i] to [i+1] *)
}

val make_plan : n:int -> levels:Rat.t list -> plan
(** @raise Invalid_argument when levels are empty, invalid, or not
    strictly increasing. *)

val release : plan -> true_result:int -> Prob.Rng.t -> int array
(** Run Algorithm 1: one correlated result per level, least private
    first. @raise Invalid_argument on an out-of-range result. *)

val stage_marginal : plan -> int -> Mech.Mechanism.t
(** Exact marginal of stage [i] — equal to [G(n, αᵢ)] by Lemma 3;
    exposed so tests can assert the equality. *)

val posterior : plan -> observed:(int * int) list -> Rat.t array option
(** Exact posterior over the true result (uniform prior) given joint
    observations [(level, value)]. [None] for probability-zero
    observations. Lemma 4 manifests as: the posterior given any
    observation set equals the posterior given its least-private
    element alone. *)
