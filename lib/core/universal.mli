(** Theorem 1, part 2 — the universality pipeline: deploy the geometric
    mechanism once; every rational minimax consumer recovers exactly
    the utility of the mechanism tailored to it. *)

type comparison = {
  consumer : Consumer.t;
  alpha : Rat.t;
  tailored_loss : Rat.t;  (** optimum of the §2.5 LP *)
  universal_loss : Rat.t;  (** geometric + optimal interaction (§2.4.3) *)
  naive_loss : Rat.t;  (** geometric taken at face value *)
  interaction : Rat.t array array;
  induced : Mech.Mechanism.t;
}

val compare_for : ?solver:Lp.Solver.t -> alpha:Rat.t -> Consumer.t -> comparison
(** Solve both sides for one consumer. A shared [solver] session
    warm-starts each LP from the cached basis of an earlier same-shaped
    solve — the loss equality being checked is a value equality, so it
    is insensitive to which optimal vertex a warm solve reports. *)

val universality_holds : comparison -> bool
(** Exact rational equality of the tailored and universal losses. *)

val induced_is_private : comparison -> bool
(** The induced mechanism is itself α-DP (post-processing cannot leak). *)

val sweep :
  ?solver:Lp.Solver.t ->
  alpha:Rat.t ->
  losses:Loss.t list ->
  side_infos:Side_info.t list ->
  unit ->
  comparison list
(** Cartesian grid of consumers; used by the THM1 bench and property
    tests. [solver] is shared across the whole grid. *)

val default_side_infos : int -> Side_info.t list
(** A representative side-information grid for range [n]: full,
    lower-bound, upper-bound, interval, and a sparse set. *)
