(** Privacy accounting in the paper's multiplicative [α] scale.

    The paper parametrizes differential privacy by [α ∈ [0,1]]: a
    mechanism is α-DP when neighboring databases induce output
    probabilities within a factor [1/α] of each other. In the standard
    [ε] parametrization, [α = e^{-ε}]; composition laws become
    {e products} in α where they are sums in ε:

    - sequential composition of α₁- and α₂-DP releases is (α₁·α₂)-DP;
    - k-fold composition of α-DP is α^k-DP;
    - group privacy for groups of size g degrades α-DP to α^g-DP;
    - post-processing preserves the level (Lemma 3 territory).

    All exact, no approximation — one more payoff of the rational
    parametrization. *)

let check alpha =
  if Rat.sign alpha < 0 || Rat.compare alpha Rat.one > 0 then
    invalid_arg "Accounting: privacy level must lie in [0,1]"

(** Level of the joint release of two independent mechanisms. *)
let sequential a b =
  check a;
  check b;
  Rat.mul a b

(** Level of [k] independent releases of an [alpha]-DP mechanism. *)
let compose_k ~k alpha =
  if k < 0 then invalid_arg "Accounting.compose_k: negative k";
  check alpha;
  Rat.pow alpha k

(** Parallel composition: mechanisms run on {e disjoint} sub-databases
    jointly enjoy the worst (smallest... careful: strongest privacy =
    largest α; the joint guarantee is the weakest of the parts, the
    minimum α). *)
let parallel levels =
  match levels with
  | [] -> invalid_arg "Accounting.parallel: no mechanisms"
  | first :: rest ->
    List.iter check levels;
    List.fold_left Rat.min first rest

(** Group privacy: protection for a coalition of [g] individuals. *)
let group ~g alpha =
  if g < 1 then invalid_arg "Accounting.group: group size must be >= 1";
  check alpha;
  Rat.pow alpha g

(** Largest per-release level α (i.e. strongest per-release privacy)
    such that [k] releases still meet a total budget [total]:
    the exact rational α with α^k ≤ total, as the k-th root is
    irrational in general we return the budget check function instead:
    [fits ~k ~per_release ~total]. *)
let fits ~k ~per_release ~total =
  check per_release;
  check total;
  Rat.compare (compose_k ~k per_release) total >= 0

(** Convert to/from the additive ε scale (floating point, for
    reporting only — the library's source of truth is α). *)
(* analysis: float-ok — ε-scale conversion is for reporting only; the
   library's source of truth stays the exact α. *)
let epsilon_of_alpha alpha =
  check alpha;
  if Rat.is_zero alpha then infinity else -.log (Rat.to_float alpha)

(* analysis: float-ok — entry boundary: exp(-ε) is captured
   immediately as an exact dyadic rational. *)
let alpha_of_epsilon eps =
  if eps < 0.0 then invalid_arg "Accounting.alpha_of_epsilon: negative epsilon";
  Rat.of_float_dyadic (exp (-.eps))

(** Like {!alpha_of_epsilon} but with a small denominator (best
    continued-fraction approximation): [ε = ln 2] becomes [1/2]-ish
    instead of a 53-bit dyadic. The result is clamped into [0,1]. *)
let alpha_of_epsilon_approx ?(max_den = Bigint.of_int 1000) eps =
  let raw = alpha_of_epsilon eps in
  let approx = Rat.approximate ~max_den raw in
  Rat.max Rat.zero (Rat.min Rat.one approx)

(** Empirical composition check: the joint mechanism releasing
    independent samples [(x(i), y(i))] of two oblivious mechanisms has
    joint output probabilities [x_{i,r}·y_{i,s}]; verify the
    (α₁·α₂)-DP bound column-by-column. Used by tests to validate the
    sequential law against the matrix semantics. *)
let sequential_law_holds m1 m2 =
  let n = Mechanism.n m1 in
  if Mechanism.n m2 <> n then invalid_arg "Accounting.sequential_law_holds: size mismatch";
  let a1 = Mechanism.privacy_level m1 and a2 = Mechanism.privacy_level m2 in
  let bound = Rat.mul a1 a2 in
  let ok = ref true in
  for i = 0 to n - 1 do
    for r = 0 to n do
      for s = 0 to n do
        let p = Rat.mul (Mechanism.prob m1 ~input:i ~output:r) (Mechanism.prob m2 ~input:i ~output:s) in
        let p' =
          Rat.mul
            (Mechanism.prob m1 ~input:(i + 1) ~output:r)
            (Mechanism.prob m2 ~input:(i + 1) ~output:s)
        in
        if Rat.compare (Rat.mul bound p) p' > 0 || Rat.compare (Rat.mul bound p') p > 0 then
          ok := false
      done
    done
  done;
  !ok
