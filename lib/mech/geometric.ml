(** The geometric mechanism, in both of the paper's forms.

    - Definition 1: unbounded — output [true + Z] where
      [Pr[Z = z] = (1-α)/(1+α) · α^{|z|}] over all integers [z].
    - Definition 4: range-restricted — outputs clamped to [{0..n}],
      boundary outputs absorbing the two tails. The two are equivalent
      (each derivable from the other); the matrix form below is the
      ground truth for all exact computations. *)

(** Validity check for a privacy parameter: the theory needs
    [0 < α < 1] (at [α = 0] privacy is vacuous; at [α = 1] the matrix
    is constant and singular). *)
let check_alpha alpha =
  if Rat.sign alpha <= 0 || Rat.compare alpha Rat.one >= 0 then
    invalid_arg "Geometric: alpha must satisfy 0 < alpha < 1"

(** Range-restricted geometric mechanism [G(n,α)] (Definition 4). *)
let matrix ~n ~alpha =
  check_alpha alpha;
  if n < 1 then invalid_arg "Geometric.matrix: n must be >= 1";
  Obs.span ~attrs:[ ("n", Obs.Int n); ("alpha", Obs.Rat alpha) ] "geometric.matrix" @@ fun () ->
  let one_plus = Rat.add Rat.one alpha in
  let boundary = Rat.inv one_plus in
  let interior = Rat.div (Rat.sub Rat.one alpha) one_plus in
  let entry k z =
    let scale = if z = 0 || z = n then boundary else interior in
    Rat.mul scale (Rat.pow alpha (abs (z - k)))
  in
  Mechanism.make (Array.init (n + 1) (fun k -> Array.init (n + 1) (entry k)))

(** The scaled matrix [G'(n,α)] from §3: columns 0 and n of [G]
    multiplied by [(1+α)], all others by [(1+α)/(1-α)] — i.e. entries
    are simply [α^{|i-j|}]. Used by Lemma 1/2 proofs; singular-free. *)
let scaled_matrix ~n ~alpha : Rat.t array array =
  check_alpha alpha;
  Array.init (n + 1) (fun i -> Array.init (n + 1) (fun j -> Rat.pow alpha (abs (i - j))))

(** Closed form of Lemma 1: [det G'(n,α) = (1 − α²)^n] for the
    [(n+1) × (n+1)] matrix (the paper indexes by matrix dimension; with
    dimension [m] the determinant is [(1−α²)^(m−1)]). *)
let scaled_determinant ~n ~alpha =
  check_alpha alpha;
  Rat.pow (Rat.sub Rat.one (Rat.mul alpha alpha)) n

(** Probability mass of the unbounded two-sided geometric noise
    (Definition 1) at offset [z]. *)
let unbounded_noise_pmf ~alpha z =
  check_alpha alpha;
  Rat.mul (Rat.div (Rat.sub Rat.one alpha) (Rat.add Rat.one alpha)) (Rat.pow alpha (abs z))

(** Pmf of the unbounded mechanism's output at [z] given true value
    [center]. *)
let unbounded_pmf ~alpha ~center z = unbounded_noise_pmf ~alpha (z - center)

(** Sample the two-sided geometric noise [Z] (Definition 1).

    Decomposition: [Z = 0] with probability [(1-α)/(1+α)]; otherwise a
    uniform sign and magnitude [m ≥ 1] geometric with
    [Pr[m = k] ∝ α^k]. *)
(* analysis: float-ok — inversion sampling deliberately runs in the
   float mirror; the mechanism's matrix entries stay exact rationals
   and are certified separately. *)
let sample_noise ~alpha rng =
  let a = Rat.to_float alpha in
  let p_zero = (1.0 -. a) /. (1.0 +. a) in
  if Prob.Rng.float rng < p_zero then 0
  else begin
    let sign = if Prob.Rng.bool rng then 1 else -1 in
    (* Geometric on {1,2,...} with success prob 1-a via inversion. *)
    let u = Prob.Rng.float rng in
    let magnitude = 1 + int_of_float (Float.floor (log1p (-.u) /. log a)) in
    sign * max 1 magnitude
  end

(** Unbounded geometric mechanism: the true result plus noise. *)
let sample_unbounded ~alpha ~input rng = input + sample_noise ~alpha rng

(** Range-restricted sampling by clamping the unbounded draw — tests
    verify this induces exactly [matrix ~n ~alpha]. *)
let sample_clamped ~n ~alpha ~input rng =
  let z = sample_unbounded ~alpha ~input rng in
  if z < 0 then 0 else if z > n then n else z

(** Definition 2 holds for the geometric mechanism at its own [α]. *)
let is_self_dp ~n ~alpha = Mechanism.is_dp ~alpha (matrix ~n ~alpha)
