(** Baseline mechanisms the reproduction compares against.

    The paper's headline claim is that the geometric mechanism is
    universally optimal; the natural comparison set is the other
    classic α-DP mechanisms for a bounded count:

    - the (discretized, truncated) Laplace mechanism of Dwork et al.;
    - randomized response over the result range;
    - the exponential mechanism of McSherry–Talwar with score
      [−|i−r|]. *)

(** Truncated discrete Laplace: mass proportional to [α^{|i−r|}]
    renormalized over [{0..n}] per row. Unlike the range-restricted
    geometric (which *clamps* tails onto the boundary), truncation
    *renormalizes*, which is exactly why it loses optimality — and, for
    small [n], even α-differential privacy at the nominal level. *)
let truncated_laplace ~n ~alpha =
  Geometric.check_alpha alpha;
  let row k =
    let masses = Array.init (n + 1) (fun z -> Rat.pow alpha (abs (z - k))) in
    let total = Array.fold_left Rat.add Rat.zero masses in
    Array.map (fun m -> Rat.div m total) masses
  in
  Mechanism.make (Array.init (n + 1) row)

(** Randomized response on [{0..n}]: release the true count with
    probability [p], otherwise a uniform value. Choosing
    [p = (1-α)/(1-α+α(n+1)) · something] is fiddly; we expose [p]
    directly and provide [rr_alpha_dp] returning the strongest DP level
    of the resulting mechanism. *)
let randomized_response ~n ~p =
  if Rat.sign p < 0 || Rat.compare p Rat.one > 0 then
    invalid_arg "Baselines.randomized_response: p must lie in [0,1]";
  let u = Rat.div (Rat.sub Rat.one p) (Rat.of_int (n + 1)) in
  let row i = Array.init (n + 1) (fun r -> if r = i then Rat.add p u else u) in
  Mechanism.make (Array.init (n + 1) row)

(** The largest [p] for which randomized response over [{0..n}] is
    [alpha]-DP: neighbor ratio is [(p+u)/u] with [u = (1-p)/(n+1)], so
    we need [(p+u)/u <= 1/alpha], i.e.
    [p <= (1-α) / (α·n + 1)]. *)
let rr_max_p ~n ~alpha =
  Geometric.check_alpha alpha;
  Rat.div (Rat.sub Rat.one alpha) (Rat.add (Rat.mul_int alpha n) Rat.one)

(** Randomized response tuned to exactly reach privacy level [alpha]. *)
let randomized_response_dp ~n ~alpha = randomized_response ~n ~p:(rr_max_p ~n ~alpha)

(** Exponential mechanism (McSherry–Talwar) with utility [−|i−r|] over
    range [{0..n}]: mass proportional to [β^{|i−r|}], renormalized per
    row. The standard sensitivity argument gives [β²]-DP for a
    sensitivity-1 score, so a fair comparison at privacy level [α]
    uses [β = √α]; since [√α] is irrational for most rationals we keep
    [β] as the explicit parameter and run the benchmark grid on [α]
    values with rational square roots (1/4, 4/9, 9/16, …). *)
let exponential ~n ~beta =
  Geometric.check_alpha beta;
  let row i =
    let masses = Array.init (n + 1) (fun r -> Rat.pow beta (abs (r - i))) in
    let total = Array.fold_left Rat.add Rat.zero masses in
    Array.map (fun m -> Rat.div m total) masses
  in
  Mechanism.make (Array.init (n + 1) row)

(** Exponential mechanism tuned for [alpha]-DP when [alpha] has a
    rational square root; [None] otherwise. *)
let exponential_dp ~n ~alpha =
  Geometric.check_alpha alpha;
  Option.map (fun beta -> exponential ~n ~beta) (Rat.sqrt_exact alpha)

(** Continuous Laplace rounded to the nearest integer then clamped —
    the float-world baseline a practitioner would deploy. Sampler
    only (its matrix involves transcendentals). *)
(* analysis: float-ok — the rounded-Laplace baseline is defined in
   floating point on purpose: it is the practitioner mechanism the
   exact ones are compared against, never an input to the solvers. *)
let sample_rounded_laplace ~n ~alpha ~input rng =
  let a = Rat.to_float alpha in
  let b = -1.0 /. log a in
  (* scale so that e^{-1/b} = alpha *)
  let u = Prob.Rng.float rng -. 0.5 in
  let noise = -.b *. Float.copy_sign (log1p (-2.0 *. Float.abs u)) u in
  let z = input + int_of_float (Float.round noise) in
  if z < 0 then 0 else if z > n then n else z
