(** Theorem 2: which mechanisms can be derived from the geometric
    mechanism?

    A differentially private mechanism [M] is derivable from [G(n,α)]
    (i.e. [M = G·T] for a row-stochastic [T]) iff every three
    consecutive entries [x1, x2, x3] in every column satisfy

    {v (1 + α²)·x2 − α·(x1 + x3) >= 0 v}

    together with the boundary conditions from Lemma 2
    ([x_0 >= α·x_1] at the top of a column, [x_n >= α·x_{n−1}] at the
    bottom — these are exactly the DP constraints, restated). This
    module provides both the syntactic test and the constructive
    factorization [T = G⁻¹·M], with each path validating the other. *)

module Qm = Linalg.Matrix.Q

type violation = {
  column : int;
  row : int;  (** index of the middle entry [x2] *)
  slack : Rat.t;  (** [(1+α²)·x2 − α·(x1+x3)], negative here *)
}

(** All violations of the three-consecutive-entries condition. *)
let condition_violations ~alpha m =
  let n = Mechanism.n m in
  let out = ref [] in
  for c = 0 to n do
    for i = 1 to n - 1 do
      let x1 = Mechanism.prob m ~input:(i - 1) ~output:c in
      let x2 = Mechanism.prob m ~input:i ~output:c in
      let x3 = Mechanism.prob m ~input:(i + 1) ~output:c in
      let slack =
        Rat.sub
          (Rat.mul (Rat.add Rat.one (Rat.mul alpha alpha)) x2)
          (Rat.mul alpha (Rat.add x1 x3))
      in
      if Rat.sign slack < 0 then out := { column = c; row = i; slack } :: !out
    done
  done;
  List.rev !out

(** Syntactic side of Theorem 2 (for differentially private [m]). *)
let satisfies_condition ~alpha m = condition_violations ~alpha m = []

(** Constructive side: the unique generalized-stochastic [T] with
    [M = G(n,α)·T]. [G] is non-singular (Lemma 1), so [T = G⁻¹·M]
    always exists; derivability holds iff [T] is entrywise
    non-negative. *)
let factor ~alpha m =
  let n = Mechanism.n m in
  Obs.span ~attrs:[ ("n", Obs.Int n) ] "derivability.factor" @@ fun () ->
  Resilience.Fault.trip "mech.factor";
  let g = Mechanism.matrix (Geometric.matrix ~n ~alpha) in
  match Qm.inverse g with
  | None -> invalid_arg "Derivability.factor: geometric matrix singular (impossible for 0<alpha<1)"
  | Some g_inv -> Qm.mul g_inv (Mechanism.matrix m)

type verdict =
  | Derivable of Rat.t array array  (** the stochastic post-processing [T] *)
  | Not_derivable of violation list

(** Full check: factor and classify. The returned [T] is certified
    row-stochastic; the violation list is the Theorem-2 witness. *)
let derive ~alpha m =
  let t = factor ~alpha m in
  if Qm.is_nonnegative t then begin
    assert (Qm.is_generalized_stochastic t);
    Derivable t
  end
  else begin
    let violations = condition_violations ~alpha m in
    Obs.incr ~by:(List.length violations) "derivability.violations";
    Not_derivable violations
  end

let is_derivable ~alpha m = match derive ~alpha m with Derivable _ -> true | Not_derivable _ -> false

(** Appendix B's counterexample: a ½-DP mechanism that is not derivable
    from [G(3,½)]. *)
let appendix_b_mechanism () =
  let q = Rat.of_ints in
  Mechanism.of_rows
    [
      [ q 1 9; q 2 9; q 4 9; q 2 9 ];
      [ q 2 9; q 1 9; q 2 9; q 4 9 ];
      [ q 4 9; q 2 9; q 1 9; q 2 9 ];
      [ q 13 18; q 1 9; q 1 18; q 1 9 ];
    ]
