(** Empirical statistics for validating samplers against their target
    distributions: empirical pmf, moments, χ² goodness-of-fit, and
    distances between empirical and exact distributions. *)

type summary = { count : int; mean : float; variance : float; min : int; max : int }

let summarize (xs : int array) =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let sum = Array.fold_left (fun acc x -> acc +. float_of_int x) 0.0 xs in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left
      (fun acc x ->
        let d = float_of_int x -. mean in
        acc +. (d *. d))
      0.0 xs
    /. float_of_int n
  in
  let mn = Array.fold_left min xs.(0) xs and mx = Array.fold_left max xs.(0) xs in
  { count = n; mean; variance = var; min = mn; max = mx }

(** Empirical distribution of a sample. *)
let empirical (xs : int array) : Discrete.t =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun x -> Hashtbl.replace tbl x (1.0 +. Option.value ~default:0.0 (Hashtbl.find_opt tbl x)))
    xs;
  Discrete.of_assoc (Hashtbl.fold (fun v c acc -> (v, c) :: acc) tbl [])

(** Pearson χ² statistic of [xs] against target distribution [d].
    Cells with expected count below [min_expected] (default 5) are
    pooled into their neighbour to keep the statistic valid. Returns
    [(statistic, degrees_of_freedom)]. *)
let chi_square ?(min_expected = 5.0) (xs : int array) (d : Discrete.t) =
  let n = float_of_int (Array.length xs) in
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun x -> Hashtbl.replace counts x (1 + Option.value ~default:0 (Hashtbl.find_opt counts x)))
    xs;
  let support = Discrete.support d in
  (* Pool consecutive cells until the expected mass is large enough. *)
  let cells = ref [] in
  let acc_obs = ref 0.0 and acc_exp = ref 0.0 in
  Array.iter
    (fun v ->
      acc_obs := !acc_obs +. float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts v));
      acc_exp := !acc_exp +. (n *. Discrete.mass d v);
      if !acc_exp >= min_expected then begin
        cells := (!acc_obs, !acc_exp) :: !cells;
        acc_obs := 0.0;
        acc_exp := 0.0
      end)
    support;
  (* Fold any trailing partial cell into the last complete one. *)
  (match !cells with
   | (o, e) :: rest when !acc_exp > 0.0 ->
     cells := (o +. !acc_obs, e +. !acc_exp) :: rest
   | _ -> ());
  let cells = !cells in
  let stat =
    List.fold_left
      (fun acc (obs, exp) ->
        let d = obs -. exp in
        acc +. (d *. d /. exp))
      0.0 cells
  in
  (stat, max 1 (List.length cells - 1))

(** Conservative critical value of the χ² distribution at significance
    level ~0.001 via the Wilson–Hilferty cube approximation. Good
    enough for pass/fail sampler tests. *)
let chi_square_critical_p001 df =
  let z = 3.09 in
  let dff = float_of_int df in
  let t = 1.0 -. (2.0 /. (9.0 *. dff)) +. (z *. sqrt (2.0 /. (9.0 *. dff))) in
  dff *. t *. t *. t

(** Does the sample pass a χ² goodness-of-fit test against [d] at the
    ~0.1% significance level? *)
let fits ?(min_expected = 5.0) (xs : int array) (d : Discrete.t) =
  let stat, df = chi_square ~min_expected xs d in
  stat <= chi_square_critical_p001 df

(** Total-variation distance between a sample and a target. *)
let empirical_tv (xs : int array) (d : Discrete.t) =
  Discrete.total_variation (empirical xs) d

(** Draw [n] samples from a distribution. *)
let draw (d : Discrete.t) rng n = Array.init n (fun _ -> Discrete.sample d rng)

(** Kolmogorov–Smirnov statistic of a sample against a target
    distribution: the sup-distance between empirical and target CDFs
    over the union of supports. *)
let ks_statistic (xs : int array) (d : Discrete.t) =
  if Array.length xs = 0 then invalid_arg "Stats.ks_statistic: empty sample";
  let n = float_of_int (Array.length xs) in
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let values =
    Array.to_list (Discrete.support d) @ Array.to_list sorted |> List.sort_uniq compare
  in
  (* empirical CDF at v: #(xs <= v)/n via binary search over sorted *)
  let ecdf v =
    let lo = ref 0 and hi = ref (Array.length sorted) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if sorted.(mid) <= v then lo := mid + 1 else hi := mid
    done;
    float_of_int !lo /. n
  in
  let cdf = ref 0.0 and worst = ref 0.0 in
  List.iter
    (fun v ->
      cdf := !cdf +. Discrete.mass d v;
      let diff = Float.abs (ecdf v -. !cdf) in
      if diff > !worst then worst := diff)
    values;
  !worst

(** KS acceptance at significance ≈0.001: statistic below
    [c(0.001)/√n] with [c ≈ 1.95] (asymptotic critical value). *)
let ks_fits (xs : int array) (d : Discrete.t) =
  let n = float_of_int (Array.length xs) in
  ks_statistic xs d <= 1.95 /. sqrt n

(** Wilson score interval for a Bernoulli proportion: given [successes]
    out of [trials], the ~99.9% confidence interval (z = 3.29). Used to
    bound Monte-Carlo estimates in experiments. *)
let wilson_interval ~successes ~trials =
  if trials <= 0 || successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval";
  let z = 3.29 in
  let n = float_of_int trials and p = float_of_int successes /. float_of_int trials in
  let z2 = z *. z in
  let denom = 1.0 +. (z2 /. n) in
  let centre = (p +. (z2 /. (2.0 *. n))) /. denom in
  let half = z *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n))) /. denom in
  (Float.max 0.0 (centre -. half), Float.min 1.0 (centre +. half))
