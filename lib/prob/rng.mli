(** Deterministic pseudo-random number generator (splitmix64).

    Every sampler in the repository takes an explicit generator so that
    experiments are reproducible from a seed; no global random state is
    used anywhere. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh generator; default seed is the splitmix64 golden-ratio
    constant. *)

val of_int : int -> t
(** Generator seeded from an integer. *)

val copy : t -> t
(** Independent clone that will replay the same stream. *)

val next_int64 : t -> int64
(** Next raw 64-bit output; advances the state. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 random mantissa bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)], without modulo bias.
    @raise Invalid_argument when [bound <= 0]. *)

val bool : t -> bool
(** Fair coin. *)

val split : t -> t
(** Derive a generator with an independent stream (for parallel
    experiment arms); advances the parent. *)

val streams : t -> int -> t array
(** [streams t k] is [k] sequential {!split}s of [t]. Stream [i]
    depends only on [t]'s state and [i] — not on scheduling — so a
    worker pool that indexes streams by job produces identical output
    for any worker count. @raise Invalid_argument on negative [k]. *)
