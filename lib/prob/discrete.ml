(** Discrete probability distributions over integer supports.

    A distribution is a normalized probability mass function stored as
    [(value, mass)] pairs with float masses. Two samplers are provided:
    inverse-CDF (simple, O(support)) and Walker's alias method
    (O(1) per draw after O(support) setup) for the sampling-throughput
    benchmarks. *)

type t = {
  support : int array;  (** strictly increasing *)
  pmf : float array;  (** same length, sums to 1 (±1e-9) *)
  cdf : float array;  (** running sums, last entry is 1 *)
}

let normalization_tolerance = 1e-9

let of_assoc pairs =
  List.iter
    (fun (_, p) -> if p < 0.0 then invalid_arg "Discrete.of_assoc: negative mass")
    pairs;
  let pairs = List.filter (fun (_, p) -> p > 0.0) pairs in
  if pairs = [] then invalid_arg "Discrete.of_assoc: empty distribution";
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (v, p) ->
      Hashtbl.replace tbl v (p +. Option.value ~default:0.0 (Hashtbl.find_opt tbl v)))
    pairs;
  (* analysis: order-insensitive — the fold's result is immediately
     sorted by support value. *)
  let items = Hashtbl.fold (fun v p acc -> (v, p) :: acc) tbl [] in
  let items = List.sort (fun (a, _) (b, _) -> compare a b) items in
  let total = List.fold_left (fun acc (_, p) -> acc +. p) 0.0 items in
  if total <= 0.0 then invalid_arg "Discrete.of_assoc: zero total mass";
  let support = Array.of_list (List.map fst items) in
  let pmf = Array.of_list (List.map (fun (_, p) -> p /. total) items) in
  let cdf = Array.make (Array.length pmf) 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i p ->
      acc := !acc +. p;
      cdf.(i) <- !acc)
    pmf;
  cdf.(Array.length cdf - 1) <- 1.0;
  { support; pmf; cdf }

(** Build from a row of exact rationals interpreted as masses on
    [0 .. length-1]. *)
let of_rat_row (row : Rat.t array) =
  of_assoc (Array.to_list (Array.mapi (fun i p -> (i, Rat.to_float p)) row))

let uniform lo hi =
  if hi < lo then invalid_arg "Discrete.uniform";
  of_assoc (List.init (hi - lo + 1) (fun i -> (lo + i, 1.0)))

let point v = of_assoc [ (v, 1.0) ]

let support t = Array.copy t.support
let size t = Array.length t.support

let mass t v =
  let rec search lo hi =
    if lo > hi then 0.0
    else
      let mid = (lo + hi) / 2 in
      if t.support.(mid) = v then t.pmf.(mid)
      else if t.support.(mid) < v then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (Array.length t.support - 1)

let mean t =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (float_of_int v *. t.pmf.(i))) t.support;
  !acc

let variance t =
  let m = mean t in
  let acc = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = float_of_int v -. m in
      acc := !acc +. (d *. d *. t.pmf.(i)))
    t.support;
  !acc

let expectation t f =
  let acc = ref 0.0 in
  Array.iteri (fun i v -> acc := !acc +. (f v *. t.pmf.(i))) t.support;
  !acc

let is_normalized t =
  Float.abs (Array.fold_left ( +. ) 0.0 t.pmf -. 1.0) <= normalization_tolerance

(** Inverse-CDF sampling. *)
let sample t rng =
  let u = Rng.float rng in
  (* First index whose cdf strictly exceeds u. *)
  let n = Array.length t.cdf in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  t.support.(search 0 (n - 1))

(** Total-variation distance between two distributions. *)
let total_variation a b =
  let values = ref [] in
  Array.iter (fun v -> values := v :: !values) a.support;
  Array.iter (fun v -> values := v :: !values) b.support;
  let values = List.sort_uniq compare !values in
  0.5 *. List.fold_left (fun acc v -> acc +. Float.abs (mass a v -. mass b v)) 0.0 values

(** Kullback–Leibler divergence D(a || b); [infinity] when the support
    of [a] is not contained in that of [b]. *)
let kl_divergence a b =
  let acc = ref 0.0 in
  (try
     Array.iteri
       (fun i v ->
         let pa = a.pmf.(i) in
         let pb = mass b v in
         if pb <= 0.0 then begin
           acc := infinity;
           raise Exit
         end;
         acc := !acc +. (pa *. log (pa /. pb)))
       a.support
   with Exit -> ());
  !acc

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri (fun i v -> Format.fprintf fmt "%d: %.6f@," v t.pmf.(i)) t.support;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Walker's alias method                                              *)
(* ------------------------------------------------------------------ *)

module Alias = struct
  type table = { values : int array; prob : float array; alias : int array }

  let build (d : t) =
    let n = Array.length d.pmf in
    let prob = Array.make n 0.0 and alias = Array.make n 0 in
    let scaled = Array.map (fun p -> p *. float_of_int n) d.pmf in
    let small = Queue.create () and large = Queue.create () in
    Array.iteri (fun i p -> Queue.add i (if p < 1.0 then small else large)) scaled;
    while (not (Queue.is_empty small)) && not (Queue.is_empty large) do
      let s = Queue.pop small and l = Queue.pop large in
      prob.(s) <- scaled.(s);
      alias.(s) <- l;
      scaled.(l) <- scaled.(l) +. scaled.(s) -. 1.0;
      Queue.add l (if scaled.(l) < 1.0 then small else large)
    done;
    Queue.iter (fun i -> prob.(i) <- 1.0) small;
    Queue.iter (fun i -> prob.(i) <- 1.0) large;
    { values = Array.copy d.support; prob; alias }

  let sample tbl rng =
    let n = Array.length tbl.prob in
    let i = Rng.int rng n in
    if Rng.float rng < tbl.prob.(i) then tbl.values.(i) else tbl.values.(tbl.alias.(i))
end
