(** Deterministic pseudo-random number generator (splitmix64).

    Every sampler in the reproduction takes an explicit [t] so that all
    experiments are reproducible from a seed; no global random state is
    used anywhere in the repository. *)

(* analysis: domain-local — a stream is split per request and then
   owned by exactly one worker domain; nothing is shared. *)
type t = { mutable state : int64 }

let create ?(seed = 0x9E3779B97F4A7C15L) () = { state = seed }
let of_int seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64: Steele, Lea & Flood (2014). *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform float in [0, 1). 53 random mantissa bits. *)
(* analysis: float-ok — unit-interval conversion feeding only the
   float-mirror samplers; the exact path never calls it. *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

(** Uniform int in [0, bound). @raise Invalid_argument on [bound <= 0]. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask =
    let rec grow m = if m >= bound - 1 then m else grow ((m lsl 1) lor 1) in
    grow 1
  in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) land mask in
    if v < bound then v else draw ()
  in
  draw ()

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Derive an independent generator (for parallel experiment arms). *)
let split t =
  let s = next_int64 t in
  { state = Int64.logxor s 0xD1B54A32D192ED03L }

(* k sequential splits. The i-th stream depends only on the parent's
   state and i, never on which thread of control later consumes it —
   this is what lets the engine's worker pool hand stream i to
   whichever Domain picks up job i and still produce byte-identical
   batches for every worker count. *)
let streams t k =
  if k < 0 then invalid_arg "Rng.streams: negative count";
  Array.init k (fun _ -> split t)
