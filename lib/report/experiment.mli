(** Experiment harness: named, self-describing reproduction units.

    Each experiment corresponds to one artifact of the paper (a table,
    a figure, a lemma, or a synthesized evaluation — see the index in
    DESIGN.md). The bench binary runs them and EXPERIMENTS.md records
    the outcomes.

    Timing uses the monotonic clock ({!Obs.Clock.monotonic}, injectable
    for tests) and output flows through an injectable sink, so callers
    can capture per-experiment results instead of scraping stdout. *)

type verdict =
  | Pass  (** every check of the artifact succeeded *)
  | Fail of string  (** at least one check failed, with a reason *)
  | Info  (** descriptive output only, nothing to check *)

type t = {
  id : string;  (** short id, e.g. "T1", "F1", "THM1" *)
  title : string;
  paper_claim : string;  (** what the paper reports *)
  run : unit -> verdict * string;  (** produces the measured detail *)
}

val make : id:string -> title:string -> paper_claim:string -> (unit -> verdict * string) -> t

(** Everything one run produced. *)
type outcome = {
  experiment : t;
  verdict : verdict;
  detail : string;
  wall_ns : int64;  (** monotonic-clock elapsed time *)
  obs : Obs.t option;
      (** with [observe:true], the recorder that was ambient during the
          run — pivot counts, coefficient-bit histograms, etc. *)
}

val run_collect : ?clock:Obs.Clock.t -> ?observe:bool -> t -> outcome
(** Run one experiment silently. With [observe] (default false) a
    fresh {!Obs.t} recorder is ambient for the duration of the run and
    returned in the outcome; any previously installed recorder is
    restored afterwards. *)

val run_streamed : ?out:(string -> unit) -> ?clock:Obs.Clock.t -> ?observe:bool -> t -> outcome
(** {!run_collect} plus the human-readable report (header, detail,
    verdict, timing) written to [out] (default [print_string]). The
    header is printed before the experiment runs, so long runs stream
    progress. *)

val run_one : ?out:(string -> unit) -> t -> verdict
(** Run and print one experiment; the verdict alone. *)

val run_all : ?out:(string -> unit) -> t list -> bool
(** Run a batch; prints a summary and returns whether everything
    passed. *)
