(** Experiment harness: named, self-describing reproduction units.

    Each experiment corresponds to one artifact of the paper (a table,
    a figure, a lemma, or a synthesized evaluation — see the index in
    DESIGN.md) and reports a pass/fail verdict plus free-form detail
    that the bench binary prints and EXPERIMENTS.md summarizes.

    Timing uses the injectable monotonic clock from {!Obs.Clock} (wall
    clock drifts and steps under NTP, which made early timings
    unreliable), and all text output flows through an injectable sink
    so callers can capture per-experiment results — the bench binary
    uses that to build machine-readable BENCH records. *)

type verdict = Pass | Fail of string | Info

type t = {
  id : string;  (** e.g. "T1", "F1", "THM1" *)
  title : string;
  paper_claim : string;  (** what the paper reports *)
  run : unit -> verdict * string;  (** measured detail *)
}

let make ~id ~title ~paper_claim run = { id; title; paper_claim; run }

type outcome = {
  experiment : t;
  verdict : verdict;
  detail : string;
  wall_ns : int64;
  obs : Obs.t option;  (** counters/histograms captured during the run *)
}

let run_collect ?(clock = Obs.Clock.monotonic) ?(observe = false) t =
  let recorder = if observe then Some (Obs.create ~clock ()) else None in
  let started = clock () in
  let verdict, detail =
    match recorder with
    | Some r -> Obs.with_recorder r t.run
    | None -> t.run ()
  in
  {
    experiment = t;
    verdict;
    detail;
    wall_ns = Int64.sub (clock ()) started;
    obs = recorder;
  }

let run_streamed ?(out = print_string) ?clock ?observe t =
  out (Printf.sprintf "=== [%s] %s ===\n" t.id t.title);
  out (Printf.sprintf "paper: %s\n" t.paper_claim);
  let o = run_collect ?clock ?observe t in
  out o.detail;
  if o.detail <> "" && o.detail.[String.length o.detail - 1] <> '\n' then out "\n";
  let elapsed = Int64.to_float o.wall_ns /. 1e9 in
  (match o.verdict with
   | Pass -> out (Printf.sprintf "verdict: PASS (%.2fs)\n" elapsed)
   | Info -> out (Printf.sprintf "verdict: INFO (%.2fs)\n" elapsed)
   | Fail why -> out (Printf.sprintf "verdict: FAIL — %s (%.2fs)\n" why elapsed));
  out "\n";
  o

let run_one ?out t = (run_streamed ?out t).verdict

let run_all ?(out = print_string) experiments =
  let failed = ref [] in
  List.iter
    (fun e ->
      match run_one ~out e with
      | Fail why -> failed := (e.id, why) :: !failed
      | Pass | Info -> ())
    experiments;
  match List.rev !failed with
  | [] ->
    out (Printf.sprintf "All %d experiments passed.\n" (List.length experiments));
    true
  | fs ->
    out (Printf.sprintf "%d/%d experiments FAILED:\n" (List.length fs) (List.length experiments));
    List.iter (fun (id, why) -> out (Printf.sprintf "  [%s] %s\n" id why)) fs;
    false
