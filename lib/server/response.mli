(** The one response surface.

    Every consumer-facing mouth of the system — [dpserved] over TCP,
    [dpopt engine] over files, [dpopt serve] printing a single release
    — speaks this type and its single JSON schema, replacing the three
    ad-hoc shapes those paths used to emit:

    - [{"v":1,"status":"ok","id"?,"key","rung","loss","samples"}] —
      served on the rung the ladder started at;
    - [..."status":"degraded"...,"provenance":{...}] — served, but the
      ladder abandoned at least one rung on the way; the provenance
      names every abandoned rung and why;
    - [{"v":1,"status":"error","id"?,"error":{"kind","msg",...}}] — a
      typed refusal; [kind] is stable and machine-dispatchable, and
      structured fields ([pending]/[capacity], [key]/[rule], ...)
      accompany the kinds that have them;
    - [{"v":1,"status":"stats","id"?,"stats":{...},"prometheus":"..."}]
      — the answer to the [op=stats] admin verb: the {!Stats.to_json}
      snapshot plus its {!Stats.to_prometheus} text exposition.

    [id] is echoed verbatim from the request envelope when the caller
    supplied one. Rendering is {!Obs.Json.to_string} — compact,
    deterministic, rationals exact as ["p/q"] strings. *)

type payload = {
  id : string option;  (** echoed request id *)
  key : string;  (** canonical cache key the request was served under *)
  rung : Minimax.Serve.rung;
  loss : Rat.t;
  samples : int array;
  provenance : Minimax.Serve.provenance;
}

type error =
  | Unsupported_version of { got : string option }
  | Unknown_key of { key : string }
  | Malformed of { msg : string }
  | Invalid of { msg : string }
  | Overloaded of { pending : int; capacity : int }
      (** admission control refused: the pending queue is full *)
  | Deadline_exceeded  (** the connection's {!Resilience.Budget} ran out *)
  | Uncertified of { key : string; rule : string }
      (** a release failed re-certification; nothing was served *)
  | Budget_exhausted of { sub : string; group : string; spent : Rat.t; floor : Rat.t }
      (** the subscriber's cumulative privacy-budget ledger refused
          this epoch: [spent·α] would fall below [floor] *)
  | Internal of { msg : string }

(** Which session verb a {!Session_view} answers. *)
type session_status = Subscribed | Unsubscribed | Ledger_report

type t =
  | Ok of payload
  | Degraded of payload  (** served below the top rung; see [provenance] *)
  | Error of { id : string option; error : error }
  | Stats of { id : string option; stats : Stats.t }
      (** the telemetry snapshot answering [op=stats] *)
  | Session_view of { id : string option; status : session_status; view : Session.view }
      (** the subscriber's ledger view answering [op=subscribe],
          [op=unsubscribe] or [op=ledger] *)
  | Released of { id : string option; release : Session.release }
      (** the epoch summary answering [op=release]: the full rung
          vector, every subscriber's outcome, and the collusion
          certificate *)
  | Release_push of {
      id : string option;
      sub : string;
      group : string;
      epoch : int;
      level : Rat.t;
      value : int;
      spent : Rat.t;
      floor : Rat.t option;
      certificate : Session.Certificate.t;
    }
      (** one pushed [status:"release"] line delivering a served
          subscriber its own rung (and the epoch's certificate); [id]
          echoes the subscribe-time tag *)

val of_engine : ?id:string -> Engine.response -> t
(** [Ok] when the serve ladder's provenance records no abandoned
    rungs, [Degraded] otherwise. *)

val of_served : ?id:string -> key:string -> Minimax.Serve.served -> t
(** A release with no samples drawn ([dpopt serve]'s mouth): same
    [Ok]/[Degraded] rule, [samples] empty. *)

val of_wire_error : ?id:string -> Engine.Request.wire_error -> t
val of_job_error : ?id:string -> Engine.job_error -> t
val error : ?id:string -> error -> t
val stats : ?id:string -> Stats.t -> t
val subscribed : ?id:string -> Session.view -> t
val unsubscribed : ?id:string -> Session.view -> t
val ledger : ?id:string -> Session.view -> t
val released : ?id:string -> Session.release -> t

val release_pushes : Session.release -> t list
(** One {!Release_push} per {e served} subscriber of the epoch, in
    ledger order ([id] unset — stamp with {!with_id}); refused
    subscribers are omitted (the server sends them
    {!Budget_exhausted} error lines instead). *)

val with_id : string option -> t -> t
(** Replace the echoed id — how a push line gets stamped with its
    subscriber's subscribe-time tag. *)

val error_kind : error -> string
(** Stable machine-readable tag, the JSON ["kind"] field. *)

val error_message : error -> string
val status : t -> string
(** ["ok"], ["degraded"], ["error"], ["stats"], ["subscribed"],
    ["unsubscribed"], ["ledger"], ["released"] or ["release"]. *)

val id : t -> string option

val to_json : t -> Obs.Json.t

val to_line : t -> string
(** Compact one-line JSON — exactly what goes on the wire. *)
