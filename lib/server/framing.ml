(* Line framing over file descriptors; see framing.mli.

   Every raw [Unix.write] in the tree lives in this file (the
   lint/unix-write wall enforces it), so there is exactly one place
   where short writes, [EAGAIN], [EPIPE] and injected write faults are
   handled — and nowhere else to get them wrong. *)

let chunk = 4096

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

type reader = {
  rfd : Unix.file_descr;
  max_line : int;
  pending : Buffer.t;  (* bytes after the last newline seen *)
  rbuf : Bytes.t;
}

type read_result = { lines : string list; eof : bool; overflow : bool }

let reader ?(max_line = 65536) rfd =
  { rfd; max_line; pending = Buffer.create 256; rbuf = Bytes.create chunk }

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* Split [pending ^ fresh] at newlines, leaving the trailing partial
   line in [pending]. *)
let split_lines r fresh ~eof =
  Buffer.add_string r.pending fresh;
  let data = Buffer.contents r.pending in
  Buffer.clear r.pending;
  let lines = ref [] in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      if c = '\n' then begin
        lines := strip_cr (String.sub data !start (i - !start)) :: !lines;
        start := i + 1
      end)
    data;
  let rest = String.sub data !start (String.length data - !start) in
  if eof && rest <> "" then lines := strip_cr rest :: !lines
  else Buffer.add_string r.pending rest;
  let overflow = Buffer.length r.pending > r.max_line in
  if overflow then Buffer.clear r.pending;
  { lines = List.rev !lines; eof; overflow }

let poll r =
  match Unix.read r.rfd r.rbuf 0 chunk with
  | 0 -> split_lines r "" ~eof:true
  | n -> split_lines r (Bytes.sub_string r.rbuf 0 n) ~eof:false
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
    { lines = []; eof = false; overflow = false }
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) ->
    split_lines r "" ~eof:true

(* ------------------------------------------------------------------ *)
(* Writing                                                             *)
(* ------------------------------------------------------------------ *)

(* analysis: domain-local — writers are owned and mutated only by the
   event-loop domain that owns the connection. *)
type writer = {
  wfd : Unix.file_descr;
  queue : string Queue.t;
  mutable ofs : int;  (* bytes of the queue head already written *)
  mutable closed : bool;
}

type flush_status = Flushed | Blocked | Closed

let writer wfd = { wfd; queue = Queue.create (); ofs = 0; closed = false }
let enqueue w line = Queue.add (line ^ "\n") w.queue
let buffered w = not (Queue.is_empty w.queue)

let flush w =
  if w.closed then Closed
  else begin
    (* The injectable peer-vanished fault: a tripped flush behaves
       exactly like the kernel reporting a dead socket. *)
    (match Resilience.Fault.trip "server.write" with
     | () -> ()
     | exception Resilience.Fault.Injected { site = "server.write"; _ } -> w.closed <- true);
    if w.closed then Closed
    else
      let rec go () =
        match Queue.peek_opt w.queue with
        | None -> Flushed
        | Some head -> (
          let len = String.length head - w.ofs in
          match Unix.write_substring w.wfd head w.ofs len with
          | 0 -> Blocked
          | n ->
            if n = len then begin
              ignore (Queue.pop w.queue);
              w.ofs <- 0
            end
            else w.ofs <- w.ofs + n;
            go ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> Blocked
          | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
            w.closed <- true;
            Closed)
      in
      go ()
  end

let flush_blocking w =
  let rec go () =
    match flush w with
    | Flushed -> Flushed
    | Closed -> Closed
    | Blocked ->
      (match Unix.select [] [ w.wfd ] [] (-1.0) with
       | _ -> ()
       | exception Unix.Unix_error (EINTR, _, _) -> ());
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Self-pipe                                                           *)
(* ------------------------------------------------------------------ *)

let wake fd =
  match Unix.write_substring fd "!" 0 1 with
  | _ -> ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
    (* Pipe full: a wakeup is already pending, which is all we need. *)
    ()
  | exception Unix.Unix_error ((EPIPE | EBADF), _, _) -> ()

let drain_wakeups fd =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read fd buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
  in
  go ()
