(** Newline-delimited framing over raw file descriptors.

    This module is the tree's single point of contact with
    [Unix.write] — the lint/unix-write wall rejects raw writes
    anywhere else — so short writes, [EAGAIN], dead peers and the
    injectable ["server.write"] fault are handled in exactly one
    place. Readers and writers work on blocking and non-blocking
    descriptors alike: on a non-blocking descriptor {!poll} and
    {!flush} return instead of waiting. *)

(** {1 Reading} *)

type reader

val reader : ?max_line:int -> Unix.file_descr -> reader
(** A line reader over [fd] (default [max_line] 65536 bytes). *)

type read_result = {
  lines : string list;  (** completed lines, oldest first, [\n]/[\r\n] stripped *)
  eof : bool;  (** the peer closed (or reset) its end *)
  overflow : bool;
      (** a line exceeded [max_line] without a newline; the partial
          line was discarded and the connection should be aborted *)
}

val poll : reader -> read_result
(** Issue one [read(2)] and return every line it completed. On a
    non-blocking descriptor with nothing to read, returns immediately
    with no lines. At end of input a trailing unterminated line is
    returned as a final line. *)

(** {1 Writing} *)

type writer

val writer : Unix.file_descr -> writer

val enqueue : writer -> string -> unit
(** Queue [line ^ "\n"] for writing. Never blocks; call {!flush} to
    move bytes. *)

val buffered : writer -> bool
(** Whether queued bytes remain. *)

type flush_status =
  | Flushed  (** queue empty *)
  | Blocked  (** kernel buffer full; retry when the fd is writable *)
  | Closed  (** the peer is gone; the writer is dead for good *)

val flush : writer -> flush_status
(** Write as much queued data as the descriptor accepts. Fault site
    ["server.write"]: a tripped flush marks the writer [Closed],
    exactly as if the kernel had reported a dead socket. *)

val flush_blocking : writer -> flush_status
(** {!flush}, waiting out [Blocked] with [select] until the queue
    empties or the peer dies. Never returns [Blocked]. *)

(** {1 Self-pipe} *)

val wake : Unix.file_descr -> unit
(** Write one byte to a wake pipe; a full pipe already counts as a
    pending wakeup, so this never blocks or fails. Async-signal-safe
    in the OCaml sense — {!Server.stop} calls it from signal
    handlers. *)

val drain_wakeups : Unix.file_descr -> unit
(** Discard every pending wakeup byte (non-blocking descriptor). *)
