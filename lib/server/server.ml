(* The TCP front-end; see server.mli. *)

module Framing = Framing
module Response = Response
module Stats = Stats
module B = Resilience.Budget

type config = {
  host : string;
  port : int;
  domains : int option;
  cache_capacity : int;
  queue_capacity : int;
  conn_deadline_ms : int option;
  max_pivots : int option;
  max_bits : int option;
  default_seed : int;
  tier : Engine.tier option;
  session_store : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    domains = None;
    cache_capacity = 64;
    queue_capacity = 64;
    conn_deadline_ms = None;
    max_pivots = None;
    max_bits = None;
    default_seed = 42;
    tier = None;
    session_store = None;
  }

(* analysis: domain-local — conn records belong to the single
   event-loop domain; the runner domain only ever sees immutable
   request strings and replies through the locked pending queue. *)
type conn = {
  fd : Unix.file_descr;
  reader : Framing.reader;
  writer : Framing.writer;
  seeder : Engine.Seeder.t;
  budget : B.t option;
  mutable in_flight : int;  (* admitted jobs whose response is not yet enqueued *)
  mutable eof : bool;  (* peer half-closed: no further requests *)
  mutable dead : bool;  (* write side failed: abort without replying *)
}

type pending = {
  pconn : conn;
  pid : string option;
  pjob : Engine.job;
  ptrace : Obs.Trace.t option;  (* the request's trace context, shared with pjob *)
  enqueued_ns : int64;
}

(* What the runner hands back for one admitted job. *)
type outcome =
  | Served of Engine.response
  | Refused of Engine.job_error
  | Crashed of string

type t = {
  config : config;
  listener : Unix.file_descr;
  actual_port : int;
  engine : Engine.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  stopping : bool Atomic.t;
  m : Mutex.t;
  cond : Condition.t;  (* wakes the runner: queue non-empty, or stop *)
  queue : pending Queue.t;  (* admitted, not yet picked up by the runner *)
  mutable running : bool;  (* the runner owns a batch right now *)
  mutable completed : (pending * outcome) array list;  (* newest first *)
  mutable runner_stop : bool;
  (* analysis: domain-local — only the event-loop domain synthesizes
     trace ids for id-less requests. *)
  mutable trace_seq : int;
  session : Session.t;
  (* analysis: domain-local — the delivery map (subscriber, group) →
     (connection, subscribe-time id) is read and written only by the
     event-loop domain, which answers session verbs inline. Kept
     sorted so push order is deterministic. *)
  mutable subscriptions : ((string * string) * (conn * string option)) list;
}

let inet_addr host =
  match Unix.inet_addr_of_string host with
  | a -> a
  | exception Failure _ -> (
    match Unix.gethostbyname host with
    | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
      invalid_arg (Printf.sprintf "Server.create: cannot resolve host %S" host)
    | h -> h.Unix.h_addr_list.(0))

let create ?(config = default_config) () =
  (* The session table comes up before the socket: a checkpoint that
     fails verification is a refusal to start, not a silent reset. *)
  let session =
    match
      Session.create ~seed:config.default_seed ?checkpoint:config.session_store ()
    with
    | Ok s -> s
    | Error msg -> invalid_arg ("Server.create: " ^ msg)
  in
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listener Unix.SO_REUSEADDR true;
  Unix.bind listener (Unix.ADDR_INET (inet_addr config.host, config.port));
  Unix.listen listener 128;
  Unix.set_nonblock listener;
  let actual_port =
    match Unix.getsockname listener with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  {
    config;
    listener;
    actual_port;
    engine =
      Engine.create ?domains:config.domains ~cache_capacity:config.cache_capacity
        ?tier:config.tier ();
    wake_r;
    wake_w;
    stopping = Atomic.make false;
    m = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    running = false;
    completed = [];
    runner_stop = false;
    trace_seq = 0;
    session;
    subscriptions = [];
  }

let port t = t.actual_port
let engine t = t.engine
let session t = t.session
let stop t =
  Atomic.set t.stopping true;
  Framing.wake t.wake_w

(* ------------------------------------------------------------------ *)
(* The runner domain: drains the admitted queue in whole batches.      *)
(* ------------------------------------------------------------------ *)

let runner t =
  let rec loop () =
    Mutex.lock t.m;
    while Queue.is_empty t.queue && not t.runner_stop do
      Condition.wait t.cond t.m
    done;
    if Queue.is_empty t.queue then (* runner_stop, nothing left *)
      Mutex.unlock t.m
    else begin
      let batch = Array.of_seq (Queue.to_seq t.queue) in
      Queue.clear t.queue;
      t.running <- true;
      Mutex.unlock t.m;
      let jobs = Array.map (fun p -> p.pjob) batch in
      let outcomes =
        Obs.span ~attrs:[ ("jobs", Obs.Int (Array.length jobs)) ] "server.batch"
        @@ fun () ->
        match Engine.run_jobs t.engine jobs with
        | results ->
          Array.map2
            (fun p r ->
              (p, match r with Ok resp -> Served resp | Error e -> Refused e))
            batch results
        | exception e -> Array.map (fun p -> (p, Crashed (Printexc.to_string e))) batch
      in
      Mutex.lock t.m;
      t.completed <- outcomes :: t.completed;
      t.running <- false;
      Mutex.unlock t.m;
      Framing.wake t.wake_w;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* The event loop: accept, frame, admit, deliver, drain.               *)
(* ------------------------------------------------------------------ *)

let reply c resp = Framing.enqueue c.writer (Response.to_line resp)

let with_opt_trace ?parent tr f =
  match tr with None -> f () | Some tr -> Obs.with_trace ?parent tr f

(* Answer op=stats inline from the event loop: a stats line must see
   the live queue, not wait behind it. The cache counters are written
   by the runner domain; reading them here is a benign point-in-time
   snapshot of monotone ints. *)
let answer_stats t c ~id =
  Obs.incr "server.stats";
  let queue_depth = Mutex.protect t.m (fun () -> Queue.length t.queue) in
  let snapshot =
    Stats.capture ~session_live:(Session.live t.session) ~queue_depth
      ~queue_capacity:t.config.queue_capacity ~cache:(Engine.cache_stats t.engine) ()
  in
  reply c (Response.stats ?id snapshot)

(* Session verbs are answered inline from the event loop, like
   op=stats: the session table is event-loop state, and an epoch's
   cascade is milliseconds of exact arithmetic, not an LP solve — it
   does not need the runner. *)
let bind_subscription t ~sub ~group c id =
  let key = (sub, group) in
  t.subscriptions <-
    List.sort compare ((key, (c, id)) :: List.remove_assoc key t.subscriptions)

let drop_subscription t ~sub ~group =
  t.subscriptions <- List.remove_assoc (sub, group) t.subscriptions

let answer_session t c ~id verb =
  Obs.span "server.session" @@ fun () ->
  let invalid msg =
    Obs.incr "server.errors";
    reply c (Response.error ?id (Response.Invalid { msg }))
  in
  match verb with
  | Engine.Request.Subscribe { sub; n; input; level; budget } -> (
    match Session.subscribe t.session ~sub ~n ~input ~level ?budget () with
    | Error msg -> invalid msg
    | Ok view ->
      bind_subscription t ~sub ~group:view.Session.v_group c id;
      reply c (Response.subscribed ?id view))
  | Engine.Request.Unsubscribe { sub; n; input } -> (
    match Session.unsubscribe t.session ~sub ~n ~input with
    | Error msg -> invalid msg
    | Ok view ->
      drop_subscription t ~sub ~group:view.Session.v_group;
      reply c (Response.unsubscribed ?id view))
  | Engine.Request.Ledger { sub; n; input } -> (
    match Session.ledger t.session ~sub ~n ~input with
    | Error msg -> invalid msg
    | Ok view -> reply c (Response.ledger ?id view))
  | Engine.Request.Release { n; input } -> (
    match Session.release t.session ~n ~input with
    | Error (Session.Rejected msg) -> invalid msg
    | Error (Session.Faulted msg) ->
      Obs.incr "server.errors";
      reply c (Response.error ?id (Response.Internal { msg }))
    | Ok release ->
      (* The caller gets the epoch summary first, then every live
         subscriber gets its own line — served rungs as
         status:"release" pushes, ledger refusals as typed
         budget_exhausted errors — in ledger (name) order, stamped
         with their subscribe-time ids. *)
      reply c (Response.released ?id release);
      let group = release.Session.r_group in
      let pushes = Response.release_pushes release in
      List.iter
        (fun (sub, outcome) ->
          match List.assoc_opt (sub, group) t.subscriptions with
          | None -> ()
          | Some (sc, _) when sc.dead -> ()
          | Some (sc, sid) -> (
            match outcome with
            | Session.Served _ -> (
              match
                List.find_opt
                  (function
                    | Response.Release_push { sub = s; _ } -> String.equal s sub
                    | _ -> false)
                  pushes
              with
              | Some push -> reply sc (Response.with_id sid push)
              | None -> ())
            | Session.Refused { spent; floor; _ } ->
              reply sc
                (Response.error ?id:sid
                   (Response.Budget_exhausted { sub; group; spent; floor }))))
        release.Session.r_outcomes)

(* Parse and admit one request line (blank lines are ignored). Every
   refusal is written back as a typed response immediately — admission
   control never hangs and never silently drops. *)
let handle_line t c line =
  if String.trim line <> "" then
    Obs.span "server.request" @@ fun () ->
    match Engine.Request.of_line line with
    | Error we ->
      Obs.incr "server.rejected.protocol";
      reply c (Response.of_wire_error we)
    | Ok (Engine.Request.Stats { id }) -> answer_stats t c ~id
    | Ok (Engine.Request.Session { id; verb }) -> answer_session t c ~id verb
    | Ok (Engine.Request.Query { id; seed; request }) -> (
      (* The request's trace context: wire id when given, else a
         synthesized request index. Built only when a recorder is
         live; it never touches the sample stream. *)
      let trace =
        if Obs.enabled () then begin
          t.trace_seq <- t.trace_seq + 1;
          Some
            (Obs.Trace.make
               (match id with Some i -> i | None -> Printf.sprintf "r%d" t.trace_seq))
        end
        else None
      in
      with_opt_trace trace @@ fun () ->
      Obs.span
        ~attrs:(match id with None -> [] | Some i -> [ ("id", Obs.Str i) ])
        "server.admit"
      @@ fun () ->
      let deadline_hit =
        match c.budget with
        | None -> false
        | Some b -> B.check b ~pivots:0 ~peak_bits:0 <> None
      in
      if deadline_hit then begin
        Obs.incr "server.rejected.deadline";
        reply c (Response.error ?id Response.Deadline_exceeded)
      end
      else begin
        Mutex.lock t.m;
        let depth = Queue.length t.queue in
        if depth >= t.config.queue_capacity then begin
          Mutex.unlock t.m;
          Obs.incr "server.rejected.overloaded";
          reply c
            (Response.error ?id
               (Response.Overloaded { pending = depth; capacity = t.config.queue_capacity }))
        end
        else begin
          let seed = Option.value seed ~default:t.config.default_seed in
          let stream = Engine.Seeder.stream c.seeder ~seed in
          Queue.add
            {
              pconn = c;
              pid = id;
              pjob = { Engine.request; stream; budget = c.budget; trace };
              ptrace = trace;
              enqueued_ns = Obs.now_ns ();
            }
            t.queue;
          Condition.signal t.cond;
          Mutex.unlock t.m;
          Obs.observe "server.queue_depth" (depth + 1);
          c.in_flight <- c.in_flight + 1;
          Obs.incr "server.admitted"
        end
      end)

let handle_read t c =
  let { Framing.lines; eof; overflow } = Framing.poll c.reader in
  List.iter (handle_line t c) lines;
  if overflow then begin
    Obs.incr "server.rejected.protocol";
    reply c (Response.error (Response.Malformed { msg = "request line too long" }));
    (* Framing is lost beyond an overlong line; answer then hang up. *)
    c.eof <- true
  end;
  if eof then c.eof <- true

let handle_write c =
  match Framing.flush c.writer with
  | Framing.Flushed | Framing.Blocked -> ()
  | Framing.Closed ->
    if not c.dead then begin
      c.dead <- true;
      Obs.incr "server.conn.aborted"
    end

let deliver t =
  let batches =
    Mutex.lock t.m;
    let bs = List.rev t.completed in
    t.completed <- [];
    Mutex.unlock t.m;
    bs
  in
  List.iter
    (fun batch ->
      Array.iter
        (fun (p, outcome) ->
          let resp =
            match outcome with
            | Served r ->
              Obs.incr "server.responses";
              let resp = Response.of_engine ?id:p.pid r in
              (match resp with
              | Response.Degraded _ -> Obs.incr "server.degraded"
              | _ -> ());
              resp
            | Refused e ->
              Obs.incr "server.errors";
              Response.of_job_error ?id:p.pid e
            | Crashed msg ->
              Obs.incr "server.errors";
              Response.error ?id:p.pid (Response.Internal { msg })
          in
          p.pconn.in_flight <- p.pconn.in_flight - 1;
          if not p.pconn.dead then begin
            (with_opt_trace ~parent:Obs.Trace.root p.ptrace @@ fun () ->
             Obs.span
               ~attrs:[ ("status", Obs.Str (Response.status resp)) ]
               "server.write"
             @@ fun () -> reply p.pconn resp);
            (* Admission-to-write latency feeds the rolling window the
               op=stats quantiles are read from. *)
            Obs.observe_latency_ns "server.latency"
              (Int64.sub (Obs.now_ns ()) p.enqueued_ns)
          end)
        batch)
    batches

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve t =
  (* A peer closing mid-write must surface as EPIPE in Framing.flush,
     not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let runner_domain = Domain.spawn (fun () -> runner t) in
  let conns = ref [] in
  let listener_open = ref true in
  let close_listener () =
    if !listener_open then begin
      listener_open := false;
      close_quietly t.listener
    end
  in
  let budget_of_config () =
    match (t.config.conn_deadline_ms, t.config.max_pivots, t.config.max_bits) with
    | None, None, None -> None
    | deadline_ms, max_pivots, max_bits ->
      (* Made at accept time: the whole connection shares one
         wall-clock window, and each of its compiles degrades (or is
         refused) against it. *)
      Some (B.make ?deadline_ms ?max_pivots ?max_bits ())
  in
  let rec accept_loop () =
    match Unix.accept t.listener with
    | fd, _ -> (
      Obs.incr "server.accepted";
      match Resilience.Fault.trip "server.accept" with
      | () ->
        Unix.set_nonblock fd;
        conns :=
          {
            fd;
            reader = Framing.reader fd;
            writer = Framing.writer fd;
            seeder = Engine.Seeder.create ();
            budget = budget_of_config ();
            in_flight = 0;
            eof = false;
            dead = false;
          }
          :: !conns;
        accept_loop ()
      | exception Resilience.Fault.Injected { site = "server.accept"; _ } ->
        Obs.incr "server.accept.faulted";
        close_quietly fd;
        accept_loop ())
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) -> ()
  in
  let rec loop () =
    if Atomic.get t.stopping then close_listener ();
    deliver t;
    (* Retire finished connections: write side dead, or peer done and
       every admitted job answered and flushed. *)
    conns :=
      List.filter
        (fun c ->
          let finished =
            c.dead || (c.eof && c.in_flight = 0 && not (Framing.buffered c.writer))
          in
          if finished then begin
            (* A dying connection takes its live subscriptions with it:
               deactivate (keeping the durable ledgers) and unbind. *)
            List.iter
              (fun ((sub, group), (sc, _)) ->
                if sc == c then Session.detach t.session ~sub ~group)
              t.subscriptions;
            t.subscriptions <- List.filter (fun (_, (sc, _)) -> sc != c) t.subscriptions;
            close_quietly c.fd
          end;
          not finished)
        !conns;
    let idle =
      Mutex.lock t.m;
      let i = Queue.is_empty t.queue && (not t.running) && t.completed = [] in
      Mutex.unlock t.m;
      i
    in
    if Atomic.get t.stopping && !conns = [] && idle then ()
    else begin
      let reads =
        (t.wake_r :: (if !listener_open then [ t.listener ] else []))
        @ List.filter_map (fun c -> if c.eof || c.dead then None else Some c.fd) !conns
      in
      let writes =
        List.filter_map
          (fun c -> if (not c.dead) && Framing.buffered c.writer then Some c.fd else None)
          !conns
      in
      match Unix.select reads writes [] (-1.0) with
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | rs, ws, _ ->
        if List.mem t.wake_r rs then Framing.drain_wakeups t.wake_r;
        if !listener_open && List.mem t.listener rs then accept_loop ();
        List.iter (fun c -> if List.mem c.fd rs then handle_read t c) !conns;
        List.iter (fun c -> if List.mem c.fd ws then handle_write c) !conns;
        loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.m;
      t.runner_stop <- true;
      Condition.signal t.cond;
      Mutex.unlock t.m;
      Domain.join runner_domain;
      close_listener ();
      List.iter (fun c -> close_quietly c.fd) !conns;
      Engine.shutdown t.engine;
      close_quietly t.wake_r;
      close_quietly t.wake_w)
    loop
