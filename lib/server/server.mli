(** The network front-end: a zero-external-dependency TCP server over
    {!Engine}.

    The protocol is newline-delimited text, one request per line in
    the versioned [v=1 key=value] grammar of {!Engine.Request.of_line},
    one JSON {!Response} per request back — see PROTOCOL.md. A single
    [select]-driven event loop owns every socket; admitted requests
    queue toward one runner Domain that drains them in whole batches
    through {!Engine.run_jobs}, which fans sampling out over the
    engine's worker pool. So the concurrency story is: any number of
    connections, one framing/admission thread, one batch in flight,
    [domains] samplers under it.

    {b Determinism.} Each connection gets an {!Engine.Seeder}: the k-th
    admitted request carrying [seed=s] on that connection samples from
    the k-th split of [Rng.of_int s] — a function of [(s, k)] only.
    Response bytes are therefore identical whatever the connection
    interleaving or worker count, and a request file split across N
    connections yields byte-for-byte the lines [dpopt engine] produces
    for the same file (per-connection response order is admission
    order). Every served matrix passed {!Check.Invariants}
    re-certification when its artifact was compiled.

    {b Admission control.} The pending queue is bounded by
    [queue_capacity]; a request that would overflow it is answered
    {e immediately} with a typed [overloaded] response — never a hang,
    never a silent drop. Per-connection deadlines ([conn_deadline_ms])
    make a {!Resilience.Budget} at accept time: requests admitted
    within the window ride it down to their compiles (degrading down
    the serve ladder as it empties), and requests arriving after it
    has expired get [deadline_exceeded].

    {b Shutdown.} {!stop} (safe from a signal handler) closes the
    listener and drains: every connection already accepted is served
    until its peer closes, every admitted job is answered and flushed,
    then {!serve} returns.

    {b Telemetry.} [v=1 op=stats] is an admin verb answered in-band
    with a {!Stats} snapshot (JSON + Prometheus text in one response
    line) — queue depth live from the event loop, counters and the
    ["server.latency"] rolling window merged across recorder shards.
    Each query gets an {!Obs.Trace} context (trace id = wire [id=], or
    a per-server [r<k>] when absent) threading admit → compile →
    sample → write into one span tree, visible in the Chrome-trace
    sink as a per-request lane. Telemetry never changes served bytes:
    responses are byte-identical with the recorder on or off.

    {b Sessions.} The session verbs ([op=subscribe | release |
    unsubscribe | ledger]) are answered inline from the event loop
    against one {!Session} table: an epoch's cascade is exact
    arithmetic on an already-certified plan, not an LP solve, so it
    never queues behind the runner. [op=release] answers the caller
    with the epoch summary (rungs, outcomes, collusion certificate),
    then pushes each live served subscriber its own rung as a
    [status:"release"] line stamped with its subscribe-time [id=] —
    and each over-budget subscriber a typed [budget_exhausted] error
    line — in subscriber-name order. A connection that dies or drains
    deactivates its subscriptions ({!Session.detach}) but keeps their
    durable ledgers. Span ["server.session"].

    Fault sites: ["server.accept"] (the accepted socket is dropped and
    counted, the listener survives) and ["server.write"] (the
    connection dies as if the peer vanished; other connections are
    untouched). Counters: ["server.accepted"], ["server.accept.faulted"],
    ["server.admitted"], ["server.responses"], ["server.degraded"],
    ["server.errors"], ["server.stats"],
    ["server.rejected.overloaded" / ".protocol" / ".deadline"],
    ["server.conn.aborted"]; histogram ["server.queue_depth"]; rolling
    latency window ["server.latency"] (log2-microsecond buckets,
    admission to write); spans ["server.request"], ["server.admit"],
    ["server.write"], ["server.batch"] (over the per-batch
    ["engine.batch"] and per-job ["engine.sample"]). *)

module Framing = Framing
module Response = Response
module Stats = Stats

type config = {
  host : string;  (** bind address, name or dotted quad *)
  port : int;  (** [0] picks an ephemeral port; see {!port} *)
  domains : int option;  (** engine worker Domains; [None] = recommended *)
  cache_capacity : int;  (** compiled-mechanism LRU size *)
  queue_capacity : int;  (** max admitted-but-undispatched requests *)
  conn_deadline_ms : int option;  (** per-connection wall-clock window *)
  max_pivots : int option;  (** per-connection budget dimensions... *)
  max_bits : int option;  (** ...threaded into every compile *)
  default_seed : int;  (** for request lines without [seed=] *)
  tier : Engine.tier option;
      (** second cache tier under the engine's LRU — in practice a
          disk artifact store's [Store.tier]. The server stays
          storage-agnostic: it only ever sees the two total
          callbacks. *)
  session_store : string option;
      (** durable checkpoint path for the session service's
          privacy-budget ledgers ({!Session.create}); [None] keeps
          ledgers in memory only *)
}

val default_config : config
(** [127.0.0.1:0], recommended domains, cache 64, queue 64, no
    deadline, seed 42, no second tier. *)

type t

val create : ?config:config -> unit -> t
(** Bind and listen (with [SO_REUSEADDR]), and start the engine. The
    socket accepts from this moment; call {!serve} to start answering.
    @raise Unix.Unix_error if the address cannot be bound
    @raise Invalid_argument if [config.host] does not resolve, or if
    [config.session_store] holds a checkpoint that fails verification
    (a refusal to start, never a silent ledger reset) *)

val port : t -> int
(** The actually-bound port — the ephemeral one when [config.port]
    was [0]. *)

val engine : t -> Engine.t
(** The server's engine, e.g. to {!Engine.preload} warm-restart
    artifacts before {!serve}. *)

val session : t -> Session.t
(** The server's session table — ledgers restored from
    [config.session_store] are visible here before {!serve}. *)

val serve : t -> unit
(** Run the event loop on the calling thread until {!stop}, then drain
    and release every resource (runner Domain, engine pool, sockets).
    Ignores [SIGPIPE] process-wide. One-shot: a drained server cannot
    be restarted. *)

val stop : t -> unit
(** Ask {!serve} to drain and return. Callable from a signal handler
    or another thread/domain; idempotent. *)
