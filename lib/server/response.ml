(* The one response surface; see response.mli. *)

module S = Minimax.Serve
module J = Obs.Json

type payload = {
  id : string option;
  key : string;
  rung : S.rung;
  loss : Rat.t;
  samples : int array;
  provenance : S.provenance;
}

type error =
  | Unsupported_version of { got : string option }
  | Unknown_key of { key : string }
  | Malformed of { msg : string }
  | Invalid of { msg : string }
  | Overloaded of { pending : int; capacity : int }
  | Deadline_exceeded
  | Uncertified of { key : string; rule : string }
  | Internal of { msg : string }

type t =
  | Ok of payload
  | Degraded of payload
  | Error of { id : string option; error : error }
  | Stats of { id : string option; stats : Stats.t }

let of_engine ?id (r : Engine.response) =
  let payload =
    {
      id;
      key = r.Engine.key;
      rung = r.Engine.rung;
      loss = r.Engine.loss;
      samples = r.Engine.samples;
      provenance = r.Engine.provenance;
    }
  in
  (* A response is degraded exactly when the serve ladder abandoned a
     rung on the way down — the provenance then says why. *)
  if payload.provenance.S.attempts = [] then Ok payload else Degraded payload

let of_served ?id ~key (s : S.served) =
  let payload =
    {
      id;
      key;
      rung = s.S.provenance.S.rung;
      loss = s.S.loss;
      samples = [||];
      provenance = s.S.provenance;
    }
  in
  if payload.provenance.S.attempts = [] then Ok payload else Degraded payload

let of_wire_error ?id (e : Engine.Request.wire_error) =
  let error =
    match e with
    | Engine.Request.Unsupported_version { got } -> Unsupported_version { got }
    | Engine.Request.Unknown_key { key } -> Unknown_key { key }
    | Engine.Request.Malformed { msg } -> Malformed { msg }
    | Engine.Request.Invalid { msg } -> Invalid { msg }
  in
  Error { id; error }

let of_job_error ?id (e : Engine.job_error) =
  match e with
  | Engine.Uncertified { key; rule } -> Error { id; error = Uncertified { key; rule } }

let error ?id e = Error { id; error = e }
let stats ?id s = Stats { id; stats = s }

let error_kind = function
  | Unsupported_version _ -> "unsupported_version"
  | Unknown_key _ -> "unknown_key"
  | Malformed _ -> "malformed"
  | Invalid _ -> "invalid"
  | Overloaded _ -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Uncertified _ -> "uncertified"
  | Internal _ -> "internal"

let error_message = function
  | Unsupported_version { got } ->
    Engine.Request.wire_error_to_string (Engine.Request.Unsupported_version { got })
  | Unknown_key { key } ->
    Engine.Request.wire_error_to_string (Engine.Request.Unknown_key { key })
  | Malformed { msg } | Invalid { msg } | Internal { msg } -> msg
  | Overloaded { pending; capacity } ->
    Printf.sprintf "pending queue full (%d/%d); retry later" pending capacity
  | Deadline_exceeded -> "connection deadline exceeded"
  | Uncertified { key; rule } ->
    Printf.sprintf "release for %s failed certification (%s)" key rule

let status = function
  | Ok _ -> "ok"
  | Degraded _ -> "degraded"
  | Error _ -> "error"
  | Stats _ -> "stats"

let id = function
  | Ok p | Degraded p -> p.id
  | Error { id; _ } | Stats { id; _ } -> id

let error_to_json e =
  let extra =
    match e with
    | Overloaded { pending; capacity } ->
      [ ("pending", J.Int pending); ("capacity", J.Int capacity) ]
    | Uncertified { key; rule } -> [ ("key", J.Str key); ("rule", J.Str rule) ]
    | Unknown_key { key } -> [ ("key", J.Str key) ]
    | Unsupported_version { got = Some v } -> [ ("got", J.Str v) ]
    | Unsupported_version { got = None }
    | Malformed _ | Invalid _ | Deadline_exceeded | Internal _ -> []
  in
  J.Obj ((("kind", J.Str (error_kind e)) :: extra) @ [ ("msg", J.Str (error_message e)) ])

let to_json t =
  let id_field = match id t with None -> [] | Some i -> [ ("id", J.Str i) ] in
  let head = ("v", J.Int Engine.Request.version) :: ("status", J.Str (status t)) :: id_field in
  match t with
  | Ok p | Degraded p ->
    let base =
      head
      @ [
          ("key", J.Str p.key);
          ("rung", J.Str (S.rung_to_string p.rung));
          ("loss", J.rat p.loss);
          ("samples", J.List (Array.to_list (Array.map (fun s -> J.Int s) p.samples)));
        ]
    in
    let prov =
      match t with
      | Degraded _ -> [ ("provenance", S.provenance_to_json p.provenance) ]
      | Ok _ | Error _ | Stats _ -> []
    in
    J.Obj (base @ prov)
  | Error { error = e; _ } -> J.Obj (head @ [ ("error", error_to_json e) ])
  | Stats { stats; _ } ->
    J.Obj
      (head
      @ [
          ("stats", Stats.to_json stats);
          ("prometheus", J.Str (Stats.to_prometheus stats));
        ])

let to_line t = J.to_string (to_json t)
