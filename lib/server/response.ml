(* The one response surface; see response.mli. *)

module S = Minimax.Serve
module J = Obs.Json

type payload = {
  id : string option;
  key : string;
  rung : S.rung;
  loss : Rat.t;
  samples : int array;
  provenance : S.provenance;
}

type error =
  | Unsupported_version of { got : string option }
  | Unknown_key of { key : string }
  | Malformed of { msg : string }
  | Invalid of { msg : string }
  | Overloaded of { pending : int; capacity : int }
  | Deadline_exceeded
  | Uncertified of { key : string; rule : string }
  | Budget_exhausted of { sub : string; group : string; spent : Rat.t; floor : Rat.t }
  | Internal of { msg : string }

type session_status = Subscribed | Unsubscribed | Ledger_report

type t =
  | Ok of payload
  | Degraded of payload
  | Error of { id : string option; error : error }
  | Stats of { id : string option; stats : Stats.t }
  | Session_view of { id : string option; status : session_status; view : Session.view }
  | Released of { id : string option; release : Session.release }
  | Release_push of {
      id : string option;
      sub : string;
      group : string;
      epoch : int;
      level : Rat.t;
      value : int;
      spent : Rat.t;
      floor : Rat.t option;
      certificate : Session.Certificate.t;
    }

let of_engine ?id (r : Engine.response) =
  let payload =
    {
      id;
      key = r.Engine.key;
      rung = r.Engine.rung;
      loss = r.Engine.loss;
      samples = r.Engine.samples;
      provenance = r.Engine.provenance;
    }
  in
  (* A response is degraded exactly when the serve ladder abandoned a
     rung on the way down — the provenance then says why. *)
  if payload.provenance.S.attempts = [] then Ok payload else Degraded payload

let of_served ?id ~key (s : S.served) =
  let payload =
    {
      id;
      key;
      rung = s.S.provenance.S.rung;
      loss = s.S.loss;
      samples = [||];
      provenance = s.S.provenance;
    }
  in
  if payload.provenance.S.attempts = [] then Ok payload else Degraded payload

let of_wire_error ?id (e : Engine.Request.wire_error) =
  let error =
    match e with
    | Engine.Request.Unsupported_version { got } -> Unsupported_version { got }
    | Engine.Request.Unknown_key { key } -> Unknown_key { key }
    | Engine.Request.Malformed { msg } -> Malformed { msg }
    | Engine.Request.Invalid { msg } -> Invalid { msg }
  in
  Error { id; error }

let of_job_error ?id (e : Engine.job_error) =
  match e with
  | Engine.Uncertified { key; rule } -> Error { id; error = Uncertified { key; rule } }

let error ?id e = Error { id; error = e }
let stats ?id s = Stats { id; stats = s }
let subscribed ?id view = Session_view { id; status = Subscribed; view }
let unsubscribed ?id view = Session_view { id; status = Unsubscribed; view }
let ledger ?id view = Session_view { id; status = Ledger_report; view }
let released ?id release = Released { id; release }

(* One pushed line per served subscriber; refused subscribers get a
   [Budget_exhausted] error line instead, built by the server. *)
let release_pushes (r : Session.release) =
  List.filter_map
    (fun (sub, outcome) ->
      match outcome with
      | Session.Refused _ -> None
      | Session.Served { level; value; spent; floor } ->
        Some
          (Release_push
             {
               id = None;
               sub;
               group = r.Session.r_group;
               epoch = r.Session.r_epoch;
               level;
               value;
               spent;
               floor;
               certificate = r.Session.r_certificate;
             }))
    r.Session.r_outcomes

let with_id id t =
  match t with
  | Ok p -> Ok { p with id }
  | Degraded p -> Degraded { p with id }
  | Error e -> Error { e with id }
  | Stats s -> Stats { s with id }
  | Session_view s -> Session_view { s with id }
  | Released r -> Released { r with id }
  | Release_push p -> Release_push { p with id }

let error_kind = function
  | Unsupported_version _ -> "unsupported_version"
  | Unknown_key _ -> "unknown_key"
  | Malformed _ -> "malformed"
  | Invalid _ -> "invalid"
  | Overloaded _ -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Uncertified _ -> "uncertified"
  | Budget_exhausted _ -> "budget_exhausted"
  | Internal _ -> "internal"

let error_message = function
  | Unsupported_version { got } ->
    Engine.Request.wire_error_to_string (Engine.Request.Unsupported_version { got })
  | Unknown_key { key } ->
    Engine.Request.wire_error_to_string (Engine.Request.Unknown_key { key })
  | Malformed { msg } | Invalid { msg } | Internal { msg } -> msg
  | Overloaded { pending; capacity } ->
    Printf.sprintf "pending queue full (%d/%d); retry later" pending capacity
  | Deadline_exceeded -> "connection deadline exceeded"
  | Uncertified { key; rule } ->
    Printf.sprintf "release for %s failed certification (%s)" key rule
  | Budget_exhausted { sub; group; spent; floor } ->
    Printf.sprintf "privacy budget exhausted for %S in %s (spent %s, floor %s)" sub group
      (Rat.to_string spent) (Rat.to_string floor)

let status = function
  | Ok _ -> "ok"
  | Degraded _ -> "degraded"
  | Error _ -> "error"
  | Stats _ -> "stats"
  | Session_view { status = Subscribed; _ } -> "subscribed"
  | Session_view { status = Unsubscribed; _ } -> "unsubscribed"
  | Session_view { status = Ledger_report; _ } -> "ledger"
  | Released _ -> "released"
  | Release_push _ -> "release"

let id = function
  | Ok p | Degraded p -> p.id
  | Error { id; _ } | Stats { id; _ } -> id
  | Session_view { id; _ } | Released { id; _ } | Release_push { id; _ } -> id

let error_to_json e =
  let extra =
    match e with
    | Overloaded { pending; capacity } ->
      [ ("pending", J.Int pending); ("capacity", J.Int capacity) ]
    | Uncertified { key; rule } -> [ ("key", J.Str key); ("rule", J.Str rule) ]
    | Budget_exhausted { sub; group; spent; floor } ->
      [
        ("sub", J.Str sub);
        ("group", J.Str group);
        ("spent", J.rat spent);
        ("floor", J.rat floor);
      ]
    | Unknown_key { key } -> [ ("key", J.Str key) ]
    | Unsupported_version { got = Some v } -> [ ("got", J.Str v) ]
    | Unsupported_version { got = None }
    | Malformed _ | Invalid _ | Deadline_exceeded | Internal _ -> []
  in
  J.Obj ((("kind", J.Str (error_kind e)) :: extra) @ [ ("msg", J.Str (error_message e)) ])

let view_to_json (v : Session.view) =
  J.Obj
    ([
       ("sub", J.Str v.Session.v_sub);
       ("group", J.Str v.Session.v_group);
       ("alpha", J.rat v.Session.v_level);
       ("levels", J.List (List.map J.rat v.Session.v_levels));
       ("epoch", J.Int v.Session.v_epoch);
       ("spent", J.rat v.Session.v_spent);
     ]
    @ (match v.Session.v_floor with None -> [] | Some f -> [ ("floor", J.rat f) ])
    @ [
        ("served", J.Int v.Session.v_served);
        ("refusals", J.Int v.Session.v_refusals);
        ("active", J.Bool v.Session.v_active);
      ])

let outcome_to_json (sub, outcome) =
  match outcome with
  | Session.Served { level; value; spent; floor } ->
    J.Obj
      ([
         ("sub", J.Str sub);
         ("outcome", J.Str "served");
         ("alpha", J.rat level);
         ("value", J.Int value);
         ("spent", J.rat spent);
       ]
      @ match floor with None -> [] | Some f -> [ ("floor", J.rat f) ])
  | Session.Refused { level; spent; floor } ->
    J.Obj
      [
        ("sub", J.Str sub);
        ("outcome", J.Str "budget_exhausted");
        ("alpha", J.rat level);
        ("spent", J.rat spent);
        ("floor", J.rat floor);
      ]

let release_to_json (r : Session.release) =
  J.Obj
    [
      ("group", J.Str r.Session.r_group);
      ("epoch", J.Int r.Session.r_epoch);
      ("levels", J.List (Array.to_list (Array.map J.rat r.Session.r_levels)));
      ("values", J.List (Array.to_list (Array.map (fun v -> J.Int v) r.Session.r_values)));
      ("outcomes", J.List (List.map outcome_to_json r.Session.r_outcomes));
      ("certificate", Session.Certificate.to_json r.Session.r_certificate);
    ]

let to_json t =
  let id_field = match id t with None -> [] | Some i -> [ ("id", J.Str i) ] in
  let head = ("v", J.Int Engine.Request.version) :: ("status", J.Str (status t)) :: id_field in
  match t with
  | Ok p | Degraded p ->
    let base =
      head
      @ [
          ("key", J.Str p.key);
          ("rung", J.Str (S.rung_to_string p.rung));
          ("loss", J.rat p.loss);
          ("samples", J.List (Array.to_list (Array.map (fun s -> J.Int s) p.samples)));
        ]
    in
    let prov =
      match t with
      | Degraded _ -> [ ("provenance", S.provenance_to_json p.provenance) ]
      | _ -> []
    in
    J.Obj (base @ prov)
  | Error { error = e; _ } -> J.Obj (head @ [ ("error", error_to_json e) ])
  | Stats { stats; _ } ->
    J.Obj
      (head
      @ [
          ("stats", Stats.to_json stats);
          ("prometheus", J.Str (Stats.to_prometheus stats));
        ])
  | Session_view { view; _ } -> J.Obj (head @ [ ("session", view_to_json view) ])
  | Released { release; _ } -> J.Obj (head @ [ ("release", release_to_json release) ])
  | Release_push { sub; group; epoch; level; value; spent; floor; certificate; _ } ->
    J.Obj
      (head
      @ [
          ("sub", J.Str sub);
          ("group", J.Str group);
          ("epoch", J.Int epoch);
          ("alpha", J.rat level);
          ("value", J.Int value);
          ("spent", J.rat spent);
        ]
      @ (match floor with None -> [] | Some f -> [ ("floor", J.rat f) ])
      @ [ ("certificate", Session.Certificate.to_json certificate) ])

let to_line t = J.to_string (to_json t)
