(** The live telemetry snapshot behind the [v=1 op=stats] admin verb.

    A capture reads the ambient {!Obs} recorder's merged counters and
    the ["server.latency"] rolling window, plus the two pieces of live
    server state the recorder cannot see (queue depth and engine cache
    stats), into one immutable record. The two renderings — the JSON
    snapshot embedded in the stats response and the Prometheus-style
    text exposition carried alongside it — are pure functions of that
    record, so fake-clock tests pin both byte-for-byte.

    Counter reads are point-in-time snapshots of the sharded recorder:
    under concurrent load the numbers are each individually exact but
    need not form one linearizable cut (an admitted request may already
    be counted while its response is not yet). *)

type t = {
  queue_depth : int;  (** admitted jobs not yet picked up by the runner *)
  queue_capacity : int;
  accepted : int;  (** connections accepted *)
  aborted : int;  (** connections whose write side died *)
  admitted : int;
  responses : int;
  degraded : int;  (** served off a lower serve-ladder rung *)
  errors : int;
  stats_served : int;  (** op=stats lines answered *)
  rejected_protocol : int;
  rejected_overloaded : int;
  rejected_deadline : int;
  engine_requests : int;
  engine_samples : int;
  lp_solves : int;  (** LP solves through the [Lp] facade *)
  lp_pivots : int;  (** exact simplex pivots, both engines *)
  lp_warm_hits : int;  (** warm-start attempts that skipped phase 1 *)
  lp_warm_misses : int;  (** warm attempts that fell back to a cold solve *)
  lp_refactor : int;  (** eta-chain rebuilds in the revised engine *)
  cache : Engine.Cache.stats;
  cache_bypassed : int;  (** compiles that skipped the cache (fault trips) *)
  store_hits : int;  (** memory misses answered by the artifact store *)
  store_misses : int;  (** store probes that found no entry *)
  store_corrupt : int;  (** entries refused by frame or verify checks *)
  store_writes : int;  (** artifacts persisted (write-backs) *)
  store_probe : Obs.Rolling.snapshot option;
      (** the ["store.probe.latency"] rolling window; [None] when no
          store is wired or nothing has been probed yet *)
  session_groups : int;  (** live session groups (gauge) *)
  session_subscribers : int;  (** live active subscriptions (gauge) *)
  session_subscribes : int;
  session_unsubscribes : int;
  session_detached : int;  (** subscriptions dropped by dying connections *)
  session_epochs : int;  (** release epochs minted *)
  session_served : int;  (** per-subscriber rungs served *)
  session_refused_budget : int;  (** ledger refusals ([budget_exhausted]) *)
  session_checkpoints : int;  (** durable ledger frames written *)
  session_checkpoint_failed : int;  (** checkpoint writes that failed *)
  session_epoch_latency : Obs.Rolling.snapshot option;
      (** the ["session.epoch.latency"] rolling window; [None] before
          any epoch *)
  latency : Obs.Rolling.snapshot option;
      (** the ["server.latency"] rolling window; [None] when telemetry
          is disabled or nothing has been served yet *)
}

val capture :
  ?session_live:int * int ->
  queue_depth:int ->
  queue_capacity:int ->
  cache:Engine.Cache.stats ->
  unit ->
  t
(** Snapshot the ambient recorder (zeros when disabled) plus the given
    live server state. [session_live] is the {!Session.live} gauge pair
    [(groups, active subscriptions)], defaulting to [(0, 0)] when no
    session table is wired. *)

val to_json : t -> Obs.Json.t
(** The stats snapshot object: [queue], [conns], [requests],
    [rejected], [engine], [lp] (solver-session counters: solves,
    pivots, warm hits/misses, refactorizations), [cache], [store]
    (tier counters plus its
    [probe_latency_us] rolling-quantile object), [session] (live
    gauges, event counters and its [epoch_latency_us] window) and
    [latency_us] (a rolling-quantile object, or [null] before any
    served request). *)

val to_prometheus : t -> string
(** Prometheus text exposition (format 0.0.4) of the same capture:
    gauges for queue depth/capacity and session liveness, [_total]
    counters for connection/request/rejection/cache/store/session
    events, and the store probe, session epoch and latency windows as
    [summary] families with 0.5/0.99/0.999 quantiles. Every series is
    emitted even at zero, so scrapes see a stable set. *)
