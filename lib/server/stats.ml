(* The op=stats telemetry snapshot; see stats.mli.

   One capture, two renderings: the JSON snapshot embedded in the
   op=stats response, and the Prometheus-style text exposition carried
   alongside it. Both are pure functions of the captured record, so a
   fake-clock test pins them byte-for-byte. *)

module J = Obs.Json

type t = {
  queue_depth : int;
  queue_capacity : int;
  accepted : int;
  aborted : int;
  admitted : int;
  responses : int;
  degraded : int;
  errors : int;
  stats_served : int;
  rejected_protocol : int;
  rejected_overloaded : int;
  rejected_deadline : int;
  engine_requests : int;
  engine_samples : int;
  lp_solves : int;
  lp_pivots : int;
  lp_warm_hits : int;
  lp_warm_misses : int;
  lp_refactor : int;
  cache : Engine.Cache.stats;
  cache_bypassed : int;
  store_hits : int;
  store_misses : int;
  store_corrupt : int;
  store_writes : int;
  store_probe : Obs.Rolling.snapshot option;
  session_groups : int;
  session_subscribers : int;
  session_subscribes : int;
  session_unsubscribes : int;
  session_detached : int;
  session_epochs : int;
  session_served : int;
  session_refused_budget : int;
  session_checkpoints : int;
  session_checkpoint_failed : int;
  session_epoch_latency : Obs.Rolling.snapshot option;
  latency : Obs.Rolling.snapshot option;
}

let capture ?(session_live = (0, 0)) ~queue_depth ~queue_capacity ~cache () =
  let session_groups, session_subscribers = session_live in
  {
    queue_depth;
    queue_capacity;
    accepted = Obs.counter_value "server.accepted";
    aborted = Obs.counter_value "server.conn.aborted";
    admitted = Obs.counter_value "server.admitted";
    responses = Obs.counter_value "server.responses";
    degraded = Obs.counter_value "server.degraded";
    errors = Obs.counter_value "server.errors";
    stats_served = Obs.counter_value "server.stats";
    rejected_protocol = Obs.counter_value "server.rejected.protocol";
    rejected_overloaded = Obs.counter_value "server.rejected.overloaded";
    rejected_deadline = Obs.counter_value "server.rejected.deadline";
    engine_requests = Obs.counter_value "engine.requests";
    engine_samples = Obs.counter_value "engine.samples";
    lp_solves = Obs.counter_value "lp.solves";
    lp_pivots = Obs.counter_value "simplex.pivots";
    lp_warm_hits = Obs.counter_value "lp.warm.hits";
    lp_warm_misses = Obs.counter_value "lp.warm.misses";
    lp_refactor = Obs.counter_value "lp.refactor";
    cache;
    cache_bypassed = Obs.counter_value "engine.cache.bypassed";
    store_hits = Obs.counter_value "store.hits";
    store_misses = Obs.counter_value "store.misses";
    store_corrupt = Obs.counter_value "store.corrupt";
    store_writes = Obs.counter_value "store.writes";
    store_probe = Obs.rolling_value "store.probe.latency";
    session_groups;
    session_subscribers;
    session_subscribes = Obs.counter_value "session.subscribes";
    session_unsubscribes = Obs.counter_value "session.unsubscribes";
    session_detached = Obs.counter_value "session.detached";
    session_epochs = Obs.counter_value "session.epochs";
    session_served = Obs.counter_value "session.served";
    session_refused_budget = Obs.counter_value "session.refused.budget";
    session_checkpoints = Obs.counter_value "session.checkpoints";
    session_checkpoint_failed = Obs.counter_value "session.checkpoint.failed";
    session_epoch_latency = Obs.rolling_value "session.epoch.latency";
    latency = Obs.rolling_value "server.latency";
  }

let latency_to_json = function
  | None -> J.Null
  | Some (w : Obs.Rolling.snapshot) ->
    J.Obj
      [
        ("window_ns", J.Int (Int64.to_int w.Obs.Rolling.window_ns));
        ("count", J.Int w.Obs.Rolling.count);
        ("p50_us", J.Int w.Obs.Rolling.p50_us);
        ("p99_us", J.Int w.Obs.Rolling.p99_us);
        ("p999_us", J.Int w.Obs.Rolling.p999_us);
        ("max_us", J.Int w.Obs.Rolling.max_us);
        ("sum_us", J.Int w.Obs.Rolling.sum_us);
      ]

let to_json t =
  J.Obj
    [
      ("queue", J.Obj [ ("depth", J.Int t.queue_depth); ("capacity", J.Int t.queue_capacity) ]);
      ("conns", J.Obj [ ("accepted", J.Int t.accepted); ("aborted", J.Int t.aborted) ]);
      ( "requests",
        J.Obj
          [
            ("admitted", J.Int t.admitted);
            ("responses", J.Int t.responses);
            ("degraded", J.Int t.degraded);
            ("errors", J.Int t.errors);
            ("stats", J.Int t.stats_served);
          ] );
      ( "rejected",
        J.Obj
          [
            ("protocol", J.Int t.rejected_protocol);
            ("overloaded", J.Int t.rejected_overloaded);
            ("deadline", J.Int t.rejected_deadline);
          ] );
      ( "engine",
        J.Obj
          [ ("requests", J.Int t.engine_requests); ("samples", J.Int t.engine_samples) ] );
      ( "lp",
        J.Obj
          [
            ("solves", J.Int t.lp_solves);
            ("pivots", J.Int t.lp_pivots);
            ("warm_hits", J.Int t.lp_warm_hits);
            ("warm_misses", J.Int t.lp_warm_misses);
            ("refactorizations", J.Int t.lp_refactor);
          ] );
      ( "cache",
        J.Obj
          [
            ("hits", J.Int t.cache.Engine.Cache.hits);
            ("misses", J.Int t.cache.Engine.Cache.misses);
            ("evictions", J.Int t.cache.Engine.Cache.evictions);
            ("insertions", J.Int t.cache.Engine.Cache.insertions);
            ("bypassed", J.Int t.cache_bypassed);
          ] );
      ( "store",
        J.Obj
          [
            ("hits", J.Int t.store_hits);
            ("misses", J.Int t.store_misses);
            ("corrupt", J.Int t.store_corrupt);
            ("writes", J.Int t.store_writes);
            ("probe_latency_us", latency_to_json t.store_probe);
          ] );
      ( "session",
        J.Obj
          [
            ("groups", J.Int t.session_groups);
            ("subscribers", J.Int t.session_subscribers);
            ("subscribes", J.Int t.session_subscribes);
            ("unsubscribes", J.Int t.session_unsubscribes);
            ("detached", J.Int t.session_detached);
            ("epochs", J.Int t.session_epochs);
            ("served", J.Int t.session_served);
            ("refused_budget", J.Int t.session_refused_budget);
            ("checkpoints", J.Int t.session_checkpoints);
            ("checkpoint_failed", J.Int t.session_checkpoint_failed);
            ("epoch_latency_us", latency_to_json t.session_epoch_latency);
          ] );
      ("latency_us", latency_to_json t.latency);
    ]

(* Prometheus text exposition format, version 0.0.4: one family per
   TYPE line, counters suffixed _total, the latency window as a
   summary. Every line is emitted even at zero so scrapes see a stable
   set of series. *)
let to_prometheus t =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "# TYPE dpserved_queue_depth gauge\n";
  add "dpserved_queue_depth %d\n" t.queue_depth;
  add "# TYPE dpserved_queue_capacity gauge\n";
  add "dpserved_queue_capacity %d\n" t.queue_capacity;
  add "# TYPE dpserved_connections_total counter\n";
  add "dpserved_connections_total{event=\"accepted\"} %d\n" t.accepted;
  add "dpserved_connections_total{event=\"aborted\"} %d\n" t.aborted;
  add "# TYPE dpserved_requests_total counter\n";
  add "dpserved_requests_total{outcome=\"admitted\"} %d\n" t.admitted;
  add "dpserved_requests_total{outcome=\"responses\"} %d\n" t.responses;
  add "dpserved_requests_total{outcome=\"degraded\"} %d\n" t.degraded;
  add "dpserved_requests_total{outcome=\"errors\"} %d\n" t.errors;
  add "dpserved_requests_total{outcome=\"stats\"} %d\n" t.stats_served;
  add "# TYPE dpserved_rejected_total counter\n";
  add "dpserved_rejected_total{reason=\"protocol\"} %d\n" t.rejected_protocol;
  add "dpserved_rejected_total{reason=\"overloaded\"} %d\n" t.rejected_overloaded;
  add "dpserved_rejected_total{reason=\"deadline\"} %d\n" t.rejected_deadline;
  add "# TYPE dpserved_engine_requests_total counter\n";
  add "dpserved_engine_requests_total %d\n" t.engine_requests;
  add "# TYPE dpserved_engine_samples_total counter\n";
  add "dpserved_engine_samples_total %d\n" t.engine_samples;
  add "# TYPE dpserved_lp_events_total counter\n";
  add "dpserved_lp_events_total{event=\"solves\"} %d\n" t.lp_solves;
  add "dpserved_lp_events_total{event=\"pivots\"} %d\n" t.lp_pivots;
  add "dpserved_lp_events_total{event=\"warm_hits\"} %d\n" t.lp_warm_hits;
  add "dpserved_lp_events_total{event=\"warm_misses\"} %d\n" t.lp_warm_misses;
  add "dpserved_lp_events_total{event=\"refactorizations\"} %d\n" t.lp_refactor;
  add "# TYPE dpserved_cache_events_total counter\n";
  add "dpserved_cache_events_total{event=\"hits\"} %d\n" t.cache.Engine.Cache.hits;
  add "dpserved_cache_events_total{event=\"misses\"} %d\n" t.cache.Engine.Cache.misses;
  add "dpserved_cache_events_total{event=\"evictions\"} %d\n" t.cache.Engine.Cache.evictions;
  add "dpserved_cache_events_total{event=\"insertions\"} %d\n" t.cache.Engine.Cache.insertions;
  add "dpserved_cache_events_total{event=\"bypassed\"} %d\n" t.cache_bypassed;
  add "# TYPE dpserved_store_events_total counter\n";
  add "dpserved_store_events_total{event=\"hits\"} %d\n" t.store_hits;
  add "dpserved_store_events_total{event=\"misses\"} %d\n" t.store_misses;
  add "dpserved_store_events_total{event=\"corrupt\"} %d\n" t.store_corrupt;
  add "dpserved_store_events_total{event=\"writes\"} %d\n" t.store_writes;
  add "# TYPE dpserved_session_groups gauge\n";
  add "dpserved_session_groups %d\n" t.session_groups;
  add "# TYPE dpserved_session_subscribers gauge\n";
  add "dpserved_session_subscribers %d\n" t.session_subscribers;
  add "# TYPE dpserved_session_events_total counter\n";
  add "dpserved_session_events_total{event=\"subscribes\"} %d\n" t.session_subscribes;
  add "dpserved_session_events_total{event=\"unsubscribes\"} %d\n" t.session_unsubscribes;
  add "dpserved_session_events_total{event=\"detached\"} %d\n" t.session_detached;
  add "dpserved_session_events_total{event=\"epochs\"} %d\n" t.session_epochs;
  add "dpserved_session_events_total{event=\"served\"} %d\n" t.session_served;
  add "dpserved_session_events_total{event=\"refused_budget\"} %d\n" t.session_refused_budget;
  add "dpserved_session_events_total{event=\"checkpoints\"} %d\n" t.session_checkpoints;
  add "dpserved_session_events_total{event=\"checkpoint_failed\"} %d\n"
    t.session_checkpoint_failed;
  let window w =
    match w with
    | None -> (0, 0, 0, 0, 0)
    | Some w ->
      ( w.Obs.Rolling.count,
        w.Obs.Rolling.p50_us,
        w.Obs.Rolling.p99_us,
        w.Obs.Rolling.p999_us,
        w.Obs.Rolling.sum_us )
  in
  let summary family w =
    let count, p50, p99, p999, sum = window w in
    add "# TYPE %s summary\n" family;
    add "%s{quantile=\"0.5\"} %d\n" family p50;
    add "%s{quantile=\"0.99\"} %d\n" family p99;
    add "%s{quantile=\"0.999\"} %d\n" family p999;
    add "%s_sum %d\n" family sum;
    add "%s_count %d\n" family count
  in
  summary "dpserved_store_probe_microseconds" t.store_probe;
  summary "dpserved_session_epoch_microseconds" t.session_epoch_latency;
  summary "dpserved_latency_microseconds" t.latency;
  Buffer.contents buf
