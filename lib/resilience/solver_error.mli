(** One taxonomy for every way an exact solve can fail to return an
    optimum, so no bare exception escapes [lib/].

    Infeasibility and unboundedness are mathematical verdicts about the
    problem; {!Exhausted} is an operational verdict about the solve —
    some {!Budget} dimension ran out (or a {!Fault} plan injected an
    exhaustion) before the simplex reached a vertex. An [Exhausted]
    value always names the site that tripped and carries the budget
    spent up to that point, so degradation decisions and provenance
    records are exact and replayable. *)

(** Which budget dimension ran out. *)
type budget_kind =
  | Deadline  (** the wall-clock deadline on the budget's clock passed *)
  | Pivots  (** the simplex pivot allowance was spent *)
  | Bits  (** a pivot coefficient crossed the bit-size ceiling *)
  | Injected  (** a {!Fault} plan forced exhaustion at the site *)

type exhaustion = {
  site : string;  (** trigger site, e.g. ["simplex.phase2"] *)
  kind : budget_kind;
  pivots : int;  (** pivots spent in the exhausted solve *)
  peak_bits : int;  (** largest pivot-coefficient bit size observed; 0
                        when bit tracking was off *)
}

type t =
  | Infeasible
  | Unbounded
  | Exhausted of exhaustion

exception Error of { context : string; error : t }
(** The escape hatch for call sites where a failure is impossible by
    theorem (e.g. the §2.5 LP always admits the geometric mechanism):
    instead of [assert false], raise a witness that says which solver
    failed, where, and why. A printer is registered. *)

val fail : context:string -> t -> 'a
(** [fail ~context e] raises {!Error}. *)

val kind_to_string : budget_kind -> string
val to_string : t -> string
(** Deterministic rendering, e.g.
    ["exhausted(site=simplex.phase2,kind=pivots,pivots=128,peak_bits=341)"]. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t
(** Structured form for CLI output and provenance records. *)
