(* Consolidated solver-failure taxonomy; see solver_error.mli. *)

type budget_kind =
  | Deadline
  | Pivots
  | Bits
  | Injected

type exhaustion = {
  site : string;
  kind : budget_kind;
  pivots : int;
  peak_bits : int;
}

type t =
  | Infeasible
  | Unbounded
  | Exhausted of exhaustion

exception Error of { context : string; error : t }

let kind_to_string = function
  | Deadline -> "deadline"
  | Pivots -> "pivots"
  | Bits -> "bits"
  | Injected -> "injected"

let to_string = function
  | Infeasible -> "infeasible"
  | Unbounded -> "unbounded"
  | Exhausted { site; kind; pivots; peak_bits } ->
    Printf.sprintf "exhausted(site=%s,kind=%s,pivots=%d,peak_bits=%d)" site
      (kind_to_string kind) pivots peak_bits

let pp fmt e = Format.pp_print_string fmt (to_string e)

let fail ~context error = raise (Error { context; error })

let to_json = function
  | Infeasible -> Obs.Json.Obj [ ("verdict", Obs.Json.Str "infeasible") ]
  | Unbounded -> Obs.Json.Obj [ ("verdict", Obs.Json.Str "unbounded") ]
  | Exhausted { site; kind; pivots; peak_bits } ->
    Obs.Json.Obj
      [
        ("verdict", Obs.Json.Str "exhausted");
        ("site", Obs.Json.Str site);
        ("kind", Obs.Json.Str (kind_to_string kind));
        ("pivots", Obs.Json.Int pivots);
        ("peak_bits", Obs.Json.Int peak_bits);
      ]

let () =
  Printexc.register_printer (function
    | Error { context; error } ->
      Some (Printf.sprintf "Solver_error.Error(%s: %s)" context (to_string error))
    | _ -> None)
