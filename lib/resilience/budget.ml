type t = {
  clock : Obs.Clock.t;
  deadline_ns : int64 option;
  max_pivots : int option;
  max_bits : int option;
}

let make ?(clock = Obs.Clock.monotonic) ?deadline_ms ?max_pivots ?max_bits () =
  let deadline_ns =
    match deadline_ms with
    | None -> None
    | Some ms -> Some (Int64.add (clock ()) (Int64.mul (Int64.of_int ms) 1_000_000L))
  in
  { clock; deadline_ns; max_pivots; max_bits }

let unlimited =
  { clock = Obs.Clock.monotonic; deadline_ns = None; max_pivots = None; max_bits = None }

let is_unlimited b =
  b.deadline_ns = None && b.max_pivots = None && b.max_bits = None

let check b ~pivots ~peak_bits =
  match b.max_pivots with
  | Some cap when pivots >= cap -> Some Solver_error.Pivots
  | _ -> (
    match b.max_bits with
    | Some cap when peak_bits > cap -> Some Solver_error.Bits
    | _ -> (
      match b.deadline_ns with
      | Some dl when Int64.compare (b.clock ()) dl > 0 -> Some Solver_error.Deadline
      | _ -> None))

let to_string b =
  let dim name = function
    | None -> name ^ "=∞"
    | Some v -> Printf.sprintf "%s=%d" name v
  in
  let deadline =
    match b.deadline_ns with None -> "deadline=∞" | Some _ -> "deadline=set"
  in
  Printf.sprintf "budget(%s,%s,%s)" deadline
    (dim "max_pivots" b.max_pivots)
    (dim "max_bits" b.max_bits)
