(** Resource budgets for exact solves.

    A budget bounds a solve along three independent dimensions — a
    wall-clock deadline on an injectable {!Obs.Clock.t}, a simplex
    pivot allowance, and a ceiling on pivot-coefficient bit sizes.
    [None] in a dimension means unlimited. A budget is immutable; the
    solver tracks its own pivot count and peak bit size and asks
    {!check} whether any dimension has run out.

    The deadline is stored as an {e absolute} clock reading computed at
    {!make} time, so a budget threaded through a multi-stage ladder
    charges every rung against the same wall-clock window. *)

type t = {
  clock : Obs.Clock.t;
  deadline_ns : int64 option;  (** absolute reading on [clock] *)
  max_pivots : int option;
  max_bits : int option;
}

val make :
  ?clock:Obs.Clock.t ->
  ?deadline_ms:int ->
  ?max_pivots:int ->
  ?max_bits:int ->
  unit ->
  t
(** [make ()] is unlimited; [deadline_ms] is relative to the clock's
    reading now (default clock: {!Obs.Clock.monotonic}). *)

val unlimited : t
(** No deadline, no pivot cap, no bit ceiling. *)

val is_unlimited : t -> bool

val check : t -> pivots:int -> peak_bits:int -> Solver_error.budget_kind option
(** [check b ~pivots ~peak_bits] returns the first exhausted dimension,
    testing deterministic dimensions first: [Pivots] when
    [pivots >= max_pivots], then [Bits] when [peak_bits > max_bits],
    then [Deadline] when the clock has passed the deadline. [None]
    while within budget. *)

val to_string : t -> string
(** Deterministic rendering of the configured limits (the clock and
    any absolute deadline are rendered symbolically, not as
    timestamps). *)
