type action =
  | Trip
  | Exhaust of Solver_error.budget_kind
  | Blowup_bits of int

type trigger = { site : string; hits : int; action : action }

type plan = {
  triggers : trigger list;
  counts : (string, int) Hashtbl.t;
  mutable trips : int;
}

let plan triggers = { triggers; counts = Hashtbl.create 8; trips = 0 }

exception Injected of { site : string; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
      Some (Printf.sprintf "Fault.Injected(site=%s,hit=%d)" site hit)
    | _ -> None)

let ambient : plan option ref = ref None
let install p = ambient := p
let enabled () = !ambient <> None

let with_plan p f =
  let previous = !ambient in
  ambient := Some p;
  Fun.protect ~finally:(fun () -> ambient := previous) f

let hit site =
  match !ambient with
  | None -> None
  | Some p ->
    let n = 1 + (try Hashtbl.find p.counts site with Not_found -> 0) in
    Hashtbl.replace p.counts site n;
    let fires t = t.site = site && (t.hits = 0 || t.hits = n) in
    (match List.find_opt fires p.triggers with
    | None -> None
    | Some t ->
      p.trips <- p.trips + 1;
      Obs.incr "fault.trips";
      Some t.action)

let trip site =
  match hit site with
  | None -> ()
  | Some _ ->
    let n =
      match !ambient with
      | Some p -> ( try Hashtbl.find p.counts site with Not_found -> 0)
      | None -> 0
    in
    raise (Injected { site; hit = n })

let hit_count p site = try Hashtbl.find p.counts site with Not_found -> 0
let trips p = p.trips
