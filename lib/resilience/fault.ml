type action =
  | Trip
  | Exhaust of Solver_error.budget_kind
  | Blowup_bits of int

type trigger = { site : string; hits : int; action : action }

type plan = {
  triggers : trigger list;
  counts : (string, int) Hashtbl.t;
  mutable trips : int;
}

let plan triggers = { triggers; counts = Hashtbl.create 8; trips = 0 }

exception Injected of { site : string; hit : int }

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
      Some (Printf.sprintf "Fault.Injected(site=%s,hit=%d)" site hit)
    | _ -> None)

(* analysis: domain-local — the ambient plan is one word: installs and
   reads are single-word stores/loads of an immutable option; the
   plan's own trip counters serialize behind its mutex. *)
let ambient : plan option ref = ref None
let install p = ambient := p
let enabled () = !ambient <> None

(* Domain safety: worker Domains hit trigger sites concurrently
   ("engine.worker" fires inside the pool). One global mutex guards
   the per-site hit counters and the trip tally; the disabled path is
   still a single ref read. The ambient Obs counter is bumped outside
   the lock — Obs has its own. *)
let lock = Mutex.create ()

let with_plan p f =
  let previous = !ambient in
  ambient := Some p;
  Fun.protect ~finally:(fun () -> ambient := previous) f

(* Count the hit and match triggers under the lock, returning the
   1-based hit number alongside the action so callers never re-read a
   counter another domain may since have advanced. *)
let hit_numbered site =
  match !ambient with
  | None -> None
  | Some p ->
    let fired =
      Mutex.protect lock (fun () ->
          let n = 1 + (try Hashtbl.find p.counts site with Not_found -> 0) in
          Hashtbl.replace p.counts site n;
          let fires t = t.site = site && (t.hits = 0 || t.hits = n) in
          match List.find_opt fires p.triggers with
          | None -> None
          | Some t ->
            p.trips <- p.trips + 1;
            Some (t.action, n))
    in
    (match fired with
    | None -> None
    | Some _ ->
      Obs.incr "fault.trips";
      fired)

let hit site = Option.map fst (hit_numbered site)

let trip site =
  match hit_numbered site with
  | None -> ()
  | Some (_, n) -> raise (Injected { site; hit = n })

let hit_count p site =
  Mutex.protect lock (fun () -> try Hashtbl.find p.counts site with Not_found -> 0)

let trips p = Mutex.protect lock (fun () -> p.trips)
