(** Deterministic fault injection for chaos tests.

    Instrumented code declares named trigger sites — ["simplex.phase1"],
    ["simplex.phase2"], ["matrix.inverse"], ["dpdb.csv.row"], … — by
    calling {!hit} (solver
    sites that translate faults into budget exhaustion) or {!trip}
    (sites that raise {!Injected} directly). A test installs a
    {!plan} listing which sites fire, on which hit, with which
    {!action}; with no plan installed every call is one ref read plus a
    branch, the same ambient pattern as {!Obs}.

    Plans are deterministic by construction: triggers match on exact
    hit counts and the registry holds no clock or randomness, so the
    same plan against the same code path trips the same faults in the
    same order, every run.

    The registry is domain-safe: hit counters and the trip tally are
    serialized behind an internal mutex (sites like ["engine.worker"]
    fire concurrently from the engine's Domain pool), and a firing
    {!hit} reports the hit number it matched rather than re-reading a
    counter other domains may advance. The disabled path is still a
    single ref read. *)

(** What happens when a trigger fires. *)
type action =
  | Trip  (** raise {!Injected} (via {!trip}) / exhaust with kind
              [Injected] (via {!hit} at a solver site) *)
  | Exhaust of Solver_error.budget_kind
      (** solver sites report budget exhaustion of this kind *)
  | Blowup_bits of int
      (** solver sites behave as if a pivot coefficient reached this
          many bits, tripping any [max_bits] ceiling *)

type trigger = {
  site : string;
  hits : int;  (** fire on the [hits]-th call at [site] (1-based);
                   [0] fires on {e every} call *)
  action : action;
}

type plan

val plan : trigger list -> plan
(** Fresh plan with all hit counters at zero. *)

exception Injected of { site : string; hit : int }
(** Raised by {!trip} (and by {!hit} at non-solver call sites that
    choose to re-raise). Carries the site and the 1-based hit number
    that fired. *)

val install : plan option -> unit
(** Install or remove the ambient plan. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** Run with [p] ambient, restoring the previous plan on exit (also on
    exceptions). *)

val enabled : unit -> bool

val hit : string -> action option
(** [hit site] counts one hit at [site] and returns the action of the
    first matching trigger, if any fires now. Bumps the
    ["fault.trips"] counter when a trigger fires. No plan installed:
    returns [None] after one ref read. *)

val trip : string -> unit
(** [trip site] is [hit site] for sites with no budget machinery:
    any firing trigger raises {!Injected}. *)

val hit_count : plan -> string -> int
(** Hits recorded so far at [site] (0 if never hit). *)

val trips : plan -> int
(** Total triggers fired so far under this plan. *)
