(** The stable public surface, under one name.

    External users depend on this library instead of the dozen
    internal dune libraries behind it. The curated re-exports are the
    supported API; everything else in the tree is an implementation
    detail that may move between PRs:

    - {!Request} — the versioned wire grammar and canonical cache keys
      ({!Engine.Request});
    - {!Response} — the one ok / degraded / typed-error response
      surface and its JSON schema ({!Server.Response});
    - {!Engine} — compiled mechanisms, the LRU cache, and
      {!Engine.run_batch} / {!Engine.run_jobs} over the Domain pool;
    - {!Server} — the TCP front-end;
    - {!Seeder} — deterministic per-request stream allocation;
    - {!Serve} — the budgeted degradation ladder
      ({!Minimax.Serve.serve});
    - {!Invariants} — independent certification of released matrices
      ({!Check.Invariants});
    - {!Budget} — solve budgets ({!Resilience.Budget});
    - {!Solver} — stateful LP solver sessions with warm-started
      revised simplex ({!Lp.Solver});
    - {!Store} — the crash-safe persistent artifact store behind
      warm restarts ([--store]);
    - {!Session} — multi-level release as a stateful service:
      subscriptions, privacy-budget ledgers, and replayable collusion
      certificates ([--session-store]);
    - {!Obs} — the telemetry plane: sharded recorder, traces, rolling
      latency windows, and the text / JSON / Chrome-trace sinks. *)

module Request = Engine.Request
module Response = Server.Response
module Seeder = Engine.Seeder
module Serve = Minimax.Serve
module Invariants = Check.Invariants
module Budget = Resilience.Budget
module Solver = Lp.Solver
module Engine = Engine
module Server = Server
module Store = Store
module Session = Session
module Obs = Obs
