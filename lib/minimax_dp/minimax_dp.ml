(* The curated facade; see minimax_dp.mli. *)

module Request = Engine.Request
module Response = Server.Response
module Seeder = Engine.Seeder
module Serve = Minimax.Serve
module Invariants = Check.Invariants
module Budget = Resilience.Budget
module Solver = Lp.Solver
module Engine = Engine
module Server = Server
module Store = Store
module Session = Session
module Obs = Obs
