(** Per-module symbol table.

    One [t] summarizes everything the cross-module passes need to know
    about a single [.ml] file: which modules it references (for the
    dependency graph), its top-level mutable state and mutable record
    fields, which token spans are lexically guarded by a mutex, where
    [Domain.spawn] is called, every float-flavoured token, and the
    analysis waivers its comments carry.

    {2 Guarded regions}

    A token is {e guarded} when it sits inside one of these lexical
    regions:
    - the argument span of a [Mutex.protect] call (from the call to
      the first token at a shallower bracket depth, bounded by the
      next top-level item);
    - the argument span of a call to a {e guard helper} — a top-level
      binding whose body starts with [Mutex.protect], e.g.
      [let locked f = Mutex.protect lock f];
    - a [Mutex.lock] … [Mutex.unlock] span: from a lock to the last
      unlock before the next lock (or the end of the item), which
      keeps multi-exit critical sections like early-unlock error arms
      inside one region.

    This is a lexical approximation, deliberately biased against false
    positives: code between an unlock and the next lock of the same
    item is correctly outside, but a guard region never ends early.

    {2 Waivers}

    A waiver is a comment of the form
    [(* analysis: <tag> — <why> *)] with
    [<tag>] one of [domain-local], [float-ok], [order-insensitive],
    [clock-ok]. It covers its own line(s) and the next code line; a
    standalone waiver placed directly above a [let]/[type]/[module]
    item covers that whole item (so one waiver on a type declaration
    covers every mutable field it declares, and one above a binding
    covers the binding's body). A waiver whose [<why>] is missing or
    vacuous is {e bare} and is itself reported; bare and unknown-tag
    waivers never suppress anything. *)

type mutable_kind = Ref | Table | Buf | Arr | Queue_like

val kind_to_string : mutable_kind -> string

type global = {
  gname : string;
  gkind : mutable_kind;
  gline : int;
  gtok : int;  (** token index of the binding name *)
}

type field = { fname : string; fline : int }

type waiver = {
  wtag : string;
  wwhy : string;
  wline : int;
  wfrom : int;  (** first covered line *)
  wto : int;  (** last covered line *)
}

type call = { chain : string list; fn : string; cline : int }
(** A qualified lowercase access [A.B.fn], e.g. [Hashtbl.fold] or
    [Engine.Seeder.stream]. *)

type t = {
  path : string;
  modname : string;  (** capitalized basename *)
  toks : Lexer.token array;
  guarded : bool array;  (** same length as [toks] *)
  refs : (string list * int) list;  (** capitalized chains + line *)
  calls : call list;
  globals : global list;  (** top-level mutable state *)
  fields : field list;  (** [mutable] record fields *)
  waivers : waiver list;  (** well-formed waivers only *)
  malformed_waivers : (string * string * int) list;
      (** (rule-suffix, message, line): bare or unknown-tag waivers *)
  spawn_lines : int list;  (** [Domain.spawn] call sites *)
  float_sites : (string * int) list;
      (** float literals, [Float.*] calls, [*_of_float]/[float_of_*],
          float operators — token text + line *)
}

val valid_tags : string list

val module_name_of_path : string -> string
(** ["lib/obs/obs.ml"] → ["Obs"] *)

val of_source : path:string -> string -> t
val of_file : string -> t

val waived : t -> tag:string -> line:int -> bool
(** Is [line] covered by a well-formed waiver carrying [tag]? *)
