(* Token-level OCaml lexer; see lexer.mli. *)

type kind = Ident | Uident | Int | Float | String | Char | Comment | Op | Punct

type token = {
  kind : kind;
  text : string;
  line : int;
  end_line : int;
  col : int;
  depth : int;
}

let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '\''
let is_op_char c = String.contains "!$%&*+-./:<=>?@^|~" c

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One mutable cursor over the buffer; [line]/[bol] track positions so
   every token is stamped without a second scan. *)
type cursor = {
  src : string;
  len : int;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;  (* offset of the current line's first char *)
  mutable depth : int;
}
(* analysis: domain-local — a cursor lives entirely inside one
   [tokenize] call on one domain; it never escapes. *)

let peek cur k = if cur.pos + k < cur.len then Some cur.src.[cur.pos + k] else None

let advance cur =
  (if cur.pos < cur.len && cur.src.[cur.pos] = '\n' then begin
     cur.line <- cur.line + 1;
     cur.bol <- cur.pos + 1
   end);
  cur.pos <- cur.pos + 1

let advance_n cur n =
  for _ = 1 to n do
    advance cur
  done

(* Skip a nested comment starting at "(*"; returns the end position.
   String literals inside comments protect a closing "*)". *)
let skip_comment cur =
  let start = cur.pos in
  advance_n cur 2;
  let depth = ref 1 in
  let in_string = ref false in
  while !depth > 0 && cur.pos < cur.len do
    let c = cur.src.[cur.pos] in
    if !in_string then begin
      if c = '\\' then advance_n cur 2
      else begin
        if c = '"' then in_string := false;
        advance cur
      end
    end
    else if c = '(' && peek cur 1 = Some '*' then begin
      incr depth;
      advance_n cur 2
    end
    else if c = '*' && peek cur 1 = Some ')' then begin
      decr depth;
      advance_n cur 2
    end
    else begin
      if c = '"' then in_string := true;
      advance cur
    end
  done;
  String.sub cur.src start (cur.pos - start)

let skip_string cur =
  advance cur;
  let fin = ref false in
  while (not !fin) && cur.pos < cur.len do
    match cur.src.[cur.pos] with
    | '\\' -> advance_n cur 2
    | '"' ->
      advance cur;
      fin := true
    | _ -> advance cur
  done

(* {|...|} / {id|...|id} quoted string. The cursor sits on '{';
   returns true iff this really was a quoted string. *)
let try_quoted_string cur =
  let j = ref (cur.pos + 1) in
  while !j < cur.len && is_lower cur.src.[!j] do
    incr j
  done;
  if !j < cur.len && cur.src.[!j] = '|' then begin
    let id = String.sub cur.src (cur.pos + 1) (!j - cur.pos - 1) in
    let closing = "|" ^ id ^ "}" in
    let clen = String.length closing in
    advance_n cur (!j - cur.pos + 1);
    let fin = ref false in
    while (not !fin) && cur.pos < cur.len do
      if
        cur.src.[cur.pos] = '|'
        && cur.pos + clen <= cur.len
        && String.sub cur.src cur.pos clen = closing
      then begin
        advance_n cur clen;
        fin := true
      end
      else advance cur
    done;
    true
  end
  else false

(* ['x'] / ['\n'] / ['\123'] are literals; ['a] is a type variable.
   The cursor sits on the quote. Returns true iff a literal was
   consumed. *)
let try_char_literal cur =
  match peek cur 1 with
  | Some '\\' ->
    let j = ref (cur.pos + 2) in
    while !j < cur.len && cur.src.[!j] <> '\'' && !j - cur.pos <= 5 do
      incr j
    done;
    if !j < cur.len && cur.src.[!j] = '\'' then begin
      advance_n cur (!j - cur.pos + 1);
      true
    end
    else begin
      advance cur;
      false
    end
  | Some _ when peek cur 2 = Some '\'' ->
    advance_n cur 3;
    true
  | _ ->
    advance cur;
    false

let number cur =
  let start = cur.pos in
  let is_float = ref false in
  (match (peek cur 0, peek cur 1) with
  | Some '0', Some ('x' | 'X' | 'o' | 'O' | 'b' | 'B') ->
    advance_n cur 2;
    while
      cur.pos < cur.len
      && (is_digit cur.src.[cur.pos]
         || (cur.src.[cur.pos] >= 'a' && cur.src.[cur.pos] <= 'f')
         || (cur.src.[cur.pos] >= 'A' && cur.src.[cur.pos] <= 'F')
         || cur.src.[cur.pos] = '_')
    do
      advance cur
    done
  | _ ->
    while cur.pos < cur.len && (is_digit cur.src.[cur.pos] || cur.src.[cur.pos] = '_') do
      advance cur
    done;
    if cur.pos < cur.len && cur.src.[cur.pos] = '.' then begin
      (* [1.] and [1.5] are floats, but [1..] never occurs and
         [x.(i)]-style access cannot start with a digit. *)
      is_float := true;
      advance cur;
      while cur.pos < cur.len && (is_digit cur.src.[cur.pos] || cur.src.[cur.pos] = '_') do
        advance cur
      done
    end;
    (match peek cur 0 with
    | Some ('e' | 'E') ->
      let k = match peek cur 1 with Some ('+' | '-') -> 2 | _ -> 1 in
      (match peek cur k with
      | Some c when is_digit c ->
        is_float := true;
        advance_n cur k;
        while cur.pos < cur.len && (is_digit cur.src.[cur.pos] || cur.src.[cur.pos] = '_') do
          advance cur
        done
      | _ -> ())
    | _ -> ()));
  (* int-literal suffixes *)
  (match peek cur 0 with
  | Some ('l' | 'L' | 'n') when not !is_float -> advance cur
  | _ -> ());
  (String.sub cur.src start (cur.pos - start), !is_float)

let tokenize src =
  let cur = { src; len = String.length src; pos = 0; line = 1; bol = 0; depth = 0 } in
  let out = ref [] in
  let emit kind text ~line ~end_line ~col ~depth =
    out := { kind; text; line; end_line; col; depth } :: !out
  in
  while cur.pos < cur.len do
    let c = cur.src.[cur.pos] in
    let line = cur.line and col = cur.pos - cur.bol and depth = cur.depth in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then advance cur
    else if c = '(' && peek cur 1 = Some '*' then begin
      let text = skip_comment cur in
      emit Comment text ~line ~end_line:cur.line ~col ~depth
    end
    else if c = '"' then begin
      skip_string cur;
      emit String "\"" ~line ~end_line:cur.line ~col ~depth
    end
    else if c = '{' && try_quoted_string cur then
      emit String "\"" ~line ~end_line:cur.line ~col ~depth
    else if c = '\'' && (cur.pos = 0 || not (is_ident_char cur.src.[cur.pos - 1])) then begin
      if try_char_literal cur then emit Char "'" ~line ~end_line:line ~col ~depth
      (* else: type variable quote, already advanced past — drop it *)
    end
    else if is_digit c then begin
      let text, is_float = number cur in
      emit (if is_float then Float else Int) text ~line ~end_line:line ~col ~depth
    end
    else if is_lower c || is_upper c then begin
      let start = cur.pos in
      while cur.pos < cur.len && is_ident_char cur.src.[cur.pos] do
        advance cur
      done;
      let text = String.sub cur.src start (cur.pos - start) in
      emit (if is_upper c then Uident else Ident) text ~line ~end_line:line ~col ~depth
    end
    else if is_op_char c then begin
      let start = cur.pos in
      while cur.pos < cur.len && is_op_char cur.src.[cur.pos] do
        advance cur
      done;
      emit Op (String.sub cur.src start (cur.pos - start)) ~line ~end_line:line ~col ~depth
    end
    else begin
      (match c with
      | '(' | '[' | '{' -> cur.depth <- cur.depth + 1
      | ')' | ']' | '}' -> cur.depth <- Stdlib.max 0 (cur.depth - 1)
      | _ -> ());
      advance cur;
      emit Punct (String.make 1 c) ~line ~end_line:line ~col ~depth
    end
  done;
  Array.of_list (List.rev !out)
