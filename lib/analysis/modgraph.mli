(** Module-dependency graph over the serving tree.

    Built from two sources of truth that are combined rather than
    guessed: [dune] files give the unit structure (library and
    executable names, their declared library dependencies), and the
    token-level reference chains from {!Modinfo} give file-to-file
    edges. A capitalized chain [A.B] in file [F] resolves to:

    + a sibling module [a.ml] of [F]'s own unit (wrapped-library
      short form), or
    + library [a]'s module [b.ml] when [F]'s unit declares library
      [a] as a dependency ([A.B] = [Lib.Module]), or the library's
      main module [a.ml] when the chain stops at the library name, or
    + every module of library [a] when neither narrows it (coarse but
      sound for reachability), or
    + nothing — [A] is external ([List], [Unix], …) and carries no
      in-tree edge.

    Edges point from a file to the files it references, so a closure
    from the exact core is "everything the core's behaviour can
    depend on", and a closure from the serve path is "everything a
    served byte can pass through". *)

type t

val build : roots:string list -> t
(** Scan every directory under [roots] (skipping [_build] and
    dotfiles), parse each [dune] file, and lex every [.ml] file. *)

val paths : t -> string list
(** All analyzed file paths, sorted. *)

val info : t -> string -> Modinfo.t option

val infos : t -> Modinfo.t list
(** All symbol tables, sorted by path. *)

val edges_of : t -> string -> string list
(** Outgoing edges (referenced in-tree files), sorted, deduplicated. *)

val closure : t -> roots:string list -> (string * string list) list
(** Breadth-first dependency closure from [roots] (file paths).
    Returns each reachable file with its witness chain — a shortest
    reference path [root; …; file] — sorted by file path. Root files
    appear with the singleton chain. Unknown root paths are ignored. *)

val under : dirs_or_files:string list -> string -> bool
(** Does a path sit under one of the given directories (or equal one
    of the given files)? Purely textual: ["lib/obs"] matches
    ["lib/obs/obs.ml"]. *)
