(** Cross-module static analysis over the serving tree.

    Three passes — {!Passes.domain_safety}, {!Passes.float_taint} and
    {!Passes.determinism} — run over a {!Modgraph.t} built from the
    configured roots, plus waiver hygiene over every scanned file. The
    result is a list of {!Check.Diagnostic.t}s, optionally reduced by
    an accepted-findings {!Baseline.t} so the wall starts green and
    only ratchets.

    The exit-code contract lives one level up (in [dplint analyze]):
    exit 1 iff at least one error-severity diagnostic survives
    baseline subtraction. *)

module Lexer = Lexer
module Modinfo = Modinfo
module Modgraph = Modgraph
module Passes = Passes
module Baseline = Baseline

type config = {
  roots : string list;  (** directories to scan, e.g. [["lib"; "bin"]] *)
  core_dirs : string list;  (** the exact core, for float taint *)
  serve_roots : string list;
      (** directories or files whose closure is the serve path *)
  clock_exempt : string list;
      (** directories allowed to read the wall clock (the injectable
          clock's own home) *)
}

val default_config : config
(** Scans [lib] and [bin]; exact core = [lib/bigint], [lib/rational],
    [lib/linalg], [lib/lp], [lib/mech]; serve roots = [lib/server],
    [lib/engine], [lib/store], [lib/session], [lib/minimax_dp],
    [bin/dpserved.ml]; clock-exempt = [lib/obs]. *)

type outcome = {
  diagnostics : Check.Diagnostic.t list;
      (** surviving findings plus stale-baseline warnings, sorted by
          (file, line, rule) *)
  errors : int;  (** error-severity count after subtraction *)
  warnings : int;
  suppressed : int;  (** findings absorbed by the baseline *)
  files : int;  (** .ml files analyzed *)
}

val raw : config -> Check.Diagnostic.t list
(** All findings with no baseline applied, sorted and deduplicated —
    the input to [Baseline.of_diagnostics] when (re)writing a
    baseline. *)

val run : ?baseline:Baseline.t -> config -> outcome

val to_json : outcome -> Check.Json.t
(** [{"files": …, "errors": …, "warnings": …, "suppressed": …,
    "diagnostics": […]}] with each diagnostic in
    {!Check.Diagnostic.to_json} form. *)
