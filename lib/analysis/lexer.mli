(** Token-level OCaml lexer for the cross-module analyzer.

    [lib/check]'s line lint works on a stripped character buffer; the
    analyzer needs more structure — token kinds, positions, nesting
    depth, and the text of comments (where waivers live) — without the
    weight of a full parser. This lexer produces exactly that: a flat
    token array with enough geometry (line, column, bracket depth) for
    the lexical-region reasoning the passes do.

    Deliberate approximations, shared with every consumer:
    - keywords are plain {!Ident} tokens ([let], [mutable], …);
    - operator characters are grouped maximally ([+.], [<-], [:=]);
    - [{|…|}] and [{id|…|id}] quoted strings lex as one {!String};
    - character literals and type variables are disambiguated the same
      way [Check.Lint] does (['x'] / ['\n'] literal, ['a] variable). *)

type kind =
  | Ident  (** lowercase/underscore-led identifier, including keywords *)
  | Uident  (** capitalized identifier: module, constructor *)
  | Int
  | Float  (** any literal with a ['.'] or exponent *)
  | String  (** body not preserved; the token text is ["\""] *)
  | Char
  | Comment  (** full text including delimiters, possibly multi-line *)
  | Op  (** maximal run of operator characters *)
  | Punct  (** single bracket, paren, brace, or other punctuation *)

type token = {
  kind : kind;
  text : string;
  line : int;  (** 1-based start line *)
  end_line : int;  (** = [line] except for multi-line comments/strings *)
  col : int;  (** 0-based column of the first character *)
  depth : int;  (** ['('], ['['], ['{'] nesting depth {e before} this token *)
}

val tokenize : string -> token array
(** Lex a complete source buffer. Never raises: unrecognizable bytes
    become single-character {!Punct} tokens, and an unterminated
    comment or string simply ends at end of file. *)

val read_file : string -> string
(** Binary-exact file slurp (shared helper for the analyzer drivers). *)
