(** The three cross-module analysis passes, plus waiver hygiene.

    Every finding is an error-severity {!Check.Diagnostic.t} with a
    [Source_line] location and a witness carrying at least the
    offending [symbol] and — for the reachability passes — the
    [chain] of module references that makes the file relevant
    (["lib/mech/geometric.ml -> lib/prob/rng.ml"]). *)

val domain_safety : Modgraph.t -> Check.Diagnostic.t list
(** Rule [analysis/domain-unsafe]. In every module reachable from a
    [Domain.spawn] site: each top-level [ref]/[Hashtbl]/[Buffer]/
    array/[Queue] binding and each [mutable] record field must be
    accessed (globals: any use; fields: any [<-] write) only inside a
    lexically guarded region ({!Modinfo}), unless the declaration or
    the access carries a [domain-local] waiver. *)

val float_taint : Modgraph.t -> core:string list -> Check.Diagnostic.t list
(** Rule [analysis/float-taint]. In the dependency closure of the
    exact core ([core] is a list of directories): every float
    literal, [Float.*] call, [float_of_*]/[*_of_float] conversion and
    float operator ([+.], [-.], [*.], [/.], [**]) is flagged unless
    covered by a [float-ok] waiver. The witness carries the
    reachability chain from a core module. *)

val determinism :
  Modgraph.t ->
  serve_roots:string list ->
  clock_exempt:string list ->
  Check.Diagnostic.t list
(** Rules [analysis/nondeterminism] (wall-clock reads
    [Unix.gettimeofday]/[Unix.time]/[Sys.time] outside [clock_exempt]
    — waivable with [clock-ok] — and [Random.self_init], never
    waivable) and [analysis/hash-order] ([Hashtbl.iter]/[fold]/
    [to_seq*], whose order depends on [Hashtbl.hash] — waivable with
    [order-insensitive]), in everything reachable from [serve_roots]
    (directories or single files). *)

val waiver_hygiene : Modgraph.t -> Check.Diagnostic.t list
(** Rules [analysis/bare-waiver] and [analysis/unknown-waiver]: a
    waiver without a justification, or with an unrecognized tag, is
    itself a finding — in every scanned file, reachable or not. *)
