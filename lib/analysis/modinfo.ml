(* Per-module symbol table; see modinfo.mli. *)

module L = Lexer

type mutable_kind = Ref | Table | Buf | Arr | Queue_like

let kind_to_string = function
  | Ref -> "ref"
  | Table -> "hashtbl"
  | Buf -> "buffer"
  | Arr -> "array"
  | Queue_like -> "queue"

type global = { gname : string; gkind : mutable_kind; gline : int; gtok : int }
type field = { fname : string; fline : int }
type waiver = { wtag : string; wwhy : string; wline : int; wfrom : int; wto : int }
type call = { chain : string list; fn : string; cline : int }

type t = {
  path : string;
  modname : string;
  toks : L.token array;
  guarded : bool array;
  refs : (string list * int) list;
  calls : call list;
  globals : global list;
  fields : field list;
  waivers : waiver list;
  malformed_waivers : (string * string * int) list;
  spawn_lines : int list;
  float_sites : (string * int) list;
}

let valid_tags = [ "domain-local"; "float-ok"; "order-insensitive"; "clock-ok" ]

let module_name_of_path path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* ------------------------------------------------------------------ *)
(* Token-array helpers                                                 *)
(* ------------------------------------------------------------------ *)

let is_code t = t.L.kind <> L.Comment

(* Next/previous non-comment token index, or -1. *)
let next_code toks i =
  let n = Array.length toks in
  let j = ref (i + 1) in
  while !j < n && not (is_code toks.(!j)) do
    incr j
  done;
  if !j < n then !j else -1

let prev_code toks i =
  let j = ref (i - 1) in
  while !j >= 0 && not (is_code toks.(!j)) do
    decr j
  done;
  !j

let tok_is toks i kind text =
  i >= 0
  && i < Array.length toks
  && toks.(i).L.kind = kind
  && toks.(i).L.text = text

(* Indices where a new top-level structure item starts: column 0,
   bracket depth 0, one of the structure keywords. *)
let item_keywords =
  [ "let"; "module"; "type"; "open"; "exception"; "external"; "include"; "class"; "and"; "end" ]

let item_starts toks =
  let out = ref [] in
  Array.iteri
    (fun i t ->
      if
        t.L.col = 0 && t.L.depth = 0 && t.L.kind = L.Ident
        && List.mem t.L.text item_keywords
      then out := i :: !out)
    toks;
  Array.of_list (List.rev !out)

(* First item start strictly after token index [i] (token index), or
   [Array.length toks]. *)
let next_item_start toks items i =
  let n = Array.length toks in
  let ans = ref n in
  Array.iter (fun s -> if s > i && s < !ans then ans := s) items;
  !ans

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)
(* ------------------------------------------------------------------ *)

(* Extract the waiver payload from a comment body: everything after
   the waiver marker. Returns (tag, why, substance). *)
let parse_waiver_body body =
  let tag_start =
    let k = ref 0 in
    while !k < String.length body && (body.[!k] = ' ' || body.[!k] = '\t') do
      incr k
    done;
    !k
  in
  let k = ref tag_start in
  while
    !k < String.length body
    && ((body.[!k] >= 'a' && body.[!k] <= 'z') || body.[!k] = '-')
  do
    incr k
  done;
  let tag = String.sub body tag_start (!k - tag_start) in
  let why = String.sub body !k (String.length body - !k) in
  (* Strip the comment terminator and separator punctuation; the
     justification must still contain a real sentence fragment. *)
  let why =
    if String.length why >= 2 && String.sub why (String.length why - 2) 2 = "*)" then
      String.sub why 0 (String.length why - 2)
    else why
  in
  let substantive =
    let c = ref 0 in
    String.iter
      (fun ch ->
        if
          (ch >= 'a' && ch <= 'z')
          || (ch >= 'A' && ch <= 'Z')
          || (ch >= '0' && ch <= '9')
        then incr c)
      why;
    !c
  in
  (tag, String.trim why, substantive)

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = if i + nn > nh then None else if String.sub hay i nn = needle then Some i else go (i + 1) in
  go 0

(* A standalone waiver directly above a let/type/module item covers
   the whole item: from the item keyword to the first later-line token
   at a column <= the keyword's column. *)
let block_keywords = [ "let"; "type"; "module"; "and" ]

let scan_waivers toks =
  let n = Array.length toks in
  let waivers = ref [] and malformed = ref [] in
  Array.iteri
    (fun i t ->
      if t.L.kind = L.Comment then begin
        match find_substring t.L.text "analysis:" with
        | None -> ()
        | Some off ->
          let body =
            String.sub t.L.text (off + 9) (String.length t.L.text - off - 9)
          in
          let tag, why, substantive = parse_waiver_body body in
          if not (List.mem tag valid_tags) then
            malformed :=
              ( "unknown-waiver",
                Printf.sprintf
                  "unknown analysis waiver tag %S; valid tags: %s" tag
                  (String.concat ", " valid_tags),
                t.L.line )
              :: !malformed
          else if substantive < 8 then
            malformed :=
              ( "bare-waiver",
                Printf.sprintf
                  "bare `analysis: %s` waiver: state the reason the finding is safe \
                   (e.g. which domain owns the state) after an em dash"
                  tag,
                t.L.line )
              :: !malformed
          else begin
            let p = prev_code toks i in
            let standalone = p < 0 || toks.(p).L.end_line < t.L.line in
            let wfrom = t.L.line in
            let wto = ref t.L.end_line in
            let j = next_code toks i in
            if j >= 0 && standalone then begin
              wto := Stdlib.max !wto toks.(j).L.line;
              if toks.(j).L.kind = L.Ident && List.mem toks.(j).L.text block_keywords
              then begin
                (* item scope: until the first code token on a later
                   line at column <= the keyword's column *)
                let stop = ref (-1) in
                let k = ref (j + 1) in
                while !stop < 0 && !k < n do
                  let u = toks.(!k) in
                  if is_code u && u.L.line > toks.(j).L.line && u.L.col <= toks.(j).L.col
                  then stop := !k
                  else incr k
                done;
                wto :=
                  Stdlib.max !wto
                    (if !stop >= 0 then toks.(!stop).L.line - 1
                     else if n > 0 then toks.(n - 1).L.end_line
                     else !wto)
              end
            end
            else if j >= 0 && not standalone then
              (* trailing waiver: its own line(s) only *)
              ();
            waivers := { wtag = tag; wwhy = why; wline = t.L.line; wfrom; wto = !wto } :: !waivers
          end
      end)
    toks;
  (List.rev !waivers, List.rev !malformed)

(* ------------------------------------------------------------------ *)
(* References, calls, spawn and float sites                            *)
(* ------------------------------------------------------------------ *)

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-." ]

let float_idents =
  [ "float_of_int"; "float_of_string"; "float_of_string_opt"; "int_of_float";
    "string_of_float"; "infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let scan_uses toks =
  let n = Array.length toks in
  let refs = ref [] and calls = ref [] and spawns = ref [] and floats = ref [] in
  let i = ref 0 in
  while !i < n do
    let t = toks.(!i) in
    (match t.L.kind with
    | L.Float -> floats := (t.L.text, t.L.line) :: !floats
    | L.Op when List.mem t.L.text float_ops -> floats := (t.L.text, t.L.line) :: !floats
    | L.Ident
      when List.mem t.L.text float_idents
           || (String.length t.L.text > 9 && String.sub t.L.text 0 9 = "float_of_") ->
      (* qualified [Float.of_int]-style calls are handled below; a
         bare [float_of_int] is caught here *)
      let p = prev_code toks !i in
      if not (tok_is toks p L.Op ".") then floats := (t.L.text, t.L.line) :: !floats
    | _ -> ());
    (if t.L.kind = L.Uident then begin
       let p = prev_code toks !i in
       if not (tok_is toks p L.Op ".") then begin
         (* maximal capitalized chain A.B.C *)
         let chain = ref [ t.L.text ] in
         let last = ref !i in
         let continue = ref true in
         while !continue do
           let d = next_code toks !last in
           let u = if d >= 0 then next_code toks d else -1 in
           if
             d >= 0 && u >= 0
             && tok_is toks d L.Op "."
             && toks.(u).L.kind = L.Uident
           then begin
             chain := toks.(u).L.text :: !chain;
             last := u
           end
           else continue := false
         done;
         let chain_list = List.rev !chain in
         refs := (chain_list, t.L.line) :: !refs;
         (* trailing lowercase member: A.B.fn *)
         let d = next_code toks !last in
         let f = if d >= 0 then next_code toks d else -1 in
         if d >= 0 && f >= 0 && tok_is toks d L.Op "." && toks.(f).L.kind = L.Ident
         then begin
           let fn = toks.(f).L.text in
           calls := { chain = chain_list; fn; cline = toks.(f).L.line } :: !calls;
           (match (List.rev chain_list, fn) with
           | "Domain" :: _, "spawn" -> spawns := toks.(f).L.line :: !spawns
           | "Float" :: _, _ -> floats := ("Float." ^ fn, toks.(f).L.line) :: !floats
           | _ -> ())
         end;
         i := !last
       end
     end);
    incr i
  done;
  (List.rev !refs, List.rev !calls, List.rev !spawns, List.rev !floats)

(* ------------------------------------------------------------------ *)
(* Top-level mutable state                                             *)
(* ------------------------------------------------------------------ *)

(* RHS head of a binding: which allocator does the bound value come
   from? [Atomic.make], [Mutex.create] and [Condition.create] are
   deliberately absent — they are the safe primitives. *)
let rhs_kind toks e =
  let a = next_code toks e in
  if a < 0 then None
  else
    match toks.(a).L.kind with
    | L.Ident when toks.(a).L.text = "ref" -> Some Ref
    | L.Punct when toks.(a).L.text = "[" ->
      let b = next_code toks a in
      if tok_is toks b L.Op "|" then Some Arr else None
    | L.Uident ->
      let d = next_code toks a in
      let f = if d >= 0 then next_code toks d else -1 in
      if d >= 0 && f >= 0 && tok_is toks d L.Op "." && toks.(f).L.kind = L.Ident then
        (match (toks.(a).L.text, toks.(f).L.text) with
        | "Hashtbl", "create" -> Some Table
        | "Buffer", "create" -> Some Buf
        | "Bytes", ("create" | "make" | "of_string") -> Some Buf
        | "Array", ("make" | "init" | "create" | "make_matrix" | "copy") -> Some Arr
        | ("Queue" | "Stack"), "create" -> Some Queue_like
        | _ -> None)
      else None
    | _ -> None

(* For a [let] item starting at token [s]: the binding name and the
   index of the first depth-0 [=] inside the item. *)
let binding_of_item toks items s =
  let stop = next_item_start toks items s in
  let n0 = next_code toks s in
  let name_i =
    if tok_is toks n0 L.Ident "rec" then next_code toks n0 else n0
  in
  if name_i < 0 || name_i >= stop || toks.(name_i).L.kind <> L.Ident then None
  else begin
    let eq = ref (-1) in
    let k = ref name_i in
    while !eq < 0 && !k < stop do
      if
        toks.(!k).L.kind = L.Op
        && toks.(!k).L.text = "="
        && toks.(!k).L.depth = toks.(s).L.depth
      then eq := !k
      else incr k
    done;
    if !eq < 0 then None else Some (name_i, !eq, stop)
  end

let scan_globals toks items =
  let out = ref [] in
  Array.iter
    (fun s ->
      if toks.(s).L.text = "let" then
        match binding_of_item toks items s with
        | None -> ()
        | Some (name_i, eq, _) when
            (* parameter-free bindings only: [let row t i = Array.copy …]
               allocates per call, not shared state *)
            (let after = next_code toks name_i in
             after = eq || tok_is toks after L.Op ":") -> (
          match rhs_kind toks eq with
          | None -> ()
          | Some k ->
            out :=
              {
                gname = toks.(name_i).L.text;
                gkind = k;
                gline = toks.(name_i).L.line;
                gtok = name_i;
              }
              :: !out)
        | Some _ -> ())
    items;
  List.rev !out

let scan_fields toks =
  let out = ref [] in
  Array.iteri
    (fun i t ->
      if t.L.kind = L.Ident && t.L.text = "mutable" then begin
        let j = next_code toks i in
        if j >= 0 && toks.(j).L.kind = L.Ident then
          out := { fname = toks.(j).L.text; fline = toks.(j).L.line } :: !out
      end)
    toks;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Guarded regions                                                     *)
(* ------------------------------------------------------------------ *)

(* Guard helpers: top-level [let f ... = Mutex.protect ...]. *)
let scan_guard_helpers toks items =
  let out = ref [] in
  Array.iter
    (fun s ->
      if toks.(s).L.text = "let" then
        match binding_of_item toks items s with
        | None -> ()
        | Some (name_i, eq, _) ->
          let a = next_code toks eq in
          let d = if a >= 0 then next_code toks a else -1 in
          let f = if d >= 0 then next_code toks d else -1 in
          if
            tok_is toks a L.Uident "Mutex"
            && tok_is toks d L.Op "."
            && tok_is toks f L.Ident "protect"
          then out := toks.(name_i).L.text :: !out)
    items;
  !out

(* Qualified call [M.fn] starting at token [i] (the [Uident]). *)
let is_qualified toks i m fn =
  tok_is toks i L.Uident m
  &&
  let d = next_code toks i in
  let f = if d >= 0 then next_code toks d else -1 in
  tok_is toks d L.Op "." && tok_is toks f L.Ident fn

let compute_guarded toks items =
  let n = Array.length toks in
  let guarded = Array.make n false in
  let mark a b =
    for k = Stdlib.max 0 a to Stdlib.min (n - 1) b do
      guarded.(k) <- true
    done
  in
  (* region from [i]: until bracket depth drops below the depth at
     [i], bounded by the next top-level item *)
  let region_end i =
    let stop = next_item_start toks items i in
    let d = toks.(i).L.depth in
    let j = ref (i + 1) in
    while !j < stop && toks.(!j).L.depth >= d do
      incr j
    done;
    !j - 1
  in
  let helpers = scan_guard_helpers toks items in
  (* Mutex.protect and guard-helper applications *)
  Array.iteri
    (fun i t ->
      if is_qualified toks i "Mutex" "protect" then mark i (region_end i)
      else if
        t.L.kind = L.Ident && List.mem t.L.text helpers
        &&
        let p = prev_code toks i in
        (not (tok_is toks p L.Op ".")) && not (tok_is toks p L.Ident "let")
      then mark i (region_end i))
    toks;
  (* Mutex.lock ... Mutex.unlock spans *)
  let locks = ref [] and unlocks = ref [] in
  Array.iteri
    (fun i _ ->
      if is_qualified toks i "Mutex" "lock" then locks := i :: !locks
      else if is_qualified toks i "Mutex" "unlock" then unlocks := i :: !unlocks)
    toks;
  let locks = Array.of_list (List.rev !locks) in
  let unlocks = List.rev !unlocks in
  Array.iteri
    (fun li lock ->
      let next_lock = if li + 1 < Array.length locks then locks.(li + 1) else n in
      let bound = Stdlib.min next_lock (next_item_start toks items lock) in
      let last_unlock =
        List.fold_left
          (fun acc u -> if u > lock && u < bound then Stdlib.max acc u else acc)
          (-1) unlocks
      in
      if last_unlock >= 0 then mark lock last_unlock
      else mark lock (next_item_start toks items lock - 1))
    locks;
  guarded

(* ------------------------------------------------------------------ *)
(* Assembly                                                            *)
(* ------------------------------------------------------------------ *)

let of_source ~path src =
  let toks = L.tokenize src in
  let items = item_starts toks in
  let refs, calls, spawn_lines, float_sites = scan_uses toks in
  let waivers, malformed_waivers = scan_waivers toks in
  {
    path;
    modname = module_name_of_path path;
    toks;
    guarded = compute_guarded toks items;
    refs;
    calls;
    globals = scan_globals toks items;
    fields = scan_fields toks;
    waivers;
    malformed_waivers;
    spawn_lines;
    float_sites;
  }

let of_file path = of_source ~path (L.read_file path)

let waived t ~tag ~line =
  List.exists (fun w -> w.wtag = tag && w.wfrom <= line && line <= w.wto) t.waivers
