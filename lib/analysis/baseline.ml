(* Accepted-findings baseline; see baseline.mli. *)

module D = Check.Diagnostic
module J = Check.Json

type entry = { brule : string; bfile : string; bsymbol : string; allowed : int }
type t = entry list

let empty = []
let entries t = t

let file_of = function D.Source_line { file; _ } -> file | _ -> ""

let symbol_of (d : D.t) =
  Option.value ~default:"" (List.assoc_opt "symbol" d.D.witness)

let key_of (d : D.t) = (d.D.rule, file_of d.D.location, symbol_of d)
let entry_key e = (e.brule, e.bfile, e.bsymbol)
let compare_entry a b = compare (entry_key a) (entry_key b)

let error_counts diags =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun (d : D.t) ->
      if d.D.severity = D.Error then begin
        let k = key_of d in
        Hashtbl.replace counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
      end)
    diags;
  counts

let of_diagnostics diags =
  (* analysis: order-insensitive — the fold feeds an immediate sort. *)
  Hashtbl.fold
    (fun (brule, bfile, bsymbol) allowed acc ->
      { brule; bfile; bsymbol; allowed } :: acc)
    (error_counts diags) []
  |> List.sort compare_entry

let to_json t =
  J.Obj
    [
      ("version", J.Int 1);
      ( "entries",
        J.List
          (List.map
             (fun e ->
               J.Obj
                 [
                   ("rule", J.Str e.brule);
                   ("file", J.Str e.bfile);
                   ("symbol", J.Str e.bsymbol);
                   ("allowed", J.Int e.allowed);
                 ])
             (List.sort compare_entry t)) );
    ]

let of_json json =
  let ( let* ) = Result.bind in
  let str k o =
    match Option.bind (J.member k o) J.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "baseline entry: missing string %S" k)
  in
  let* entries_json =
    match J.member "entries" json with
    | Some (J.List l) -> Ok l
    | _ -> Error "baseline: missing \"entries\" list"
  in
  let* entries =
    List.fold_left
      (fun acc o ->
        let* acc = acc in
        let* brule = str "rule" o in
        let* bfile = str "file" o in
        let* bsymbol = str "symbol" o in
        let* allowed =
          match Option.bind (J.member "allowed" o) J.to_int_opt with
          | Some n when n > 0 -> Ok n
          | Some _ -> Error "baseline entry: \"allowed\" must be positive"
          | None -> Error "baseline entry: missing int \"allowed\""
        in
        Ok ({ brule; bfile; bsymbol; allowed } :: acc))
      (Ok []) entries_json
  in
  Ok (List.sort compare_entry entries)

let load path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let src = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Result.bind (J.of_string src) of_json

let save path t =
  let oc = open_out_bin path in
  let fmt = Format.formatter_of_out_channel oc in
  Format.fprintf fmt "%a@." J.pp (to_json t);
  close_out oc

let apply t diags =
  let counts = error_counts diags in
  let allowance = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace allowance (entry_key e) e.allowed) t;
  let suppressed = ref 0 in
  let kept =
    List.filter_map
      (fun (d : D.t) ->
        if d.D.severity <> D.Error then Some d
        else
          let k = key_of d in
          match Hashtbl.find_opt allowance k with
          | None -> Some d
          | Some a ->
            let n = Option.value ~default:0 (Hashtbl.find_opt counts k) in
            if n <= a then begin
              incr suppressed;
              None
            end
            else
              Some
                {
                  d with
                  D.witness =
                    d.D.witness @ [ ("baseline_allowed", string_of_int a) ];
                })
      diags
  in
  let stale =
    List.filter_map
      (fun e ->
        if Hashtbl.mem counts (entry_key e) then None
        else
          Some
            (D.warning ~rule:"analysis/stale-baseline"
               ~witness:
                 [
                   ("rule", e.brule);
                   ("symbol", e.bsymbol);
                   ("allowed", string_of_int e.allowed);
                 ]
               (D.Source_line { file = e.bfile; line = 0 })
               (Printf.sprintf
                  "baseline entry matches nothing: the %s findings for `%s` in \
                   %s are gone — run `make analyze-baseline` to ratchet the \
                   baseline down"
                  e.brule e.bsymbol e.bfile)))
      (List.sort compare_entry t)
  in
  (kept, !suppressed, stale)
