(* The three analysis passes; see passes.mli. *)

module D = Check.Diagnostic
module M = Modinfo
module L = Lexer

let loc file line = D.Source_line { file; line }
let chain_str chain = String.concat " -> " chain

(* ------------------------------------------------------------------ *)
(* Domain safety                                                       *)
(* ------------------------------------------------------------------ *)

(* Occurrences of [name] as a standalone lowercase identifier that
   read or write a value: skips the declaration token itself, module
   paths ([X.name] field/member accesses are handled separately by the
   caller via [dotted]), labels and record-pattern punning. *)
let ident_occurrences info name ~skip_tok ~dotted =
  let toks = info.M.toks in
  let out = ref [] in
  Array.iteri
    (fun i t ->
      if i <> skip_tok && t.L.kind = L.Ident && t.L.text = name then begin
        let p = ref (i - 1) in
        while !p >= 0 && toks.(!p).L.kind = L.Comment do
          decr p
        done;
        let prev_dot = !p >= 0 && toks.(!p).L.kind = L.Op && toks.(!p).L.text = "." in
        if prev_dot = dotted then out := i :: !out
      end)
    toks;
  List.rev !out

let global_diag info ~chain g line =
  D.error ~rule:"analysis/domain-unsafe"
    ~witness:
      [
        ("symbol", g.M.gname);
        ("kind", M.kind_to_string g.M.gkind);
        ("declared", Printf.sprintf "%s:%d" info.M.path g.M.gline);
        ("spawn_chain", chain_str chain);
      ]
    (loc info.M.path line)
    (Printf.sprintf
       "top-level mutable %s `%s` is used outside any Mutex.protect/lock region in a \
        module reachable from Domain.spawn; guard it, make it Atomic, or add an \
        `(* analysis: domain-local — <why> *)` waiver"
       (M.kind_to_string g.M.gkind) g.M.gname)

let field_diag info ~chain f line =
  D.error ~rule:"analysis/domain-unsafe"
    ~witness:
      [
        ("symbol", f.M.fname);
        ("kind", "mutable-field");
        ("declared", Printf.sprintf "%s:%d" info.M.path f.M.fline);
        ("spawn_chain", chain_str chain);
      ]
    (loc info.M.path line)
    (Printf.sprintf
       "mutable field `%s` is written outside any Mutex.protect/lock region in a module \
        reachable from Domain.spawn; guard the write, make the field Atomic, or add an \
        `(* analysis: domain-local — <why> *)` waiver"
       f.M.fname)

let domain_safety g =
  let spawn_roots =
    List.filter_map
      (fun info -> if info.M.spawn_lines <> [] then Some info.M.path else None)
      (Modgraph.infos g)
  in
  let reach = Modgraph.closure g ~roots:spawn_roots in
  List.concat_map
    (fun (path, chain) ->
      match Modgraph.info g path with
      | None -> []
      | Some info ->
        let toks = info.M.toks in
        let globals =
          List.concat_map
            (fun gl ->
              if M.waived info ~tag:"domain-local" ~line:gl.M.gline then []
              else
                ident_occurrences info gl.M.gname ~skip_tok:gl.M.gtok ~dotted:false
                |> List.filter_map (fun i ->
                       let line = toks.(i).L.line in
                       if info.M.guarded.(i) then None
                       else if M.waived info ~tag:"domain-local" ~line then None
                       else Some line)
                |> List.sort_uniq compare
                |> List.map (global_diag info ~chain gl))
            info.M.globals
        in
        let fields =
          List.concat_map
            (fun f ->
              if M.waived info ~tag:"domain-local" ~line:f.M.fline then []
              else
                ident_occurrences info f.M.fname ~skip_tok:(-1) ~dotted:true
                |> List.filter_map (fun i ->
                       (* only writes: `x.field <- ...` *)
                       let j = ref (i + 1) in
                       while
                         !j < Array.length toks && toks.(!j).L.kind = L.Comment
                       do
                         incr j
                       done;
                       let is_write =
                         !j < Array.length toks
                         && toks.(!j).L.kind = L.Op
                         && toks.(!j).L.text = "<-"
                       in
                       if not is_write then None
                       else
                         let line = toks.(i).L.line in
                         if info.M.guarded.(i) then None
                         else if M.waived info ~tag:"domain-local" ~line then None
                         else Some line)
                |> List.sort_uniq compare
                |> List.map (field_diag info ~chain f))
            info.M.fields
        in
        globals @ fields)
    reach

(* ------------------------------------------------------------------ *)
(* Float taint                                                         *)
(* ------------------------------------------------------------------ *)

let float_taint g ~core =
  let roots =
    List.filter (fun p -> Modgraph.under ~dirs_or_files:core p) (Modgraph.paths g)
  in
  let reach = Modgraph.closure g ~roots in
  List.concat_map
    (fun (path, chain) ->
      match Modgraph.info g path with
      | None -> []
      | Some info ->
        List.filter_map
          (fun (sym, line) ->
            if M.waived info ~tag:"float-ok" ~line then None
            else
              Some
                (D.error ~rule:"analysis/float-taint"
                   ~witness:[ ("symbol", sym); ("taint_chain", chain_str chain) ]
                   (loc path line)
                   (Printf.sprintf
                      "`%s` inside the dependency closure of the exact core: a float \
                       here can leak into ℚ-exact solvers; use Rat, or add an \
                       `(* analysis: float-ok — <why> *)` waiver at a proven \
                       conversion boundary"
                      sym)))
          info.M.float_sites)
    reach

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let hash_order_fns = [ "iter"; "fold"; "to_seq"; "to_seq_keys"; "to_seq_values" ]
let wall_clock = [ ("Unix", "gettimeofday"); ("Unix", "time"); ("Sys", "time") ]

let determinism g ~serve_roots ~clock_exempt =
  let roots =
    List.filter
      (fun p -> Modgraph.under ~dirs_or_files:serve_roots p)
      (Modgraph.paths g)
  in
  let reach = Modgraph.closure g ~roots in
  List.concat_map
    (fun (path, chain) ->
      match Modgraph.info g path with
      | None -> []
      | Some info ->
        List.filter_map
          (fun c ->
            let last = List.nth c.M.chain (List.length c.M.chain - 1) in
            let sym = last ^ "." ^ c.M.fn in
            let line = c.M.cline in
            if last = "Random" && c.M.fn = "self_init" then
              Some
                (D.error ~rule:"analysis/nondeterminism"
                   ~witness:[ ("symbol", sym); ("serve_chain", chain_str chain) ]
                   (loc path line)
                   "Random.self_init on the serve path destroys seeded determinism \
                    and cannot be waived; thread a Prob.Rng stream or an Engine.Seeder \
                    split instead")
            else if List.mem (last, c.M.fn) wall_clock then
              if Modgraph.under ~dirs_or_files:clock_exempt path then None
              else if M.waived info ~tag:"clock-ok" ~line then None
              else
                Some
                  (D.error ~rule:"analysis/nondeterminism"
                     ~witness:[ ("symbol", sym); ("serve_chain", chain_str chain) ]
                     (loc path line)
                     (Printf.sprintf
                        "`%s` reads the wall clock on the serve path; route timing \
                         through lib/obs's injectable Obs.Clock so tests stay \
                         byte-deterministic, or add an `(* analysis: clock-ok — <why> \
                         *)` waiver"
                        sym))
            else if last = "Hashtbl" && List.mem c.M.fn hash_order_fns then
              if M.waived info ~tag:"order-insensitive" ~line then None
              else
                Some
                  (D.error ~rule:"analysis/hash-order"
                     ~witness:[ ("symbol", sym); ("serve_chain", chain_str chain) ]
                     (loc path line)
                     (Printf.sprintf
                        "`%s` iterates in Hashtbl.hash order on the serve path; sort \
                         the results (then waive with `(* analysis: order-insensitive \
                         — <why> *)`) or iterate a sorted key list"
                        sym))
            else None)
          info.M.calls)
    reach

(* ------------------------------------------------------------------ *)
(* Waiver hygiene                                                      *)
(* ------------------------------------------------------------------ *)

let waiver_hygiene g =
  List.concat_map
    (fun info ->
      List.map
        (fun (suffix, msg, line) ->
          D.error ~rule:("analysis/" ^ suffix)
            ~witness:[ ("symbol", "waiver") ]
            (loc info.M.path line) msg)
        info.M.malformed_waivers)
    (Modgraph.infos g)
