(* Module-dependency graph; see modgraph.mli. *)

(* ------------------------------------------------------------------ *)
(* Minimal dune-file reader                                            *)
(* ------------------------------------------------------------------ *)

type sexp = Atom of string | L of sexp list

(* Enough of the dune surface syntax for (library ...) and
   (executable[s] ...) stanzas: parens, bare atoms, "quoted" atoms and
   ;-comments. Anything fancier parses as atoms we ignore. *)
let parse_sexps src =
  let n = String.length src in
  let pos = ref 0 in
  let rec skip_ws () =
    if !pos < n then
      match src.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        incr pos;
        skip_ws ()
      | ';' ->
        while !pos < n && src.[!pos] <> '\n' do
          incr pos
        done;
        skip_ws ()
      | _ -> ()
  in
  let atom () =
    let start = !pos in
    if src.[!pos] = '"' then begin
      incr pos;
      while !pos < n && src.[!pos] <> '"' do
        if src.[!pos] = '\\' then incr pos;
        incr pos
      done;
      if !pos < n then incr pos;
      Atom (String.sub src (start + 1) (!pos - start - 2))
    end
    else begin
      while
        !pos < n
        &&
        match src.[!pos] with
        | ' ' | '\t' | '\n' | '\r' | '(' | ')' | ';' -> false
        | _ -> true
      do
        incr pos
      done;
      Atom (String.sub src start (!pos - start))
    end
  in
  let rec expr () =
    skip_ws ();
    if !pos >= n then None
    else if src.[!pos] = '(' then begin
      incr pos;
      let items = ref [] in
      let fin = ref false in
      while not !fin do
        skip_ws ();
        if !pos >= n then fin := true
        else if src.[!pos] = ')' then begin
          incr pos;
          fin := true
        end
        else
          match expr () with
          | Some e -> items := e :: !items
          | None -> fin := true
      done;
      Some (L (List.rev !items))
    end
    else if src.[!pos] = ')' then begin
      incr pos;
      expr ()
    end
    else Some (atom ())
  in
  let out = ref [] in
  let fin = ref false in
  while not !fin do
    match expr () with Some e -> out := e :: !out | None -> fin := true
  done;
  List.rev !out

let field name items =
  List.find_map
    (function
      | L (Atom n :: rest) when n = name ->
        Some (List.filter_map (function Atom a -> Some a | L _ -> None) rest)
      | _ -> None)
    items

(* ------------------------------------------------------------------ *)
(* Units and files                                                     *)
(* ------------------------------------------------------------------ *)

type unit_info = {
  uname : string;
  is_lib : bool;
  deps : string list;
  ufiles : string list;  (* paths of this unit's .ml files *)
}

type t = {
  tbl : (string, Modinfo.t) Hashtbl.t;
  unit_of_path : (string, unit_info) Hashtbl.t;
  lib_by_name : (string, unit_info) Hashtbl.t;
  edge_tbl : (string, string list) Hashtbl.t;
}

let rec walk_dirs dir acc =
  match Sys.readdir dir with
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if String.length entry > 0 && (entry.[0] = '.' || entry.[0] = '_') then acc
        else if Sys.is_directory path then walk_dirs path acc
        else acc)
      (dir :: acc) entries
  | exception Sys_error _ -> acc

let mls_of_dir dir =
  match Sys.readdir dir with
  | entries ->
    Array.to_list entries
    |> List.filter (fun e -> Filename.check_suffix e ".ml")
    |> List.sort compare
    |> List.map (Filename.concat dir)
  | exception Sys_error _ -> []

let units_of_dune dir =
  let dune = Filename.concat dir "dune" in
  if not (Sys.file_exists dune) then []
  else begin
    let sexps = parse_sexps (Lexer.read_file dune) in
    let mls = mls_of_dir dir in
    List.filter_map
      (function
        | L (Atom "library" :: items) -> (
          match field "name" items with
          | Some [ name ] ->
            Some
              {
                uname = name;
                is_lib = true;
                deps = Option.value ~default:[] (field "libraries" items);
                ufiles = mls;
              }
          | _ -> None)
        | L (Atom ("executable" | "executables") :: items) -> (
          let names =
            match (field "name" items, field "names" items) with
            | Some ns, _ | None, Some ns -> ns
            | None, None -> []
          in
          match names with
          | [] -> None
          | name :: _ ->
            let files =
              match field "modules" items with
              | Some mods ->
                List.filter
                  (fun ml ->
                    let base = Filename.remove_extension (Filename.basename ml) in
                    List.exists (fun m -> String.lowercase_ascii m = base) mods)
                  mls
              | None -> mls
            in
            Some
              {
                uname = name;
                is_lib = false;
                deps = Option.value ~default:[] (field "libraries" items);
                ufiles = files;
              })
        | _ -> None)
      sexps
  end

(* ------------------------------------------------------------------ *)
(* Reference resolution                                                *)
(* ------------------------------------------------------------------ *)

let cap = String.capitalize_ascii

let module_file unit_ m =
  let base = String.uncapitalize_ascii m ^ ".ml" in
  List.find_opt (fun p -> Filename.basename p = base) unit_.ufiles

(* Resolve one capitalized chain from [file] (in [u]) to in-tree
   target files. *)
let resolve g u file chain =
  let in_unit d rest =
    match rest with
    | sub :: _ -> (
      match module_file d sub with
      | Some p -> [ p ]
      | None -> ( match module_file d d.uname with Some p -> [ p ] | None -> d.ufiles))
    | [] -> ( match module_file d d.uname with Some p -> [ p ] | None -> d.ufiles)
  in
  match chain with
  | [] -> []
  | head :: rest -> (
    (* wrapped-library self reference: Check.Json inside lib check *)
    if u.is_lib && head = cap u.uname && rest <> [] then
      match module_file u (List.hd rest) with
      | Some p when p <> file -> [ p ]
      | _ -> []
    else
      match module_file u head with
      | Some p when p <> file -> [ p ]
      | _ -> (
        match
          List.find_opt
            (fun dep ->
              cap dep = head
              &&
              match Hashtbl.find_opt g.lib_by_name dep with
              | Some _ -> true
              | None -> false)
            u.deps
        with
        | Some dep -> in_unit (Hashtbl.find g.lib_by_name dep) rest
        | None -> []))

(* ------------------------------------------------------------------ *)
(* Build                                                               *)
(* ------------------------------------------------------------------ *)

let build ~roots =
  let dirs =
    List.concat_map
      (fun root -> if Sys.file_exists root && Sys.is_directory root then walk_dirs root [] else [])
      roots
    |> List.sort_uniq compare
  in
  let units = List.concat_map units_of_dune dirs in
  let g =
    {
      tbl = Hashtbl.create 64;
      unit_of_path = Hashtbl.create 64;
      lib_by_name = Hashtbl.create 16;
      edge_tbl = Hashtbl.create 64;
    }
  in
  List.iter
    (fun u ->
      if u.is_lib then Hashtbl.replace g.lib_by_name u.uname u;
      List.iter
        (fun p ->
          Hashtbl.replace g.unit_of_path p u;
          if not (Hashtbl.mem g.tbl p) then Hashtbl.replace g.tbl p (Modinfo.of_file p))
        u.ufiles)
    units;
  (* Edges, resolved once per file. *)
  (* analysis: order-insensitive — each key is processed independently
     and the per-file edge lists are sorted before storage. *)
  Hashtbl.iter
    (fun path info ->
      let u = Hashtbl.find g.unit_of_path path in
      let targets =
        List.concat_map (fun (chain, _) -> resolve g u path chain) info.Modinfo.refs
        |> List.sort_uniq compare
        |> List.filter (fun p -> p <> path)
      in
      Hashtbl.replace g.edge_tbl path targets)
    g.tbl;
  g

(* analysis: order-insensitive — the fold feeds an immediate sort. *)
let paths g = Hashtbl.fold (fun k _ acc -> k :: acc) g.tbl [] |> List.sort compare

let info g p = Hashtbl.find_opt g.tbl p
let infos g = List.filter_map (fun p -> info g p) (paths g)
let edges_of g p = Option.value ~default:[] (Hashtbl.find_opt g.edge_tbl p)

let closure g ~roots =
  let chain_of : (string, string list) Hashtbl.t = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun r ->
      if Hashtbl.mem g.tbl r && not (Hashtbl.mem chain_of r) then begin
        Hashtbl.replace chain_of r [ r ];
        Queue.add r q
      end)
    (List.sort compare roots);
  while not (Queue.is_empty q) do
    let p = Queue.pop q in
    let chain = Hashtbl.find chain_of p in
    List.iter
      (fun next ->
        if not (Hashtbl.mem chain_of next) then begin
          Hashtbl.replace chain_of next (chain @ [ next ]);
          Queue.add next q
        end)
      (edges_of g p)
  done;
  (* analysis: order-insensitive — the fold feeds an immediate sort. *)
  Hashtbl.fold (fun p chain acc -> (p, chain) :: acc) chain_of []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let under ~dirs_or_files path =
  List.exists
    (fun d ->
      path = d
      ||
      let d = if Filename.check_suffix d "/" then d else d ^ "/" in
      String.length path > String.length d && String.sub path 0 (String.length d) = d)
    dirs_or_files
