(* Analysis driver; see analysis.mli. *)

module Lexer = Lexer
module Modinfo = Modinfo
module Modgraph = Modgraph
module Passes = Passes
module Baseline = Baseline
module D = Check.Diagnostic

type config = {
  roots : string list;
  core_dirs : string list;
  serve_roots : string list;
  clock_exempt : string list;
}

let default_config =
  {
    roots = [ "lib"; "bin" ];
    core_dirs = [ "lib/bigint"; "lib/rational"; "lib/linalg"; "lib/lp"; "lib/mech" ];
    serve_roots =
      [
        "lib/server";
        "lib/engine";
        "lib/store";
        "lib/session";
        "lib/minimax_dp";
        "bin/dpserved.ml";
      ];
    clock_exempt = [ "lib/obs" ];
  }

type outcome = {
  diagnostics : D.t list;
  errors : int;
  warnings : int;
  suppressed : int;
  files : int;
}

let diag_key (d : D.t) =
  let file, line =
    match d.D.location with
    | D.Source_line { file; line } -> (file, line)
    | _ -> ("", 0)
  in
  (file, line, d.D.rule, d.D.message)

let sort_diags ds =
  List.sort_uniq (fun a b -> compare (diag_key a, a) (diag_key b, b)) ds

let analyze config =
  Obs.span "analysis.run" (fun () ->
      let g =
        Obs.span "analysis.graph" (fun () -> Modgraph.build ~roots:config.roots)
      in
      let ds =
        Obs.span "analysis.domain-safety" (fun () -> Passes.domain_safety g)
        @ Obs.span "analysis.float-taint" (fun () ->
              Passes.float_taint g ~core:config.core_dirs)
        @ Obs.span "analysis.determinism" (fun () ->
              Passes.determinism g ~serve_roots:config.serve_roots
                ~clock_exempt:config.clock_exempt)
        @ Passes.waiver_hygiene g
      in
      (List.length (Modgraph.paths g), sort_diags ds))

let raw config = snd (analyze config)

let run ?(baseline = Baseline.empty) config =
  let files, diags = analyze config in
  let kept, suppressed, stale = Baseline.apply baseline diags in
  let diagnostics = sort_diags (kept @ stale) in
  let count sev =
    List.length (List.filter (fun d -> d.D.severity = sev) diagnostics)
  in
  Obs.incr ~by:(List.length diagnostics) "analysis.findings";
  { diagnostics; errors = count D.Error; warnings = count D.Warning; suppressed; files }

let to_json o =
  Check.Json.Obj
    [
      ("files", Check.Json.Int o.files);
      ("errors", Check.Json.Int o.errors);
      ("warnings", Check.Json.Int o.warnings);
      ("suppressed", Check.Json.Int o.suppressed);
      ("diagnostics", Check.Json.List (List.map D.to_json o.diagnostics));
    ]
