(** Accepted-findings baseline: the analyzer's ratchet.

    A baseline entry accepts up to [allowed] findings of one rule for
    one (file, symbol) pair — deliberately keyed without line numbers
    so unrelated edits don't invalidate it. Subtraction is
    all-or-nothing per key: while a group stays at or under its
    allowance it is fully suppressed; one finding over and the whole
    group surfaces (with the allowance in the witness), because a
    regression is best debugged with every instance visible.

    Entries that no longer match anything become [analysis/stale-baseline]
    warnings: the wall stays green, but `make analyze-baseline` should
    be re-run to ratchet the allowance down. *)

type entry = { brule : string; bfile : string; bsymbol : string; allowed : int }
type t

val empty : t
val entries : t -> entry list

val of_diagnostics : Check.Diagnostic.t list -> t
(** Group error-severity diagnostics into a baseline accepting exactly
    the current state. Warnings are not baselined. *)

val to_json : t -> Check.Json.t
val of_json : Check.Json.t -> (t, string) result
val load : string -> (t, string) result
val save : string -> t -> unit

val apply :
  t ->
  Check.Diagnostic.t list ->
  Check.Diagnostic.t list * int * Check.Diagnostic.t list
(** [apply baseline diags] is [(kept, suppressed_count, stale)]:
    [kept] are the diagnostics that survive subtraction (in input
    order), [stale] are warning diagnostics for unmatched entries. *)
