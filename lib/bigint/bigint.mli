(** Arbitrary-precision signed integers.

    Sign–magnitude representation over base-[2^30] limbs. This module
    replaces [zarith] (not available in this environment) and provides
    exactly the operations the exact-rational LP stack needs.

    All operations are purely functional: no argument is ever mutated. *)

type t

(** {1 Constants} *)

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int option
(** [to_int x] is [Some n] when [x] fits in a native [int]. *)

val to_small : t -> int option
(** [to_small x] is [Some n] exactly when [x] is held in the inline
    small-integer representation (magnitude at most 62 bits); a single
    O(1) match, no limb traversal. This is the hook {!Rat}'s native
    fast path keys on: [Some] here guarantees native products of
    sub-2{^30} components cannot overflow. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val to_float : t -> float
(** Nearest float (loses precision beyond 53 bits, may be infinite). *)

val of_string : string -> t
(** Parses an optionally signed decimal numeral, e.g. ["-123456"].
    Underscores are permitted as digit separators.
    @raise Invalid_argument on malformed input. *)

val of_string_opt : string -> t option
val to_string : t -> string

(** {1 Predicates and comparison} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val is_one : t -> bool
val is_negative : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val min : t -> t -> t
val max : t -> t -> t
val hash : t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val succ : t -> t
val pred : t -> t

val divmod : t -> t -> t * t
(** Truncated division: quotient rounded toward zero, remainder has the
    sign of the dividend, and [a = q*b + r] with [|r| < |b|].
    @raise Division_by_zero when the divisor is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv : t -> t -> t * t
(** Euclidean division: remainder satisfies [0 <= r < |b|]. *)

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative. [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument for negative [e]. *)

val shift_left : t -> int -> t
(** Multiplication by [2^k], [k >= 0]. *)

val shift_right : t -> int -> t
(** Arithmetic shift toward negative infinity by [k >= 0] bits. *)

val mul_int : t -> int -> t
val add_int : t -> int -> t

(** {1 Sizes} *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val num_digits : t -> int
(** Number of decimal digits in the magnitude ([1] for zero). *)

(** {1 Pretty printing} *)

val pp : Format.formatter -> t -> unit

(** {1 Infix operators} *)

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
  val ( > ) : t -> t -> bool
  val ( >= ) : t -> t -> bool
end

(** {1 Number-theoretic helpers} *)

val lcm : t -> t -> t
(** Least common multiple; non-negative. [lcm zero x = zero]. *)

val isqrt : t -> t
(** Integer square root: the largest [r] with [r*r <= x].
    @raise Invalid_argument on negative input. *)

val is_square : t -> bool
(** Is the value a perfect square? *)

val sqrt_exact : t -> t option
(** [Some r] when [x = r*r] exactly; [None] otherwise. *)

val of_int64 : int64 -> t
val to_int64 : t -> int64 option
